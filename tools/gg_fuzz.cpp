//===- gg_fuzz.cpp - grammar-aware differential fuzzer driver -------------===//
//
// Generates programs *from the machine grammar itself* (fuzz/GrammarWalk +
// fuzz/TreeSynth) and proves the SLR tables are covered: every production
// the shipped pipeline can reduce, every reachable state, every
// dynamic-tie point — each witnessed by a program that runs through three
// oracles (IR interpreter, table-driven backend + VAX simulator, PCC
// baseline + VAX simulator) which must agree byte-for-byte.
//
//   gg-fuzz [--seed=N] [--threads=N] [--mode=cover|analyze]
//           [--target-production=ID] [--max-programs=N]
//           [--stmts-per-program=N] [--minutes=N] [--no-shrink]
//           [--coverage-json=FILE] [--stats-json=FILE] [--fail-on-gap]
//
//   --mode=cover    (default) plan + synthesize + run the three oracles;
//                   exit 1 on any differential failure.
//   --mode=analyze  plan only: report what the witness search can and
//                   cannot reach (statically shadowed productions,
//                   unwitnessed targets) without running a single program.
//   --target-production=ID   plan only witnesses reducing production ID
//                   (the directed mode for reproducing one table row).
//   --minutes=N     keep running extra rounds with derived seeds until
//                   the wall-clock budget is spent (round count varies
//                   with machine speed; each round is deterministic in
//                   its seed).
//   --fail-on-gap   exit 1 when any reachable target went unwitnessed.
//
// Determinism contract: for a fixed --seed, the corpus, every verdict,
// and the --coverage-json artifact are byte-identical at any --threads.
//
//===----------------------------------------------------------------------===//

#include "cg/CodeGenerator.h"
#include "fuzz/Fuzzer.h"
#include "ir/Interp.h"
#include "pcc/PccCodeGen.h"
#include "support/CliOptions.h"
#include "vaxsim/Simulator.h"
#include "support/Coverage.h"
#include "support/ExitCodes.h"
#include "support/Strings.h"
#include "vax/VaxTarget.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace gg;

namespace {

void usage() {
  fprintf(stderr,
          "usage: gg-fuzz [--seed=N] [--threads=N] [--mode=cover|analyze]\n"
          "               [--target-production=ID] [--max-programs=N]\n"
          "               [--stmts-per-program=N] [--minutes=N]\n"
          "               [--no-shrink] [--fail-on-gap]\n"
          "               [--coverage-json=FILE] [--stats-json=FILE]\n");
}

/// Renders a production with its grammar names for the reports.
std::string prodLine(const Grammar &G, int ProdId) {
  return strf("  p%-4d %s", ProdId,
              renderProduction(G, G.prod(ProdId)).c_str());
}

void printPlan(const Grammar &G, const FuzzPlanStats &PS, bool Verbose) {
  const size_t Shadowed = PS.ShadowedProductions.size();
  const size_t DynShadowed = PS.DynShadowedProductions.size();
  const size_t Reachable = PS.Productions - Shadowed - DynShadowed;
  printf("plan: %zu/%zu reachable productions witnessed "
         "(%zu statically + %zu dynamically shadowed, reported below)\n",
         PS.WitnessedProductions, Reachable, Shadowed, DynShadowed);
  const size_t Stranded = PS.StrandedDynPoints.size();
  printf("      %zu/%zu reachable states visited (%zu unreachable under "
         "the null chooser)\n",
         PS.WitnessedStates, PS.States - PS.UnreachableStates.size(),
         PS.UnreachableStates.size());
  printf("      %zu/%zu reachable dynamic-tie points consulted "
         "(%zu via deliberate blocks, %zu stranded, %zu in unreachable "
         "states)\n",
         PS.WitnessedDynPoints,
         PS.DynPoints - Stranded - PS.UnreachableDynPoints.size(),
         PS.BlockedWitnesses, Stranded, PS.UnreachableDynPoints.size());
  if (!PS.UnwitnessedProductions.empty()) {
    printf("unwitnessed productions (%zu):\n",
           PS.UnwitnessedProductions.size());
    for (int P : PS.UnwitnessedProductions)
      printf("%s\n", prodLine(G, P).c_str());
  }
  if (!PS.UnwitnessedStates.empty()) {
    printf("unwitnessed states (%zu):", PS.UnwitnessedStates.size());
    for (int S : PS.UnwitnessedStates)
      printf(" %d", S);
    printf("\n");
  }
  if (!PS.UnwitnessedDynPoints.empty()) {
    printf("unwitnessed dyn points (%zu):",
           PS.UnwitnessedDynPoints.size());
    for (const auto &[S, TI] : PS.UnwitnessedDynPoints)
      printf(" (%d,%d)", S, TI);
    printf("\n");
  }
  if (Verbose && Shadowed) {
    printf("statically shadowed productions (never the default reduce "
           "target; unreachable with the shipped null chooser):\n");
    for (int P : PS.ShadowedProductions)
      printf("%s\n", prodLine(G, P).c_str());
  }
  if (Verbose && DynShadowed) {
    printf("dynamically shadowed productions (every reduce site lies in "
           "a state the null-chooser defaults never route into):\n");
    for (int P : PS.DynShadowedProductions)
      printf("%s\n", prodLine(G, P).c_str());
  }
  if (Verbose && !PS.UnreachableStates.empty()) {
    printf("unreachable states (no null-chooser parse enters them):");
    for (int S : PS.UnreachableStates)
      printf(" %d", S);
    printf("\n");
  }
  if (Verbose && Stranded) {
    printf("stranded dyn points (consultable by no whole-statement "
           "linearization — only past a finished tree or at early EOF; "
           "the Matcher never parses either):");
    for (const auto &[S, TI] : PS.StrandedDynPoints)
      printf(" (%d,%d)", S, TI);
    printf("\n");
  }
}

} // namespace

int main(int Argc, char **Argv) {
  CommonDriverOptions Common;
  FuzzOptions Opts;
  bool Analyze = false;
  bool FailOnGap = false;
  long Minutes = 0;
  std::string Probe;
  std::string ProbeRun;
  int WitnessProd = -1;
  int StateInfo = -1;

  auto intVal = [](const std::string &A, long &Out) {
    auto Eq = A.find('=');
    auto V = parseInt(A.substr(Eq + 1));
    if (!V)
      return false;
    Out = static_cast<long>(*V);
    return true;
  };

  for (int I = 1; I < Argc; ++I) {
    const std::string A = Argv[I];
    long V = 0;
    switch (parseCommonDriverOption(A, Common)) {
    case CliParse::Ok:
      continue;
    case CliParse::Bad:
      return ExitUsage;
    case CliParse::NotMine:
      break;
    }
    if (A == "--help" || A == "-h") {
      usage();
      return ExitOk;
    } else if (startsWith(A, "--seed=") && intVal(A, V)) {
      Opts.Seed = static_cast<uint64_t>(V);
    } else if (startsWith(A, "--mode=")) {
      const std::string M = A.substr(7);
      if (M == "analyze")
        Analyze = true;
      else if (M != "cover") {
        fprintf(stderr, "gg-fuzz: unknown mode '%s'\n", M.c_str());
        usage();
        return ExitUsage;
      }
    } else if (startsWith(A, "--target-production=") && intVal(A, V)) {
      Opts.TargetProduction = static_cast<int>(V);
    } else if (startsWith(A, "--max-programs=") && intVal(A, V) && V >= 0) {
      Opts.MaxPrograms = static_cast<size_t>(V);
    } else if (startsWith(A, "--stmts-per-program=") && intVal(A, V) &&
               V > 0) {
      Opts.StmtsPerProgram = static_cast<size_t>(V);
    } else if (startsWith(A, "--minutes=") && intVal(A, V) && V >= 0) {
      Minutes = V;
    } else if (startsWith(A, "--probe=")) {
      Probe = A.substr(8);
    } else if (startsWith(A, "--probe-run=")) {
      ProbeRun = A.substr(12);
    } else if (startsWith(A, "--witness-production=") && intVal(A, V)) {
      WitnessProd = static_cast<int>(V);
    } else if (startsWith(A, "--state-info=") && intVal(A, V)) {
      StateInfo = static_cast<int>(V);
    } else if (A == "--no-shrink") {
      Opts.Shrink = false;
    } else if (A == "--fail-on-gap") {
      FailOnGap = true;
    } else {
      fprintf(stderr, "gg-fuzz: unknown option '%s'\n", A.c_str());
      usage();
      return ExitUsage;
    }
  }
  if (Common.Threads >= 0)
    Opts.Threads = Common.Threads;

  std::string Err;
  std::unique_ptr<VaxTarget> Target = VaxTarget::create(Err);
  if (!Target) {
    fprintf(stderr, "gg-fuzz: machine description failed to build: %s\n",
            Err.c_str());
    return ExitFatalFault;
  }
  TelemetryDump Dump(Common);

  Fuzzer F(*Target);

  if (StateInfo >= 0) {
    // Diagnostic surface: one state's incoming edges and action row.
    const PackedTables &PT = Target->packed();
    const TableSim &Sim = F.walk().sim();
    const int Dst = StateInfo;
    printf("edges into state %d:", Dst);
    for (int S = 0; S < PT.numStates(); ++S) {
      for (int TI = 0; TI < PT.numTerms(); ++TI) {
        Action A = PT.actionAt(S, TI);
        if (A.Kind == ActionType::Shift && A.Target == Dst)
          printf(" (%d --%s-->)", S, Sim.termName(TI).c_str());
      }
      for (int NI = 0; NI < PT.numNonterms(); ++NI)
        if (PT.gotoAt(S, NI) == Dst)
          printf(" (%d --nt%d-->)", S, NI);
    }
    printf("\nactions at state %d:", Dst);
    for (int TI = 0; TI < PT.numTerms(); ++TI) {
      Action A = PT.actionAt(Dst, TI);
      if (A.Kind == ActionType::Error)
        continue;
      const char *K = A.Kind == ActionType::Shift    ? "s"
                      : A.Kind == ActionType::Reduce ? "r"
                                                     : "acc";
      printf(" %s:%s%d", Sim.termName(TI).c_str(), K, A.Target);
    }
    printf("\ngotos from state %d:", Dst);
    for (int NI = 0; NI < PT.numNonterms(); ++NI)
      if (PT.gotoAt(Dst, NI) >= 0)
        printf(" nt%d->%d", NI, PT.gotoAt(Dst, NI));
    printf("\n");
    return ExitOk;
  }

  if (WitnessProd >= 0) {
    const Grammar &G = Target->grammar();
    const Production &P = G.prod(WitnessProd);
    const TableSim &Sim = F.walk().sim();
    auto render = [&](const std::vector<int> &Toks) {
      std::string S;
      for (int TI : Toks)
        S += Sim.termName(TI) + " ";
      return S;
    };
    printf("reduce sites of p%d:", WitnessProd);
    for (const auto &[S, TI] : F.walk().reduceSites(WitnessProd))
      printf(" (%d,%s)", S, Sim.termName(TI).c_str());
    printf("\n");
    {
      // Incoming edges of each distinct site state — how the automaton
      // gets there at all.
      const PackedTables &PT = Target->packed();
      std::vector<int> SiteStates;
      for (const auto &[S, TI] : F.walk().reduceSites(WitnessProd))
        if (std::find(SiteStates.begin(), SiteStates.end(), S) ==
            SiteStates.end())
          SiteStates.push_back(S);
      for (int Dst : SiteStates) {
        printf("edges into state %d:", Dst);
        for (int S = 0; S < PT.numStates(); ++S) {
          for (int TI = 0; TI < PT.numTerms(); ++TI) {
            Action A = PT.actionAt(S, TI);
            if (A.Kind == ActionType::Shift && A.Target == Dst)
              printf(" (%d --%s-->)", S, Sim.termName(TI).c_str());
          }
          for (int NI = 0; NI < PT.numNonterms(); ++NI)
            if (PT.gotoAt(S, NI) == Dst)
              printf(" (%d --nt%d-->)", S, NI);
        }
        printf("\n");
      }
    }
    printf("contexts of %s:\n", G.symbolName(P.Lhs).c_str());
    for (const auto &Cx : F.walk().contexts(G.ntIndex(P.Lhs)))
      printf("  [%s] _ [%s]\n", render(Cx.Pre).c_str(),
             render(Cx.Post).c_str());
    for (const auto &Cx : F.walk().contexts(G.ntIndex(P.Lhs))) {
      for (uint64_t V = 0; V < 32; ++V) {
        std::vector<int> Toks = Cx.Pre;
        uint64_t Var = V;
        bool Derivable = true;
        for (SymId S : P.Rhs) {
          if (G.isTerminal(S)) {
            Toks.push_back(G.termIndex(S));
            continue;
          }
          const auto &Ys = F.walk().yields(G.ntIndex(S));
          if (Ys.empty()) {
            Derivable = false;
            break;
          }
          const auto &Y = Ys[Var % Ys.size()];
          Var /= Ys.size();
          Toks.insert(Toks.end(), Y.begin(), Y.end());
        }
        if (!Derivable || Var != 0)
          break;
        Toks.insert(Toks.end(), Cx.Post.begin(), Cx.Post.end());
        SimTrace Tr = F.walk().sim().run(Toks);
        bool Hit = std::find(Tr.Reduces.begin(), Tr.Reduces.end(),
                             WitnessProd) != Tr.Reduces.end();
        printf("  trial V=%llu: %s -> %s%s\n",
               static_cast<unsigned long long>(V), render(Toks).c_str(),
               Tr.Accepted ? "accepted" : Tr.Error.c_str(),
               Hit ? " HIT" : "");
      }
    }
    std::vector<int> W;
    if (!F.walk().witnessForProduction(WitnessProd, W)) {
      printf("no witness found for p%d\n", WitnessProd);
      return ExitCompileFailure;
    }
    printf("witness for p%d:", WitnessProd);
    for (int TI : W)
      printf(" %s", F.walk().sim().termName(TI).c_str());
    printf("\n");
    return ExitOk;
  }

  if (!ProbeRun.empty()) {
    // Diagnostic surface: synthesize ONE statement program from a
    // space-separated terminal sequence, dump both backends' assembly,
    // and run all three oracles on it.
    std::vector<std::string> Toks;
    for (std::string_view Part : splitWhitespace(ProbeRun))
      Toks.emplace_back(Part);
    SimTrace Tr = F.walk().sim().runNames(Toks);
    SynthStmt S;
    S.Tokens = Toks;
    S.ExpectBlocked = !Tr.Accepted;
    printf("probe-run: parse %s\n",
           Tr.Accepted ? "accepted" : "blocked (deliberate witness)");
    std::vector<SynthStmt> Stmts{S};
    Program PG;
    SynthReport RG;
    std::string E2;
    if (!F.synth().buildProgram(Stmts, Opts.Seed, PG, RG, E2)) {
      printf("synth failed: %s\n", E2.c_str());
      return ExitCompileFailure;
    }
    InterpResult Ref = interpret(PG);
    printf("interp: %s\n== output ==\n%s== end ==\n",
           Ref.Ok ? "ok" : Ref.Error.c_str(), Ref.Output.c_str());
    CodeGenOptions GOpts;
    GOpts.Transform.RawTrees = true;
    GGCodeGenerator GG(*Target, GOpts);
    std::string GGAsm;
    Program PG2;
    SynthReport RG2;
    F.synth().buildProgram(Stmts, Opts.Seed, PG2, RG2, E2);
    if (!GG.compile(PG2, GGAsm, E2)) {
      printf("gg compile failed: %s\n", E2.c_str());
    } else {
      printf("== gg asm ==\n%s== end ==\n", GGAsm.c_str());
      SimResult RR = assembleAndRun(GGAsm);
      printf("gg run: %s\n== output ==\n%s== end ==\n",
             RR.Ok ? "ok" : RR.Error.c_str(), RR.Output.c_str());
    }
    Program PP;
    SynthReport RP;
    F.synth().buildProgram(Stmts, Opts.Seed, PP, RP, E2);
    PccCodeGenerator Pcc;
    std::string PccAsm;
    if (!Pcc.compile(PP, PccAsm, E2)) {
      printf("pcc compile failed: %s\n", E2.c_str());
    } else {
      printf("== pcc asm ==\n%s== end ==\n", PccAsm.c_str());
      SimResult RR = assembleAndRun(PccAsm);
      printf("pcc run: %s\n== output ==\n%s== end ==\n",
             RR.Ok ? "ok" : RR.Error.c_str(), RR.Output.c_str());
    }
    return ExitOk;
  }

  if (!Probe.empty()) {
    // Diagnostic surface: simulate one space-separated terminal sequence
    // and dump the exact trace (used to understand coverage gaps).
    std::vector<std::string> Toks;
    for (std::string_view Part : splitWhitespace(Probe))
      Toks.emplace_back(Part);
    SimTrace Tr = F.walk().sim().runNames(Toks);
    printf("probe: %s\n", Tr.Accepted ? "accepted" : Tr.Error.c_str());
    printf("  reduces:");
    for (int P : Tr.Reduces)
      printf(" p%d", P);
    printf("\n  states:");
    for (int S : Tr.States)
      printf(" %d", S);
    printf("\n  dyn consults:");
    for (const auto &[S, TI] : Tr.DynConsults)
      printf(" (%d,%d)", S, TI);
    printf("\n");
    return Tr.Accepted ? ExitOk : ExitCompileFailure;
  }

  if (Analyze) {
    FuzzPlanStats PS;
    std::vector<SynthStmt> Corpus = F.plan(Opts, PS);
    printPlan(Target->grammar(), PS, /*Verbose=*/true);
    printf("corpus: %zu witness statements\n", Corpus.size());
    const bool Gap = !PS.UnwitnessedProductions.empty() ||
                     !PS.UnwitnessedStates.empty() ||
                     !PS.UnwitnessedDynPoints.empty();
    return FailOnGap && Gap ? ExitCompileFailure : ExitOk;
  }

  const auto Start = std::chrono::steady_clock::now();
  size_t Round = 0;
  size_t TotalPrograms = 0, TotalFailures = 0;
  int Exit = ExitOk;
  FuzzResult First;
  do {
    FuzzOptions RoundOpts = Opts;
    // Each extra round reseeds deterministically off the base seed so a
    // --minutes soak explores new bindings while staying reproducible
    // per round.
    RoundOpts.Seed = Opts.Seed + 0x9E3779B9ull * Round;
    FuzzResult R = F.run(RoundOpts);
    if (Round == 0) {
      First = R;
      printPlan(Target->grammar(), R.Plan, /*Verbose=*/false);
    }
    TotalPrograms += R.Programs;
    TotalFailures += R.Failures.size();
    for (const FuzzFailure &Fl : R.Failures) {
      fprintf(stderr,
              "gg-fuzz: FAILURE (round %zu, program %zu, seed 0x%llx)\n"
              "  %s\n  reproducer (%zu statement(s)):\n",
              Round, Fl.ProgramIndex,
              static_cast<unsigned long long>(Fl.Seed), Fl.Detail.c_str(),
              Fl.Reproducer.size());
      for (const SynthStmt &S : Fl.Reproducer) {
        std::string Line = joinStrings(S.Tokens, " ");
        fprintf(stderr, "    %s%s\n", Line.c_str(),
                S.ExpectBlocked ? "   [expect-blocked]" : "");
      }
      Exit = ExitCompileFailure;
    }
    ++Round;
  } while (Exit == ExitOk && Minutes > 0 &&
           std::chrono::steady_clock::now() - Start <
               std::chrono::minutes(Minutes));

  printf("gg-fuzz: %zu round(s), %zu program(s), %zu statement(s) "
         "(%zu live, %zu guarded, %zu expected blocks, %zu pcc-exempt), "
         "%zu parse-only witness(es), %zu failure(s)\n",
         Round, TotalPrograms, First.Statements, First.Live, First.Guarded,
         First.ExpectedBlocks, First.PccExemptStatements,
         First.ParseOnlyStatements, TotalFailures);
  const bool Gap = !First.Plan.UnwitnessedProductions.empty() ||
                   !First.Plan.UnwitnessedStates.empty() ||
                   !First.Plan.UnwitnessedDynPoints.empty();
  if (FailOnGap && Gap && Exit == ExitOk)
    Exit = ExitCompileFailure;
  return Exit;
}
