//===- gg_load.cpp - compile-server load driver -------------------------------===//
//
// Drives a live `compile_minic --serve=SOCKET` daemon (docs/server.md)
// with the deterministic --gen-corpus program population, concurrently,
// and reports throughput + latency percentiles + error-frame counts as a
// gg-bench-v1 metrics file for the regression sentinel.
//
//   gg-load --socket=PATH [--spawn=BIN [--serve-arg=ARG]...]
//           [--requests=N] [--clients=K] [--corpus=N] [--deadline-ms=N]
//           [--max-steps=N] [--max-arena=BYTES] [--crash-every=N]
//           [--timeout-ms=N] [--hedge-ms=N] [--open-loop=RPS] [--slo-ms=N]
//           [--reload-every=N] [--min-generation=N] [--expect-sheds]
//           [--trace-ids=BASE] [--verify] [--bench-json=FILE]
//           [--bench-prefix=STR] [--bench-merge] [--no-shutdown]
//
// --spawn=BIN forks BIN (compile_minic, or scripts/serve.sh for
// supervisor drills) with --serve=SOCKET plus every --serve-arg, and
// asserts at exit that the process died cleanly — the fault-matrix soak's
// "zero process deaths" check. Without --spawn, gg-load connects to an
// already-running server at --socket.
//
// gg-load is also the client half of the crash-only recovery loop: when a
// connection dies mid-request (server crashed; supervisor restarting it),
// the client reconnects with backoff and replays its in-flight request AT
// MOST ONCE — safe because a response is a pure function of the request.
// --crash-every=N injects a Crash frame before every Nth request (the
// server must run with --serve-allow-crash, under scripts/serve.sh).
//
// Overload resilience (the client half of the server's admission
// control): an OVERLOADED frame is honored by sleeping at least the
// server's retry-after hint, grown exponentially across rounds with
// proportional jitter (capped at 2s), then resending — until the
// per-request --timeout-ms budget would be blown, at which point the shed
// is recorded as terminal rather than a give-up. --hedge-ms=N resends a
// request that has gone unanswered for N ms on the same connection
// (purity makes the duplicate safe; the loser counts as a stray).
// --open-loop=RPS switches from closed-loop (next request after the last
// answer) to a fixed arrival schedule that never adapts to service rate —
// the honest way to measure goodput and shed rate at saturation; open
// loop never retries a shed. --reload-every=N injects a Reload frame
// before every Nth request; --min-generation asserts the table
// generation observed in responses reached N. Responses carry the serving
// table generation, and gg-load asserts it never regresses within one
// connection (a crash restart legally resets it).
//
// Request ids are client-chosen and deterministic: request k carries id
// BASE+k (BASE defaults to 1). --trace-ids=BASE moves the id namespace,
// so several gg-load runs against one server (or one --trace-json trace)
// stay distinguishable — the server threads the client id through its
// spans and flight events, and gg-report --trace joins on it. Latencies
// are also recorded per observed table generation and emitted as
// gen<G>_* metrics in the gg-bench-v1 artifact, so a reload mid-run
// shows up as two latency populations instead of one smeared tail.
//
// --verify recomputes each program's single-shot assembly in-process
// (same CompileService the server uses) and asserts byte-identical
// payloads for every clean response — responses with blocked or
// recovered trees (i.e. requests an injected fault actually hit) are
// quarantined by the server and skipped here, as are programs whose
// local reference compile is itself fault-afflicted.
//
// Exit codes follow support/ExitCodes.h: 1 on any verify mismatch,
// client give-up, unclean server death, generation regression, missed
// --slo-ms p99 target, unmet --min-generation, or --expect-sheds with no
// shed observed.
//
//===----------------------------------------------------------------------===//

#include "cg/CompileService.h"
#include "support/ExitCodes.h"
#include "support/FaultInject.h"
#include "support/Frame.h"
#include "support/Json.h"
#include "support/Strings.h"
#include "workload/ProgramGen.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <mutex>
#include <optional>
#include <poll.h>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace gg;

namespace {

constexpr uint64_t NsPerMs = 1000 * 1000;

struct LoadOptions {
  std::string Socket;
  std::string SpawnBin;
  std::vector<std::string> ServeArgs;
  int Requests = 50;
  int Clients = 4;
  int Corpus = 16;
  uint32_t DeadlineMs = 0; ///< 0 = server default
  uint64_t MaxSteps = 0;
  uint64_t MaxArenaBytes = 0;
  int CrashEvery = 0;   ///< inject a Crash frame before every Nth request
  int ReloadEvery = 0;  ///< inject a Reload frame before every Nth request
  int TimeoutMs = 30000; ///< per-request wall budget (send+retries+await)
  int HedgeMs = 0;       ///< resend an unanswered request after N ms
  int OpenLoopRps = 0;   ///< fixed arrival rate per client thread; 0 = closed
  int SloMs = 0;         ///< p99 target; missing it fails the run
  uint64_t MinGeneration = 0; ///< require the observed generation to reach N
  uint64_t TraceIdBase = 1;   ///< request k carries id BASE+k (--trace-ids=)
  bool ExpectSheds = false;   ///< fail unless at least one OVERLOADED arrived
  bool Verify = false;
  bool Shutdown = true;
  std::string BenchJsonPath;
  std::string BenchPrefix; ///< prepended to every metric name
  bool BenchMerge = false; ///< keep existing metrics in --bench-json
};

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Connects to the server's Unix socket, retrying with backoff for up to
/// ~10 seconds (the supervisor's restart window). Returns -1 on give-up.
int connectWithRetry(const std::string &Path) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return -1;
  strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  int DelayMs = 20;
  for (int Try = 0; Try < 24; ++Try) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) == 0)
      return Fd;
    ::close(Fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
    DelayMs = std::min(DelayMs * 2, 1000);
  }
  return -1;
}

bool writeAll(int Fd, const char *P, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::write(Fd, P, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

/// Shared tallies across client threads.
struct Tally {
  std::atomic<uint64_t> Ok{0};
  std::atomic<uint64_t> Quarantined{0}; ///< deadline/step/mem/watchdog/protocol
  std::atomic<uint64_t> CompileErrors{0};
  std::atomic<uint64_t> Replays{0};
  std::atomic<uint64_t> GaveUp{0};
  std::atomic<uint64_t> Overloaded{0};      ///< OVERLOADED frames received
  std::atomic<uint64_t> OverloadedFinal{0}; ///< sheds that ended a request
  std::atomic<uint64_t> Retries{0};         ///< resends after a shed
  std::atomic<uint64_t> Hedges{0};          ///< duplicate sends (--hedge-ms)
  std::atomic<uint64_t> ReloadAcks{0};      ///< Reloaded frames received
  std::atomic<uint64_t> DeadlineMissed{0};  ///< answered past --slo-ms
  std::atomic<uint64_t> MaxGeneration{0};
  std::atomic<uint64_t> GenerationRegressions{0};
  std::atomic<uint64_t> VerifyMismatches{0};
  std::atomic<uint64_t> VerifySkipped{0};
  std::atomic<uint64_t> Verified{0};
  std::atomic<uint64_t> StrayResponses{0};
  std::atomic<uint64_t> CrashesInjected{0};
  std::atomic<uint64_t> AsmBytes{0};
  std::mutex LatM;
  std::vector<uint64_t> LatenciesNs;
  /// Latency population per serving table generation (response-stamped),
  /// for the gen<G>_* bench metrics. Generation 0 collects responses
  /// that carried no generation stamp (e.g. protocol errors).
  std::map<uint64_t, std::vector<uint64_t>> LatenciesByGenNs;
};

/// One client connection, reconnecting across server restarts.
class Client {
public:
  enum class Event { Response, Overload, Timeout, Lost };

  Client(const std::string &Socket, Tally &T) : Socket(Socket), T(T) {}
  ~Client() { drop(); }

  bool ensureConnected() {
    if (Fd >= 0)
      return true;
    Fd = connectWithRetry(Socket);
    Reader = FrameReader();
    // A crash restart legally resets the server's generation counter, so
    // monotonicity is asserted per connection, not per process.
    LastGen = 0;
    return Fd >= 0;
  }

  void drop() {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
  }

  bool send(FrameType Type, const std::string &Payload) {
    if (!ensureConnected())
      return false;
    std::string Wire;
    appendFrame(Wire, Type, Payload);
    int ChunkMs = faultInject().slowClientChunkMs();
    if (ChunkMs > 0 && Wire.size() > 64) {
      // slow-client fault: dribble the frame onto the wire in ~16 slices
      // with a pause between each — the server's incremental reader must
      // treat every partial frame as NeedMore, never as corruption.
      faultInject().noteSlowClientWrite();
      size_t Step = std::max<size_t>(Wire.size() / 16, 16);
      for (size_t Off = 0; Off < Wire.size(); Off += Step) {
        size_t Len = std::min(Step, Wire.size() - Off);
        if (!writeAll(Fd, Wire.data() + Off, Len)) {
          drop();
          return false;
        }
        if (Off + Len < Wire.size())
          std::this_thread::sleep_for(std::chrono::milliseconds(ChunkMs));
      }
      return true;
    }
    if (!writeAll(Fd, Wire.data(), Wire.size())) {
      drop();
      return false;
    }
    return true;
  }

  /// Blocks (via poll) until one complete frame, the absolute deadline,
  /// or connection loss. Returns 1 with \p F filled, 0 on deadline (the
  /// connection stays usable — hedges and open-loop sends continue on
  /// it), -1 on loss. \p DeadlineNs is absolute nowNs() time.
  int pump(uint64_t DeadlineNs, Frame &F) {
    char Chunk[65536];
    while (true) {
      FrameReader::Status S = Reader.next(F);
      if (S == FrameReader::Status::NeedMore) {
        if (Fd < 0)
          return -1;
        uint64_t Now = nowNs();
        if (Now >= DeadlineNs)
          return 0;
        pollfd P{};
        P.fd = Fd;
        P.events = POLLIN;
        uint64_t WaitMs = (DeadlineNs - Now) / NsPerMs + 1;
        int R = ::poll(&P, 1,
                       static_cast<int>(std::min<uint64_t>(WaitMs, 60000)));
        if (R < 0) {
          if (errno == EINTR)
            continue;
          drop();
          return -1;
        }
        if (R == 0)
          continue; // re-check the deadline at the top
        ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
        if (N < 0 && errno == EINTR)
          continue;
        if (N <= 0) {
          drop();
          return -1;
        }
        Reader.feed(Chunk, static_cast<size_t>(N));
        continue;
      }
      if (S == FrameReader::Status::Corrupt)
        continue; // reader already resynced
      return 1;
    }
  }

  /// Closed-loop wait: reads until the Response or Overloaded frame for
  /// \p WantId arrives (counting strays, absorbing Reloaded acks), the
  /// connection dies, or the absolute deadline passes.
  Event awaitEvent(uint64_t WantId, uint64_t DeadlineNs, ResponseMsg &Resp,
                   OverloadMsg &Over) {
    while (true) {
      Frame F;
      int R = pump(DeadlineNs, F);
      if (R == 0)
        return Event::Timeout;
      if (R < 0)
        return Event::Lost;
      std::string Err;
      switch (F.Type) {
      case FrameType::Response:
        if (!decodeResponse(F.Payload, Resp, Err) || Resp.Id != WantId) {
          // Protocol-error responses carry id 0; a late response for a
          // request we already replayed or hedged is also possible.
          ++T.StrayResponses;
          break;
        }
        noteGeneration(Resp.Generation);
        return Event::Response;
      case FrameType::Overloaded:
        if (!decodeOverload(F.Payload, Over, Err) || Over.Id != WantId) {
          ++T.StrayResponses;
          break;
        }
        return Event::Overload;
      case FrameType::Reloaded: {
        ReloadedMsg RM;
        if (decodeReloaded(F.Payload, RM, Err)) {
          ++T.ReloadAcks;
          noteGeneration(RM.Generation);
        } else {
          ++T.StrayResponses;
        }
        break;
      }
      default:
        ++T.StrayResponses;
        break;
      }
    }
  }

  /// Records a response's table generation: per-connection monotonicity
  /// (a regression within one connection means the server answered from
  /// an older image after a newer one — a reload-atomicity bug) plus the
  /// process-wide max for --min-generation.
  void noteGeneration(uint64_t G) {
    if (G == 0)
      return;
    if (G < LastGen)
      ++T.GenerationRegressions;
    if (G > LastGen)
      LastGen = G;
    uint64_t Cur = T.MaxGeneration.load(std::memory_order_relaxed);
    while (G > Cur && !T.MaxGeneration.compare_exchange_weak(
                          Cur, G, std::memory_order_relaxed)) {
    }
  }

private:
  std::string Socket;
  Tally &T;
  int Fd = -1;
  uint64_t LastGen = 0;
  FrameReader Reader;
};

/// The local single-shot reference for --verify: assembly per corpus
/// program, or nullopt when the program is unverifiable (the local
/// reference compile was itself hit by an injected fault).
struct VerifyOracle {
  std::vector<std::optional<std::string>> Expected;

  bool build(const std::vector<std::string> &Corpus) {
    std::string Err;
    std::unique_ptr<CompileService> Svc = CompileService::create(Err);
    if (!Svc) {
      fprintf(stderr, "gg-load: --verify reference pipeline failed: %s\n",
              Err.c_str());
      return false;
    }
    Expected.resize(Corpus.size());
    for (size_t I = 0; I < Corpus.size(); ++I) {
      RequestMsg Req;
      Req.Id = I;
      Req.Source = Corpus[I];
      RequestBudget NoLimits;
      HandlerResult R = Svc->compile(Req, NoLimits);
      if (R.Status == ResponseStatus::Ok && R.BlockedTrees == 0)
        Expected[I] = std::move(R.Payload);
    }
    return true;
  }
};

/// Sorts one answered response into the tallies (shared by the closed-
/// and open-loop paths).
void classifyResponse(const ResponseMsg &Resp, size_t ProgIdx, Tally &T,
                      const LoadOptions &Opt, const VerifyOracle &Oracle) {
  switch (Resp.Status) {
  case ResponseStatus::Ok:
    ++T.Ok;
    T.AsmBytes += Resp.Payload.size();
    if (Opt.Verify) {
      if (Resp.BlockedTrees > 0 || Resp.RecoveredTrees > 0 ||
          !Oracle.Expected[ProgIdx]) {
        // A fault actually hit this request (or the local reference):
        // quarantine semantics, nothing to compare.
        ++T.VerifySkipped;
      } else if (Resp.Payload != *Oracle.Expected[ProgIdx]) {
        ++T.VerifyMismatches;
        fprintf(stderr,
                "gg-load: VERIFY MISMATCH request %llu (program %zu): "
                "%zu vs %zu bytes\n",
                static_cast<unsigned long long>(Resp.Id), ProgIdx,
                Resp.Payload.size(), Oracle.Expected[ProgIdx]->size());
      } else {
        ++T.Verified;
      }
    }
    break;
  case ResponseStatus::CompileError:
    ++T.CompileErrors;
    break;
  default:
    ++T.Quarantined;
    break;
  }
}

/// The post-shed sleep: at least the server's retry-after hint, grown
/// exponentially across rounds (x16 cap), with proportional deterministic
/// jitter so a herd of shed clients does not re-arrive in lockstep.
/// Capped at 2s to keep a saturated run's tail bounded.
uint64_t backoffMs(uint32_t RetryAfterMs, uint32_t Round, uint64_t Salt) {
  uint64_t Base = std::max<uint32_t>(RetryAfterMs, 1);
  uint64_t Grown = Base << std::min<uint32_t>(Round, 4);
  uint64_t H = (Salt * 0x9E3779B97F4A7C15ull) ^
               (uint64_t(Round + 1) * 2654435761u);
  uint64_t Jit = H % (Base / 2 + 1);
  return std::min<uint64_t>(Grown + Jit, 2000);
}

void usage() {
  fprintf(stderr,
          "usage: gg-load --socket=PATH [--spawn=BIN [--serve-arg=ARG]...]\n"
          "               [--requests=N] [--clients=K] [--corpus=N]\n"
          "               [--deadline-ms=N] [--max-steps=N] "
          "[--max-arena=BYTES]\n"
          "               [--crash-every=N] [--reload-every=N] "
          "[--timeout-ms=N]\n"
          "               [--hedge-ms=N] [--open-loop=RPS] [--slo-ms=N]\n"
          "               [--min-generation=N] [--trace-ids=BASE]\n"
          "               [--expect-sheds] [--verify]\n"
          "               [--bench-json=FILE] [--bench-prefix=STR]\n"
          "               [--bench-merge] [--no-shutdown]\n");
}

bool intFlag(const std::string &A, const char *Prefix, int64_t Min,
             int64_t Max, int64_t &Out, bool &Matched) {
  size_t L = strlen(Prefix);
  Matched = A.rfind(Prefix, 0) == 0;
  if (!Matched)
    return true;
  std::optional<int64_t> N = parseInt(std::string_view(A).substr(L));
  if (!N || *N < Min || *N > Max) {
    fprintf(stderr, "gg-load: bad value in %s\n", A.c_str());
    return false;
  }
  Out = *N;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  ::signal(SIGPIPE, SIG_IGN);
  LoadOptions Opt;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    bool M = false;
    int64_t V = 0;
    if (A.rfind("--socket=", 0) == 0)
      Opt.Socket = A.substr(9);
    else if (A.rfind("--spawn=", 0) == 0)
      Opt.SpawnBin = A.substr(8);
    else if (A.rfind("--serve-arg=", 0) == 0)
      Opt.ServeArgs.push_back(A.substr(12));
    else if (!intFlag(A, "--requests=", 1, 10000000, V, M))
      return ExitUsage;
    else if (M)
      Opt.Requests = static_cast<int>(V);
    else if (!intFlag(A, "--clients=", 1, 256, V, M))
      return ExitUsage;
    else if (M)
      Opt.Clients = static_cast<int>(V);
    else if (!intFlag(A, "--corpus=", 1, 100000, V, M))
      return ExitUsage;
    else if (M)
      Opt.Corpus = static_cast<int>(V);
    else if (!intFlag(A, "--deadline-ms=", 0, 86400000, V, M))
      return ExitUsage;
    else if (M)
      Opt.DeadlineMs = static_cast<uint32_t>(V);
    else if (!intFlag(A, "--max-steps=", 0, INT64_MAX, V, M))
      return ExitUsage;
    else if (M)
      Opt.MaxSteps = static_cast<uint64_t>(V);
    else if (!intFlag(A, "--max-arena=", 0, INT64_MAX, V, M))
      return ExitUsage;
    else if (M)
      Opt.MaxArenaBytes = static_cast<uint64_t>(V);
    else if (!intFlag(A, "--crash-every=", 1, 1000000, V, M))
      return ExitUsage;
    else if (M)
      Opt.CrashEvery = static_cast<int>(V);
    else if (!intFlag(A, "--reload-every=", 1, 1000000, V, M))
      return ExitUsage;
    else if (M)
      Opt.ReloadEvery = static_cast<int>(V);
    else if (!intFlag(A, "--timeout-ms=", 1, 600000, V, M))
      return ExitUsage;
    else if (M)
      Opt.TimeoutMs = static_cast<int>(V);
    else if (!intFlag(A, "--hedge-ms=", 1, 600000, V, M))
      return ExitUsage;
    else if (M)
      Opt.HedgeMs = static_cast<int>(V);
    else if (!intFlag(A, "--open-loop=", 1, 1000000, V, M))
      return ExitUsage;
    else if (M)
      Opt.OpenLoopRps = static_cast<int>(V);
    else if (!intFlag(A, "--slo-ms=", 1, 600000, V, M))
      return ExitUsage;
    else if (M)
      Opt.SloMs = static_cast<int>(V);
    else if (!intFlag(A, "--min-generation=", 1, INT64_MAX, V, M))
      return ExitUsage;
    else if (M)
      Opt.MinGeneration = static_cast<uint64_t>(V);
    else if (!intFlag(A, "--trace-ids=", 1, INT64_MAX, V, M))
      return ExitUsage;
    else if (M)
      Opt.TraceIdBase = static_cast<uint64_t>(V);
    else if (A == "--expect-sheds")
      Opt.ExpectSheds = true;
    else if (A == "--verify")
      Opt.Verify = true;
    else if (A == "--no-shutdown")
      Opt.Shutdown = false;
    else if (A == "--bench-merge")
      Opt.BenchMerge = true;
    else if (A.rfind("--bench-json=", 0) == 0)
      Opt.BenchJsonPath = A.substr(13);
    else if (A.rfind("--bench-prefix=", 0) == 0)
      Opt.BenchPrefix = A.substr(15);
    else {
      fprintf(stderr, "gg-load: unknown option %s\n", A.c_str());
      usage();
      return ExitUsage;
    }
  }
  if (Opt.Socket.empty()) {
    usage();
    return ExitUsage;
  }

  // The same deterministic corpus as `compile_minic --gen-corpus=N`, so
  // the server compiles the population the differential tests know.
  std::vector<std::string> Corpus;
  Corpus.reserve(Opt.Corpus);
  for (int Case = 0; Case < Opt.Corpus; ++Case) {
    GenOptions GOpts;
    GOpts.Functions = 4 + Case % 3;
    GOpts.StmtsPerFunction = 6 + Case % 5;
    Corpus.push_back(generateProgram(0xD1FF0000u + Case, GOpts));
  }

  VerifyOracle Oracle;
  if (Opt.Verify && !Oracle.build(Corpus))
    return ExitFatalFault;

  // Spawn the server (or supervisor script) if requested.
  pid_t ServerPid = -1;
  if (!Opt.SpawnBin.empty()) {
    ::unlink(Opt.Socket.c_str());
    ServerPid = fork();
    if (ServerPid < 0) {
      fprintf(stderr, "gg-load: fork: %s\n", strerror(errno));
      return ExitFatalFault;
    }
    if (ServerPid == 0) {
      std::vector<std::string> Args;
      Args.push_back(Opt.SpawnBin);
      Args.push_back("--serve=" + Opt.Socket);
      for (const std::string &Extra : Opt.ServeArgs)
        Args.push_back(Extra);
      std::vector<char *> Argv;
      for (std::string &S : Args)
        Argv.push_back(S.data());
      Argv.push_back(nullptr);
      execv(Argv[0], Argv.data());
      fprintf(stderr, "gg-load: exec %s: %s\n", Opt.SpawnBin.c_str(),
              strerror(errno));
      _exit(ExitFatalFault);
    }
  }

  Tally T;
  std::atomic<int> NextRequest{0};
  // Client-side response timeout: by default generously beyond any server
  // deadline + watchdog grace, so a hit deadline still yields a
  // structured response rather than a client timeout.
  const uint64_t TimeoutNs = static_cast<uint64_t>(Opt.TimeoutMs) * NsPerMs;

  uint64_t WallStart = nowNs();

  // Closed loop: each client thread sends its next request as soon as the
  // previous one resolved; sheds are retried under the retry-after
  // contract inside the per-request timeout budget.
  auto ClosedLoopWorker = [&] {
    Client Conn(Opt.Socket, T);
    std::vector<uint64_t> LocalLat;
    std::map<uint64_t, std::vector<uint64_t>> LocalLatByGen;
    while (true) {
      int Idx = NextRequest.fetch_add(1);
      if (Idx >= Opt.Requests)
        break;
      if (Opt.CrashEvery > 0 && Idx > 0 && Idx % Opt.CrashEvery == 0) {
        // Crash drill: kill the server out from under everyone. The
        // supervisor restarts it; every client reconnects and replays.
        if (Conn.send(FrameType::Crash, ""))
          ++T.CrashesInjected;
        Conn.drop();
      }
      if (Opt.ReloadEvery > 0 && Idx > 0 && Idx % Opt.ReloadEvery == 0) {
        // Reload drill: hot-swap the table image mid-run. The Reloaded
        // ack arrives asynchronously and is absorbed during awaits.
        Conn.send(FrameType::Reload, "");
      }

      RequestMsg Req;
      Req.Id = Opt.TraceIdBase + static_cast<uint64_t>(Idx);
      Req.DeadlineMs = Opt.DeadlineMs;
      Req.MaxSteps = Opt.MaxSteps;
      Req.MaxArenaBytes = Opt.MaxArenaBytes;
      size_t ProgIdx = static_cast<size_t>(Idx) % Corpus.size();
      Req.Source = Corpus[ProgIdx];
      std::string Payload = encodeRequest(Req);

      // Replay on connection loss: output is a pure function of the
      // request, so replaying the in-flight request reproduces the lost
      // response exactly (at most once per connection epoch). Bounded at
      // 4 connection failures because a freshly-reconnected socket can
      // land in the listen backlog of a server that is already dying —
      // the kernel accepts the connect before the process finishes
      // aborting — so one replay can be burned without a second real
      // crash. Everything (sends, sheds, backoff, awaits) shares one
      // per-request wall budget of --timeout-ms.
      ResponseMsg Resp;
      OverloadMsg Over;
      bool Got = false;
      bool Shed = false;
      uint64_t T0 = nowNs();
      const uint64_t ReqDeadline = T0 + TimeoutNs;
      int ConnFailures = 0;
      uint32_t Round = 0; // shed-retry rounds completed (backoff growth)
      bool Hedged = false;
      bool NeedSend = true;
      while (!Got && !Shed) {
        if (NeedSend) {
          if (nowNs() >= ReqDeadline)
            break;
          if (!Conn.send(FrameType::Request, Payload)) {
            if (++ConnFailures >= 4)
              break;
            ++T.Replays;
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            continue;
          }
          NeedSend = false;
        }
        uint64_t WaitDeadline = ReqDeadline;
        if (Opt.HedgeMs > 0 && !Hedged)
          WaitDeadline = std::min(
              ReqDeadline, nowNs() + static_cast<uint64_t>(Opt.HedgeMs) *
                                         NsPerMs);
        Client::Event E = Conn.awaitEvent(Req.Id, WaitDeadline, Resp, Over);
        switch (E) {
        case Client::Event::Response:
          Got = true;
          break;
        case Client::Event::Overload: {
          ++T.Overloaded;
          uint64_t SleepMs = backoffMs(Over.RetryAfterMs, Round, Req.Id);
          ++Round;
          if (nowNs() + SleepMs * NsPerMs >= ReqDeadline) {
            // No budget left to honor the hint: the shed is this
            // request's answer (terminal), not a client give-up.
            Shed = true;
          } else {
            ++T.Retries;
            std::this_thread::sleep_for(std::chrono::milliseconds(SleepMs));
            NeedSend = true;
          }
          break;
        }
        case Client::Event::Timeout:
          if (WaitDeadline < ReqDeadline) {
            // The hedge timer fired, not the deadline: resend the same
            // id on the same stream. Purity makes the duplicate safe;
            // whichever response loses the race counts as a stray.
            Hedged = true;
            ++T.Hedges;
            NeedSend = true;
          } else {
            // Hard timeout: poison the stream so a late response for
            // this id cannot satisfy the next request.
            Conn.drop();
            Got = false;
            Shed = false;
            goto done;
          }
          break;
        case Client::Event::Lost:
          if (++ConnFailures >= 4)
            goto done;
          ++T.Replays;
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          NeedSend = true;
          break;
        }
      }
    done:
      if (Shed) {
        ++T.OverloadedFinal;
        continue;
      }
      if (!Got) {
        ++T.GaveUp;
        continue;
      }
      uint64_t LatNs = nowNs() - T0;
      LocalLat.push_back(LatNs);
      LocalLatByGen[Resp.Generation].push_back(LatNs);
      if (Opt.SloMs > 0 && LatNs > static_cast<uint64_t>(Opt.SloMs) * NsPerMs)
        ++T.DeadlineMissed;
      classifyResponse(Resp, ProgIdx, T, Opt, Oracle);
    }
    std::lock_guard<std::mutex> Lock(T.LatM);
    T.LatenciesNs.insert(T.LatenciesNs.end(), LocalLat.begin(),
                         LocalLat.end());
    for (auto &[Gen, Lats] : LocalLatByGen) {
      std::vector<uint64_t> &Dst = T.LatenciesByGenNs[Gen];
      Dst.insert(Dst.end(), Lats.begin(), Lats.end());
    }
  };

  // Open loop: requests depart on a fixed global schedule (request k at
  // WallStart + k/RPS) no matter how the server is doing — arrival rate
  // never adapts to service rate, which is the honest way to measure
  // goodput and shed rate at saturation. Sheds are terminal: the whole
  // point is to count them, not to smooth them over with retries.
  auto OpenLoopWorker = [&] {
    Client Conn(Opt.Socket, T);
    struct Pending {
      size_t ProgIdx;
      uint64_t SentNs;
    };
    std::map<uint64_t, Pending> Outstanding;
    std::vector<uint64_t> LocalLat;
    std::map<uint64_t, std::vector<uint64_t>> LocalLatByGen;
    const double PeriodNs = 1e9 / Opt.OpenLoopRps;

    auto HandleFrame = [&](const Frame &F) {
      std::string Err;
      if (F.Type == FrameType::Response) {
        ResponseMsg Resp;
        if (!decodeResponse(F.Payload, Resp, Err)) {
          ++T.StrayResponses;
          return;
        }
        Conn.noteGeneration(Resp.Generation);
        auto It = Outstanding.find(Resp.Id);
        if (It == Outstanding.end()) {
          ++T.StrayResponses;
          return;
        }
        uint64_t LatNs = nowNs() - It->second.SentNs;
        LocalLat.push_back(LatNs);
        LocalLatByGen[Resp.Generation].push_back(LatNs);
        if (Opt.SloMs > 0 &&
            LatNs > static_cast<uint64_t>(Opt.SloMs) * NsPerMs)
          ++T.DeadlineMissed;
        classifyResponse(Resp, It->second.ProgIdx, T, Opt, Oracle);
        Outstanding.erase(It);
      } else if (F.Type == FrameType::Overloaded) {
        OverloadMsg Over;
        if (!decodeOverload(F.Payload, Over, Err)) {
          ++T.StrayResponses;
          return;
        }
        auto It = Outstanding.find(Over.Id);
        if (It == Outstanding.end()) {
          ++T.StrayResponses;
          return;
        }
        ++T.Overloaded;
        ++T.OverloadedFinal;
        Outstanding.erase(It);
      } else if (F.Type == FrameType::Reloaded) {
        ReloadedMsg RM;
        if (decodeReloaded(F.Payload, RM, Err)) {
          ++T.ReloadAcks;
          Conn.noteGeneration(RM.Generation);
        } else {
          ++T.StrayResponses;
        }
      } else {
        ++T.StrayResponses;
      }
    };

    auto AbandonOutstanding = [&] {
      T.GaveUp += Outstanding.size();
      Outstanding.clear();
    };

    uint64_t LastSendNs = nowNs();
    bool MoreToSend = true;
    while (true) {
      if (MoreToSend) {
        int Idx = NextRequest.fetch_add(1);
        if (Idx >= Opt.Requests) {
          MoreToSend = false;
          continue;
        }
        uint64_t Due =
            WallStart + static_cast<uint64_t>(Idx * PeriodNs);
        // Drain arrivals until this request's scheduled departure.
        while (true) {
          uint64_t Now = nowNs();
          if (Now >= Due)
            break;
          Frame F;
          int R = Conn.pump(Due, F);
          if (R > 0) {
            HandleFrame(F);
          } else if (R < 0) {
            // Server died: everything outstanding on this connection is
            // lost (open loop never replays). send() below reconnects.
            AbandonOutstanding();
            break;
          } else {
            break; // departure time
          }
        }
        if (Opt.ReloadEvery > 0 && Idx > 0 && Idx % Opt.ReloadEvery == 0)
          Conn.send(FrameType::Reload, "");
        RequestMsg Req;
        Req.Id = Opt.TraceIdBase + static_cast<uint64_t>(Idx);
        Req.DeadlineMs = Opt.DeadlineMs;
        Req.MaxSteps = Opt.MaxSteps;
        Req.MaxArenaBytes = Opt.MaxArenaBytes;
        size_t ProgIdx = static_cast<size_t>(Idx) % Corpus.size();
        Req.Source = Corpus[ProgIdx];
        if (!Conn.send(FrameType::Request, encodeRequest(Req))) {
          ++T.GaveUp;
          continue;
        }
        Outstanding.emplace(Req.Id, Pending{ProgIdx, nowNs()});
        LastSendNs = nowNs();
      } else {
        if (Outstanding.empty())
          break;
        Frame F;
        int R = Conn.pump(LastSendNs + TimeoutNs, F);
        if (R > 0) {
          HandleFrame(F);
          continue;
        }
        AbandonOutstanding(); // drain timed out or connection died
        break;
      }
    }
    std::lock_guard<std::mutex> Lock(T.LatM);
    T.LatenciesNs.insert(T.LatenciesNs.end(), LocalLat.begin(),
                         LocalLat.end());
    for (auto &[Gen, Lats] : LocalLatByGen) {
      std::vector<uint64_t> &Dst = T.LatenciesByGenNs[Gen];
      Dst.insert(Dst.end(), Lats.begin(), Lats.end());
    }
  };

  std::vector<std::thread> Workers;
  for (int C = 0; C < Opt.Clients; ++C) {
    if (Opt.OpenLoopRps > 0)
      Workers.emplace_back(OpenLoopWorker);
    else
      Workers.emplace_back(ClosedLoopWorker);
  }
  for (std::thread &W : Workers)
    W.join();
  double WallSeconds = static_cast<double>(nowNs() - WallStart) / 1e9;

  // Clean shutdown + death audit.
  bool UncleanDeath = false;
  if (Opt.Shutdown) {
    Client Conn(Opt.Socket, T);
    Conn.send(FrameType::Shutdown, "");
  }
  if (ServerPid > 0) {
    int Status = 0;
    if (waitpid(ServerPid, &Status, 0) == ServerPid) {
      if (WIFSIGNALED(Status)) {
        fprintf(stderr, "gg-load: server died on signal %d\n",
                WTERMSIG(Status));
        UncleanDeath = true;
      } else if (WEXITSTATUS(Status) != 0) {
        fprintf(stderr, "gg-load: server exited %d\n", WEXITSTATUS(Status));
        UncleanDeath = true;
      }
    }
  }

  std::sort(T.LatenciesNs.begin(), T.LatenciesNs.end());
  auto Pct = [&](double P) -> double {
    if (T.LatenciesNs.empty())
      return 0;
    size_t I = static_cast<size_t>(P * (T.LatenciesNs.size() - 1));
    return static_cast<double>(T.LatenciesNs[I]) / 1e9;
  };
  for (auto &[Gen, Lats] : T.LatenciesByGenNs)
    std::sort(Lats.begin(), Lats.end());
  auto GenPct = [](const std::vector<uint64_t> &Lats, double P) -> double {
    if (Lats.empty())
      return 0;
    size_t I = static_cast<size_t>(P * (Lats.size() - 1));
    return static_cast<double>(Lats[I]) / 1e9;
  };

  uint64_t Answered = T.Ok + T.CompileErrors + T.Quarantined;
  printf("gg-load: %d requests, %llu ok, %llu compile-error, "
         "%llu quarantined, %llu replays, %llu gave-up\n",
         Opt.Requests, static_cast<unsigned long long>(T.Ok.load()),
         static_cast<unsigned long long>(T.CompileErrors.load()),
         static_cast<unsigned long long>(T.Quarantined.load()),
         static_cast<unsigned long long>(T.Replays.load()),
         static_cast<unsigned long long>(T.GaveUp.load()));
  printf("gg-load: %llu overloaded (%llu terminal), %llu retries, "
         "%llu hedges, %llu reload-acks, generation max %llu "
         "(%llu regressions)\n",
         static_cast<unsigned long long>(T.Overloaded.load()),
         static_cast<unsigned long long>(T.OverloadedFinal.load()),
         static_cast<unsigned long long>(T.Retries.load()),
         static_cast<unsigned long long>(T.Hedges.load()),
         static_cast<unsigned long long>(T.ReloadAcks.load()),
         static_cast<unsigned long long>(T.MaxGeneration.load()),
         static_cast<unsigned long long>(T.GenerationRegressions.load()));
  printf("gg-load: wall %.3fs, throughput %.1f req/s, goodput %.1f req/s, "
         "latency p50 %.4fs p95 %.4fs p99 %.4fs\n",
         WallSeconds, Answered / std::max(WallSeconds, 1e-9),
         T.Ok.load() / std::max(WallSeconds, 1e-9), Pct(0.50), Pct(0.95),
         Pct(0.99));
  if (Opt.SloMs > 0)
    printf("gg-load: slo %dms: %llu answered past it\n", Opt.SloMs,
           static_cast<unsigned long long>(T.DeadlineMissed.load()));
  // With a reload mid-run there is one latency population per serving
  // generation; break them out so a slow new image is visible instead of
  // smearing the aggregate tail.
  if (T.LatenciesByGenNs.size() > 1)
    for (const auto &[Gen, Lats] : T.LatenciesByGenNs)
      printf("gg-load: generation %llu: %zu answered, p50 %.4fs p99 %.4fs\n",
             static_cast<unsigned long long>(Gen), Lats.size(),
             GenPct(Lats, 0.50), GenPct(Lats, 0.99));
  if (Opt.Verify)
    printf("gg-load: verified %llu byte-identical, %llu skipped (faulted), "
           "%llu MISMATCHED\n",
           static_cast<unsigned long long>(T.Verified.load()),
           static_cast<unsigned long long>(T.VerifySkipped.load()),
           static_cast<unsigned long long>(T.VerifyMismatches.load()));

  if (!Opt.BenchJsonPath.empty()) {
    // gg-bench-v1, same contract as bench/BenchCommon.h: metrics with
    // "seconds" in the name are wall-clock (sentinel-exempt unless
    // --time-threshold); the rest must be deterministic run to run.
    // Overload legs write inherently noisy counts (sheds, retries) —
    // bench.sh names them via --bench-prefix and passes the prefix to
    // gg-report --noisy so the sentinel treats them as time-class.
    std::map<std::string, double> Metrics;
    Metrics["requests"] = Opt.Requests;
    Metrics["requests_ok"] = static_cast<double>(T.Ok.load());
    Metrics["compile_errors"] = static_cast<double>(T.CompileErrors.load());
    Metrics["error_frames"] = static_cast<double>(T.Quarantined.load());
    Metrics["gave_up"] = static_cast<double>(T.GaveUp.load());
    Metrics["overloaded"] = static_cast<double>(T.Overloaded.load());
    Metrics["shed_final"] = static_cast<double>(T.OverloadedFinal.load());
    Metrics["retries"] = static_cast<double>(T.Retries.load());
    Metrics["hedges"] = static_cast<double>(T.Hedges.load());
    Metrics["replays"] = static_cast<double>(T.Replays.load());
    Metrics["reload_acks"] = static_cast<double>(T.ReloadAcks.load());
    Metrics["deadline_missed"] = static_cast<double>(T.DeadlineMissed.load());
    Metrics["max_generation"] = static_cast<double>(T.MaxGeneration.load());
    Metrics["generation_regressions"] =
        static_cast<double>(T.GenerationRegressions.load());
    Metrics["verify_mismatches"] =
        static_cast<double>(T.VerifyMismatches.load());
    Metrics["asm_bytes"] = static_cast<double>(T.AsmBytes.load());
    Metrics["wall_seconds"] = WallSeconds;
    Metrics["p50_seconds"] = Pct(0.50);
    Metrics["p95_seconds"] = Pct(0.95);
    Metrics["p99_seconds"] = Pct(0.99);
    Metrics["throughput_per_wall_seconds"] =
        Answered / std::max(WallSeconds, 1e-9);
    Metrics["goodput_per_wall_seconds"] =
        T.Ok.load() / std::max(WallSeconds, 1e-9);
    // Per-generation latency histograms. The percentile names carry
    // "seconds" so the sentinel gives them time-class treatment; the
    // gen<G>_requests counts are deterministic in reload-free runs
    // (every answered request lands in generation 1).
    for (const auto &[Gen, Lats] : T.LatenciesByGenNs) {
      std::string GPrefix = strf("gen%llu_",
                                 static_cast<unsigned long long>(Gen));
      Metrics[GPrefix + "requests"] = static_cast<double>(Lats.size());
      Metrics[GPrefix + "p50_seconds"] = GenPct(Lats, 0.50);
      Metrics[GPrefix + "p99_seconds"] = GenPct(Lats, 0.99);
    }

    std::map<std::string, double> Final;
    for (const auto &[Name, Value] : Metrics)
      Final[Opt.BenchPrefix + Name] = Value;

    if (Opt.BenchMerge) {
      // Keep whatever an earlier leg wrote under names this run did not
      // produce — the throughput and overload legs share one artifact.
      std::ifstream In(Opt.BenchJsonPath);
      if (In) {
        std::string Text((std::istreambuf_iterator<char>(In)),
                         std::istreambuf_iterator<char>());
        JsonValue Root;
        std::string JErr;
        if (parseJson(Text, Root, JErr)) {
          if (const JsonValue *Old = Root.find("metrics"))
            for (const auto &[Name, Value] : Old->Obj)
              if (Value.K == JsonValue::Number && !Final.count(Name))
                Final.emplace(Name, Value.Num);
        } else {
          fprintf(stderr, "gg-load: --bench-merge: ignoring unparsable %s: "
                          "%s\n",
                  Opt.BenchJsonPath.c_str(), JErr.c_str());
        }
      }
    }

    std::ofstream Out(Opt.BenchJsonPath);
    if (!Out) {
      fprintf(stderr, "gg-load: cannot write %s\n", Opt.BenchJsonPath.c_str());
      return ExitCompileFailure;
    }
    Out << "{\"schema\":\"gg-bench-v1\",\"bench\":\"server_throughput\","
           "\"metrics\":{";
    bool First = true;
    for (const auto &[Name, Value] : Final) {
      char Buf[64];
      snprintf(Buf, sizeof(Buf), "%.9g", Value);
      Out << (First ? "" : ",") << "\"" << Name << "\":" << Buf;
      First = false;
    }
    Out << "}}\n";
  }

  bool Failed = false;
  auto Fail = [&](const char *Why) {
    fprintf(stderr, "gg-load: FAIL: %s\n", Why);
    Failed = true;
  };
  if (UncleanDeath)
    Fail("unclean server death");
  if (T.VerifyMismatches.load() > 0)
    Fail("verify mismatches");
  if (T.GaveUp.load() > 0)
    Fail("client give-ups (lost or unanswered requests)");
  if (T.GenerationRegressions.load() > 0)
    Fail("table generation regressed within a connection");
  if (Opt.SloMs > 0 && Pct(0.99) * 1000.0 > Opt.SloMs)
    Fail("p99 latency above --slo-ms");
  if (Opt.MinGeneration > 0 && T.MaxGeneration.load() < Opt.MinGeneration)
    Fail("observed generation never reached --min-generation");
  if (Opt.ExpectSheds && T.Overloaded.load() == 0)
    Fail("--expect-sheds but no OVERLOADED frame arrived");
  return Failed ? ExitCompileFailure : ExitOk;
}
