//===- gg_load.cpp - compile-server load driver -------------------------------===//
//
// Drives a live `compile_minic --serve=SOCKET` daemon (docs/server.md)
// with the deterministic --gen-corpus program population, concurrently,
// and reports throughput + latency percentiles + error-frame counts as a
// gg-bench-v1 metrics file for the regression sentinel.
//
//   gg-load --socket=PATH [--spawn=BIN [--serve-arg=ARG]...]
//           [--requests=N] [--clients=K] [--corpus=N] [--deadline-ms=N]
//           [--max-steps=N] [--max-arena=BYTES] [--crash-every=N]
//           [--verify] [--bench-json=FILE] [--no-shutdown]
//
// --spawn=BIN forks BIN (compile_minic, or scripts/serve.sh for
// supervisor drills) with --serve=SOCKET plus every --serve-arg, and
// asserts at exit that the process died cleanly — the fault-matrix soak's
// "zero process deaths" check. Without --spawn, gg-load connects to an
// already-running server at --socket.
//
// gg-load is also the client half of the crash-only recovery loop: when a
// connection dies mid-request (server crashed; supervisor restarting it),
// the client reconnects with backoff and replays its in-flight request AT
// MOST ONCE — safe because a response is a pure function of the request.
// --crash-every=N injects a Crash frame before every Nth request (the
// server must run with --serve-allow-crash, under scripts/serve.sh).
//
// --verify recomputes each program's single-shot assembly in-process
// (same CompileService the server uses) and asserts byte-identical
// payloads for every clean response — responses with blocked or
// recovered trees (i.e. requests an injected fault actually hit) are
// quarantined by the server and skipped here, as are programs whose
// local reference compile is itself fault-afflicted.
//
// Exit codes follow support/ExitCodes.h: 1 on any verify mismatch,
// client give-up, or unclean server death.
//
//===----------------------------------------------------------------------===//

#include "cg/CompileService.h"
#include "support/ExitCodes.h"
#include "support/Frame.h"
#include "support/Strings.h"
#include "workload/ProgramGen.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace gg;

namespace {

struct LoadOptions {
  std::string Socket;
  std::string SpawnBin;
  std::vector<std::string> ServeArgs;
  int Requests = 50;
  int Clients = 4;
  int Corpus = 16;
  uint32_t DeadlineMs = 0; ///< 0 = server default
  uint64_t MaxSteps = 0;
  uint64_t MaxArenaBytes = 0;
  int CrashEvery = 0; ///< inject a Crash frame before every Nth request
  bool Verify = false;
  bool Shutdown = true;
  std::string BenchJsonPath;
};

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Connects to the server's Unix socket, retrying with backoff for up to
/// ~10 seconds (the supervisor's restart window). Returns -1 on give-up.
int connectWithRetry(const std::string &Path) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return -1;
  strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  int DelayMs = 20;
  for (int Try = 0; Try < 24; ++Try) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) == 0)
      return Fd;
    ::close(Fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
    DelayMs = std::min(DelayMs * 2, 1000);
  }
  return -1;
}

bool writeAll(int Fd, const std::string &Data) {
  const char *P = Data.data();
  size_t Len = Data.size();
  while (Len > 0) {
    ssize_t N = ::write(Fd, P, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

/// Shared tallies across client threads.
struct Tally {
  std::atomic<uint64_t> Ok{0};
  std::atomic<uint64_t> Quarantined{0}; ///< deadline/step/mem/watchdog/protocol
  std::atomic<uint64_t> CompileErrors{0};
  std::atomic<uint64_t> Replays{0};
  std::atomic<uint64_t> GaveUp{0};
  std::atomic<uint64_t> VerifyMismatches{0};
  std::atomic<uint64_t> VerifySkipped{0};
  std::atomic<uint64_t> Verified{0};
  std::atomic<uint64_t> StrayResponses{0};
  std::atomic<uint64_t> CrashesInjected{0};
  std::atomic<uint64_t> AsmBytes{0};
  std::mutex LatM;
  std::vector<uint64_t> LatenciesNs;
};

/// One client connection, reconnecting across server restarts.
class Client {
public:
  explicit Client(const std::string &Socket) : Socket(Socket) {}
  ~Client() { drop(); }

  bool ensureConnected() {
    if (Fd >= 0)
      return true;
    Fd = connectWithRetry(Socket);
    Reader = FrameReader();
    return Fd >= 0;
  }

  void drop() {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
  }

  bool send(FrameType Type, const std::string &Payload) {
    if (!ensureConnected())
      return false;
    std::string Wire;
    appendFrame(Wire, Type, Payload);
    if (!writeAll(Fd, Wire)) {
      drop();
      return false;
    }
    return true;
  }

  /// Reads until the Response for \p WantId arrives (counting strays),
  /// or the connection dies / \p TimeoutNs elapses.
  bool awaitResponse(uint64_t WantId, uint64_t TimeoutNs, ResponseMsg &Out,
                     Tally &T) {
    uint64_t Deadline = nowNs() + TimeoutNs;
    char Chunk[65536];
    while (true) {
      Frame F;
      FrameReader::Status S = Reader.next(F);
      if (S == FrameReader::Status::NeedMore) {
        if (nowNs() > Deadline) {
          drop();
          return false;
        }
        ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
        if (N < 0 && errno == EINTR)
          continue;
        if (N <= 0) {
          drop();
          return false;
        }
        Reader.feed(Chunk, static_cast<size_t>(N));
        continue;
      }
      if (S == FrameReader::Status::Corrupt)
        continue; // reader already resynced
      if (F.Type != FrameType::Response) {
        ++T.StrayResponses;
        continue;
      }
      std::string Err;
      if (!decodeResponse(F.Payload, Out, Err)) {
        ++T.StrayResponses;
        continue;
      }
      if (Out.Id != WantId) {
        // Protocol-error responses carry id 0; a late watchdog response
        // for a request we already replayed is also possible.
        ++T.StrayResponses;
        continue;
      }
      return true;
    }
  }

private:
  std::string Socket;
  int Fd = -1;
  FrameReader Reader;
};

/// The local single-shot reference for --verify: assembly per corpus
/// program, or nullopt when the program is unverifiable (the local
/// reference compile was itself hit by an injected fault).
struct VerifyOracle {
  std::vector<std::optional<std::string>> Expected;

  bool build(const std::vector<std::string> &Corpus) {
    std::string Err;
    std::unique_ptr<CompileService> Svc = CompileService::create(Err);
    if (!Svc) {
      fprintf(stderr, "gg-load: --verify reference pipeline failed: %s\n",
              Err.c_str());
      return false;
    }
    Expected.resize(Corpus.size());
    for (size_t I = 0; I < Corpus.size(); ++I) {
      RequestMsg Req;
      Req.Id = I;
      Req.Source = Corpus[I];
      RequestBudget NoLimits;
      HandlerResult R = Svc->compile(Req, NoLimits);
      if (R.Status == ResponseStatus::Ok && R.BlockedTrees == 0)
        Expected[I] = std::move(R.Payload);
    }
    return true;
  }
};

void usage() {
  fprintf(stderr,
          "usage: gg-load --socket=PATH [--spawn=BIN [--serve-arg=ARG]...]\n"
          "               [--requests=N] [--clients=K] [--corpus=N]\n"
          "               [--deadline-ms=N] [--max-steps=N] "
          "[--max-arena=BYTES]\n"
          "               [--crash-every=N] [--verify] [--bench-json=FILE]\n"
          "               [--no-shutdown]\n");
}

bool intFlag(const std::string &A, const char *Prefix, int64_t Min,
             int64_t Max, int64_t &Out, bool &Matched) {
  size_t L = strlen(Prefix);
  Matched = A.rfind(Prefix, 0) == 0;
  if (!Matched)
    return true;
  std::optional<int64_t> N = parseInt(std::string_view(A).substr(L));
  if (!N || *N < Min || *N > Max) {
    fprintf(stderr, "gg-load: bad value in %s\n", A.c_str());
    return false;
  }
  Out = *N;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  ::signal(SIGPIPE, SIG_IGN);
  LoadOptions Opt;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    bool M = false;
    int64_t V = 0;
    if (A.rfind("--socket=", 0) == 0)
      Opt.Socket = A.substr(9);
    else if (A.rfind("--spawn=", 0) == 0)
      Opt.SpawnBin = A.substr(8);
    else if (A.rfind("--serve-arg=", 0) == 0)
      Opt.ServeArgs.push_back(A.substr(12));
    else if (!intFlag(A, "--requests=", 1, 10000000, V, M))
      return ExitUsage;
    else if (M)
      Opt.Requests = static_cast<int>(V);
    else if (!intFlag(A, "--clients=", 1, 256, V, M))
      return ExitUsage;
    else if (M)
      Opt.Clients = static_cast<int>(V);
    else if (!intFlag(A, "--corpus=", 1, 100000, V, M))
      return ExitUsage;
    else if (M)
      Opt.Corpus = static_cast<int>(V);
    else if (!intFlag(A, "--deadline-ms=", 0, 86400000, V, M))
      return ExitUsage;
    else if (M)
      Opt.DeadlineMs = static_cast<uint32_t>(V);
    else if (!intFlag(A, "--max-steps=", 0, INT64_MAX, V, M))
      return ExitUsage;
    else if (M)
      Opt.MaxSteps = static_cast<uint64_t>(V);
    else if (!intFlag(A, "--max-arena=", 0, INT64_MAX, V, M))
      return ExitUsage;
    else if (M)
      Opt.MaxArenaBytes = static_cast<uint64_t>(V);
    else if (!intFlag(A, "--crash-every=", 1, 1000000, V, M))
      return ExitUsage;
    else if (M)
      Opt.CrashEvery = static_cast<int>(V);
    else if (A == "--verify")
      Opt.Verify = true;
    else if (A == "--no-shutdown")
      Opt.Shutdown = false;
    else if (A.rfind("--bench-json=", 0) == 0)
      Opt.BenchJsonPath = A.substr(13);
    else {
      fprintf(stderr, "gg-load: unknown option %s\n", A.c_str());
      usage();
      return ExitUsage;
    }
  }
  if (Opt.Socket.empty()) {
    usage();
    return ExitUsage;
  }

  // The same deterministic corpus as `compile_minic --gen-corpus=N`, so
  // the server compiles the population the differential tests know.
  std::vector<std::string> Corpus;
  Corpus.reserve(Opt.Corpus);
  for (int Case = 0; Case < Opt.Corpus; ++Case) {
    GenOptions GOpts;
    GOpts.Functions = 4 + Case % 3;
    GOpts.StmtsPerFunction = 6 + Case % 5;
    Corpus.push_back(generateProgram(0xD1FF0000u + Case, GOpts));
  }

  VerifyOracle Oracle;
  if (Opt.Verify && !Oracle.build(Corpus))
    return ExitFatalFault;

  // Spawn the server (or supervisor script) if requested.
  pid_t ServerPid = -1;
  if (!Opt.SpawnBin.empty()) {
    ::unlink(Opt.Socket.c_str());
    ServerPid = fork();
    if (ServerPid < 0) {
      fprintf(stderr, "gg-load: fork: %s\n", strerror(errno));
      return ExitFatalFault;
    }
    if (ServerPid == 0) {
      std::vector<std::string> Args;
      Args.push_back(Opt.SpawnBin);
      Args.push_back("--serve=" + Opt.Socket);
      for (const std::string &Extra : Opt.ServeArgs)
        Args.push_back(Extra);
      std::vector<char *> Argv;
      for (std::string &S : Args)
        Argv.push_back(S.data());
      Argv.push_back(nullptr);
      execv(Argv[0], Argv.data());
      fprintf(stderr, "gg-load: exec %s: %s\n", Opt.SpawnBin.c_str(),
              strerror(errno));
      _exit(ExitFatalFault);
    }
  }

  Tally T;
  std::atomic<int> NextRequest{0};
  // Client-side response timeout: generously beyond any server deadline +
  // watchdog grace, so a hit deadline still yields a structured response
  // rather than a client timeout.
  uint64_t TimeoutNs = 30ull * 1000 * 1000 * 1000;

  uint64_t WallStart = nowNs();
  std::vector<std::thread> Workers;
  for (int C = 0; C < Opt.Clients; ++C) {
    Workers.emplace_back([&, C] {
      Client Conn(Opt.Socket);
      std::vector<uint64_t> LocalLat;
      while (true) {
        int Idx = NextRequest.fetch_add(1);
        if (Idx >= Opt.Requests)
          break;
        if (Opt.CrashEvery > 0 && Idx > 0 && Idx % Opt.CrashEvery == 0) {
          // Crash drill: kill the server out from under everyone. The
          // supervisor restarts it; every client reconnects and replays.
          if (Conn.send(FrameType::Crash, ""))
            ++T.CrashesInjected;
          Conn.drop();
        }

        RequestMsg Req;
        Req.Id = static_cast<uint64_t>(Idx) + 1;
        Req.DeadlineMs = Opt.DeadlineMs;
        Req.MaxSteps = Opt.MaxSteps;
        Req.MaxArenaBytes = Opt.MaxArenaBytes;
        size_t ProgIdx = static_cast<size_t>(Idx) % Corpus.size();
        Req.Source = Corpus[ProgIdx];
        std::string Payload = encodeRequest(Req);

        // Replay on connection loss: output is a pure function of the
        // request, so replaying the in-flight request reproduces the lost
        // response exactly (at most once per connection epoch). Bounded at
        // 4 attempts because a freshly-reconnected socket can land in the
        // listen backlog of a server that is already dying — the kernel
        // accepts the connect before the process finishes aborting — so
        // one replay can be burned without a second real crash.
        ResponseMsg Resp;
        bool Got = false;
        uint64_t T0 = nowNs();
        for (int Attempt = 0; Attempt < 4 && !Got; ++Attempt) {
          if (Attempt > 0) {
            ++T.Replays;
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
          if (!Conn.send(FrameType::Request, Payload))
            continue;
          Got = Conn.awaitResponse(Req.Id, TimeoutNs, Resp, T);
        }
        if (!Got) {
          ++T.GaveUp;
          continue;
        }
        LocalLat.push_back(nowNs() - T0);

        switch (Resp.Status) {
        case ResponseStatus::Ok:
          ++T.Ok;
          T.AsmBytes += Resp.Payload.size();
          if (Opt.Verify) {
            if (Resp.BlockedTrees > 0 || Resp.RecoveredTrees > 0 ||
                !Oracle.Expected[ProgIdx]) {
              // A fault actually hit this request (or the local
              // reference): quarantine semantics, nothing to compare.
              ++T.VerifySkipped;
            } else if (Resp.Payload != *Oracle.Expected[ProgIdx]) {
              ++T.VerifyMismatches;
              fprintf(stderr,
                      "gg-load: VERIFY MISMATCH request %llu (program %zu): "
                      "%zu vs %zu bytes\n",
                      static_cast<unsigned long long>(Req.Id), ProgIdx,
                      Resp.Payload.size(), Oracle.Expected[ProgIdx]->size());
            } else {
              ++T.Verified;
            }
          }
          break;
        case ResponseStatus::CompileError:
          ++T.CompileErrors;
          break;
        default:
          ++T.Quarantined;
          break;
        }
      }
      std::lock_guard<std::mutex> Lock(T.LatM);
      T.LatenciesNs.insert(T.LatenciesNs.end(), LocalLat.begin(),
                           LocalLat.end());
    });
  }
  for (std::thread &W : Workers)
    W.join();
  double WallSeconds = static_cast<double>(nowNs() - WallStart) / 1e9;

  // Clean shutdown + death audit.
  bool UncleanDeath = false;
  if (Opt.Shutdown) {
    Client Conn(Opt.Socket);
    Conn.send(FrameType::Shutdown, "");
  }
  if (ServerPid > 0) {
    int Status = 0;
    if (waitpid(ServerPid, &Status, 0) == ServerPid) {
      if (WIFSIGNALED(Status)) {
        fprintf(stderr, "gg-load: server died on signal %d\n",
                WTERMSIG(Status));
        UncleanDeath = true;
      } else if (WEXITSTATUS(Status) != 0) {
        fprintf(stderr, "gg-load: server exited %d\n", WEXITSTATUS(Status));
        UncleanDeath = true;
      }
    }
  }

  std::sort(T.LatenciesNs.begin(), T.LatenciesNs.end());
  auto Pct = [&](double P) -> double {
    if (T.LatenciesNs.empty())
      return 0;
    size_t I = static_cast<size_t>(P * (T.LatenciesNs.size() - 1));
    return static_cast<double>(T.LatenciesNs[I]) / 1e9;
  };

  uint64_t Answered = T.Ok + T.CompileErrors + T.Quarantined;
  printf("gg-load: %d requests, %llu ok, %llu compile-error, "
         "%llu quarantined, %llu replays, %llu gave-up\n",
         Opt.Requests, static_cast<unsigned long long>(T.Ok.load()),
         static_cast<unsigned long long>(T.CompileErrors.load()),
         static_cast<unsigned long long>(T.Quarantined.load()),
         static_cast<unsigned long long>(T.Replays.load()),
         static_cast<unsigned long long>(T.GaveUp.load()));
  printf("gg-load: wall %.3fs, throughput %.1f req/s, latency p50 %.4fs "
         "p95 %.4fs p99 %.4fs\n",
         WallSeconds, Answered / std::max(WallSeconds, 1e-9), Pct(0.50),
         Pct(0.95), Pct(0.99));
  if (Opt.Verify)
    printf("gg-load: verified %llu byte-identical, %llu skipped (faulted), "
           "%llu MISMATCHED\n",
           static_cast<unsigned long long>(T.Verified.load()),
           static_cast<unsigned long long>(T.VerifySkipped.load()),
           static_cast<unsigned long long>(T.VerifyMismatches.load()));

  if (!Opt.BenchJsonPath.empty()) {
    // gg-bench-v1, same contract as bench/BenchCommon.h: metrics with
    // "seconds" in the name are wall-clock (sentinel-exempt unless
    // --time-threshold); the rest must be deterministic run to run.
    std::map<std::string, double> Metrics;
    Metrics["requests"] = Opt.Requests;
    Metrics["requests_ok"] = static_cast<double>(T.Ok.load());
    Metrics["compile_errors"] = static_cast<double>(T.CompileErrors.load());
    Metrics["error_frames"] = static_cast<double>(T.Quarantined.load());
    Metrics["gave_up"] = static_cast<double>(T.GaveUp.load());
    Metrics["verify_mismatches"] =
        static_cast<double>(T.VerifyMismatches.load());
    Metrics["asm_bytes"] = static_cast<double>(T.AsmBytes.load());
    Metrics["wall_seconds"] = WallSeconds;
    Metrics["p50_seconds"] = Pct(0.50);
    Metrics["p95_seconds"] = Pct(0.95);
    Metrics["p99_seconds"] = Pct(0.99);
    Metrics["throughput_per_wall_seconds"] =
        Answered / std::max(WallSeconds, 1e-9);
    std::ofstream Out(Opt.BenchJsonPath);
    if (!Out) {
      fprintf(stderr, "gg-load: cannot write %s\n", Opt.BenchJsonPath.c_str());
      return ExitCompileFailure;
    }
    Out << "{\"schema\":\"gg-bench-v1\",\"bench\":\"server_throughput\","
           "\"metrics\":{";
    bool First = true;
    for (const auto &[Name, Value] : Metrics) {
      char Buf[64];
      snprintf(Buf, sizeof(Buf), "%.9g", Value);
      Out << (First ? "" : ",") << "\"" << Name << "\":" << Buf;
      First = false;
    }
    Out << "}}\n";
  }

  bool Failed = UncleanDeath || T.VerifyMismatches.load() > 0 ||
                T.GaveUp.load() > 0;
  return Failed ? ExitCompileFailure : ExitOk;
}
