//===- gg_report.cpp - merge telemetry artifacts into one report --------------===//
//
// Offline companion to the `--coverage-json=` / `--stats-json=` driver
// surfaces: merges artifacts from many runs and reports how much of the
// table-driven machinery real input actually exercises.
//
//   gg-report [ARTIFACT.json ...] [--top=N] [--json=FILE]
//             [--fail-on-dead-bridge] [--fail-on-zero-dyn]
//             [--fail-production-coverage=PCT]
//             [--profile] [--profile-json=FILE] [--diff-pcc=FILE]
//             [--fail-attribution-below=PCT]
//             [--check-bench=FRESH:BASELINE] [--threshold=PCT]
//             [--time-threshold=PCT] [--noisy=SUBSTR]
//             [--trace] [--slowest=N] [--fail-queue-wait-p99-ms=MS]
//
// Artifacts are dispatched on their "schema" field:
//
//   gg-coverage-v1  merged (fingerprint/shape-checked) into one artifact;
//                   the report lists table utilization, hot and dead
//                   productions, never-visited states, dynamic-tie points
//                   and instruction-table row usage. When the artifact
//                   fingerprint matches a freshly built VAX target, ids
//                   are rendered with grammar names.
//   gg-profile-v1   merged (fingerprint/shape/timebase-checked); the
//                   profile report ranks hot states, productions, dyn
//                   points and table regions by attributed cost, joins
//                   against merged coverage to flag buckets that are
//                   expensive per visit ("hot but rarely hit"), and
//                   prints the per-phase breakdown with the share of
//                   cg.total wall time the instrumentation attributed.
//   gg-stats-v1     per-phase *_seconds values are summed into a time
//                   breakdown across all stats artifacts; counters and
//                   histograms are summed too, and artifacts carrying
//                   `server.*` keys (the compile server's --stats-json)
//                   additionally get an overload/lifecycle summary: shed
//                   rate by cause, queue-depth and queue-wait histograms,
//                   drain/reload/watchdog counts.
//   gg-bench-v1     via --check-bench only (see below).
//
// A file whose top level is a bare JSON *array* is a Chrome trace (the
// shape --trace-json writes; it has no schema key because viewers want
// the raw event array). The server tags every span it emits with the
// request id ("req" arg) and serving generation, so gg-report can join
// each request's spans back into one end-to-end timeline: admission
// (server.admit) -> queue wait (gap to server.request) -> the cg.* /
// match.* phase spans -> total service time. --trace prints that
// per-request report (and fails if no trace artifact was given);
// --slowest=N expands the N slowest requests with their per-phase
// breakdown; --fail-queue-wait-p99-ms=MS exits nonzero when the joined
// queue-wait p99 exceeds MS — the "was the slowness queueing or
// compiling?" gate, straight from the artifacts a live incident leaves
// behind (docs/observability.md).
//
// --json=FILE writes the merged coverage artifact (itself gg-coverage-v1,
// so reports can be merged hierarchically); --profile-json=FILE does the
// same for the merged profile. --fail-on-dead-bridge exits
// nonzero when a bridge-production family (section 6.2.2; width replicas
// grouped) has zero reductions; --fail-on-zero-dyn when no dynamic-tie
// event was recorded. Both back the check.sh coverage gate.
// --fail-production-coverage=PCT gates on the share of *reachable*
// productions with at least one recorded reduction — the denominator
// excludes productions GrammarWalk proves the shipped null chooser can
// never reduce (statically or dynamically shadowed). gg-fuzz's
// fixed-seed coverage artifact passes at PCT=100 (the check.sh fuzz leg).
//
// --profile requires at least one gg-profile-v1 artifact (diagnostic exit
// otherwise). --diff-pcc=FILE ingests a PCC-leg profile (the one
// bench_compile_speed --pcc-profile-json= writes) and prints side-by-side
// phase attribution of the GG-vs-PCC compile-speed ratio plus a ranked
// work-list of what closing each phase would buy.
// --fail-attribution-below=PCT exits nonzero when the instrumented phases
// cover less than PCT percent of cg.total wall time (the check.sh
// profile-smoke gate).
//
// --check-bench=FRESH:BASELINE compares two gg-bench-v1 metric files: any
// count metric deviating from the baseline by more than --threshold
// percent (default 0.5) fails, as does a metric missing from FRESH.
// Metrics with "seconds" in the name are wall-clock and skipped unless
// --time-threshold=PCT opts them in; --noisy=SUBSTR (repeatable) extends
// that treatment to any metric whose name contains SUBSTR — bench.sh
// uses it for the overload leg's inherently scheduling-dependent counts
// (sheds, retries). This is the benchmark regression sentinel:
// scripts/bench.sh writes the files, check.sh runs the compare against
// the baselines committed at the repo root.
//
//===----------------------------------------------------------------------===//

#include "fuzz/GrammarWalk.h"
#include "mdl/Grammar.h"
#include "support/Coverage.h"
#include "support/Frame.h"
#include "support/Json.h"
#include "support/Profile.h"
#include "support/Strings.h"
#include "vax/VaxTarget.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace gg;

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In) {
    fprintf(stderr, "gg-report: cannot open %s\n", Path.c_str());
    return false;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

double pct(uint64_t Part, uint64_t Whole) {
  return Whole ? 100.0 * double(Part) / double(Whole) : 0.0;
}

/// Strips the type-replicator's width suffix so bridgedx1_b/_w/_l report
/// as one family: a family is dead only if no width of it ever fired.
std::string familyOf(const std::string &SemTag) {
  size_t N = SemTag.size();
  if (N > 2 && SemTag[N - 2] == '_' &&
      (SemTag[N - 1] == 'b' || SemTag[N - 1] == 'w' || SemTag[N - 1] == 'l'))
    return SemTag.substr(0, N - 2);
  return SemTag;
}

/// Renders grammar ids as names when a freshly built target's
/// fingerprint matches the artifact; raw ids otherwise. Shared by the
/// coverage and profile halves of the report.
struct Namer {
  const VaxTarget *Target = nullptr; ///< null = names unavailable

  std::string prodName(int Id) const {
    if (Target && Id >= 0 &&
        static_cast<size_t>(Id) < Target->grammar().numProductions())
      return renderProduction(Target->grammar(), Target->grammar().prod(Id));
    return strf("P%d", Id);
  }

  std::string stateName(int S) const {
    if (Target && S >= 0 &&
        static_cast<size_t>(S) < Target->build().StateAccessSym.size()) {
      SymId Sym = Target->build().StateAccessSym[S];
      return strf("s%d(%s)", S,
                  Sym < 0 ? "start" : Target->grammar().symbolName(Sym).c_str());
    }
    return strf("s%d", S);
  }

  std::string termName(int TermIdx) const {
    if (Target) {
      const Grammar &G = Target->grammar();
      for (SymId S = 0; S < static_cast<SymId>(G.numSymbols()); ++S)
        if (G.isTerminal(S) && G.termIndex(S) == TermIdx)
          return G.symbolName(S);
    }
    return strf("t%d", TermIdx);
  }
};

/// The coverage half of the report.
struct CoverageReport : Namer {
  CoverageSnapshot Cov;

  uint64_t hits(const std::map<int, uint64_t> &M, int Id) const {
    auto It = M.find(Id);
    return It == M.end() ? 0 : It->second;
  }

  /// Prints the report; returns false when an enabled gate fires.
  bool print(int Top, bool FailDeadBridge, bool FailZeroDyn) const;
};

bool CoverageReport::print(int Top, bool FailDeadBridge,
                           bool FailZeroDyn) const {
  printf("== coverage (%llu compiles, fingerprint %s%s)\n",
         static_cast<unsigned long long>(Cov.Compiles),
         Cov.Fingerprint.c_str(),
         Target ? "" : ", no matching target: raw ids");

  uint64_t DynHitsTotal = 0;
  for (const auto &[Key, D] : Cov.Dyn)
    DynHitsTotal += D.Hits;
  printf("  productions reduced   %4zu / %-4llu (%.1f%%)\n",
         Cov.ProdHits.size(), static_cast<unsigned long long>(Cov.NumProds),
         pct(Cov.ProdHits.size(), Cov.NumProds));
  printf("  states visited        %4zu / %-4llu (%.1f%%)\n",
         Cov.StateHits.size(), static_cast<unsigned long long>(Cov.NumStates),
         pct(Cov.StateHits.size(), Cov.NumStates));
  printf("  dyn-tie points fired  %4zu / %-4llu (%.1f%%, %llu events)\n",
         Cov.Dyn.size(), static_cast<unsigned long long>(Cov.NumDynPoints),
         pct(Cov.Dyn.size(), Cov.NumDynPoints),
         static_cast<unsigned long long>(DynHitsTotal));
  printf("  instr-table rows used %4zu / %-4llu (%.1f%%)\n",
         Cov.RowHits.size(), static_cast<unsigned long long>(Cov.NumRows),
         pct(Cov.RowHits.size(), Cov.NumRows));

  // Hot productions, by reductions.
  std::vector<std::pair<uint64_t, int>> Hot;
  for (const auto &[Id, N] : Cov.ProdHits)
    Hot.push_back({N, Id});
  std::sort(Hot.begin(), Hot.end(), [](const auto &A, const auto &B) {
    return A.first != B.first ? A.first > B.first : A.second < B.second;
  });
  printf("\n  hot productions (top %d of %zu):\n", Top, Hot.size());
  for (size_t I = 0; I < Hot.size() && I < static_cast<size_t>(Top); ++I)
    printf("    %10llu  %s\n", static_cast<unsigned long long>(Hot[I].first),
           prodName(Hot[I].second).c_str());

  // Dead productions. With names available, bridges are tracked per
  // family; everything else is listed (capped) so the report stays
  // readable on sparse single-run artifacts.
  std::vector<int> Dead;
  for (uint64_t Id = 0; Id < Cov.NumProds; ++Id)
    if (!hits(Cov.ProdHits, static_cast<int>(Id)))
      Dead.push_back(static_cast<int>(Id));
  printf("\n  dead productions: %zu\n", Dead.size());
  size_t Shown = 0;
  for (int Id : Dead) {
    if (Shown++ >= static_cast<size_t>(Top)) {
      printf("    ... %zu more\n", Dead.size() - Shown + 1);
      break;
    }
    printf("    %s\n", prodName(Id).c_str());
  }

  bool Ok = true;
  if (Target) {
    // Bridge families (section 6.2.2): MiniC can only reach the byte
    // widths, so a family counts as covered when any width replica fired.
    std::map<std::string, uint64_t> Families;
    for (const Production &P : Target->grammar().productions())
      if (P.IsBridge)
        Families[familyOf(P.SemTag)] += hits(Cov.ProdHits, P.Id);
    printf("\n  bridge families:\n");
    for (const auto &[Name, N] : Families) {
      printf("    %-12s %10llu%s\n", Name.c_str(),
             static_cast<unsigned long long>(N), N ? "" : "  DEAD");
      if (!N && FailDeadBridge) {
        fprintf(stderr, "gg-report: bridge family %s has zero reductions\n",
                Name.c_str());
        Ok = false;
      }
    }
  } else if (FailDeadBridge) {
    fprintf(stderr, "gg-report: --fail-on-dead-bridge needs a matching "
                    "target to identify bridge productions\n");
    Ok = false;
  }

  if (FailZeroDyn && DynHitsTotal == 0) {
    fprintf(stderr, "gg-report: no dynamic-tie events recorded\n");
    Ok = false;
  }

  // Never-visited states: a sample labeled by accessing symbol.
  std::vector<int> Unvisited;
  for (uint64_t S = 0; S < Cov.NumStates; ++S)
    if (!hits(Cov.StateHits, static_cast<int>(S)))
      Unvisited.push_back(static_cast<int>(S));
  printf("\n  never-visited states: %zu", Unvisited.size());
  for (size_t I = 0; I < Unvisited.size() && I < 8; ++I)
    printf("%s%s", I ? " " : "  e.g. ", stateName(Unvisited[I]).c_str());
  printf("\n");

  // Dynamic-tie points with their choice distribution.
  std::vector<std::pair<uint64_t, std::pair<int, int>>> DynHot;
  for (const auto &[Key, D] : Cov.Dyn)
    DynHot.push_back({D.Hits, Key});
  std::sort(DynHot.begin(), DynHot.end(),
            [](const auto &A, const auto &B) { return A.first > B.first; });
  printf("\n  dynamic-tie points (top %d of %zu):\n", Top, DynHot.size());
  for (size_t I = 0; I < DynHot.size() && I < static_cast<size_t>(Top); ++I) {
    const auto &[State, Term] = DynHot[I].second;
    const DynPointHits &D = Cov.Dyn.at(DynHot[I].second);
    printf("    %10llu  %s on %s ->",
           static_cast<unsigned long long>(D.Hits), stateName(State).c_str(),
           termName(Term).c_str());
    for (const auto &[Prod, N] : D.Chosen)
      printf(" %s x%llu", prodName(Prod).c_str(),
             static_cast<unsigned long long>(N));
    printf("\n");
  }

  printf("\n  instruction-table rows:\n");
  for (const auto &[Name, N] : Cov.RowHits)
    printf("    %-8s %10llu\n", Name.c_str(),
           static_cast<unsigned long long>(N));
  return Ok;
}

/// The profile half of the report: hot-path cost attribution from merged
/// gg-profile-v1 artifacts, optionally joined against merged coverage.
struct ProfileReport : Namer {
  ProfileSnapshot Prof;
  const CoverageSnapshot *Cov = nullptr; ///< null = no coverage join

  /// Renders a tick total: seconds under the cycles timebase, raw steps
  /// otherwise.
  std::string ticksStr(uint64_t Ticks) const {
    if (Prof.TicksPerSecond > 0)
      return strf("%10.4fs", Prof.seconds(Ticks));
    return strf("%10llu steps", static_cast<unsigned long long>(Ticks));
  }

  uint64_t phaseTicks(const char *Name) const {
    auto It = Prof.Phases.find(Name);
    return It == Prof.Phases.end() ? 0 : It->second.Cell.Ticks;
  }

  /// Sum of the instrumented (non-wall) GG phases — everything charged
  /// under cg.* except the cg.total wall scope.
  uint64_t attributedTicks() const {
    uint64_t T = 0;
    for (const auto &[Name, P] : Prof.Phases)
      if (Name.rfind("cg.", 0) == 0 && Name != "cg.total")
        T += P.Cell.Ticks;
    return T;
  }

  /// Percent of cg.total wall time the instrumented phases cover; -1
  /// when no cg.total was recorded (steps timebase, or no GG compile).
  /// Summed per-worker phase time can exceed wall with --threads > 1.
  double attributedPct() const {
    uint64_t Total = phaseTicks("cg.total");
    return Total ? 100.0 * double(attributedTicks()) / double(Total) : -1;
  }

  void print(int Top) const;
  void diffPcc(const ProfileSnapshot &Pcc) const;

private:
  void printHotCells(const char *What, const std::map<int, ProfCell> &Cells,
                     int Top, bool IsState) const;
};

void ProfileReport::printHotCells(const char *What,
                                  const std::map<int, ProfCell> &Cells,
                                  int Top, bool IsState) const {
  uint64_t TotalTicks = 0, CovTotal = 0;
  for (const auto &[Id, C] : Cells)
    TotalTicks += C.Ticks;
  const std::map<int, uint64_t> *Hits = nullptr;
  if (Cov) {
    Hits = IsState ? &Cov->StateHits : &Cov->ProdHits;
    for (const auto &[Id, H] : *Hits)
      CovTotal += H;
  }

  std::vector<std::pair<uint64_t, int>> Hot;
  for (const auto &[Id, C] : Cells)
    Hot.push_back({C.Ticks, Id});
  std::sort(Hot.begin(), Hot.end(), [](const auto &A, const auto &B) {
    return A.first != B.first ? A.first > B.first : A.second < B.second;
  });

  printf("\n  hot %s (top %d of %zu, by attributed ticks):\n", What, Top,
         Hot.size());
  for (size_t I = 0; I < Hot.size() && I < static_cast<size_t>(Top); ++I) {
    int Id = Hot[I].second;
    const ProfCell &C = Cells.at(Id);
    double TickShare = TotalTicks ? 100.0 * double(C.Ticks) / TotalTicks : 0;
    std::string Line = strf(
        "    %s %6.2f%%  %8llu events  %6.1f ticks/event  %s",
        ticksStr(C.Ticks).c_str(), TickShare,
        static_cast<unsigned long long>(C.Events),
        C.Events ? double(C.Ticks) / double(C.Events) : 0.0,
        IsState ? stateName(Id).c_str() : prodName(Id).c_str());
    if (Hits) {
      auto It = Hits->find(Id);
      uint64_t H = It == Hits->end() ? 0 : It->second;
      double HitShare = CovTotal ? 100.0 * double(H) / CovTotal : 0;
      Line += strf("  [cov %llu hits]", static_cast<unsigned long long>(H));
      // Expensive per visit: its share of the cost is far above its
      // share of the traffic — a packing/direct-coding candidate.
      if (TickShare >= 1.0 && TickShare > 5.0 * HitShare)
        Line += "  HOT-BUT-RARELY-HIT";
    }
    printf("%s\n", Line.c_str());
  }
}

void ProfileReport::print(int Top) const {
  const char *TbName =
      Prof.Timebase == ProfileTimebase::Steps ? "steps" : "cycles";
  printf("\n== profile (%llu compiles, timebase %s, fingerprint %s%s%s)\n",
         static_cast<unsigned long long>(Prof.Compiles), TbName,
         Prof.Fingerprint.c_str(),
         Prof.PerfAvailable ? ", hw counters" : ", no hw counters",
         Target ? "" : ", no matching target: raw ids");

  // Per-phase breakdown, largest first.
  std::vector<std::pair<uint64_t, std::string>> Phases;
  for (const auto &[Name, P] : Prof.Phases)
    Phases.push_back({P.Cell.Ticks, Name});
  std::sort(Phases.begin(), Phases.end(), [](const auto &A, const auto &B) {
    return A.first != B.first ? A.first > B.first : A.second < B.second;
  });
  uint64_t Total = phaseTicks("cg.total");
  printf("  phases:\n");
  for (const auto &[Ticks, Name] : Phases) {
    const PhaseProfile &P = Prof.Phases.at(Name);
    std::string Line =
        strf("    %-14s %s  %8llu events", Name.c_str(),
             ticksStr(Ticks).c_str(),
             static_cast<unsigned long long>(P.Cell.Events));
    if (Total && Name != "cg.total" && Name.rfind("cg.", 0) == 0)
      Line += strf("  %5.1f%% of cg.total", 100.0 * double(Ticks) / Total);
    if (P.Hw.any()) {
      Line += strf("  [hw: %llu cyc, %llu ins",
                   static_cast<unsigned long long>(P.Hw.Cycles),
                   static_cast<unsigned long long>(P.Hw.Instructions));
      if (P.Hw.Cycles)
        Line += strf(", ipc %.2f",
                     double(P.Hw.Instructions) / double(P.Hw.Cycles));
      Line += strf(", %llu l1d-miss, %llu llc-miss, %llu br-miss]",
                   static_cast<unsigned long long>(P.Hw.L1dMisses),
                   static_cast<unsigned long long>(P.Hw.LlcMisses),
                   static_cast<unsigned long long>(P.Hw.BranchMisses));
    }
    printf("%s\n", Line.c_str());
  }
  double Attr = attributedPct();
  if (Attr >= 0)
    printf("  attributed: %.1f%% of cg.total wall time is charged to named "
           "phases\n",
           Attr);

  printHotCells("states", Prof.States, Top, /*IsState=*/true);
  printHotCells("productions", Prof.Prods, Top, /*IsState=*/false);

  // Dyn-tie points by chooser cost.
  std::vector<std::pair<uint64_t, std::pair<int, int>>> DynHot;
  for (const auto &[Key, C] : Prof.Dyn)
    DynHot.push_back({C.Ticks, Key});
  std::sort(DynHot.begin(), DynHot.end(),
            [](const auto &A, const auto &B) { return A.first > B.first; });
  printf("\n  hot dyn-tie points (top %d of %zu, by chooser cost):\n", Top,
         DynHot.size());
  for (size_t I = 0; I < DynHot.size() && I < static_cast<size_t>(Top); ++I) {
    const auto &[State, Term] = DynHot[I].second;
    const ProfCell &C = Prof.Dyn.at(DynHot[I].second);
    printf("    %s  %8llu events  %s on %s\n",
           ticksStr(C.Ticks).c_str(),
           static_cast<unsigned long long>(C.Events),
           stateName(State).c_str(), termName(Term).c_str());
  }

  // Table regions: which RegionSize-state pages of the packed tables are
  // hot — the input the open-item-1 table packing work needs.
  std::map<int, ProfCell> Regions = Prof.regions();
  uint64_t RegionTotal = 0;
  for (const auto &[Id, C] : Regions)
    RegionTotal += C.Ticks;
  std::vector<std::pair<uint64_t, int>> HotRegions;
  for (const auto &[Id, C] : Regions)
    HotRegions.push_back({C.Ticks, Id});
  std::sort(HotRegions.begin(), HotRegions.end(),
            [](const auto &A, const auto &B) {
              return A.first != B.first ? A.first > B.first
                                        : A.second < B.second;
            });
  printf("\n  hot table regions (%llu states each, top %d of %zu):\n",
         static_cast<unsigned long long>(ProfileSnapshot::RegionSize), Top,
         HotRegions.size());
  for (size_t I = 0; I < HotRegions.size() && I < static_cast<size_t>(Top);
       ++I) {
    int Id = HotRegions[I].second;
    const ProfCell &C = Regions.at(Id);
    printf("    states %4llu-%-4llu %s  %6.2f%%  %8llu events\n",
           static_cast<unsigned long long>(Id * ProfileSnapshot::RegionSize),
           static_cast<unsigned long long>((Id + 1) *
                                               ProfileSnapshot::RegionSize -
                                           1),
           ticksStr(C.Ticks).c_str(),
           RegionTotal ? 100.0 * double(C.Ticks) / RegionTotal : 0.0,
           static_cast<unsigned long long>(C.Events));
  }
}

void ProfileReport::diffPcc(const ProfileSnapshot &Pcc) const {
  uint64_t GgTotal = phaseTicks("cg.total");
  auto It = Pcc.Phases.find("pcc.compile");
  uint64_t PccTotal = It == Pcc.Phases.end() ? 0 : It->second.Cell.Ticks;
  printf("\n== GG vs PCC differential\n");
  if (!GgTotal || !PccTotal) {
    printf("  (incomplete: need cg.total in the GG profile and pcc.compile "
           "in the PCC profile, both on the cycles timebase)\n");
    return;
  }
  double GgSec = Prof.seconds(GgTotal);
  double PccSec = Pcc.seconds(PccTotal);
  // Under the steps timebase seconds() is 0; fall back to raw tick ratio
  // so the table still renders (with the caveat printed above it).
  double Ratio = PccSec > 0   ? GgSec / PccSec
                 : PccTotal   ? double(GgTotal) / double(PccTotal)
                              : 0;
  printf("  gg  cg.total     %s  (%llu compiles)\n", ticksStr(GgTotal).c_str(),
         static_cast<unsigned long long>(Prof.Compiles));
  printf("  pcc pcc.compile  %s  (%llu compiles)\n",
         Pcc.TicksPerSecond > 0
             ? strf("%10.4fs", PccSec).c_str()
             : strf("%10llu steps", static_cast<unsigned long long>(PccTotal))
                   .c_str(),
         static_cast<unsigned long long>(Pcc.Compiles));
  printf("  ratio: GG is %.2fx the PCC baseline\n\n", Ratio);

  // Side-by-side: each GG phase against both totals, then the ranked
  // work-list — what the ratio becomes if a phase's cost went to zero.
  // That bound is what table packing / direct coding (ROADMAP items 1-2)
  // can buy per phase.
  std::vector<std::pair<uint64_t, std::string>> Phases;
  for (const auto &[Name, P] : Prof.Phases)
    if (Name.rfind("cg.", 0) == 0 && Name != "cg.total")
      Phases.push_back({P.Cell.Ticks, Name});
  std::sort(Phases.begin(), Phases.end(), [](const auto &A, const auto &B) {
    return A.first != B.first ? A.first > B.first : A.second < B.second;
  });
  printf("  %-14s %12s %16s %16s\n", "phase", "cost", "share of GG",
         "vs whole PCC");
  for (const auto &[Ticks, Name] : Phases)
    printf("  %-14s %s %15.1f%% %15.1f%%\n", Name.c_str(),
           ticksStr(Ticks).c_str(), 100.0 * double(Ticks) / double(GgTotal),
           100.0 * double(Ticks) / double(PccTotal));
  printf("\n  work-list (ratio if the phase cost zero):\n");
  for (const auto &[Ticks, Name] : Phases)
    printf("    %-14s -> %.2fx\n", Name.c_str(),
           double(GgTotal - std::min(Ticks, GgTotal)) / double(PccTotal));
}

/// One request's spans joined from Chrome trace events, keyed by the
/// "req" arg the server stamps on every span in the request's scope.
struct TraceRequest {
  uint64_t Id = 0;
  double AdmitTs = -1;  ///< server.admit start (us); -1 = not seen
  double StartTs = -1;  ///< server.request start (us); -1 = never dispatched
  double TotalUs = 0;   ///< server.request duration
  int64_t Gen = -1;     ///< serving table generation (span arg)
  int64_t Status = -1;  ///< wire ResponseStatus (span arg)
  std::map<std::string, double> PhaseUs; ///< cg.*/match.* name -> summed dur

  /// Queue wait reconstructed from the admission-to-dispatch gap; the
  /// two spans live on different threads, but both timestamps come from
  /// the recorder's one clock.
  double queueWaitMs() const {
    if (AdmitTs >= 0 && StartTs >= AdmitTs)
      return (StartTs - AdmitTs) / 1000.0;
    return 0;
  }
};

/// The --trace half of the report: per-request timelines from however
/// many trace files the incident left behind (server + clients merge
/// fine — only spans tagged with a request id participate).
struct TraceReport {
  std::map<uint64_t, TraceRequest> Requests;
  size_t Events = 0; ///< all events ingested
  size_t Tagged = 0; ///< events carrying a "req" arg

  void ingest(const JsonValue &Root) {
    for (const JsonValue &E : Root.Arr) {
      ++Events;
      const JsonValue *Name = E.find("name");
      const JsonValue *Args = E.find("args");
      if (!Name || !Args)
        continue;
      const JsonValue *Req = Args->find("req");
      if (!Req || Req->K != JsonValue::Number)
        continue;
      ++Tagged;
      TraceRequest &R = Requests[static_cast<uint64_t>(Req->Num)];
      R.Id = static_cast<uint64_t>(Req->Num);
      double Ts = E.numberOr("ts"), Dur = E.numberOr("dur");
      const std::string &N = Name->Str;
      if (N == "server.admit") {
        // Keep the earliest admission: a shed-then-retried id admits
        // more than once, and queue wait is measured from the first.
        if (R.AdmitTs < 0 || Ts < R.AdmitTs)
          R.AdmitTs = Ts;
      } else if (N == "server.request") {
        R.StartTs = Ts;
        R.TotalUs = Dur;
        if (const JsonValue *G = Args->find("gen"))
          R.Gen = static_cast<int64_t>(G->Num);
        if (const JsonValue *S = Args->find("status"))
          R.Status = static_cast<int64_t>(S->Num);
      } else if (N.rfind("cg.", 0) == 0 || N.rfind("match.", 0) == 0) {
        R.PhaseUs[N] += Dur;
      }
    }
  }

  /// Prints the report; returns false when the queue-wait gate fires.
  bool print(int Slowest, double FailQueueP99Ms) const;
};

bool TraceReport::print(int Slowest, double FailQueueP99Ms) const {
  std::vector<const TraceRequest *> Served;
  size_t AdmitOnly = 0;
  for (const auto &[Id, R] : Requests) {
    if (R.StartTs >= 0)
      Served.push_back(&R);
    else
      ++AdmitOnly; // admitted (or shed) but never dispatched to a worker
  }
  printf("\n== trace (%zu events, %zu request-tagged, %zu requests: "
         "%zu served, %zu admitted-only)\n",
         Events, Tagged, Requests.size(), Served.size(), AdmitOnly);
  if (Served.empty())
    return FailQueueP99Ms < 0;

  auto Pctl = [](std::vector<double> V, double P) {
    std::sort(V.begin(), V.end());
    return V[static_cast<size_t>(P * (V.size() - 1))];
  };
  std::vector<double> Waits, Totals;
  for (const TraceRequest *R : Served) {
    Waits.push_back(R->queueWaitMs());
    Totals.push_back(R->TotalUs / 1000.0);
  }
  double WaitP99 = Pctl(Waits, 0.99);
  printf("  queue wait   p50 %8.2fms  p99 %8.2fms\n", Pctl(Waits, 0.50),
         WaitP99);
  printf("  service time p50 %8.2fms  p99 %8.2fms  (server.request)\n",
         Pctl(Totals, 0.50), Pctl(Totals, 0.99));

  // The N slowest end-to-end requests, each with where the time went:
  // queueing, or which phase of the compile.
  std::sort(Served.begin(), Served.end(),
            [](const TraceRequest *A, const TraceRequest *B) {
              return A->TotalUs != B->TotalUs ? A->TotalUs > B->TotalUs
                                              : A->Id < B->Id;
            });
  printf("  slowest %d:\n", Slowest);
  for (size_t I = 0;
       I < Served.size() && I < static_cast<size_t>(Slowest); ++I) {
    const TraceRequest &R = *Served[I];
    const char *St =
        R.Status >= 0 && R.Status <= 6
            ? responseStatusName(static_cast<ResponseStatus>(R.Status))
            : "?";
    std::string Line =
        strf("    req %-12llu gen %-3lld %-13s queue %8.2fms  "
             "total %8.2fms",
             static_cast<unsigned long long>(R.Id),
             static_cast<long long>(R.Gen), St, R.queueWaitMs(),
             R.TotalUs / 1000.0);
    // Phase breakdown, largest first; cg.compile wraps the others, so
    // name it separately rather than double-counting it into the sum.
    std::vector<std::pair<double, std::string>> Phases;
    for (const auto &[Name, Us] : R.PhaseUs)
      if (Name != "cg.compile")
        Phases.push_back({Us, Name});
    std::sort(Phases.begin(), Phases.end(),
              [](const auto &A, const auto &B) { return A.first > B.first; });
    for (size_t P = 0; P < Phases.size() && P < 3; ++P)
      Line += strf("  %s %.2fms", Phases[P].second.c_str(),
                   Phases[P].first / 1000.0);
    printf("%s\n", Line.c_str());
  }

  if (FailQueueP99Ms >= 0 && WaitP99 > FailQueueP99Ms) {
    fprintf(stderr,
            "gg-report: queue-wait p99 %.2fms exceeds the "
            "--fail-queue-wait-p99-ms=%.2f gate\n",
            WaitP99, FailQueueP99Ms);
    return false;
  }
  return true;
}

/// One gg-bench-v1 file: {"schema":...,"bench":NAME,"metrics":{k:v}}.
struct BenchMetrics {
  std::string Bench;
  std::map<std::string, double> Metrics;

  bool load(const std::string &Path) {
    std::string Text, Err;
    JsonValue V;
    if (!readFile(Path, Text))
      return false;
    if (!parseJson(Text, V, Err)) {
      fprintf(stderr, "gg-report: %s: %s\n", Path.c_str(), Err.c_str());
      return false;
    }
    const JsonValue *Schema = V.find("schema");
    if (!Schema || Schema->Str != "gg-bench-v1") {
      fprintf(stderr, "gg-report: %s is not a gg-bench-v1 file\n",
              Path.c_str());
      return false;
    }
    if (const JsonValue *B = V.find("bench"))
      Bench = B->Str;
    const JsonValue *M = V.find("metrics");
    if (!M || M->K != JsonValue::Kind::Object) {
      fprintf(stderr, "gg-report: %s has no metrics object\n", Path.c_str());
      return false;
    }
    for (const auto &[K, Val] : M->Obj)
      Metrics[K] = Val.Num;
    return true;
  }
};

/// One log-histogram summed across gg-stats-v1 artifacts (the JSON shape
/// StatsRegistry::toJson emits: count/sum/min/max plus sparse buckets
/// keyed by their upper bound).
struct HistSummary {
  uint64_t Count = 0, Sum = 0, Min = UINT64_MAX, Max = 0;
  std::map<uint64_t, uint64_t> Buckets; ///< upper bound -> count

  void mergeFrom(const JsonValue &H) {
    uint64_t C = static_cast<uint64_t>(H.numberOr("count"));
    if (!C)
      return;
    Count += C;
    Sum += static_cast<uint64_t>(H.numberOr("sum"));
    Min = std::min(Min, static_cast<uint64_t>(H.numberOr("min")));
    Max = std::max(Max, static_cast<uint64_t>(H.numberOr("max")));
    if (const JsonValue *B = H.find("buckets"))
      for (const auto &[Upper, N] : B->Obj)
        Buckets[strtoull(Upper.c_str(), nullptr, 10)] +=
            static_cast<uint64_t>(N.Num);
  }

  double mean() const { return Count ? double(Sum) / double(Count) : 0; }

  /// "n=N mean=M max=X  <=1:..  <=4:.." on one line.
  std::string render(const char *Unit) const {
    std::string Line = strf("n=%llu mean=%.1f%s max=%llu%s",
                            static_cast<unsigned long long>(Count), mean(),
                            Unit, static_cast<unsigned long long>(Max), Unit);
    for (const auto &[Upper, N] : Buckets)
      Line += strf("  <=%llu:%llu", static_cast<unsigned long long>(Upper),
                   static_cast<unsigned long long>(N));
    return Line;
  }
};

/// The sentinel compare: every baseline metric must exist in the fresh
/// run and stay within the allowed relative deviation. Count metrics are
/// deterministic, so the default threshold is tight; time metrics (and
/// any metric matching a --noisy substring) are noisy and only checked
/// when --time-threshold opts them in.
bool checkBench(const BenchMetrics &Fresh, const BenchMetrics &Baseline,
                double ThresholdPct, double TimeThresholdPct,
                const std::vector<std::string> &Noisy) {
  bool Ok = true;
  int Checked = 0, Skipped = 0;
  for (const auto &[Name, Base] : Baseline.Metrics) {
    bool IsTime = Name.find("seconds") != std::string::npos;
    for (const std::string &Sub : Noisy)
      if (Name.find(Sub) != std::string::npos)
        IsTime = true;
    double Allowed = IsTime ? TimeThresholdPct : ThresholdPct;
    if (Allowed < 0) {
      ++Skipped;
      continue;
    }
    auto It = Fresh.Metrics.find(Name);
    if (It == Fresh.Metrics.end()) {
      fprintf(stderr, "  MISSING %s (baseline %.6g)\n", Name.c_str(), Base);
      Ok = false;
      continue;
    }
    ++Checked;
    double Denom = std::max(std::fabs(Base), 1e-9);
    double DeltaPct = 100.0 * std::fabs(It->second - Base) / Denom;
    if (DeltaPct > Allowed) {
      fprintf(stderr, "  REGRESSION %s: %.6g -> %.6g (%+.2f%%, allowed %.2f%%)\n",
              Name.c_str(), Base, It->second,
              100.0 * (It->second - Base) / Denom, Allowed);
      Ok = false;
    }
  }
  for (const auto &[Name, Val] : Fresh.Metrics)
    if (!Baseline.Metrics.count(Name))
      printf("  note: new metric %s = %.6g (not in baseline)\n", Name.c_str(),
             Val);
  printf("== bench %s: %d metrics checked, %d skipped: %s\n",
         Baseline.Bench.c_str(), Checked, Skipped, Ok ? "OK" : "REGRESSED");
  return Ok;
}

void printUsage(FILE *To) {
  fprintf(To,
          "usage: gg-report [ARTIFACT.json ...] [--top=N] [--json=FILE]\n"
          "                 [--fail-on-dead-bridge] [--fail-on-zero-dyn]\n"
          "                 [--fail-production-coverage=PCT]\n"
          "                 [--profile] [--profile-json=FILE] "
          "[--diff-pcc=FILE]\n"
          "                 [--fail-attribution-below=PCT]\n"
          "                 [--check-bench=FRESH:BASELINE] [--threshold=PCT]\n"
          "                 [--time-threshold=PCT] [--noisy=SUBSTR]\n"
          "                 [--trace] [--slowest=N]\n"
          "                 [--fail-queue-wait-p99-ms=MS]\n"
          "\n"
          "Merges gg-coverage-v1 / gg-profile-v1 / gg-stats-v1 artifacts\n"
          "into one report, compares gg-bench-v1 baselines, and joins\n"
          "--trace-json Chrome traces into per-request timelines.\n");
}

/// Diagnostic + usage + the conventional usage-error exit code.
int usageError(const char *Diag) {
  fprintf(stderr, "gg-report: %s\n", Diag);
  printUsage(stderr);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Artifacts;
  std::vector<std::pair<std::string, std::string>> BenchChecks;
  std::vector<std::string> Noisy;
  std::string MergedJsonPath, ProfileJsonPath, DiffPccPath;
  int Top = 10, Slowest = 5;
  bool FailDeadBridge = false, FailZeroDyn = false, WantProfile = false;
  bool WantTrace = false;
  double ThresholdPct = 0.5, TimeThresholdPct = -1, FailAttrBelow = -1;
  double FailProdCovBelow = -1, FailQueueP99Ms = -1;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A.rfind("--top=", 0) == 0)
      Top = atoi(A.c_str() + 6);
    else if (A.rfind("--json=", 0) == 0)
      MergedJsonPath = A.substr(7);
    else if (A == "--fail-on-dead-bridge")
      FailDeadBridge = true;
    else if (A == "--fail-on-zero-dyn")
      FailZeroDyn = true;
    else if (A.rfind("--fail-production-coverage=", 0) == 0)
      FailProdCovBelow = atof(A.c_str() + 27);
    else if (A == "--profile")
      WantProfile = true;
    else if (A == "--trace")
      WantTrace = true;
    else if (A.rfind("--slowest=", 0) == 0)
      Slowest = atoi(A.c_str() + 10);
    else if (A.rfind("--fail-queue-wait-p99-ms=", 0) == 0)
      FailQueueP99Ms = atof(A.c_str() + 25);
    else if (A.rfind("--profile-json=", 0) == 0)
      ProfileJsonPath = A.substr(15);
    else if (A.rfind("--diff-pcc=", 0) == 0)
      DiffPccPath = A.substr(11);
    else if (A.rfind("--fail-attribution-below=", 0) == 0)
      FailAttrBelow = atof(A.c_str() + 25);
    else if (A.rfind("--threshold=", 0) == 0)
      ThresholdPct = atof(A.c_str() + 12);
    else if (A.rfind("--time-threshold=", 0) == 0)
      TimeThresholdPct = atof(A.c_str() + 17);
    else if (A.rfind("--noisy=", 0) == 0)
      Noisy.push_back(A.substr(8));
    else if (A == "--help" || A == "-h") {
      printUsage(stdout);
      return 0;
    } else if (A.rfind("--check-bench=", 0) == 0) {
      std::string Pair = A.substr(14);
      size_t Colon = Pair.find(':');
      if (Colon == std::string::npos)
        return usageError("--check-bench wants FRESH:BASELINE");
      BenchChecks.push_back({Pair.substr(0, Colon), Pair.substr(Colon + 1)});
    } else if (A[0] == '-')
      return usageError(strf("unknown option \"%s\"", A.c_str()).c_str());
    else
      Artifacts.push_back(A);
  }

  // An empty invocation has nothing to do: say so instead of silently
  // exiting 0 (which read as "everything passed" in scripts).
  if (Artifacts.empty() && BenchChecks.empty() && DiffPccPath.empty())
    return usageError("no artifacts or actions given");

  bool Ok = true;

  // Merge the coverage and profile artifacts and sum phase times from
  // stats artifacts.
  CoverageSnapshot Merged;
  ProfileSnapshot MergedProf;
  bool HaveCov = false, HaveProf = false;
  std::map<std::string, double> PhaseSeconds;
  std::map<std::string, uint64_t> StatCounters;
  std::map<std::string, HistSummary> StatHists;
  int StatsFiles = 0;
  TraceReport Traces;
  int TraceFiles = 0;
  for (const std::string &Path : Artifacts) {
    std::string Text, Err;
    JsonValue V;
    if (!readFile(Path, Text) || !parseJson(Text, V, Err)) {
      if (!Err.empty())
        fprintf(stderr, "gg-report: %s: %s\n", Path.c_str(), Err.c_str());
      return 1;
    }
    // A bare array is a Chrome trace (--trace-json writes no schema key
    // because trace viewers want the raw event array).
    if (V.K == JsonValue::Array) {
      ++TraceFiles;
      Traces.ingest(V);
      continue;
    }
    const JsonValue *Schema = V.find("schema");
    std::string Kind = Schema ? Schema->Str : "";
    if (Kind == "gg-coverage-v1") {
      CoverageSnapshot S;
      if (!S.parse(V, Err) || (HaveCov && !Merged.merge(S, Err))) {
        fprintf(stderr, "gg-report: %s: %s\n", Path.c_str(), Err.c_str());
        return 1;
      }
      if (!HaveCov)
        Merged = std::move(S);
      HaveCov = true;
    } else if (Kind == "gg-profile-v1") {
      ProfileSnapshot S;
      if (!S.parse(V, Err) || (HaveProf && !MergedProf.merge(S, Err))) {
        fprintf(stderr, "gg-report: %s: %s\n", Path.c_str(), Err.c_str());
        return 1;
      }
      if (!HaveProf)
        MergedProf = std::move(S);
      HaveProf = true;
    } else if (Kind == "gg-stats-v1") {
      ++StatsFiles;
      if (const JsonValue *Vals = V.find("values"))
        for (const auto &[Name, Val] : Vals->Obj)
          if (Name.find("seconds") != std::string::npos)
            PhaseSeconds[Name] += Val.Num;
      if (const JsonValue *Cs = V.find("counters"))
        for (const auto &[Name, Val] : Cs->Obj)
          StatCounters[Name] += static_cast<uint64_t>(Val.Num);
      if (const JsonValue *Hs = V.find("histograms"))
        for (const auto &[Name, HV] : Hs->Obj)
          StatHists[Name].mergeFrom(HV);
    } else {
      fprintf(stderr, "gg-report: %s: unrecognized schema \"%s\"\n",
              Path.c_str(), Kind.c_str());
      return 1;
    }
  }

  // Rebuild the target once to name ids in both report halves — only
  // trusted when an artifact was produced by a grammar/tables identical
  // to what we just built.
  std::unique_ptr<VaxTarget> Target;
  std::string TargetFp;
  if (HaveCov || HaveProf) {
    std::string Err;
    Target = VaxTarget::create(Err);
    if (Target)
      TargetFp = VaxTarget::fingerprint(Target->grammar(), Target->packed());
  }

  if (HaveCov) {
    CoverageReport Report;
    Report.Cov = std::move(Merged);
    if (Target && TargetFp == Report.Cov.Fingerprint)
      Report.Target = Target.get();
    if (!Report.print(Top, FailDeadBridge, FailZeroDyn))
      Ok = false;
    if (FailProdCovBelow >= 0) {
      // The production-coverage gate (docs/fuzzing.md): every production
      // the shipped null-chooser pipeline can reach must have fired. The
      // denominator excludes the statically and dynamically shadowed
      // productions GrammarWalk proves unreachable — a 100% gate is
      // meaningful only against what a parse can actually reduce.
      if (!Report.Target) {
        fprintf(stderr,
                "gg-report: --fail-production-coverage needs a matching "
                "target (artifact fingerprint differs from the freshly "
                "built grammar/tables)\n");
        Ok = false;
      } else {
        GrammarWalk Walk(Report.Target->grammar(), Report.Target->packed());
        std::vector<char> Excluded(Report.Cov.NumProds, 0);
        for (int P : Walk.shadowedProductions())
          Excluded[P] = 1;
        for (int P : Walk.dynamicallyShadowedProductions())
          Excluded[P] = 1;
        size_t Reachable = 0, Hit = 0;
        std::vector<int> Missed;
        for (uint64_t Id = 0; Id < Report.Cov.NumProds; ++Id) {
          if (Excluded[Id])
            continue;
          ++Reachable;
          auto It = Report.Cov.ProdHits.find(static_cast<int>(Id));
          if (It != Report.Cov.ProdHits.end() && It->second)
            ++Hit;
          else
            Missed.push_back(static_cast<int>(Id));
        }
        const double Pct = Reachable ? 100.0 * double(Hit) / double(Reachable)
                                     : 100.0;
        printf("\n  production coverage: %zu/%zu reachable (%.1f%%; %zu "
               "shadowed productions excluded)\n",
               Hit, Reachable, Pct,
               Walk.shadowedProductions().size() +
                   Walk.dynamicallyShadowedProductions().size());
        if (Pct < FailProdCovBelow) {
          fprintf(stderr,
                  "gg-report: reachable-production coverage %.1f%% is below "
                  "the --fail-production-coverage=%.1f%% gate (%zu "
                  "missed)\n",
                  Pct, FailProdCovBelow, Missed.size());
          for (size_t I = 0; I < Missed.size() && I < 16; ++I)
            fprintf(stderr, "  p%d %s\n", Missed[I],
                    renderProduction(Report.Target->grammar(),
                                     Report.Target->grammar().prod(Missed[I]))
                        .c_str());
          Ok = false;
        }
      }
    }
    if (!MergedJsonPath.empty()) {
      std::ofstream Out(MergedJsonPath);
      if (!Out) {
        fprintf(stderr, "gg-report: cannot write %s\n",
                MergedJsonPath.c_str());
        return 1;
      }
      Out << Report.Cov.toJson() << "\n";
    }
    Merged = std::move(Report.Cov); // keep for the profile coverage join
  } else if (FailDeadBridge || FailZeroDyn || FailProdCovBelow >= 0 ||
             !MergedJsonPath.empty()) {
    fprintf(stderr, "gg-report: --fail-on-dead-bridge, --fail-on-zero-dyn, "
                    "--fail-production-coverage and --json need at least "
                    "one gg-coverage-v1 artifact (none of the given files "
                    "had that schema)\n");
    return 1;
  }

  if (WantProfile && !HaveProf) {
    fprintf(stderr, "gg-report: --profile needs at least one gg-profile-v1 "
                    "artifact (none of the given files had that schema)\n");
    return 1;
  }
  if (HaveProf) {
    ProfileReport Report;
    Report.Prof = std::move(MergedProf);
    if (Target && TargetFp == Report.Prof.Fingerprint)
      Report.Target = Target.get();
    if (HaveCov)
      Report.Cov = &Merged;
    Report.print(Top);
    if (FailAttrBelow >= 0) {
      double Attr = Report.attributedPct();
      if (Attr < FailAttrBelow) {
        fprintf(stderr,
                "gg-report: attributed phase time %.1f%% of cg.total is "
                "below the --fail-attribution-below=%.1f%% gate\n",
                Attr, FailAttrBelow);
        Ok = false;
      }
    }
    if (!ProfileJsonPath.empty()) {
      std::ofstream Out(ProfileJsonPath);
      if (!Out) {
        fprintf(stderr, "gg-report: cannot write %s\n",
                ProfileJsonPath.c_str());
        return 1;
      }
      Out << Report.Prof.toJson() << "\n";
    }
    if (!DiffPccPath.empty()) {
      std::string Text, Err;
      JsonValue V;
      ProfileSnapshot Pcc;
      if (!readFile(DiffPccPath, Text) || !parseJson(Text, V, Err) ||
          !Pcc.parse(V, Err)) {
        if (!Err.empty())
          fprintf(stderr, "gg-report: %s: %s\n", DiffPccPath.c_str(),
                  Err.c_str());
        return 1;
      }
      Report.diffPcc(Pcc);
    }
  } else if (FailAttrBelow >= 0 || !ProfileJsonPath.empty() ||
             !DiffPccPath.empty()) {
    fprintf(stderr, "gg-report: --diff-pcc, --profile-json and "
                    "--fail-attribution-below need at least one "
                    "gg-profile-v1 artifact\n");
    return 1;
  }

  if (WantTrace && !TraceFiles) {
    fprintf(stderr, "gg-report: --trace needs at least one Chrome trace "
                    "artifact (a --trace-json file; none of the given "
                    "files was a bare JSON array)\n");
    return 1;
  }
  if (TraceFiles) {
    if (!Traces.print(Slowest, FailQueueP99Ms))
      Ok = false;
  } else if (FailQueueP99Ms >= 0) {
    fprintf(stderr, "gg-report: --fail-queue-wait-p99-ms needs at least "
                    "one Chrome trace artifact\n");
    return 1;
  }

  if (StatsFiles) {
    double Total = 0;
    for (const auto &[Name, S] : PhaseSeconds)
      Total += S;
    printf("\n== phase times (%d stats artifacts)\n", StatsFiles);
    for (const auto &[Name, S] : PhaseSeconds)
      printf("  %-36s %10.4fs (%.1f%%)\n", Name.c_str(), S,
             Total > 0 ? 100.0 * S / Total : 0.0);
  }

  // Compile-server overload/lifecycle summary: only when an artifact
  // actually came from a server (--stats-json touches the schema keys, so
  // presence of server.requests is the discriminator).
  if (StatsFiles && StatCounters.count("server.requests")) {
    auto C = [&](const char *Name) -> uint64_t {
      auto It = StatCounters.find(Name);
      return It == StatCounters.end() ? 0 : It->second;
    };
    uint64_t Served = C("server.requests");
    uint64_t Shed = C("server.overloaded");
    uint64_t Offered = Served + Shed;
    printf("\n== server (%d stats artifacts)\n", StatsFiles);
    printf("  served %llu: %llu ok, %llu compile-error, %llu quarantined, "
           "%llu watchdog kills\n",
           static_cast<unsigned long long>(Served),
           static_cast<unsigned long long>(C("server.ok")),
           static_cast<unsigned long long>(C("server.compile_errors")),
           static_cast<unsigned long long>(C("server.quarantined")),
           static_cast<unsigned long long>(C("server.watchdog_kills")));
    printf("  shed %llu (%.1f%% of %llu offered): %llu queue-full, "
           "%llu shed-oldest, %llu queue-deadline, %llu admission-deadline, "
           "%llu draining\n",
           static_cast<unsigned long long>(Shed), pct(Shed, Offered),
           static_cast<unsigned long long>(Offered),
           static_cast<unsigned long long>(C("server.shed_queue_full")),
           static_cast<unsigned long long>(C("server.shed_oldest")),
           static_cast<unsigned long long>(C("server.shed_queue_deadline")),
           static_cast<unsigned long long>(
               C("server.shed_admission_deadline")),
           static_cast<unsigned long long>(C("server.shed_draining")));
    printf("  lifecycle: %llu drains, %llu reloads (%llu failed), "
           "%llu restarts, %llu connections\n",
           static_cast<unsigned long long>(C("server.drains")),
           static_cast<unsigned long long>(C("server.reloads")),
           static_cast<unsigned long long>(C("server.reload_failures")),
           static_cast<unsigned long long>(C("server.restarts")),
           static_cast<unsigned long long>(C("server.connections")));
    for (const char *Name :
         {"server.queue_depth", "server.queue_wait_ms", "server.request_ms"}) {
      auto It = StatHists.find(Name);
      if (It == StatHists.end() || !It->second.Count)
        continue;
      const char *Unit = strstr(Name, "_ms") ? "ms" : "";
      printf("  %-20s %s\n", Name + strlen("server."),
             It->second.render(Unit).c_str());
    }
  }

  for (const auto &[FreshPath, BasePath] : BenchChecks) {
    BenchMetrics Fresh, Base;
    if (!Fresh.load(FreshPath) || !Base.load(BasePath))
      return 1;
    if (!checkBench(Fresh, Base, ThresholdPct, TimeThresholdPct, Noisy))
      Ok = false;
  }

  return Ok ? 0 : 1;
}
