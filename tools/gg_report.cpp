//===- gg_report.cpp - merge telemetry artifacts into one report --------------===//
//
// Offline companion to the `--coverage-json=` / `--stats-json=` driver
// surfaces: merges artifacts from many runs and reports how much of the
// table-driven machinery real input actually exercises.
//
//   gg-report [ARTIFACT.json ...] [--top=N] [--json=FILE]
//             [--fail-on-dead-bridge] [--fail-on-zero-dyn]
//             [--check-bench=FRESH:BASELINE] [--threshold=PCT]
//             [--time-threshold=PCT]
//
// Artifacts are dispatched on their "schema" field:
//
//   gg-coverage-v1  merged (fingerprint/shape-checked) into one artifact;
//                   the report lists table utilization, hot and dead
//                   productions, never-visited states, dynamic-tie points
//                   and instruction-table row usage. When the artifact
//                   fingerprint matches a freshly built VAX target, ids
//                   are rendered with grammar names.
//   gg-stats-v1     per-phase *_seconds values are summed into a time
//                   breakdown across all stats artifacts.
//   gg-bench-v1     via --check-bench only (see below).
//
// --json=FILE writes the merged coverage artifact (itself gg-coverage-v1,
// so reports can be merged hierarchically). --fail-on-dead-bridge exits
// nonzero when a bridge-production family (section 6.2.2; width replicas
// grouped) has zero reductions; --fail-on-zero-dyn when no dynamic-tie
// event was recorded. Both back the check.sh coverage gate.
//
// --check-bench=FRESH:BASELINE compares two gg-bench-v1 metric files: any
// count metric deviating from the baseline by more than --threshold
// percent (default 0.5) fails, as does a metric missing from FRESH.
// Metrics with "seconds" in the name are wall-clock and skipped unless
// --time-threshold=PCT opts them in. This is the benchmark regression
// sentinel: scripts/bench.sh writes the files, check.sh runs the compare
// against the baselines committed at the repo root.
//
//===----------------------------------------------------------------------===//

#include "mdl/Grammar.h"
#include "support/Coverage.h"
#include "support/Json.h"
#include "support/Strings.h"
#include "vax/VaxTarget.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace gg;

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In) {
    fprintf(stderr, "gg-report: cannot open %s\n", Path.c_str());
    return false;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

double pct(uint64_t Part, uint64_t Whole) {
  return Whole ? 100.0 * double(Part) / double(Whole) : 0.0;
}

/// Strips the type-replicator's width suffix so bridgedx1_b/_w/_l report
/// as one family: a family is dead only if no width of it ever fired.
std::string familyOf(const std::string &SemTag) {
  size_t N = SemTag.size();
  if (N > 2 && SemTag[N - 2] == '_' &&
      (SemTag[N - 1] == 'b' || SemTag[N - 1] == 'w' || SemTag[N - 1] == 'l'))
    return SemTag.substr(0, N - 2);
  return SemTag;
}

/// The coverage half of the report. Names come from \p Target when its
/// fingerprint matches the artifact; otherwise ids are printed raw.
struct CoverageReport {
  CoverageSnapshot Cov;
  const VaxTarget *Target = nullptr; ///< null = names unavailable

  std::string prodName(int Id) const {
    if (Target && Id >= 0 &&
        static_cast<size_t>(Id) < Target->grammar().numProductions())
      return renderProduction(Target->grammar(), Target->grammar().prod(Id));
    return strf("P%d", Id);
  }

  std::string stateName(int S) const {
    if (Target && S >= 0 &&
        static_cast<size_t>(S) < Target->build().StateAccessSym.size()) {
      SymId Sym = Target->build().StateAccessSym[S];
      return strf("s%d(%s)", S,
                  Sym < 0 ? "start" : Target->grammar().symbolName(Sym).c_str());
    }
    return strf("s%d", S);
  }

  std::string termName(int TermIdx) const {
    if (Target) {
      const Grammar &G = Target->grammar();
      for (SymId S = 0; S < static_cast<SymId>(G.numSymbols()); ++S)
        if (G.isTerminal(S) && G.termIndex(S) == TermIdx)
          return G.symbolName(S);
    }
    return strf("t%d", TermIdx);
  }

  uint64_t hits(const std::map<int, uint64_t> &M, int Id) const {
    auto It = M.find(Id);
    return It == M.end() ? 0 : It->second;
  }

  /// Prints the report; returns false when an enabled gate fires.
  bool print(int Top, bool FailDeadBridge, bool FailZeroDyn) const;
};

bool CoverageReport::print(int Top, bool FailDeadBridge,
                           bool FailZeroDyn) const {
  printf("== coverage (%llu compiles, fingerprint %s%s)\n",
         static_cast<unsigned long long>(Cov.Compiles),
         Cov.Fingerprint.c_str(),
         Target ? "" : ", no matching target: raw ids");

  uint64_t DynHitsTotal = 0;
  for (const auto &[Key, D] : Cov.Dyn)
    DynHitsTotal += D.Hits;
  printf("  productions reduced   %4zu / %-4llu (%.1f%%)\n",
         Cov.ProdHits.size(), static_cast<unsigned long long>(Cov.NumProds),
         pct(Cov.ProdHits.size(), Cov.NumProds));
  printf("  states visited        %4zu / %-4llu (%.1f%%)\n",
         Cov.StateHits.size(), static_cast<unsigned long long>(Cov.NumStates),
         pct(Cov.StateHits.size(), Cov.NumStates));
  printf("  dyn-tie points fired  %4zu / %-4llu (%.1f%%, %llu events)\n",
         Cov.Dyn.size(), static_cast<unsigned long long>(Cov.NumDynPoints),
         pct(Cov.Dyn.size(), Cov.NumDynPoints),
         static_cast<unsigned long long>(DynHitsTotal));
  printf("  instr-table rows used %4zu / %-4llu (%.1f%%)\n",
         Cov.RowHits.size(), static_cast<unsigned long long>(Cov.NumRows),
         pct(Cov.RowHits.size(), Cov.NumRows));

  // Hot productions, by reductions.
  std::vector<std::pair<uint64_t, int>> Hot;
  for (const auto &[Id, N] : Cov.ProdHits)
    Hot.push_back({N, Id});
  std::sort(Hot.begin(), Hot.end(), [](const auto &A, const auto &B) {
    return A.first != B.first ? A.first > B.first : A.second < B.second;
  });
  printf("\n  hot productions (top %d of %zu):\n", Top, Hot.size());
  for (size_t I = 0; I < Hot.size() && I < static_cast<size_t>(Top); ++I)
    printf("    %10llu  %s\n", static_cast<unsigned long long>(Hot[I].first),
           prodName(Hot[I].second).c_str());

  // Dead productions. With names available, bridges are tracked per
  // family; everything else is listed (capped) so the report stays
  // readable on sparse single-run artifacts.
  std::vector<int> Dead;
  for (uint64_t Id = 0; Id < Cov.NumProds; ++Id)
    if (!hits(Cov.ProdHits, static_cast<int>(Id)))
      Dead.push_back(static_cast<int>(Id));
  printf("\n  dead productions: %zu\n", Dead.size());
  size_t Shown = 0;
  for (int Id : Dead) {
    if (Shown++ >= static_cast<size_t>(Top)) {
      printf("    ... %zu more\n", Dead.size() - Shown + 1);
      break;
    }
    printf("    %s\n", prodName(Id).c_str());
  }

  bool Ok = true;
  if (Target) {
    // Bridge families (section 6.2.2): MiniC can only reach the byte
    // widths, so a family counts as covered when any width replica fired.
    std::map<std::string, uint64_t> Families;
    for (const Production &P : Target->grammar().productions())
      if (P.IsBridge)
        Families[familyOf(P.SemTag)] += hits(Cov.ProdHits, P.Id);
    printf("\n  bridge families:\n");
    for (const auto &[Name, N] : Families) {
      printf("    %-12s %10llu%s\n", Name.c_str(),
             static_cast<unsigned long long>(N), N ? "" : "  DEAD");
      if (!N && FailDeadBridge) {
        fprintf(stderr, "gg-report: bridge family %s has zero reductions\n",
                Name.c_str());
        Ok = false;
      }
    }
  } else if (FailDeadBridge) {
    fprintf(stderr, "gg-report: --fail-on-dead-bridge needs a matching "
                    "target to identify bridge productions\n");
    Ok = false;
  }

  if (FailZeroDyn && DynHitsTotal == 0) {
    fprintf(stderr, "gg-report: no dynamic-tie events recorded\n");
    Ok = false;
  }

  // Never-visited states: a sample labeled by accessing symbol.
  std::vector<int> Unvisited;
  for (uint64_t S = 0; S < Cov.NumStates; ++S)
    if (!hits(Cov.StateHits, static_cast<int>(S)))
      Unvisited.push_back(static_cast<int>(S));
  printf("\n  never-visited states: %zu", Unvisited.size());
  for (size_t I = 0; I < Unvisited.size() && I < 8; ++I)
    printf("%s%s", I ? " " : "  e.g. ", stateName(Unvisited[I]).c_str());
  printf("\n");

  // Dynamic-tie points with their choice distribution.
  std::vector<std::pair<uint64_t, std::pair<int, int>>> DynHot;
  for (const auto &[Key, D] : Cov.Dyn)
    DynHot.push_back({D.Hits, Key});
  std::sort(DynHot.begin(), DynHot.end(),
            [](const auto &A, const auto &B) { return A.first > B.first; });
  printf("\n  dynamic-tie points (top %d of %zu):\n", Top, DynHot.size());
  for (size_t I = 0; I < DynHot.size() && I < static_cast<size_t>(Top); ++I) {
    const auto &[State, Term] = DynHot[I].second;
    const DynPointHits &D = Cov.Dyn.at(DynHot[I].second);
    printf("    %10llu  %s on %s ->",
           static_cast<unsigned long long>(D.Hits), stateName(State).c_str(),
           termName(Term).c_str());
    for (const auto &[Prod, N] : D.Chosen)
      printf(" %s x%llu", prodName(Prod).c_str(),
             static_cast<unsigned long long>(N));
    printf("\n");
  }

  printf("\n  instruction-table rows:\n");
  for (const auto &[Name, N] : Cov.RowHits)
    printf("    %-8s %10llu\n", Name.c_str(),
           static_cast<unsigned long long>(N));
  return Ok;
}

/// One gg-bench-v1 file: {"schema":...,"bench":NAME,"metrics":{k:v}}.
struct BenchMetrics {
  std::string Bench;
  std::map<std::string, double> Metrics;

  bool load(const std::string &Path) {
    std::string Text, Err;
    JsonValue V;
    if (!readFile(Path, Text))
      return false;
    if (!parseJson(Text, V, Err)) {
      fprintf(stderr, "gg-report: %s: %s\n", Path.c_str(), Err.c_str());
      return false;
    }
    const JsonValue *Schema = V.find("schema");
    if (!Schema || Schema->Str != "gg-bench-v1") {
      fprintf(stderr, "gg-report: %s is not a gg-bench-v1 file\n",
              Path.c_str());
      return false;
    }
    if (const JsonValue *B = V.find("bench"))
      Bench = B->Str;
    const JsonValue *M = V.find("metrics");
    if (!M || M->K != JsonValue::Kind::Object) {
      fprintf(stderr, "gg-report: %s has no metrics object\n", Path.c_str());
      return false;
    }
    for (const auto &[K, Val] : M->Obj)
      Metrics[K] = Val.Num;
    return true;
  }
};

/// The sentinel compare: every baseline metric must exist in the fresh
/// run and stay within the allowed relative deviation. Count metrics are
/// deterministic, so the default threshold is tight; time metrics are
/// noisy and only checked when --time-threshold opts them in.
bool checkBench(const BenchMetrics &Fresh, const BenchMetrics &Baseline,
                double ThresholdPct, double TimeThresholdPct) {
  bool Ok = true;
  int Checked = 0, Skipped = 0;
  for (const auto &[Name, Base] : Baseline.Metrics) {
    bool IsTime = Name.find("seconds") != std::string::npos;
    double Allowed = IsTime ? TimeThresholdPct : ThresholdPct;
    if (Allowed < 0) {
      ++Skipped;
      continue;
    }
    auto It = Fresh.Metrics.find(Name);
    if (It == Fresh.Metrics.end()) {
      fprintf(stderr, "  MISSING %s (baseline %.6g)\n", Name.c_str(), Base);
      Ok = false;
      continue;
    }
    ++Checked;
    double Denom = std::max(std::fabs(Base), 1e-9);
    double DeltaPct = 100.0 * std::fabs(It->second - Base) / Denom;
    if (DeltaPct > Allowed) {
      fprintf(stderr, "  REGRESSION %s: %.6g -> %.6g (%+.2f%%, allowed %.2f%%)\n",
              Name.c_str(), Base, It->second,
              100.0 * (It->second - Base) / Denom, Allowed);
      Ok = false;
    }
  }
  for (const auto &[Name, Val] : Fresh.Metrics)
    if (!Baseline.Metrics.count(Name))
      printf("  note: new metric %s = %.6g (not in baseline)\n", Name.c_str(),
             Val);
  printf("== bench %s: %d metrics checked, %d skipped: %s\n",
         Baseline.Bench.c_str(), Checked, Skipped, Ok ? "OK" : "REGRESSED");
  return Ok;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Artifacts;
  std::vector<std::pair<std::string, std::string>> BenchChecks;
  std::string MergedJsonPath;
  int Top = 10;
  bool FailDeadBridge = false, FailZeroDyn = false;
  double ThresholdPct = 0.5, TimeThresholdPct = -1;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A.rfind("--top=", 0) == 0)
      Top = atoi(A.c_str() + 6);
    else if (A.rfind("--json=", 0) == 0)
      MergedJsonPath = A.substr(7);
    else if (A == "--fail-on-dead-bridge")
      FailDeadBridge = true;
    else if (A == "--fail-on-zero-dyn")
      FailZeroDyn = true;
    else if (A.rfind("--threshold=", 0) == 0)
      ThresholdPct = atof(A.c_str() + 12);
    else if (A.rfind("--time-threshold=", 0) == 0)
      TimeThresholdPct = atof(A.c_str() + 17);
    else if (A.rfind("--check-bench=", 0) == 0) {
      std::string Pair = A.substr(14);
      size_t Colon = Pair.find(':');
      if (Colon == std::string::npos) {
        fprintf(stderr, "gg-report: --check-bench wants FRESH:BASELINE\n");
        return 2;
      }
      BenchChecks.push_back({Pair.substr(0, Colon), Pair.substr(Colon + 1)});
    } else if (A[0] == '-') {
      fprintf(stderr,
              "usage: gg-report [ARTIFACT.json ...] [--top=N] [--json=FILE] "
              "[--fail-on-dead-bridge] [--fail-on-zero-dyn] "
              "[--check-bench=FRESH:BASELINE] [--threshold=PCT] "
              "[--time-threshold=PCT]\n");
      return 2;
    } else
      Artifacts.push_back(A);
  }

  bool Ok = true;

  // Merge the coverage artifacts and sum phase times from stats artifacts.
  CoverageSnapshot Merged;
  bool HaveCov = false;
  std::map<std::string, double> PhaseSeconds;
  int StatsFiles = 0;
  for (const std::string &Path : Artifacts) {
    std::string Text, Err;
    JsonValue V;
    if (!readFile(Path, Text) || !parseJson(Text, V, Err)) {
      if (!Err.empty())
        fprintf(stderr, "gg-report: %s: %s\n", Path.c_str(), Err.c_str());
      return 1;
    }
    const JsonValue *Schema = V.find("schema");
    std::string Kind = Schema ? Schema->Str : "";
    if (Kind == "gg-coverage-v1") {
      CoverageSnapshot S;
      if (!S.parse(V, Err) || (HaveCov && !Merged.merge(S, Err))) {
        fprintf(stderr, "gg-report: %s: %s\n", Path.c_str(), Err.c_str());
        return 1;
      }
      if (!HaveCov)
        Merged = std::move(S);
      HaveCov = true;
    } else if (Kind == "gg-stats-v1") {
      ++StatsFiles;
      if (const JsonValue *Vals = V.find("values"))
        for (const auto &[Name, Val] : Vals->Obj)
          if (Name.find("seconds") != std::string::npos)
            PhaseSeconds[Name] += Val.Num;
    } else {
      fprintf(stderr, "gg-report: %s: unrecognized schema \"%s\"\n",
              Path.c_str(), Kind.c_str());
      return 1;
    }
  }

  if (HaveCov) {
    CoverageReport Report;
    Report.Cov = std::move(Merged);
    // Rebuild the target to name ids — only trusted when the artifact was
    // produced by a grammar/tables identical to what we just built.
    std::string Err;
    std::unique_ptr<VaxTarget> Target = VaxTarget::create(Err);
    if (Target &&
        VaxTarget::fingerprint(Target->grammar(), Target->packed()) ==
            Report.Cov.Fingerprint)
      Report.Target = Target.get();
    if (!Report.print(Top, FailDeadBridge, FailZeroDyn))
      Ok = false;
    if (!MergedJsonPath.empty()) {
      std::ofstream Out(MergedJsonPath);
      if (!Out) {
        fprintf(stderr, "gg-report: cannot write %s\n",
                MergedJsonPath.c_str());
        return 1;
      }
      Out << Report.Cov.toJson() << "\n";
    }
  } else if (FailDeadBridge || FailZeroDyn || !MergedJsonPath.empty()) {
    fprintf(stderr, "gg-report: no gg-coverage-v1 artifacts given\n");
    return 1;
  }

  if (StatsFiles) {
    double Total = 0;
    for (const auto &[Name, S] : PhaseSeconds)
      Total += S;
    printf("\n== phase times (%d stats artifacts)\n", StatsFiles);
    for (const auto &[Name, S] : PhaseSeconds)
      printf("  %-36s %10.4fs (%.1f%%)\n", Name.c_str(), S,
             Total > 0 ? 100.0 * S / Total : 0.0);
  }

  for (const auto &[FreshPath, BasePath] : BenchChecks) {
    BenchMetrics Fresh, Base;
    if (!Fresh.load(FreshPath) || !Base.load(BasePath))
      return 1;
    if (!checkBench(Fresh, Base, ThresholdPct, TimeThresholdPct))
      Ok = false;
  }

  return Ok ? 0 : 1;
}
