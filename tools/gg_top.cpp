//===- gg_top.cpp - live compile-server introspection ------------------------===//
//
// In-band `top` for a running `compile_minic --serve=SOCKET` daemon
// (docs/server.md): sends a Status frame, receives the gg-status-v1
// snapshot (docs/observability.md) in the StatusReply, and renders it.
//
//   gg-top --socket=PATH [--once] [--json] [--interval-ms=N] [--count=N]
//
// Default is a TUI-style loop: one rendered screen per interval (2s),
// cleared between refreshes, until interrupted. --once takes a single
// snapshot and exits; --json prints the raw snapshot JSON instead of the
// rendered view (implies one snapshot per line, so `gg-top --json` is a
// machine-pollable stream and `gg-top --once --json` is the scripting
// form check.sh uses). --count=N exits after N snapshots.
//
// Everything arrives over the same Unix socket the compile traffic uses —
// no side channel, so what gg-top sees is exactly what a client behind
// the same queue would see. The Status probe itself is answered from the
// server's input pump without occupying a pool worker, which is what
// makes it usable against a saturated server.
//
// Exit codes follow support/ExitCodes.h: 0 after the requested snapshots,
// 1 when the server cannot be reached, stops answering, or a reply does
// not parse.
//
//===----------------------------------------------------------------------===//

#include "support/ExitCodes.h"
#include "support/Frame.h"
#include "support/Json.h"
#include "support/Strings.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <optional>
#include <poll.h>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace gg;

namespace {

constexpr uint64_t NsPerMs = 1000 * 1000;

struct TopOptions {
  std::string Socket;
  bool Once = false;
  bool Json = false;
  int IntervalMs = 2000;
  int Count = 0; ///< 0 = until interrupted
  int TimeoutMs = 5000;
};

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Same bounded connect-with-backoff the load driver uses, but shorter:
/// an interactive probe of a dead server should say so quickly.
int connectWithRetry(const std::string &Path) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return -1;
  strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  int DelayMs = 20;
  for (int Try = 0; Try < 8; ++Try) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) == 0)
      return Fd;
    ::close(Fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
    DelayMs = std::min(DelayMs * 2, 500);
  }
  return -1;
}

bool writeAll(int Fd, const char *P, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::write(Fd, P, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

/// One polling connection. Reconnects across server restarts so a TUI
/// left running through a supervisor restart picks the new process up.
class Probe {
public:
  explicit Probe(std::string Socket) : Socket(std::move(Socket)) {}
  ~Probe() {
    if (Fd >= 0)
      ::close(Fd);
  }

  /// Sends one Status probe and blocks for the matching StatusReply.
  /// Returns the snapshot JSON, or nullopt on timeout/loss/garbage.
  std::optional<std::string> snapshot(int TimeoutMs) {
    if (Fd < 0) {
      Fd = connectWithRetry(Socket);
      Reader = FrameReader();
      if (Fd < 0)
        return std::nullopt;
    }
    StatusMsg SM;
    SM.Id = ++ProbeId;
    std::string Wire;
    appendFrame(Wire, FrameType::Status, encodeStatus(SM));
    if (!writeAll(Fd, Wire.data(), Wire.size())) {
      drop();
      return std::nullopt;
    }
    const uint64_t Deadline =
        nowNs() + static_cast<uint64_t>(TimeoutMs) * NsPerMs;
    char Chunk[65536];
    Frame F;
    while (true) {
      FrameReader::Status S = Reader.next(F);
      if (S == FrameReader::Status::Corrupt)
        continue; // reader already resynced
      if (S == FrameReader::Status::Frame) {
        if (F.Type != FrameType::StatusReply)
          continue; // a shared connection could carry other traffic
        StatusReplyMsg RM;
        std::string Err;
        if (!decodeStatusReply(F.Payload, RM, Err)) {
          fprintf(stderr, "gg-top: bad StatusReply: %s\n", Err.c_str());
          drop();
          return std::nullopt;
        }
        if (RM.Id != SM.Id)
          continue; // stale reply from an earlier timed-out probe
        return RM.Text;
      }
      uint64_t Now = nowNs();
      if (Now >= Deadline)
        return std::nullopt;
      pollfd P{};
      P.fd = Fd;
      P.events = POLLIN;
      int R = ::poll(&P, 1,
                     static_cast<int>((Deadline - Now) / NsPerMs + 1));
      if (R < 0) {
        if (errno == EINTR)
          continue;
        drop();
        return std::nullopt;
      }
      if (R == 0)
        continue; // re-check the deadline at the top
      ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0) {
        drop();
        return std::nullopt;
      }
      Reader.feed(Chunk, static_cast<size_t>(N));
    }
  }

private:
  void drop() {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
  }

  std::string Socket;
  int Fd = -1;
  uint64_t ProbeId = 0;
  FrameReader Reader;
};

/// Renders one gg-status-v1 snapshot as a one-screen summary. Unknown or
/// missing fields render as zero/empty — an older gg-top pointed at a
/// newer server keeps working (the schema promise in Frame.h).
bool render(const std::string &Text) {
  JsonValue V;
  std::string Err;
  if (!parseJson(Text, V, Err)) {
    fprintf(stderr, "gg-top: snapshot does not parse: %s\n", Err.c_str());
    return false;
  }
  const JsonValue *Schema = V.find("schema");
  if (!Schema || Schema->Str != "gg-status-v1") {
    fprintf(stderr, "gg-top: unexpected snapshot schema \"%s\"\n",
            Schema ? Schema->Str.c_str() : "");
    return false;
  }
  auto Num = [&](const char *Key) { return V.numberOr(Key); };
  double UpMs = Num("uptime_ms");
  std::string Gen, Fp;
  if (const JsonValue *G = V.find("generation"))
    Gen = strf("%llu", static_cast<unsigned long long>(G->Num));
  if (const JsonValue *F = V.find("fingerprint"))
    Fp = F->Str;

  printf("gg-top  up %.1fs  workers %d  gen %s  %s%s%s\n",
         UpMs / 1000.0, static_cast<int>(Num("workers")),
         Gen.empty() ? "?" : Gen.c_str(), Fp.c_str(),
         Num("draining") ? "  DRAINING" : "",
         Num("reloading") ? "  RELOADING" : "");
  printf("  queue %d  executing %d\n", static_cast<int>(Num("queue_depth")),
         static_cast<int>(Num("executing")));

  if (const JsonValue *W = V.find("window")) {
    printf("  last %.0fs: %d requests (%d ok)  %.1f req/s  "
           "goodput %.1f req/s\n",
           Num("window_ms") / 1000.0, static_cast<int>(W->numberOr("requests")),
           static_cast<int>(W->numberOr("ok")), W->numberOr("rps"),
           W->numberOr("goodput_rps"));
    printf("  latency p50 %.1fms  p90 %.1fms  p99 %.1fms\n",
           W->numberOr("p50_ms"), W->numberOr("p90_ms"), W->numberOr("p99_ms"));
  }

  if (const JsonValue *C = V.find("counters")) {
    printf("  lifetime:");
    int Shown = 0;
    for (const char *Key : {"requests", "ok", "overloaded", "watchdog_kills",
                            "reloads", "drains", "protocol_errors"}) {
      const JsonValue *N = C->find(Key);
      if (!N)
        continue;
      printf("%s %s %llu", Shown++ ? " " : " ", Key,
             static_cast<unsigned long long>(N->Num));
    }
    printf("\n");
  }

  if (const JsonValue *IF = V.find("in_flight")) {
    printf("  in-flight (%zu):\n", IF->Arr.size());
    for (const JsonValue &E : IF->Arr) {
      const JsonValue *Ph = E.find("phase");
      printf("    req %-20llu %8.1fms  %s\n",
             static_cast<unsigned long long>(E.numberOr("id")),
             E.numberOr("age_ms"), Ph ? Ph->Str.c_str() : "?");
    }
  }
  return true;
}

void usage() {
  fprintf(stderr, "usage: gg-top --socket=PATH [--once] [--json] "
                  "[--interval-ms=N] [--count=N] [--timeout-ms=N]\n");
}

} // namespace

int main(int argc, char **argv) {
  ::signal(SIGPIPE, SIG_IGN);
  TopOptions Opt;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A.rfind("--socket=", 0) == 0)
      Opt.Socket = A.substr(9);
    else if (A == "--once")
      Opt.Once = true;
    else if (A == "--json")
      Opt.Json = true;
    else if (A.rfind("--interval-ms=", 0) == 0 ||
             A.rfind("--count=", 0) == 0 || A.rfind("--timeout-ms=", 0) == 0) {
      size_t Eq = A.find('=');
      std::optional<int64_t> N = parseInt(std::string_view(A).substr(Eq + 1));
      if (!N || *N < 1 || *N > 86400000) {
        fprintf(stderr, "gg-top: bad value in %s\n", A.c_str());
        return ExitUsage;
      }
      if (A[2] == 'i')
        Opt.IntervalMs = static_cast<int>(*N);
      else if (A[2] == 'c')
        Opt.Count = static_cast<int>(*N);
      else
        Opt.TimeoutMs = static_cast<int>(*N);
    } else if (A == "--help" || A == "-h") {
      usage();
      return ExitOk;
    } else {
      fprintf(stderr, "gg-top: unknown option %s\n", A.c_str());
      usage();
      return ExitUsage;
    }
  }
  if (Opt.Socket.empty()) {
    usage();
    return ExitUsage;
  }

  Probe Conn(Opt.Socket);
  int Taken = 0;
  const int Want = Opt.Once ? 1 : Opt.Count;
  while (true) {
    std::optional<std::string> Snap = Conn.snapshot(Opt.TimeoutMs);
    if (!Snap) {
      fprintf(stderr, "gg-top: no status reply from %s\n", Opt.Socket.c_str());
      return ExitCompileFailure;
    }
    if (Opt.Json) {
      // One snapshot per line: a pollable NDJSON stream. The server
      // emits the object on one line already, but normalize anyway.
      std::string Line = *Snap;
      Line.erase(std::remove(Line.begin(), Line.end(), '\n'), Line.end());
      printf("%s\n", Line.c_str());
      fflush(stdout);
    } else {
      if (!Opt.Once)
        printf("\033[H\033[2J"); // clear: one screen per refresh
      if (!render(*Snap))
        return ExitCompileFailure;
      fflush(stdout);
    }
    if (Want > 0 && ++Taken >= Want)
      return ExitOk;
    std::this_thread::sleep_for(std::chrono::milliseconds(Opt.IntervalMs));
  }
}
