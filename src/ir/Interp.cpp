//===- Interp.cpp - reference IR interpreter ------------------------------===//

#include "ir/Fold.h"
#include "ir/Interp.h"
#include "support/Error.h"
#include "support/Strings.h"

#include <unordered_map>
#include <vector>

using namespace gg;

int64_t gg::vaxAshl32(int64_t Count, int64_t Src) {
  int8_t C = static_cast<int8_t>(Count);
  int32_t V = static_cast<int32_t>(Src);
  if (C >= 32)
    return 0;
  if (C <= -32)
    return V < 0 ? -1 : 0;
  if (C >= 0)
    return static_cast<int32_t>(static_cast<uint32_t>(V) << C);
  return V >> -C;
}

int64_t gg::vaxLshr32(int64_t Count, int64_t Src) {
  if (Count < 0 || Count > 31)
    return 0;
  return static_cast<uint32_t>(Src) >> Count;
}

namespace {

constexpr size_t MemBytes = 1u << 20;
constexpr int64_t GlobalBase = 0x1000;

/// A resolved lvalue: a register or a memory cell of a given type.
struct LocRef {
  bool IsReg = false;
  int Reg = 0;
  int64_t Addr = 0;
  Ty Type = Ty::L;
};

class InterpState {
public:
  InterpState(const Program &P, uint64_t StepLimit)
      : P(P), StepLimit(StepLimit), Mem(MemBytes, 0) {
    layoutGlobals();
    for (const Function &F : P.Functions)
      FuncByName.emplace(F.Name.id(), &F);
  }

  InterpResult run(std::string_view Entry) {
    InterpResult R;
    const Function *F = nullptr;
    for (const Function &Fn : P.Functions)
      if (P.Syms.text(Fn.Name) == Entry)
        F = &Fn;
    if (!F) {
      R.Error = strf("entry function '%s' not found",
                     std::string(Entry).c_str());
      return R;
    }
    Regs[RegSP] = static_cast<int64_t>(MemBytes) - 64;
    int64_t Value = callFunction(F, {});
    R.Ok = Err.empty();
    R.Error = Err;
    R.ReturnValue = Value;
    R.Output = std::move(Output);
    R.Steps = Steps;
    return R;
  }

private:
  const Program &P;
  uint64_t StepLimit;
  uint64_t Steps = 0;
  std::vector<uint8_t> Mem;
  int64_t Regs[NumRegs] = {};
  std::string Output;
  std::string Err;
  std::unordered_map<uint32_t, int64_t> GlobalAddr;
  std::unordered_map<uint32_t, const Function *> FuncByName;

  void fail(const std::string &Message) {
    if (Err.empty())
      Err = Message;
  }
  bool failed() const { return !Err.empty(); }

  void layoutGlobals() {
    int64_t Next = GlobalBase;
    for (const GlobalVar &G : P.Globals) {
      Next = (Next + 3) & ~int64_t(3);
      GlobalAddr[G.Name.id()] = Next;
      int Elem = sizeOfTy(G.ElemTy);
      for (int I = 0; I < G.Count; ++I) {
        int64_t V = I < static_cast<int>(G.Init.size()) ? G.Init[I] : 0;
        store(Next + static_cast<int64_t>(I) * Elem, G.ElemTy, V);
      }
      Next += static_cast<int64_t>(Elem) * G.Count;
    }
  }

  bool checkAddr(int64_t Addr, int Width) {
    if (Addr < 0 || Addr + Width > static_cast<int64_t>(Mem.size())) {
      fail(strf("memory access out of range: addr=%lld width=%d",
                static_cast<long long>(Addr), Width));
      return false;
    }
    return true;
  }

  int64_t load(int64_t Addr, Ty T) {
    int Width = sizeOfTy(T);
    if (!checkAddr(Addr, Width))
      return 0;
    uint64_t Raw = 0;
    for (int I = 0; I < Width; ++I)
      Raw |= static_cast<uint64_t>(Mem[Addr + I]) << (8 * I);
    return truncateToTy(static_cast<int64_t>(Raw), T);
  }

  void store(int64_t Addr, Ty T, int64_t Value) {
    int Width = sizeOfTy(T);
    if (!checkAddr(Addr, Width))
      return;
    uint64_t Raw = static_cast<uint64_t>(Value);
    for (int I = 0; I < Width; ++I)
      Mem[Addr + I] = static_cast<uint8_t>(Raw >> (8 * I));
  }

  int64_t readLoc(const LocRef &Loc) {
    if (Loc.IsReg)
      return truncateToTy(Regs[Loc.Reg], Loc.Type);
    return load(Loc.Addr, Loc.Type);
  }

  void writeLoc(const LocRef &Loc, int64_t Value) {
    if (Loc.IsReg) {
      Regs[Loc.Reg] = truncateToTy(Value, Loc.Type);
      return;
    }
    store(Loc.Addr, Loc.Type, Value);
  }

  /// Resolves an lvalue tree to a location.
  LocRef lvalue(const Node *N) {
    LocRef Loc;
    Loc.Type = N->Type;
    switch (N->Opcode) {
    case Op::Name: {
      auto It = GlobalAddr.find(N->Sym.id());
      if (It == GlobalAddr.end()) {
        fail(strf("undefined global '%s'", P.Syms.text(N->Sym).c_str()));
        return Loc;
      }
      Loc.Addr = It->second;
      return Loc;
    }
    case Op::Dreg:
      Loc.IsReg = true;
      Loc.Reg = N->Reg;
      return Loc;
    case Op::Indir:
      Loc.Addr = eval(N->left());
      return Loc;
    default:
      fail(strf("not an lvalue: %s", opName(N->Opcode)));
      return Loc;
    }
  }

  /// Evaluates an argument chain left to right.
  void evalArgs(const Node *Chain, std::vector<int64_t> &Args) {
    for (const Node *A = Chain; A; A = A->right()) {
      assert(A->is(Op::Arg) && "malformed argument chain");
      Args.push_back(truncateToTy(eval(A->left()), Ty::L));
    }
  }

  int64_t doCall(const Node *N) {
    std::vector<int64_t> Args;
    if (!N->right() && N->Value > 0) {
      // Post-transform call: phase 1a replaced the Arg chain with Push
      // statements; the arguments sit on the stack, first argument on top.
      int64_t SP = Regs[RegSP];
      for (int64_t I = 0; I < N->Value; ++I)
        Args.push_back(load(SP + 4 * I, Ty::L));
      Regs[RegSP] += 4 * N->Value;
    } else {
      evalArgs(N->right(), Args);
    }
    if (failed())
      return 0;
    const Node *Callee = N->left();
    if (!Callee || !Callee->is(Op::Gaddr)) {
      fail("indirect calls are not supported");
      return 0;
    }
    const std::string &Name = P.Syms.text(Callee->Sym);
    if (Name == "print") {
      int64_t V = Args.empty() ? 0 : Args[0];
      Output += strf("%lld\n", static_cast<long long>(V));
      return truncateToTy(V, N->Type);
    }
    if (Name == "printc") {
      Output += static_cast<char>(Args.empty() ? 0 : Args[0]);
      return 0;
    }
    auto It = FuncByName.find(Callee->Sym.id());
    if (It == FuncByName.end()) {
      fail(strf("call to undefined function '%s'", Name.c_str()));
      return 0;
    }
    return truncateToTy(callFunction(It->second, Args), N->Type);
  }

  int64_t callFunction(const Function *F, const std::vector<int64_t> &Args) {
    // Save the callee-saved machine state (register variables and the
    // frame registers), mirroring the calls/ret convention.
    int64_t Saved[NumRegs];
    for (int I = 0; I < NumRegs; ++I)
      Saved[I] = Regs[I];

    int64_t SP = Regs[RegSP];
    for (size_t I = Args.size(); I-- > 0;) {
      SP -= 4;
      store(SP, Ty::L, Args[I]);
    }
    SP -= 4;
    store(SP, Ty::L, static_cast<int64_t>(Args.size()));
    Regs[RegAP] = SP;
    Regs[RegFP] = SP - 8;
    Regs[RegSP] = Regs[RegFP] - F->FrameSize;
    if (Regs[RegSP] < GlobalBase) {
      fail("interpreter stack overflow");
      return 0;
    }

    int64_t Result = execBody(F);

    for (int I = 0; I < NumRegs; ++I)
      Regs[I] = Saved[I];
    return Result;
  }

  int64_t execBody(const Function *F) {
    // Pre-scan label positions.
    std::unordered_map<uint32_t, size_t> LabelIndex;
    for (size_t I = 0, E = F->Body.size(); I != E; ++I)
      if (F->Body[I]->is(Op::LabelDef))
        LabelIndex[F->Body[I]->Sym.id()] = I;

    auto JumpTo = [&](InternedString Sym, size_t &I) {
      auto It = LabelIndex.find(Sym.id());
      if (It == LabelIndex.end()) {
        fail(strf("jump to undefined label '%s'", P.Syms.text(Sym).c_str()));
        return;
      }
      I = It->second;
    };

    size_t I = 0;
    while (I < F->Body.size() && !failed()) {
      if (++Steps > StepLimit) {
        fail("step limit exceeded (infinite loop?)");
        return 0;
      }
      const Node *S = F->Body[I];
      switch (S->Opcode) {
      case Op::LabelDef:
        break;
      case Op::Jump:
        JumpTo(S->left()->Sym, I);
        continue;
      case Op::CBranch: {
        const Node *C = S->left();
        assert(C->is(Op::Cmp) && "CBranch without Cmp");
        int64_t A = truncateToTy(eval(C->left()), C->Type);
        int64_t B = truncateToTy(eval(C->right()), C->Type);
        if (failed())
          return 0;
        if (evalCond(C->CC, A, B, C->Type)) {
          JumpTo(S->right()->Sym, I);
          continue;
        }
        break;
      }
      case Op::Ret:
        return S->left() ? truncateToTy(eval(S->left()), Ty::L) : 0;
      case Op::Push: {
        int64_t V = truncateToTy(eval(S->left()), Ty::L);
        Regs[RegSP] -= 4;
        store(Regs[RegSP], Ty::L, V);
        break;
      }
      case Op::CallStmt: {
        int64_t V = doCall(S->right());
        if (S->left() && !failed()) {
          LocRef Loc = lvalue(S->left());
          writeLoc(Loc, V);
        }
        break;
      }
      default:
        eval(S); // expression statement (typically Assign)
        break;
      }
      ++I;
    }
    return 0; // fell off the end without Ret
  }

  /// Evaluates \p N; the result is truncated to N's type.
  int64_t eval(const Node *N) {
    if (failed() || !N)
      return 0;
    Ty T = N->Type;
    switch (N->Opcode) {
    case Op::Const:
      return truncateToTy(N->Value, T);
    case Op::Gaddr: {
      auto It = GlobalAddr.find(N->Sym.id());
      if (It == GlobalAddr.end()) {
        fail(strf("undefined global '%s'", P.Syms.text(N->Sym).c_str()));
        return 0;
      }
      // Value carries a folded byte offset (phase 1b address folding).
      return It->second + N->Value;
    }
    case Op::Name:
    case Op::Dreg:
      return readLoc(lvalue(N));
    case Op::Indir:
      return load(eval(N->left()), T);
    case Op::Neg:
      return truncateToTy(-eval(N->left()), T);
    case Op::Com:
      return truncateToTy(~eval(N->left()), T);
    case Op::Not:
      return eval(N->left()) == 0 ? 1 : 0;
    case Op::Conv:
      return truncateToTy(eval(N->left()), T);
    case Op::Assign:
    case Op::AssignR: {
      const Node *Dst = N->Opcode == Op::Assign ? N->left() : N->right();
      const Node *Src = N->Opcode == Op::Assign ? N->right() : N->left();
      // Evaluation order matches the generated code: destination address
      // first for the forward form, source first for the reverse form.
      if (N->Opcode == Op::Assign) {
        LocRef Loc = lvalue(Dst);
        int64_t V = truncateToTy(eval(Src), Dst->Type);
        writeLoc(Loc, V);
        return truncateToTy(V, T);
      }
      int64_t V = eval(Src);
      LocRef Loc = lvalue(Dst);
      V = truncateToTy(V, Dst->Type);
      writeLoc(Loc, V);
      return truncateToTy(V, T);
    }
    case Op::Rel: {
      int64_t A = truncateToTy(eval(N->left()), operandTy(N));
      int64_t B = truncateToTy(eval(N->right()), operandTy(N));
      return evalCond(N->CC, A, B, operandTy(N)) ? 1 : 0;
    }
    case Op::AndAnd:
      return eval(N->left()) != 0 && eval(N->right()) != 0 ? 1 : 0;
    case Op::OrOr:
      return eval(N->left()) != 0 || eval(N->right()) != 0 ? 1 : 0;
    case Op::Select: {
      const Node *Arms = N->right();
      assert(Arms->is(Op::Colon) && "Select without Colon");
      return truncateToTy(
          eval(eval(N->left()) != 0 ? Arms->left() : Arms->right()), T);
    }
    case Op::Colon:
      gg_unreachable("Colon evaluated outside Select");
    case Op::PostInc: {
      LocRef Loc = lvalue(N->left());
      int64_t Old = readLoc(Loc);
      writeLoc(Loc, Old + eval(N->right()));
      return truncateToTy(Old, T);
    }
    case Op::PreDec: {
      LocRef Loc = lvalue(N->left());
      int64_t New = readLoc(Loc) - eval(N->right());
      writeLoc(Loc, New);
      return truncateToTy(New, T);
    }
    case Op::Call:
      return doCall(N);
    case Op::Arg:
      gg_unreachable("Arg evaluated outside a call");
    case Op::Cmp:
      gg_unreachable("Cmp evaluated outside CBranch");
    default:
      break;
    }

    // Remaining cases: the plain and reverse binary arithmetic operators,
    // evaluated left to right and folded through the shared semantics.
    int64_t A = truncateToTy(eval(N->left()), T);
    int64_t B = truncateToTy(eval(N->right()), T);
    if (failed())
      return 0;
    if (std::optional<int64_t> V = foldBinaryOp(N->Opcode, T, A, B))
      return *V;
    Op Fwd = isReverseOp(N->Opcode) ? reverseOp(N->Opcode) : N->Opcode;
    if (Fwd == Op::Div || Fwd == Op::Mod)
      fail("division by zero");
    else
      fail(strf("interpreter cannot evaluate operator %s",
                opName(N->Opcode)));
    return 0;
  }

  /// Operand comparison type for Rel: the wider of the children's types,
  /// as recorded by the front end in the node's CC/type fields. We use the
  /// node's own type unless a child is wider.
  Ty operandTy(const Node *N) {
    Ty A = N->left()->Type, B = N->right()->Type;
    return sizeOfTy(A) >= sizeOfTy(B) ? A : B;
  }

};

} // namespace

InterpResult gg::interpret(const Program &P, std::string_view Entry,
                           uint64_t StepLimit) {
  InterpState S(P, StepLimit);
  return S.run(Entry);
}
