//===- Type.cpp - machine data types --------------------------------------===//

#include "ir/Type.h"
#include "support/Error.h"

using namespace gg;

const char *gg::tyName(Ty T) {
  switch (T) {
  case Ty::B:
    return "b";
  case Ty::W:
    return "w";
  case Ty::L:
    return "l";
  case Ty::UB:
    return "ub";
  case Ty::UW:
    return "uw";
  case Ty::UL:
    return "ul";
  }
  return "?";
}

int64_t gg::truncateToTy(int64_t Value, Ty T) {
  switch (T) {
  case Ty::B:
    return static_cast<int8_t>(Value);
  case Ty::W:
    return static_cast<int16_t>(Value);
  case Ty::L:
    return static_cast<int32_t>(Value);
  case Ty::UB:
    return static_cast<uint8_t>(Value);
  case Ty::UW:
    return static_cast<uint16_t>(Value);
  case Ty::UL:
    return static_cast<uint32_t>(Value);
  }
  return Value;
}

Cond gg::swapCond(Cond C) {
  switch (C) {
  case Cond::EQ:
    return Cond::EQ;
  case Cond::NE:
    return Cond::NE;
  case Cond::LT:
    return Cond::GT;
  case Cond::LE:
    return Cond::GE;
  case Cond::GT:
    return Cond::LT;
  case Cond::GE:
    return Cond::LE;
  case Cond::ULT:
    return Cond::UGT;
  case Cond::ULE:
    return Cond::UGE;
  case Cond::UGT:
    return Cond::ULT;
  case Cond::UGE:
    return Cond::ULE;
  }
  gg_unreachable("bad condition");
}

Cond gg::negateCond(Cond C) {
  switch (C) {
  case Cond::EQ:
    return Cond::NE;
  case Cond::NE:
    return Cond::EQ;
  case Cond::LT:
    return Cond::GE;
  case Cond::LE:
    return Cond::GT;
  case Cond::GT:
    return Cond::LE;
  case Cond::GE:
    return Cond::LT;
  case Cond::ULT:
    return Cond::UGE;
  case Cond::ULE:
    return Cond::UGT;
  case Cond::UGT:
    return Cond::ULE;
  case Cond::UGE:
    return Cond::ULT;
  }
  gg_unreachable("bad condition");
}

const char *gg::condName(Cond C) {
  switch (C) {
  case Cond::EQ:
    return "eql";
  case Cond::NE:
    return "neq";
  case Cond::LT:
    return "lss";
  case Cond::LE:
    return "leq";
  case Cond::GT:
    return "gtr";
  case Cond::GE:
    return "geq";
  case Cond::ULT:
    return "lssu";
  case Cond::ULE:
    return "lequ";
  case Cond::UGT:
    return "gtru";
  case Cond::UGE:
    return "gequ";
  }
  gg_unreachable("bad condition");
}

bool gg::evalCond(Cond C, int64_t A, int64_t B, Ty T) {
  uint64_t UA = static_cast<uint64_t>(truncateToTy(A, T));
  uint64_t UB = static_cast<uint64_t>(truncateToTy(B, T));
  // For the unsigned conditions, reinterpret the bit patterns at the
  // operand width; truncateToTy already sign- or zero-extended per T, so
  // re-truncate through the unsigned flavour of the same size class.
  switch (sizeClassOf(T)) {
  case SizeClass::B:
    UA = static_cast<uint8_t>(UA);
    UB = static_cast<uint8_t>(UB);
    break;
  case SizeClass::W:
    UA = static_cast<uint16_t>(UA);
    UB = static_cast<uint16_t>(UB);
    break;
  case SizeClass::L:
    UA = static_cast<uint32_t>(UA);
    UB = static_cast<uint32_t>(UB);
    break;
  }
  int64_t SA = truncateToTy(A, T);
  int64_t SB = truncateToTy(B, T);
  switch (C) {
  case Cond::EQ:
    return SA == SB;
  case Cond::NE:
    return SA != SB;
  case Cond::LT:
    return SA < SB;
  case Cond::LE:
    return SA <= SB;
  case Cond::GT:
    return SA > SB;
  case Cond::GE:
    return SA >= SB;
  case Cond::ULT:
    return UA < UB;
  case Cond::ULE:
    return UA <= UB;
  case Cond::UGT:
    return UA > UB;
  case Cond::UGE:
    return UA >= UB;
  }
  gg_unreachable("bad condition");
}
