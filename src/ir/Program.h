//===- Program.h - IR program containers ------------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Program is the unit handed from the front end to a code generator:
/// global variables plus functions, each function a forest of statement
/// trees (the PCC "forest of expression trees interspersed with
/// target-specific instructions"). The Program owns the node arena and the
/// symbol interner used by every tree in it.
///
//===----------------------------------------------------------------------===//

#ifndef GG_IR_PROGRAM_H
#define GG_IR_PROGRAM_H

#include "ir/Node.h"
#include "support/Interner.h"

#include <memory>
#include <string>
#include <vector>

namespace gg {

/// A global variable definition.
struct GlobalVar {
  InternedString Name;
  Ty ElemTy = Ty::L;
  int Count = 1; ///< number of elements (>1 for arrays)
  std::vector<int64_t> Init; ///< initial element values; zero-filled if short
};

/// One function: metadata plus its statement forest.
struct Function {
  InternedString Name;
  int NumArgs = 0;
  /// Bytes of local-variable frame below fp (positive size; locals live at
  /// negative fp offsets -4, -8, ... -FrameSize).
  int FrameSize = 0;
  /// Register variables used (r6..r11); informs prologue generation.
  std::vector<int> RegVars;
  /// Statement trees in execution order.
  std::vector<Node *> Body;

  /// Allocates a fresh aligned local slot of \p Bytes, growing the frame.
  /// Returns the (negative) fp offset. Used by front end and phase 1.
  int allocLocal(int Bytes) {
    int Aligned = (Bytes + 3) & ~3;
    FrameSize += Aligned;
    return -FrameSize;
  }
};

/// A whole compilation unit.
struct Program {
  Program() : Arena(std::make_unique<NodeArena>()) {}

  Interner Syms;
  std::unique_ptr<NodeArena> Arena;
  std::vector<GlobalVar> Globals;
  std::vector<Function> Functions;

  Function *findFunction(std::string_view Name) {
    for (Function &F : Functions)
      if (Syms.text(F.Name) == Name)
        return &F;
    return nullptr;
  }

  const GlobalVar *findGlobal(InternedString Name) const {
    for (const GlobalVar &G : Globals)
      if (G.Name == Name)
        return &G;
    return nullptr;
  }

  /// Returns a label symbol guaranteed fresh within this program.
  InternedString freshLabel() {
    return Syms.intern("L$" + std::to_string(++LabelCounter));
  }

private:
  unsigned LabelCounter = 0;
};

} // namespace gg

#endif // GG_IR_PROGRAM_H
