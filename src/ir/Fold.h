//===- Fold.h - shared arithmetic semantics ---------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single definition of the binary/unary operator arithmetic, shared by
/// the IR interpreter and the phase-1b constant folder so that folding can
/// never diverge from execution semantics.
///
//===----------------------------------------------------------------------===//

#ifndef GG_IR_FOLD_H
#define GG_IR_FOLD_H

#include "ir/Node.h"

#include <optional>

namespace gg {

/// Computes `A op B` in type \p T with the project's defined semantics
/// (wraparound, VAX shift behaviour). Returns nullopt for division or
/// modulus by zero and for operators without pure arithmetic meaning.
std::optional<int64_t> foldBinaryOp(Op O, Ty T, int64_t A, int64_t B);

/// Computes unary `op A` in type \p T (Neg, Com, Not, Conv-as-truncate).
std::optional<int64_t> foldUnaryOp(Op O, Ty T, int64_t A);

} // namespace gg

#endif // GG_IR_FOLD_H
