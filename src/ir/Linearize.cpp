//===- Linearize.cpp - prefix linearization of trees ----------------------===//

#include "ir/Linearize.h"
#include "support/Error.h"
#include "support/Strings.h"

using namespace gg;

std::string gg::terminalName(const Node *N) {
  assert(N && "terminalName on null node");
  switch (N->Opcode) {
  case Op::Const:
    // The special long constants get their own terminal symbols (§6.4).
    if (sizeClassOf(N->Type) == SizeClass::L) {
      switch (N->Value) {
      case 0:
        return "Zero";
      case 1:
        return "One";
      case 2:
        return "Two";
      case 4:
        return "Four";
      case 8:
        return "Eight";
      default:
        break;
      }
    }
    break;
  case Op::Conv:
    assert(N->left() && "Conv without operand");
    return strf("Cvt_%c_%c", suffixChar(N->left()->Type),
                suffixChar(N->Type));
  case Op::CBranch:
    return "CBranch";
  case Op::Label:
    return "Label";
  default:
    break;
  }
  return strf("%s_%c", opName(N->Opcode), suffixChar(N->Type));
}

namespace {
void linearizeRec(const Node *N, std::vector<LinToken> &Out) {
  if (!N)
    return;
  Out.push_back({terminalName(N), N});
  for (const Node *Kid : N->Kids)
    linearizeRec(Kid, Out);
}
} // namespace

std::vector<LinToken> gg::linearize(const Node *Tree) {
  std::vector<LinToken> Tokens;
  linearizeRec(Tree, Tokens);
  return Tokens;
}
