//===- Node.cpp - expression tree nodes -----------------------------------===//

#include "ir/Node.h"
#include "support/Error.h"
#include "support/FaultInject.h"
#include "support/Strings.h"

using namespace gg;

NodeArena::NodeArena() {
  // The oom-arena fault caps every arena in the process at construction;
  // request budgets can only tighten this further (setLimitBytes).
  int64_t Cap = faultInject().arenaCapBytes();
  if (Cap >= 0)
    MaxBytes = static_cast<size_t>(Cap);
}

void NodeArena::noteExhausted() {
  if (Exhausted)
    return;
  Exhausted = true;
  faultInject().noteArenaExhaustion();
}

namespace {
struct OpInfo {
  const char *Name;
  int Arity;
  unsigned Flags;
};

constexpr OpInfo OpTable[] = {
#define GG_OP(Name, Str, Arity, Flags) {Str, Arity, Flags},
#include "ir/Ops.def"
};
} // namespace

int gg::opArity(Op O) { return OpTable[static_cast<int>(O)].Arity; }
const char *gg::opName(Op O) { return OpTable[static_cast<int>(O)].Name; }
unsigned gg::opFlags(Op O) { return OpTable[static_cast<int>(O)].Flags; }

bool gg::hasReverseForm(Op O) {
  switch (O) {
  case Op::Minus:
  case Op::Div:
  case Op::Mod:
  case Op::Lsh:
  case Op::Rsh:
  case Op::Assign:
    return true;
  default:
    return false;
  }
}

Op gg::reverseOp(Op O) {
  switch (O) {
  case Op::Minus:
    return Op::MinusR;
  case Op::Div:
    return Op::DivR;
  case Op::Mod:
    return Op::ModR;
  case Op::Lsh:
    return Op::LshR;
  case Op::Rsh:
    return Op::RshR;
  case Op::Assign:
    return Op::AssignR;
  case Op::MinusR:
    return Op::Minus;
  case Op::DivR:
    return Op::Div;
  case Op::ModR:
    return Op::Mod;
  case Op::LshR:
    return Op::Lsh;
  case Op::RshR:
    return Op::Rsh;
  case Op::AssignR:
    return Op::Assign;
  default:
    gg_unreachable("operator has no reverse form");
  }
}

const char *gg::regName(int R) {
  static const char *const Names[NumRegs] = {
      "r0", "r1", "r2",  "r3", "r4", "r5", "r6", "r7",
      "r8", "r9", "r10", "r11", "ap", "fp", "sp", "pc"};
  assert(R >= 0 && R < NumRegs && "bad register number");
  return Names[R];
}

int Node::treeSize() const {
  int N = 1;
  for (const Node *Kid : Kids)
    if (Kid)
      N += Kid->treeSize();
  return N;
}

Node *NodeArena::clone(const Node *N) {
  if (!N)
    return nullptr;
  Node *Copy = make(N->Opcode, N->Type);
  Copy->CC = N->CC;
  Copy->Reg = N->Reg;
  Copy->Value = N->Value;
  Copy->Sym = N->Sym;
  Copy->Kids[0] = clone(N->Kids[0]);
  Copy->Kids[1] = clone(N->Kids[1]);
  return Copy;
}

namespace {
void printNodeLabel(const Node *N, const Interner &Syms, std::string &Out) {
  Out += opName(N->Opcode);
  // Statement operators and Label are untyped in dumps; expressions carry
  // their type suffix, matching the paper's Appendix notation.
  if (!isStmtOp(N->Opcode) && N->Opcode != Op::Label) {
    Out += '_';
    Out += tyName(N->Type);
  }
  switch (N->Opcode) {
  case Op::Const:
    Out += strf("(%lld)", static_cast<long long>(N->Value));
    break;
  case Op::Name:
  case Op::Gaddr:
  case Op::Label:
  case Op::LabelDef:
    Out += strf("(%s)", Syms.text(N->Sym).c_str());
    break;
  case Op::Dreg:
    Out += strf("(%s)", regName(N->Reg));
    break;
  case Op::Cmp:
  case Op::Rel:
  case Op::CBranch:
    Out += strf("(%s)", condName(N->CC));
    break;
  default:
    break;
  }
}

void printLinearRec(const Node *N, const Interner &Syms, std::string &Out) {
  if (!N)
    return;
  if (!Out.empty())
    Out += ' ';
  printNodeLabel(N, Syms, Out);
  for (const Node *Kid : N->Kids)
    printLinearRec(Kid, Syms, Out);
}

void printTreeRec(const Node *N, const Interner &Syms, int Depth,
                  std::string &Out) {
  if (!N)
    return;
  Out.append(static_cast<size_t>(Depth) * 2, ' ');
  printNodeLabel(N, Syms, Out);
  Out += '\n';
  for (const Node *Kid : N->Kids)
    printTreeRec(Kid, Syms, Depth + 1, Out);
}
} // namespace

std::string gg::printLinear(const Node *N, const Interner &Syms) {
  std::string Out;
  printLinearRec(N, Syms, Out);
  return Out;
}

std::string gg::printTree(const Node *N, const Interner &Syms) {
  std::string Out;
  printTreeRec(N, Syms, 0, Out);
  return Out;
}

bool gg::treeEquals(const Node *A, const Node *B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  if (A->Opcode != B->Opcode || A->Type != B->Type || A->CC != B->CC ||
      A->Reg != B->Reg || A->Value != B->Value || A->Sym != B->Sym)
    return false;
  return treeEquals(A->Kids[0], B->Kids[0]) &&
         treeEquals(A->Kids[1], B->Kids[1]);
}
