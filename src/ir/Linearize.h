//===- Linearize.h - prefix linearization of trees --------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns an expression tree into the prefix token stream the pattern
/// matcher parses. Each token names a grammar terminal symbol and carries
/// the originating node so leaf shifts can capture semantic attributes.
///
/// Terminal naming conventions (these are the paper's, section 3.1/6.4):
///  * typed operators append a size-class suffix: Plus_l, Const_b, Name_w;
///  * conversions carry both size classes: Cvt_b_l;
///  * the special long constants 0, 1, 2, 4 and 8 become their own
///    terminals Zero, One, Two, Four, Eight ("because of the importance
///    they play in comparisons and address construction");
///  * CBranch and Label are untyped.
///
//===----------------------------------------------------------------------===//

#ifndef GG_IR_LINEARIZE_H
#define GG_IR_LINEARIZE_H

#include "ir/Node.h"

#include <string>
#include <vector>

namespace gg {

/// One token of the matcher's input: a terminal name plus the node whose
/// attributes the semantic actions read.
struct LinToken {
  std::string Term;
  const Node *N = nullptr;
};

/// Grammar terminal name for a single node (no children).
std::string terminalName(const Node *N);

/// Prefix-linearizes \p Tree into matcher input tokens.
std::vector<LinToken> linearize(const Node *Tree);

} // namespace gg

#endif // GG_IR_LINEARIZE_H
