//===- Fold.cpp - shared arithmetic semantics --------------------------------===//

#include "ir/Fold.h"
#include "ir/Interp.h"

using namespace gg;

std::optional<int64_t> gg::foldBinaryOp(Op O, Ty T, int64_t A, int64_t B) {
  A = truncateToTy(A, T);
  B = truncateToTy(B, T);
  if (isReverseOp(O)) {
    std::swap(A, B);
    O = reverseOp(O);
  }
  switch (O) {
  case Op::Plus:
    return truncateToTy(A + B, T);
  case Op::Minus:
    return truncateToTy(A - B, T);
  case Op::Mul:
    // Unsigned multiply: the product must wrap (truncateToTy masks it), but
    // int64 overflow is UB when both operands use the full 32-bit range.
    return truncateToTy(static_cast<int64_t>(static_cast<uint64_t>(A) *
                                             static_cast<uint64_t>(B)),
                        T);
  case Op::Div:
  case Op::Mod: {
    if (B == 0)
      return std::nullopt;
    if (isUnsignedTy(T)) {
      uint64_t UA = static_cast<uint64_t>(A), UB = static_cast<uint64_t>(B);
      return truncateToTy(
          static_cast<int64_t>(O == Op::Div ? UA / UB : UA % UB), T);
    }
    if (A == truncateToTy(INT64_MIN, T) && B == -1)
      return truncateToTy(O == Op::Div ? A : 0, T); // wraps like the VAX
    return truncateToTy(O == Op::Div ? A / B : A % B, T);
  }
  case Op::And:
    return truncateToTy(A & B, T);
  case Op::Or:
    return truncateToTy(A | B, T);
  case Op::Xor:
    return truncateToTy(A ^ B, T);
  case Op::Lsh:
    return truncateToTy(vaxAshl32(B, A), T);
  case Op::Rsh:
    if (isUnsignedTy(T))
      return truncateToTy(vaxLshr32(B, A), T);
    return truncateToTy(vaxAshl32(-B, A), T);
  default:
    return std::nullopt;
  }
}

std::optional<int64_t> gg::foldUnaryOp(Op O, Ty T, int64_t A) {
  switch (O) {
  case Op::Neg:
    return truncateToTy(-truncateToTy(A, T), T);
  case Op::Com:
    return truncateToTy(~truncateToTy(A, T), T);
  case Op::Not:
    return A == 0 ? 1 : 0;
  case Op::Conv:
    return truncateToTy(A, T);
  default:
    return std::nullopt;
  }
}
