//===- Node.h - expression tree nodes ---------------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression-tree nodes in the style of the Portable C Compiler's
/// intermediate representation: a forest of typed binary trees interspersed
/// with statement-level nodes (labels, branches, calls, returns). Nodes are
/// bump-allocated in a NodeArena owned by the enclosing Program.
///
//===----------------------------------------------------------------------===//

#ifndef GG_IR_NODE_H
#define GG_IR_NODE_H

#include "ir/Type.h"
#include "support/Interner.h"

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>

namespace gg {

/// IR operator, one per row of Ops.def (the paper's Figure 1 vocabulary).
enum class Op : uint8_t {
#define GG_OP(Name, Str, Arity, Flags) Name,
#include "ir/Ops.def"
};

enum OpFlags : unsigned {
  OF_Leaf = 1u << 0,        ///< arity 0
  OF_LValue = 1u << 1,      ///< can denote a memory/register cell
  OF_Commutative = 1u << 2, ///< operands may be exchanged freely
  OF_Rewritten = 1u << 3,   ///< eliminated by phase 1a (never reaches matcher)
  OF_Reverse = 1u << 4,     ///< phase-1c reverse form (children swapped)
  OF_Stmt = 1u << 5,        ///< statement-level node
};

/// Number of children (0, 1 or 2) for \p O.
int opArity(Op O);

/// Spelling used in linearized dumps and grammar terminal names.
const char *opName(Op O);

/// Flag word for \p O (see OpFlags).
unsigned opFlags(Op O);

inline bool isLeafOp(Op O) { return opFlags(O) & OF_Leaf; }
inline bool isStmtOp(Op O) { return opFlags(O) & OF_Stmt; }
inline bool isCommutativeOp(Op O) { return opFlags(O) & OF_Commutative; }
inline bool isRewrittenOp(Op O) { return opFlags(O) & OF_Rewritten; }
inline bool isReverseOp(Op O) { return opFlags(O) & OF_Reverse; }

/// For a reverse form (MinusR...), the underlying forward operator; for a
/// forward operator with a reverse form, its reverse. Asserts otherwise.
Op reverseOp(Op O);
bool hasReverseForm(Op O);

/// Well-known VAX register numbers, following the PCC conventions the paper
/// adopts: r0-r5 are allocatable scratch registers, r6-r11 are register
/// variables (dedicated), r12=ap, r13=fp, r14=sp, r15=pc.
enum : int {
  RegR0 = 0,
  RegFirstAlloc = 0,
  RegLastAlloc = 5,
  RegFirstVar = 6,
  RegLastVar = 11,
  RegAP = 12,
  RegFP = 13,
  RegSP = 14,
  RegPC = 15,
  NumRegs = 16,
};

/// Returns the assembler spelling of register \p R ("r0".."r11", "ap", ...).
const char *regName(int R);

/// One node of an expression tree.
///
/// The fields other than the operator are a union in spirit: Value is
/// meaningful for Const, Sym for Name/Gaddr/Label/LabelDef, Reg for Dreg,
/// and CC for Cmp/Rel. Children are owned by the arena, never by the node.
class Node {
public:
  Op Opcode = Op::Const;
  Ty Type = Ty::L;
  Cond CC = Cond::EQ;
  int32_t Reg = -1;
  int64_t Value = 0;
  InternedString Sym;
  Node *Kids[2] = {nullptr, nullptr};

  Node *left() const { return Kids[0]; }
  Node *right() const { return Kids[1]; }

  bool is(Op O) const { return Opcode == O; }
  bool isConst(int64_t V) const { return Opcode == Op::Const && Value == V; }

  /// Number of nodes in this subtree (used by the phase-1c size heuristic).
  int treeSize() const;
};

/// Bump allocator for nodes; pointers remain valid for the arena's lifetime.
///
/// Arenas are byte-budgeted for the request-quarantine layer (and the
/// `oom-arena` fault): exceeding the cap never returns null — allocation
/// always yields a valid node, and a sticky exhausted() flag is set
/// instead. Callers (the frontend between statements, the code generator
/// between trees and phases) poll the flag at coarse granularity and
/// degrade structurally, so the hot construction paths stay free of
/// null-checks. The construction-time default cap comes from the global
/// fault injector; the compile server tightens it per request via
/// setLimitBytes.
class NodeArena {
public:
  NodeArena(); ///< applies the oom-arena fault cap, if configured

  Node *make(Op O, Ty T) {
    Storage.emplace_back();
    Node &N = Storage.back();
    N.Opcode = O;
    N.Type = T;
    if (MaxBytes && Storage.size() * sizeof(Node) > MaxBytes)
      noteExhausted();
    return &N;
  }

  Node *con(Ty T, int64_t V) {
    Node *N = make(Op::Const, T);
    N->Value = truncateToTy(V, T);
    return N;
  }

  Node *name(Ty T, InternedString Sym) {
    Node *N = make(Op::Name, T);
    N->Sym = Sym;
    return N;
  }

  Node *gaddr(InternedString Sym) {
    Node *N = make(Op::Gaddr, Ty::L);
    N->Sym = Sym;
    return N;
  }

  Node *dreg(int Reg, Ty T = Ty::L) {
    Node *N = make(Op::Dreg, T);
    N->Reg = Reg;
    return N;
  }

  Node *label(InternedString Sym) {
    Node *N = make(Op::Label, Ty::L);
    N->Sym = Sym;
    return N;
  }

  Node *labelDef(InternedString Sym) {
    Node *N = make(Op::LabelDef, Ty::L);
    N->Sym = Sym;
    return N;
  }

  Node *unary(Op O, Ty T, Node *Kid) {
    assert(opArity(O) == 1 && "not a unary operator");
    Node *N = make(O, T);
    N->Kids[0] = Kid;
    return N;
  }

  Node *bin(Op O, Ty T, Node *L, Node *R) {
    assert(opArity(O) == 2 && "not a binary operator");
    Node *N = make(O, T);
    N->Kids[0] = L;
    N->Kids[1] = R;
    return N;
  }

  Node *cmp(Cond C, Node *L, Node *R, Ty OperandTy) {
    Node *N = bin(Op::Cmp, OperandTy, L, R);
    N->CC = C;
    return N;
  }

  Node *rel(Cond C, Ty ResultTy, Node *L, Node *R) {
    Node *N = bin(Op::Rel, ResultTy, L, R);
    N->CC = C;
    return N;
  }

  /// Builds the canonical "local variable" shape the paper's appendix uses:
  /// Indir_t(Plus_l(Const_l(offset), Dreg_l(fp))).
  Node *local(Ty T, int64_t FpOffset) {
    Node *Addr =
        bin(Op::Plus, Ty::L, con(Ty::L, FpOffset), dreg(RegFP, Ty::L));
    return unary(Op::Indir, T, Addr);
  }

  /// Argument cell: Indir_t(Plus_l(Const_l(offset), Dreg_l(ap))).
  Node *argCell(Ty T, int64_t ApOffset) {
    Node *Addr =
        bin(Op::Plus, Ty::L, con(Ty::L, ApOffset), dreg(RegAP, Ty::L));
    return unary(Op::Indir, T, Addr);
  }

  /// Deep-copies \p N (and its children) into this arena.
  Node *clone(const Node *N);

  size_t size() const { return Storage.size(); }

  /// Node-storage bytes allocated so far (the budgeted quantity).
  size_t bytes() const { return Storage.size() * sizeof(Node); }

  /// Tightens the byte cap (0 = unlimited). Only ever lowers the
  /// effective limit when a fault cap is already active.
  void setLimitBytes(size_t Bytes) {
    if (Bytes && (!MaxBytes || Bytes < MaxBytes))
      MaxBytes = Bytes;
  }

  /// Sticky: true once any allocation exceeded the cap. The arena stays
  /// usable (allocation never fails); consumers abandon the enclosing
  /// tree/phase when they see the flag.
  bool exhausted() const { return Exhausted; }

private:
  std::deque<Node> Storage;
  size_t MaxBytes = 0;    ///< 0 = unlimited
  bool Exhausted = false; ///< sticky cap-exceeded flag

  void noteExhausted(); ///< sets the flag, counts fault.arena_exhaustions
};

/// Renders \p N in the linearized prefix form used throughout the paper,
/// e.g. "Assign_l Name_l(a) Plus_l Const_b(27) ...".
std::string printLinear(const Node *N, const Interner &Syms);

/// Renders \p N as an indented tree, one node per line.
std::string printTree(const Node *N, const Interner &Syms);

/// Structural equality of two trees (all attributes and children).
bool treeEquals(const Node *A, const Node *B);

} // namespace gg

#endif // GG_IR_NODE_H
