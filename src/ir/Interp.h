//===- Interp.h - reference IR interpreter ----------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct interpreter for IR programs, used as the semantic oracle the
/// validation suites compare against (the paper validated against C /
/// Pascal / Fortran77 suites; we validate differentially: interpreter
/// output vs simulator output of generated code). It executes both
/// pre-phase-1 trees (short-circuit, selection, relational-value operators)
/// and post-transformation trees (reverse operators, explicit branches).
///
//===----------------------------------------------------------------------===//

#ifndef GG_IR_INTERP_H
#define GG_IR_INTERP_H

#include "ir/Program.h"

#include <cstdint>
#include <string>

namespace gg {

/// VAX "ashl" semantics at 32 bits: the count is taken as a signed byte;
/// positive counts shift left, negative counts shift right arithmetically.
/// Out-of-range counts fill with zero (left) or the sign (right).
int64_t vaxAshl32(int64_t Count, int64_t Src);

/// Logical 32-bit right shift with extzv-expansion semantics: counts
/// outside [0,31] yield zero.
int64_t vaxLshr32(int64_t Count, int64_t Src);

/// Outcome of interpreting a program.
struct InterpResult {
  bool Ok = false;
  std::string Error;       ///< diagnostic when !Ok
  int64_t ReturnValue = 0; ///< value returned from the entry function
  std::string Output;      ///< everything written via print/printc/prints
  uint64_t Steps = 0;      ///< statements executed (loop guard metric)
};

/// Interprets \p P starting at \p Entry (default "main").
///
/// \p StepLimit bounds the number of executed statements so that runaway
/// loops in randomly generated programs fail cleanly.
InterpResult interpret(const Program &P, std::string_view Entry = "main",
                       uint64_t StepLimit = 50'000'000);

} // namespace gg

#endif // GG_IR_INTERP_H
