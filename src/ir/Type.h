//===- Type.h - machine data types ------------------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine data types for the VAX integer subset. The paper's code
/// generator types operands *syntactically*: every terminal symbol is
/// replicated per machine type ("syntax for semantics", paper section 6.4).
/// We replicate over size classes (byte / word / long); signedness is a
/// semantic attribute consulted by the instruction selector, mirroring how
/// the paper handles attributes the grammar does not encode.
///
//===----------------------------------------------------------------------===//

#ifndef GG_IR_TYPE_H
#define GG_IR_TYPE_H

#include <cstdint>

namespace gg {

/// A machine data type: size class plus signedness.
enum class Ty : uint8_t {
  B,  ///< signed byte (8 bits)
  W,  ///< signed word (16 bits)
  L,  ///< signed long (32 bits)
  UB, ///< unsigned byte
  UW, ///< unsigned word
  UL, ///< unsigned long
};

/// Size class of a type: the letter the VAX instruction suffix uses.
enum class SizeClass : uint8_t { B, W, L };

inline SizeClass sizeClassOf(Ty T) {
  switch (T) {
  case Ty::B:
  case Ty::UB:
    return SizeClass::B;
  case Ty::W:
  case Ty::UW:
    return SizeClass::W;
  case Ty::L:
  case Ty::UL:
    return SizeClass::L;
  }
  return SizeClass::L;
}

inline bool isUnsignedTy(Ty T) {
  return T == Ty::UB || T == Ty::UW || T == Ty::UL;
}

/// Byte width of a type.
inline int sizeOfTy(Ty T) {
  switch (sizeClassOf(T)) {
  case SizeClass::B:
    return 1;
  case SizeClass::W:
    return 2;
  case SizeClass::L:
    return 4;
  }
  return 4;
}

/// VAX instruction suffix character for a size class ('b', 'w', 'l').
inline char suffixChar(SizeClass SC) {
  switch (SC) {
  case SizeClass::B:
    return 'b';
  case SizeClass::W:
    return 'w';
  case SizeClass::L:
    return 'l';
  }
  return 'l';
}

inline char suffixChar(Ty T) { return suffixChar(sizeClassOf(T)); }

/// Human-readable type name ("b", "w", "l", "ub", "uw", "ul").
const char *tyName(Ty T);

/// Truncates \p Value to the range of \p T (sign- or zero-extending).
int64_t truncateToTy(int64_t Value, Ty T);

/// Signed/unsigned comparison condition codes used by Cmp and Rel nodes.
enum class Cond : uint8_t { EQ, NE, LT, LE, GT, GE, ULT, ULE, UGT, UGE };

/// Condition with operands swapped (a OP b == b swap(OP) a).
Cond swapCond(Cond C);

/// Logical negation of a condition.
Cond negateCond(Cond C);

/// Mnemonic fragment for a condition ("eql", "neq", "lss", ...), matching
/// the VAX branch instruction family.
const char *condName(Cond C);

/// Evaluates \p C over two values already truncated to \p T.
bool evalCond(Cond C, int64_t A, int64_t B, Ty T);

} // namespace gg

#endif // GG_IR_TYPE_H
