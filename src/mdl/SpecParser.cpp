//===- SpecParser.cpp - machine description spec files ---------------------===//

#include "mdl/SpecParser.h"
#include "support/FaultInject.h"
#include "support/Strings.h"

#include <cctype>
#include <set>

using namespace gg;

const char *gg::scaleTerminalFor(char SizeSuffix) {
  switch (SizeSuffix) {
  case 'b':
    return "One";
  case 'w':
    return "Two";
  case 'l':
    return "Four";
  default:
    return nullptr;
  }
}

const TypeClass *MdSpec::findClass(char Letter) const {
  for (const TypeClass &C : Classes)
    if (C.Letter == Letter)
      return &C;
  return nullptr;
}

namespace {

/// Returns the class letter a token depends on, or 0.
/// Tokens of the form "name_C" or "@C" reference class C.
char classLetterOf(const std::string &Token, const MdSpec &Spec) {
  if (Token.size() == 2 && Token[0] == '@' && Spec.findClass(Token[1]))
    return Token[1];
  if (Token.size() >= 3 && Token[Token.size() - 2] == '_' &&
      Spec.findClass(Token.back()))
    return Token.back();
  return 0;
}

/// Substitutes class letter \p Letter with size suffix \p Size in \p Token.
std::string substToken(const std::string &Token, char Letter, char Size) {
  if (Token.size() == 2 && Token[0] == '@' && Token[1] == Letter)
    return scaleTerminalFor(Size);
  if (Token.size() >= 3 && Token[Token.size() - 2] == '_' &&
      Token.back() == Letter) {
    std::string Out = Token;
    Out.back() = Size;
    return Out;
  }
  return Token;
}

} // namespace

bool gg::parseSpec(std::string_view Text, MdSpec &Spec,
                   DiagnosticSink &Diags) {
  int LineNo = 0;
  for (std::string_view Line : splitString(Text, '\n')) {
    ++LineNo;
    // Strip comments ('#' or '--' to end of line).
    size_t Hash = Line.find('#');
    if (Hash != std::string_view::npos)
      Line = Line.substr(0, Hash);
    size_t Dash = Line.find("--");
    if (Dash != std::string_view::npos)
      Line = Line.substr(0, Dash);
    Line = trim(Line);
    if (Line.empty())
      continue;

    std::vector<std::string_view> Tokens = splitWhitespace(Line);

    if (Tokens[0][0] == '%') {
      if (Tokens[0] == "%class") {
        if (Tokens.size() < 3 || Tokens[1].size() != 1 ||
            !isupper(static_cast<unsigned char>(Tokens[1][0]))) {
          Diags.error("%class expects an upper-case letter and size "
                      "suffixes, e.g. '%class Y b w l'",
                      LineNo);
          continue;
        }
        TypeClass C;
        C.Letter = Tokens[1][0];
        bool Bad = false;
        for (size_t I = 2; I < Tokens.size(); ++I) {
          std::string_view S = Tokens[I];
          if (S.size() != 1 || !scaleTerminalFor(S[0])) {
            Diags.error(strf("bad size suffix '%s' in %%class (expected "
                             "b, w or l)",
                             std::string(S).c_str()),
                        LineNo);
            Bad = true;
            break;
          }
          C.Sizes.push_back(S[0]);
        }
        if (!Bad) {
          if (Spec.findClass(C.Letter))
            Diags.error(strf("class '%c' declared twice", C.Letter), LineNo);
          else
            Spec.Classes.push_back(C);
        }
        continue;
      }
      if (Tokens[0] == "%start") {
        if (Tokens.size() != 2) {
          Diags.error("%start expects exactly one symbol", LineNo);
          continue;
        }
        Spec.StartSymbol = std::string(Tokens[1]);
        continue;
      }
      Diags.error(strf("unknown directive '%s'",
                       std::string(Tokens[0]).c_str()),
                  LineNo);
      continue;
    }

    // Production line: lhs <- rhs... [: kind [tag] [bridge]]
    GenericRule Rule;
    Rule.Line = LineNo;
    Rule.Lhs = std::string(Tokens[0]);
    if (Tokens.size() < 3 || Tokens[1] != "<-") {
      Diags.error("expected 'lhs <- rhs...' production syntax", LineNo);
      continue;
    }
    size_t I = 2;
    for (; I < Tokens.size() && Tokens[I] != ":"; ++I)
      Rule.Rhs.push_back(std::string(Tokens[I]));
    if (Rule.Rhs.empty()) {
      Diags.error("production has an empty right-hand side", LineNo);
      continue;
    }
    if (I < Tokens.size()) {
      ++I; // skip ':'
      if (I >= Tokens.size()) {
        Diags.error("expected action kind after ':'", LineNo);
        continue;
      }
      std::string_view KindTok = Tokens[I++];
      if (KindTok == "glue")
        Rule.Kind = ActionKind::Glue;
      else if (KindTok == "encap")
        Rule.Kind = ActionKind::Encap;
      else if (KindTok == "emit")
        Rule.Kind = ActionKind::Emit;
      else {
        Diags.error(strf("unknown action kind '%s' (expected glue, encap "
                         "or emit)",
                         std::string(KindTok).c_str()),
                    LineNo);
        continue;
      }
      for (; I < Tokens.size(); ++I) {
        if (Tokens[I] == "bridge")
          Rule.IsBridge = true;
        else if (Rule.SemTag.empty())
          Rule.SemTag = std::string(Tokens[I]);
        else
          Diags.error(strf("unexpected trailing token '%s'",
                           std::string(Tokens[I]).c_str()),
                      LineNo);
      }
    }
    Spec.Rules.push_back(std::move(Rule));
  }

  if (Spec.StartSymbol.empty())
    Diags.error("spec is missing a %start directive");
  return !Diags.hasErrors();
}

bool MdSpec::expand(Grammar &G, DiagnosticSink &Diags) const {
  for (const GenericRule &Rule : Rules) {
    // Collect the class letters the rule uses.
    std::set<char> Used;
    if (char C = classLetterOf(Rule.Lhs, *this))
      Used.insert(C);
    for (const std::string &Tok : Rule.Rhs)
      if (char C = classLetterOf(Tok, *this))
        Used.insert(C);
    if (char C = classLetterOf(Rule.SemTag, *this))
      Used.insert(C);

    if (Used.size() > 1) {
      Diags.error(strf("production for '%s' mixes %zu type classes; the "
                       "replicator requires consistent intra-production "
                       "type variation (write the cross product by hand)",
                       Rule.Lhs.c_str(), Used.size()),
                  Rule.Line);
      return false;
    }

    if (Used.empty()) {
      // drop-prod fault: manufactures the paper's central failure mode (a
      // description gap) on demand; the symbols are still interned so the
      // matcher blocks instead of rejecting the terminal outright.
      if (faultInject().shouldDropProduction(Rule.SemTag)) {
        for (const std::string &Tok : Rule.Rhs)
          G.getOrAddSymbol(Tok);
        G.getOrAddSymbol(Rule.Lhs);
        continue;
      }
      std::vector<SymId> Rhs;
      for (const std::string &Tok : Rule.Rhs)
        Rhs.push_back(G.getOrAddSymbol(Tok));
      G.addProduction(G.getOrAddSymbol(Rule.Lhs), std::move(Rhs), Rule.Kind,
                      Rule.SemTag, Rule.IsBridge, /*FromReplication=*/false);
      continue;
    }

    char Letter = *Used.begin();
    const TypeClass *Class = findClass(Letter);
    for (char Size : Class->Sizes) {
      std::string SemTag = substToken(Rule.SemTag, Letter, Size);
      if (faultInject().shouldDropProduction(SemTag)) {
        for (const std::string &Tok : Rule.Rhs)
          G.getOrAddSymbol(substToken(Tok, Letter, Size));
        G.getOrAddSymbol(substToken(Rule.Lhs, Letter, Size));
        continue;
      }
      std::vector<SymId> Rhs;
      for (const std::string &Tok : Rule.Rhs)
        Rhs.push_back(G.getOrAddSymbol(substToken(Tok, Letter, Size)));
      G.addProduction(G.getOrAddSymbol(substToken(Rule.Lhs, Letter, Size)),
                      std::move(Rhs), Rule.Kind, std::move(SemTag),
                      Rule.IsBridge,
                      /*FromReplication=*/true);
    }
  }

  SymId Start = G.lookup(StartSymbol);
  if (Start < 0) {
    Diags.error(strf("start symbol '%s' does not appear in any production",
                     StartSymbol.c_str()));
    return false;
  }
  G.setStart(Start);
  return true;
}

GrammarStats MdSpec::genericStats() const {
  GrammarStats S;
  S.Productions = Rules.size();
  std::set<std::string> Terms, Nonterms;
  auto Classify = [&](const std::string &Tok) {
    if (Tok.empty())
      return;
    if (islower(static_cast<unsigned char>(Tok[0])))
      Nonterms.insert(Tok);
    else
      Terms.insert(Tok);
  };
  for (const GenericRule &Rule : Rules) {
    Classify(Rule.Lhs);
    for (const std::string &Tok : Rule.Rhs) {
      if (Tok.size() == 2 && Tok[0] == '@')
        Terms.insert(Tok); // a generic scale marker counts as one terminal
      else
        Classify(Tok);
    }
  }
  S.Terminals = Terms.size();
  S.Nonterminals = Nonterms.size();
  return S;
}
