//===- SpecParser.h - machine description spec files ------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual machine-description format plus the *type replicator* of paper
/// section 6.4. The paper wrote generic productions and used a macro
/// preprocessor with three-character macros to replicate them per machine
/// data type; we keep the mechanism but modernize the syntax:
///
///   # comment
///   %class Y b w l          -- class Y replicates over sizes b, w, l
///   %start stmt
///   reg_Y <- Plus_Y rval_Y rval_Y : emit add_Y
///   dx_Y  <- Plus_l Plus_l rcon_l reg_l Mul_l @Y reg_l : encap dx_Y
///   con_l <- One : encap speccon        -- no class letter: copied as-is
///
/// Replication rules: a token suffix "_C" where C is a declared class
/// letter is substituted per size; the standalone token "@C" becomes the
/// scale terminal (One / Two / Four) for the size. As in the paper, a
/// production may use at most one class letter ("the type replicator only
/// works on productions whose intra-production type variation is
/// consistent"); cross products (e.g. the conversion sub-grammar) are
/// written out by hand.
///
//===----------------------------------------------------------------------===//

#ifndef GG_MDL_SPECPARSER_H
#define GG_MDL_SPECPARSER_H

#include "mdl/Grammar.h"
#include "support/Error.h"

#include <string>
#include <string_view>
#include <vector>

namespace gg {

/// A production as written in the spec, before replication.
struct GenericRule {
  std::string Lhs;
  std::vector<std::string> Rhs;
  ActionKind Kind = ActionKind::Glue;
  std::string SemTag;
  bool IsBridge = false;
  int Line = 0;
};

/// A declared replication class: a letter and the size suffixes it covers.
struct TypeClass {
  char Letter = 0;
  std::vector<char> Sizes; // subset of {'b','w','l'}
};

/// A parsed machine description, prior to type replication.
struct MdSpec {
  std::vector<TypeClass> Classes;
  std::string StartSymbol;
  std::vector<GenericRule> Rules;

  const TypeClass *findClass(char Letter) const;

  /// Type-replicates the spec into \p G (which must be empty). Returns
  /// false and reports into \p Diags on error. The grammar is left
  /// unfrozen so the target can append further productions.
  bool expand(Grammar &G, DiagnosticSink &Diags) const;

  /// Pre-replication statistics: counts generic rules and distinct generic
  /// symbols (experiment E1's "before type replication" row).
  GrammarStats genericStats() const;
};

/// Parses spec \p Text. On error, diagnostics carry 1-based line numbers.
bool parseSpec(std::string_view Text, MdSpec &Spec, DiagnosticSink &Diags);

/// The scale terminal for an element size suffix: b -> One, w -> Two,
/// l -> Four (the paper's byte/word/long/quad family, minus quad).
const char *scaleTerminalFor(char SizeSuffix);

} // namespace gg

#endif // GG_MDL_SPECPARSER_H
