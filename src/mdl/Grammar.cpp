//===- Grammar.cpp - machine description grammars --------------------------===//

#include "mdl/Grammar.h"
#include "support/Strings.h"

#include <cctype>

using namespace gg;

const char *gg::actionKindName(ActionKind K) {
  switch (K) {
  case ActionKind::Glue:
    return "glue";
  case ActionKind::Encap:
    return "encap";
  case ActionKind::Emit:
    return "emit";
  }
  return "?";
}

SymId Grammar::getOrAddSymbol(const std::string &Name) {
  auto It = Index.find(Name);
  if (It != Index.end())
    return It->second;
  assert(!Frozen && "cannot add symbols to a frozen grammar");
  assert(!Name.empty() && "empty symbol name");
  SymId Id = static_cast<SymId>(Names.size());
  Names.push_back(Name);
  // The paper's convention: terminals are capitalized ("$end" counts as a
  // terminal too).
  bool IsTerm = !islower(static_cast<unsigned char>(Name[0]));
  TerminalFlag.push_back(IsTerm);
  Index.emplace(Name, Id);
  return Id;
}

SymId Grammar::lookup(const std::string &Name) const {
  auto It = Index.find(Name);
  return It == Index.end() ? -1 : It->second;
}

int Grammar::addProduction(SymId Lhs, std::vector<SymId> Rhs, ActionKind Kind,
                           std::string SemTag, bool IsBridge,
                           bool FromReplication) {
  assert(!Frozen && "cannot add productions to a frozen grammar");
  Production P;
  P.Id = static_cast<int>(Prods.size());
  P.Lhs = Lhs;
  P.Rhs = std::move(Rhs);
  P.Kind = Kind;
  P.SemTag = std::move(SemTag);
  P.IsBridge = IsBridge;
  P.FromReplication = FromReplication;
  Prods.push_back(std::move(P));
  return Prods.back().Id;
}

int Grammar::addProduction(const std::string &Lhs,
                           const std::vector<std::string> &Rhs,
                           ActionKind Kind, std::string SemTag,
                           bool IsBridge) {
  SymId L = getOrAddSymbol(Lhs);
  std::vector<SymId> R;
  R.reserve(Rhs.size());
  for (const std::string &Name : Rhs)
    R.push_back(getOrAddSymbol(Name));
  return addProduction(L, std::move(R), Kind, std::move(SemTag), IsBridge);
}

const std::vector<int> &Grammar::prodsFor(SymId Lhs) const {
  assert(Frozen && "prodsFor requires a frozen grammar");
  return ByLhs[Lhs];
}

void Grammar::freeze() {
  if (Frozen)
    return;
  Eof = getOrAddSymbol("$end");
  Frozen = true;

  ByLhs.assign(Names.size(), {});
  for (const Production &P : Prods)
    ByLhs[P.Lhs].push_back(P.Id);

  DenseIndex.assign(Names.size(), -1);
  for (SymId S = 0; S < static_cast<SymId>(Names.size()); ++S) {
    if (TerminalFlag[S]) {
      DenseIndex[S] = static_cast<int>(TermIds.size());
      TermIds.push_back(S);
    } else {
      DenseIndex[S] = static_cast<int>(NontermIds.size());
      NontermIds.push_back(S);
    }
  }
}

void Grammar::validate(DiagnosticSink &Diags) const {
  if (Start < 0) {
    Diags.error("grammar has no start symbol");
    return;
  }
  if (TerminalFlag[Start])
    Diags.error(strf("start symbol '%s' is a terminal",
                     Names[Start].c_str()));

  std::vector<bool> HasProds(Names.size(), false);
  for (const Production &P : Prods) {
    if (TerminalFlag[P.Lhs])
      Diags.error(strf("terminal '%s' appears as a left-hand side",
                       Names[P.Lhs].c_str()));
    HasProds[P.Lhs] = true;
    if (P.Rhs.empty())
      Diags.error(strf("production %d for '%s' has an empty right-hand "
                       "side (not allowed in machine grammars)",
                       P.Id, Names[P.Lhs].c_str()));
  }
  for (SymId S = 0; S < static_cast<SymId>(Names.size()); ++S) {
    if (!TerminalFlag[S] && !HasProds[S])
      Diags.error(strf("non-terminal '%s' has no productions",
                       Names[S].c_str()));
  }

  // Reachability from the start symbol (unreachable symbols are only a
  // warning; subsetted descriptions legitimately leave some behind).
  std::vector<bool> Reached(Names.size(), false);
  std::vector<SymId> Work{Start};
  Reached[Start] = true;
  while (!Work.empty()) {
    SymId S = Work.back();
    Work.pop_back();
    for (const Production &P : Prods) {
      if (P.Lhs != S)
        continue;
      for (SymId R : P.Rhs)
        if (!Reached[R]) {
          Reached[R] = true;
          if (!TerminalFlag[R])
            Work.push_back(R);
        }
    }
  }
  for (SymId S = 0; S < static_cast<SymId>(Names.size()); ++S)
    if (!Reached[S] && !TerminalFlag[S])
      Diags.warning(strf("non-terminal '%s' is unreachable from the start "
                         "symbol",
                         Names[S].c_str()));
}

std::string Grammar::dump() const {
  std::string Out;
  for (const Production &P : Prods) {
    Out += strf("%4d: %s <-", P.Id, Names[P.Lhs].c_str());
    for (SymId S : P.Rhs) {
      Out += ' ';
      Out += Names[S];
    }
    Out += strf("  : %s", actionKindName(P.Kind));
    if (!P.SemTag.empty())
      Out += strf(" %s", P.SemTag.c_str());
    if (P.IsBridge)
      Out += " bridge";
    Out += '\n';
  }
  return Out;
}

GrammarStats gg::statsOf(const Grammar &G) {
  GrammarStats S;
  S.Productions = G.numProductions();
  size_t Terms = 0, Nonterms = 0;
  for (SymId Sym = 0; Sym < static_cast<SymId>(G.numSymbols()); ++Sym) {
    // Exclude the synthetic $end from the counts the paper reports.
    if (G.isFrozen() && Sym == G.eofSymbol())
      continue;
    if (G.isTerminal(Sym))
      ++Terms;
    else
      ++Nonterms;
  }
  S.Terminals = Terms;
  S.Nonterminals = Nonterms;
  return S;
}

std::string gg::renderProduction(const Grammar &G, const Production &P) {
  std::string Out = strf("P%d: %s <-", P.Id, G.symbolName(P.Lhs).c_str());
  for (SymId Sym : P.Rhs)
    Out += strf(" %s", G.symbolName(Sym).c_str());
  Out += strf(" [%s%s%s]", actionKindName(P.Kind),
              P.SemTag.empty() ? "" : " ", P.SemTag.c_str());
  return Out;
}
