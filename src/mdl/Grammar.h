//===- Grammar.h - machine description grammars -----------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Representation of a machine description grammar (paper section 3.1):
/// attributed context-free productions whose terminal symbols are the IR
/// node labels and whose non-terminals are register classes, addressing
/// modes and factoring helpers. Each production carries a semantic action
/// descriptor: it either *encapsulates* a phrase (typically an addressing
/// mode), *emits* one logical instruction, or is *glue* (parsing only).
///
/// By the paper's convention, terminal symbols start with an upper-case
/// letter and non-terminals with a lower-case letter.
///
//===----------------------------------------------------------------------===//

#ifndef GG_MDL_GRAMMAR_H
#define GG_MDL_GRAMMAR_H

#include "support/Error.h"

#include <cassert>
#include <string>
#include <unordered_map>
#include <vector>

namespace gg {

/// Index of a symbol within a Grammar (terminals and non-terminals share
/// the same id space).
using SymId = int;

/// What a production's reduction does (paper section 4: "productions now
/// either encapsulate phrases, emit instructions, or serve as glue").
enum class ActionKind : uint8_t { Glue, Encap, Emit };

const char *actionKindName(ActionKind K);

/// One attributed production.
struct Production {
  int Id = -1;
  SymId Lhs = -1;
  std::vector<SymId> Rhs;
  ActionKind Kind = ActionKind::Glue;
  /// Target-interpreted semantic tag ("add_l", "mode.disp_b", ...). This
  /// replaces the paper's hand-assigned R(n) production numbers, whose
  /// design the authors called out as a flaw.
  std::string SemTag;
  /// True for bridge productions added to resolve syntactic blocks (§6.2.2).
  bool IsBridge = false;
  /// True if this production was created by the type replicator.
  bool FromReplication = false;
};

/// A machine description grammar with dense symbol and production ids.
class Grammar {
public:
  /// Returns the id of \p Name, interning it if needed. Terminal-ness is
  /// inferred from the paper's case convention.
  SymId getOrAddSymbol(const std::string &Name);

  /// Returns the id of \p Name or -1 if not present.
  SymId lookup(const std::string &Name) const;

  const std::string &symbolName(SymId S) const {
    assert(S >= 0 && static_cast<size_t>(S) < Names.size());
    return Names[S];
  }

  bool isTerminal(SymId S) const { return TerminalFlag[S]; }

  /// Appends a production; returns its id.
  int addProduction(SymId Lhs, std::vector<SymId> Rhs, ActionKind Kind,
                    std::string SemTag = "", bool IsBridge = false,
                    bool FromReplication = false);

  /// Convenience: add by symbol names.
  int addProduction(const std::string &Lhs,
                    const std::vector<std::string> &Rhs, ActionKind Kind,
                    std::string SemTag = "", bool IsBridge = false);

  void setStart(SymId S) { Start = S; }
  SymId start() const { return Start; }

  size_t numSymbols() const { return Names.size(); }
  size_t numProductions() const { return Prods.size(); }
  const Production &prod(int Id) const { return Prods[Id]; }
  const std::vector<Production> &productions() const { return Prods; }

  /// All production ids with the given left-hand side.
  const std::vector<int> &prodsFor(SymId Lhs) const;

  /// Dense index of a terminal among terminals (0..numTerminals-1), or of
  /// a non-terminal among non-terminals. Built lazily by freeze().
  int termIndex(SymId S) const { return DenseIndex[S]; }
  int ntIndex(SymId S) const { return DenseIndex[S]; }
  const std::vector<SymId> &terminals() const { return TermIds; }
  const std::vector<SymId> &nonterminals() const { return NontermIds; }
  size_t numTerminals() const { return TermIds.size(); }
  size_t numNonterminals() const { return NontermIds.size(); }

  /// The synthetic end-of-input terminal "$end" (created by freeze()).
  SymId eofSymbol() const { return Eof; }

  /// Finalizes the symbol tables (dense indices, $end). Must be called
  /// before table construction; adding symbols afterwards is an error.
  void freeze();
  bool isFrozen() const { return Frozen; }

  /// Basic well-formedness checks: start symbol defined and a non-terminal,
  /// every non-terminal on some LHS (productive check is approximate),
  /// terminals never appear as an LHS. Reports into \p Diags.
  void validate(DiagnosticSink &Diags) const;

  /// Renders the grammar, one production per line (for tests and tools).
  std::string dump() const;

private:
  std::vector<std::string> Names;
  std::vector<bool> TerminalFlag;
  std::unordered_map<std::string, SymId> Index;
  std::vector<Production> Prods;
  mutable std::vector<std::vector<int>> ByLhs; // built on freeze
  std::vector<int> DenseIndex;
  std::vector<SymId> TermIds, NontermIds;
  SymId Start = -1;
  SymId Eof = -1;
  bool Frozen = false;
};

/// Summary counts for experiment E1 (paper section 8 statistics).
struct GrammarStats {
  size_t Productions = 0;
  size_t Terminals = 0;
  size_t Nonterminals = 0;
};

GrammarStats statsOf(const Grammar &G);

/// Renders one production as "P<id>: lhs <- rhs... [kind tag]" — the form
/// the explain emission mode and the shift/reduce trace share.
std::string renderProduction(const Grammar &G, const Production &P);

} // namespace gg

#endif // GG_MDL_GRAMMAR_H
