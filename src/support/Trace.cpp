//===- Trace.cpp - RAII tracing spans ---------------------------------------===//

#include "support/Trace.h"
#include "support/Stats.h"
#include "support/Strings.h"

#include <algorithm>
#include <numeric>

using namespace gg;

TraceRecorder &TraceRecorder::global() {
  static TraceRecorder R;
  return R;
}

namespace {
thread_local RequestContext CurRequest;
} // namespace

RequestScope::RequestScope(uint64_t Id, uint64_t Generation) {
  Prev = CurRequest;
  CurRequest.Id = Id;
  CurRequest.Generation = Generation;
}

RequestScope::~RequestScope() { CurRequest = Prev; }

RequestContext RequestScope::current() { return CurRequest; }

void RequestScope::setGeneration(uint64_t Generation) {
  CurRequest.Generation = Generation;
}

std::string TraceRecorder::toChromeJson() const {
  // Spans are recorded at destruction, so the vector is ordered by end
  // time; emit in start order, which viewers and humans both expect.
  std::vector<size_t> Order(Events.size());
  std::iota(Order.begin(), Order.end(), size_t{0});
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Events[A].StartUs < Events[B].StartUs;
  });

  std::string Out = "[";
  bool First = true;
  for (size_t I : Order) {
    const TraceEvent &E = Events[I];
    Out += strf("%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1",
                First ? "" : ",", jsonEscape(E.Name).c_str(), E.Category,
                E.StartUs, E.DurUs);
    if (!E.Args.empty()) {
      Out += ",\"args\":{";
      bool FirstA = true;
      for (const auto &[K, V] : E.Args) {
        Out += strf("%s\"%s\":%lld", FirstA ? "" : ",",
                    jsonEscape(K).c_str(), static_cast<long long>(V));
        FirstA = false;
      }
      Out += "}";
    }
    Out += "}";
    First = false;
  }
  Out += "\n]\n";
  return Out;
}

std::string TraceRecorder::toText() const {
  std::vector<size_t> Order(Events.size());
  std::iota(Order.begin(), Order.end(), size_t{0});
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Events[A].StartUs < Events[B].StartUs;
  });

  std::string Out;
  for (size_t I : Order) {
    const TraceEvent &E = Events[I];
    Out += strf("%10.1fus %8.1fus %*s%s", E.StartUs, E.DurUs, E.Depth * 2,
                "", E.Name.c_str());
    for (const auto &[K, V] : E.Args)
      Out += strf(" %s=%lld", K.c_str(), static_cast<long long>(V));
    Out += '\n';
  }
  return Out;
}
