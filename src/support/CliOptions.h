//===- CliOptions.h - shared example-driver options -------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The telemetry/robustness option surface shared by the example drivers
/// (`run_vax`, `compile_minic`): `--threads=`, `--fault=`,
/// `--stats-json=`, `--trace-json=`, `--coverage-json=`, `--profile=`,
/// `--profile-json=`. Both drivers
/// parse these through one function so the flags cannot drift apart, and
/// `-` as a destination means stdout in both (it used to mean stderr in
/// compile_minic; telemetry consumers now get one contract).
///
/// TelemetryDump is the RAII half: constructing it enables the trace
/// recorder / coverage registry as requested, and its destructor writes
/// every requested artifact on any exit path from main().
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_CLIOPTIONS_H
#define GG_SUPPORT_CLIOPTIONS_H

#include "support/Profile.h"

#include <string>

namespace gg {

/// Values collected from the shared options.
struct CommonDriverOptions {
  int Threads = -1; ///< --threads=N; -1 = flag not given
  std::string StatsJsonPath;    ///< --stats-json=FILE ("-" = stdout)
  std::string TraceJsonPath;    ///< --trace-json=FILE ("-" = stdout)
  std::string CoverageJsonPath; ///< --coverage-json=FILE ("-" = stdout)
  std::string ProfileJsonPath;  ///< --profile-json=FILE ("-" = stdout)
  /// --flight-json=FILE: arm the always-on flight recorder's dump path
  /// and crash/SIGQUIT handlers; the gg-flight-v1 artifact is written on
  /// crash, SIGQUIT, and normal exit (reason "exit"). No "-" form — the
  /// dump must be async-signal-safe, so it only writes to a real file.
  std::string FlightJsonPath;
  /// --profile=off|instr|perf[,cycles|,steps]. A --profile-json=
  /// destination with no explicit --profile= implies instr.
  ProfileMode Profile = ProfileMode::Off;
  ProfileTimebase ProfileTb = ProfileTimebase::Cycles;
  bool ProfileGiven = false; ///< an explicit --profile= was seen
};

/// Outcome of offering one argv token to the shared parser.
enum class CliParse {
  NotMine, ///< not a shared option; the driver handles it
  Ok,      ///< consumed
  Bad      ///< a shared option with a bad value; message already on stderr
};

/// Parses one argv token against the shared option set. `--fault=SPEC`
/// is routed to the global fault injector.
CliParse parseCommonDriverOption(const std::string &Arg,
                                 CommonDriverOptions &Opts);

/// The usage-line fragment for the shared options, for driver usage text.
const char *commonDriverUsage();

/// Writes \p Text to \p Path, with "-" meaning stdout. Returns false
/// (after reporting to stderr) when the file cannot be written.
bool writeTextOrStdout(const std::string &Path, const std::string &Text);

/// Enables the requested recorders at construction and dumps all
/// requested artifacts (stats JSON, Chrome trace JSON, coverage JSON,
/// profile JSON) at destruction — i.e. on every exit path of the
/// enclosing scope.
struct TelemetryDump {
  explicit TelemetryDump(const CommonDriverOptions &Opts);
  ~TelemetryDump();
  TelemetryDump(const TelemetryDump &) = delete;
  TelemetryDump &operator=(const TelemetryDump &) = delete;

private:
  CommonDriverOptions Opts;
};

} // namespace gg

#endif // GG_SUPPORT_CLIOPTIONS_H
