//===- Timer.h - wall-clock phase timing ------------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timing helpers used by the code generator's per-phase
/// accounting (experiment E5) and the benchmark harnesses. Measures
/// against the shared MonoClock (support/Clock.h), the same source the
/// tracer and the cost profiler convert into, so seconds reported here
/// line up with every other artifact.
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_TIMER_H
#define GG_SUPPORT_TIMER_H

#include "support/Clock.h"

#include <chrono>
#include <map>
#include <string>

namespace gg {

/// A restartable stopwatch accumulating elapsed seconds.
class Timer {
public:
  void start() { Begin = Clock::now(); Running = true; }

  void stop() {
    if (!Running)
      return;
    Accumulated += std::chrono::duration<double>(Clock::now() - Begin).count();
    Running = false;
  }

  void reset() { Accumulated = 0; Running = false; }

  /// Total accumulated seconds (including the live interval if running).
  double seconds() const {
    double Total = Accumulated;
    if (Running)
      Total += std::chrono::duration<double>(Clock::now() - Begin).count();
    return Total;
  }

private:
  using Clock = MonoClock;
  Clock::time_point Begin;
  double Accumulated = 0;
  bool Running = false;
};

/// RAII guard that accumulates a scope's duration into a Timer.
class TimerScope {
public:
  explicit TimerScope(Timer &T) : T(T) { T.start(); }
  ~TimerScope() { T.stop(); }
  TimerScope(const TimerScope &) = delete;
  TimerScope &operator=(const TimerScope &) = delete;

private:
  Timer &T;
};

/// Named collection of timers (one per code generator phase).
class TimerGroup {
public:
  Timer &get(const std::string &Name) { return Timers[Name]; }
  const std::map<std::string, Timer> &all() const { return Timers; }
  void resetAll() {
    for (auto &Entry : Timers)
      Entry.second.reset();
  }

private:
  std::map<std::string, Timer> Timers;
};

} // namespace gg

#endif // GG_SUPPORT_TIMER_H
