//===- Frame.cpp - compile-server wire protocol -------------------------------===//

#include "support/Frame.h"
#include "support/Strings.h"

#include <algorithm>
#include <cstring>

using namespace gg;

const char gg::FrameMagic[4] = {'G', 'G', 'F', '1'};

namespace {

constexpr size_t HeaderLen = 4 + 1 + 4; ///< magic + type + length
constexpr size_t TrailerLen = 4;        ///< checksum

bool knownFrameType(uint8_t T) {
  return T >= static_cast<uint8_t>(FrameType::Request) &&
         T <= static_cast<uint8_t>(FrameType::StatusReply);
}

void putU8(std::string &Out, uint8_t V) {
  Out.push_back(static_cast<char>(V));
}

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

uint32_t getU32(const char *P) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(static_cast<unsigned char>(P[I])) << (8 * I);
  return V;
}

/// Bounds-checked little-endian reader for payload codecs; mirrors the
/// hardened style of the v2 table deserializer.
class ByteReader {
public:
  ByteReader(std::string_view Data) : Data(Data) {}

  bool u8(uint8_t &V) {
    if (Pos + 1 > Data.size())
      return false;
    V = static_cast<unsigned char>(Data[Pos++]);
    return true;
  }

  bool u32(uint32_t &V) {
    if (Pos + 4 > Data.size())
      return false;
    V = getU32(Data.data() + Pos);
    Pos += 4;
    return true;
  }

  bool u64(uint64_t &V) {
    if (Pos + 8 > Data.size())
      return false;
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(Data[Pos + I]))
           << (8 * I);
    Pos += 8;
    return true;
  }

  bool bytes(std::string &V, size_t Len) {
    if (Pos + Len > Data.size())
      return false;
    V.assign(Data.data() + Pos, Len);
    Pos += Len;
    return true;
  }

  bool atEnd() const { return Pos == Data.size(); }

private:
  std::string_view Data;
  size_t Pos = 0;
};

} // namespace

uint32_t gg::frameChecksum(std::string_view Data) {
  uint32_t H = 2166136261u;
  for (char C : Data) {
    H ^= static_cast<unsigned char>(C);
    H *= 16777619u;
  }
  return H;
}

void gg::appendFrame(std::string &Out, FrameType Type,
                     std::string_view Payload) {
  size_t Start = Out.size();
  Out.append(FrameMagic, 4);
  putU8(Out, static_cast<uint8_t>(Type));
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  Out.append(Payload);
  // Checksum covers type + length + payload: a flip anywhere after the
  // magic is detected by the same 4 trailing bytes.
  putU32(Out, frameChecksum(
                  std::string_view(Out.data() + Start + 4, Out.size() - Start - 4)));
}

void FrameReader::compact() {
  // Amortized cleanup so a long-lived stream does not grow without bound.
  if (Pos > 4096 && Pos > Buf.size() / 2) {
    Buf.erase(0, Pos);
    Pos = 0;
  }
}

FrameReader::Status FrameReader::resync(const std::string &Why) {
  Err = Why;
  ++Resyncs;
  // Skip the poisoned byte and scan for the next full magic. If none is
  // buffered yet, keep the last 3 bytes — a magic may straddle the next
  // feed() boundary.
  size_t Next = Buf.find(std::string(FrameMagic, 4), Pos + 1);
  if (Next != std::string::npos)
    Pos = Next;
  else
    Pos = std::max(Pos + 1, Buf.size() > 3 ? Buf.size() - 3 : 0);
  compact();
  return Status::Corrupt;
}

FrameReader::Status FrameReader::next(Frame &Out) {
  compact();
  size_t Avail = Buf.size() - Pos;
  if (Avail < HeaderLen)
    return Status::NeedMore;
  const char *P = Buf.data() + Pos;
  if (memcmp(P, FrameMagic, 4) != 0)
    return resync("bad frame magic");
  uint8_t Type = static_cast<unsigned char>(P[4]);
  uint32_t Len = getU32(P + 5);
  if (Len > MaxFrameBytes)
    return resync(strf("oversized frame: %u bytes (cap %u)", Len,
                       MaxFrameBytes));
  if (!knownFrameType(Type))
    return resync(strf("unknown frame type %u", Type));
  if (Avail < HeaderLen + Len + TrailerLen)
    return Status::NeedMore;
  uint32_t Want = getU32(P + HeaderLen + Len);
  uint32_t Got =
      frameChecksum(std::string_view(P + 4, 1 + 4 + Len));
  if (Want != Got)
    return resync(strf("frame checksum mismatch (got %08x, want %08x)", Got,
                       Want));
  Out.Type = static_cast<FrameType>(Type);
  Out.Payload.assign(P + HeaderLen, Len);
  Pos += HeaderLen + Len + TrailerLen;
  compact();
  return Status::Frame;
}

const char *gg::responseStatusName(ResponseStatus S) {
  switch (S) {
  case ResponseStatus::Ok:
    return "ok";
  case ResponseStatus::CompileError:
    return "compile-error";
  case ResponseStatus::Deadline:
    return "deadline";
  case ResponseStatus::StepBudget:
    return "step-budget";
  case ResponseStatus::MemBudget:
    return "mem-budget";
  case ResponseStatus::Watchdog:
    return "watchdog";
  case ResponseStatus::Protocol:
    return "protocol";
  }
  return "unknown";
}

std::string gg::encodeRequest(const RequestMsg &M) {
  std::string Out;
  putU64(Out, M.Id);
  putU32(Out, M.DeadlineMs);
  putU64(Out, M.MaxSteps);
  putU64(Out, M.MaxArenaBytes);
  putU32(Out, static_cast<uint32_t>(M.Source.size()));
  Out.append(M.Source);
  return Out;
}

bool gg::decodeRequest(std::string_view Payload, RequestMsg &M,
                       std::string &Err) {
  ByteReader R(Payload);
  uint32_t SrcLen = 0;
  if (!R.u64(M.Id) || !R.u32(M.DeadlineMs) || !R.u64(M.MaxSteps) ||
      !R.u64(M.MaxArenaBytes) || !R.u32(SrcLen)) {
    Err = "truncated request header";
    return false;
  }
  if (!R.bytes(M.Source, SrcLen)) {
    Err = strf("request source truncated: header says %u bytes", SrcLen);
    return false;
  }
  if (!R.atEnd()) {
    Err = "trailing garbage after request source";
    return false;
  }
  return true;
}

std::string gg::encodeResponse(const ResponseMsg &M) {
  std::string Out;
  putU64(Out, M.Id);
  putU8(Out, static_cast<uint8_t>(M.Status));
  putU32(Out, M.BlockedTrees);
  putU32(Out, M.RecoveredTrees);
  putU64(Out, M.Generation);
  putU32(Out, static_cast<uint32_t>(M.Payload.size()));
  Out.append(M.Payload);
  return Out;
}

bool gg::decodeResponse(std::string_view Payload, ResponseMsg &M,
                        std::string &Err) {
  ByteReader R(Payload);
  uint8_t Status = 0;
  uint32_t TextLen = 0;
  if (!R.u64(M.Id) || !R.u8(Status) || !R.u32(M.BlockedTrees) ||
      !R.u32(M.RecoveredTrees) || !R.u64(M.Generation) || !R.u32(TextLen)) {
    Err = "truncated response header";
    return false;
  }
  if (Status > static_cast<uint8_t>(ResponseStatus::Protocol)) {
    Err = strf("response status %u out of range", Status);
    return false;
  }
  M.Status = static_cast<ResponseStatus>(Status);
  if (!R.bytes(M.Payload, TextLen)) {
    Err = strf("response payload truncated: header says %u bytes", TextLen);
    return false;
  }
  if (!R.atEnd()) {
    Err = "trailing garbage after response payload";
    return false;
  }
  return true;
}

const char *gg::overloadCauseName(OverloadCause C) {
  switch (C) {
  case OverloadCause::QueueFull:
    return "queue-full";
  case OverloadCause::ShedOldest:
    return "shed-oldest";
  case OverloadCause::QueueDeadline:
    return "queue-deadline";
  case OverloadCause::AdmissionDeadline:
    return "admission-deadline";
  case OverloadCause::Draining:
    return "draining";
  }
  return "unknown";
}

std::string gg::encodeOverload(const OverloadMsg &M) {
  std::string Out;
  putU64(Out, M.Id);
  putU32(Out, M.RetryAfterMs);
  putU32(Out, M.QueueDepth);
  putU8(Out, static_cast<uint8_t>(M.Cause));
  return Out;
}

bool gg::decodeOverload(std::string_view Payload, OverloadMsg &M,
                        std::string &Err) {
  ByteReader R(Payload);
  uint8_t Cause = 0;
  if (!R.u64(M.Id) || !R.u32(M.RetryAfterMs) || !R.u32(M.QueueDepth) ||
      !R.u8(Cause)) {
    Err = "truncated overload notice";
    return false;
  }
  if (Cause > static_cast<uint8_t>(OverloadCause::Draining)) {
    Err = strf("overload cause %u out of range", Cause);
    return false;
  }
  M.Cause = static_cast<OverloadCause>(Cause);
  if (!R.atEnd()) {
    Err = "trailing garbage after overload notice";
    return false;
  }
  return true;
}

std::string gg::encodeReloaded(const ReloadedMsg &M) {
  std::string Out;
  putU64(Out, M.Generation);
  putU8(Out, M.Ok ? 1 : 0);
  putU32(Out, static_cast<uint32_t>(M.Text.size()));
  Out.append(M.Text);
  return Out;
}

bool gg::decodeReloaded(std::string_view Payload, ReloadedMsg &M,
                        std::string &Err) {
  ByteReader R(Payload);
  uint32_t TextLen = 0;
  if (!R.u64(M.Generation) || !R.u8(M.Ok) || !R.u32(TextLen)) {
    Err = "truncated reload outcome";
    return false;
  }
  if (M.Ok > 1) {
    Err = strf("reload ok flag %u out of range", M.Ok);
    return false;
  }
  if (!R.bytes(M.Text, TextLen)) {
    Err = strf("reload text truncated: header says %u bytes", TextLen);
    return false;
  }
  if (!R.atEnd()) {
    Err = "trailing garbage after reload outcome";
    return false;
  }
  return true;
}

std::string gg::encodeStatus(const StatusMsg &M) {
  std::string Out;
  putU64(Out, M.Id);
  return Out;
}

bool gg::decodeStatus(std::string_view Payload, StatusMsg &M,
                      std::string &Err) {
  ByteReader R(Payload);
  if (!R.u64(M.Id)) {
    Err = "truncated status probe";
    return false;
  }
  if (!R.atEnd()) {
    Err = "trailing garbage after status probe";
    return false;
  }
  return true;
}

std::string gg::encodeStatusReply(const StatusReplyMsg &M) {
  std::string Out;
  putU64(Out, M.Id);
  putU32(Out, static_cast<uint32_t>(M.Text.size()));
  Out.append(M.Text);
  return Out;
}

bool gg::decodeStatusReply(std::string_view Payload, StatusReplyMsg &M,
                           std::string &Err) {
  ByteReader R(Payload);
  uint32_t TextLen = 0;
  if (!R.u64(M.Id) || !R.u32(TextLen)) {
    Err = "truncated status reply";
    return false;
  }
  if (!R.bytes(M.Text, TextLen)) {
    Err = strf("status text truncated: header says %u bytes", TextLen);
    return false;
  }
  if (!R.atEnd()) {
    Err = "trailing garbage after status reply";
    return false;
  }
  return true;
}
