//===- FaultInject.cpp - deterministic fault injection ------------------------===//

#include "support/FaultInject.h"
#include "support/Stats.h"
#include "support/Strings.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <thread>

using namespace gg;

FaultInjector &FaultInjector::global() {
  static FaultInjector *I = [] {
    auto *Inj = new FaultInjector();
    // Environment configuration lets the fault matrix wrap any driver or
    // test binary without threading a flag through; a malformed value is a
    // loud no-op rather than a silent one.
    if (const char *Env = std::getenv("GG_FAULT")) {
      std::string Err;
      if (!Inj->configure(Env, Err))
        fprintf(stderr, "warning: ignoring GG_FAULT: %s\n", Err.c_str());
    }
    return Inj;
  }();
  return *I;
}

bool FaultInjector::configure(std::string_view Spec, std::string &Err) {
  FaultConfig New;
  for (std::string_view Item : splitString(Spec, ',')) {
    Item = trim(Item);
    if (Item.empty())
      continue;
    size_t Eq = Item.find('=');
    std::string_view Key = Item.substr(0, Eq);
    std::string_view Val =
        Eq == std::string_view::npos ? std::string_view() : Item.substr(Eq + 1);

    if (Key == "drop-prod") {
      if (Val.empty()) {
        Err = "drop-prod requires a semantic tag (drop-prod=mul_l)";
        return false;
      }
      New.DropProdTag = std::string(Val);
    } else if (Key == "corrupt-table") {
      if (Val.empty()) {
        New.CorruptTableByte = -2; // seed-derived offset
      } else {
        std::optional<int64_t> N = parseInt(Val);
        if (!N || *N < 0) {
          Err = strf("corrupt-table offset must be a non-negative integer, "
                     "got '%.*s'",
                     static_cast<int>(Val.size()), Val.data());
          return false;
        }
        New.CorruptTableByte = *N;
      }
    } else if (Key == "truncate-input") {
      int64_t N = 1;
      if (!Val.empty()) {
        std::optional<int64_t> P = parseInt(Val);
        if (!P || *P < 1) {
          Err = strf("truncate-input period must be >= 1, got '%.*s'",
                     static_cast<int>(Val.size()), Val.data());
          return false;
        }
        N = *P;
      }
      New.TruncateEveryNth = static_cast<int>(N);
    } else if (Key == "cap-regs") {
      std::optional<int64_t> K = Val.empty() ? std::nullopt : parseInt(Val);
      if (!K || *K < 1 || *K > 6) {
        Err = "cap-regs requires a register count in [1,6] (cap-regs=2)";
        return false;
      }
      New.CapFreeRegs = static_cast<int>(*K);
    } else if (Key == "stall-worker") {
      int64_t Ms = 5; // default cap keeps test runs short but reordering real
      if (!Val.empty()) {
        std::optional<int64_t> P = parseInt(Val);
        if (!P || *P < 1 || *P > 1000) {
          Err = strf("stall-worker delay cap must be in [1,1000] ms, "
                     "got '%.*s'",
                     static_cast<int>(Val.size()), Val.data());
          return false;
        }
        Ms = *P;
      }
      New.StallWorkerMs = static_cast<int>(Ms);
    } else if (Key == "oom-arena") {
      int64_t Bytes = 4096; // small enough that any real program trips it
      if (!Val.empty()) {
        std::optional<int64_t> P = parseInt(Val);
        if (!P || *P < 1) {
          Err = strf("oom-arena cap must be >= 1 byte, got '%.*s'",
                     static_cast<int>(Val.size()), Val.data());
          return false;
        }
        Bytes = *P;
      }
      New.ArenaCapBytes = Bytes;
    } else if (Key == "overload-burst") {
      int64_t Ms = 20; // long enough to back a small queue up, short
                       // enough to keep soak runs quick
      if (!Val.empty()) {
        std::optional<int64_t> P = parseInt(Val);
        if (!P || *P < 1 || *P > 1000) {
          Err = strf("overload-burst delay must be in [1,1000] ms, "
                     "got '%.*s'",
                     static_cast<int>(Val.size()), Val.data());
          return false;
        }
        Ms = *P;
      }
      New.OverloadBurstMs = static_cast<int>(Ms);
    } else if (Key == "slow-client") {
      int64_t Ms = 2;
      if (!Val.empty()) {
        std::optional<int64_t> P = parseInt(Val);
        if (!P || *P < 1 || *P > 1000) {
          Err = strf("slow-client delay must be in [1,1000] ms, got '%.*s'",
                     static_cast<int>(Val.size()), Val.data());
          return false;
        }
        Ms = *P;
      }
      New.SlowClientMs = static_cast<int>(Ms);
    } else if (Key == "seed") {
      std::optional<int64_t> S = Val.empty() ? std::nullopt : parseInt(Val);
      if (!S || *S < 0) {
        Err = "seed requires a non-negative integer";
        return false;
      }
      New.Seed = static_cast<uint64_t>(*S);
    } else {
      Err = strf("unknown fault kind '%.*s' (known: drop-prod, "
                 "corrupt-table, truncate-input, cap-regs, stall-worker, "
                 "oom-arena, overload-burst, slow-client, seed)",
                 static_cast<int>(Key.size()), Key.data());
      return false;
    }
  }
  C = New;
  TreeOrdinal.store(0, std::memory_order_relaxed);
  DispatchOrdinal.store(0, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::shouldDropProduction(std::string_view SemTag) {
  if (C.DropProdTag.empty() || SemTag != C.DropProdTag)
    return false;
  ++stats().counter("fault.productions_dropped");
  return true;
}

size_t FaultInjector::truncatedInputSize(size_t NumTokens, uint64_t Ordinal) {
  if (C.TruncateEveryNth <= 0)
    return NumTokens;
  if (Ordinal % static_cast<uint64_t>(C.TruncateEveryNth) != 0)
    return NumTokens;
  // A proper prefix of a prefix linearization is never itself well formed,
  // so chopping trailing tokens always yields a syntactic block at $end —
  // never a silently accepted wrong parse. Single-token trees are left
  // alone (an empty input would not reach the interesting code).
  if (NumTokens < 2)
    return NumTokens;
  size_t Keep = NumTokens - (NumTokens / 4 > 0 ? NumTokens / 4 : 1);
  ++stats().counter("fault.trees_truncated");
  return Keep;
}

void FaultInjector::noteArenaExhaustion() {
  ++stats().counter("fault.arena_exhaustions");
}

void FaultInjector::stallWorker(uint64_t TaskOrdinal) {
  if (C.StallWorkerMs <= 0)
    return;
  // Knuth-hash the (seed, task) pair so neighboring tasks get unrelated
  // delays: late early-tasks and early late-tasks force the stitcher to
  // reorder buffers rather than getting completion order for free.
  uint64_t H = (C.Seed * 2654435761u) ^ (TaskOrdinal * 0x9E3779B97F4A7C15ull);
  uint64_t DelayUs =
      (H >> 7) % (static_cast<uint64_t>(C.StallWorkerMs) * 1000 + 1);
  ++stats().counter("fault.worker_stalls");
  std::this_thread::sleep_for(std::chrono::microseconds(DelayUs));
}

void FaultInjector::overloadBurst() {
  if (C.OverloadBurstMs <= 0)
    return;
  // Alternating windows of 8 requests: bursts back the queue up, the
  // quiet windows let sheds and retries interleave with successes.
  uint64_t Ordinal = DispatchOrdinal.fetch_add(1, std::memory_order_relaxed);
  if ((Ordinal / 8) % 2 != 0)
    return;
  ++stats().counter("fault.overload_bursts");
  std::this_thread::sleep_for(std::chrono::milliseconds(C.OverloadBurstMs));
}

void FaultInjector::noteSlowClientWrite() {
  ++stats().counter("fault.slow_client_writes");
}

int64_t FaultInjector::corruptTableBody(std::string &TableText,
                                        size_t BodyStart) {
  if (C.CorruptTableByte == -1 || BodyStart >= TableText.size())
    return -1;
  size_t BodyLen = TableText.size() - BodyStart;
  uint64_t Off = C.CorruptTableByte >= 0
                     ? static_cast<uint64_t>(C.CorruptTableByte)
                     : C.Seed * 2654435761u; // Knuth hash of the seed
  size_t Pos = BodyStart + static_cast<size_t>(Off % BodyLen);
  TableText[Pos] ^= 0x01;
  ++stats().counter("fault.table_bytes_corrupted");
  return static_cast<int64_t>(Pos - BodyStart);
}
