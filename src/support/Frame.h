//===- Frame.h - compile-server wire protocol -------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed frame protocol the compile server speaks over
/// stdin/stdout and its Unix socket (docs/server.md). One frame is:
///
///   offset size  field
///   0      4     magic "GGF1"
///   4      1     type (FrameType)
///   5      4     payload length, little-endian (<= MaxFrameBytes)
///   9      len   payload bytes
///   9+len  4     FNV-1a checksum over bytes [4, 9+len) — type, length
///                and payload, so a flipped length or type byte is caught
///                exactly like a flipped payload byte
///
/// The reader is incremental (feed() arbitrary chunks, next() complete
/// frames) and crash-only friendly: any malformed header or checksum
/// mismatch is reported once and then the reader *resyncs* by scanning
/// for the next magic, so one poisoned frame quarantines itself instead
/// of wedging or killing the stream. Request/response payloads have their
/// own bounds-checked binary encodings here, mirroring the hardened v2
/// table deserializer (tablegen/Serialize.cpp): every read is
/// length-checked, every enum range-checked, and a byte-flip sweep in
/// tests/ServerTest.cpp asserts no single-bit corruption is ever accepted.
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_FRAME_H
#define GG_SUPPORT_FRAME_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gg {

/// Frame types on the wire. Unknown values are a protocol error.
enum class FrameType : uint8_t {
  Request = 1,    ///< client -> server: compile this source
  Response = 2,   ///< server -> client: result for one request id
  Ping = 3,       ///< client -> server: liveness probe
  Pong = 4,       ///< server -> client: liveness answer
  Shutdown = 5,   ///< client -> server: drain and exit cleanly (exit 0)
  Crash = 6,      ///< client -> server: die immediately (tests/supervisor
                  ///< drills only; ignored unless the server allows it)
  Overloaded = 7, ///< server -> client: request shed at admission; carries
                  ///< a retry-after hint instead of a compile result
  Reload = 8,     ///< client -> server: drain in-flight work and hot-swap
                  ///< a freshly verified table image (same as SIGHUP)
  Reloaded = 9,   ///< server -> client: outcome of a Reload frame
  Status = 10,    ///< client -> server: request a live introspection
                  ///< snapshot (queue depth, in-flight requests, latency
                  ///< percentiles, generation) without compiling anything
  StatusReply = 11, ///< server -> client: the snapshot, as one JSON object
};

/// Hard cap on one frame's payload; oversized length prefixes are rejected
/// without allocating.
constexpr uint32_t MaxFrameBytes = 16u << 20;

/// The four magic bytes.
extern const char FrameMagic[4];

/// Serializes one frame (header + payload + checksum) onto \p Out.
void appendFrame(std::string &Out, FrameType Type, std::string_view Payload);

/// One decoded frame.
struct Frame {
  FrameType Type = FrameType::Ping;
  std::string Payload;
};

/// Incremental frame decoder with resync-on-corruption.
class FrameReader {
public:
  /// Outcome of one next() call.
  enum class Status {
    Frame,    ///< *Out holds a complete, checksum-verified frame
    NeedMore, ///< no complete frame buffered; feed() more bytes
    Corrupt,  ///< a malformed frame was skipped (Error says why); call
              ///< next() again — the reader has already resynced
  };

  /// Appends raw bytes from the transport.
  void feed(const char *Data, size_t Len) { Buf.append(Data, Len); }

  /// Extracts the next frame, resyncing past garbage if necessary.
  Status next(Frame &Out);

  /// Human-readable reason for the last Corrupt status.
  const std::string &error() const { return Err; }

  /// Total resync events (corrupt frames skipped) since construction.
  uint64_t resyncs() const { return Resyncs; }

  /// Bytes buffered but not yet consumed (diagnosing mid-frame EOF).
  size_t buffered() const { return Buf.size() - Pos; }

private:
  std::string Buf;
  size_t Pos = 0; ///< consumed prefix of Buf
  std::string Err;
  uint64_t Resyncs = 0;

  void compact();
  /// Skips one byte and scans to the next magic; returns Corrupt.
  Status resync(const std::string &Why);
};

/// A compile request as carried in a Request frame payload.
struct RequestMsg {
  uint64_t Id = 0;
  uint32_t DeadlineMs = 0;    ///< 0 = server default
  uint64_t MaxSteps = 0;      ///< 0 = server default
  uint64_t MaxArenaBytes = 0; ///< 0 = server default
  std::string Source;
};

/// Terminal status of one request, carried in a Response frame.
enum class ResponseStatus : uint8_t {
  Ok = 0,           ///< Payload is the assembly text
  CompileError = 1, ///< recoverable failure; Payload is diagnostics
  Deadline = 2,     ///< quarantined: wall-clock deadline exceeded
  StepBudget = 3,   ///< quarantined: matcher step budget exceeded
  MemBudget = 4,    ///< quarantined: arena byte budget exceeded
  Watchdog = 5,     ///< quarantined: worker wedged; request abandoned
  Protocol = 6,     ///< quarantined: the request frame itself was bad
};

/// Returns a stable name for \p S ("ok", "deadline", ...).
const char *responseStatusName(ResponseStatus S);

/// A compile response as carried in a Response frame payload.
struct ResponseMsg {
  uint64_t Id = 0;
  ResponseStatus Status = ResponseStatus::Ok;
  uint32_t BlockedTrees = 0;   ///< trees that hit the degradation ladder
  uint32_t RecoveredTrees = 0; ///< subset regenerated via the PCC baseline
  uint64_t Generation = 0;     ///< table image generation that served this
  std::string Payload;         ///< assembly on Ok, diagnostics otherwise
};

/// Why a request was shed at admission instead of compiled.
enum class OverloadCause : uint8_t {
  QueueFull = 0,         ///< reject-newest: queue at capacity
  ShedOldest = 1,        ///< shed-oldest: displaced by a newer arrival
  QueueDeadline = 2,     ///< waited in queue past the queueing deadline
  AdmissionDeadline = 3, ///< estimated wait alone would blow the deadline
  Draining = 4,          ///< server is draining toward shutdown
};

/// Returns a stable name for \p C ("queue-full", "draining", ...).
const char *overloadCauseName(OverloadCause C);

/// Shed notice carried in an Overloaded frame (server -> client).
struct OverloadMsg {
  uint64_t Id = 0;
  uint32_t RetryAfterMs = 0; ///< hint: when a retry is likely to admit
  uint32_t QueueDepth = 0;   ///< queue depth observed at the shed decision
  OverloadCause Cause = OverloadCause::QueueFull;
};

/// Outcome of a Reload control frame (server -> client).
struct ReloadedMsg {
  uint64_t Generation = 0; ///< table generation now serving
  uint8_t Ok = 0;          ///< 1 = swap happened, 0 = old image kept
  std::string Text;        ///< diagnostics on failure
};

/// Introspection probe carried in a Status frame (client -> server).
struct StatusMsg {
  uint64_t Id = 0; ///< echoed in the StatusReply so pollers can correlate
};

/// Introspection snapshot carried in a StatusReply frame. Text is one
/// JSON object (the gg-status-v1 snapshot, docs/observability.md); the
/// schema lives in the JSON itself so old clients can still display a
/// newer server's snapshot.
struct StatusReplyMsg {
  uint64_t Id = 0;  ///< the probing StatusMsg's Id
  std::string Text; ///< JSON snapshot
};

/// Payload codecs. Decoders are hardened: they return false (with \p Err
/// set) on any truncation, trailing garbage, out-of-range enum or
/// inconsistent length, and never read out of bounds.
std::string encodeRequest(const RequestMsg &M);
bool decodeRequest(std::string_view Payload, RequestMsg &M, std::string &Err);
std::string encodeResponse(const ResponseMsg &M);
bool decodeResponse(std::string_view Payload, ResponseMsg &M, std::string &Err);
std::string encodeOverload(const OverloadMsg &M);
bool decodeOverload(std::string_view Payload, OverloadMsg &M, std::string &Err);
std::string encodeReloaded(const ReloadedMsg &M);
bool decodeReloaded(std::string_view Payload, ReloadedMsg &M, std::string &Err);
std::string encodeStatus(const StatusMsg &M);
bool decodeStatus(std::string_view Payload, StatusMsg &M, std::string &Err);
std::string encodeStatusReply(const StatusReplyMsg &M);
bool decodeStatusReply(std::string_view Payload, StatusReplyMsg &M,
                       std::string &Err);

/// FNV-1a over \p Data — the frame checksum primitive (shared with the
/// tests' byte-flip sweep).
uint32_t frameChecksum(std::string_view Data);

} // namespace gg

#endif // GG_SUPPORT_FRAME_H
