//===- FaultInject.h - deterministic fault injection ------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the graceful-degradation ladder. The
/// paper's central fragility is the *syntactic block*: a description gap
/// wedges the matcher on well-formed input, and the authors could "only
/// iterate on the grammar once per day". This subsystem manufactures those
/// gaps (and the neighboring failure modes) on demand so every recovery
/// path is exercised by tests and by `run_vax --fault=...`:
///
///   * `drop-prod=TAG`       drop expanded grammar productions whose
///                           semantic tag is TAG (a description gap);
///   * `corrupt-table[=OFF]` flip one byte of a serialized table file's
///                           body (exercises the loader's checksum);
///   * `truncate-input[=N]`  truncate the linearized input of every Nth
///                           statement tree (a phase-1/linearizer bug);
///   * `cap-regs=K`          let the register manager hand out only the
///                           first K scratch registers (forces exhaustion);
///   * `stall-worker[=MS]`   delay each parallel compile task by a
///                           seed-derived amount up to MS milliseconds,
///                           scrambling worker completion order (proves
///                           source-order stitching is scheduling-proof);
///   * `oom-arena[=BYTES]`   cap every NodeArena's node storage at BYTES
///                           (default 4096): allocation past the cap sets
///                           the arena's sticky exhausted() flag, driving
///                           the memory-exhaustion degradation path;
///   * `overload-burst[=MS]` inflate the compile server's per-request
///                           service time by MS milliseconds in bursts
///                           (alternating windows of 8 requests), pushing
///                           a bounded queue into its shed paths without
///                           touching the compile pipeline itself;
///   * `slow-client[=MS]`    make gg-load dribble request frames onto the
///                           wire in small chunks with MS milliseconds
///                           between them (a slowloris-style client; the
///                           server's incremental reader must treat it as
///                           NeedMore, never as corruption);
///   * `seed=S`              seed for derived offsets (deterministic).
///
/// Faults are process-global (like the stats registry), configured from a
/// driver flag or the GG_FAULT environment variable, and default to off.
/// Every injected event is counted under `fault.*` in gg-stats-v1.
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_FAULTINJECT_H
#define GG_SUPPORT_FAULTINJECT_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace gg {

/// Parsed fault-injection configuration; all faults default to off.
struct FaultConfig {
  /// Drop expanded productions whose semantic tag equals this (e.g.
  /// "mul_l"). Empty = off.
  std::string DropProdTag;
  /// Flip one body byte of a serialized table file. -1 = off; -2 = on with
  /// a seed-derived offset; >= 0 = explicit body offset.
  int64_t CorruptTableByte = -1;
  /// Truncate the matcher input of every Nth statement tree (1 = every
  /// tree). 0 = off.
  int TruncateEveryNth = 0;
  /// Cap the register manager to the first K allocatable registers
  /// (1 <= K <= 6). -1 = off.
  int CapFreeRegs = -1;
  /// Delay each parallel compile task by a seed-derived amount in
  /// [0, StallWorkerMs] milliseconds. 0 = off.
  int StallWorkerMs = 0;
  /// Cap every NodeArena at this many node-storage bytes. -1 = off.
  int64_t ArenaCapBytes = -1;
  /// Inflate server-side service time by this many ms in bursts. 0 = off.
  int OverloadBurstMs = 0;
  /// gg-load writes frames in small chunks with this many ms between
  /// them. 0 = off.
  int SlowClientMs = 0;
  /// Seed for derived choices (corrupt offset, truncation point, stalls).
  uint64_t Seed = 1;

  bool anyEnabled() const {
    return !DropProdTag.empty() || CorruptTableByte != -1 ||
           TruncateEveryNth > 0 || CapFreeRegs >= 0 || StallWorkerMs > 0 ||
           ArenaCapBytes >= 0 || OverloadBurstMs > 0 || SlowClientMs > 0;
  }
};

/// Process-global fault injector. Decision helpers are cheap no-ops when
/// the corresponding fault is off, so production call sites stay hot-path
/// friendly; helpers that fire also bump the matching `fault.*` counter.
class FaultInjector {
public:
  static FaultInjector &global();

  /// Parses a `--fault=` spec ("drop-prod=mul_l,cap-regs=2,seed=7") into
  /// the active config. Returns false and sets \p Err on a malformed spec;
  /// the previous config is kept in that case.
  bool configure(std::string_view Spec, std::string &Err);

  void setConfig(const FaultConfig &NewConfig) { C = NewConfig; }
  const FaultConfig &config() const { return C; }
  bool enabled() const { return C.anyEnabled(); }

  /// Restores the all-off default (tests).
  void reset() {
    C = FaultConfig();
    TreeOrdinal.store(0, std::memory_order_relaxed);
    DispatchOrdinal.store(0, std::memory_order_relaxed);
  }

  /// True if the expanded production with semantic tag \p SemTag should be
  /// dropped from the grammar (counts `fault.productions_dropped`).
  bool shouldDropProduction(std::string_view SemTag);

  /// Atomically reserves \p Count consecutive tree ordinals, returning the
  /// first. The code generator reserves its module's whole block up front
  /// and numbers trees in source order, so truncate-input selects the same
  /// trees at any thread count (and across compiles in one process, the
  /// same trees the pre-parallel sequential counter selected).
  uint64_t reserveTreeOrdinals(uint64_t Count) {
    return TreeOrdinal.fetch_add(Count, std::memory_order_relaxed);
  }

  /// Returns the truncated token count for the statement tree numbered
  /// \p Ordinal (counts `fault.trees_truncated` when it chops). Pure in
  /// the ordinal: returns \p NumTokens unchanged when the fault is off or
  /// this ordinal is not selected.
  size_t truncatedInputSize(size_t NumTokens, uint64_t Ordinal);

  /// Register-manager cap: the number of allocatable scratch registers the
  /// allocator may use, or -1 for no cap.
  int capFreeRegs() const { return C.CapFreeRegs; }

  /// oom-arena fault: the NodeArena construction-time byte cap, or -1 for
  /// no cap. Per-request budgets tighten (never widen) this via
  /// NodeArena::setLimitBytes.
  int64_t arenaCapBytes() const { return C.ArenaCapBytes; }

  /// Counts one sticky arena-cap trip under `fault.arena_exhaustions`
  /// (called by NodeArena the first time an allocation exceeds its cap,
  /// whether the cap came from the fault or from a request budget).
  void noteArenaExhaustion();

  /// stall-worker fault: sleeps for a deterministic, seed-derived delay
  /// for compile task \p TaskOrdinal (counts `fault.worker_stalls`). No-op
  /// when the fault is off. Different ordinals get different delays, so
  /// parallel workers finish in adversarially shuffled order.
  void stallWorker(uint64_t TaskOrdinal);

  /// Flips one byte of \p TableText within [BodyStart, TableText.size())
  /// per the config (counts `fault.table_bytes_corrupted`). Returns the
  /// corrupted offset, or -1 if the fault is off or the body is empty.
  int64_t corruptTableBody(std::string &TableText, size_t BodyStart);

  /// overload-burst fault: sleeps OverloadBurstMs in alternating windows
  /// of 8 dispatched requests (counts `fault.overload_bursts` when it
  /// fires). Called from the server's dispatch path — never the compile
  /// pipeline — so an in-process verify oracle sharing GG_FAULT is
  /// unaffected. No-op when off.
  void overloadBurst();

  /// slow-client fault: the inter-chunk delay (ms) a load client should
  /// insert while writing a frame, or 0 when off. The caller counts
  /// `fault.slow_client_writes` via noteSlowClientWrite() per frame.
  int slowClientChunkMs() const { return C.SlowClientMs; }
  void noteSlowClientWrite();

private:
  FaultConfig C;
  /// Statement trees numbered so far (truncate-input); atomic because
  /// parallel compiles may reserve blocks concurrently.
  std::atomic<uint64_t> TreeOrdinal{0};
  /// Requests dispatched so far (overload-burst windowing).
  std::atomic<uint64_t> DispatchOrdinal{0};
};

/// Shorthand for the global injector.
inline FaultInjector &faultInject() { return FaultInjector::global(); }

} // namespace gg

#endif // GG_SUPPORT_FAULTINJECT_H
