//===- Server.cpp - fault-isolated compile server -----------------------------===//

#include "support/Server.h"
#include "support/ExitCodes.h"
#include "support/Stats.h"
#include "support/Strings.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <algorithm>
#include <csignal>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace gg;

namespace {

/// Creates-at-zero every server.* key the gg-stats-v1 artifact promises,
/// so a freshly started server dumps a stable schema even before its
/// first request (mirrors cg's touchSchemaKeys).
void touchServerSchemaKeys() {
  static bool Done = [] {
    for (const char *Name :
         {"server.requests", "server.ok", "server.compile_errors",
          "server.quarantined", "server.deadline_kills",
          "server.step_budget_kills", "server.mem_budget_kills",
          "server.watchdog_kills", "server.protocol_errors",
          "server.resyncs", "server.restarts", "server.fallback_trees",
          "server.blocked_trees", "server.discarded_results",
          "server.connections"})
      stats().counter(Name);
    stats().histogram("server.request_ms");
    return true;
  }();
  (void)Done;
}

/// Writes all of \p Data to \p Fd, retrying short writes and EINTR.
/// Returns false once the peer is gone (EPIPE/ECONNRESET); SIGPIPE is
/// ignored process-wide while serving.
bool writeAll(int Fd, const char *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

} // namespace

/// One output stream. Workers, the watchdog and the input pump all write
/// responses; the mutex keeps frames atomic on the wire.
struct Server::Conn {
  explicit Conn(int Fd) : Fd(Fd) {}
  int Fd;
  std::mutex WriteM;
  bool Broken = false;

  void writeFrame(FrameType Type, std::string_view Payload) {
    std::string Wire;
    appendFrame(Wire, Type, Payload);
    std::lock_guard<std::mutex> Lock(WriteM);
    if (Broken)
      return;
    if (!writeAll(Fd, Wire.data(), Wire.size()))
      Broken = true; // client gone; its remaining responses are discarded
  }

  void respond(const ResponseMsg &M) {
    writeFrame(FrameType::Response, encodeResponse(M));
  }
};

/// One admitted request. Shared by the queue, the owning worker and the
/// watchdog; Responded arbitrates who publishes the (single) response.
struct Server::Active {
  RequestMsg Req;
  std::shared_ptr<Conn> C;
  RequestBudget Budget;
  std::atomic<bool> Responded{false};
  uint64_t AdmitNs = 0;

  /// True for the caller that wins the right to respond.
  bool claimResponse() {
    bool Expected = false;
    return Responded.compare_exchange_strong(Expected, true,
                                             std::memory_order_acq_rel);
  }
};

Server::Server(CompileHandler Handler, ServerOptions Opts)
    : Handler(std::move(Handler)), Opts(Opts) {
  touchServerSchemaKeys();
  stats().counter("server.restarts") += Opts.Generation;
}

Server::~Server() { stopWatchdog(); }

void Server::startWatchdog() {
  WatchdogStop = false;
  Watchdog = std::thread([this] {
    std::unique_lock<std::mutex> Lock(WatchdogM);
    while (!WatchdogStop) {
      WatchdogCV.wait_for(Lock,
                          std::chrono::milliseconds(Opts.WatchdogIntervalMs));
      if (WatchdogStop)
        return;
      Lock.unlock();
      watchdogScan();
      Lock.lock();
    }
  });
}

void Server::stopWatchdog() {
  if (!Watchdog.joinable())
    return;
  {
    std::lock_guard<std::mutex> Lock(WatchdogM);
    WatchdogStop = true;
  }
  WatchdogCV.notify_all();
  Watchdog.join();
}

void Server::watchdogScan() {
  uint64_t Now = RequestBudget::nowNs();
  uint64_t GraceNs = Opts.WatchdogGraceMs * 1000000ull;
  std::vector<std::shared_ptr<Active>> Snapshot;
  {
    std::lock_guard<std::mutex> Lock(ActiveM);
    Snapshot = InFlight;
  }
  for (const std::shared_ptr<Active> &A : Snapshot) {
    if (A->Responded.load(std::memory_order_acquire))
      continue;
    uint64_t Deadline = A->Budget.DeadlineNs;
    if (!Deadline || Now <= Deadline)
      continue;
    // Past the deadline: first ask nicely — the matcher's budget poll
    // aborts the parse within ~BudgetPollMask steps.
    A->Budget.Cancelled.store(true, std::memory_order_relaxed);
    if (Now <= Deadline + GraceNs)
      continue;
    // Still running a grace period later: the worker is wedged (e.g. the
    // stall-worker fault sleeping through the deadline). Fail exactly
    // this request; the worker rejoins the pool when it wakes, and its
    // result is discarded by the Responded flag.
    if (!A->claimResponse())
      continue;
    ++stats().counter("server.watchdog_kills");
    ++stats().counter("server.quarantined");
    ResponseMsg M;
    M.Id = A->Req.Id;
    M.Status = ResponseStatus::Watchdog;
    M.Payload = strf("request %llu abandoned: worker unresponsive %llums "
                     "past its deadline",
                     static_cast<unsigned long long>(A->Req.Id),
                     static_cast<unsigned long long>((Now - Deadline) /
                                                     1000000ull));
    A->C->respond(M);
  }
}

void Server::closeQueue() {
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    Closed = true;
  }
  QueueCV.notify_all();
}

void Server::admit(const std::shared_ptr<Conn> &C, RequestMsg Req) {
  auto A = std::make_shared<Active>();
  A->Req = std::move(Req);
  A->C = C;
  A->AdmitNs = RequestBudget::nowNs();
  // ~0u is the explicit "no deadline" escape hatch; 0 means "server
  // default". Budgets follow the same convention.
  uint32_t DeadlineMs = A->Req.DeadlineMs == 0
                            ? static_cast<uint32_t>(std::min<uint64_t>(
                                  Opts.DefaultDeadlineMs, 0xfffffffeu))
                            : A->Req.DeadlineMs;
  if (DeadlineMs != 0xffffffffu)
    A->Budget.arm(DeadlineMs);
  A->Budget.MaxSteps =
      A->Req.MaxSteps ? A->Req.MaxSteps : Opts.DefaultMaxSteps;
  A->Budget.MaxArenaBytes = static_cast<size_t>(
      A->Req.MaxArenaBytes ? A->Req.MaxArenaBytes : Opts.DefaultMaxArenaBytes);
  {
    std::lock_guard<std::mutex> Lock(ActiveM);
    InFlight.push_back(A);
  }
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    Queue.push_back(std::move(A));
  }
  QueueCV.notify_one();
}

void Server::serveOne(const std::shared_ptr<Active> &A) {
  StatsRegistry &Reg = stats();
  ++Reg.counter("server.requests");
  HandlerResult R;
  try {
    R = Handler(A->Req, A->Budget);
  } catch (...) {
    // The handler contract is exception-free; honor the quarantine
    // promise anyway rather than unwinding out of the pool.
    R.Status = ResponseStatus::CompileError;
    R.Payload = "internal error: handler threw";
  }

  Reg.counter("server.fallback_trees") += R.RecoveredTrees;
  Reg.counter("server.blocked_trees") += R.BlockedTrees;

  if (!A->claimResponse()) {
    // The watchdog already failed this request; drop the late result.
    ++Reg.counter("server.discarded_results");
  } else {
    switch (R.Status) {
    case ResponseStatus::Ok:
      ++Reg.counter("server.ok");
      break;
    case ResponseStatus::CompileError:
      ++Reg.counter("server.compile_errors");
      break;
    case ResponseStatus::Deadline:
      ++Reg.counter("server.deadline_kills");
      ++Reg.counter("server.quarantined");
      break;
    case ResponseStatus::StepBudget:
      ++Reg.counter("server.step_budget_kills");
      ++Reg.counter("server.quarantined");
      break;
    case ResponseStatus::MemBudget:
      ++Reg.counter("server.mem_budget_kills");
      ++Reg.counter("server.quarantined");
      break;
    case ResponseStatus::Watchdog:
    case ResponseStatus::Protocol:
      ++Reg.counter("server.quarantined");
      break;
    }
    ResponseMsg M;
    M.Id = A->Req.Id;
    M.Status = R.Status;
    M.BlockedTrees = R.BlockedTrees;
    M.RecoveredTrees = R.RecoveredTrees;
    M.Payload = std::move(R.Payload);
    A->C->respond(M);
    Reg.histogram("server.request_ms")
        .record((RequestBudget::nowNs() - A->AdmitNs) / 1000000ull);
  }

  std::lock_guard<std::mutex> Lock(ActiveM);
  InFlight.erase(std::remove(InFlight.begin(), InFlight.end(), A),
                 InFlight.end());
}

void Server::drainQueue() {
  while (true) {
    std::shared_ptr<Active> A;
    {
      std::unique_lock<std::mutex> Lock(QueueM);
      QueueCV.wait(Lock, [this] { return Closed || !Queue.empty(); });
      if (Queue.empty())
        return; // Closed and drained
      A = std::move(Queue.front());
      Queue.pop_front();
    }
    serveOne(A);
  }
}

void Server::pumpInput(const std::shared_ptr<Conn> &C, int InFd,
                       bool &SawShutdown) {
  SawShutdown = false;
  FrameReader Reader;
  char Chunk[65536];
  StatsRegistry &Reg = stats();
  while (true) {
    Frame F;
    FrameReader::Status S = Reader.next(F);
    if (S == FrameReader::Status::NeedMore) {
      ssize_t N = ::read(InFd, Chunk, sizeof(Chunk));
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0) {
        // EOF mid-frame is itself a protocol event worth counting: the
        // client died between header and payload.
        if (Reader.buffered() > 0)
          ++Reg.counter("server.protocol_errors");
        return;
      }
      Reader.feed(Chunk, static_cast<size_t>(N));
      continue;
    }
    if (S == FrameReader::Status::Corrupt) {
      // Quarantine the poisoned bytes, tell the client, keep serving.
      ++Reg.counter("server.resyncs");
      ++Reg.counter("server.protocol_errors");
      ResponseMsg M;
      M.Status = ResponseStatus::Protocol;
      M.Payload = Reader.error();
      C->respond(M);
      continue;
    }
    switch (F.Type) {
    case FrameType::Request: {
      RequestMsg Req;
      std::string Err;
      if (!decodeRequest(F.Payload, Req, Err)) {
        ++Reg.counter("server.protocol_errors");
        ResponseMsg M;
        M.Status = ResponseStatus::Protocol;
        M.Payload = "bad request payload: " + Err;
        C->respond(M);
        break;
      }
      admit(C, std::move(Req));
      break;
    }
    case FrameType::Ping:
      C->writeFrame(FrameType::Pong, F.Payload);
      break;
    case FrameType::Shutdown:
      SawShutdown = true;
      return;
    case FrameType::Crash:
      if (Opts.AllowCrash) {
        // Crash drill: die the crash-only way — no draining, no flushing,
        // the supervisor's problem now. A signal death (not ExitFatalFault,
        // which means "restart cannot help") so the supervisor restarts us.
        ::abort();
      }
      ++Reg.counter("server.protocol_errors");
      {
        ResponseMsg M;
        M.Status = ResponseStatus::Protocol;
        M.Payload = "crash frames are disabled on this server";
        C->respond(M);
      }
      break;
    case FrameType::Response:
    case FrameType::Pong:
      ++Reg.counter("server.protocol_errors");
      break;
    }
  }
}

int Server::serveFds(int InFd, int OutFd) {
  ::signal(SIGPIPE, SIG_IGN);
  auto C = std::make_shared<Conn>(OutFd);
  ++stats().counter("server.connections");
  startWatchdog();

  bool SawShutdown = false;
  std::thread Reader([&] {
    pumpInput(C, InFd, SawShutdown);
    closeQueue();
  });

  // The drain loops ride the PR-4 work-stealing pool: each index hosts
  // one worker, the caller participates as worker 0, and Workers=1 is a
  // plain serial server.
  unsigned W = resolveWorkerCount(Opts.Workers, 1u << 16);
  ParallelOptions PO;
  PO.Threads = static_cast<int>(W);
  parallelFor(W, PO, [this](size_t) { drainQueue(); });

  Reader.join();
  stopWatchdog();
  (void)SawShutdown; // EOF and Shutdown both drain, then exit cleanly
  return ExitOk;
}

int Server::serveUnixSocket(const std::string &Path) {
  ::signal(SIGPIPE, SIG_IGN);
  int ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    fprintf(stderr, "serve: socket(): %s\n", strerror(errno));
    return ExitFatalFault;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    fprintf(stderr, "serve: socket path too long: %s\n", Path.c_str());
    ::close(ListenFd);
    return ExitUsage;
  }
  strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  ::unlink(Path.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(ListenFd, 64) < 0) {
    fprintf(stderr, "serve: bind/listen(%s): %s\n", Path.c_str(),
            strerror(errno));
    ::close(ListenFd);
    return ExitFatalFault;
  }

  startWatchdog();
  std::atomic<bool> Shut{false};
  std::mutex ConnsM;
  std::vector<std::shared_ptr<Conn>> Conns;
  std::vector<std::thread> ConnThreads;

  std::thread Acceptor([&] {
    while (!Shut.load(std::memory_order_relaxed)) {
      int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0) {
        if (errno == EINTR)
          continue;
        break; // listen fd closed: shutting down
      }
      ++stats().counter("server.connections");
      auto C = std::make_shared<Conn>(Fd);
      std::lock_guard<std::mutex> Lock(ConnsM);
      Conns.push_back(C);
      ConnThreads.emplace_back([this, C, Fd, &Shut, ListenFd] {
        bool SawShutdown = false;
        pumpInput(C, Fd, SawShutdown);
        if (SawShutdown && !Shut.exchange(true)) {
          // First Shutdown frame wins: stop accepting, then unblock the
          // acceptor and every idle connection reader.
          ::shutdown(ListenFd, SHUT_RDWR);
          closeQueue();
        }
      });
    }
  });

  // Workers drain until the queue closes (Shutdown frame).
  unsigned W = resolveWorkerCount(Opts.Workers, 1u << 16);
  ParallelOptions PO;
  PO.Threads = static_cast<int>(W);
  parallelFor(W, PO, [this](size_t) { drainQueue(); });

  // Closed queue means shutdown: kick still-open connections loose.
  Shut.store(true);
  ::shutdown(ListenFd, SHUT_RDWR);
  Acceptor.join();
  {
    std::lock_guard<std::mutex> Lock(ConnsM);
    for (const std::shared_ptr<Conn> &C : Conns)
      ::shutdown(C->Fd, SHUT_RDWR);
  }
  for (std::thread &T : ConnThreads)
    T.join();
  {
    std::lock_guard<std::mutex> Lock(ConnsM);
    for (const std::shared_ptr<Conn> &C : Conns)
      ::close(C->Fd);
  }
  ::close(ListenFd);
  ::unlink(Path.c_str());
  stopWatchdog();
  return ExitOk;
}
