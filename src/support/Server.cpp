//===- Server.cpp - fault-isolated compile server -----------------------------===//

#include "support/Server.h"
#include "support/ExitCodes.h"
#include "support/FaultInject.h"
#include "support/FlightRecorder.h"
#include "support/Stats.h"
#include "support/Strings.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <atomic>
#include <algorithm>
#include <csignal>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace gg;

namespace {

/// Creates-at-zero every server.* key the gg-stats-v1 artifact promises,
/// so a freshly started server dumps a stable schema even before its
/// first request (mirrors cg's touchSchemaKeys).
void touchServerSchemaKeys() {
  static bool Done = [] {
    for (const char *Name :
         {"server.requests", "server.ok", "server.compile_errors",
          "server.quarantined", "server.deadline_kills",
          "server.step_budget_kills", "server.mem_budget_kills",
          "server.watchdog_kills", "server.protocol_errors",
          "server.resyncs", "server.restarts", "server.fallback_trees",
          "server.blocked_trees", "server.discarded_results",
          "server.connections", "server.overloaded",
          "server.shed_queue_full", "server.shed_oldest",
          "server.shed_queue_deadline", "server.shed_admission_deadline",
          "server.shed_draining", "server.drains", "server.reloads",
          "server.reload_failures"})
      stats().counter(Name);
    stats().histogram("server.request_ms");
    stats().histogram("server.queue_depth");
    stats().histogram("server.queue_wait_ms");
    return true;
  }();
  (void)Done;
}

/// Writes all of \p Data to \p Fd, retrying short writes and EINTR.
/// Returns false once the peer is gone (EPIPE/ECONNRESET); SIGPIPE is
/// ignored process-wide while serving.
bool writeAll(int Fd, const char *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

/// Signal flags polled by the watchdog thread: a sigaction handler may
/// only touch lock-free atomics, so the actual drain/reload work happens
/// on the next watchdog scan (<= WatchdogIntervalMs later).
std::atomic<bool> SigDrainPending{false};
std::atomic<bool> SigReloadPending{false};

} // namespace

/// One output stream. Workers, the watchdog and the input pump all write
/// responses; the mutex keeps frames atomic on the wire.
struct Server::Conn {
  explicit Conn(int Fd) : Fd(Fd) {}
  int Fd;
  std::mutex WriteM;
  bool Broken = false;

  void writeFrame(FrameType Type, std::string_view Payload) {
    std::string Wire;
    appendFrame(Wire, Type, Payload);
    std::lock_guard<std::mutex> Lock(WriteM);
    if (Broken)
      return;
    if (!writeAll(Fd, Wire.data(), Wire.size()))
      Broken = true; // client gone; its remaining responses are discarded
  }

  void respond(const ResponseMsg &M) {
    writeFrame(FrameType::Response, encodeResponse(M));
  }
};

/// One admitted request. Shared by the queue, the owning worker and the
/// watchdog; Responded arbitrates who publishes the (single) response.
struct Server::Active {
  RequestMsg Req;
  std::shared_ptr<Conn> C;
  RequestBudget Budget;
  std::atomic<bool> Responded{false};
  uint64_t AdmitNs = 0;
  /// The id this request is traced/introspected under: the client's Id
  /// when nonzero, a server-minted one (high bit set) otherwise. The
  /// wire response always echoes the client's Id.
  uint64_t TraceId = 0;

  /// True for the caller that wins the right to respond.
  bool claimResponse() {
    bool Expected = false;
    return Responded.compare_exchange_strong(Expected, true,
                                             std::memory_order_acq_rel);
  }
};

Server::Server(CompileHandler Handler, ServerOptions Opts)
    : Handler(std::move(Handler)), Opts(Opts) {
  touchServerSchemaKeys();
  stats().counter("server.restarts") += Opts.Generation;
  LatRing = std::make_unique<LatSample[]>(LatRingSize);
  if (::pipe(WakePipe) != 0)
    WakePipe[0] = WakePipe[1] = -1;
}

void Server::recordLatency(uint64_t LatMs, bool Ok) {
  LatSample &S =
      LatRing[LatHead.fetch_add(1, std::memory_order_relaxed) % LatRingSize];
  S.DoneNs.store(0, std::memory_order_release);
  S.LatMs = static_cast<uint32_t>(std::min<uint64_t>(LatMs, 0xffffffffu));
  S.Ok = Ok ? 1 : 0;
  S.DoneNs.store(RequestBudget::nowNs(), std::memory_order_release);
}

std::string Server::statusJson() {
  uint64_t Now = RequestBudget::nowNs();
  constexpr uint64_t WindowNs = 10ull * 1000000000ull;
  // The window never extends before serving started, so RPS on a young
  // server divides by its real lifetime, not the full 10 s.
  uint64_t EffWindow =
      ServeStartNs && Now - ServeStartNs < WindowNs ? Now - ServeStartNs
                                                    : WindowNs;
  if (EffWindow == 0)
    EffWindow = 1;

  size_t Depth = 0;
  bool Draining = false;
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    Depth = Queue.size();
    Draining = Stopping;
  }

  std::string InFlightJson = "[";
  size_t NInFlight = 0;
  {
    std::lock_guard<std::mutex> Lock(ActiveM);
    for (const std::shared_ptr<Active> &A : InFlight) {
      if (A->Responded.load(std::memory_order_acquire))
        continue;
      RequestPhase P = A->Budget.Phase.load(std::memory_order_relaxed);
      InFlightJson += strf(
          "%s{\"id\":%llu,\"age_ms\":%llu,\"phase\":\"%s\"}",
          NInFlight ? "," : "",
          static_cast<unsigned long long>(A->TraceId),
          static_cast<unsigned long long>((Now - A->AdmitNs) / 1000000ull),
          requestPhaseName(P));
      ++NInFlight;
    }
  }
  InFlightJson += "]";

  // Windowed latency stats from the completion ring.
  std::vector<uint32_t> Lats;
  Lats.reserve(LatRingSize);
  uint64_t WinOk = 0;
  for (size_t I = 0; I < LatRingSize; ++I) {
    uint64_t Done = LatRing[I].DoneNs.load(std::memory_order_acquire);
    if (!Done || Now - Done > EffWindow)
      continue;
    Lats.push_back(LatRing[I].LatMs);
    WinOk += LatRing[I].Ok;
  }
  std::sort(Lats.begin(), Lats.end());
  auto Pct = [&](int P) -> uint64_t {
    if (Lats.empty())
      return 0;
    return Lats[Lats.size() * P / 100 >= Lats.size()
                    ? Lats.size() - 1
                    : Lats.size() * P / 100];
  };
  double WindowS = static_cast<double>(EffWindow) / 1e9;

  StatsRegistry &Reg = stats();
  std::string Counters = "{";
  bool FirstC = true;
  for (const char *Name :
       {"server.requests", "server.ok", "server.compile_errors",
        "server.quarantined", "server.watchdog_kills", "server.overloaded",
        "server.protocol_errors", "server.resyncs", "server.drains",
        "server.reloads", "server.reload_failures", "server.connections",
        "server.discarded_results"}) {
    Counters += strf("%s\"%s\":%llu", FirstC ? "" : ",", Name + 7,
                     static_cast<unsigned long long>(Reg.counter(Name)));
    FirstC = false;
  }
  Counters += "}";

  std::string Extra;
  {
    std::lock_guard<std::mutex> Lock(ReloadM);
    if (Augmenter)
      Extra = Augmenter();
  }

  std::string Out = strf(
      "{\"schema\":\"gg-status-v1\",\"uptime_ms\":%llu,\"workers\":%u,"
      "\"queue_depth\":%llu,\"executing\":%u,\"draining\":%d,"
      "\"reloading\":%d,\"in_flight\":%s,"
      "\"window_ms\":%llu,\"window\":{\"requests\":%llu,\"ok\":%llu,"
      "\"rps\":%.3f,\"goodput_rps\":%.3f,\"p50_ms\":%llu,\"p90_ms\":%llu,"
      "\"p99_ms\":%llu},\"counters\":%s",
      static_cast<unsigned long long>(
          ServeStartNs ? (Now - ServeStartNs) / 1000000ull : 0),
      ResolvedWorkers, static_cast<unsigned long long>(Depth),
      Executing.load(std::memory_order_relaxed), Draining ? 1 : 0,
      ReloadRunning.load(std::memory_order_acquire) ? 1 : 0,
      InFlightJson.c_str(),
      static_cast<unsigned long long>(EffWindow / 1000000ull),
      static_cast<unsigned long long>(Lats.size()),
      static_cast<unsigned long long>(WinOk),
      static_cast<double>(Lats.size()) / WindowS,
      static_cast<double>(WinOk) / WindowS,
      static_cast<unsigned long long>(Pct(50)),
      static_cast<unsigned long long>(Pct(90)),
      static_cast<unsigned long long>(Pct(99)), Counters.c_str());
  if (!Extra.empty()) {
    Out += ',';
    Out += Extra;
  }
  Out += '}';
  return Out;
}

Server::~Server() {
  stopWatchdog();
  joinReloadThread();
  for (int Fd : WakePipe)
    if (Fd >= 0)
      ::close(Fd);
}

void Server::notifySignal(int Sig) {
  if (Sig == SIGHUP)
    SigReloadPending.store(true, std::memory_order_relaxed);
  else
    SigDrainPending.store(true, std::memory_order_relaxed);
}

void Server::wakePumps() {
  // The byte is deliberately never read back: every pumpInput poller —
  // present and future — must see the pipe readable and stop.
  if (WakePipe[1] >= 0)
    (void)writeAll(WakePipe[1], "w", 1);
}

void Server::requestDrain() {
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    if (Stopping)
      return;
    Stopping = true;
    DrainStartNs = RequestBudget::nowNs();
  }
  ++stats().counter("server.drains");
  flightRecord(FlightKind::Drain);
  closeQueue(); // queued work still completes; only admissions stop
  wakePumps();
}

void Server::requestReload() {
  ReloadWanted.store(true, std::memory_order_release);
  WatchdogCV.notify_all();
}

void Server::joinReloadThread() {
  if (ReloadThread.joinable())
    ReloadThread.join();
}

void Server::startWatchdog() {
  WatchdogStop = false;
  Watchdog = std::thread([this] {
    std::unique_lock<std::mutex> Lock(WatchdogM);
    while (!WatchdogStop) {
      WatchdogCV.wait_for(Lock,
                          std::chrono::milliseconds(Opts.WatchdogIntervalMs));
      if (WatchdogStop)
        return;
      Lock.unlock();
      watchdogScan();
      Lock.lock();
    }
  });
}

void Server::stopWatchdog() {
  if (!Watchdog.joinable())
    return;
  {
    std::lock_guard<std::mutex> Lock(WatchdogM);
    WatchdogStop = true;
  }
  WatchdogCV.notify_all();
  Watchdog.join();
}

void Server::watchdogScan() {
  uint64_t Now = RequestBudget::nowNs();
  uint64_t GraceNs = Opts.WatchdogGraceMs * 1000000ull;

  // Operator signals land here: the sigaction handler only sets a flag,
  // the watchdog does the actual lifecycle work on its own thread.
  if (SigDrainPending.exchange(false, std::memory_order_acq_rel))
    requestDrain();
  if (SigReloadPending.exchange(false, std::memory_order_acq_rel))
    requestReload();

  // Launch a requested reload, serializing back-to-back requests: if one
  // is still running, leave the flag set for the next scan.
  if (ReloadWanted.load(std::memory_order_acquire)) {
    if (ReloadRunning.load(std::memory_order_acquire) == false &&
        ReloadWanted.exchange(false, std::memory_order_acq_rel)) {
      joinReloadThread();
      ReloadRunning.store(true, std::memory_order_release);
      ReloadThread = std::thread([this] { runReload(); });
    }
  }

  // A drain past its deadline stops being graceful: shed whatever is
  // still queued and cancel what is executing (cooperatively — the
  // budget poll turns it into a Deadline response within microseconds).
  bool DrainExpired = false;
  std::deque<std::shared_ptr<Active>> Left;
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    if (Stopping && Now > DrainStartNs + Opts.DrainDeadlineMs * 1000000ull) {
      DrainExpired = true;
      Left.swap(Queue);
    }
  }
  if (DrainExpired) {
    QueueCV.notify_all();
    for (const std::shared_ptr<Active> &A : Left)
      shed(A, OverloadCause::Draining, 0, true);
    std::lock_guard<std::mutex> Lock(ActiveM);
    for (const std::shared_ptr<Active> &A : InFlight)
      A->Budget.Cancelled.store(true, std::memory_order_relaxed);
  }
  std::vector<std::shared_ptr<Active>> Snapshot;
  {
    std::lock_guard<std::mutex> Lock(ActiveM);
    Snapshot = InFlight;
  }
  for (const std::shared_ptr<Active> &A : Snapshot) {
    if (A->Responded.load(std::memory_order_acquire))
      continue;
    uint64_t Deadline = A->Budget.DeadlineNs;
    if (!Deadline || Now <= Deadline)
      continue;
    // Past the deadline: first ask nicely — the matcher's budget poll
    // aborts the parse within ~BudgetPollMask steps.
    A->Budget.Cancelled.store(true, std::memory_order_relaxed);
    if (Now <= Deadline + GraceNs)
      continue;
    // Still running a grace period later: the worker is wedged (e.g. the
    // stall-worker fault sleeping through the deadline). Fail exactly
    // this request; the worker rejoins the pool when it wakes, and its
    // result is discarded by the Responded flag.
    if (!A->claimResponse())
      continue;
    ++stats().counter("server.watchdog_kills");
    ++stats().counter("server.quarantined");
    flightRecordFor(FlightKind::WatchdogKill, A->TraceId, 0,
                    static_cast<int64_t>((Now - Deadline) / 1000000ull));
    ResponseMsg M;
    M.Id = A->Req.Id;
    M.Status = ResponseStatus::Watchdog;
    M.Payload = strf("request %llu abandoned: worker unresponsive %llums "
                     "past its deadline",
                     static_cast<unsigned long long>(A->Req.Id),
                     static_cast<unsigned long long>((Now - Deadline) /
                                                     1000000ull));
    A->C->respond(M);
    // A wedged worker is the flight recorder's raison d'etre: dump now,
    // while the kill is the freshest event in the rings, so the operator
    // sees which request (and which phase events led up to it) wedged.
    flightDump("watchdog-kill");
  }
}

void Server::closeQueue() {
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    Closed = true;
  }
  QueueCV.notify_all();
}

uint64_t Server::estimateWaitNs(size_t Depth) const {
  uint64_t Per =
      std::max<uint64_t>(EwmaServiceNs.load(std::memory_order_relaxed),
                         Opts.AdmissionEstimateFloorMs * 1000000ull);
  unsigned W = ResolvedWorkers ? ResolvedWorkers : 1;
  return static_cast<uint64_t>(Depth) * Per / W;
}

void Server::shed(const std::shared_ptr<Active> &A, OverloadCause Cause,
                  uint32_t QueueDepth, bool InFlightToo) {
  if (InFlightToo) {
    std::lock_guard<std::mutex> Lock(ActiveM);
    InFlight.erase(std::remove(InFlight.begin(), InFlight.end(), A),
                   InFlight.end());
  }
  if (!A->claimResponse())
    return; // the watchdog already answered for this request
  StatsRegistry &Reg = stats();
  ++Reg.counter("server.overloaded");
  flightRecordFor(FlightKind::Shed, A->TraceId, 0,
                  static_cast<int64_t>(Cause));
  switch (Cause) {
  case OverloadCause::QueueFull:
    ++Reg.counter("server.shed_queue_full");
    break;
  case OverloadCause::ShedOldest:
    ++Reg.counter("server.shed_oldest");
    break;
  case OverloadCause::QueueDeadline:
    ++Reg.counter("server.shed_queue_deadline");
    break;
  case OverloadCause::AdmissionDeadline:
    ++Reg.counter("server.shed_admission_deadline");
    break;
  case OverloadCause::Draining:
    ++Reg.counter("server.shed_draining");
    break;
  }
  OverloadMsg M;
  M.Id = A->Req.Id;
  M.QueueDepth = QueueDepth;
  M.Cause = Cause;
  // Retry-after: the estimated time for the backlog ahead of a retry to
  // clear. During a drain the process is going away — point the client
  // at the supervisor's restart horizon instead.
  uint64_t RetryMs =
      Cause == OverloadCause::Draining
          ? 1000
          : estimateWaitNs(std::max<size_t>(QueueDepth, 1)) / 1000000ull;
  M.RetryAfterMs =
      static_cast<uint32_t>(std::clamp<uint64_t>(RetryMs, 1, 5000));
  A->C->writeFrame(FrameType::Overloaded, encodeOverload(M));
}

void Server::runReload() {
  TraceSpan Span("server.reload");
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    PauseDispatch = true;
  }
  // Drain the handlers (not the queue: admissions keep queueing, so a
  // reload drops zero requests). Past the deadline we swap anyway —
  // stragglers are safe, they pinned the old image at snapshot time.
  uint64_t Deadline =
      RequestBudget::nowNs() + Opts.DrainDeadlineMs * 1000000ull;
  while (Executing.load(std::memory_order_acquire) > 0 &&
         RequestBudget::nowNs() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));

  std::string Err;
  uint64_t Gen = 0;
  bool Ok = false;
  ReloadHandler R;
  {
    std::lock_guard<std::mutex> Lock(ReloadM);
    R = Reloader;
  }
  if (R)
    Ok = R(Gen, Err);
  else
    Err = "no reloader installed";

  {
    std::lock_guard<std::mutex> Lock(QueueM);
    PauseDispatch = false;
  }
  QueueCV.notify_all();

  std::vector<std::shared_ptr<Conn>> Acks;
  {
    std::lock_guard<std::mutex> Lock(ReloadM);
    Acks.swap(ReloadAcks);
  }
  ReloadedMsg M;
  M.Generation = Gen;
  M.Ok = Ok ? 1 : 0;
  M.Text = Err;
  std::string Payload = encodeReloaded(M);
  for (const std::shared_ptr<Conn> &C : Acks)
    C->writeFrame(FrameType::Reloaded, Payload);
  // Count only after the acks are claimed and written: observers that
  // serialize reloads through this counter (tests, drills) must not see
  // reload N complete while its ack queue is still open — a Reload frame
  // sent at that instant would be acked by reload N with N's generation
  // instead of starting reload N+1.
  ++stats().counter(Ok ? "server.reloads" : "server.reload_failures");
  flightRecordFor(FlightKind::Reload, 0, Gen, Ok ? 1 : 0);
  ReloadRunning.store(false, std::memory_order_release);
}

void Server::admit(const std::shared_ptr<Conn> &C, RequestMsg Req) {
  auto A = std::make_shared<Active>();
  A->Req = std::move(Req);
  A->C = C;
  A->AdmitNs = RequestBudget::nowNs();
  A->TraceId = A->Req.Id
                   ? A->Req.Id
                   : (0x8000000000000000ull |
                      NextTraceId.fetch_add(1, std::memory_order_relaxed));
  // ~0u is the explicit "no deadline" escape hatch; 0 means "server
  // default". Budgets follow the same convention.
  uint32_t DeadlineMs = A->Req.DeadlineMs == 0
                            ? static_cast<uint32_t>(std::min<uint64_t>(
                                  Opts.DefaultDeadlineMs, 0xfffffffeu))
                            : A->Req.DeadlineMs;
  if (DeadlineMs != 0xffffffffu)
    A->Budget.arm(DeadlineMs);
  A->Budget.MaxSteps =
      A->Req.MaxSteps ? A->Req.MaxSteps : Opts.DefaultMaxSteps;
  A->Budget.MaxArenaBytes = static_cast<size_t>(
      A->Req.MaxArenaBytes ? A->Req.MaxArenaBytes : Opts.DefaultMaxArenaBytes);
  {
    std::lock_guard<std::mutex> Lock(ActiveM);
    InFlight.push_back(A);
  }

  // Admission control. Decide under the queue lock, act (write frames)
  // outside it.
  bool DoShed = false;
  OverloadCause Cause = OverloadCause::QueueFull;
  size_t Depth = 0;
  std::shared_ptr<Active> Victim;
  const uint64_t TraceId = A->TraceId; // A is moved into the queue below
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    Depth = Queue.size();
    stats().histogram("server.queue_depth").record(Depth);
    if (Stopping) {
      DoShed = true;
      Cause = OverloadCause::Draining;
    } else if (A->Budget.DeadlineNs) {
      // Reject-at-admission: if the estimated queue wait alone blows the
      // request's deadline, shedding now is strictly cheaper than
      // queueing it to die — the client learns in O(RTT), not O(deadline).
      uint64_t Est = estimateWaitNs(Depth);
      if (Est && A->AdmitNs + Est > A->Budget.DeadlineNs) {
        DoShed = true;
        Cause = OverloadCause::AdmissionDeadline;
      }
    }
    if (!DoShed) {
      if (Opts.MaxQueueDepth && Depth >= Opts.MaxQueueDepth) {
        if (Opts.Shed == ShedPolicy::RejectNewest) {
          DoShed = true;
          Cause = OverloadCause::QueueFull;
        } else {
          Victim = Queue.front();
          Queue.pop_front();
          Queue.push_back(std::move(A));
        }
      } else {
        Queue.push_back(std::move(A));
      }
    }
  }
  if (DoShed) {
    shed(A, Cause, static_cast<uint32_t>(Depth), /*InFlightToo=*/true);
    return;
  }
  // A near-zero-duration span marking the admission instant: gg-report
  // --trace computes queue wait as server.request start minus this span's
  // start, and the explicit req arg joins the two.
  {
    TraceSpan AdmitSpan("server.admit");
    AdmitSpan.arg("req", static_cast<int64_t>(TraceId));
    AdmitSpan.arg("depth", static_cast<int64_t>(Depth));
  }
  flightRecordFor(FlightKind::Admit, TraceId, 0,
                  static_cast<int64_t>(Depth));
  if (Victim)
    shed(Victim, OverloadCause::ShedOldest, static_cast<uint32_t>(Depth),
         /*InFlightToo=*/true);
  QueueCV.notify_one();
}

void Server::serveOne(const std::shared_ptr<Active> &A) {
  StatsRegistry &Reg = stats();
  ++Reg.counter("server.requests");
  // The span is created *outside* the request scope (its req/gen/status
  // args are attached explicitly below, once the handler has told us the
  // serving generation), so it is not double-tagged by TraceSpan's
  // automatic request stamping.
  TraceSpan Span("server.request");
  uint64_t StartNs = RequestBudget::nowNs();
  uint64_t QueueWaitMs = (StartNs - A->AdmitNs) / 1000000ull;
  Reg.histogram("server.queue_wait_ms").record(QueueWaitMs);
  flightRecordFor(FlightKind::Dispatch, A->TraceId, 0,
                  static_cast<int64_t>(QueueWaitMs));
  Executing.fetch_add(1, std::memory_order_acq_rel);
  // Soak drill: the overload-burst fault inflates service time here — in
  // the server's dispatch path, not the compile pipeline, so gg-load's
  // in-process verify oracle is unaffected by a shared GG_FAULT.
  faultInject().overloadBurst();
  HandlerResult R;
  {
    // Everything the handler does — phase spans, flight events, block
    // reports — is attributed to this request via the thread-local scope.
    // The service layer patches in the generation once it pins a snapshot.
    RequestScope Scope(A->TraceId);
    try {
      R = Handler(A->Req, A->Budget);
    } catch (...) {
      // The handler contract is exception-free; honor the quarantine
      // promise anyway rather than unwinding out of the pool.
      R.Status = ResponseStatus::CompileError;
      R.Payload = "internal error: handler threw";
    }
  }
  A->Budget.setPhase(RequestPhase::Responding);
  // Service-time EWMA (alpha = 1/8) feeding the admission estimator.
  uint64_t Sample = RequestBudget::nowNs() - StartNs;
  uint64_t Prev = EwmaServiceNs.load(std::memory_order_relaxed);
  EwmaServiceNs.store(Prev ? Prev - Prev / 8 + Sample / 8 : Sample,
                      std::memory_order_relaxed);

  Reg.counter("server.fallback_trees") += R.RecoveredTrees;
  Reg.counter("server.blocked_trees") += R.BlockedTrees;

  Span.arg("req", static_cast<int64_t>(A->TraceId));
  Span.arg("gen", static_cast<int64_t>(R.Generation));
  Span.arg("status", static_cast<int64_t>(R.Status));
  Span.arg("queue_wait_ms", static_cast<int64_t>(QueueWaitMs));

  if (!A->claimResponse()) {
    // The watchdog already failed this request; drop the late result.
    ++Reg.counter("server.discarded_results");
  } else {
    switch (R.Status) {
    case ResponseStatus::Deadline:
    case ResponseStatus::StepBudget:
    case ResponseStatus::MemBudget:
      flightRecordFor(FlightKind::BudgetKill, A->TraceId, R.Generation,
                      static_cast<int64_t>(R.Status));
      break;
    default:
      break;
    }
    switch (R.Status) {
    case ResponseStatus::Ok:
      ++Reg.counter("server.ok");
      break;
    case ResponseStatus::CompileError:
      ++Reg.counter("server.compile_errors");
      break;
    case ResponseStatus::Deadline:
      ++Reg.counter("server.deadline_kills");
      ++Reg.counter("server.quarantined");
      break;
    case ResponseStatus::StepBudget:
      ++Reg.counter("server.step_budget_kills");
      ++Reg.counter("server.quarantined");
      break;
    case ResponseStatus::MemBudget:
      ++Reg.counter("server.mem_budget_kills");
      ++Reg.counter("server.quarantined");
      break;
    case ResponseStatus::Watchdog:
    case ResponseStatus::Protocol:
      ++Reg.counter("server.quarantined");
      break;
    }
    ResponseMsg M;
    M.Id = A->Req.Id;
    M.Status = R.Status;
    M.BlockedTrees = R.BlockedTrees;
    M.RecoveredTrees = R.RecoveredTrees;
    M.Generation = R.Generation;
    M.Payload = std::move(R.Payload);
    A->C->respond(M);
    uint64_t TotalMs = (RequestBudget::nowNs() - A->AdmitNs) / 1000000ull;
    Reg.histogram("server.request_ms").record(TotalMs);
    recordLatency(TotalMs, R.Status == ResponseStatus::Ok);
    flightRecordFor(FlightKind::Respond, A->TraceId, R.Generation,
                    static_cast<int64_t>(R.Status));
  }
  // Decrement only after the response is on the wire: a reload waits for
  // Executing==0 before swapping and acking, and clients assert that
  // generations never regress in stream order — an earlier decrement
  // would let a new-generation ack overtake an old-generation response.
  Executing.fetch_sub(1, std::memory_order_acq_rel);

  std::lock_guard<std::mutex> Lock(ActiveM);
  InFlight.erase(std::remove(InFlight.begin(), InFlight.end(), A),
                 InFlight.end());
}

void Server::drainQueue() {
  while (true) {
    std::shared_ptr<Active> A;
    {
      std::unique_lock<std::mutex> Lock(QueueM);
      // A paused dispatch (reload drain) holds workers here — unless the
      // queue has Closed, in which case drain-to-exit wins.
      QueueCV.wait(Lock, [this] {
        return Closed || (!PauseDispatch && !Queue.empty());
      });
      if (Queue.empty())
        return; // Closed and drained
      A = std::move(Queue.front());
      Queue.pop_front();
    }
    // Queueing deadline: a request that sat in the queue too long is
    // answered with a structured shed, not a worker it no longer wants.
    if (Opts.QueueDeadlineMs &&
        RequestBudget::nowNs() - A->AdmitNs >
            Opts.QueueDeadlineMs * 1000000ull) {
      shed(A, OverloadCause::QueueDeadline, 0, /*InFlightToo=*/true);
      continue;
    }
    serveOne(A);
  }
}

void Server::pumpInput(const std::shared_ptr<Conn> &C, int InFd,
                       bool &SawShutdown) {
  SawShutdown = false;
  FrameReader Reader;
  char Chunk[65536];
  StatsRegistry &Reg = stats();
  while (true) {
    Frame F;
    FrameReader::Status S = Reader.next(F);
    if (S == FrameReader::Status::NeedMore) {
      // Block in poll() rather than read() so a drain can wake us via the
      // self-pipe: pipes have no ::shutdown, and closing the fd under a
      // blocked reader is a race.
      pollfd P[2];
      P[0] = {InFd, POLLIN, 0};
      P[1] = {WakePipe[0], POLLIN, 0};
      int NFds = WakePipe[0] >= 0 ? 2 : 1;
      int PR = ::poll(P, static_cast<nfds_t>(NFds), -1);
      if (PR < 0) {
        if (errno == EINTR)
          continue;
        return;
      }
      if (NFds == 2 && (P[1].revents & POLLIN))
        return; // drain wake: stop reading; queued work still completes
      if (!P[0].revents)
        continue;
      ssize_t N = ::read(InFd, Chunk, sizeof(Chunk));
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0) {
        // EOF mid-frame is itself a protocol event worth counting: the
        // client died between header and payload.
        if (Reader.buffered() > 0)
          ++Reg.counter("server.protocol_errors");
        return;
      }
      Reader.feed(Chunk, static_cast<size_t>(N));
      continue;
    }
    if (S == FrameReader::Status::Corrupt) {
      // Quarantine the poisoned bytes, tell the client, keep serving.
      ++Reg.counter("server.resyncs");
      ++Reg.counter("server.protocol_errors");
      ResponseMsg M;
      M.Status = ResponseStatus::Protocol;
      M.Payload = Reader.error();
      C->respond(M);
      continue;
    }
    switch (F.Type) {
    case FrameType::Request: {
      RequestMsg Req;
      std::string Err;
      if (!decodeRequest(F.Payload, Req, Err)) {
        ++Reg.counter("server.protocol_errors");
        ResponseMsg M;
        M.Status = ResponseStatus::Protocol;
        M.Payload = "bad request payload: " + Err;
        C->respond(M);
        break;
      }
      admit(C, std::move(Req));
      break;
    }
    case FrameType::Ping:
      C->writeFrame(FrameType::Pong, F.Payload);
      break;
    case FrameType::Shutdown:
      SawShutdown = true;
      return;
    case FrameType::Reload:
      // Hot table reload, the control-frame path (SIGHUP is the other).
      // The ack arrives as a Reloaded frame once the swap completes.
      {
        std::lock_guard<std::mutex> Lock(ReloadM);
        ReloadAcks.push_back(C);
      }
      requestReload();
      break;
    case FrameType::Crash:
      if (Opts.AllowCrash) {
        // Crash drill: die the crash-only way — no draining, no flushing,
        // the supervisor's problem now. A signal death (not ExitFatalFault,
        // which means "restart cannot help") so the supervisor restarts us.
        ::abort();
      }
      ++Reg.counter("server.protocol_errors");
      {
        ResponseMsg M;
        M.Status = ResponseStatus::Protocol;
        M.Payload = "crash frames are disabled on this server";
        C->respond(M);
      }
      break;
    case FrameType::Status: {
      // Live introspection: answered inline on the pump thread so a
      // snapshot works even when every worker is busy — that is exactly
      // when the operator wants one.
      StatusMsg SM;
      std::string Err;
      if (!decodeStatus(F.Payload, SM, Err)) {
        ++Reg.counter("server.protocol_errors");
        ResponseMsg M;
        M.Status = ResponseStatus::Protocol;
        M.Payload = "bad status payload: " + Err;
        C->respond(M);
        break;
      }
      StatusReplyMsg RM;
      RM.Id = SM.Id;
      RM.Text = statusJson();
      C->writeFrame(FrameType::StatusReply, encodeStatusReply(RM));
      break;
    }
    case FrameType::Response:
    case FrameType::Pong:
    case FrameType::Overloaded:
    case FrameType::Reloaded:
    case FrameType::StatusReply:
      ++Reg.counter("server.protocol_errors");
      break;
    }
  }
}

int Server::serveFds(int InFd, int OutFd) {
  ::signal(SIGPIPE, SIG_IGN);
  auto C = std::make_shared<Conn>(OutFd);
  ++stats().counter("server.connections");
  ResolvedWorkers = resolveWorkerCount(Opts.Workers, 1u << 16);
  ServeStartNs = RequestBudget::nowNs();
  startWatchdog();

  bool SawShutdown = false;
  std::thread Reader([&] {
    pumpInput(C, InFd, SawShutdown);
    closeQueue();
  });

  // The drain loops ride the PR-4 work-stealing pool: each index hosts
  // one worker, the caller participates as worker 0, and Workers=1 is a
  // plain serial server.
  ParallelOptions PO;
  PO.Threads = static_cast<int>(ResolvedWorkers);
  parallelFor(ResolvedWorkers, PO, [this](size_t) { drainQueue(); });

  wakePumps(); // the queue is closed and drained; unblock the pump
  Reader.join();
  joinReloadThread();
  stopWatchdog();
  (void)SawShutdown; // EOF, Shutdown and drain all finish work, exit cleanly
  return ExitOk;
}

int Server::serveUnixSocket(const std::string &Path) {
  ::signal(SIGPIPE, SIG_IGN);
  int ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    fprintf(stderr, "serve: socket(): %s\n", strerror(errno));
    return ExitFatalFault;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    fprintf(stderr, "serve: socket path too long: %s\n", Path.c_str());
    ::close(ListenFd);
    return ExitUsage;
  }
  strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  ::unlink(Path.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(ListenFd, 64) < 0) {
    fprintf(stderr, "serve: bind/listen(%s): %s\n", Path.c_str(),
            strerror(errno));
    ::close(ListenFd);
    return ExitFatalFault;
  }

  ResolvedWorkers = resolveWorkerCount(Opts.Workers, 1u << 16);
  ServeStartNs = RequestBudget::nowNs();
  startWatchdog();
  std::atomic<bool> Shut{false};
  std::mutex ConnsM;
  std::vector<std::shared_ptr<Conn>> Conns;
  std::vector<std::thread> ConnThreads;

  std::thread Acceptor([&] {
    while (!Shut.load(std::memory_order_relaxed)) {
      int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0) {
        if (errno == EINTR)
          continue;
        break; // listen fd closed: shutting down
      }
      ++stats().counter("server.connections");
      auto C = std::make_shared<Conn>(Fd);
      std::lock_guard<std::mutex> Lock(ConnsM);
      Conns.push_back(C);
      ConnThreads.emplace_back([this, C, Fd, &Shut, ListenFd] {
        bool SawShutdown = false;
        pumpInput(C, Fd, SawShutdown);
        if (SawShutdown && !Shut.exchange(true)) {
          // First Shutdown frame wins: stop accepting, then unblock the
          // acceptor and every idle connection reader.
          ::shutdown(ListenFd, SHUT_RDWR);
          closeQueue();
        }
      });
    }
  });

  // Workers drain until the queue closes (Shutdown frame or drain).
  ParallelOptions PO;
  PO.Threads = static_cast<int>(ResolvedWorkers);
  parallelFor(ResolvedWorkers, PO, [this](size_t) { drainQueue(); });

  // Closed queue means shutdown: kick still-open connections loose.
  Shut.store(true);
  wakePumps();
  ::shutdown(ListenFd, SHUT_RDWR);
  Acceptor.join();
  {
    std::lock_guard<std::mutex> Lock(ConnsM);
    for (const std::shared_ptr<Conn> &C : Conns)
      ::shutdown(C->Fd, SHUT_RDWR);
  }
  for (std::thread &T : ConnThreads)
    T.join();
  {
    std::lock_guard<std::mutex> Lock(ConnsM);
    for (const std::shared_ptr<Conn> &C : Conns)
      ::close(C->Fd);
  }
  ::close(ListenFd);
  ::unlink(Path.c_str());
  joinReloadThread();
  stopWatchdog();
  return ExitOk;
}
