//===- Stats.cpp - process-wide counters and histograms ---------------------===//

#include "support/Stats.h"
#include "support/Strings.h"

using namespace gg;

StatsRegistry &StatsRegistry::global() {
  static StatsRegistry R;
  return R;
}

void StatsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &[Name, V] : Counters)
    V.store(0, std::memory_order_relaxed);
  for (auto &[Name, V] : Values)
    V.store(0, std::memory_order_relaxed);
  for (auto &[Name, H] : Histograms)
    H.reset();
}

std::string gg::jsonEscape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += strf("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

std::string StatsRegistry::toJson() const {
  std::lock_guard<std::mutex> Lock(M);
  std::string Out = "{\"schema\":\"gg-stats-v1\",\"counters\":{";
  bool First = true;
  for (const auto &[Name, V] : Counters) {
    Out += strf("%s\"%s\":%llu", First ? "" : ",", jsonEscape(Name).c_str(),
                static_cast<unsigned long long>(
                    V.load(std::memory_order_relaxed)));
    First = false;
  }
  Out += "},\"values\":{";
  First = true;
  for (const auto &[Name, V] : Values) {
    Out += strf("%s\"%s\":%.9g", First ? "" : ",", jsonEscape(Name).c_str(),
                V.load(std::memory_order_relaxed));
    First = false;
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    Out += strf("%s\"%s\":{\"count\":%llu,\"sum\":%llu,\"min\":%llu,"
                "\"max\":%llu,\"mean\":%.6g,\"buckets\":{",
                First ? "" : ",", jsonEscape(Name).c_str(),
                static_cast<unsigned long long>(H.count()),
                static_cast<unsigned long long>(H.sum()),
                static_cast<unsigned long long>(H.min()),
                static_cast<unsigned long long>(H.max()), H.mean());
    bool FirstB = true;
    for (int W = 0; W <= 64; ++W) {
      if (!H.bucket(W))
        continue;
      Out += strf("%s\"%llu\":%llu", FirstB ? "" : ",",
                  static_cast<unsigned long long>(LogHistogram::bucketUpper(W)),
                  static_cast<unsigned long long>(H.bucket(W)));
      FirstB = false;
    }
    Out += "}}";
    First = false;
  }
  Out += "}}";
  return Out;
}

std::string StatsRegistry::toText() const {
  std::lock_guard<std::mutex> Lock(M);
  std::string Out;
  for (const auto &[Name, V] : Counters)
    Out += strf("%-40s %12llu\n", Name.c_str(),
                static_cast<unsigned long long>(
                    V.load(std::memory_order_relaxed)));
  for (const auto &[Name, V] : Values)
    Out += strf("%-40s %12.6f\n", Name.c_str(),
                V.load(std::memory_order_relaxed));
  for (const auto &[Name, H] : Histograms)
    Out += strf("%-40s n=%llu min=%llu mean=%.1f max=%llu\n", Name.c_str(),
                static_cast<unsigned long long>(H.count()),
                static_cast<unsigned long long>(H.min()), H.mean(),
                static_cast<unsigned long long>(H.max()));
  return Out;
}
