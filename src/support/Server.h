//===- Server.h - fault-isolated compile server -----------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon core behind `compile_minic --serve` (docs/server.md): a
/// long-lived, multi-tenant service over the Frame protocol. This layer
/// owns transports (stdin/stdout frames, a local Unix socket), the
/// request queue, the worker pool dispatch, the request-quarantine layer
/// (per-request RequestBudget with deadlines and step/stack/memory
/// budgets), and the watchdog that fails a wedged request without taking
/// the process down. What "compile" means is injected as a handler, so
/// support stays the bottom layer: the real handler (frontend + table-
/// driven code generator + PCC fallback ladder) is cg/CompileService.
///
/// Robustness contract (the crash-only design):
///   * shared state (grammar/tables) is immutable after startup and
///     checksum-verified, so requests cannot poison each other;
///   * every recoverable failure — bad source, syntactic block, budget
///     exhaustion, malformed frame — becomes a structured Response/resync,
///     never a process exit;
///   * a wedged worker (stall-worker fault, runaway parse) is detected by
///     the watchdog: its request is failed and abandoned, the worker
///     rejoins the pool when it eventually returns;
///   * anything else (broken invariants, fatal signals) kills the process,
///     and the supervisor loop in scripts/serve.sh restarts it with capped
///     exponential backoff. Clients replay in-flight requests at most
///     once — safe because a response is a pure function of the request.
///
/// Worker dispatch rides the PR-4 work-stealing pool: serve() calls
/// parallelFor(Workers, ...) where each index hosts a queue-drain loop, so
/// the caller participates as worker 0 and Workers=1 degenerates to a
/// serial server.
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_SERVER_H
#define GG_SUPPORT_SERVER_H

#include "support/Deadline.h"
#include "support/Frame.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gg {

/// What to do when the bounded queue is full and another request arrives.
enum class ShedPolicy {
  RejectNewest, ///< shed the arriving request (FIFO fairness)
  ShedOldest,   ///< displace the oldest queued request (LIFO freshness:
                ///< under sustained overload the newest work is the most
                ///< likely to still meet its deadline)
};

/// Server tunables (the --serve-* flag surface).
struct ServerOptions {
  /// Worker threads draining the request queue. 0 = hardware concurrency.
  int Workers = 0;
  /// Default per-request deadline when the request does not carry one.
  /// 0 = no deadline.
  uint64_t DefaultDeadlineMs = 10000;
  /// Default matcher step budget per request. 0 = unlimited.
  uint64_t DefaultMaxSteps = 200u << 20;
  /// Default per-arena byte budget per request. 0 = unlimited.
  uint64_t DefaultMaxArenaBytes = 256u << 20;
  /// Watchdog scan interval.
  uint64_t WatchdogIntervalMs = 20;
  /// Grace past the deadline before a still-running request is declared
  /// wedged and force-failed (the worker's eventual result is discarded).
  uint64_t WatchdogGraceMs = 500;
  /// Honor Crash frames (supervisor drills). Off by default: a stray or
  /// malicious Crash frame must not kill a production server.
  bool AllowCrash = false;
  /// Supervisor generation (scripts/serve.sh --serve-generation=N): how
  /// many times this server has been restarted; exported as
  /// server.restarts so the stats artifact shows supervisor activity.
  uint64_t Generation = 0;
  /// Admission control: queued-request cap. 0 = unbounded (the PR-7
  /// behavior). When the cap is hit, Shed decides who gets the
  /// Overloaded frame.
  size_t MaxQueueDepth = 0;
  /// Max time a request may sit queued before it is shed at dequeue with
  /// an Overloaded(queue-deadline) frame instead of burning a worker on
  /// work the client has likely given up on. 0 = no queueing deadline.
  uint64_t QueueDeadlineMs = 0;
  /// Full-queue policy (see ShedPolicy).
  ShedPolicy Shed = ShedPolicy::RejectNewest;
  /// How long a drain (SIGTERM) or reload (SIGHUP / Reload frame) waits
  /// for in-flight work before giving up: a drain sheds what is left, a
  /// reload swaps anyway (in-flight requests keep the old image via their
  /// snapshot).
  uint64_t DrainDeadlineMs = 10000;
  /// Floor for the per-request service-time estimate used by
  /// admission-deadline rejection, in ms. The live estimate is an EWMA of
  /// observed service times; the floor makes rejection deterministic in
  /// tests and lets operators encode "requests never finish faster than
  /// X". 0 = EWMA only.
  uint64_t AdmissionEstimateFloorMs = 0;
};

/// Everything the handler reports back for one request.
struct HandlerResult {
  ResponseStatus Status = ResponseStatus::Ok;
  std::string Payload; ///< assembly on Ok, rendered diagnostics otherwise
  uint32_t BlockedTrees = 0;
  uint32_t RecoveredTrees = 0;
  uint64_t Generation = 0; ///< table image generation that served this
};

/// The compile function: pure in the request (byte-identical output for
/// byte-identical input), cooperative in the budget. Runs on a pool
/// worker; must not throw or exit for recoverable failures.
using CompileHandler =
    std::function<HandlerResult(const RequestMsg &Req, RequestBudget &Budget)>;

/// The hot-reload function: rebuilds and verifies a fresh table image,
/// atomically swapping it in on success. Reports the generation now
/// serving (old on failure, new on success). Must be safe to run while
/// requests using the *old* image are still in flight.
using ReloadHandler =
    std::function<bool(uint64_t &NewGeneration, std::string &Err)>;

/// Extra members the service layer contributes to the Status snapshot
/// (table generation, grammar fingerprint). Returns raw JSON members
/// without braces, e.g. `"generation":3,"fingerprint":"ab12..."`; empty
/// means nothing to add. Must be thread-safe (runs on pump threads).
using StatusAugmenter = std::function<std::string()>;

/// The long-lived server. One instance per process; serve*() blocks until
/// shutdown and returns the process exit code.
class Server {
public:
  Server(CompileHandler Handler, ServerOptions Opts);
  ~Server();

  /// Serves the framed protocol on a pair of file descriptors (the stdio
  /// daemon mode: InFd=0, OutFd=1). Returns ExitOk on clean shutdown
  /// (Shutdown frame or EOF after draining).
  int serveFds(int InFd, int OutFd);

  /// Binds \p Path as a SOCK_STREAM Unix socket and serves each accepted
  /// connection (same framed protocol, any number of requests per
  /// connection). Returns ExitOk on clean shutdown, ExitFatalFault when
  /// the socket cannot be bound.
  int serveUnixSocket(const std::string &Path);

  /// Installs the hot-reload hook run for SIGHUP / Reload frames. Without
  /// one, reload requests are acked as failures and the image is kept.
  /// Thread-safe (the reload thread reads it under the same lock).
  void setReloader(ReloadHandler R) {
    std::lock_guard<std::mutex> Lock(ReloadM);
    Reloader = std::move(R);
  }

  /// Installs the Status-snapshot augmenter (service-layer members:
  /// generation, fingerprint). Install before serve*(); the hook runs on
  /// pump threads for every Status frame.
  void setStatusAugmenter(StatusAugmenter A) {
    std::lock_guard<std::mutex> Lock(ReloadM);
    Augmenter = std::move(A);
  }

  /// Builds the gg-status-v1 introspection snapshot served for Status
  /// frames: queue depth, in-flight requests with age and phase, a
  /// 10-second window of RPS/goodput/latency percentiles, and the
  /// lifecycle counters. Public so tests and tools can snapshot without
  /// a transport.
  std::string statusJson();

  /// Begins a graceful drain: new admissions are shed with
  /// Overloaded(draining), already-queued and in-flight work completes
  /// (bounded by DrainDeadlineMs via the watchdog), then serve*() returns
  /// ExitOk. Idempotent; safe from any thread. SIGTERM lands here.
  void requestDrain();

  /// Requests an asynchronous table reload: dispatch pauses, in-flight
  /// work drains (bounded by DrainDeadlineMs), the Reloader runs, then
  /// dispatch resumes. Admissions continue into the queue throughout, so
  /// a reload drops zero requests. SIGHUP and Reload frames land here.
  void requestReload();

  /// Async-signal-safe: records \p Sig (SIGTERM/SIGINT -> drain,
  /// SIGHUP -> reload) for the watchdog thread to act on at its next
  /// scan. Install from a sigaction handler.
  static void notifySignal(int Sig);

private:
  struct Conn;   ///< one output stream + write mutex
  struct Active; ///< one admitted, not-yet-responded request

  CompileHandler Handler;
  ServerOptions Opts;
  ReloadHandler Reloader;
  StatusAugmenter Augmenter; ///< guarded by ReloadM, like Reloader

  std::mutex QueueM;
  std::condition_variable QueueCV;
  std::deque<std::shared_ptr<Active>> Queue;
  bool Closed = false;        ///< no more requests will be enqueued
  bool Stopping = false;      ///< draining toward exit; admissions shed
  bool PauseDispatch = false; ///< reload in progress; workers hold off
  uint64_t DrainStartNs = 0;  ///< when Stopping was set

  std::mutex ActiveM;
  std::vector<std::shared_ptr<Active>> InFlight;

  /// EWMA of observed handler service time, feeding the admission-
  /// deadline wait estimate. Relaxed: an approximate estimate is fine.
  std::atomic<uint64_t> EwmaServiceNs{0};

  /// Windowed latency samples backing the Status snapshot's RPS/goodput
  /// and latency percentiles. A fixed ring of completion records; the
  /// snapshot keeps only samples inside its 10 s window. DoneNs doubles
  /// as the publish flag (0 = empty slot; stored last, release order).
  struct LatSample {
    std::atomic<uint64_t> DoneNs{0};
    uint32_t LatMs = 0;
    uint8_t Ok = 0;
  };
  static constexpr size_t LatRingSize = 4096;
  std::unique_ptr<LatSample[]> LatRing;
  std::atomic<uint32_t> LatHead{0};
  /// When serve*() started accepting work (for uptime and short windows).
  uint64_t ServeStartNs = 0;
  /// Trace ids minted for requests whose clients sent Id = 0; the high
  /// bit keeps minted ids disjoint from client-chosen ones.
  std::atomic<uint64_t> NextTraceId{1};

  /// Records one completed request into the latency ring.
  void recordLatency(uint64_t LatMs, bool Ok);
  /// Requests currently inside the handler (InFlight also counts queued
  /// ones); a reload waits for this to hit zero before swapping.
  std::atomic<unsigned> Executing{0};
  unsigned ResolvedWorkers = 1;

  /// Self-pipe that wakes pumpInput() pollers when a drain begins (pipes
  /// have no ::shutdown, and closing an fd under a blocked reader is a
  /// race). The byte is never consumed so every poller sees it.
  int WakePipe[2] = {-1, -1};

  std::thread Watchdog;
  std::mutex WatchdogM;
  std::condition_variable WatchdogCV;
  bool WatchdogStop = false;

  /// Reload machinery: the watchdog launches ReloadThread when
  /// ReloadWanted is set; conns waiting on a Reloaded ack queue under
  /// ReloadM.
  std::atomic<bool> ReloadWanted{false};
  std::mutex ReloadM;
  std::vector<std::shared_ptr<Conn>> ReloadAcks;
  std::thread ReloadThread;
  std::atomic<bool> ReloadRunning{false};

  void startWatchdog();
  void stopWatchdog();
  void watchdogScan();

  /// Parses frames arriving on \p C, enqueueing requests; returns when the
  /// stream hits EOF, a Shutdown frame, or a drain wake. Sets
  /// \p SawShutdown accordingly.
  void pumpInput(const std::shared_ptr<Conn> &C, int InFd, bool &SawShutdown);

  /// Admits one decoded request — or sheds it with an Overloaded frame
  /// when the queue is full, the server is draining, or the estimated
  /// queue wait alone would blow the request's deadline.
  void admit(const std::shared_ptr<Conn> &C, RequestMsg Req);

  /// Worker-side drain loop (one per pool index).
  void drainQueue();

  /// Runs the handler for one request and publishes its response unless
  /// the watchdog already did.
  void serveOne(const std::shared_ptr<Active> &A);

  void closeQueue();
  void wakePumps();
  /// Publishes an Overloaded frame for \p A (if it still owns its
  /// response slot) and counts the shed. Caller must have removed A from
  /// the queue; removes it from InFlight if \p InFlightToo.
  void shed(const std::shared_ptr<Active> &A, OverloadCause Cause,
            uint32_t QueueDepth, bool InFlightToo);
  /// Estimated queue wait for a request entering behind \p Depth others.
  uint64_t estimateWaitNs(size_t Depth) const;
  /// The reload body (runs on ReloadThread).
  void runReload();
  void joinReloadThread();
};

} // namespace gg

#endif // GG_SUPPORT_SERVER_H
