//===- Server.h - fault-isolated compile server -----------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon core behind `compile_minic --serve` (docs/server.md): a
/// long-lived, multi-tenant service over the Frame protocol. This layer
/// owns transports (stdin/stdout frames, a local Unix socket), the
/// request queue, the worker pool dispatch, the request-quarantine layer
/// (per-request RequestBudget with deadlines and step/stack/memory
/// budgets), and the watchdog that fails a wedged request without taking
/// the process down. What "compile" means is injected as a handler, so
/// support stays the bottom layer: the real handler (frontend + table-
/// driven code generator + PCC fallback ladder) is cg/CompileService.
///
/// Robustness contract (the crash-only design):
///   * shared state (grammar/tables) is immutable after startup and
///     checksum-verified, so requests cannot poison each other;
///   * every recoverable failure — bad source, syntactic block, budget
///     exhaustion, malformed frame — becomes a structured Response/resync,
///     never a process exit;
///   * a wedged worker (stall-worker fault, runaway parse) is detected by
///     the watchdog: its request is failed and abandoned, the worker
///     rejoins the pool when it eventually returns;
///   * anything else (broken invariants, fatal signals) kills the process,
///     and the supervisor loop in scripts/serve.sh restarts it with capped
///     exponential backoff. Clients replay in-flight requests at most
///     once — safe because a response is a pure function of the request.
///
/// Worker dispatch rides the PR-4 work-stealing pool: serve() calls
/// parallelFor(Workers, ...) where each index hosts a queue-drain loop, so
/// the caller participates as worker 0 and Workers=1 degenerates to a
/// serial server.
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_SERVER_H
#define GG_SUPPORT_SERVER_H

#include "support/Deadline.h"
#include "support/Frame.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gg {

/// Server tunables (the --serve-* flag surface).
struct ServerOptions {
  /// Worker threads draining the request queue. 0 = hardware concurrency.
  int Workers = 0;
  /// Default per-request deadline when the request does not carry one.
  /// 0 = no deadline.
  uint64_t DefaultDeadlineMs = 10000;
  /// Default matcher step budget per request. 0 = unlimited.
  uint64_t DefaultMaxSteps = 200u << 20;
  /// Default per-arena byte budget per request. 0 = unlimited.
  uint64_t DefaultMaxArenaBytes = 256u << 20;
  /// Watchdog scan interval.
  uint64_t WatchdogIntervalMs = 20;
  /// Grace past the deadline before a still-running request is declared
  /// wedged and force-failed (the worker's eventual result is discarded).
  uint64_t WatchdogGraceMs = 500;
  /// Honor Crash frames (supervisor drills). Off by default: a stray or
  /// malicious Crash frame must not kill a production server.
  bool AllowCrash = false;
  /// Supervisor generation (scripts/serve.sh --serve-generation=N): how
  /// many times this server has been restarted; exported as
  /// server.restarts so the stats artifact shows supervisor activity.
  uint64_t Generation = 0;
};

/// Everything the handler reports back for one request.
struct HandlerResult {
  ResponseStatus Status = ResponseStatus::Ok;
  std::string Payload; ///< assembly on Ok, rendered diagnostics otherwise
  uint32_t BlockedTrees = 0;
  uint32_t RecoveredTrees = 0;
};

/// The compile function: pure in the request (byte-identical output for
/// byte-identical input), cooperative in the budget. Runs on a pool
/// worker; must not throw or exit for recoverable failures.
using CompileHandler =
    std::function<HandlerResult(const RequestMsg &Req, RequestBudget &Budget)>;

/// The long-lived server. One instance per process; serve*() blocks until
/// shutdown and returns the process exit code.
class Server {
public:
  Server(CompileHandler Handler, ServerOptions Opts);
  ~Server();

  /// Serves the framed protocol on a pair of file descriptors (the stdio
  /// daemon mode: InFd=0, OutFd=1). Returns ExitOk on clean shutdown
  /// (Shutdown frame or EOF after draining).
  int serveFds(int InFd, int OutFd);

  /// Binds \p Path as a SOCK_STREAM Unix socket and serves each accepted
  /// connection (same framed protocol, any number of requests per
  /// connection). Returns ExitOk on clean shutdown, ExitFatalFault when
  /// the socket cannot be bound.
  int serveUnixSocket(const std::string &Path);

private:
  struct Conn;   ///< one output stream + write mutex
  struct Active; ///< one admitted, not-yet-responded request

  CompileHandler Handler;
  ServerOptions Opts;

  std::mutex QueueM;
  std::condition_variable QueueCV;
  std::deque<std::shared_ptr<Active>> Queue;
  bool Closed = false; ///< no more requests will be enqueued

  std::mutex ActiveM;
  std::vector<std::shared_ptr<Active>> InFlight;

  std::thread Watchdog;
  std::mutex WatchdogM;
  std::condition_variable WatchdogCV;
  bool WatchdogStop = false;

  void startWatchdog();
  void stopWatchdog();
  void watchdogScan();

  /// Parses frames arriving on \p C, enqueueing requests; returns when the
  /// stream hits EOF or a Shutdown frame. Sets \p SawShutdown accordingly.
  void pumpInput(const std::shared_ptr<Conn> &C, int InFd, bool &SawShutdown);

  /// Admits one decoded request: builds its budget, registers it with the
  /// watchdog, and queues it for the worker pool.
  void admit(const std::shared_ptr<Conn> &C, RequestMsg Req);

  /// Worker-side drain loop (one per pool index).
  void drainQueue();

  /// Runs the handler for one request and publishes its response unless
  /// the watchdog already did.
  void serveOne(const std::shared_ptr<Active> &A);

  void closeQueue();
};

} // namespace gg

#endif // GG_SUPPORT_SERVER_H
