//===- ThreadPool.h - work-stealing parallel-for ----------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for embarrassingly parallel loops.
/// The parallel code generator uses it to compile functions concurrently:
/// the SLR tables and instruction table are the expensive shared artifact
/// (built once, immutable), so per-function compilation parallelizes with
/// no synchronization beyond distributing the work items.
///
/// Shape: a fixed index space [0, N) is cut into chunks of `Chunking`
/// consecutive indices, dealt round-robin onto per-worker deques. Each
/// worker drains its own deque from the front; when empty it steals from
/// the back of a victim's deque. The calling thread participates as
/// worker 0, so Threads=1 degenerates to a plain serial loop with no
/// spawns and no locks — the baseline the determinism tests compare
/// against. No work is ever added mid-run, so termination is a simple
/// full sweep finding every deque empty.
///
/// The body must not throw (the library is exception-free); any ordering
/// of body invocations must produce the same observable result, which the
/// code generator guarantees by giving each task its own output buffer and
/// stitching buffers in index order afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_THREADPOOL_H
#define GG_SUPPORT_THREADPOOL_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace gg {

/// Parallelism knobs threaded through CodeGenOptions and the drivers'
/// --threads flag.
struct ParallelOptions {
  /// Worker count. 1 = serial (default; byte-identical baseline),
  /// 0 = one worker per hardware thread, N = exactly N workers.
  int Threads = 1;
  /// Consecutive work items per deque entry. Larger chunks amortize deque
  /// traffic; smaller chunks steal better under skewed item costs.
  int Chunking = 1;
};

/// What a parallelFor run did — fed into the cg.parallel.* telemetry.
struct PoolRunStats {
  uint64_t Workers = 0; ///< workers that ran (including the caller)
  uint64_t Tasks = 0;   ///< deque entries (chunks), not individual items
  uint64_t Steals = 0;  ///< chunks taken from another worker's deque
};

/// Resolves a --threads request against the item count: 0 means hardware
/// concurrency, and no more workers than items are ever spawned.
unsigned resolveWorkerCount(int Requested, size_t Items);

/// Runs Body(I) for every I in [0, N), distributed over workers per
/// \p Opts. Blocks until all items complete. Body must not throw.
PoolRunStats parallelFor(size_t N, const ParallelOptions &Opts,
                         const std::function<void(size_t)> &Body);

} // namespace gg

#endif // GG_SUPPORT_THREADPOOL_H
