//===- Error.cpp - fatal errors and diagnostics ---------------------------===//

#include "support/Error.h"
#include "support/Strings.h"

#include <cstdio>
#include <cstdlib>

using namespace gg;

void gg::fatalError(const std::string &Message) {
  fprintf(stderr, "fatal error: %s\n", Message.c_str());
  abort();
}

void gg::unreachableImpl(const char *Message, const char *File, int Line) {
  fprintf(stderr, "unreachable executed at %s:%d: %s\n", File, Line, Message);
  abort();
}

std::string Diagnostic::render() const {
  const char *Tag = Kind == DiagKind::Note      ? "note"
                    : Kind == DiagKind::Warning ? "warning"
                                                : "error";
  if (Line > 0)
    return strf("line %d: %s: %s", Line, Tag, Message.c_str());
  return strf("%s: %s", Tag, Message.c_str());
}

std::string DiagnosticSink::renderAll() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.render();
    Out += '\n';
  }
  return Out;
}
