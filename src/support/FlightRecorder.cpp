//===- FlightRecorder.cpp - always-on crash flight recorder -------------------===//

#include "support/FlightRecorder.h"
#include "support/Trace.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <fcntl.h>
#include <signal.h>
#include <sys/syscall.h>
#include <unistd.h>

using namespace gg;

namespace {

constexpr uint32_t RingSize = 512;  ///< events retained per thread
constexpr uint32_t MaxRings = 64;   ///< threads that can ever record

/// One recorded event. Seq doubles as the publish flag: the writer
/// clears it, fills the fields, then stores the sequence number with
/// release order, so the dumper (possibly a signal handler interrupting
/// another thread mid-write) only ever sorts on fully-published
/// sequence numbers. A slot being overwritten can still yield stale
/// *fields* — the dump is best-effort recent history, not a log.
struct Event {
  std::atomic<uint64_t> Seq{0};
  uint64_t Ns = 0;
  uint64_t Req = 0;
  uint64_t Gen = 0;
  int64_t Arg = 0;
  uint32_t Tid = 0;
  uint8_t Kind = 0;
};

struct Ring {
  std::atomic<uint32_t> Head{0};
  Event Events[RingSize];
};

Ring Rings[MaxRings];
std::atomic<uint32_t> RingCount{0};
std::atomic<uint64_t> GlobalSeq{0};

/// -1 = this thread lost the slot race and drops events; 0.. = slot.
thread_local int MyRing = -2;
thread_local uint32_t MyTid = 0;

char DumpPath[1024] = "";
std::atomic<bool> HandlersInstalled{false};

uint64_t monoNs() {
  timespec TS;
  clock_gettime(CLOCK_MONOTONIC, &TS);
  return static_cast<uint64_t>(TS.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(TS.tv_nsec);
}

void record(FlightKind K, uint64_t Req, uint64_t Gen, int64_t Arg) {
  if (MyRing == -2) {
    uint32_t I = RingCount.fetch_add(1, std::memory_order_relaxed);
    MyRing = I < MaxRings ? static_cast<int>(I) : -1;
    MyTid = static_cast<uint32_t>(::syscall(SYS_gettid));
  }
  if (MyRing < 0)
    return;
  Ring &R = Rings[MyRing];
  Event &E = R.Events[R.Head.fetch_add(1, std::memory_order_relaxed) %
                      RingSize];
  E.Seq.store(0, std::memory_order_release);
  E.Ns = monoNs();
  E.Req = Req;
  E.Gen = Gen;
  E.Arg = Arg;
  E.Tid = MyTid;
  E.Kind = static_cast<uint8_t>(K);
  E.Seq.store(GlobalSeq.fetch_add(1, std::memory_order_relaxed) + 1,
              std::memory_order_release);
}

//===----------------------------------------------------------------------===//
// Async-signal-safe dump machinery: no allocation, no stdio, no locks.
//===----------------------------------------------------------------------===//

/// Snapshot copy of one event, safe to sort in place.
struct Snap {
  uint64_t Seq, Ns, Req, Gen;
  int64_t Arg;
  uint32_t Tid;
  uint8_t Kind;
};

/// Static scratch: the dumper is only ever entered by the dying (or
/// SIGQUIT-poked) thread, so one buffer suffices.
Snap Collected[MaxRings * RingSize];

void writeAllRaw(int Fd, const char *Data, size_t Len) {
  while (Len) {
    ssize_t N = ::write(Fd, Data, Len);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
}

/// Appends the decimal rendering of \p V to Buf at Len (no terminator).
void appendU64(char *Buf, size_t &Len, uint64_t V) {
  char Tmp[20];
  int N = 0;
  do {
    Tmp[N++] = static_cast<char>('0' + V % 10);
    V /= 10;
  } while (V);
  while (N)
    Buf[Len++] = Tmp[--N];
}

void appendI64(char *Buf, size_t &Len, int64_t V) {
  if (V < 0) {
    Buf[Len++] = '-';
    // Negate in unsigned space so INT64_MIN survives.
    appendU64(Buf, Len, ~static_cast<uint64_t>(V) + 1);
  } else {
    appendU64(Buf, Len, static_cast<uint64_t>(V));
  }
}

void appendStr(char *Buf, size_t &Len, const char *S) {
  while (*S)
    Buf[Len++] = *S++;
}

/// Bottom-up heapsort by Seq — in-place, allocation-free, and O(n log n)
/// worst case, which matters inside a signal handler.
void siftDown(Snap *A, size_t Start, size_t End) {
  size_t Root = Start;
  while (Root * 2 + 1 < End) {
    size_t Child = Root * 2 + 1;
    if (Child + 1 < End && A[Child].Seq < A[Child + 1].Seq)
      ++Child;
    if (A[Root].Seq >= A[Child].Seq)
      return;
    Snap T = A[Root];
    A[Root] = A[Child];
    A[Child] = T;
    Root = Child;
  }
}

void heapSort(Snap *A, size_t N) {
  if (N < 2)
    return;
  for (size_t I = N / 2; I-- > 0;)
    siftDown(A, I, N);
  for (size_t End = N - 1; End > 0; --End) {
    Snap T = A[0];
    A[0] = A[End];
    A[End] = T;
    siftDown(A, 0, End);
  }
}

void crashHandler(int Sig) {
  record(FlightKind::CrashSignal, 0, 0, Sig);
  flightDump("crash-signal");
  // Restore the default disposition and re-raise so the process still
  // dies with the original signal (core dumps, wait status intact).
  signal(Sig, SIG_DFL);
  raise(Sig);
}

void quitHandler(int) {
  // SIGQUIT is a poke, not a kill: dump recent history, keep serving.
  flightDump("sigquit");
}

} // namespace

const char *gg::flightKindName(FlightKind K) {
  switch (K) {
  case FlightKind::None:
    return "none";
  case FlightKind::Admit:
    return "admit";
  case FlightKind::Dispatch:
    return "dispatch";
  case FlightKind::Respond:
    return "respond";
  case FlightKind::Shed:
    return "shed";
  case FlightKind::BudgetKill:
    return "budget-kill";
  case FlightKind::WatchdogKill:
    return "watchdog-kill";
  case FlightKind::Reload:
    return "reload";
  case FlightKind::Drain:
    return "drain";
  case FlightKind::PhaseTransform:
    return "phase-transform";
  case FlightKind::PhaseMatch:
    return "phase-match";
  case FlightKind::PhaseReplay:
    return "phase-replay";
  case FlightKind::PhaseFallback:
    return "phase-fallback";
  case FlightKind::PhaseStitch:
    return "phase-stitch";
  case FlightKind::Block:
    return "block";
  case FlightKind::CrashSignal:
    return "crash-signal";
  }
  return "unknown";
}

void gg::flightRecord(FlightKind K, int64_t Arg) {
  RequestContext C = RequestScope::current();
  record(K, C.Id, C.Generation, Arg);
}

void gg::flightRecordFor(FlightKind K, uint64_t Req, uint64_t Gen,
                         int64_t Arg) {
  record(K, Req, Gen, Arg);
}

void gg::flightSetDumpPath(const char *Path) {
  size_t Len = Path ? strlen(Path) : 0;
  if (Len >= sizeof(DumpPath))
    Len = sizeof(DumpPath) - 1;
  memcpy(DumpPath, Path, Len);
  DumpPath[Len] = '\0';
}

const char *gg::flightDumpPath() { return DumpPath; }

uint64_t gg::flightEventCount() {
  return GlobalSeq.load(std::memory_order_relaxed);
}

void gg::flightDumpFd(int Fd, const char *Reason) {
  uint32_t NRings = RingCount.load(std::memory_order_acquire);
  if (NRings > MaxRings)
    NRings = MaxRings;
  size_t N = 0;
  for (uint32_t R = 0; R < NRings; ++R) {
    for (uint32_t I = 0; I < RingSize; ++I) {
      const Event &E = Rings[R].Events[I];
      uint64_t Seq = E.Seq.load(std::memory_order_acquire);
      if (!Seq)
        continue;
      Snap &S = Collected[N++];
      S.Seq = Seq;
      S.Ns = E.Ns;
      S.Req = E.Req;
      S.Gen = E.Gen;
      S.Arg = E.Arg;
      S.Tid = E.Tid;
      S.Kind = E.Kind;
    }
  }
  heapSort(Collected, N);

  char Buf[256];
  size_t Len = 0;
  appendStr(Buf, Len, "{\"schema\":\"gg-flight-v1\",\"reason\":\"");
  // Reason strings are our own literals: no escaping needed.
  appendStr(Buf, Len, Reason);
  appendStr(Buf, Len, "\",\"recorded\":");
  appendU64(Buf, Len, GlobalSeq.load(std::memory_order_relaxed));
  appendStr(Buf, Len, ",\"retained\":");
  appendU64(Buf, Len, N);
  appendStr(Buf, Len, ",\"events\":[");
  writeAllRaw(Fd, Buf, Len);
  for (size_t I = 0; I < N; ++I) {
    const Snap &S = Collected[I];
    Len = 0;
    if (I)
      Buf[Len++] = ',';
    appendStr(Buf, Len, "\n{\"seq\":");
    appendU64(Buf, Len, S.Seq);
    appendStr(Buf, Len, ",\"ns\":");
    appendU64(Buf, Len, S.Ns);
    appendStr(Buf, Len, ",\"tid\":");
    appendU64(Buf, Len, S.Tid);
    appendStr(Buf, Len, ",\"kind\":\"");
    appendStr(Buf, Len, flightKindName(static_cast<FlightKind>(S.Kind)));
    appendStr(Buf, Len, "\",\"req\":");
    appendU64(Buf, Len, S.Req);
    appendStr(Buf, Len, ",\"gen\":");
    appendU64(Buf, Len, S.Gen);
    appendStr(Buf, Len, ",\"arg\":");
    appendI64(Buf, Len, S.Arg);
    Buf[Len++] = '}';
    writeAllRaw(Fd, Buf, Len);
  }
  writeAllRaw(Fd, "\n]}\n", 4);
}

bool gg::flightDump(const char *Reason) {
  if (!DumpPath[0])
    return false;
  int Fd = ::open(DumpPath, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return false;
  flightDumpFd(Fd, Reason);
  ::close(Fd);
  return true;
}

void gg::flightInstallHandlers() {
  bool Expected = false;
  if (!HandlersInstalled.compare_exchange_strong(Expected, true))
    return;
  struct sigaction SA;
  memset(&SA, 0, sizeof(SA));
  sigemptyset(&SA.sa_mask);
  SA.sa_handler = crashHandler;
  // SA_RESETHAND would also work for the re-raise, but an explicit
  // signal(SIG_DFL) in the handler keeps the logic in one place.
  for (int Sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT})
    sigaction(Sig, &SA, nullptr);
  SA.sa_handler = quitHandler;
  SA.sa_flags = SA_RESTART; // a poke must not EINTR the transport reads
  sigaction(SIGQUIT, &SA, nullptr);
}
