//===- Json.cpp - minimal JSON parsing ----------------------------------------===//

#include "support/Json.h"
#include "support/Strings.h"

#include <cstdlib>

using namespace gg;

const JsonValue *JsonValue::find(std::string_view Key) const {
  if (K != Object)
    return nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      return &V;
  return nullptr;
}

namespace {

/// Recursive-descent reader over one string_view.
class Parser {
public:
  Parser(std::string_view Text, std::string &Err) : Text(Text), Err(Err) {}

  bool run(JsonValue &Out) {
    skipWs();
    if (!value(Out, /*Depth=*/0))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after the top-level value");
    return true;
  }

private:
  std::string_view Text;
  std::string &Err;
  size_t Pos = 0;
  /// Nesting cap: artifacts are a few levels deep; a hostile input must
  /// not recurse the parser off the stack.
  static constexpr int MaxDepth = 64;

  bool fail(const std::string &Why) {
    Err = strf("JSON error at byte %zu: %s", Pos, Why.c_str());
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return fail(strf("expected '%.*s'", static_cast<int>(Word.size()),
                       Word.data()));
    Pos += Word.size();
    return true;
  }

  bool string(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected '\"'");
    ++Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"': Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/': Out += '/'; break;
      case 'b': Out += '\b'; break;
      case 'f': Out += '\f'; break;
      case 'n': Out += '\n'; break;
      case 'r': Out += '\r'; break;
      case 't': Out += '\t'; break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned V = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape digit");
        }
        // The writers only escape control characters; anything outside
        // ASCII is preserved as a replacement, which is fine for reports.
        Out += V < 0x80 ? static_cast<char>(V) : '?';
        break;
      }
      default:
        return fail(strf("bad escape '\\%c'", E));
      }
    }
    return fail("unterminated string");
  }

  bool value(JsonValue &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case 'n':
      Out.K = JsonValue::Null;
      return literal("null");
    case 't':
      Out.K = JsonValue::Bool;
      Out.B = true;
      return literal("true");
    case 'f':
      Out.K = JsonValue::Bool;
      Out.B = false;
      return literal("false");
    case '"':
      Out.K = JsonValue::String;
      return string(Out.Str);
    case '[': {
      Out.K = JsonValue::Array;
      ++Pos;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        Out.Arr.emplace_back();
        if (!value(Out.Arr.back(), Depth + 1))
          return false;
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          skipWs();
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    case '{': {
      Out.K = JsonValue::Object;
      ++Pos;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        std::string Key;
        if (!string(Key))
          return false;
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        skipWs();
        Out.Obj.emplace_back(std::move(Key), JsonValue());
        if (!value(Out.Obj.back().second, Depth + 1))
          return false;
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          skipWs();
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    default: {
      if (C != '-' && (C < '0' || C > '9'))
        return fail(strf("unexpected character '%c'", C));
      size_t End = Pos;
      while (End < Text.size() &&
             (Text[End] == '-' || Text[End] == '+' || Text[End] == '.' ||
              Text[End] == 'e' || Text[End] == 'E' ||
              (Text[End] >= '0' && Text[End] <= '9')))
        ++End;
      std::string Num(Text.substr(Pos, End - Pos));
      char *Stop = nullptr;
      double V = strtod(Num.c_str(), &Stop);
      if (!Stop || *Stop)
        return fail(strf("bad number '%s'", Num.c_str()));
      Out.K = JsonValue::Number;
      Out.Num = V;
      Pos = End;
      return true;
    }
    }
  }
};

} // namespace

bool gg::parseJson(std::string_view Text, JsonValue &Out, std::string &Err) {
  Out = JsonValue();
  return Parser(Text, Err).run(Out);
}
