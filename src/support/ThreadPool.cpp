//===- ThreadPool.cpp - work-stealing parallel-for ----------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

using namespace gg;

unsigned gg::resolveWorkerCount(int Requested, size_t Items) {
  unsigned W;
  if (Requested <= 0) {
    W = std::thread::hardware_concurrency();
    if (W == 0)
      W = 1;
  } else {
    W = static_cast<unsigned>(Requested);
  }
  if (Items < W)
    W = static_cast<unsigned>(Items);
  return W == 0 ? 1 : W;
}

namespace {

/// A half-open run of work-item indices.
struct Chunk {
  size_t Begin = 0, End = 0;
};

/// One worker's mutex-guarded deque. A plain lock per operation is cheap
/// relative to a per-function compile, and keeps the pool trivially clean
/// under TSAN — the point of this pool is correctness of the parallel
/// code generator, not queue micro-throughput.
struct WorkDeque {
  std::mutex M;
  std::deque<Chunk> Q;

  bool popFront(Chunk &Out) {
    std::lock_guard<std::mutex> Lock(M);
    if (Q.empty())
      return false;
    Out = Q.front();
    Q.pop_front();
    return true;
  }

  bool stealBack(Chunk &Out) {
    std::lock_guard<std::mutex> Lock(M);
    if (Q.empty())
      return false;
    Out = Q.back();
    Q.pop_back();
    return true;
  }
};

} // namespace

PoolRunStats gg::parallelFor(size_t N, const ParallelOptions &Opts,
                             const std::function<void(size_t)> &Body) {
  PoolRunStats Stats;
  if (N == 0)
    return Stats;

  const unsigned Workers = resolveWorkerCount(Opts.Threads, N);
  const size_t ChunkSize =
      Opts.Chunking >= 1 ? static_cast<size_t>(Opts.Chunking) : 1;
  Stats.Workers = Workers;
  Stats.Tasks = (N + ChunkSize - 1) / ChunkSize;

  if (Workers == 1) {
    // Serial baseline: no deques, no spawns, no locks.
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return Stats;
  }

  // Deal chunks round-robin so each worker starts with an even share and
  // stealing only kicks in under skewed per-item costs.
  std::vector<WorkDeque> Deques(Workers);
  {
    unsigned Dest = 0;
    for (size_t Begin = 0; Begin < N; Begin += ChunkSize) {
      Deques[Dest].Q.push_back({Begin, std::min(Begin + ChunkSize, N)});
      Dest = (Dest + 1) % Workers;
    }
  }

  std::atomic<uint64_t> Steals{0};
  auto WorkerLoop = [&](unsigned Me) {
    while (true) {
      Chunk C;
      if (!Deques[Me].popFront(C)) {
        // Own deque dry: sweep the other deques for work to steal. No
        // work is added mid-run, so a full empty sweep means we are done
        // (a chunk in flight on another worker is that worker's to run).
        bool Stole = false;
        for (unsigned Off = 1; Off < Workers && !Stole; ++Off)
          Stole = Deques[(Me + Off) % Workers].stealBack(C);
        if (!Stole)
          return;
        Steals.fetch_add(1, std::memory_order_relaxed);
      }
      for (size_t I = C.Begin; I < C.End; ++I)
        Body(I);
    }
  };

  std::vector<std::thread> Threads;
  Threads.reserve(Workers - 1);
  for (unsigned W = 1; W < Workers; ++W)
    Threads.emplace_back(WorkerLoop, W);
  WorkerLoop(0);
  for (std::thread &T : Threads)
    T.join();
  Stats.Steals = Steals.load();
  return Stats;
}
