//===- Coverage.cpp - table coverage hit counters -----------------------------===//

#include "support/Coverage.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "support/Strings.h"

#include <algorithm>

using namespace gg;

//===----------------------------------------------------------------------===//
// CoverageRegistry
//===----------------------------------------------------------------------===//

CoverageRegistry &CoverageRegistry::global() {
  static CoverageRegistry R;
  return R;
}

void CoverageRegistry::sizeGrammar(size_t NumProds, size_t NumStates,
                                   size_t DynPoints) {
  std::lock_guard<std::mutex> Lock(M);
  ProdCounters.growLocked(NumProds);
  StateCounters.growLocked(NumStates);
  NumDynPoints = std::max(NumDynPoints, DynPoints);
}

void CoverageRegistry::sizeInstrRows(const std::vector<std::string> &Names) {
  std::lock_guard<std::mutex> Lock(M);
  if (Names.size() > RowNames.size())
    RowNames = Names;
  RowCounters.growLocked(RowNames.size());
}

void CoverageRegistry::setFingerprint(const std::string &HexFP) {
  std::lock_guard<std::mutex> Lock(M);
  Fingerprint = HexFP;
}

void CoverageRegistry::noteDynChoice(int State, int TermIdx, int ChosenProd) {
  if (!enabled())
    return;
  // Tie events are orders of magnitude rarer than shifts/reduces (one per
  // deferred reduce/reduce tie actually hit), so a mutex-guarded map is
  // fine here where it would not be in noteReduce.
  std::lock_guard<std::mutex> Lock(M);
  DynPointHits &P = Dyn[{State, TermIdx}];
  ++P.Hits;
  ++P.Chosen[ChosenProd];
}

void CoverageRegistry::reset() {
  std::lock_guard<std::mutex> Lock(M);
  for (ShardedCounters *F : {&ProdCounters, &StateCounters, &RowCounters})
    F->resetLocked();
  Dyn.clear();
  Compiles.store(0, std::memory_order_relaxed);
}

CoverageSnapshot CoverageRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  CoverageSnapshot Out;
  Out.Fingerprint = Fingerprint;
  Out.Compiles = Compiles.load(std::memory_order_relaxed);
  Out.NumProds = ProdCounters.size();
  Out.NumStates = StateCounters.size();
  Out.NumDynPoints = NumDynPoints;
  Out.NumRows = RowCounters.size();
  for (size_t I = 0; I < Out.NumProds; ++I)
    if (uint64_t H = ProdCounters.sum(I))
      Out.ProdHits[static_cast<int>(I)] = H;
  for (size_t I = 0; I < Out.NumStates; ++I)
    if (uint64_t H = StateCounters.sum(I))
      Out.StateHits[static_cast<int>(I)] = H;
  for (size_t I = 0; I < Out.NumRows; ++I)
    if (uint64_t H = RowCounters.sum(I))
      Out.RowHits[RowNames[I]] = H;
  Out.Dyn = Dyn;
  return Out;
}

//===----------------------------------------------------------------------===//
// CoverageSnapshot
//===----------------------------------------------------------------------===//

std::string CoverageSnapshot::toJson() const {
  std::string Out = strf(
      "{\"schema\":\"gg-coverage-v1\",\"fingerprint\":\"%s\","
      "\"compiles\":%llu,\"shape\":{\"productions\":%llu,\"states\":%llu,"
      "\"dyn_points\":%llu,\"instr_rows\":%llu}",
      jsonEscape(Fingerprint).c_str(),
      static_cast<unsigned long long>(Compiles),
      static_cast<unsigned long long>(NumProds),
      static_cast<unsigned long long>(NumStates),
      static_cast<unsigned long long>(NumDynPoints),
      static_cast<unsigned long long>(NumRows));
  bool First;

  Out += ",\"productions\":{";
  First = true;
  for (const auto &[Id, Hits] : ProdHits) {
    Out += strf("%s\"%d\":%llu", First ? "" : ",", Id,
                static_cast<unsigned long long>(Hits));
    First = false;
  }
  Out += "},\"states\":{";
  First = true;
  for (const auto &[Id, Hits] : StateHits) {
    Out += strf("%s\"%d\":%llu", First ? "" : ",", Id,
                static_cast<unsigned long long>(Hits));
    First = false;
  }
  Out += "},\"dyn\":{";
  First = true;
  for (const auto &[Key, P] : Dyn) {
    Out += strf("%s\"%d:%d\":{\"hits\":%llu,\"chosen\":{", First ? "" : ",",
                Key.first, Key.second,
                static_cast<unsigned long long>(P.Hits));
    bool FirstC = true;
    for (const auto &[Prod, N] : P.Chosen) {
      Out += strf("%s\"%d\":%llu", FirstC ? "" : ",", Prod,
                  static_cast<unsigned long long>(N));
      FirstC = false;
    }
    Out += "}}";
    First = false;
  }
  Out += "},\"instr_rows\":{";
  First = true;
  for (const auto &[Name, Hits] : RowHits) {
    Out += strf("%s\"%s\":%llu", First ? "" : ",", jsonEscape(Name).c_str(),
                static_cast<unsigned long long>(Hits));
    First = false;
  }
  Out += "}}";
  return Out;
}

namespace {

/// "12" -> 12; returns false on junk so corrupt artifacts fail loudly.
bool parseIntKey(const std::string &Key, int &Out) {
  if (Key.empty())
    return false;
  int V = 0;
  for (char C : Key) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + (C - '0');
  }
  Out = V;
  return true;
}

bool readIdMap(const JsonValue *V, std::map<int, uint64_t> &Out,
               const char *What, std::string &Err) {
  if (!V || !V->isObject()) {
    Err = strf("missing or non-object \"%s\"", What);
    return false;
  }
  for (const auto &[Key, Val] : V->Obj) {
    int Id;
    if (!parseIntKey(Key, Id) || !Val.isNumber()) {
      Err = strf("bad entry \"%s\" in \"%s\"", Key.c_str(), What);
      return false;
    }
    Out[Id] += Val.asU64();
  }
  return true;
}

} // namespace

bool CoverageSnapshot::parse(const JsonValue &V, std::string &Err) {
  *this = CoverageSnapshot();
  const JsonValue *Schema = V.find("schema");
  if (!Schema || Schema->Str != "gg-coverage-v1") {
    Err = "not a gg-coverage-v1 artifact";
    return false;
  }
  if (const JsonValue *FP = V.find("fingerprint"))
    Fingerprint = FP->Str;
  Compiles = V.find("compiles") ? V.find("compiles")->asU64() : 0;
  const JsonValue *Shape = V.find("shape");
  if (!Shape || !Shape->isObject()) {
    Err = "missing \"shape\"";
    return false;
  }
  NumProds = static_cast<uint64_t>(Shape->numberOr("productions"));
  NumStates = static_cast<uint64_t>(Shape->numberOr("states"));
  NumDynPoints = static_cast<uint64_t>(Shape->numberOr("dyn_points"));
  NumRows = static_cast<uint64_t>(Shape->numberOr("instr_rows"));
  if (!readIdMap(V.find("productions"), ProdHits, "productions", Err) ||
      !readIdMap(V.find("states"), StateHits, "states", Err))
    return false;
  const JsonValue *D = V.find("dyn");
  if (!D || !D->isObject()) {
    Err = "missing \"dyn\"";
    return false;
  }
  for (const auto &[Key, Val] : D->Obj) {
    size_t Colon = Key.find(':');
    int State, Term;
    if (Colon == std::string::npos ||
        !parseIntKey(Key.substr(0, Colon), State) ||
        !parseIntKey(Key.substr(Colon + 1), Term) || !Val.isObject()) {
      Err = strf("bad dyn key \"%s\"", Key.c_str());
      return false;
    }
    DynPointHits &P = Dyn[{State, Term}];
    P.Hits = static_cast<uint64_t>(Val.numberOr("hits"));
    if (const JsonValue *C = Val.find("chosen"))
      if (!readIdMap(C, P.Chosen, "chosen", Err))
        return false;
  }
  const JsonValue *Rows = V.find("instr_rows");
  if (!Rows || !Rows->isObject()) {
    Err = "missing \"instr_rows\"";
    return false;
  }
  for (const auto &[Name, Val] : Rows->Obj) {
    if (!Val.isNumber()) {
      Err = strf("bad instr_rows entry \"%s\"", Name.c_str());
      return false;
    }
    RowHits[Name] = Val.asU64();
  }
  return true;
}

bool CoverageSnapshot::parse(const std::string &Text, std::string &Err) {
  JsonValue V;
  if (!parseJson(Text, V, Err))
    return false;
  return parse(V, Err);
}

bool CoverageSnapshot::merge(const CoverageSnapshot &Other, std::string &Err) {
  if (!Fingerprint.empty() && !Other.Fingerprint.empty() &&
      Fingerprint != Other.Fingerprint) {
    Err = strf("fingerprint mismatch (%s vs %s): artifacts come from "
               "different grammars/tables",
               Fingerprint.c_str(), Other.Fingerprint.c_str());
    return false;
  }
  if ((NumProds && Other.NumProds && NumProds != Other.NumProds) ||
      (NumStates && Other.NumStates && NumStates != Other.NumStates)) {
    Err = "table shape mismatch: artifacts come from different tables";
    return false;
  }
  if (Fingerprint.empty())
    Fingerprint = Other.Fingerprint;
  NumProds = std::max(NumProds, Other.NumProds);
  NumStates = std::max(NumStates, Other.NumStates);
  NumDynPoints = std::max(NumDynPoints, Other.NumDynPoints);
  NumRows = std::max(NumRows, Other.NumRows);
  Compiles += Other.Compiles;
  for (const auto &[Id, H] : Other.ProdHits)
    ProdHits[Id] += H;
  for (const auto &[Id, H] : Other.StateHits)
    StateHits[Id] += H;
  for (const auto &[Key, P] : Other.Dyn) {
    DynPointHits &Mine = Dyn[Key];
    Mine.Hits += P.Hits;
    for (const auto &[Prod, N] : P.Chosen)
      Mine.Chosen[Prod] += N;
  }
  for (const auto &[Name, H] : Other.RowHits)
    RowHits[Name] += H;
  return true;
}
