//===- Sharded.h - sharded grow-only atomic counter arrays ------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded counter store behind both hot-path profilers: coverage
/// (support/Coverage.h) counts hits, the cost profiler
/// (support/Profile.h) accumulates tick deltas, and both need the same
/// thing — id-indexed uint64 accumulators that parallel workers mutate
/// lock-free without sharing cache lines, summed only at dump time.
///
/// One family is NumShards independent atomic arrays. Each thread is
/// dealt a shard round-robin on first use (the work-stealing pool tops
/// out well under NumShards on the hosts this targets, so shards are
/// usually thread-private). Recorders snapshot a consistent (pointer,
/// size) pair with one acquire load; growth publishes a new store and
/// retires — never frees — the old one, so a racing recorder never
/// touches freed memory. Growth is serial-only by contract: targets are
/// constructed (and counter families sized) before compile workers
/// start.
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_SHARDED_H
#define GG_SUPPORT_SHARDED_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace gg {

/// One id-indexed family of sharded atomic accumulators.
class ShardedCounters {
public:
  static constexpr int NumShards = 16; ///< power of two; see shardIndex()

  /// The calling thread's shard, dealt round-robin across all families
  /// (one assignment per thread, shared so related families — ticks and
  /// events for the same id — land on the same shard).
  static int shardIndex() {
    static std::atomic<unsigned> NextShard{0};
    static thread_local int Mine =
        static_cast<int>(NextShard.fetch_add(1, std::memory_order_relaxed) &
                         (NumShards - 1));
    return Mine;
  }

  /// Adds \p Delta to counter \p Index on the caller's shard. Negative
  /// or out-of-range ids are dropped rather than asserted — a stale
  /// artifact is better than a crashed compiler. Lock-free.
  void add(int Index, uint64_t Delta) {
    if (Index < 0)
      return;
    Store *S = Cur.load(std::memory_order_acquire);
    if (!S || static_cast<size_t>(Index) >= S->N)
      return;
    S->Shards[shardIndex()][Index].fetch_add(Delta,
                                             std::memory_order_relaxed);
  }

  /// Publishes a store of at least \p N counters, carrying existing
  /// per-shard counts over. Caller must hold its registry mutex and
  /// honor the serial-sizing rule.
  void growLocked(size_t N) {
    Store *Old = Cur.load(std::memory_order_relaxed);
    if (Old && Old->N >= N)
      return;
    auto S = std::make_unique<Store>();
    S->N = N;
    S->Shards.reserve(NumShards);
    for (int I = 0; I < NumShards; ++I) {
      auto Arr = std::make_unique<std::atomic<uint64_t>[]>(N);
      for (size_t J = 0; J < N; ++J)
        Arr[J].store(Old && J < Old->N
                         ? Old->Shards[I][J].load(std::memory_order_relaxed)
                         : 0,
                     std::memory_order_relaxed);
      S->Shards.push_back(std::move(Arr));
    }
    Cur.store(S.get(), std::memory_order_release);
    Stores.push_back(std::move(S)); // the old store stays retired, not freed
  }

  /// Shard-summed count for one id, 0 when unsized or out of range.
  uint64_t sum(size_t Index) const {
    const Store *S = Cur.load(std::memory_order_acquire);
    if (!S || Index >= S->N)
      return 0;
    uint64_t Total = 0;
    for (int I = 0; I < NumShards; ++I)
      Total += S->Shards[I][Index].load(std::memory_order_relaxed);
    return Total;
  }

  /// Current capacity (0 when never sized).
  size_t size() const {
    const Store *S = Cur.load(std::memory_order_acquire);
    return S ? S->N : 0;
  }

  /// Zeroes every counter, keeping the capacity. Caller holds its
  /// registry mutex (racing recorders may land in either epoch, which
  /// both registries tolerate).
  void resetLocked() {
    if (Store *S = Cur.load(std::memory_order_relaxed))
      for (int I = 0; I < NumShards; ++I)
        for (size_t J = 0; J < S->N; ++J)
          S->Shards[I][J].store(0, std::memory_order_relaxed);
  }

private:
  /// Per-shard arrays are separate allocations, so workers on different
  /// shards do not share lines.
  struct Store {
    size_t N = 0;
    std::vector<std::unique_ptr<std::atomic<uint64_t>[]>> Shards;
  };
  std::atomic<Store *> Cur{nullptr};
  std::vector<std::unique_ptr<Store>> Stores; ///< current + retired
};

} // namespace gg

#endif // GG_SUPPORT_SHARDED_H
