//===- Trace.h - RAII tracing spans ------------------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured tracing: RAII spans with nesting, recorded against one
/// process-wide recorder and exportable as Chrome `trace_event`-format
/// JSON (loadable in chrome://tracing / Perfetto) or a compact indented
/// text form. The spans cover table construction, packing, and the four
/// code-generation phases down to per-tree match/replay granularity —
/// Nederhof & Satta's step-level view of a tabular parser, made
/// first-class.
///
/// The recorder is disabled by default; a disabled TraceSpan costs one
/// branch. Timestamps are microseconds relative to the recorder's epoch
/// (reset on enable()), taken from the shared MonoClock
/// (support/Clock.h).
///
/// Thread safety: span entry/exit lock a mutex when the recorder is
/// enabled (the parallel code generator's workers open per-function and
/// per-tree spans concurrently), and nothing when disabled. The nesting
/// depth is process-wide, so depths recorded by concurrent workers
/// interleave; the Chrome JSON view keys on timestamps and is unaffected.
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_TRACE_H
#define GG_SUPPORT_TRACE_H

#include "support/Clock.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gg {

/// One completed span (Chrome "X" complete event).
struct TraceEvent {
  std::string Name;
  const char *Category = "gg";
  double StartUs = 0;
  double DurUs = 0;
  int Depth = 0; ///< nesting depth at the span's start (for toText)
  std::vector<std::pair<std::string, int64_t>> Args;
};

/// Collects spans. One global instance serves the pipeline; tests may
/// create private recorders.
class TraceRecorder {
public:
  static TraceRecorder &global();

  /// Enables recording and resets the epoch. Previously recorded events
  /// are kept (enable is idempotent mid-run).
  void enable() {
    std::lock_guard<std::mutex> Lock(M);
    Enabled.store(true, std::memory_order_relaxed);
    if (Events.empty() && CurDepth == 0)
      Epoch = Clock::now();
  }
  void disable() { Enabled.store(false, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  void clear() {
    std::lock_guard<std::mutex> Lock(M);
    Events.clear();
    CurDepth = 0;
    Epoch = Clock::now();
  }

  /// Not safe against concurrent recording; read after workers join.
  const std::vector<TraceEvent> &events() const { return Events; }

  /// Microseconds since the recorder's epoch.
  double nowUs() const {
    std::lock_guard<std::mutex> Lock(M);
    return std::chrono::duration<double, std::micro>(Clock::now() - Epoch)
        .count();
  }

  /// Serializes as a Chrome trace_event JSON array (the "JSON Array
  /// Format": a bare array of complete events, ph="X").
  std::string toChromeJson() const;

  /// Compact indented text rendering, one line per span in start order.
  std::string toText() const;

  // Span bookkeeping (used by TraceSpan).
  int enter() {
    std::lock_guard<std::mutex> Lock(M);
    return CurDepth++;
  }
  void exit(TraceEvent E) {
    std::lock_guard<std::mutex> Lock(M);
    --CurDepth;
    Events.push_back(std::move(E));
  }

private:
  using Clock = MonoClock;
  mutable std::mutex M; ///< guards Events/CurDepth/Epoch when enabled
  std::atomic<bool> Enabled{false};
  int CurDepth = 0;
  Clock::time_point Epoch = Clock::now();
  std::vector<TraceEvent> Events;
};

/// The request identity a thread is currently working for. Threaded
/// through the compile server so every span (and flight-recorder event)
/// a worker opens while executing a request is attributable to it —
/// see docs/server.md "Per-request tracing".
struct RequestContext {
  uint64_t Id = 0;         ///< 0 = no request scope active
  uint64_t Generation = 0; ///< table-image generation serving the request
};

/// RAII thread-local request scope. The server enters one around the
/// handler call; requests compile with Threads = 1, so the scope covers
/// every span the request opens. Scopes nest (a re-entrant handler
/// restores the outer identity on exit).
class RequestScope {
public:
  explicit RequestScope(uint64_t Id, uint64_t Generation = 0);
  ~RequestScope();

  /// The calling thread's active request identity ({0,0} when none).
  static RequestContext current();

  /// Updates the active scope's generation in place — the service layer
  /// calls this once it has pinned a table snapshot, so phase spans
  /// opened after the pin carry the generation that actually serves.
  static void setGeneration(uint64_t Generation);

  RequestScope(const RequestScope &) = delete;
  RequestScope &operator=(const RequestScope &) = delete;

private:
  RequestContext Prev;
};

/// RAII span: records [construction, destruction) into a recorder when
/// it is enabled, and nothing otherwise.
class TraceSpan {
public:
  explicit TraceSpan(const char *Name,
                     TraceRecorder &R = TraceRecorder::global())
      : R(R) {
    if (!R.enabled())
      return;
    Live = true;
    E.Name = Name;
    begin();
  }

  /// Spans with formatted names (per-function, per-tree).
  TraceSpan(std::string Name, TraceRecorder &R = TraceRecorder::global())
      : R(R) {
    if (!R.enabled())
      return;
    Live = true;
    E.Name = std::move(Name);
    begin();
  }

  ~TraceSpan() {
    if (!Live)
      return;
    E.DurUs = R.nowUs() - E.StartUs;
    R.exit(std::move(E));
  }

  /// Attaches an integer argument, shown in the trace viewer's detail
  /// pane. No-op when the recorder is disabled.
  void arg(const char *Key, int64_t Value) {
    if (Live)
      E.Args.emplace_back(Key, Value);
  }

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  /// Shared tail of both constructors: stamp the request identity (so a
  /// single request's end-to-end timeline is reconstructable by the
  /// "req" arg), then the timestamp and depth.
  void begin() {
    RequestContext C = RequestScope::current();
    if (C.Id) {
      E.Args.emplace_back("req", static_cast<int64_t>(C.Id));
      E.Args.emplace_back("gen", static_cast<int64_t>(C.Generation));
    }
    E.StartUs = R.nowUs();
    E.Depth = R.enter();
  }

  TraceRecorder &R;
  TraceEvent E;
  bool Live = false;
};

} // namespace gg

#endif // GG_SUPPORT_TRACE_H
