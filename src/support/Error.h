//===- Error.h - fatal errors and diagnostics -------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error reporting primitives. Library code never calls exit() directly for
/// recoverable conditions; instead it accumulates diagnostics in a
/// DiagnosticSink that the caller owns. fatalError / gg_unreachable are
/// reserved for violated invariants (programmatic errors).
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_ERROR_H
#define GG_SUPPORT_ERROR_H

#include <string>
#include <vector>

namespace gg {

/// Aborts the process after printing \p Message; for broken invariants only.
[[noreturn]] void fatalError(const std::string &Message);

/// Marks a point in code that must never be reached.
[[noreturn]] void unreachableImpl(const char *Message, const char *File,
                                  int Line);

#define gg_unreachable(MSG) ::gg::unreachableImpl(MSG, __FILE__, __LINE__)

/// Severity of a diagnostic.
enum class DiagKind { Note, Warning, Error };

/// One diagnostic message, optionally tied to a source line.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  std::string Message;
  int Line = 0; ///< 1-based line in the originating text, 0 if none.

  std::string render() const;
};

/// Accumulates diagnostics produced while processing one input.
class DiagnosticSink {
public:
  void note(const std::string &Message, int Line = 0) {
    Diags.push_back({DiagKind::Note, Message, Line});
  }
  void warning(const std::string &Message, int Line = 0) {
    Diags.push_back({DiagKind::Warning, Message, Line});
  }
  void error(const std::string &Message, int Line = 0) {
    Diags.push_back({DiagKind::Error, Message, Line});
    ++ErrorCount;
  }

  /// Appends every diagnostic from \p Other in order. Parallel compile
  /// workers accumulate into private sinks that are merged source-order.
  void append(const DiagnosticSink &Other) {
    Diags.insert(Diags.end(), Other.Diags.begin(), Other.Diags.end());
    ErrorCount += Other.ErrorCount;
  }

  bool hasErrors() const { return ErrorCount != 0; }
  unsigned errors() const { return ErrorCount; }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// Renders every diagnostic, one per line.
  std::string renderAll() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned ErrorCount = 0;
};

} // namespace gg

#endif // GG_SUPPORT_ERROR_H
