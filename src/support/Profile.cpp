//===- Profile.cpp - hot-path cost attribution over the tables ----------------===//

#include "support/Profile.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "support/Strings.h"

#include <algorithm>
#include <cstring>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#define GG_HAVE_PERF 1
#endif

using namespace gg;

//===----------------------------------------------------------------------===//
// Names and spec parsing
//===----------------------------------------------------------------------===//

const char *gg::profPhaseName(ProfPhase P) {
  switch (P) {
  case ProfPhase::Transform:
    return "cg.transform";
  case ProfPhase::Linearize:
    return "cg.linearize";
  case ProfPhase::Match:
    return "cg.match";
  case ProfPhase::Replay:
    return "cg.replay";
  case ProfPhase::Fallback:
    return "cg.fallback";
  case ProfPhase::Stitch:
    return "cg.stitch";
  case ProfPhase::Total:
    return "cg.total";
  case ProfPhase::PccCompile:
    return "pcc.compile";
  case ProfPhase::NumPhases:
    break;
  }
  return "?";
}

static const char *modeName(ProfileMode M) {
  switch (M) {
  case ProfileMode::Off:
    return "off";
  case ProfileMode::Instr:
    return "instr";
  case ProfileMode::Perf:
    return "perf";
  }
  return "?";
}

static const char *timebaseName(ProfileTimebase TB) {
  return TB == ProfileTimebase::Steps ? "steps" : "cycles";
}

bool gg::parseProfileSpec(const std::string &Spec, ProfileMode &Mode,
                          ProfileTimebase &Timebase, std::string &Err) {
  std::string ModePart = Spec, TbPart;
  size_t Comma = Spec.find(',');
  if (Comma != std::string::npos) {
    ModePart = Spec.substr(0, Comma);
    TbPart = Spec.substr(Comma + 1);
  }
  if (ModePart == "off")
    Mode = ProfileMode::Off;
  else if (ModePart == "instr")
    Mode = ProfileMode::Instr;
  else if (ModePart == "perf")
    Mode = ProfileMode::Perf;
  else {
    Err = strf("unknown profile mode \"%s\" (want off|instr|perf)",
               ModePart.c_str());
    return false;
  }
  Timebase = ProfileTimebase::Cycles;
  if (!TbPart.empty()) {
    if (TbPart == "cycles")
      Timebase = ProfileTimebase::Cycles;
    else if (TbPart == "steps")
      Timebase = ProfileTimebase::Steps;
    else {
      Err = strf("unknown profile timebase \"%s\" (want cycles|steps)",
                 TbPart.c_str());
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Hardware counters (perf mode)
//===----------------------------------------------------------------------===//

namespace {

/// One thread's hardware-counter group, opened lazily on first phase
/// scope. Five independent fds (no group leader: grouping fails hard
/// when the PMU can't co-schedule all five, and phase-level sums do not
/// need the counters snapshotted atomically). Unavailable counters stay
/// at fd = -1 and read as 0 — partial data beats none on hosts that
/// expose, say, cycles but no cache events.
struct ThreadPerf {
  enum { NCounters = 5 };
  int Fds[NCounters] = {-1, -1, -1, -1, -1};
  bool Tried = false;

#ifdef GG_HAVE_PERF
  static int openCounter(uint32_t Type, uint64_t Config) {
    struct perf_event_attr PE;
    memset(&PE, 0, sizeof(PE));
    PE.size = sizeof(PE);
    PE.type = Type;
    PE.config = Config;
    PE.disabled = 0;
    PE.exclude_kernel = 1; // unprivileged-friendly
    PE.exclude_hv = 1;
    return static_cast<int>(
        syscall(SYS_perf_event_open, &PE, 0 /*this thread*/, -1 /*any cpu*/,
                -1 /*no group*/, 0));
  }
#endif

  /// Opens the counters once per thread; reports whether any opened.
  bool ensureOpen() {
    if (Tried)
      return Fds[0] >= 0 || Fds[1] >= 0;
    Tried = true;
    if (profile().perfForcedOff())
      return false;
#ifdef GG_HAVE_PERF
    static constexpr uint64_t L1dReadMiss =
        PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
        (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
    Fds[0] = openCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
    Fds[1] = openCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
    Fds[2] = openCounter(PERF_TYPE_HW_CACHE, L1dReadMiss);
    Fds[3] = openCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
    Fds[4] = openCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES);
    if (Fds[0] >= 0 || Fds[1] >= 0) {
      profile().notePerfOpened();
      return true;
    }
#endif
    return false;
  }

  bool read(HwCounters &Out) {
    if (!ensureOpen())
      return false;
    uint64_t V[NCounters] = {0, 0, 0, 0, 0};
#ifdef GG_HAVE_PERF
    for (int I = 0; I < NCounters; ++I)
      if (Fds[I] >= 0 && ::read(Fds[I], &V[I], sizeof(V[I])) !=
                             static_cast<ssize_t>(sizeof(V[I])))
        V[I] = 0;
#endif
    Out.Cycles = V[0];
    Out.Instructions = V[1];
    Out.L1dMisses = V[2];
    Out.LlcMisses = V[3];
    Out.BranchMisses = V[4];
    return true;
  }

  ~ThreadPerf() {
#ifdef GG_HAVE_PERF
    for (int Fd : Fds)
      if (Fd >= 0)
        close(Fd);
#endif
  }
};

ThreadPerf &threadPerf() {
  static thread_local ThreadPerf TP;
  return TP;
}

uint64_t satSub(uint64_t A, uint64_t B) { return A > B ? A - B : 0; }

} // namespace

//===----------------------------------------------------------------------===//
// ProfileRegistry
//===----------------------------------------------------------------------===//

ProfileRegistry &ProfileRegistry::global() {
  static ProfileRegistry R;
  return R;
}

void ProfileRegistry::configure(ProfileMode Mode, ProfileTimebase TB) {
  TimebaseA.store(static_cast<uint8_t>(TB), std::memory_order_relaxed);
  ModeA.store(static_cast<uint8_t>(Mode), std::memory_order_relaxed);
}

void ProfileRegistry::chargeDyn(int State, int TermIdx, uint64_t Ticks) {
  std::lock_guard<std::mutex> Lock(M);
  ProfCell &C = Dyn[{State, TermIdx}];
  C.Ticks += Ticks;
  ++C.Events;
}

void ProfileRegistry::chargePhase(ProfPhase P, uint64_t Ticks,
                                  uint64_t Events) {
  PhaseAcc &A = PhaseAccs[static_cast<size_t>(P)];
  A.Ticks.fetch_add(Ticks, std::memory_order_relaxed);
  A.Events.fetch_add(Events, std::memory_order_relaxed);
}

void ProfileRegistry::chargePhaseHw(ProfPhase P, const HwCounters &D) {
  PhaseAcc &A = PhaseAccs[static_cast<size_t>(P)];
  A.Cycles.fetch_add(D.Cycles, std::memory_order_relaxed);
  A.Instructions.fetch_add(D.Instructions, std::memory_order_relaxed);
  A.L1dMisses.fetch_add(D.L1dMisses, std::memory_order_relaxed);
  A.LlcMisses.fetch_add(D.LlcMisses, std::memory_order_relaxed);
  A.BranchMisses.fetch_add(D.BranchMisses, std::memory_order_relaxed);
}

void ProfileRegistry::sizeGrammar(size_t NumProds, size_t NumStates) {
  std::lock_guard<std::mutex> Lock(M);
  ProdTicks.growLocked(NumProds);
  ProdEvents.growLocked(NumProds);
  StateTicks.growLocked(NumStates);
  StateEvents.growLocked(NumStates);
}

void ProfileRegistry::setFingerprint(const std::string &HexFP) {
  std::lock_guard<std::mutex> Lock(M);
  Fingerprint = HexFP;
}

bool ProfileRegistry::perfAvailable() const {
  return PerfOpened.load(std::memory_order_relaxed) &&
         !PerfForcedOff.load(std::memory_order_relaxed);
}

void ProfileRegistry::reset() {
  std::lock_guard<std::mutex> Lock(M);
  for (ShardedCounters *F :
       {&StateTicks, &StateEvents, &ProdTicks, &ProdEvents})
    F->resetLocked();
  for (PhaseAcc &A : PhaseAccs) {
    A.Ticks.store(0, std::memory_order_relaxed);
    A.Events.store(0, std::memory_order_relaxed);
    A.Cycles.store(0, std::memory_order_relaxed);
    A.Instructions.store(0, std::memory_order_relaxed);
    A.L1dMisses.store(0, std::memory_order_relaxed);
    A.LlcMisses.store(0, std::memory_order_relaxed);
    A.BranchMisses.store(0, std::memory_order_relaxed);
  }
  Dyn.clear();
  Compiles.store(0, std::memory_order_relaxed);
}

ProfileSnapshot ProfileRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  ProfileSnapshot Out;
  Out.Fingerprint = Fingerprint;
  Out.Mode = mode();
  Out.Timebase = timebase();
  // Steps ticks are unitless; only the cycles timebase converts to the
  // shared MonoClock seconds domain.
  Out.TicksPerSecond =
      Out.Timebase == ProfileTimebase::Cycles ? profTicksPerSecond() : 0;
  Out.PerfAvailable = perfAvailable();
  Out.Compiles = Compiles.load(std::memory_order_relaxed);
  Out.NumProds = ProdTicks.size();
  Out.NumStates = StateTicks.size();
  for (size_t I = 0; I < Out.NumStates; ++I) {
    uint64_t T = StateTicks.sum(I), E = StateEvents.sum(I);
    if (T | E)
      Out.States[static_cast<int>(I)] = {T, E};
  }
  for (size_t I = 0; I < Out.NumProds; ++I) {
    uint64_t T = ProdTicks.sum(I), E = ProdEvents.sum(I);
    if (T | E)
      Out.Prods[static_cast<int>(I)] = {T, E};
  }
  for (size_t P = 0; P < static_cast<size_t>(ProfPhase::NumPhases); ++P) {
    const PhaseAcc &A = PhaseAccs[P];
    uint64_t T = A.Ticks.load(std::memory_order_relaxed);
    uint64_t E = A.Events.load(std::memory_order_relaxed);
    if (!(T | E))
      continue;
    PhaseProfile &PP = Out.Phases[profPhaseName(static_cast<ProfPhase>(P))];
    PP.Cell = {T, E};
    PP.Hw.Cycles = A.Cycles.load(std::memory_order_relaxed);
    PP.Hw.Instructions = A.Instructions.load(std::memory_order_relaxed);
    PP.Hw.L1dMisses = A.L1dMisses.load(std::memory_order_relaxed);
    PP.Hw.LlcMisses = A.LlcMisses.load(std::memory_order_relaxed);
    PP.Hw.BranchMisses = A.BranchMisses.load(std::memory_order_relaxed);
  }
  Out.Dyn = Dyn;
  return Out;
}

//===----------------------------------------------------------------------===//
// ProfilePhaseScope
//===----------------------------------------------------------------------===//

ProfilePhaseScope::ProfilePhaseScope(ProfPhase P, bool WallOnly) {
  ProfileRegistry &R = profile();
  if (!R.instrEnabled())
    return;
  TB = R.timebase();
  // Wall-only scopes span the parallel region: their steps-timebase delta
  // would depend on which thread ran what, so they no-op under steps to
  // keep the artifact schedule-independent.
  if (WallOnly && TB == ProfileTimebase::Steps)
    return;
  Live = true;
  Phase = P;
  if (R.perfEnabled())
    PerfLive = threadPerf().read(PerfStart);
  StartTicks = ProfileRegistry::now(TB);
}

ProfilePhaseScope::~ProfilePhaseScope() {
  if (!Live)
    return;
  uint64_t End = ProfileRegistry::now(TB);
  ProfileRegistry &R = profile();
  R.chargePhase(Phase, satSub(End, StartTicks), 1);
  if (PerfLive) {
    HwCounters Now;
    if (threadPerf().read(Now)) {
      HwCounters Delta{satSub(Now.Cycles, PerfStart.Cycles),
                       satSub(Now.Instructions, PerfStart.Instructions),
                       satSub(Now.L1dMisses, PerfStart.L1dMisses),
                       satSub(Now.LlcMisses, PerfStart.LlcMisses),
                       satSub(Now.BranchMisses, PerfStart.BranchMisses)};
      R.chargePhaseHw(Phase, Delta);
    }
  }
}

//===----------------------------------------------------------------------===//
// ProfileSnapshot
//===----------------------------------------------------------------------===//

std::map<int, ProfCell> ProfileSnapshot::regions() const {
  std::map<int, ProfCell> Out;
  for (const auto &[Id, C] : States) {
    ProfCell &R = Out[static_cast<int>(Id / RegionSize)];
    R.Ticks += C.Ticks;
    R.Events += C.Events;
  }
  return Out;
}

namespace {

void emitCellMap(std::string &Out, const char *Key,
                 const std::map<int, ProfCell> &M) {
  Out += strf(",\"%s\":{", Key);
  bool First = true;
  for (const auto &[Id, C] : M) {
    Out += strf("%s\"%d\":{\"ticks\":%llu,\"events\":%llu}", First ? "" : ",",
                Id, static_cast<unsigned long long>(C.Ticks),
                static_cast<unsigned long long>(C.Events));
    First = false;
  }
  Out += "}";
}

bool parseCell(const JsonValue &V, ProfCell &C, const char *What,
               std::string &Err) {
  if (!V.isObject()) {
    Err = strf("non-object entry in \"%s\"", What);
    return false;
  }
  C.Ticks = static_cast<uint64_t>(V.numberOr("ticks"));
  C.Events = static_cast<uint64_t>(V.numberOr("events"));
  return true;
}

bool parseIntKey(const std::string &Key, int &Out) {
  if (Key.empty())
    return false;
  int V = 0;
  for (char C : Key) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + (C - '0');
  }
  Out = V;
  return true;
}

bool parseCellMap(const JsonValue *V, std::map<int, ProfCell> &Out,
                  const char *What, std::string &Err) {
  if (!V || !V->isObject()) {
    Err = strf("missing or non-object \"%s\"", What);
    return false;
  }
  for (const auto &[Key, Val] : V->Obj) {
    int Id;
    ProfCell C;
    if (!parseIntKey(Key, Id) || !parseCell(Val, C, What, Err)) {
      if (Err.empty())
        Err = strf("bad key \"%s\" in \"%s\"", Key.c_str(), What);
      return false;
    }
    ProfCell &Mine = Out[Id];
    Mine.Ticks += C.Ticks;
    Mine.Events += C.Events;
  }
  return true;
}

} // namespace

std::string ProfileSnapshot::toJson() const {
  std::string Out = strf(
      "{\"schema\":\"gg-profile-v1\",\"fingerprint\":\"%s\","
      "\"mode\":\"%s\",\"timebase\":\"%s\",\"ticks_per_second\":%.9g,"
      "\"perf_available\":%s,\"compiles\":%llu,"
      "\"shape\":{\"productions\":%llu,\"states\":%llu,\"region_size\":%llu}",
      jsonEscape(Fingerprint).c_str(), modeName(Mode), timebaseName(Timebase),
      TicksPerSecond, PerfAvailable ? "true" : "false",
      static_cast<unsigned long long>(Compiles),
      static_cast<unsigned long long>(NumProds),
      static_cast<unsigned long long>(NumStates),
      static_cast<unsigned long long>(RegionSize));

  Out += ",\"phases\":{";
  bool First = true;
  for (const auto &[Name, P] : Phases) {
    Out += strf("%s\"%s\":{\"ticks\":%llu,\"events\":%llu", First ? "" : ",",
                jsonEscape(Name).c_str(),
                static_cast<unsigned long long>(P.Cell.Ticks),
                static_cast<unsigned long long>(P.Cell.Events));
    if (P.Hw.any())
      Out += strf(",\"hw\":{\"cycles\":%llu,\"instructions\":%llu,"
                  "\"l1d_misses\":%llu,\"llc_misses\":%llu,"
                  "\"branch_misses\":%llu}",
                  static_cast<unsigned long long>(P.Hw.Cycles),
                  static_cast<unsigned long long>(P.Hw.Instructions),
                  static_cast<unsigned long long>(P.Hw.L1dMisses),
                  static_cast<unsigned long long>(P.Hw.LlcMisses),
                  static_cast<unsigned long long>(P.Hw.BranchMisses));
    Out += "}";
    First = false;
  }
  Out += "}";

  emitCellMap(Out, "states", States);
  emitCellMap(Out, "productions", Prods);
  // Regions are a pure projection of "states"; emitted for consumers,
  // ignored by parse() so round-trips stay byte-identical.
  emitCellMap(Out, "regions", regions());

  Out += ",\"dyn\":{";
  First = true;
  for (const auto &[Key, C] : Dyn) {
    Out += strf("%s\"%d:%d\":{\"ticks\":%llu,\"events\":%llu}",
                First ? "" : ",", Key.first, Key.second,
                static_cast<unsigned long long>(C.Ticks),
                static_cast<unsigned long long>(C.Events));
    First = false;
  }
  Out += "}}";
  return Out;
}

bool ProfileSnapshot::parse(const JsonValue &V, std::string &Err) {
  *this = ProfileSnapshot();
  const JsonValue *Schema = V.find("schema");
  if (!Schema || Schema->Str != "gg-profile-v1") {
    Err = "not a gg-profile-v1 artifact";
    return false;
  }
  if (const JsonValue *FP = V.find("fingerprint"))
    Fingerprint = FP->Str;
  if (const JsonValue *M = V.find("mode")) {
    ProfileTimebase IgnoredTB;
    std::string SpecErr;
    if (!parseProfileSpec(M->Str, Mode, IgnoredTB, SpecErr)) {
      Err = SpecErr;
      return false;
    }
  }
  if (const JsonValue *TB = V.find("timebase"))
    Timebase = TB->Str == "steps" ? ProfileTimebase::Steps
                                  : ProfileTimebase::Cycles;
  TicksPerSecond = V.numberOr("ticks_per_second");
  if (const JsonValue *PA = V.find("perf_available"))
    PerfAvailable = PA->B;
  Compiles = V.find("compiles") ? V.find("compiles")->asU64() : 0;
  const JsonValue *Shape = V.find("shape");
  if (!Shape || !Shape->isObject()) {
    Err = "missing \"shape\"";
    return false;
  }
  NumProds = static_cast<uint64_t>(Shape->numberOr("productions"));
  NumStates = static_cast<uint64_t>(Shape->numberOr("states"));

  const JsonValue *Ph = V.find("phases");
  if (!Ph || !Ph->isObject()) {
    Err = "missing \"phases\"";
    return false;
  }
  for (const auto &[Name, Val] : Ph->Obj) {
    PhaseProfile &P = Phases[Name];
    if (!parseCell(Val, P.Cell, "phases", Err))
      return false;
    if (const JsonValue *Hw = Val.find("hw")) {
      P.Hw.Cycles = static_cast<uint64_t>(Hw->numberOr("cycles"));
      P.Hw.Instructions = static_cast<uint64_t>(Hw->numberOr("instructions"));
      P.Hw.L1dMisses = static_cast<uint64_t>(Hw->numberOr("l1d_misses"));
      P.Hw.LlcMisses = static_cast<uint64_t>(Hw->numberOr("llc_misses"));
      P.Hw.BranchMisses = static_cast<uint64_t>(Hw->numberOr("branch_misses"));
    }
  }

  if (!parseCellMap(V.find("states"), States, "states", Err) ||
      !parseCellMap(V.find("productions"), Prods, "productions", Err))
    return false;

  const JsonValue *D = V.find("dyn");
  if (!D || !D->isObject()) {
    Err = "missing \"dyn\"";
    return false;
  }
  for (const auto &[Key, Val] : D->Obj) {
    size_t Colon = Key.find(':');
    int State, Term;
    if (Colon == std::string::npos ||
        !parseIntKey(Key.substr(0, Colon), State) ||
        !parseIntKey(Key.substr(Colon + 1), Term)) {
      Err = strf("bad dyn key \"%s\"", Key.c_str());
      return false;
    }
    ProfCell C;
    if (!parseCell(Val, C, "dyn", Err))
      return false;
    ProfCell &Mine = Dyn[{State, Term}];
    Mine.Ticks += C.Ticks;
    Mine.Events += C.Events;
  }
  return true;
}

bool ProfileSnapshot::parse(const std::string &Text, std::string &Err) {
  JsonValue V;
  if (!parseJson(Text, V, Err))
    return false;
  return parse(V, Err);
}

bool ProfileSnapshot::merge(const ProfileSnapshot &Other, std::string &Err) {
  if (!Fingerprint.empty() && !Other.Fingerprint.empty() &&
      Fingerprint != Other.Fingerprint) {
    Err = strf("fingerprint mismatch (%s vs %s): artifacts come from "
               "different grammars/tables",
               Fingerprint.c_str(), Other.Fingerprint.c_str());
    return false;
  }
  if ((NumProds && Other.NumProds && NumProds != Other.NumProds) ||
      (NumStates && Other.NumStates && NumStates != Other.NumStates)) {
    Err = "table shape mismatch: artifacts come from different tables";
    return false;
  }
  if (Compiles && Other.Compiles && Timebase != Other.Timebase) {
    Err = "timebase mismatch: cycles and steps ticks must not be summed";
    return false;
  }
  if (Fingerprint.empty())
    Fingerprint = Other.Fingerprint;
  if (Mode == ProfileMode::Off)
    Mode = Other.Mode;
  if (!Compiles)
    Timebase = Other.Timebase;
  // Same-machine artifacts calibrate within noise of each other; keep the
  // larger sample's rate by preferring a nonzero existing value.
  if (TicksPerSecond == 0)
    TicksPerSecond = Other.TicksPerSecond;
  PerfAvailable = PerfAvailable || Other.PerfAvailable;
  NumProds = std::max(NumProds, Other.NumProds);
  NumStates = std::max(NumStates, Other.NumStates);
  Compiles += Other.Compiles;
  for (const auto &[Name, P] : Other.Phases) {
    PhaseProfile &Mine = Phases[Name];
    Mine.Cell.Ticks += P.Cell.Ticks;
    Mine.Cell.Events += P.Cell.Events;
    Mine.Hw.add(P.Hw);
  }
  for (const auto &[Id, C] : Other.States) {
    States[Id].Ticks += C.Ticks;
    States[Id].Events += C.Events;
  }
  for (const auto &[Id, C] : Other.Prods) {
    Prods[Id].Ticks += C.Ticks;
    Prods[Id].Events += C.Events;
  }
  for (const auto &[Key, C] : Other.Dyn) {
    Dyn[Key].Ticks += C.Ticks;
    Dyn[Key].Events += C.Events;
  }
  return true;
}
