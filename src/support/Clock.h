//===- Clock.h - the one monotonic clock source -----------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single monotonic time source every timing consumer shares. Before
/// this header existed, `support/Timer.h` and `support/Trace.h` each
/// chose their own `std::chrono::steady_clock` alias and the profiler
/// would have added a third; now Timer (and through it every
/// `*_seconds` value in `gg-stats-v1`), Trace's span timestamps, and the
/// `gg-profile-v1` tick-to-seconds conversion all derive from MonoClock,
/// so per-phase numbers from different artifacts are directly comparable.
///
/// Two granularities:
///   * MonoClock — steady_clock, for second-scale phase accounting.
///   * profTicks() — the cheapest raw timestamp the hardware offers
///     (rdtsc on x86-64, MonoClock nanoseconds elsewhere), for the
///     profiler's per-parse-step charging where a clock_gettime vDSO
///     call per step would dominate the work being measured.
///     profTicksPerSecond() calibrates ticks against MonoClock so tick
///     totals convert back into the shared seconds domain.
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_CLOCK_H
#define GG_SUPPORT_CLOCK_H

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define GG_PROF_TICKS_RDTSC 1
#endif

namespace gg {

/// The process-wide monotonic clock. Everything that reports seconds
/// (Timer, Trace, profile artifacts) measures against this one source.
using MonoClock = std::chrono::steady_clock;

/// Seconds between two MonoClock points.
inline double monoSeconds(MonoClock::time_point From, MonoClock::time_point To) {
  return std::chrono::duration<double>(To - From).count();
}

/// Raw profiling timestamp: monotone-enough ticks at the lowest cost the
/// platform offers. On x86-64 this is rdtsc (~7ns, no serialization; TSCs
/// are invariant and synchronized on everything this project targets);
/// elsewhere it is MonoClock nanoseconds (~20ns via the vDSO).
inline uint64_t profTicks() {
#ifdef GG_PROF_TICKS_RDTSC
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          MonoClock::now().time_since_epoch())
          .count());
#endif
}

/// Measured profTicks() rate, calibrated once (lazily) against MonoClock
/// over a ~2ms spin. Good to ~0.1%, which is far tighter than the noise
/// on anything the profiler reports in seconds.
inline double profTicksPerSecond() {
  static const double TPS = [] {
    MonoClock::time_point T0 = MonoClock::now();
    uint64_t C0 = profTicks();
    while (MonoClock::now() - T0 < std::chrono::milliseconds(2)) {
    }
    MonoClock::time_point T1 = MonoClock::now();
    uint64_t C1 = profTicks();
    double S = monoSeconds(T0, T1);
    return S > 0 ? static_cast<double>(C1 - C0) / S : 1e9;
  }();
  return TPS;
}

} // namespace gg

#endif // GG_SUPPORT_CLOCK_H
