//===- FlightRecorder.h - always-on crash flight recorder -------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An always-on, lock-free flight recorder: every thread records recent
/// structured events (admissions, sheds, budget kills, watchdog kills,
/// reloads, code-gen phase transitions, block reports) into a fixed-size
/// per-thread ring of POD entries. Recording is a handful of relaxed
/// stores — cheap enough to leave enabled in production — and the rings
/// are dumped as one versioned `gg-flight-v1` JSON artifact when the
/// process is about to die (crash signal, watchdog kill, fatal fault) or
/// is asked for its recent history (SIGQUIT, clean exit). The dump path
/// is async-signal-safe end to end: static storage, hand-rolled number
/// formatting, raw write(2) — no allocation, no stdio, no locks.
///
/// Events carry the thread's active RequestContext (support/Trace.h), so
/// the last events before a kill name the request that was executing —
/// the "what was the server doing?" answer the post-mortem needs.
/// Schema and worked examples: docs/observability.md.
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_FLIGHTRECORDER_H
#define GG_SUPPORT_FLIGHTRECORDER_H

#include <cstdint>

namespace gg {

/// What happened. Names (flightKindName) are the `kind` strings in the
/// gg-flight-v1 dump; the `arg` field's meaning is per-kind.
enum class FlightKind : uint8_t {
  None = 0,        ///< unused slot
  Admit,           ///< request admitted; arg = queue depth after admit
  Dispatch,        ///< worker picked the request up; arg = queue wait ms
  Respond,         ///< response (or claim loss) published; arg = status
  Shed,            ///< admission shed the request; arg = OverloadCause
  BudgetKill,      ///< budget stop became the response; arg = BudgetStop
  WatchdogKill,    ///< watchdog abandoned a wedged worker; arg = ms late
  Reload,          ///< table image hot-swapped; arg = new generation
  Drain,           ///< graceful drain began
  PhaseTransform,  ///< code-gen phase 1 started (per compile)
  PhaseMatch,      ///< phases 2-4 started for one function
  PhaseReplay,     ///< instruction replay started for one function
  PhaseFallback,   ///< PCC fallback regeneration for one blocked tree
  PhaseStitch,     ///< per-function streams being stitched (per compile)
  Block,           ///< matcher block report; arg = BlockReport cause
  CrashSignal,     ///< fatal signal caught; arg = signal number
};

/// Stable dump name for \p K ("admit", "watchdog-kill", ...).
const char *flightKindName(FlightKind K);

/// Records one event into the calling thread's ring: global sequence
/// number, monotonic nanoseconds, thread id, the active RequestContext,
/// and \p Arg. Lock-free and allocation-free; safe from pool workers.
void flightRecord(FlightKind K, int64_t Arg = 0);

/// Same, with an explicit request identity — for recorders acting on
/// another thread's behalf (the watchdog killing a worker's request).
void flightRecordFor(FlightKind K, uint64_t Req, uint64_t Gen,
                     int64_t Arg = 0);

/// Sets the artifact path for flightDump()'s convenience form and the
/// signal handlers. Copied into static storage; empty disables dumping.
void flightSetDumpPath(const char *Path);

/// The configured dump path ("" when unset).
const char *flightDumpPath();

/// Writes the gg-flight-v1 JSON dump to \p Fd: all rings merged, sorted
/// by sequence number (so event order in the artifact is monotone), with
/// \p Reason recorded in the header. Async-signal-safe.
void flightDumpFd(int Fd, const char *Reason);

/// Opens the configured dump path (O_TRUNC) and dumps into it. Returns
/// false when no path is configured or the open failed. Async-signal-safe.
bool flightDump(const char *Reason);

/// Installs the dump-on-death handlers: SIGSEGV/SIGBUS/SIGILL/SIGFPE/
/// SIGABRT dump and re-raise the default disposition; SIGQUIT dumps and
/// returns (the JVM convention: a live thread-dump poke, not a kill).
/// Idempotent; a no-op until a dump path is configured.
void flightInstallHandlers();

/// Total events ever recorded (spilled ring slots included) — the dump
/// header reports it so consumers can tell "256 events" from "256
/// retained of 40k". Test hook; not async-signal-safe guarantees beyond
/// an atomic load.
uint64_t flightEventCount();

} // namespace gg

#endif // GG_SUPPORT_FLIGHTRECORDER_H
