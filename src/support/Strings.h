//===- Strings.h - printf-style formatting and string helpers --*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string utilities shared across the project: printf-style formatting
/// into std::string, splitting, trimming, and numeric parsing.
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_STRINGS_H
#define GG_SUPPORT_STRINGS_H

#include <cstdarg>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gg {

/// Formats \p Fmt with printf semantics and returns the result as a string.
std::string strf(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// va_list variant of strf.
std::string strfv(const char *Fmt, va_list Args);

/// Splits \p Text on \p Sep, keeping empty fields.
std::vector<std::string_view> splitString(std::string_view Text, char Sep);

/// Splits \p Text on runs of whitespace, dropping empty fields.
std::vector<std::string_view> splitWhitespace(std::string_view Text);

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view Text);

/// Returns true if \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Returns true if \p Text ends with \p Suffix.
bool endsWith(std::string_view Text, std::string_view Suffix);

/// Parses a signed 64-bit integer in decimal, or 0x-prefixed hex.
/// Returns std::nullopt on any trailing garbage or overflow.
std::optional<int64_t> parseInt(std::string_view Text);

/// Joins the elements of \p Parts with \p Sep.
std::string joinStrings(const std::vector<std::string> &Parts,
                        std::string_view Sep);

} // namespace gg

#endif // GG_SUPPORT_STRINGS_H
