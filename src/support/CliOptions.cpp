//===- CliOptions.cpp - shared example-driver options -------------------------===//

#include "support/CliOptions.h"
#include "support/Coverage.h"
#include "support/FaultInject.h"
#include "support/FlightRecorder.h"
#include "support/Profile.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace gg;

CliParse gg::parseCommonDriverOption(const std::string &Arg,
                                     CommonDriverOptions &Opts) {
  if (Arg.rfind("--threads=", 0) == 0) {
    char *End = nullptr;
    long N = strtol(Arg.c_str() + 10, &End, 10);
    if (!End || *End || N < 0 || N > 256) {
      fprintf(stderr, "bad --threads value: %s\n", Arg.c_str());
      return CliParse::Bad;
    }
    Opts.Threads = static_cast<int>(N);
    return CliParse::Ok;
  }
  if (Arg.rfind("--stats-json=", 0) == 0) {
    Opts.StatsJsonPath = Arg.substr(13);
    return CliParse::Ok;
  }
  if (Arg.rfind("--trace-json=", 0) == 0) {
    Opts.TraceJsonPath = Arg.substr(13);
    return CliParse::Ok;
  }
  if (Arg.rfind("--coverage-json=", 0) == 0) {
    Opts.CoverageJsonPath = Arg.substr(16);
    return CliParse::Ok;
  }
  if (Arg.rfind("--profile=", 0) == 0) {
    std::string Err;
    if (!parseProfileSpec(Arg.substr(10), Opts.Profile, Opts.ProfileTb, Err)) {
      fprintf(stderr, "bad --profile spec: %s\n", Err.c_str());
      return CliParse::Bad;
    }
    Opts.ProfileGiven = true;
    return CliParse::Ok;
  }
  if (Arg.rfind("--profile-json=", 0) == 0) {
    Opts.ProfileJsonPath = Arg.substr(15);
    return CliParse::Ok;
  }
  if (Arg.rfind("--flight-json=", 0) == 0) {
    Opts.FlightJsonPath = Arg.substr(14);
    if (Opts.FlightJsonPath.empty() || Opts.FlightJsonPath == "-") {
      fprintf(stderr, "--flight-json= requires a file path (the dump runs "
                      "inside signal handlers, so stdout is not allowed)\n");
      return CliParse::Bad;
    }
    return CliParse::Ok;
  }
  if (Arg.rfind("--fault=", 0) == 0) {
    std::string Err;
    if (!faultInject().configure(Arg.substr(8), Err)) {
      fprintf(stderr, "bad --fault spec: %s\n", Err.c_str());
      return CliParse::Bad;
    }
    return CliParse::Ok;
  }
  return CliParse::NotMine;
}

const char *gg::commonDriverUsage() {
  return "[--threads=N] [--fault=SPEC] [--stats-json=FILE] "
         "[--trace-json=FILE] [--coverage-json=FILE] "
         "[--profile=off|instr|perf[,cycles|,steps]] [--profile-json=FILE] "
         "[--flight-json=FILE]";
}

bool gg::writeTextOrStdout(const std::string &Path, const std::string &Text) {
  if (Path == "-") {
    fputs(Text.c_str(), stdout);
    return true;
  }
  std::ofstream Out(Path);
  if (!Out) {
    fprintf(stderr, "cannot write %s\n", Path.c_str());
    return false;
  }
  Out << Text;
  return true;
}

TelemetryDump::TelemetryDump(const CommonDriverOptions &O) : Opts(O) {
  if (!Opts.TraceJsonPath.empty())
    TraceRecorder::global().enable();
  if (!Opts.CoverageJsonPath.empty())
    coverage().enable();
  // Asking for the artifact without picking a mode means instr; an
  // explicit --profile= wins (including --profile=off to disarm).
  if (!Opts.ProfileGiven && !Opts.ProfileJsonPath.empty())
    Opts.Profile = ProfileMode::Instr;
  if (Opts.Profile != ProfileMode::Off || Opts.ProfileGiven)
    profile().configure(Opts.Profile, Opts.ProfileTb);
  if (!Opts.FlightJsonPath.empty()) {
    flightSetDumpPath(Opts.FlightJsonPath.c_str());
    flightInstallHandlers();
  }
}

TelemetryDump::~TelemetryDump() {
  if (!Opts.StatsJsonPath.empty())
    writeTextOrStdout(Opts.StatsJsonPath, stats().toJson() + "\n");
  if (!Opts.TraceJsonPath.empty())
    writeTextOrStdout(Opts.TraceJsonPath,
                      TraceRecorder::global().toChromeJson());
  if (!Opts.CoverageJsonPath.empty())
    writeTextOrStdout(Opts.CoverageJsonPath, coverage().toJson() + "\n");
  if (!Opts.ProfileJsonPath.empty())
    writeTextOrStdout(Opts.ProfileJsonPath, profile().toJson() + "\n");
  // Every normal exit leaves a flight dump too, so the artifact exists
  // whether the process died screaming (crash handler) or politely.
  if (!Opts.FlightJsonPath.empty())
    flightDump("exit");
}
