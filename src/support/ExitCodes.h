//===- ExitCodes.h - driver exit-code taxonomy ------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process exit codes every driver (`compile_minic`, `run_vax`, the
/// compile server) reports. The crash-only supervisor loop
/// (`scripts/serve.sh`) keys its restart policy off these, so the three
/// failure classes must stay distinct:
///
///   * ExitUsage — the command line itself was malformed. Restarting with
///     the same argv can never succeed; the supervisor gives up.
///   * ExitCompileFailure — the *input* was bad or hit a recoverable
///     failure (frontend rejection, codegen failure, exhausted request
///     budget). The process is healthy; other inputs would work.
///   * ExitFatalFault — the process environment or shared immutable state
///     is broken (machine description failed to build, table checksum
///     mismatch at server startup, internal invariant violated). This is
///     the crash-only path: the supervisor restarts with backoff.
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_EXITCODES_H
#define GG_SUPPORT_EXITCODES_H

namespace gg {

enum ExitCode : int {
  ExitOk = 0,
  ExitCompileFailure = 1, ///< recoverable: bad/unlucky input, budget hit
  ExitUsage = 2,          ///< malformed command line; retrying is pointless
  ExitFatalFault = 3,     ///< broken environment/tables; restart + backoff
};

} // namespace gg

#endif // GG_SUPPORT_EXITCODES_H
