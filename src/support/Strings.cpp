//===- Strings.cpp - printf-style formatting and string helpers ----------===//

#include "support/Strings.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

using namespace gg;

std::string gg::strfv(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed < 0)
    return std::string();
  std::string Result(static_cast<size_t>(Needed), '\0');
  vsnprintf(Result.data(), Result.size() + 1, Fmt, Args);
  return Result;
}

std::string gg::strf(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Result = strfv(Fmt, Args);
  va_end(Args);
  return Result;
}

std::vector<std::string_view> gg::splitString(std::string_view Text,
                                              char Sep) {
  std::vector<std::string_view> Fields;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Fields.push_back(Text.substr(Start));
      return Fields;
    }
    Fields.push_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::vector<std::string_view> gg::splitWhitespace(std::string_view Text) {
  std::vector<std::string_view> Fields;
  size_t I = 0, N = Text.size();
  while (I < N) {
    while (I < N && isspace(static_cast<unsigned char>(Text[I])))
      ++I;
    size_t Start = I;
    while (I < N && !isspace(static_cast<unsigned char>(Text[I])))
      ++I;
    if (I > Start)
      Fields.push_back(Text.substr(Start, I - Start));
  }
  return Fields;
}

std::string_view gg::trim(std::string_view Text) {
  size_t Begin = 0, End = Text.size();
  while (Begin < End && isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin && isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

bool gg::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

bool gg::endsWith(std::string_view Text, std::string_view Suffix) {
  return Text.size() >= Suffix.size() &&
         Text.substr(Text.size() - Suffix.size()) == Suffix;
}

std::optional<int64_t> gg::parseInt(std::string_view Text) {
  if (Text.empty())
    return std::nullopt;
  std::string Buffer(Text);
  errno = 0;
  char *End = nullptr;
  long long Value = strtoll(Buffer.c_str(), &End, 0);
  if (errno != 0 || End != Buffer.c_str() + Buffer.size())
    return std::nullopt;
  return static_cast<int64_t>(Value);
}

std::string gg::joinStrings(const std::vector<std::string> &Parts,
                            std::string_view Sep) {
  std::string Result;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I)
      Result.append(Sep);
    Result.append(Parts[I]);
  }
  return Result;
}
