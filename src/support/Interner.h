//===- Interner.h - string interning ----------------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple string interner. Interned strings are identified by dense
/// 32-bit ids, which the grammar and IR layers use as cheap symbol handles.
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_INTERNER_H
#define GG_SUPPORT_INTERNER_H

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gg {

/// Dense handle for an interned string. Value 0 is reserved for "empty".
class InternedString {
public:
  InternedString() = default;
  explicit InternedString(uint32_t Id) : Id(Id) {}

  uint32_t id() const { return Id; }
  bool isEmpty() const { return Id == 0; }

  friend bool operator==(InternedString A, InternedString B) {
    return A.Id == B.Id;
  }
  friend bool operator!=(InternedString A, InternedString B) {
    return A.Id != B.Id;
  }
  friend bool operator<(InternedString A, InternedString B) {
    return A.Id < B.Id;
  }

private:
  uint32_t Id = 0;
};

/// Owns interned string storage; ids are stable for the table's lifetime.
class Interner {
public:
  Interner() { Strings.emplace_back(); /* id 0 = empty */ }

  /// Interns \p Text, returning its stable id.
  InternedString intern(std::string_view Text) {
    auto It = Index.find(std::string(Text));
    if (It != Index.end())
      return InternedString(It->second);
    uint32_t Id = static_cast<uint32_t>(Strings.size());
    Strings.emplace_back(Text);
    Index.emplace(Strings.back(), Id);
    return InternedString(Id);
  }

  /// Returns the text for \p Handle.
  const std::string &text(InternedString Handle) const {
    assert(Handle.id() < Strings.size() && "bad interned string id");
    return Strings[Handle.id()];
  }

  size_t size() const { return Strings.size(); }

private:
  std::vector<std::string> Strings;
  std::unordered_map<std::string, uint32_t> Index;
};

} // namespace gg

#endif // GG_SUPPORT_INTERNER_H
