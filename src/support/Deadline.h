//===- Deadline.h - per-request deadlines and budgets -----------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request-quarantine layer's budget object. A RequestBudget is owned
/// by whoever admits a compile request (the compile server, a test, a
/// driver) and threaded by pointer through CodeGenOptions into the hot
/// loops, which check it cooperatively:
///
///   * the matcher polls Cancelled/deadline every BudgetPollMask+1 steps
///     and charges its step count against MaxSteps;
///   * NodeArena charges node allocations against MaxArenaBytes (sticky
///     per-arena exhaustion, checked at tree/phase granularity);
///   * the code generator checks expiry between functions and refuses to
///     run the PCC fallback ladder for budget/deadline failures — a
///     faulted request must fail fast, not consume more of the worker.
///
/// All members are plain atomics: the server's watchdog thread sets
/// Cancelled while a pool worker reads it, and one request's budget may be
/// consulted from several codegen workers at once. A null budget pointer
/// everywhere means "no limits" and costs one branch on the cold sides,
/// one relaxed load per poll interval in the matcher.
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_DEADLINE_H
#define GG_SUPPORT_DEADLINE_H

#include "support/Clock.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace gg {

/// The matcher checks the budget when (steps & BudgetPollMask) == 0: often
/// enough that a runaway parse dies within microseconds of its deadline,
/// rarely enough that the clock read never shows up in profiles.
constexpr uint64_t BudgetPollMask = 127;

/// Why a budgeted request was stopped (sticky; first cause wins).
enum class BudgetStop : uint8_t {
  None = 0,
  Cancelled, ///< externally cancelled (watchdog, client gone)
  Deadline,  ///< wall-clock deadline passed
  Steps,     ///< matcher step budget exhausted
  Memory,    ///< arena byte budget exhausted
};

/// Returns a stable lowercase name for \p S ("deadline", "steps", ...).
inline const char *budgetStopName(BudgetStop S) {
  switch (S) {
  case BudgetStop::None:
    return "none";
  case BudgetStop::Cancelled:
    return "cancelled";
  case BudgetStop::Deadline:
    return "deadline";
  case BudgetStop::Steps:
    return "steps";
  case BudgetStop::Memory:
    return "memory";
  }
  return "none";
}

/// Where an in-flight request currently is, published by the pipeline
/// for live introspection (the Status snapshot's per-request "phase"
/// field, docs/server.md). Monotone per request except Fallback, which
/// can interleave with Match/Replay per tree.
enum class RequestPhase : uint8_t {
  Queued = 0,  ///< admitted, not yet picked up by a worker
  Transform,   ///< phase 1: tree transformation
  Match,       ///< phase 2: pattern matching
  Replay,      ///< phases 3-4: instruction generation + emit
  Fallback,    ///< PCC baseline regeneration of a blocked tree
  Stitch,      ///< per-function streams being stitched
  Responding,  ///< handler returned; response being written
};

/// Returns a stable lowercase name for \p P ("queued", "match", ...).
inline const char *requestPhaseName(RequestPhase P) {
  switch (P) {
  case RequestPhase::Queued:
    return "queued";
  case RequestPhase::Transform:
    return "transform";
  case RequestPhase::Match:
    return "match";
  case RequestPhase::Replay:
    return "replay";
  case RequestPhase::Fallback:
    return "fallback";
  case RequestPhase::Stitch:
    return "stitch";
  case RequestPhase::Responding:
    return "responding";
  }
  return "queued";
}

/// Limits and live usage for one compile request. Zero limit = unlimited.
struct RequestBudget {
  /// Cooperative cancellation flag; set by the watchdog at the deadline
  /// (and on hard kills), observed by the matcher poll.
  std::atomic<bool> Cancelled{false};
  /// Absolute MonoClock deadline in nanoseconds since epoch; 0 = none.
  uint64_t DeadlineNs = 0;
  /// Total matcher steps (shifts+reduces) the request may spend.
  uint64_t MaxSteps = 0;
  /// Parse-stack depth cap; tightens the matcher's own MaxStackDepth.
  size_t MaxStackDepth = 0;
  /// Per-arena node-storage byte cap (each NodeArena of the request —
  /// program arena, worker scratch arenas — is capped individually).
  size_t MaxArenaBytes = 0;

  /// Matcher steps spent so far, across every tree of the request.
  std::atomic<uint64_t> StepsUsed{0};
  /// First stop cause, sticky once set.
  std::atomic<BudgetStop> Stopped{BudgetStop::None};
  /// Current pipeline phase, published by the code generator and read by
  /// the Status snapshot while the request is in flight.
  std::atomic<RequestPhase> Phase{RequestPhase::Queued};

  /// Publishes the current phase (relaxed; introspection is advisory).
  void setPhase(RequestPhase P) {
    Phase.store(P, std::memory_order_relaxed);
  }

  void arm(uint64_t DeadlineMs) {
    DeadlineNs = DeadlineMs == 0
                     ? 0
                     : static_cast<uint64_t>(
                           std::chrono::duration_cast<std::chrono::nanoseconds>(
                               MonoClock::now().time_since_epoch())
                               .count()) +
                           DeadlineMs * 1000000ull;
  }

  static uint64_t nowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            MonoClock::now().time_since_epoch())
            .count());
  }

  /// Records the first stop cause; later causes are ignored.
  void stop(BudgetStop Why) {
    BudgetStop Expected = BudgetStop::None;
    Stopped.compare_exchange_strong(Expected, Why,
                                    std::memory_order_relaxed);
  }

  bool stopped() const {
    return Stopped.load(std::memory_order_relaxed) != BudgetStop::None;
  }

  /// Full poll: cancellation, deadline, and the step total (with \p
  /// PendingSteps not yet folded into StepsUsed). Sets Stopped and
  /// returns true when the request must abort.
  bool shouldStop(uint64_t PendingSteps) {
    if (stopped())
      return true;
    if (Cancelled.load(std::memory_order_relaxed)) {
      stop(BudgetStop::Cancelled);
      return true;
    }
    if (DeadlineNs && nowNs() > DeadlineNs) {
      stop(BudgetStop::Deadline);
      return true;
    }
    if (MaxSteps &&
        StepsUsed.load(std::memory_order_relaxed) + PendingSteps > MaxSteps) {
      stop(BudgetStop::Steps);
      return true;
    }
    return false;
  }
};

} // namespace gg

#endif // GG_SUPPORT_DEADLINE_H
