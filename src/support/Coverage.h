//===- Coverage.h - table coverage hit counters -----------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Coverage profiling for the table-driven paths: which productions the
/// matcher actually reduces by, which parse states real input visits,
/// which dynamic-tie points fire (and what they choose), and which rows
/// of the Figure-3 instruction table the semantic actions consult. This
/// is the feedback loop the related work builds on — Samuelsson's
/// example-based table specialization starts from exactly this usage
/// data — packaged as a versioned `gg-coverage-v1` JSON artifact that the
/// offline `gg-report` tool merges across runs.
///
/// Design constraints, in order:
///   1. *Off is free.* Recording is gated on one relaxed atomic load; the
///      default-off registry adds no measurable cost to the matcher loop.
///   2. *On is cheap and thread-safe.* Hits land in per-thread shards of
///      plain atomic arrays (no locks, no hashing on the hot path); the
///      parallel code generator's workers record concurrently and the
///      shards are summed only at dump time.
///   3. *Deterministic artifacts.* Every recorded event is a property of
///      the compiled input, not of scheduling, and the JSON emits sorted
///      keys — so the artifact for a given input is byte-identical at any
///      thread count (asserted by tests/CoverageTest.cpp).
///
/// Sizing (`sizeGrammar`, `sizeInstrRows`) must happen while no thread is
/// recording. The pipeline guarantees this: targets are constructed
/// serially (VaxTarget::create, Matcher constructor) before any compile
/// workers start. Re-sizing retires the previous counter store instead of
/// freeing it, so a (unsupported, but conceivable) racing reader never
/// touches freed memory.
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_COVERAGE_H
#define GG_SUPPORT_COVERAGE_H

#include "support/Sharded.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace gg {

struct JsonValue;

/// One dynamic-tie point's recorded behavior: how often the matcher hit a
/// deferred reduce/reduce tie there, and which production each event chose.
struct DynPointHits {
  uint64_t Hits = 0;
  std::map<int, uint64_t> Chosen; ///< production id -> times chosen
};

/// A plain-data coverage artifact: what one `gg-coverage-v1` file holds.
/// The registry serializes through this, and `gg-report` parses and
/// merges artifacts with it.
struct CoverageSnapshot {
  std::string Fingerprint; ///< grammar/tables identity (hex); "" = unset
  uint64_t Compiles = 0;   ///< compile() calls covered by the artifact
  uint64_t NumProds = 0, NumStates = 0, NumDynPoints = 0, NumRows = 0;
  std::map<int, uint64_t> ProdHits;  ///< production id -> reductions
  std::map<int, uint64_t> StateHits; ///< state -> visits (pushes)
  std::map<std::pair<int, int>, DynPointHits> Dyn; ///< (state, term) -> hits
  std::map<std::string, uint64_t> RowHits; ///< instruction-table row -> hits

  /// Serializes as one `gg-coverage-v1` JSON object with sorted keys.
  std::string toJson() const;

  /// Parses a `gg-coverage-v1` object. Returns false and sets \p Err on
  /// malformed input or a schema mismatch.
  bool parse(const JsonValue &V, std::string &Err);
  bool parse(const std::string &Text, std::string &Err);

  /// Adds \p Other into this artifact. Fails (false, \p Err) when the
  /// fingerprints or table shapes disagree — artifacts from different
  /// grammars must not be summed.
  bool merge(const CoverageSnapshot &Other, std::string &Err);
};

/// The process-wide coverage registry. All recording is funneled through
/// the free function coverage() below.
class CoverageRegistry {
public:
  static CoverageRegistry &global();

  /// Turns recording on (it is off — and free — by default). There is no
  /// disable: the drivers enable it before compiling when a
  /// `--coverage-json=` destination is given.
  void enable() { On.store(true, std::memory_order_relaxed); }
  bool enabled() const { return On.load(std::memory_order_relaxed); }

  /// Sizes the production/state counter arrays (grow-only) and the
  /// dynamic-point total used for utilization reporting. Serial-only; see
  /// the file comment.
  void sizeGrammar(size_t NumProds, size_t NumStates, size_t NumDynPoints);

  /// Names the instruction-table rows (row id = index into \p Names).
  void sizeInstrRows(const std::vector<std::string> &Names);

  /// Sets the grammar/tables identity embedded in the artifact so
  /// `gg-report` can decide whether its freshly built target's names
  /// apply to the ids in a file.
  void setFingerprint(const std::string &HexFP);

  /// Hot-path recorders. Safe (and free) when disabled; out-of-range ids
  /// are dropped rather than asserted — a stale artifact is better than a
  /// crashed compiler.
  void noteReduce(int Prod) { bump(ProdCounters, Prod); }
  void noteStateVisit(int State) { bump(StateCounters, State); }
  void noteInstrRow(int Row) { bump(RowCounters, Row); }
  void noteDynChoice(int State, int TermIdx, int ChosenProd);
  void noteCompile() {
    if (enabled())
      Compiles.fetch_add(1, std::memory_order_relaxed);
  }

  /// Zeroes all hit counts (sizes, names and the fingerprint stay).
  void reset();

  /// Sums the shards into a plain artifact / its JSON rendering.
  CoverageSnapshot snapshot() const;
  std::string toJson() const { return snapshot().toJson(); }

private:
  /// Hit counters live in the sharded grow-only store shared with the
  /// cost profiler (support/Sharded.h); only the enabled gate and the
  /// dump-time aggregation are coverage-specific.
  void bump(ShardedCounters &F, int Index) {
    if (!enabled())
      return;
    F.add(Index, 1);
  }

  std::atomic<bool> On{false};
  std::atomic<uint64_t> Compiles{0};
  ShardedCounters ProdCounters, StateCounters, RowCounters;

  mutable std::mutex M; ///< sizing, names, fingerprint, dyn map
  std::vector<std::string> RowNames;
  std::string Fingerprint;
  size_t NumDynPoints = 0;
  std::map<std::pair<int, int>, DynPointHits> Dyn;
};

/// Shorthand for the global registry.
inline CoverageRegistry &coverage() { return CoverageRegistry::global(); }

} // namespace gg

#endif // GG_SUPPORT_COVERAGE_H
