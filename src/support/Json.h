//===- Json.h - minimal JSON parsing ----------------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON reader, just enough for the telemetry
/// artifacts this repo emits (`gg-stats-v1`, `gg-coverage-v1`,
/// `gg-bench-v1`): the offline `gg-report` tool and the coverage merge
/// path parse their inputs through it, so artifact consumers need no
/// third-party dependency. Not a general-purpose validator — it accepts
/// everything the writers produce and reports the first syntax error with
/// a byte offset.
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_JSON_H
#define GG_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gg {

/// One parsed JSON value. Objects keep their members in document order
/// (the writers emit sorted keys, so iteration order is deterministic).
struct JsonValue {
  enum Kind : uint8_t { Null, Bool, Number, String, Array, Object };
  Kind K = Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;

  bool isObject() const { return K == Object; }
  bool isArray() const { return K == Array; }
  bool isNumber() const { return K == Number; }
  bool isString() const { return K == String; }

  /// Object member lookup; null if absent or this is not an object.
  const JsonValue *find(std::string_view Key) const;

  /// Numeric accessors (0 on type mismatch; telemetry counts are
  /// non-negative, so 0 doubles as "absent").
  uint64_t asU64() const {
    return K == Number && Num > 0 ? static_cast<uint64_t>(Num) : 0;
  }
  double asDouble() const { return K == Number ? Num : 0; }

  /// Member shorthand: the named number, or \p Def when missing.
  double numberOr(std::string_view Key, double Def = 0) const {
    const JsonValue *V = find(Key);
    return V && V->K == Number ? V->Num : Def;
  }
};

/// Parses \p Text into \p Out. On failure returns false and sets \p Err
/// to a one-line message with the byte offset of the problem.
bool parseJson(std::string_view Text, JsonValue &Out, std::string &Err);

} // namespace gg

#endif // GG_SUPPORT_JSON_H
