//===- Stats.h - process-wide counters and histograms -----------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named counters, gauges and log-scale
/// histograms. Every layer of the pipeline — table constructor, packer,
/// matcher, the four code-generation phases, register manager — records
/// into the same registry, and every consumer (the `--stats-json` surface
/// on the example drivers, the bench harness, the tests) reads the same
/// schema back out, so the paper's empirical claims (Figure 2 phase
/// shares, table sizes, conflict counts) are reproducible from emitted
/// telemetry instead of ad-hoc printf accounting.
///
/// Conventions:
///   * counters — monotonically increasing event counts
///     ("match.shifts", "regs.spills");
///   * values   — accumulated doubles, used for seconds
///     ("cg.match_seconds", "tablegen.seconds");
///   * histograms — log2-bucketed distributions
///     ("match.stack_depth").
///
/// Names are dotted `<layer>.<metric>` strings. Registration is implicit:
/// the first lookup creates the entry at zero, so touching a counter is
/// enough to make its key appear in the JSON output (the golden-schema
/// test relies on this for counters that are legitimately zero, e.g. the
/// peephole counters when the optimizer is off).
///
/// Thread safety: mutation is lock-free once registered. Counters and
/// values are atomics mutated with relaxed ordering; histogram recording
/// uses relaxed atomics with CAS loops for min/max. Registration (the
/// first lookup of a name) takes a mutex, and entry references are stable
/// for the registry's lifetime (std::map nodes), so hot call sites cache
/// them in function-local statics and never touch the lock again. The
/// parallel code generator's workers all record into this registry
/// concurrently; because every mutation is a commutative add (or an
/// order-free min/max), totals are deterministic at any thread count.
/// reset() zeroes every entry but never removes one; readers racing a
/// reset or a recording may observe transiently inconsistent histogram
/// aggregates (count vs. sum), never torn values.
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_STATS_H
#define GG_SUPPORT_STATS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace gg {

/// A log2-bucketed histogram of unsigned samples. Bucket i holds samples
/// whose bit width is i, i.e. the ranges {0}, {1}, [2,3], [4,7], [8,15]…
/// — compact, O(1) to record, and faithful enough for the scale questions
/// the experiments ask (stack depths, tokens per tree, step counts).
/// Recording is thread-safe (relaxed atomics; min/max via CAS).
class LogHistogram {
public:
  void record(uint64_t Sample) {
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Sample, std::memory_order_relaxed);
    uint64_t Cur = Min.load(std::memory_order_relaxed);
    while (Sample < Cur &&
           !Min.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed)) {
    }
    Cur = Max.load(std::memory_order_relaxed);
    while (Sample > Cur &&
           !Max.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed)) {
    }
    Buckets[bitWidth(Sample)].fetch_add(1, std::memory_order_relaxed);
  }

  void reset() {
    Count.store(0, std::memory_order_relaxed);
    Sum.store(0, std::memory_order_relaxed);
    Min.store(NoSample, std::memory_order_relaxed);
    Max.store(0, std::memory_order_relaxed);
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t min() const {
    uint64_t M = Min.load(std::memory_order_relaxed);
    return M == NoSample ? 0 : M;
  }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t N = count();
    return N ? static_cast<double>(sum()) / N : 0;
  }

  /// Bucket count for samples of bit width \p W (0..64).
  uint64_t bucket(int W) const {
    return Buckets[W].load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket \p W (0, 1, 3, 7, 15, ...).
  static uint64_t bucketUpper(int W) {
    return W >= 64 ? ~0ull : (1ull << W) - 1;
  }

  static int bitWidth(uint64_t V) {
    int W = 0;
    while (V) {
      ++W;
      V >>= 1;
    }
    return W;
  }

private:
  static constexpr uint64_t NoSample = ~0ull; ///< Min sentinel: no samples yet
  std::atomic<uint64_t> Count{0}, Sum{0}, Min{NoSample}, Max{0};
  std::array<std::atomic<uint64_t>, 65> Buckets{};
};

/// Named counters, gauges and histograms. One process-wide instance
/// (global()) serves the pipeline; tests may create private instances.
class StatsRegistry {
public:
  static StatsRegistry &global();

  /// The named counter, created at zero on first use. The reference is
  /// stable; hot paths may cache it. Mutation (++, +=) is atomic.
  std::atomic<uint64_t> &counter(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(M);
    return Counters[Name];
  }

  /// The named accumulated double (seconds, bytes-as-double, ...).
  /// Mutation (+=) is atomic (C++20 floating-point fetch_add).
  std::atomic<double> &value(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(M);
    return Values[Name];
  }

  /// The named histogram.
  LogHistogram &histogram(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(M);
    return Histograms[Name];
  }

  /// Zeroes every entry, keeping all registrations (and thus all cached
  /// references and the JSON key set) intact.
  void reset();

  /// Serializes the whole registry as one JSON object:
  ///   {"schema":"gg-stats-v1","counters":{...},"values":{...},
  ///    "histograms":{name:{count,sum,min,max,mean,buckets:{...}}}}
  /// Keys are emitted in sorted order (std::map) so output is
  /// deterministic and golden-testable.
  std::string toJson() const;

  /// Human-readable aligned text dump (the `--stats` surface).
  std::string toText() const;

  const std::map<std::string, std::atomic<uint64_t>> &counters() const {
    return Counters;
  }
  const std::map<std::string, std::atomic<double>> &values() const {
    return Values;
  }
  const std::map<std::string, LogHistogram> &histograms() const {
    return Histograms;
  }

private:
  mutable std::mutex M; ///< guards map registration only, not entry updates
  std::map<std::string, std::atomic<uint64_t>> Counters;
  std::map<std::string, std::atomic<double>> Values;
  std::map<std::string, LogHistogram> Histograms;
};

/// Shorthand for the global registry.
inline StatsRegistry &stats() { return StatsRegistry::global(); }

/// Escapes \p Text for inclusion in a JSON string literal.
std::string jsonEscape(std::string_view Text);

} // namespace gg

#endif // GG_SUPPORT_STATS_H
