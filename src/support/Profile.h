//===- Profile.h - hot-path cost attribution over the tables ----*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cycle-level time attribution for the table-driven hot paths. The
/// coverage profiler (support/Coverage.h) answers *how often* each
/// state/production/dyn-tie fires; this subsystem answers *how much it
/// costs*: the matcher's shift/reduce loop and every code-generation
/// phase charge timestamp deltas to per-state, per-production,
/// per-dyn-point and per-phase buckets, and the result dumps as a
/// versioned `gg-profile-v1` JSON artifact that `gg-report --profile`
/// merges, ranks by cost, joins against coverage, and diffs against a
/// PCC-leg profile (`--diff-pcc`). This is the cost half of the PGO loop
/// the related work describes (Samuelsson's example-based table
/// optimization; Nederhof & Satta's table-representation wins): open
/// items 1-2 need to know *where* the 1.95x compile-speed gap lives
/// before packing or direct-coding the tables.
///
/// Two modes behind one `--profile=` flag:
///   * instr — instrumented attribution. Each matcher step charges a
///     profTicks() delta (rdtsc on x86-64) to the acting state; reduce
///     steps additionally charge the production, and deferred
///     reduce/reduce ties charge the chooser's share to the (state,
///     terminal) dyn point. Phase scopes charge the code generator's
///     phases. Per-table-region buckets are derived from the per-state
///     buckets at snapshot time (region = RegionSize consecutive states
///     of the packed action/goto tables), so regions cost nothing on the
///     hot path.
///   * perf — instr plus hardware counters via perf_event_open (cycles,
///     instructions, L1d/LLC misses, branch mispredicts), sampled at
///     phase-scope boundaries per thread and summed per phase. When the
///     syscall is unavailable (containers, CI, non-Linux), the mode
///     degrades to instr and the artifact records perf_available=false.
///
/// Two timebases:
///   * cycles (default) — profTicks(); tick totals convert to seconds
///     via profTicksPerSecond(), the same MonoClock domain Timer/Stats
///     use (support/Clock.h), so gg-stats-v1 and gg-profile-v1 numbers
///     are directly comparable.
///   * steps — a deterministic virtual clock: each thread's timestamp is
///     a thread-local event counter, so every charged delta is a
///     property of the compiled input, not of the hardware or the
///     schedule. With this timebase the artifact is byte-identical at
///     any --threads count (asserted by tests/ProfileTest.cpp and the
///     check.sh profile leg). Phase scopes that span the parallel
///     region (cg.total) are wall-only and skipped under steps, keeping
///     the key set schedule-independent too.
///
/// Design constraints mirror support/Coverage.h, in order:
///   1. *Off is free.* One relaxed load gates everything; the default-off
///      registry adds no measurable cost (bench sentinel clean).
///   2. *On is cheap.* Hot buckets are per-thread shards of plain atomic
///      arrays (support/Sharded.h — shared with Coverage); instr mode
///      costs < 10% on bench_compile_speed.
///   3. *Deterministic bucket keys.* Which buckets exist is decided by
///      the input at any thread count; under the steps timebase the
///      values are too.
///
/// Sizing (`sizeGrammar`) is serial-only, exactly like Coverage: targets
/// are constructed before compile workers start.
///
//===----------------------------------------------------------------------===//

#ifndef GG_SUPPORT_PROFILE_H
#define GG_SUPPORT_PROFILE_H

#include "support/Clock.h"
#include "support/Sharded.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace gg {

struct JsonValue;

enum class ProfileMode : uint8_t { Off = 0, Instr, Perf };
enum class ProfileTimebase : uint8_t { Cycles = 0, Steps };

/// The instrumented pipeline phases. Dense ids index the registry's
/// accumulator arrays; names are the artifact keys.
enum class ProfPhase : uint8_t {
  Transform,  ///< phase 1 tree transformation (serial)
  Linearize,  ///< prefix linearization feeding the matcher
  Match,      ///< phase 2 shift/reduce matching (the table hot loop)
  Replay,     ///< phase 3+4 reduction replay incl. nested operand output
  Fallback,   ///< PCC regeneration of blocked trees (degradation ladder)
  Stitch,     ///< serial result stitch + final text render + peephole
  Total,      ///< whole GGCodeGenerator::compile (wall; cycles-only)
  PccCompile, ///< the PCC baseline's whole compile (the --diff-pcc leg)
  NumPhases
};
const char *profPhaseName(ProfPhase P);

/// Parses a `--profile=` spec: off | instr | perf, with an optional
/// `,cycles` / `,steps` timebase suffix. Returns false and sets \p Err
/// on junk.
bool parseProfileSpec(const std::string &Spec, ProfileMode &Mode,
                      ProfileTimebase &Timebase, std::string &Err);

/// Ticks + event count for one bucket (a state, production, dyn point,
/// region or phase).
struct ProfCell {
  uint64_t Ticks = 0;
  uint64_t Events = 0;
};

/// Per-phase hardware-counter deltas (perf mode; all zero otherwise).
struct HwCounters {
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t L1dMisses = 0;
  uint64_t LlcMisses = 0;
  uint64_t BranchMisses = 0;

  bool any() const {
    return Cycles | Instructions | L1dMisses | LlcMisses | BranchMisses;
  }
  void add(const HwCounters &O) {
    Cycles += O.Cycles;
    Instructions += O.Instructions;
    L1dMisses += O.L1dMisses;
    LlcMisses += O.LlcMisses;
    BranchMisses += O.BranchMisses;
  }
};

/// One phase's accumulated profile.
struct PhaseProfile {
  ProfCell Cell;
  HwCounters Hw;
};

/// A plain-data profile artifact: what one `gg-profile-v1` file holds.
/// The registry serializes through this; `gg-report` parses and merges
/// artifacts with it.
struct ProfileSnapshot {
  /// States per derived table region. 64 states of the packed
  /// action/goto tables are roughly a hot cache page; region buckets
  /// tell the open-item-1 packing work which table pages are hot.
  static constexpr uint64_t RegionSize = 64;

  std::string Fingerprint; ///< grammar/tables identity; "" = unset
  ProfileMode Mode = ProfileMode::Off;
  ProfileTimebase Timebase = ProfileTimebase::Cycles;
  double TicksPerSecond = 0; ///< 0 under the steps timebase
  bool PerfAvailable = false;
  uint64_t Compiles = 0;
  uint64_t NumProds = 0, NumStates = 0;
  std::map<std::string, PhaseProfile> Phases;
  std::map<int, ProfCell> States; ///< state -> matcher loop cost
  std::map<int, ProfCell> Prods;  ///< production -> reduce-step cost
  std::map<std::pair<int, int>, ProfCell> Dyn; ///< (state,term) -> tie cost

  /// Region buckets derived from States (deterministic given States).
  std::map<int, ProfCell> regions() const;

  /// Ticks -> seconds in the shared MonoClock domain; 0 when the
  /// timebase is steps (ticks are unitless there).
  double seconds(uint64_t Ticks) const {
    return TicksPerSecond > 0 ? static_cast<double>(Ticks) / TicksPerSecond
                              : 0;
  }

  /// Serializes as one `gg-profile-v1` JSON object with sorted keys.
  /// Regions are emitted (derived) but never parsed back — they are
  /// recomputed, so round-trips stay byte-identical.
  std::string toJson() const;

  /// Parses a `gg-profile-v1` object. Returns false and sets \p Err on
  /// malformed input or a schema mismatch.
  bool parse(const JsonValue &V, std::string &Err);
  bool parse(const std::string &Text, std::string &Err);

  /// Adds \p Other into this artifact. Fails when fingerprints, table
  /// shapes or timebases disagree — such artifacts must not be summed.
  bool merge(const ProfileSnapshot &Other, std::string &Err);
};

/// The process-wide profiling registry. All hot-path recording funnels
/// through the free function profile() below.
class ProfileRegistry {
public:
  static ProfileRegistry &global();

  /// Selects the mode and timebase. Serial-only (drivers configure
  /// before compiling). Perf mode arms the per-thread hardware-counter
  /// groups lazily; if perf_event_open fails the mode quietly degrades
  /// to instrumented timing and perfAvailable() reports false.
  void configure(ProfileMode Mode, ProfileTimebase TB = ProfileTimebase::Cycles);

  ProfileMode mode() const {
    return static_cast<ProfileMode>(ModeA.load(std::memory_order_relaxed));
  }
  ProfileTimebase timebase() const {
    return static_cast<ProfileTimebase>(
        TimebaseA.load(std::memory_order_relaxed));
  }
  /// The hot-path gate: one relaxed load, false (and free) by default.
  bool instrEnabled() const {
    return ModeA.load(std::memory_order_relaxed) !=
           static_cast<uint8_t>(ProfileMode::Off);
  }
  bool perfEnabled() const {
    return ModeA.load(std::memory_order_relaxed) ==
           static_cast<uint8_t>(ProfileMode::Perf);
  }

  /// Current timestamp in timebase \p TB. Cycles: profTicks(). Steps: a
  /// thread-local counter incremented per call, so consecutive reads on
  /// one thread differ by exactly 1 — a deterministic virtual clock.
  static uint64_t now(ProfileTimebase TB) {
    if (TB == ProfileTimebase::Cycles)
      return profTicks();
    static thread_local uint64_t StepCounter = 0;
    return ++StepCounter;
  }

  /// Hot-path recorders (sharded atomics; callers pre-check
  /// instrEnabled() and pass measured deltas). Out-of-range ids are
  /// dropped, never asserted.
  void chargeState(int State, uint64_t Ticks) {
    StateTicks.add(State, Ticks);
    StateEvents.add(State, 1);
  }
  void chargeProd(int Prod, uint64_t Ticks) {
    ProdTicks.add(Prod, Ticks);
    ProdEvents.add(Prod, 1);
  }
  /// Dyn-tie events are rare (one per deferred reduce/reduce tie hit),
  /// so a mutex-guarded map suffices, exactly as in Coverage.
  void chargeDyn(int State, int TermIdx, uint64_t Ticks);
  /// Phase accumulators are dense atomics (no lookup).
  void chargePhase(ProfPhase P, uint64_t Ticks, uint64_t Events);
  void chargePhaseHw(ProfPhase P, const HwCounters &Delta);
  void noteCompile() {
    if (instrEnabled())
      Compiles.fetch_add(1, std::memory_order_relaxed);
  }

  /// Sizes the state/production buckets (grow-only; serial-only, same
  /// contract as CoverageRegistry::sizeGrammar).
  void sizeGrammar(size_t NumProds, size_t NumStates);
  void setFingerprint(const std::string &HexFP);

  /// True when perf mode has successfully opened hardware counters on at
  /// least one thread and no test forced unavailability.
  bool perfAvailable() const;
  /// Test hook: makes every perf_event_open attempt report failure so
  /// the graceful-fallback path is exercisable where perf works.
  void forcePerfUnavailableForTests(bool Force) {
    PerfForcedOff.store(Force, std::memory_order_relaxed);
  }
  bool perfForcedOff() const {
    return PerfForcedOff.load(std::memory_order_relaxed);
  }
  void notePerfOpened() { PerfOpened.store(true, std::memory_order_relaxed); }

  /// Zeroes all buckets (mode, sizes and fingerprint stay).
  void reset();

  /// Sums the shards into a plain artifact / its JSON rendering.
  ProfileSnapshot snapshot() const;
  std::string toJson() const { return snapshot().toJson(); }

private:
  ProfileRegistry() = default;

  std::atomic<uint8_t> ModeA{static_cast<uint8_t>(ProfileMode::Off)};
  std::atomic<uint8_t> TimebaseA{static_cast<uint8_t>(ProfileTimebase::Cycles)};
  std::atomic<bool> PerfOpened{false};
  std::atomic<bool> PerfForcedOff{false};
  std::atomic<uint64_t> Compiles{0};

  ShardedCounters StateTicks, StateEvents, ProdTicks, ProdEvents;

  struct PhaseAcc {
    std::atomic<uint64_t> Ticks{0}, Events{0};
    std::atomic<uint64_t> Cycles{0}, Instructions{0}, L1dMisses{0},
        LlcMisses{0}, BranchMisses{0};
  };
  PhaseAcc PhaseAccs[static_cast<size_t>(ProfPhase::NumPhases)];

  mutable std::mutex M; ///< sizing, fingerprint, dyn map
  std::string Fingerprint;
  std::map<std::pair<int, int>, ProfCell> Dyn;
};

/// Shorthand for the global registry.
inline ProfileRegistry &profile() { return ProfileRegistry::global(); }

/// RAII phase scope: charges the phase's tick delta (and, in perf mode,
/// its hardware-counter deltas) on destruction. A disabled registry
/// makes construction a single relaxed load.
///
/// \p WallOnly marks scopes that span the parallel region (cg.total):
/// they measure wall time meaningfully under the cycles timebase but
/// would be schedule-dependent under steps, so they no-op there —
/// keeping steps-timebase artifacts byte-identical at any thread count.
class ProfilePhaseScope {
public:
  explicit ProfilePhaseScope(ProfPhase P, bool WallOnly = false);
  ~ProfilePhaseScope();
  ProfilePhaseScope(const ProfilePhaseScope &) = delete;
  ProfilePhaseScope &operator=(const ProfilePhaseScope &) = delete;

private:
  ProfPhase Phase = ProfPhase::Total;
  ProfileTimebase TB = ProfileTimebase::Cycles;
  uint64_t StartTicks = 0;
  bool Live = false;
  bool PerfLive = false;
  HwCounters PerfStart;
};

} // namespace gg

#endif // GG_SUPPORT_PROFILE_H
