//===- TableSim.cpp - exact parse-table simulator -------------------------===//

#include "fuzz/TableSim.h"
#include "support/Strings.h"

#include <unordered_map>

using namespace gg;

namespace {
/// A unit-production cycle in a corrupt table could reduce forever without
/// consuming input; the real Matcher is protected by its step budget, the
/// simulator by this cap (far above any legitimate reduction cascade).
constexpr size_t MaxReducesPerLookahead = 4096;
} // namespace

TableSim::TableSim(const Grammar &G, const PackedTables &T, size_t DepthCap)
    : G(G), T(T), DepthCap(DepthCap), EofIdx(G.termIndex(G.eofSymbol())) {
  TermNames.resize(G.terminals().size());
  for (SymId S : G.terminals())
    TermNames[G.termIndex(S)] = G.symbolName(S);
}

int TableSim::termIndexFor(const std::string &Name) const {
  // Witness search calls this rarely (sentences are built over dense
  // indices); a linear scan keeps the class allocation-free per query.
  for (size_t I = 0; I < TermNames.size(); ++I)
    if (TermNames[I] == Name)
      return static_cast<int>(I);
  return -1;
}

int TableSim::reduceUntilShift(Config &Cfg, int TermIdx,
                               SimTrace *Trace) const {
  for (size_t Guard = 0; Guard < MaxReducesPerLookahead; ++Guard) {
    if (Cfg.Stack.size() > DepthCap) {
      if (Trace)
        Trace->Error = strf("depth cap %zu exceeded in state %d",
                            DepthCap, Cfg.top());
      return 0;
    }
    Action A = T.actionAt(Cfg.top(), TermIdx);
    switch (A.Kind) {
    case ActionType::Shift:
      return 1;
    case ActionType::Accept:
      return 2;
    case ActionType::Error:
      if (Trace)
        Trace->Error =
            strf("no action in state %d on '%s'", Cfg.top(),
                 TermIdx < static_cast<int>(TermNames.size())
                     ? TermNames[TermIdx].c_str()
                     : "?");
      return 0;
    case ActionType::Reduce: {
      int State = Cfg.top();
      int Prod = A.Target; // null chooser: the static default always wins
      if (T.dynChoicesAt(State, TermIdx) && Trace)
        Trace->DynConsults.emplace_back(State, TermIdx);
      if (Trace) {
        Trace->Reduces.push_back(Prod);
        ++Trace->Steps;
      }
      const Production &P = G.prod(Prod);
      if (Cfg.Stack.size() <= P.Rhs.size()) {
        if (Trace)
          Trace->Error = strf("stack underflow reducing p%d", Prod);
        return 0;
      }
      Cfg.Stack.resize(Cfg.Stack.size() - P.Rhs.size());
      int GotoState = T.gotoAt(Cfg.top(), G.ntIndex(P.Lhs));
      if (GotoState < 0) {
        // The consult above already happened — mirroring the Matcher,
        // which records the dyn point before the goto lookup.
        if (Trace)
          Trace->Error = strf("missing goto for '%s' in state %d",
                              G.symbolName(P.Lhs).c_str(), Cfg.top());
        return 0;
      }
      Cfg.Stack.push_back(GotoState);
      if (Trace)
        Trace->States.push_back(GotoState);
      break;
    }
    }
  }
  if (Trace)
    Trace->Error = "reduction cascade exceeded the simulator cap";
  return 0;
}

bool TableSim::advance(Config &Cfg, int TermIdx, SimTrace *Trace) const {
  if (TermIdx < 0 || TermIdx >= T.numTerms()) {
    if (Trace)
      Trace->Error = strf("unknown terminal index %d", TermIdx);
    return false;
  }
  int R = reduceUntilShift(Cfg, TermIdx, Trace);
  if (R != 1) {
    if (R == 2 && Trace)
      Trace->Error = "accept action on a non-EOF terminal";
    return false;
  }
  Action A = T.actionAt(Cfg.top(), TermIdx);
  Cfg.Stack.push_back(A.Target);
  if (Trace) {
    Trace->States.push_back(A.Target);
    ++Trace->Steps;
  }
  // An overgrown stack is caught at the next lookahead's cap check, the
  // same place the Matcher catches it.
  return true;
}

bool TableSim::finish(Config &Cfg, SimTrace *Trace) const {
  int R = reduceUntilShift(Cfg, EofIdx, Trace);
  if (R == 2) {
    if (Trace)
      Trace->Accepted = true;
    return true;
  }
  if (R == 1 && Trace)
    Trace->Error = "shift action on end-of-input";
  return false;
}

SimTrace TableSim::run(const std::vector<int> &TermIdxs) const {
  SimTrace Trace;
  Trace.States.push_back(0); // the Matcher notes the entry visit of state 0
  Config Cfg;
  for (int TI : TermIdxs)
    if (!advance(Cfg, TI, &Trace))
      return Trace;
  finish(Cfg, &Trace);
  return Trace;
}

SimTrace TableSim::runNames(const std::vector<std::string> &Tokens) const {
  std::unordered_map<std::string, int> Index;
  for (size_t I = 0; I < TermNames.size(); ++I)
    Index.emplace(TermNames[I], static_cast<int>(I));
  std::vector<int> Idxs;
  Idxs.reserve(Tokens.size());
  for (const std::string &Tok : Tokens) {
    auto It = Index.find(Tok);
    if (It == Index.end()) {
      SimTrace Trace;
      Trace.Error = strf("unknown terminal '%s'", Tok.c_str());
      return Trace;
    }
    Idxs.push_back(It->second);
  }
  return run(Idxs);
}
