//===- Fuzzer.h - grammar-aware differential fuzzing driver -----*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The orchestration layer of the grammar-aware fuzzer: plans a witness
/// corpus that (simulator-provably) covers every reachable production,
/// state, and dynamic-tie point of the machine grammar's SLR tables,
/// synthesizes the witnesses into runnable programs (fuzz/TreeSynth),
/// and runs each program through three independent oracles:
///
///   1. the IR interpreter (ir/Interp) — semantic ground truth;
///   2. the table-driven backend + VAX simulator (cg/CodeGenerator with
///      raw trees, vaxsim) — the system under test;
///   3. the hand-coded PCC baseline + VAX simulator (pcc/PccCodeGen).
///
/// All three must agree on printed output and exit value; the GG
/// pipeline's blocked-tree count must equal the simulator's prediction
/// (deliberately blocked witnesses for toxic dyn points, nothing else).
/// Failing programs are shrunk to a minimal witness subset that still
/// fails.
///
/// Everything is deterministic in (seed, plan): the corpus, the verdicts,
/// and the coverage artifact are byte-identical at any --threads count.
///
//===----------------------------------------------------------------------===//

#ifndef GG_FUZZ_FUZZER_H
#define GG_FUZZ_FUZZER_H

#include "fuzz/GrammarWalk.h"
#include "fuzz/TreeSynth.h"
#include "vax/VaxTarget.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gg {

struct FuzzOptions {
  uint64_t Seed = 0xF0225EEDull;
  int Threads = 1;        ///< programs verified concurrently
  size_t StmtsPerProgram = 24;
  size_t MaxPrograms = 0; ///< 0 = as many as the plan needs
  /// Target-production mode: plan only witnesses whose parse reduces this
  /// production (-1 = full coverage plan).
  int TargetProduction = -1;
  bool Shrink = true; ///< minimize failing programs
};

/// What the coverage planner achieved, before any program runs: targets
/// are simulator-proven, so these are predictions the run then validates.
struct FuzzPlanStats {
  size_t Productions = 0, States = 0, DynPoints = 0; ///< table totals
  size_t WitnessedProductions = 0; ///< distinct prods the plan reduces
  size_t WitnessedStates = 0;      ///< distinct states the plan visits
  size_t WitnessedDynPoints = 0;   ///< distinct dyn points consulted
  size_t BlockedWitnesses = 0;     ///< deliberate blocks (toxic dyn points)
  std::vector<int> ShadowedProductions;   ///< never a Reduce default
  /// Every reduce site in a null-chooser-unreachable state (the raw
  /// automaton reaches it, the shipped tie defaults never route there);
  /// proven dead by GrammarWalk's reachability fixpoint and excluded
  /// from the reachable denominator like the statically shadowed set.
  std::vector<int> DynShadowedProductions;
  /// States the null-chooser pipeline provably never enters, and the dyn
  /// points sitting in them; both excluded from their denominators.
  std::vector<int> UnreachableStates;
  std::vector<std::pair<int, int>> UnreachableDynPoints;
  std::vector<int> UnwitnessedProductions; ///< reachable, search failed
  std::vector<int> UnwitnessedStates;
  std::vector<std::pair<int, int>> UnwitnessedDynPoints;
  /// Dyn points no linearization of a complete statement tree can ever
  /// consult, though truncated or extended token sequences can: hit
  /// either past the end of a finished linearization (the extra-token
  /// mode) or at end-of-input while operand slots are still open (the
  /// early-EOF mode). The Matcher only parses whole statements, so the
  /// shipped pipeline can never consult them. Proven per point by the
  /// splice sweep; excluded from the reachable denominator like
  /// shadowed productions.
  std::vector<std::pair<int, int>> StrandedDynPoints;
};

/// One failing program, shrunk when shrinking is on.
struct FuzzFailure {
  size_t ProgramIndex = 0;
  uint64_t Seed = 0;
  std::string Detail; ///< which oracles disagreed, or what broke
  std::vector<SynthStmt> Reproducer; ///< minimal failing witness subset
};

struct FuzzResult {
  FuzzPlanStats Plan;
  size_t Programs = 0;
  size_t Statements = 0, Live = 0, Guarded = 0, ExpectedBlocks = 0;
  /// Blocked witnesses whose shape no backend can compile (assignments
  /// into constants, Label operands): verified against the real matcher
  /// alone — it must block exactly as the simulator predicted.
  size_t ParseOnlyStatements = 0;
  /// Live statements the baseline cannot compile (embedded-assignment
  /// shapes): verified by interpreter + table-driven backend only.
  size_t PccExemptStatements = 0;
  std::vector<FuzzFailure> Failures;
  bool ok() const { return Failures.empty(); }
};

/// The fuzzing driver. Holds the witness-search engine; all verdict state
/// is per-call, so one Fuzzer may serve many runs.
class Fuzzer {
public:
  explicit Fuzzer(const VaxTarget &Target);

  /// Plans the deterministic witness corpus for \p Opts (full-coverage or
  /// target-production). Greedy: each new witness is simulated and its
  /// whole trace absorbed, so later targets already covered incidentally
  /// are skipped.
  std::vector<SynthStmt> plan(const FuzzOptions &Opts, FuzzPlanStats &PS);

  /// Runs one program (a batch of witness statements) through all three
  /// oracles. Returns the empty string when every oracle agrees and all
  /// predictions hold; otherwise a failure description. \p Rep reports
  /// what was synthesized.
  std::string verdict(const std::vector<SynthStmt> &Stmts, uint64_t Seed,
                      SynthReport &Rep);

  /// Full run: plan, batch, verify in parallel, shrink failures.
  FuzzResult run(const FuzzOptions &Opts);

  /// Greedy ddmin-style reduction of a failing batch: drops windows of
  /// statements while the verdict still fails. Deterministic, serial.
  std::vector<SynthStmt> shrink(const std::vector<SynthStmt> &Stmts,
                                uint64_t Seed);

  GrammarWalk &walk() { return Walk; }
  TreeSynth &synth() { return Synth; }
  const VaxTarget &target() const { return Target; }

private:
  /// Capability probe: can the hand-coded baseline compile a program
  /// holding just \p S? Classifies statements into oracle buckets;
  /// deterministic (fixed probe seed), judged by the real PccCodeGenerator
  /// so classification can never drift from the backend it predicts.
  bool pccCanCompile(const SynthStmt &S, uint64_t Seed);

  /// Parse-only oracle for blocked witnesses no backend can compile: the
  /// real matcher must block on the synthesized tree's linearization,
  /// exactly as the table simulator predicted. Empty on agreement.
  std::string parseOnlyVerdict(const SynthStmt &S, uint64_t Seed);

  const VaxTarget &Target;
  GrammarWalk Walk;
  TreeSynth Synth;
};

} // namespace gg

#endif // GG_FUZZ_FUZZER_H
