//===- TableSim.h - exact parse-table simulator -----------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An exact, side-effect-free mirror of the Matcher's null-chooser parse
/// loop over the packed SLR tables. The grammar-aware fuzzer uses it to
/// *predict* what the real pipeline will do — which productions reduce,
/// which states are visited, which dynamic-tie points are consulted, and
/// whether the parse accepts or blocks — without touching the process-wide
/// coverage registry (which is enable-only by design; see
/// support/Coverage.h). Searching for witnesses means simulating millions
/// of prefixes, none of which may pollute the artifact the final corpus
/// produces.
///
/// The simulator must track Matcher::match byte-for-byte on the decisions
/// that matter: default tie resolution (the table's Reduce target, never a
/// tie alternative), goto on the dense nonterminal index, dyn-point
/// consultation *before* the goto lookup (so a consult is recorded even
/// when the default reduction then strands on a missing goto), and the
/// depth cap. FuzzTest cross-validates it against the real Matcher on the
/// whole witness corpus.
///
//===----------------------------------------------------------------------===//

#ifndef GG_FUZZ_TABLESIM_H
#define GG_FUZZ_TABLESIM_H

#include "mdl/Grammar.h"
#include "tablegen/Packing.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gg {

/// Everything one simulated parse observed, in event order. Mirrors what
/// the coverage registry would record for the same token sequence.
struct SimTrace {
  bool Accepted = false;
  std::string Error;         ///< human-readable block cause when !Accepted
  std::vector<int> Reduces;  ///< production ids, in reduction order
  std::vector<int> States;   ///< states visited (entry 0, shifts, gotos)
  std::vector<std::pair<int, int>> DynConsults; ///< (state, termIdx)
  size_t Steps = 0;          ///< shift + reduce count
};

/// Side-effect-free SLR table walker with the Matcher's exact null-chooser
/// semantics. Immutable after construction; safe to share across threads.
class TableSim {
public:
  TableSim(const Grammar &G, const PackedTables &T, size_t DepthCap = 4096);

  /// A parser configuration: the LR state stack. Starts as {0}.
  struct Config {
    std::vector<int> Stack{0};
    int top() const { return Stack.back(); }
  };

  /// Dense index for a terminal name; -1 if unknown.
  int termIndexFor(const std::string &Name) const;
  const std::string &termName(int TermIdx) const { return TermNames[TermIdx]; }
  int eofIndex() const { return EofIdx; }
  int numTerms() const { return T.numTerms(); }

  /// Feeds one terminal: performs every reduction the lookahead triggers,
  /// then the shift. Returns false on any block (no action, missing goto,
  /// depth cap); \p Cfg is then unusable. Events append to \p Trace when
  /// non-null.
  bool advance(Config &Cfg, int TermIdx, SimTrace *Trace) const;

  /// Feeds end-of-input: reduces until Accept. Returns false on a block.
  bool finish(Config &Cfg, SimTrace *Trace) const;

  /// Whole-sentence simulation from the initial configuration, by dense
  /// terminal index. Records the entry visit of state 0 like the Matcher.
  SimTrace run(const std::vector<int> &TermIdxs) const;

  /// Whole-sentence simulation by terminal name (convenience; an unknown
  /// name blocks with UnknownTerminal semantics).
  SimTrace runNames(const std::vector<std::string> &Tokens) const;

  const Grammar &grammar() const { return G; }
  const PackedTables &tables() const { return T; }

private:
  /// Shared reduce loop: reduces under \p TermIdx until the action is a
  /// shift (returns 1), accept (returns 2), or a block (returns 0).
  int reduceUntilShift(Config &Cfg, int TermIdx, SimTrace *Trace) const;

  const Grammar &G;
  const PackedTables &T;
  size_t DepthCap;
  int EofIdx;
  std::vector<std::string> TermNames; ///< dense index -> name
};

} // namespace gg

#endif // GG_FUZZ_TABLESIM_H
