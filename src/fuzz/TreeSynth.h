//===- TreeSynth.h - witness sentences to runnable IR programs --*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns witness sentences (grammar terminal sequences from GrammarWalk)
/// back into executable IR: each sentence is the prefix linearization of
/// exactly one statement tree, so an arity-driven decode reconstructs the
/// tree, and an attribute-binding pass fills in the semantic attributes
/// the grammar does not encode (symbols, registers, constant values,
/// condition codes) so the statement is *runnable* under all three
/// oracles.
///
/// Binding discipline (what makes the differential triangle sound):
///  * address expressions are anchored at exactly one base — a global
///    array (Gaddr), an address register pre-loaded with one, or the
///    pointer global — with all other leaves bound to small values, so
///    both the IR interpreter and the VAX simulator touch the same
///    logical cell even though their absolute addresses differ;
///  * registers are partitioned: r6/r7 hold array bases (re-initialized
///    before every statement), r8..r11 hold small known integers;
///  * generic long constants avoid {0,1,2,4,8}, which linearize as the
///    special terminals Zero/One/Two/Four/Eight — re-linearizing a bound
///    tree must reproduce the witness sentence byte-for-byte;
///  * a conservative abstract evaluator (values: exact constant /
///    oracle-consistent memory value / base+offset address / poison)
///    proves each statement safe to execute — in-bounds derefs, non-zero
///    constant divisors, bounded shift counts, no address-valued data
///    escaping into memory, registers or comparisons. Statements that
///    fail the proof are wrapped in an always-taken forward branch: they
///    still compile (table coverage is recorded at match time) but never
///    run.
///
/// Statements are batched into functions called from main, each function
/// preceded by its register/pointer initialization and followed by
/// value-register prints, with a global-state dump before returning —
/// maximizing the behavior the oracles actually compare.
///
//===----------------------------------------------------------------------===//

#ifndef GG_FUZZ_TREESYNTH_H
#define GG_FUZZ_TREESYNTH_H

#include "ir/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gg {

/// One witness sentence to synthesize, with the caller's prediction of
/// how the pipeline will treat it.
struct SynthStmt {
  std::vector<std::string> Tokens; ///< grammar terminal names
  bool ExpectBlocked = false; ///< simulator predicts a syntactic block
                              ///< (deliberate, for toxic dyn points)
  /// Probed capability: the hand-coded baseline can compile this
  /// statement. Some deliberately blocked witnesses assign to constants
  /// or carry Label operands — semantically void shapes only the grammar
  /// accepts. The baseline (and thus the GG recovery ladder) rightly
  /// refuses them, so the fuzzer routes such statements to the oracles
  /// that can judge them instead of demanding the impossible.
  bool PccOk = true;
};

struct SynthReport {
  size_t Statements = 0; ///< synthesized witness statements
  size_t Guarded = 0;    ///< wrapped in an always-taken skip branch
  size_t Live = 0;       ///< executed at runtime
  size_t ExpectedBlocks = 0; ///< statements predicted to block + recover
};

/// Builds whole programs from witness sentences. Stateless between calls;
/// all variation is derived from the explicit seed.
class TreeSynth {
public:
  TreeSynth();

  /// Decodes \p Tokens into one statement tree in \p P's arena. When
  /// \p AllowPartial, an arity-incomplete sentence (a blocked-witness
  /// prefix) has its open operand slots filled with type-appropriate
  /// leaves. Returns null and sets \p Err on unknown tokens, malformed
  /// arities, or trailing tokens.
  Node *decode(Program &P, const std::vector<std::string> &Tokens,
               bool AllowPartial, std::string &Err);

  /// Builds a complete program: globals, main, and batches of witness
  /// statements in helper functions called from main. Returns false and
  /// sets \p Err if any sentence fails to decode.
  bool buildProgram(const std::vector<SynthStmt> &Stmts, uint64_t Seed,
                    Program &Out, SynthReport &R, std::string &Err);

  /// Open operand slots after consuming \p Tokens as a tree prefix: 1 for
  /// the empty prefix, 0 exactly when the prefix is a complete statement
  /// linearization. Returns -1 on an unknown token or when the tokens
  /// overrun an already-completed tree.
  int pendingAfter(const std::vector<std::string> &Tokens) const;

private:
  /// How one terminal name decodes: its operator, result type, and (for
  /// conversions / the special constants) the extra attribute the name
  /// itself encodes.
  struct TokSpec {
    enum Kind { Generic, Special, CvtTok, CBrTok, LabTok } K = Generic;
    Op O = Op::Const;
    Ty T = Ty::L;
    Ty SrcT = Ty::L; ///< Cvt source type
    int64_t Val = 0; ///< Special constant value
  };
  struct Binder;
  const TokSpec *classify(const std::string &Name) const;

  Node *decodeRec(Program &P, const std::vector<std::string> &Tokens,
                  size_t &Pos, bool AllowPartial, Op ParentOp, int Slot,
                  Ty SlotTy, std::string &Err);

  std::vector<std::pair<std::string, int>> TokTable; ///< name -> spec idx
  std::vector<TokSpec> Specs;
};

} // namespace gg

#endif // GG_FUZZ_TREESYNTH_H
