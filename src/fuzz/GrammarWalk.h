//===- GrammarWalk.h - witness search over grammar and automaton -*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derives *witness sentences* from the machine grammar and its SLR
/// automaton: token sequences whose (simulated, null-chooser) parse
/// provably reduces a chosen production, visits a chosen state, or
/// consults a chosen dynamic-tie point. This is the generative half of the
/// grammar-aware fuzzer — in the spirit of Samuelsson's example-based
/// LR-table mining, but run in reverse: instead of observing which table
/// entries a corpus uses, it *constructs* a corpus from the table entries
/// themselves.
///
/// Machinery:
///  * k-best shortest terminal yields per nonterminal (beamed fixpoint);
///  * Dijkstra over the automaton's shift/goto graph (goto edges cost the
///    minimum yield of their nonterminal) with alternate-predecessor
///    variants, realized into token prefixes;
///  * a guided depth-first completion search over exact TableSim
///    configurations (ordered by precomputed distance-to-accept, memoized
///    by stack hash) that extends any viable prefix to an accepted
///    sentence;
///  * validation of every candidate against the exact simulator — the
///    search *proposes*, the simulation *proves*.
///
/// Everything is deterministic: no clocks, no global RNG — variant
/// selection is an explicit counter.
///
//===----------------------------------------------------------------------===//

#ifndef GG_FUZZ_GRAMMARWALK_H
#define GG_FUZZ_GRAMMARWALK_H

#include "fuzz/TableSim.h"

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace gg {

class GrammarWalk {
public:
  GrammarWalk(const Grammar &G, const PackedTables &T);

  const TableSim &sim() const { return Sim; }
  const Grammar &grammar() const { return G; }

  /// K-best shortest terminal yields (dense term indices) for the dense
  /// nonterminal index \p NtIdx; empty when the nonterminal derives no
  /// terminal string.
  const std::vector<std::vector<int>> &yields(int NtIdx) const {
    return Yields[NtIdx];
  }

  /// All (state, termIdx) pairs whose action is Reduce with \p ProdId as
  /// the static default target — the only sites a null-chooser pipeline
  /// can ever reduce this production at.
  const std::vector<std::pair<int, int>> &reduceSites(int ProdId) const {
    return Sites[ProdId];
  }

  /// Productions that are nowhere the default Reduce target: statically
  /// shadowed by a longer or earlier rule at every completing site. The
  /// shipped pipeline (null chooser) can never reduce these; they are
  /// reported, not hunted.
  const std::vector<int> &shadowedProductions() const { return Shadowed; }

  /// Productions whose every reduce site sits in a state the null-chooser
  /// pipeline can never enter (see reachableStates) — *dynamically*
  /// shadowed: the raw automaton reaches them, the shipped tie defaults
  /// never do. Disjoint from shadowedProductions().
  const std::vector<int> &dynamicallyShadowedProductions() const {
    return ShadowedDyn;
  }

  /// Per-state reachability under the null chooser: a sound fixpoint
  /// refinement of raw automaton reachability. A goto edge is traversable
  /// only if some un-shadowed production of its nonterminal has a default
  /// reduce site at the state its right-hand side leads to; states fed
  /// exclusively by untraversable gotos are dead, and productions whose
  /// sites all die become shadowed in turn (iterated to fixpoint).
  /// Optimistic where exact stack context would be needed, so a state
  /// marked unreachable truly is; a state marked reachable might not be.
  const std::vector<char> &reachableStates() const { return StateReachable; }

  /// Every dynamic-tie point in the tables, sorted.
  const std::vector<std::pair<int, int>> &dynPoints() const {
    return DynPoints;
  }

  /// Finds an accepted sentence whose simulated parse reduces \p ProdId /
  /// visits \p State / consults the dyn point (\p State, \p TermIdx).
  /// Returns false when the bounded search fails. \p Out is only written
  /// on success.
  bool witnessForProduction(int ProdId, std::vector<int> &Out);
  bool witnessForState(int State, std::vector<int> &Out);
  bool witnessForDynPoint(int State, int TermIdx, std::vector<int> &Out);

  /// For dyn points whose default reduction strands on a missing goto in
  /// every reachable context, no *accepted* sentence can consult them —
  /// but a deliberately blocked parse still records the consult before it
  /// blocks (the Matcher notes the dyn point ahead of the goto lookup).
  /// Returns a token sequence whose simulation consults the point and
  /// then blocks; the caller arity-completes it into a well-formed tree
  /// and lets the pipeline's PCC fallback carry the program.
  bool blockedWitnessForDynPoint(int State, int TermIdx,
                                 std::vector<int> &Out);

  /// A derivation context for a nonterminal A: token sequences Pre, Post
  /// with start =>* Pre A Post. Embedding an expansion of A between them
  /// yields a complete sentence that *derives through* A — the top-down
  /// complement to the bottom-up automaton-path search.
  struct Context {
    std::vector<int> Pre, Post;
  };

  /// Derivation contexts for the dense nonterminal index; exposed for
  /// diagnostics.
  const std::vector<Context> &contexts(int NtIdx) const {
    return Contexts[NtIdx];
  }

  /// Bounded best-first completion of \p Prefix (which must simulate
  /// without blocking) to an accepted sentence. Exposed for the fuzzer's
  /// target-production mode.
  bool completeSentence(const std::vector<int> &Prefix,
                        std::vector<int> &Out);

  /// Extra acceptance predicate for candidate witnesses: (tokens,
  /// partial). The grammar accepts sentences no statement tree ever
  /// linearizes to (e.g. a Cvt terminal over an operand of the wrong
  /// source type — chain productions widen silently), and such a
  /// sentence is useless as a witness: the Matcher only parses real
  /// linearizations. The fuzzer installs a decode/re-linearize
  /// round-trip here; candidates that fail are skipped and the search
  /// keeps looking.
  using WitnessFilter = std::function<bool(const std::vector<int> &, bool)>;
  void setFilter(WitnessFilter F) { Filter = std::move(F); }

private:
  /// Realizes the \p Variant-th alternate path from state 0 to \p State
  /// into a token prefix (yield-expanding goto edges). Returns false when
  /// the variant space is exhausted.
  bool realizePathTo(int State, uint64_t Variant, std::vector<int> &Toks);

  /// Guided DFS from \p Cfg; appends tokens to \p Suffix. \p NodeBudget
  /// counts down across the whole search.
  bool completeFrom(TableSim::Config Cfg, std::vector<int> &Suffix,
                    int Depth, int &NodeBudget,
                    std::unordered_map<uint64_t, int> &Seen);

  /// Shared driver: enumerate path variants to (State [, +Term]), check
  /// \p Satisfied on the full simulated sentence.
  template <typename Pred>
  bool witnessAt(int State, int FeedTerm, Pred Satisfied,
                 std::vector<int> &Out);

  bool passes(const std::vector<int> &Toks, bool Partial) const {
    return !Filter || Filter(Toks, Partial);
  }

  const Grammar &G;
  const PackedTables &T;
  TableSim Sim;
  WitnessFilter Filter;

  std::vector<std::vector<std::vector<int>>> Yields; ///< per dense NT idx

  std::vector<std::vector<Context>> Contexts; ///< per dense NT idx
  std::vector<std::vector<std::pair<int, int>>> Sites; ///< per prod id
  std::vector<int> Shadowed;
  std::vector<int> ShadowedDyn;
  std::vector<char> StateReachable;
  std::vector<std::pair<int, int>> DynPoints;

  /// Automaton path data: best distance from state 0 and up to three
  /// strictly-descending predecessor options per state.
  struct PredOpt {
    int Pred;
    bool IsTerm;
    int SymIdx; ///< dense term idx or dense NT idx
  };
  std::vector<int64_t> DistFromStart;
  std::vector<std::vector<PredOpt>> Preds;
  std::vector<int> DistToAccept; ///< shift-edge count heuristic

  /// Completion memo: stack hash -> accepted suffix.
  std::unordered_map<uint64_t, std::vector<int>> CompletionMemo;
};

} // namespace gg

#endif // GG_FUZZ_GRAMMARWALK_H
