//===- GrammarWalk.cpp - witness search over grammar and automaton --------===//

#include "fuzz/GrammarWalk.h"

#include <algorithm>
#include <queue>

using namespace gg;

namespace {

constexpr size_t KBest = 4;       ///< yield variants kept per nonterminal
constexpr size_t MaxYieldLen = 28;
constexpr uint64_t MaxPathVariants = 64;
constexpr int CompletionNodeBudget = 20000;
constexpr int CompletionDepthCap = 48;
constexpr size_t CompletionBeam = 24;

/// Sort by (length, lexicographic), dedup, then keep *every* length-1
/// yield plus the K best others. Single-token yields are leaf terminals
/// (registers, the special constants) — each is a distinct operand shape,
/// and dropping one can make whole production families unwitnessable:
/// constant operands get stolen by con-specialized rules, so e.g. the
/// scaled-index productions only ever reduce with a register yield in the
/// pool. Deterministic.
void pruneKBest(std::vector<std::vector<int>> &Seqs) {
  std::sort(Seqs.begin(), Seqs.end(),
            [](const std::vector<int> &A, const std::vector<int> &B) {
              if (A.size() != B.size())
                return A.size() < B.size();
              return A < B;
            });
  Seqs.erase(std::unique(Seqs.begin(), Seqs.end()), Seqs.end());
  size_t Unit = 0;
  while (Unit < Seqs.size() && Seqs[Unit].size() <= 1)
    ++Unit;
  if (Seqs.size() <= Unit + KBest)
    return;
  // Among the longer yields, prefer one per distinct leading terminal
  // (shortest first): operand *shape* diversity matters more than raw
  // shortness — e.g. a conversion-rooted yield must survive a crowd of
  // equally short memory-rooted ones for the cvt productions to ever be
  // expanded.
  std::vector<std::vector<int>> Kept(Seqs.begin(), Seqs.begin() + Unit);
  std::vector<char> Used(Seqs.size() - Unit, 0);
  std::vector<int> SeenLead;
  for (size_t I = Unit; I < Seqs.size() && Kept.size() < Unit + KBest; ++I) {
    const int Lead = Seqs[I].front();
    if (std::find(SeenLead.begin(), SeenLead.end(), Lead) != SeenLead.end())
      continue;
    SeenLead.push_back(Lead);
    Used[I - Unit] = 1;
    Kept.push_back(Seqs[I]);
  }
  for (size_t I = Unit; I < Seqs.size() && Kept.size() < Unit + KBest; ++I)
    if (!Used[I - Unit])
      Kept.push_back(Seqs[I]);
  std::sort(Kept.begin(), Kept.end(),
            [](const std::vector<int> &A, const std::vector<int> &B) {
              if (A.size() != B.size())
                return A.size() < B.size();
              return A < B;
            });
  Seqs = std::move(Kept);
}

uint64_t hashStack(const std::vector<int> &Stack) {
  uint64_t H = 1469598103934665603ull; // FNV-1a
  for (int S : Stack) {
    H ^= static_cast<uint64_t>(static_cast<uint32_t>(S));
    H *= 1099511628211ull;
  }
  return H;
}

} // namespace

GrammarWalk::GrammarWalk(const Grammar &G, const PackedTables &T)
    : G(G), T(T), Sim(G, T) {
  const std::vector<SymId> &NTs = G.nonterminals();
  const int NumNT = static_cast<int>(NTs.size());
  const int NumStates = T.numStates();
  const int NumTerms = T.numTerms();
  const int EofIdx = Sim.eofIndex();

  // --- k-best shortest yields per nonterminal (beamed fixpoint) ---------
  Yields.assign(NumNT, {});
  bool Changed = true;
  for (int Round = 0; Changed && Round < 64; ++Round) {
    Changed = false;
    for (const Production &P : G.productions()) {
      std::vector<std::vector<int>> Combos{{}};
      bool Derivable = true;
      for (SymId S : P.Rhs) {
        if (G.isTerminal(S)) {
          for (std::vector<int> &C : Combos)
            C.push_back(G.termIndex(S));
          continue;
        }
        const std::vector<std::vector<int>> &Opts = Yields[G.ntIndex(S)];
        if (Opts.empty()) {
          Derivable = false;
          break;
        }
        std::vector<std::vector<int>> Next;
        for (const std::vector<int> &C : Combos)
          for (const std::vector<int> &O : Opts) {
            if (C.size() + O.size() > MaxYieldLen)
              continue;
            std::vector<int> N2 = C;
            N2.insert(N2.end(), O.begin(), O.end());
            Next.push_back(std::move(N2));
          }
        pruneKBest(Next);
        if (Next.empty()) {
          Derivable = false;
          break;
        }
        Combos = std::move(Next);
      }
      if (!Derivable)
        continue;
      int A = G.ntIndex(P.Lhs);
      std::vector<std::vector<int>> Merged = Yields[A];
      Merged.insert(Merged.end(), Combos.begin(), Combos.end());
      pruneKBest(Merged);
      if (Merged != Yields[A]) {
        Yields[A] = std::move(Merged);
        Changed = true;
      }
    }
  }

  // --- k-best derivation contexts per nonterminal -----------------------
  // Dual fixpoint to the yields: contexts flow *down* the productions
  // (from the start symbol into each right-hand-side nonterminal), with
  // sibling symbols realized by their shortest yields.
  constexpr size_t KCtx = 8;
  constexpr size_t MaxCtxLen = 40;
  Contexts.assign(NumNT, {});
  Contexts[G.ntIndex(G.start())].push_back({});
  auto pruneCtx = [](std::vector<Context> &Cs) {
    std::sort(Cs.begin(), Cs.end(), [](const Context &A, const Context &B) {
      const size_t LA = A.Pre.size() + A.Post.size();
      const size_t LB = B.Pre.size() + B.Post.size();
      if (LA != LB)
        return LA < LB;
      if (A.Pre != B.Pre)
        return A.Pre < B.Pre;
      return A.Post < B.Post;
    });
    Cs.erase(std::unique(Cs.begin(), Cs.end(),
                         [](const Context &A, const Context &B) {
                           return A.Pre == B.Pre && A.Post == B.Post;
                         }),
             Cs.end());
    if (Cs.size() > KCtx)
      Cs.resize(KCtx);
  };
  Changed = true;
  for (int Round = 0; Changed && Round < 64; ++Round) {
    Changed = false;
    for (const Production &P : G.productions()) {
      const std::vector<Context> &Outer = Contexts[G.ntIndex(P.Lhs)];
      if (Outer.empty())
        continue;
      for (size_t I = 0; I < P.Rhs.size(); ++I) {
        if (G.isTerminal(P.Rhs[I]))
          continue;
        // Realize the siblings by their shortest yields.
        std::vector<int> Mid[2]; // before / after position I
        bool Derivable = true;
        for (size_t J = 0; J < P.Rhs.size() && Derivable; ++J) {
          if (J == I)
            continue;
          std::vector<int> &Dst = Mid[J > I];
          SymId S = P.Rhs[J];
          if (G.isTerminal(S)) {
            Dst.push_back(G.termIndex(S));
            continue;
          }
          const std::vector<std::vector<int>> &Ys = Yields[G.ntIndex(S)];
          if (Ys.empty()) {
            Derivable = false;
            break;
          }
          Dst.insert(Dst.end(), Ys.front().begin(), Ys.front().end());
        }
        if (!Derivable)
          continue;
        const int Inner = G.ntIndex(P.Rhs[I]);
        std::vector<Context> Merged = Contexts[Inner];
        for (const Context &Cx : Outer) {
          Context N;
          N.Pre = Cx.Pre;
          N.Pre.insert(N.Pre.end(), Mid[0].begin(), Mid[0].end());
          N.Post = Mid[1];
          N.Post.insert(N.Post.end(), Cx.Post.begin(), Cx.Post.end());
          if (N.Pre.size() + N.Post.size() > MaxCtxLen)
            continue;
          Merged.push_back(std::move(N));
        }
        pruneCtx(Merged);
        bool Same = Merged.size() == Contexts[Inner].size();
        for (size_t K = 0; Same && K < Merged.size(); ++K)
          Same = Merged[K].Pre == Contexts[Inner][K].Pre &&
                 Merged[K].Post == Contexts[Inner][K].Post;
        if (!Same) {
          Contexts[Inner] = std::move(Merged);
          Changed = true;
        }
      }
    }
  }

  // --- table scan: reduce sites, dyn points, automaton edges ------------
  Sites.assign(G.numProductions(), {});
  struct Edge {
    int To;
    int64_t Cost;
    bool IsTerm;
    int SymIdx;
  };
  std::vector<std::vector<Edge>> Out(NumStates);
  std::vector<bool> Accepting(NumStates, false);
  for (int S = 0; S < NumStates; ++S) {
    for (int TI = 0; TI < NumTerms; ++TI) {
      Action A = T.actionAt(S, TI);
      switch (A.Kind) {
      case ActionType::Shift:
        Out[S].push_back({A.Target, 1, true, TI});
        break;
      case ActionType::Reduce:
        Sites[A.Target].emplace_back(S, TI);
        break;
      case ActionType::Accept:
        if (TI == EofIdx)
          Accepting[S] = true;
        break;
      case ActionType::Error:
        break;
      }
      if (T.dynChoicesAt(S, TI))
        DynPoints.emplace_back(S, TI);
    }
    for (int NI = 0; NI < NumNT; ++NI) {
      int32_t To = T.gotoAt(S, NI);
      if (To < 0 || Yields[NI].empty())
        continue;
      Out[S].push_back(
          {To, static_cast<int64_t>(Yields[NI].front().size()), false, NI});
    }
  }
  std::sort(DynPoints.begin(), DynPoints.end());
  for (int P = 0; P < static_cast<int>(G.numProductions()); ++P)
    if (Sites[P].empty())
      Shadowed.push_back(P);

  // --- null-chooser reachability refinement -----------------------------
  // Raw automaton reachability over-approximates what the shipped
  // pipeline can do: a goto edge S --A--> D is only ever taken when some
  // production A <- rhs actually *reduces* with S underneath, and under
  // the null chooser a reduction only happens where the tables' default
  // action says Reduce. Walk each production's right-hand side from S
  // (shift edges for terminals, goto edges for nonterminals — optimistic
  // on nested gotos, which keeps unreachability claims sound) and demand
  // a default reduce site at the state it lands in. States fed only by
  // infeasible gotos are unreachable; productions whose every site lies
  // in an unreachable state can never reduce and are *dynamically*
  // shadowed, which can kill further gotos — iterate to fixpoint.
  //
  // On the VAX tables this proves the loadcon alternative of the
  // duplicate-RHS pair reg_w <- con_w dead: at every state that gotos
  // into its one reduce state, the Const_w shift lands where the
  // reduce/reduce default folds the constant the other way.
  {
    const size_t NumProds = G.numProductions();
    std::vector<char> Dead(NumProds, 0);
    for (int P : Shadowed)
      Dead[P] = 1;
    auto rhsEndState = [&](int From, const Production &P) -> int {
      int Cur = From;
      for (SymId S : P.Rhs) {
        if (G.isTerminal(S)) {
          Action A = T.actionAt(Cur, G.termIndex(S));
          if (A.Kind != ActionType::Shift)
            return -1;
          Cur = A.Target;
        } else {
          int32_t D = T.gotoAt(Cur, G.ntIndex(S));
          if (D < 0)
            return -1;
          Cur = D;
        }
      }
      return Cur;
    };
    for (;;) {
      StateReachable.assign(NumStates, 0);
      StateReachable[0] = 1;
      std::vector<int> Work{0};
      while (!Work.empty()) {
        const int S = Work.back();
        Work.pop_back();
        for (int TI = 0; TI < NumTerms; ++TI) {
          Action A = T.actionAt(S, TI);
          if (A.Kind == ActionType::Shift && !StateReachable[A.Target]) {
            StateReachable[A.Target] = 1;
            Work.push_back(A.Target);
          }
        }
        for (int NI = 0; NI < NumNT; ++NI) {
          const int32_t D = T.gotoAt(S, NI);
          if (D < 0 || StateReachable[D])
            continue;
          bool Feasible = false;
          for (int P : G.prodsFor(NTs[NI])) {
            if (Dead[P])
              continue;
            const int R = rhsEndState(S, G.prod(P));
            if (R < 0)
              continue;
            for (const auto &[SiteState, SiteTerm] : Sites[P]) {
              (void)SiteTerm;
              if (SiteState == R) {
                Feasible = true;
                break;
              }
            }
            if (Feasible)
              break;
          }
          if (Feasible) {
            StateReachable[D] = 1;
            Work.push_back(D);
          }
        }
      }
      bool Grew = false;
      for (size_t P = 0; P < NumProds; ++P) {
        if (Dead[P])
          continue;
        bool AnyLive = false;
        for (const auto &[SiteState, SiteTerm] : Sites[P]) {
          (void)SiteTerm;
          if (StateReachable[SiteState]) {
            AnyLive = true;
            break;
          }
        }
        if (!AnyLive) {
          Dead[P] = 1;
          ShadowedDyn.push_back(static_cast<int>(P));
          Grew = true;
        }
      }
      if (!Grew)
        break;
    }
    std::sort(ShadowedDyn.begin(), ShadowedDyn.end());
  }

  // --- Dijkstra from state 0; alternate strictly-descending preds -------
  constexpr int64_t Inf = INT64_MAX / 4;
  DistFromStart.assign(NumStates, Inf);
  DistFromStart[0] = 0;
  using QE = std::pair<int64_t, int>;
  std::priority_queue<QE, std::vector<QE>, std::greater<QE>> Q;
  Q.push({0, 0});
  while (!Q.empty()) {
    auto [D, S] = Q.top();
    Q.pop();
    if (D != DistFromStart[S])
      continue;
    for (const Edge &E : Out[S])
      if (D + E.Cost < DistFromStart[E.To]) {
        DistFromStart[E.To] = D + E.Cost;
        Q.push({D + E.Cost, E.To});
      }
  }
  Preds.assign(NumStates, {});
  for (int S = 0; S < NumStates; ++S) {
    if (DistFromStart[S] >= Inf)
      continue;
    for (const Edge &E : Out[S]) {
      // Only predecessors with strictly smaller distance: path
      // reconstruction must terminate for every variant choice.
      if (DistFromStart[E.To] >= Inf || DistFromStart[S] >= DistFromStart[E.To])
        continue;
      Preds[E.To].push_back({S, E.IsTerm, E.SymIdx});
    }
  }
  for (std::vector<PredOpt> &Opts : Preds) {
    // Tight (shortest) predecessors first, then by id for determinism.
    std::sort(Opts.begin(), Opts.end(),
              [&](const PredOpt &A, const PredOpt &B) {
                if (DistFromStart[A.Pred] != DistFromStart[B.Pred])
                  return DistFromStart[A.Pred] < DistFromStart[B.Pred];
                if (A.Pred != B.Pred)
                  return A.Pred < B.Pred;
                if (A.IsTerm != B.IsTerm)
                  return A.IsTerm > B.IsTerm;
                return A.SymIdx < B.SymIdx;
              });
    if (Opts.size() > 3)
      Opts.resize(3);
  }

  // --- distance-to-accept ordering heuristic (shift edges cost 1) -------
  std::vector<std::vector<std::pair<int, int>>> RevEdges(NumStates);
  for (int S = 0; S < NumStates; ++S)
    for (const Edge &E : Out[S])
      RevEdges[E.To].emplace_back(S, E.IsTerm ? 1 : 0);
  DistToAccept.assign(NumStates, INT32_MAX / 4);
  std::priority_queue<QE, std::vector<QE>, std::greater<QE>> RQ;
  for (int S = 0; S < NumStates; ++S)
    if (Accepting[S]) {
      DistToAccept[S] = 0;
      RQ.push({0, S});
    }
  while (!RQ.empty()) {
    auto [D, S] = RQ.top();
    RQ.pop();
    if (D != DistToAccept[S])
      continue;
    for (auto [P, C] : RevEdges[S])
      if (D + C < DistToAccept[P]) {
        DistToAccept[P] = static_cast<int>(D + C);
        RQ.push({static_cast<int64_t>(DistToAccept[P]), P});
      }
  }
}

bool GrammarWalk::realizePathTo(int State, uint64_t Variant,
                                std::vector<int> &Toks) {
  Toks.clear();
  if (State < 0 || State >= static_cast<int>(DistFromStart.size()) ||
      DistFromStart[State] >= INT64_MAX / 8)
    return false;
  // Reconstruct the hop list back to state 0, spending the variant
  // counter as a mixed-radix number over predecessor choices.
  std::vector<PredOpt> Hops;
  int Cur = State;
  while (Cur != 0) {
    const std::vector<PredOpt> &Opts = Preds[Cur];
    if (Opts.empty())
      return false;
    const PredOpt &O = Opts[Variant % Opts.size()];
    Variant /= Opts.size();
    Hops.push_back(O);
    Cur = O.Pred;
  }
  std::reverse(Hops.begin(), Hops.end());
  for (const PredOpt &H : Hops) {
    if (H.IsTerm) {
      Toks.push_back(H.SymIdx);
      continue;
    }
    const std::vector<std::vector<int>> &Ys = Yields[H.SymIdx];
    if (Ys.empty())
      return false;
    const std::vector<int> &Y = Ys[Variant % Ys.size()];
    Variant /= Ys.size();
    Toks.insert(Toks.end(), Y.begin(), Y.end());
  }
  // A leftover counter means the variant space is exhausted; signalling
  // false here terminates the caller's enumeration.
  return Variant == 0;
}

bool GrammarWalk::completeFrom(TableSim::Config Cfg, std::vector<int> &Suffix,
                               int Depth, int &NodeBudget,
                               std::unordered_map<uint64_t, int> &Seen) {
  const uint64_t H = hashStack(Cfg.Stack);
  if (auto It = CompletionMemo.find(H); It != CompletionMemo.end()) {
    // The parser is a pure function of (stack, remaining input): any
    // accepted suffix for this stack is accepted here too.
    Suffix.insert(Suffix.end(), It->second.begin(), It->second.end());
    return true;
  }
  if (--NodeBudget < 0 || Depth > CompletionDepthCap)
    return false;
  if (!Seen.emplace(H, 1).second)
    return false;

  {
    TableSim::Config End = Cfg;
    if (Sim.finish(End, nullptr)) {
      CompletionMemo.emplace(H, std::vector<int>{});
      return true;
    }
  }

  struct Cand {
    int Dist;
    int Term;
    TableSim::Config Cfg;
  };
  std::vector<Cand> Cands;
  for (int TI = 0; TI < Sim.numTerms(); ++TI) {
    if (TI == Sim.eofIndex())
      continue;
    TableSim::Config Next = Cfg;
    if (!Sim.advance(Next, TI, nullptr))
      continue;
    Cands.push_back({DistToAccept[Next.top()], TI, std::move(Next)});
  }
  std::sort(Cands.begin(), Cands.end(), [](const Cand &A, const Cand &B) {
    if (A.Dist != B.Dist)
      return A.Dist < B.Dist;
    return A.Term < B.Term;
  });
  if (Cands.size() > CompletionBeam)
    Cands.resize(CompletionBeam);

  const size_t EntryLen = Suffix.size();
  for (Cand &C : Cands) {
    Suffix.push_back(C.Term);
    if (completeFrom(std::move(C.Cfg), Suffix, Depth + 1, NodeBudget, Seen)) {
      CompletionMemo.emplace(
          H, std::vector<int>(Suffix.begin() + EntryLen, Suffix.end()));
      return true;
    }
    Suffix.resize(EntryLen);
  }
  return false;
}

bool GrammarWalk::completeSentence(const std::vector<int> &Prefix,
                                   std::vector<int> &Out) {
  TableSim::Config Cfg;
  for (int TI : Prefix)
    if (!Sim.advance(Cfg, TI, nullptr))
      return false;
  std::vector<int> Suffix;
  int Budget = CompletionNodeBudget;
  std::unordered_map<uint64_t, int> Seen;
  if (!completeFrom(std::move(Cfg), Suffix, 0, Budget, Seen))
    return false;
  Out = Prefix;
  Out.insert(Out.end(), Suffix.begin(), Suffix.end());
  return true;
}

template <typename Pred>
bool GrammarWalk::witnessAt(int State, int FeedTerm, Pred Satisfied,
                            std::vector<int> &Out) {
  std::vector<int> Prefix;
  for (uint64_t V = 0; V < MaxPathVariants; ++V) {
    if (!realizePathTo(State, V, Prefix))
      break; // variant space exhausted
    if (FeedTerm >= 0)
      Prefix.push_back(FeedTerm);
    std::vector<int> Full;
    if (completeSentence(Prefix, Full)) {
      SimTrace Trace = Sim.run(Full);
      if (Trace.Accepted && Satisfied(Trace) && passes(Full, false)) {
        Out = std::move(Full);
        return true;
      }
    }
    if (FeedTerm >= 0)
      Prefix.pop_back();
  }
  return false;
}

bool GrammarWalk::witnessForProduction(int ProdId, std::vector<int> &Out) {
  // Top-down first: expand exactly this production's right-hand side
  // inside a derivation context of its left-hand side. The parse of the
  // result usually reduces the production at the intended spot (the
  // simulation below proves it; a default tie or a specialized longer
  // rule can still steal the reduction, in which case we fall through to
  // the automaton-path search).
  const Production &P = G.prod(ProdId);
  const std::vector<Context> &Cxs = Contexts[G.ntIndex(P.Lhs)];
  for (const Context &Cx : Cxs) {
    for (uint64_t V = 0; V < 512; ++V) {
      std::vector<int> Toks = Cx.Pre;
      uint64_t Var = V;
      bool Derivable = true;
      for (SymId S : P.Rhs) {
        if (G.isTerminal(S)) {
          Toks.push_back(G.termIndex(S));
          continue;
        }
        const std::vector<std::vector<int>> &Ys = Yields[G.ntIndex(S)];
        if (Ys.empty()) {
          Derivable = false;
          break;
        }
        const std::vector<int> &Y = Ys[Var % Ys.size()];
        Var /= Ys.size();
        Toks.insert(Toks.end(), Y.begin(), Y.end());
      }
      if (!Derivable || Var != 0) // unexpandable, or variants exhausted
        break;
      Toks.insert(Toks.end(), Cx.Post.begin(), Cx.Post.end());
      SimTrace Tr = Sim.run(Toks);
      if (Tr.Accepted &&
          std::find(Tr.Reduces.begin(), Tr.Reduces.end(), ProdId) !=
              Tr.Reduces.end() &&
          passes(Toks, false)) {
        Out = std::move(Toks);
        return true;
      }
    }
  }

  // Order candidate sites nearest-first; a handful is almost always
  // enough, and every site is provably the only kind of place this
  // production can reduce.
  std::vector<std::pair<int, int>> Ordered = Sites[ProdId];
  std::sort(Ordered.begin(), Ordered.end(),
            [&](const std::pair<int, int> &A, const std::pair<int, int> &B) {
              if (DistFromStart[A.first] != DistFromStart[B.first])
                return DistFromStart[A.first] < DistFromStart[B.first];
              return A < B;
            });
  if (Ordered.size() > 8)
    Ordered.resize(8);
  for (auto [S, TI] : Ordered)
    if (witnessAt(S, TI,
                  [&](const SimTrace &Tr) {
                    return std::find(Tr.Reduces.begin(), Tr.Reduces.end(),
                                     ProdId) != Tr.Reduces.end();
                  },
                  Out))
      return true;
  return false;
}

bool GrammarWalk::witnessForState(int State, std::vector<int> &Out) {
  return witnessAt(State, -1,
                   [&](const SimTrace &Tr) {
                     return std::find(Tr.States.begin(), Tr.States.end(),
                                      State) != Tr.States.end();
                   },
                   Out);
}

bool GrammarWalk::witnessForDynPoint(int State, int TermIdx,
                                     std::vector<int> &Out) {
  const std::pair<int, int> Want{State, TermIdx};
  auto Consulted = [&](const SimTrace &Tr) {
    return std::find(Tr.DynConsults.begin(), Tr.DynConsults.end(), Want) !=
           Tr.DynConsults.end();
  };
  // An end-of-input consult can't be reached by feeding EOF as a shift
  // token: the sentence must simply *end* so that the final reduce
  // cascade passes \p State under the EOF lookahead. The completion
  // search tries finish() first, so a path parked right before the goto
  // into \p State ends the sentence exactly there.
  if (TermIdx == Sim.eofIndex())
    return witnessAt(State, -1, Consulted, Out);
  return witnessAt(State, TermIdx, Consulted, Out);
}

bool GrammarWalk::blockedWitnessForDynPoint(int State, int TermIdx,
                                            std::vector<int> &Out) {
  const std::pair<int, int> Want{State, TermIdx};
  std::vector<int> Prefix;
  for (uint64_t V = 0; V < MaxPathVariants; ++V) {
    if (!realizePathTo(State, V, Prefix))
      break;
    Prefix.push_back(TermIdx);
    SimTrace Trace = Sim.run(Prefix);
    if (std::find(Trace.DynConsults.begin(), Trace.DynConsults.end(), Want) !=
            Trace.DynConsults.end() &&
        passes(Prefix, true)) {
      Out = std::move(Prefix);
      return true;
    }
    Prefix.pop_back();
  }
  return false;
}
