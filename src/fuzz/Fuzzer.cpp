//===- Fuzzer.cpp - grammar-aware differential fuzzing driver -------------===//

#include "fuzz/Fuzzer.h"
#include "cg/CodeGenerator.h"
#include "ir/Interp.h"
#include "ir/Linearize.h"
#include "match/Matcher.h"
#include "pcc/PccCodeGen.h"
#include "support/Strings.h"
#include "support/ThreadPool.h"
#include "vaxsim/Simulator.h"

#include <algorithm>
#include <set>

using namespace gg;

namespace {

/// Per-program seed: decorrelates neighboring programs while staying a
/// pure function of (run seed, program index).
uint64_t programSeed(uint64_t Seed, size_t Index) {
  uint64_t S = Seed ^ (0x9E3779B97F4A7C15ull * (Index + 1));
  S ^= S << 13;
  S ^= S >> 7;
  S ^= S << 17;
  return S ? S : 1;
}

/// Clips oracle output for failure messages: full dumps belong in the
/// reproducer, not the verdict line.
std::string clip(const std::string &S) {
  if (S.size() <= 160)
    return S;
  return S.substr(0, 160) + strf("... (%zu bytes)", S.size());
}

std::string describeMismatch(const char *Who, const InterpResult &Ref,
                             const std::string &Out, int64_t Ret) {
  if (Out != Ref.Output) {
    size_t I = 0;
    while (I < Out.size() && I < Ref.Output.size() &&
           Out[I] == Ref.Output[I])
      ++I;
    return strf("%s/interp output mismatch at byte %zu:\n  interp: %s\n  "
                "%s: %s",
                Who, I, clip(Ref.Output).c_str(), Who, clip(Out).c_str());
  }
  if (Ret != Ref.ReturnValue)
    return strf("%s/interp return mismatch: interp %lld, %s %lld", Who,
                static_cast<long long>(Ref.ReturnValue), Who,
                static_cast<long long>(Ret));
  return "";
}

} // namespace

Fuzzer::Fuzzer(const VaxTarget &Target)
    : Target(Target), Walk(Target.grammar(), Target.packed()) {
  // Witness candidates must be tree-faithful: decodable into a statement
  // tree whose re-linearization reproduces the candidate tokens. The
  // grammar alone is looser than the tree language (chain productions
  // accept e.g. a byte constant under a word-source Cvt terminal), and
  // the Matcher only ever parses real linearizations.
  Walk.setFilter([this](const std::vector<int> &Toks, bool Partial) {
    std::vector<std::string> Names;
    Names.reserve(Toks.size());
    for (int I : Toks)
      Names.push_back(Walk.sim().termName(I));
    Program Scratch;
    std::string Err;
    Node *Tree = Synth.decode(Scratch, Names, Partial, Err);
    if (!Tree)
      return false;
    std::vector<LinToken> Lin = linearize(Tree);
    if (Lin.size() < Names.size())
      return false;
    for (size_t I = 0; I < Names.size(); ++I)
      if (Lin[I].Term != Names[I])
        return false;
    return true;
  });
}

std::vector<SynthStmt> Fuzzer::plan(const FuzzOptions &Opts,
                                    FuzzPlanStats &PS) {
  const Grammar &G = Target.grammar();
  const PackedTables &T = Target.packed();
  const size_t NumProds = G.numProductions();
  PS = FuzzPlanStats{};
  PS.Productions = NumProds;
  PS.States = static_cast<size_t>(T.numStates());
  PS.DynPoints = Walk.dynPoints().size();
  PS.ShadowedProductions = Walk.shadowedProductions();
  PS.DynShadowedProductions = Walk.dynamicallyShadowedProductions();
  const std::vector<char> &Reachable = Walk.reachableStates();
  for (size_t S = 0; S < PS.States; ++S)
    if (!Reachable[S])
      PS.UnreachableStates.push_back(static_cast<int>(S));
  for (const auto &D : Walk.dynPoints())
    if (!Reachable[D.first])
      PS.UnreachableDynPoints.push_back(D);

  std::vector<char> ProdCov(NumProds, 0);
  std::vector<char> StateCov(PS.States, 0);
  std::set<std::pair<int, int>> DynCov;
  std::vector<SynthStmt> Out;

  auto absorb = [&](const SimTrace &Tr) {
    for (int P : Tr.Reduces)
      if (P >= 0 && P < static_cast<int>(NumProds))
        ProdCov[P] = 1;
    for (int S : Tr.States)
      if (S >= 0 && S < static_cast<int>(PS.States))
        StateCov[S] = 1;
    for (const auto &D : Tr.DynConsults)
      DynCov.insert(D);
  };
  // Every witness is arity-completed into a whole statement tree before
  // anything is recorded: coverage and the blocked/accepted verdict must
  // be measured on the linearization the Matcher will actually parse,
  // and filler leaves can carry a blocked prefix past its block point.
  // A witness whose tokens would overrun a complete tree can never be a
  // statement — the decode rejects it and the target stays uncovered.
  std::string SynthErr;
  auto add = [&](const std::vector<int> &Toks, bool Partial) -> bool {
    std::vector<std::string> Names;
    Names.reserve(Toks.size());
    for (int I : Toks)
      Names.push_back(Walk.sim().termName(I));
    Program Scratch;
    Node *Tree = Synth.decode(Scratch, Names, Partial, SynthErr);
    if (!Tree)
      return false;
    SynthStmt S;
    for (const LinToken &L : linearize(Tree))
      S.Tokens.push_back(L.Term);
    if (S.Tokens.size() < Names.size())
      return false;
    for (size_t I = 0; I < Names.size(); ++I)
      if (S.Tokens[I] != Names[I])
        return false;
    SimTrace Tr = Walk.sim().runNames(S.Tokens);
    absorb(Tr);
    S.ExpectBlocked = !Tr.Accepted;
    Out.push_back(std::move(S));
    return true;
  };

  std::vector<char> IsShadowed(NumProds, 0);
  for (int P : PS.ShadowedProductions)
    IsShadowed[P] = 1;
  for (int P : PS.DynShadowedProductions)
    IsShadowed[P] = 1;

  if (Opts.TargetProduction >= 0) {
    // Target-production mode: a handful of witnesses all reducing the
    // requested production, nothing else planned.
    if (Opts.TargetProduction < static_cast<int>(NumProds) &&
        !IsShadowed[Opts.TargetProduction]) {
      std::vector<int> W;
      if (!Walk.witnessForProduction(Opts.TargetProduction, W) ||
          !add(W, false))
        PS.UnwitnessedProductions.push_back(Opts.TargetProduction);
    } else {
      PS.UnwitnessedProductions.push_back(Opts.TargetProduction);
    }
  } else {
    for (size_t P = 0; P < NumProds; ++P) {
      if (IsShadowed[P] || ProdCov[P])
        continue;
      std::vector<int> W;
      if (Walk.witnessForProduction(static_cast<int>(P), W))
        add(W, false);
    }
    for (size_t S = 0; S < PS.States; ++S) {
      if (StateCov[S] || !Reachable[S])
        continue;
      std::vector<int> W;
      if (Walk.witnessForState(static_cast<int>(S), W))
        add(W, false);
    }
    for (const auto &[S, TI] : Walk.dynPoints()) {
      if (DynCov.count({S, TI}) || !Reachable[S])
        continue;
      std::vector<int> W;
      if (Walk.witnessForDynPoint(S, TI, W))
        add(W, false);
      else if (Walk.blockedWitnessForDynPoint(S, TI, W))
        add(W, true);
    }

    // Splice sweep: whatever the path search missed is hunted from the
    // corpus itself. Every prefix cut of every planned statement parks
    // the parser in some configuration, and advancing one terminal from
    // a parked configuration discovers every consult a single extra
    // token can make — including mid-cascade dyn points no realized
    // automaton path survives to. Cuts with open operand slots extend
    // into decodable (blocked-witness) statements. After each advance an
    // end-of-input probe on a copy catches the consults only the final
    // reduce cascade makes. A point hit solely past the end of a
    // complete statement (extra token at zero pending) or solely at
    // end-of-input with slots still open (EOF probe at nonzero pending)
    // is consultable by no whole-statement linearization — stranded.
    std::set<std::pair<int, int>> Remaining;
    for (const auto &D : Walk.dynPoints())
      if (!DynCov.count(D) && Reachable[D.first])
        Remaining.insert(D);
    std::set<std::pair<int, int>> StrandedHits;
    const TableSim &Sim = Walk.sim();
    std::set<std::vector<int>> SeenStacks;
    const size_t CorpusEnd = Out.size(); // splices are not re-spliced
    for (size_t WI = 0; WI < CorpusEnd && !Remaining.empty(); ++WI) {
      const std::vector<std::string> Names = Out[WI].Tokens;
      std::vector<int> Idx;
      Idx.reserve(Names.size());
      for (const std::string &N : Names)
        Idx.push_back(Sim.termIndexFor(N));
      TableSim::Config Cfg;
      std::vector<std::string> Prefix;
      for (size_t K = 0; K < Idx.size() && !Remaining.empty(); ++K) {
        if (Idx[K] < 0 || !Sim.advance(Cfg, Idx[K], nullptr))
          break;
        Prefix.push_back(Names[K]);
        if (!SeenStacks.insert(Cfg.Stack).second)
          continue;
        const int Pending = Synth.pendingAfter(Prefix);
        for (int TI = 0; TI < Sim.numTerms() && !Remaining.empty(); ++TI) {
          if (TI == Sim.eofIndex())
            continue;
          TableSim::Config C2 = Cfg;
          SimTrace Tr;
          const bool Advanced = Sim.advance(C2, TI, &Tr);
          bool Hit = false;
          for (const auto &D : Tr.DynConsults)
            Hit = Hit || Remaining.count(D);
          // End-of-input probe: consults made under the $end lookahead
          // only exist in the final reduce cascade, which the advance
          // above never runs. TokPending tells which kind of sentence
          // the probe models — a finished statement (a real witness) or
          // a truncated one no tree linearizes to (strand evidence).
          SimTrace FTr;
          bool FinHit = false;
          if (Advanced) {
            TableSim::Config C3 = C2;
            Sim.finish(C3, &FTr);
            for (const auto &D : FTr.DynConsults)
              FinHit = FinHit || Remaining.count(D);
          }
          if (!Hit && !FinHit)
            continue;
          std::vector<int> W(Idx.begin(), Idx.begin() + K + 1);
          W.push_back(TI);
          std::vector<std::string> ExtNames = Prefix;
          ExtNames.push_back(Sim.termName(TI));
          const int TokPending = Synth.pendingAfter(ExtNames);
          bool Claimed = false;
          if (TokPending == 0) {
            // The extra token *finishes* the tree: a whole-statement
            // witness whose full replay in add() absorbs the advance
            // and cascade consults alike.
            Claimed = add(W, false);
          } else if (Pending > 0 && Hit) {
            // Open slots remain and the consult fires while tokens
            // still flow: a decodable blocked witness carries it.
            Claimed = add(W, true);
          }
          if (Claimed)
            for (auto It = Remaining.begin(); It != Remaining.end();)
              It = DynCov.count(*It) ? Remaining.erase(It) : ++It;
          if (Pending == 0 && Hit)
            for (const auto &D : Tr.DynConsults)
              if (Remaining.count(D))
                StrandedHits.insert(D); // extra-token mode
          if (TokPending != 0 && FinHit)
            for (const auto &D : FTr.DynConsults)
              if (Remaining.count(D))
                StrandedHits.insert(D); // early-EOF mode
        }
      }
    }
    for (const auto &D : StrandedHits)
      if (Remaining.count(D))
        PS.StrandedDynPoints.push_back(D);

    // Gap lists are computed from the *final* coverage sets: a target
    // whose direct search failed usually gets covered incidentally by a
    // later witness, and only what nothing covered is a real gap.
    std::set<std::pair<int, int>> IsStranded(PS.StrandedDynPoints.begin(),
                                             PS.StrandedDynPoints.end());
    for (size_t P = 0; P < NumProds; ++P)
      if (!IsShadowed[P] && !ProdCov[P])
        PS.UnwitnessedProductions.push_back(static_cast<int>(P));
    for (size_t S = 0; S < PS.States; ++S)
      if (!StateCov[S] && Reachable[S])
        PS.UnwitnessedStates.push_back(static_cast<int>(S));
    for (const auto &D : Walk.dynPoints())
      if (!DynCov.count(D) && !IsStranded.count(D) && Reachable[D.first])
        PS.UnwitnessedDynPoints.push_back(D);
  }

  for (const SynthStmt &S : Out)
    if (S.ExpectBlocked)
      ++PS.BlockedWitnesses;
  PS.WitnessedProductions =
      static_cast<size_t>(std::count(ProdCov.begin(), ProdCov.end(), 1));
  PS.WitnessedStates =
      static_cast<size_t>(std::count(StateCov.begin(), StateCov.end(), 1));
  PS.WitnessedDynPoints = DynCov.size();
  return Out;
}

std::string Fuzzer::verdict(const std::vector<SynthStmt> &Stmts,
                            uint64_t Seed, SynthReport &Rep) {
  std::string Err;

  // Oracle 1: the IR interpreter — semantic ground truth. Each oracle
  // gets its own freshly synthesized program (identical by determinism)
  // so no backend sees another's tree mutations.
  Program PI;
  Rep = SynthReport{};
  if (!Synth.buildProgram(Stmts, Seed, PI, Rep, Err))
    return "synth: " + Err;
  InterpResult Ref = interpret(PI);
  if (!Ref.Ok)
    return "interp: " + Ref.Error;

  // Oracle 2: the table-driven backend on raw trees + the VAX simulator.
  Program PG;
  SynthReport RG;
  if (!Synth.buildProgram(Stmts, Seed, PG, RG, Err))
    return "synth(gg): " + Err;
  CodeGenOptions GOpts;
  GOpts.Transform.RawTrees = true;
  std::string GGAsm;
  GGCodeGenerator GG(Target, GOpts);
  if (!GG.compile(PG, GGAsm, Err))
    return "gg compile: " + Err;
  if (GG.stats().BlockedTrees != RG.ExpectedBlocks)
    return strf("blocked-tree prediction broken: matcher blocked %zu "
                "tree(s), simulator predicted %zu",
                GG.stats().BlockedTrees, RG.ExpectedBlocks);
  SimResult GGRun = assembleAndRun(GGAsm);
  if (!GGRun.Ok)
    return "gg sim: " + GGRun.Error;
  if (std::string M =
          describeMismatch("gg", Ref, GGRun.Output, GGRun.ReturnValue);
      !M.empty())
    return M;

  // Oracle 3: the hand-coded baseline + the VAX simulator. Skipped for
  // batches holding probed-incompilable statements (embedded-assignment
  // shapes the baseline refuses by design): those run as two-oracle
  // programs, interpreter vs table-driven backend.
  for (const SynthStmt &S : Stmts)
    if (!S.PccOk)
      return "";
  Program PP;
  SynthReport RP;
  if (!Synth.buildProgram(Stmts, Seed, PP, RP, Err))
    return "synth(pcc): " + Err;
  PccCodeGenerator Pcc;
  std::string PccAsm;
  if (!Pcc.compile(PP, PccAsm, Err))
    return "pcc compile: " + Err;
  SimResult PccRun = assembleAndRun(PccAsm);
  if (!PccRun.Ok)
    return "pcc sim: " + PccRun.Error;
  if (std::string M =
          describeMismatch("pcc", Ref, PccRun.Output, PccRun.ReturnValue);
      !M.empty())
    return M;
  return "";
}

bool Fuzzer::pccCanCompile(const SynthStmt &S, uint64_t Seed) {
  Program P;
  SynthReport Rep;
  std::string Err;
  std::vector<SynthStmt> One{S};
  if (!Synth.buildProgram(One, Seed, P, Rep, Err))
    return false;
  PccCodeGenerator Pcc;
  std::string Asm;
  return Pcc.compile(P, Asm, Err);
}

std::string Fuzzer::parseOnlyVerdict(const SynthStmt &S, uint64_t) {
  Program P;
  std::string Err;
  Node *Tree = Synth.decode(P, S.Tokens, /*AllowPartial=*/true, Err);
  if (!Tree)
    return "parse-only decode: " + Err;
  const std::vector<LinToken> Input = linearize(Tree);
  const MatchResult MR = Target.matcher().match(Input);
  if (MR.Ok)
    return strf("parse-only: the real matcher accepted a witness the "
                "table simulator predicted would block: %s",
                printLinear(Tree, P.Syms).c_str());
  if (MR.Block && MR.Block->Why != BlockReport::Cause::NoAction)
    return strf("parse-only: matcher blocked for the wrong reason "
                "(expected a description gap): %s",
                MR.Error.c_str());
  return "";
}

std::vector<SynthStmt> Fuzzer::shrink(const std::vector<SynthStmt> &Stmts,
                                      uint64_t Seed) {
  std::vector<SynthStmt> Cur = Stmts;
  SynthReport Rep;
  if (verdict(Cur, Seed, Rep).empty())
    return Cur; // not reproducible in isolation; keep everything
  size_t Budget = 200;
  for (size_t Win = std::max<size_t>(1, Cur.size() / 2); Win >= 1;
       Win = Win / 2) {
    bool Progress = false;
    size_t Start = 0;
    while (Start < Cur.size() && Budget > 0) {
      if (Cur.size() <= 1)
        break;
      const size_t End = std::min(Cur.size(), Start + Win);
      std::vector<SynthStmt> Cand;
      Cand.reserve(Cur.size() - (End - Start));
      Cand.insert(Cand.end(), Cur.begin(), Cur.begin() + Start);
      Cand.insert(Cand.end(), Cur.begin() + End, Cur.end());
      if (Cand.empty()) {
        Start += Win;
        continue;
      }
      --Budget;
      if (!verdict(Cand, Seed, Rep).empty()) {
        Cur = std::move(Cand); // still fails without the window: keep cut
        Progress = true;       // retry the same Start against new content
      } else {
        Start += Win;
      }
    }
    if (Win == 1 && !Progress)
      break;
    if (Budget == 0)
      break;
  }
  return Cur;
}

FuzzResult Fuzzer::run(const FuzzOptions &Opts) {
  FuzzResult R;
  std::vector<SynthStmt> Corpus = plan(Opts, R.Plan);

  ParallelOptions PO;
  PO.Threads = Opts.Threads;

  // Oracle bucketing: probe every witness against the real baseline, then
  // route it to the strongest oracle set that can judge it. The grammar
  // accepts shapes no backend should compile (assignments into constants,
  // Label operands) — demanding a three-way run for those would report
  // the baseline's correct refusal as a differential failure.
  parallelFor(Corpus.size(), PO, [&](size_t I) {
    Corpus[I].PccOk = pccCanCompile(Corpus[I], Opts.Seed);
  });
  std::vector<SynthStmt> Runnable, Exempt, ParseOnly;
  for (SynthStmt &S : Corpus) {
    if (S.PccOk)
      Runnable.push_back(std::move(S)); // three oracles
    else if (S.ExpectBlocked)
      ParseOnly.push_back(std::move(S)); // real matcher must block
    else
      Exempt.push_back(std::move(S)); // interp + table-driven backend
  }
  R.ParseOnlyStatements = ParseOnly.size();
  R.PccExemptStatements = Exempt.size();

  const size_t Per = std::max<size_t>(1, Opts.StmtsPerProgram);
  std::vector<std::vector<SynthStmt>> Batches;
  auto appendBatches = [&](std::vector<SynthStmt> &List) {
    const size_t N = List.empty() ? 0 : (List.size() + Per - 1) / Per;
    for (size_t I = 0; I < N; ++I) {
      const size_t Begin = I * Per;
      const size_t End = std::min(List.size(), Begin + Per);
      Batches.emplace_back(std::make_move_iterator(List.begin() + Begin),
                           std::make_move_iterator(List.begin() + End));
    }
  };
  appendBatches(Runnable);
  appendBatches(Exempt);
  if (Opts.MaxPrograms && Batches.size() > Opts.MaxPrograms) {
    // The last allowed program absorbs the overflow so a MaxPrograms cap
    // never silently drops coverage targets. (If the merge pulls in an
    // exempt statement, the whole batch downgrades to two oracles.)
    for (size_t I = Opts.MaxPrograms; I < Batches.size(); ++I)
      for (SynthStmt &S : Batches[I])
        Batches[Opts.MaxPrograms - 1].push_back(std::move(S));
    Batches.resize(Opts.MaxPrograms);
  }
  const size_t NumProg = Batches.size();

  std::vector<std::string> Details(NumProg);
  std::vector<SynthReport> Reps(NumProg);
  parallelFor(NumProg, PO, [&](size_t I) {
    Details[I] = verdict(Batches[I], programSeed(Opts.Seed, I), Reps[I]);
  });

  // The compile-contract leg: witnesses no backend can compile still pin
  // the matcher's behavior at their toxic dyn points.
  std::vector<std::string> ParseDetails(ParseOnly.size());
  parallelFor(ParseOnly.size(), PO, [&](size_t I) {
    ParseDetails[I] = parseOnlyVerdict(ParseOnly[I], Opts.Seed);
  });
  for (size_t I = 0; I < ParseOnly.size(); ++I) {
    if (ParseDetails[I].empty())
      continue;
    FuzzFailure F;
    F.ProgramIndex = NumProg + I;
    F.Seed = Opts.Seed;
    F.Detail = ParseDetails[I];
    F.Reproducer = {ParseOnly[I]};
    R.Failures.push_back(std::move(F));
  }

  R.Programs = NumProg;
  for (size_t I = 0; I < NumProg; ++I) {
    R.Statements += Reps[I].Statements;
    R.Live += Reps[I].Live;
    R.Guarded += Reps[I].Guarded;
    R.ExpectedBlocks += Reps[I].ExpectedBlocks;
    if (Details[I].empty())
      continue;
    FuzzFailure F;
    F.ProgramIndex = I;
    F.Seed = programSeed(Opts.Seed, I);
    F.Detail = Details[I];
    F.Reproducer = Opts.Shrink ? shrink(Batches[I], F.Seed) : Batches[I];
    R.Failures.push_back(std::move(F));
  }
  return R;
}
