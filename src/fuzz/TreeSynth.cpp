//===- TreeSynth.cpp - witness sentences to runnable IR programs ----------===//

#include "fuzz/TreeSynth.h"
#include "ir/Linearize.h"
#include "support/Strings.h"

#include <algorithm>
#include <array>

using namespace gg;

namespace {

constexpr int ValueRegs[4] = {8, 9, 10, 11};
constexpr int64_t ValueRegInit[4] = {2, 3, 1, 6};
constexpr int AddrRegs[2] = {6, 7};
/// Every fuzz array spans the same number of bytes, so any (array, offset,
/// element size) combination checks against one bound.
constexpr int ArrSpanBytes = 128;

/// Long constants in these values linearize as the special terminals
/// Zero/One/Two/Four/Eight; generic Const_l bindings must avoid them so a
/// bound tree re-linearizes to the exact witness sentence.
bool isSpecialLongConst(int64_t V) {
  return V == 0 || V == 1 || V == 2 || V == 4 || V == 8;
}

uint64_t xorshift(uint64_t &S) {
  S ^= S << 13;
  S ^= S >> 7;
  S ^= S << 17;
  return S ? S : (S = 0x9E3779B97F4A7C15ull);
}

int elemBytes(Ty T) { return sizeOfTy(T); }

} // namespace

TreeSynth::TreeSynth() {
  auto Add = [&](const std::string &Name, TokSpec S) {
    Specs.push_back(S);
    TokTable.emplace_back(Name, static_cast<int>(Specs.size()) - 1);
  };
  static const Op AllOps[] = {
#define GG_OP(Name, Str, Arity, Flags) Op::Name,
#include "ir/Ops.def"
  };
  static const Ty AllTys[] = {Ty::B, Ty::W, Ty::L};
  for (Op O : AllOps) {
    if (O == Op::Conv || O == Op::CBranch || O == Op::Label)
      continue;
    for (Ty T : AllTys)
      Add(strf("%s_%c", opName(O), suffixChar(T)), {TokSpec::Generic, O, T});
  }
  for (Ty Src : AllTys)
    for (Ty Dst : AllTys) {
      TokSpec S{TokSpec::CvtTok, Op::Conv, Dst};
      S.SrcT = Src;
      Add(strf("Cvt_%c_%c", suffixChar(Src), suffixChar(Dst)), S);
    }
  Add("CBranch", {TokSpec::CBrTok, Op::CBranch, Ty::L});
  Add("Label", {TokSpec::LabTok, Op::Label, Ty::L});
  static const std::pair<const char *, int64_t> Specials[] = {
      {"Zero", 0}, {"One", 1}, {"Two", 2}, {"Four", 4}, {"Eight", 8}};
  for (auto [Name, V] : Specials) {
    TokSpec S{TokSpec::Special, Op::Const, Ty::L};
    S.Val = V;
    Add(Name, S);
  }
  std::sort(TokTable.begin(), TokTable.end());
}

const TreeSynth::TokSpec *TreeSynth::classify(const std::string &Name) const {
  auto It = std::lower_bound(
      TokTable.begin(), TokTable.end(), Name,
      [](const std::pair<std::string, int> &E, const std::string &N) {
        return E.first < N;
      });
  if (It == TokTable.end() || It->first != Name)
    return nullptr;
  return &Specs[It->second];
}

Node *TreeSynth::decodeRec(Program &P, const std::vector<std::string> &Tokens,
                           size_t &Pos, bool AllowPartial, Op ParentOp,
                           int Slot, Ty SlotTy, std::string &Err) {
  NodeArena &A = *P.Arena;
  if (Pos >= Tokens.size()) {
    if (!AllowPartial) {
      Err = "sentence ended with an open operand slot";
      return nullptr;
    }
    // Blocked-witness prefix: fill the open slot with the blandest leaf
    // that keeps the tree well-formed for the interpreter and the PCC
    // fallback (acceptance by the tables is explicitly not wanted here).
    if (ParentOp == Op::CBranch)
      return Slot == 0 ? A.cmp(Cond::EQ, A.con(Ty::L, 3), A.con(Ty::L, 3),
                               Ty::L)
                       : A.label(P.freshLabel());
    if ((ParentOp == Op::PostInc || ParentOp == Op::PreDec) && Slot == 0)
      return A.dreg(ValueRegs[0], Ty::L);
    return A.con(SlotTy, 3);
  }
  const std::string &Name = Tokens[Pos++];
  const TokSpec *S = classify(Name);
  if (!S) {
    Err = strf("unknown terminal '%s'", Name.c_str());
    return nullptr;
  }
  auto Child = [&](Op O, int KidSlot, Ty KidTy) {
    return decodeRec(P, Tokens, Pos, AllowPartial, O, KidSlot, KidTy, Err);
  };
  switch (S->K) {
  case TokSpec::Special:
    return A.con(Ty::L, S->Val);
  case TokSpec::CvtTok: {
    Node *Kid = Child(Op::Conv, 0, S->SrcT);
    return Kid ? A.unary(Op::Conv, S->T, Kid) : nullptr;
  }
  case TokSpec::CBrTok: {
    Node *L = Child(Op::CBranch, 0, Ty::L);
    if (!L)
      return nullptr;
    Node *R = Child(Op::CBranch, 1, Ty::L);
    if (!R)
      return nullptr;
    Node *N = A.make(Op::CBranch, Ty::L);
    N->Kids[0] = L;
    N->Kids[1] = R;
    return N;
  }
  case TokSpec::LabTok:
    return A.label(P.freshLabel());
  case TokSpec::Generic:
    break;
  }
  const Op O = S->O;
  const Ty T = S->T;
  switch (opArity(O)) {
  case 0:
    switch (O) {
    case Op::Const:
      return A.con(T, 3);
    case Op::Name:
      return A.name(T, P.Syms.intern("fz_gl0"));
    case Op::Gaddr:
      return A.gaddr(P.Syms.intern("fz_ll"));
    case Op::Dreg:
      return A.dreg(ValueRegs[0], T);
    default:
      Err = strf("unexpected leaf terminal '%s'", Name.c_str());
      return nullptr;
    }
  case 1: {
    Ty KidTy = (O == Op::Indir) ? Ty::L : T;
    Node *Kid = Child(O, 0, KidTy);
    return Kid ? A.unary(O, T, Kid) : nullptr;
  }
  default: {
    Ty KidTy = (O == Op::PostInc || O == Op::PreDec) ? Ty::L : T;
    Node *L = Child(O, 0, KidTy);
    if (!L)
      return nullptr;
    Node *R = Child(O, 1, KidTy);
    if (!R)
      return nullptr;
    if (O == Op::Cmp)
      return A.cmp(Cond::EQ, L, R, T);
    return A.bin(O, T, L, R);
  }
  }
}

int TreeSynth::pendingAfter(const std::vector<std::string> &Tokens) const {
  int Pending = 1;
  for (const std::string &Name : Tokens) {
    if (Pending <= 0)
      return -1; // tokens continue past a completed tree
    const TokSpec *S = classify(Name);
    if (!S)
      return -1;
    int Arity = 0;
    switch (S->K) {
    case TokSpec::Special:
    case TokSpec::LabTok:
      break;
    case TokSpec::CvtTok:
      Arity = 1;
      break;
    case TokSpec::CBrTok:
      Arity = 2;
      break;
    case TokSpec::Generic:
      Arity = opArity(S->O);
      break;
    }
    Pending += Arity - 1;
  }
  return Pending;
}

Node *TreeSynth::decode(Program &P, const std::vector<std::string> &Tokens,
                        bool AllowPartial, std::string &Err) {
  if (Tokens.empty()) {
    Err = "empty sentence";
    return nullptr;
  }
  size_t Pos = 0;
  Node *Tree =
      decodeRec(P, Tokens, Pos, AllowPartial, Op::LabelDef, 0, Ty::L, Err);
  if (Tree && Pos != Tokens.size()) {
    Err = strf("trailing tokens after a complete tree (%zu of %zu consumed)",
               Pos, Tokens.size());
    return nullptr;
  }
  return Tree;
}

//===----------------------------------------------------------------------===//
// Attribute binding + runtime-safety proof
//===----------------------------------------------------------------------===//

namespace {

/// Abstract runtime value for the safety proof. `Con` is an exact integer
/// (register contents are tracked from their per-statement
/// initializations); `Mem` is a value loaded from memory — unknown but
/// identical under every oracle by the no-address-escapes induction;
/// `Adr` is array base + exact byte offset; everything else is `Poison`.
struct AbsVal {
  enum K { Con, Mem, Adr, Poison } Kind = Poison;
  int64_t V = 0; ///< Con value or Adr byte offset
  int Arr = -1;  ///< Adr: which fuzz array
  static AbsVal con(int64_t V) { return {Con, V, -1}; }
  static AbsVal mem() { return {Mem, 0, -1}; }
  static AbsVal adr(int Arr, int64_t Off) { return {Adr, Off, Arr}; }
  static AbsVal poison() { return {Poison, 0, -1}; }
};

} // namespace

struct TreeSynth::Binder {
  Program &P;
  NodeArena &A;
  uint64_t Rng = 1;

  // Environment symbols.
  std::array<InternedString, 3> Arr; ///< fz_bb, fz_ww, fz_ll
  InternedString Ptr;
  std::array<InternedString, 2> ScalB, ScalW, ScalL;

  // Per-statement results.
  std::vector<int> UsedValue, UsedAddr; ///< registers needing init
  std::vector<Node *> LabelNodes;       ///< statement-local branch targets
  int AddrRegArr[2] = {0, 1};           ///< array index r6/r7 hold
  std::vector<const Node *> BaseMarks;  ///< address-base leaves

  explicit Binder(Program &P) : P(P), A(*P.Arena) {
    Arr = {P.Syms.intern("fz_bb"), P.Syms.intern("fz_ww"),
           P.Syms.intern("fz_ll")};
    Ptr = P.Syms.intern("fz_pl");
    ScalB = {P.Syms.intern("fz_gb0"), P.Syms.intern("fz_gb1")};
    ScalW = {P.Syms.intern("fz_gw0"), P.Syms.intern("fz_gw1")};
    ScalL = {P.Syms.intern("fz_gl0"), P.Syms.intern("fz_gl1")};
  }

  size_t pick(size_t N) { return static_cast<size_t>(xorshift(Rng) % N); }

  bool isBase(const Node *N) const {
    return std::find(BaseMarks.begin(), BaseMarks.end(), N) !=
           BaseMarks.end();
  }

  void useValueReg(int R) {
    if (std::find(UsedValue.begin(), UsedValue.end(), R) == UsedValue.end())
      UsedValue.push_back(R);
  }
  void useAddrReg(int R) {
    if (std::find(UsedAddr.begin(), UsedAddr.end(), R) == UsedAddr.end())
      UsedAddr.push_back(R);
  }

  /// Picks the address-base leaf of an address expression: the first
  /// Dreg/Gaddr/long-Name not inside a Mul (scaled-index factors must stay
  /// small values), falling back to the first such leaf anywhere.
  const Node *pickBase(const Node *N, bool UnderMul) {
    if (!N)
      return nullptr;
    if (N->Opcode == Op::Dreg || N->Opcode == Op::Gaddr ||
        (N->Opcode == Op::Name && sizeClassOf(N->Type) == SizeClass::L)) {
      if (!UnderMul)
        return N;
      return nullptr;
    }
    bool Mul = UnderMul || N->Opcode == Op::Mul;
    for (const Node *Kid : N->Kids)
      if (const Node *B = pickBase(Kid, Mul))
        return B;
    return nullptr;
  }
  const Node *pickBaseAny(const Node *N) {
    if (!N)
      return nullptr;
    if (N->Opcode == Op::Dreg || N->Opcode == Op::Gaddr ||
        (N->Opcode == Op::Name && sizeClassOf(N->Type) == SizeClass::L))
      return N;
    for (const Node *Kid : N->Kids)
      if (const Node *B = pickBaseAny(Kid))
        return B;
    return nullptr;
  }

  enum class Mode { Value, Lval, Addr };

  void bind(Node *N, Mode M) {
    if (!N)
      return;
    switch (N->Opcode) {
    case Op::Const:
      if (sizeClassOf(N->Type) == SizeClass::L &&
          isSpecialLongConst(N->Value)) {
        // A special terminal (Zero/One/Two/Four/Eight): value is the
        // terminal's identity, never rebind.
        return;
      }
      if (M == Mode::Addr && sizeClassOf(N->Type) != SizeClass::L) {
        N->Value = static_cast<int64_t>(pick(7)); // small offsets, >= 0
      } else if (M == Mode::Addr) {
        // Long offsets must dodge the special-constant values, or the
        // bound tree linearizes to Zero/One/... instead of Const_l.
        static const int64_t OffPool[] = {3, 5, 6};
        N->Value = OffPool[pick(3)];
      } else {
        static const int64_t Pool[] = {3, 5, 6, 7};
        N->Value = Pool[pick(4)];
      }
      return;
    case Op::Name:
      if (M == Mode::Addr && sizeClassOf(N->Type) == SizeClass::L) {
        N->Sym = Ptr; // pointer global: holds an array base at runtime
        return;
      }
      switch (sizeClassOf(N->Type)) {
      case SizeClass::B:
        N->Sym = ScalB[pick(2)];
        return;
      case SizeClass::W:
        N->Sym = ScalW[pick(2)];
        return;
      case SizeClass::L:
        N->Sym = ScalL[pick(2)];
        return;
      }
      return;
    case Op::Gaddr:
      N->Sym = Arr[pick(3)];
      return;
    case Op::Dreg: {
      if (M == Mode::Addr && isBase(N)) {
        int I = static_cast<int>(pick(2));
        N->Reg = AddrRegs[I];
        useAddrReg(N->Reg);
        return;
      }
      size_t I = pick(4);
      N->Reg = ValueRegs[I];
      useValueReg(N->Reg);
      return;
    }
    case Op::Label:
      N->Sym = P.freshLabel();
      LabelNodes.push_back(N);
      return;
    case Op::Indir: {
      // Entering an address context: designate the base leaf first so
      // the recursive walk binds it as a base and everything else small.
      if (const Node *B = pickBase(N->Kids[0], false))
        BaseMarks.push_back(B);
      else if (const Node *B2 = pickBaseAny(N->Kids[0]))
        BaseMarks.push_back(B2);
      bind(N->Kids[0], Mode::Addr);
      return;
    }
    case Op::Assign:
      bind(N->Kids[0], Mode::Lval);
      bind(N->Kids[1], Mode::Value);
      return;
    case Op::AssignR:
      bind(N->Kids[0], Mode::Value);
      bind(N->Kids[1], Mode::Lval);
      return;
    case Op::Cmp: {
      static const Cond Pool[] = {Cond::EQ,  Cond::NE,  Cond::LT,
                                  Cond::GE,  Cond::LE,  Cond::GT};
      N->CC = Pool[pick(6)];
      bind(N->Kids[0], Mode::Value);
      bind(N->Kids[1], Mode::Value);
      return;
    }
    case Op::CBranch:
      bind(N->Kids[0], Mode::Value);
      bind(N->Kids[1], Mode::Value);
      return;
    case Op::PostInc:
    case Op::PreDec:
      // In an address context the target register is the designated base;
      // in value position it is an ordinary lvalue.
      bind(N->Kids[0], M == Mode::Addr ? Mode::Addr : Mode::Lval);
      bind(N->Kids[1], Mode::Value);
      return;
    default:
      // Arithmetic/conversions: an address context propagates so a deep
      // base leaf still binds as a base; everything else is a value.
      for (Node *Kid : N->Kids)
        bind(Kid, M == Mode::Addr ? Mode::Addr : Mode::Value);
      return;
    }
  }

  //===--- safety proof ----------------------------------------------------
  bool Unsafe = false;
  std::array<AbsVal, 16> Reg;
  AbsVal PtrVal;

  void resetAbs() {
    Unsafe = false;
    for (AbsVal &V : Reg)
      V = AbsVal::poison();
    for (size_t I = 0; I < 4; ++I)
      Reg[ValueRegs[I]] = AbsVal::con(ValueRegInit[I]);
    for (size_t I = 0; I < 2; ++I)
      Reg[AddrRegs[I]] = AbsVal::adr(AddrRegArr[I], 0);
    PtrVal = AbsVal::adr(2, 0); // fz_pl -> fz_ll, re-established per function
  }

  int arrIndexOf(InternedString Sym) const {
    for (int I = 0; I < 3; ++I)
      if (Arr[I] == Sym)
        return I;
    return -1;
  }

  bool inBounds(const AbsVal &Addr, int Bytes) const {
    return Addr.Kind == AbsVal::Adr && Addr.Arr >= 0 && Addr.V >= 0 &&
           Addr.V + Bytes <= ArrSpanBytes;
  }

  static AbsVal addVals(const AbsVal &L, const AbsVal &R) {
    if (L.Kind == AbsVal::Con && R.Kind == AbsVal::Con)
      return AbsVal::con(static_cast<int64_t>(static_cast<uint64_t>(L.V) +
                                              static_cast<uint64_t>(R.V)));
    if (L.Kind == AbsVal::Adr && R.Kind == AbsVal::Con)
      return AbsVal::adr(L.Arr, L.V + R.V);
    if (L.Kind == AbsVal::Con && R.Kind == AbsVal::Adr)
      return AbsVal::adr(R.Arr, R.V + L.V);
    if ((L.Kind == AbsVal::Con || L.Kind == AbsVal::Mem) &&
        (R.Kind == AbsVal::Con || R.Kind == AbsVal::Mem))
      return AbsVal::mem();
    return AbsVal::poison();
  }

  static AbsVal subVals(const AbsVal &L, const AbsVal &R) {
    if (L.Kind == AbsVal::Con && R.Kind == AbsVal::Con)
      return AbsVal::con(static_cast<int64_t>(static_cast<uint64_t>(L.V) -
                                              static_cast<uint64_t>(R.V)));
    if (L.Kind == AbsVal::Adr && R.Kind == AbsVal::Con)
      return AbsVal::adr(L.Arr, L.V - R.V);
    if ((L.Kind == AbsVal::Con || L.Kind == AbsVal::Mem) &&
        (R.Kind == AbsVal::Con || R.Kind == AbsVal::Mem))
      return AbsVal::mem();
    return AbsVal::poison();
  }

  static AbsVal mixVals(const AbsVal &L, const AbsVal &R, int64_t ConResult) {
    if (L.Kind == AbsVal::Con && R.Kind == AbsVal::Con)
      return AbsVal::con(ConResult);
    if ((L.Kind == AbsVal::Con || L.Kind == AbsVal::Mem) &&
        (R.Kind == AbsVal::Con || R.Kind == AbsVal::Mem))
      return AbsVal::mem();
    return AbsVal::poison();
  }

  /// Abstract location for lvalue writes.
  struct AbsLoc {
    enum K { RegLoc, PtrLoc, ScalarLoc, MemLoc, Bad } Kind = Bad;
    int Reg = -1;
  };

  AbsLoc evalLoc(const Node *N) {
    AbsLoc Loc;
    switch (N->Opcode) {
    case Op::Dreg:
      Loc.Kind = AbsLoc::RegLoc;
      Loc.Reg = N->Reg;
      return Loc;
    case Op::Name:
      Loc.Kind = (N->Sym == Ptr) ? AbsLoc::PtrLoc : AbsLoc::ScalarLoc;
      return Loc;
    case Op::Indir: {
      AbsVal Addr = evalAbs(N->Kids[0]);
      if (!inBounds(Addr, elemBytes(N->Type)))
        Unsafe = true;
      Loc.Kind = AbsLoc::MemLoc;
      return Loc;
    }
    default:
      Unsafe = true;
      return Loc;
    }
  }

  void writeLoc(const AbsLoc &Loc, const AbsVal &V) {
    const bool Plain = V.Kind == AbsVal::Con || V.Kind == AbsVal::Mem;
    switch (Loc.Kind) {
    case AbsLoc::RegLoc:
      Reg[Loc.Reg] = V;
      if (!Plain && V.Kind != AbsVal::Adr)
        Unsafe = true;
      // Address values may live in registers (that is what base registers
      // are); they must just never escape to memory or comparisons.
      return;
    case AbsLoc::PtrLoc:
      PtrVal = V;
      if (!Plain && V.Kind != AbsVal::Adr)
        Unsafe = true;
      return;
    case AbsLoc::ScalarLoc:
    case AbsLoc::MemLoc:
      if (!Plain)
        Unsafe = true; // no addresses in data memory: loads stay `Mem`
      return;
    case AbsLoc::Bad:
      return;
    }
  }

  AbsVal readLoc(const Node *N, const AbsLoc &Loc) {
    switch (Loc.Kind) {
    case AbsLoc::RegLoc:
      return Reg[Loc.Reg];
    case AbsLoc::PtrLoc:
      return PtrVal;
    case AbsLoc::ScalarLoc:
    case AbsLoc::MemLoc:
      return AbsVal::mem();
    case AbsLoc::Bad:
      break;
    }
    (void)N;
    return AbsVal::poison();
  }

  AbsVal evalAbs(const Node *N) {
    if (!N)
      return AbsVal::poison();
    const Ty T = N->Type;
    switch (N->Opcode) {
    case Op::Const:
      return AbsVal::con(N->Value);
    case Op::Name:
      if (N->Sym == Ptr)
        return PtrVal;
      return AbsVal::mem();
    case Op::Gaddr: {
      int I = arrIndexOf(N->Sym);
      return I >= 0 ? AbsVal::adr(I, 0) : AbsVal::poison();
    }
    case Op::Dreg:
      return Reg[N->Reg];
    case Op::Label:
      return AbsVal::con(0);
    case Op::Indir: {
      AbsVal Addr = evalAbs(N->Kids[0]);
      if (!inBounds(Addr, elemBytes(T)))
        Unsafe = true;
      return AbsVal::mem();
    }
    case Op::Conv: {
      AbsVal V = evalAbs(N->Kids[0]);
      if (V.Kind == AbsVal::Con)
        return AbsVal::con(truncateToTy(V.V, T));
      return V.Kind == AbsVal::Mem ? AbsVal::mem() : AbsVal::poison();
    }
    case Op::Neg:
    case Op::Com: {
      AbsVal V = evalAbs(N->Kids[0]);
      if (V.Kind == AbsVal::Con)
        return AbsVal::con(N->Opcode == Op::Neg
                               ? -static_cast<int64_t>(
                                     static_cast<uint64_t>(V.V))
                               : ~V.V);
      return V.Kind == AbsVal::Mem ? AbsVal::mem() : AbsVal::poison();
    }
    case Op::Plus:
      return addVals(evalAbs(N->Kids[0]), evalAbs(N->Kids[1]));
    case Op::Minus:
      return subVals(evalAbs(N->Kids[0]), evalAbs(N->Kids[1]));
    case Op::MinusR:
      return subVals(evalAbs(N->Kids[1]), evalAbs(N->Kids[0]));
    case Op::Mul:
    case Op::And:
    case Op::Or:
    case Op::Xor: {
      AbsVal L = evalAbs(N->Kids[0]), R = evalAbs(N->Kids[1]);
      int64_t C = 0;
      if (L.Kind == AbsVal::Con && R.Kind == AbsVal::Con) {
        uint64_t A2 = static_cast<uint64_t>(L.V),
                 B2 = static_cast<uint64_t>(R.V);
        switch (N->Opcode) {
        case Op::Mul:
          C = static_cast<int64_t>(A2 * B2);
          break;
        case Op::And:
          C = static_cast<int64_t>(A2 & B2);
          break;
        case Op::Or:
          C = static_cast<int64_t>(A2 | B2);
          break;
        default:
          C = static_cast<int64_t>(A2 ^ B2);
          break;
        }
      }
      return mixVals(L, R, C);
    }
    case Op::Div:
    case Op::Mod:
    case Op::DivR:
    case Op::ModR: {
      const bool Rev = N->Opcode == Op::DivR || N->Opcode == Op::ModR;
      AbsVal Num = evalAbs(N->Kids[Rev ? 1 : 0]);
      AbsVal Den = evalAbs(N->Kids[Rev ? 0 : 1]);
      if (Den.Kind != AbsVal::Con || Den.V == 0 || Den.V == -1)
        Unsafe = true; // -1 guards INT_MIN/-1; constants here are small
      int64_t C = 0;
      if (Num.Kind == AbsVal::Con && Den.Kind == AbsVal::Con && Den.V != 0 &&
          Den.V != -1)
        C = (N->Opcode == Op::Div || N->Opcode == Op::DivR) ? Num.V / Den.V
                                                            : Num.V % Den.V;
      return mixVals(Num, Den, C);
    }
    case Op::Lsh:
    case Op::Rsh:
    case Op::LshR:
    case Op::RshR: {
      const bool Rev = N->Opcode == Op::LshR || N->Opcode == Op::RshR;
      AbsVal Val = evalAbs(N->Kids[Rev ? 1 : 0]);
      AbsVal Amt = evalAbs(N->Kids[Rev ? 0 : 1]);
      if (Amt.Kind != AbsVal::Con || Amt.V < 0 || Amt.V > 7)
        Unsafe = true;
      int64_t C = 0;
      if (Val.Kind == AbsVal::Con && Amt.Kind == AbsVal::Con && Amt.V >= 0 &&
          Amt.V <= 7)
        C = (N->Opcode == Op::Lsh || N->Opcode == Op::LshR)
                ? static_cast<int64_t>(static_cast<uint64_t>(Val.V) << Amt.V)
                : (Val.V >> Amt.V);
      return mixVals(Val, Amt, C);
    }
    case Op::Cmp: {
      AbsVal L = evalAbs(N->Kids[0]), R = evalAbs(N->Kids[1]);
      const bool PlainL = L.Kind == AbsVal::Con || L.Kind == AbsVal::Mem;
      const bool PlainR = R.Kind == AbsVal::Con || R.Kind == AbsVal::Mem;
      if (!PlainL || !PlainR)
        Unsafe = true; // address comparisons diverge across oracles
      return AbsVal::mem();
    }
    case Op::Assign: {
      AbsVal V = evalAbs(N->Kids[1]);
      AbsLoc Loc = evalLoc(N->Kids[0]);
      writeLoc(Loc, V);
      return V;
    }
    case Op::AssignR: {
      AbsVal V = evalAbs(N->Kids[0]);
      AbsLoc Loc = evalLoc(N->Kids[1]);
      writeLoc(Loc, V);
      return V;
    }
    case Op::PostInc:
    case Op::PreDec: {
      AbsLoc Loc = evalLoc(N->Kids[0]);
      AbsVal Old = readLoc(N->Kids[0], Loc);
      AbsVal Delta = evalAbs(N->Kids[1]);
      AbsVal New = N->Opcode == Op::PostInc ? addVals(Old, Delta)
                                            : subVals(Old, Delta);
      writeLoc(Loc, New);
      return N->Opcode == Op::PostInc ? Old : New;
    }
    case Op::CBranch:
      evalAbs(N->Kids[0]);
      return AbsVal::con(0);
    case Op::Push:
    case Op::Ret: {
      AbsVal V = evalAbs(N->Kids[0]);
      if (V.Kind != AbsVal::Con && V.Kind != AbsVal::Mem)
        Unsafe = true;
      return V;
    }
    default:
      Unsafe = true;
      return AbsVal::poison();
    }
  }

  /// Binds one statement; returns true when the safety proof succeeded
  /// (the statement may run live, unguarded).
  bool bindStatement(Node *Stmt, uint64_t Seed, size_t StmtIdx) {
    Rng = Seed ^ (0x9E3779B97F4A7C15ull * (StmtIdx + 1));
    if (!Rng)
      Rng = 1;
    UsedValue.clear();
    UsedAddr.clear();
    LabelNodes.clear();
    BaseMarks.clear();
    AddrRegArr[0] = static_cast<int>(StmtIdx % 3);
    AddrRegArr[1] = static_cast<int>((StmtIdx + 1) % 3);
    bind(Stmt, Mode::Value);
    std::sort(UsedValue.begin(), UsedValue.end());
    std::sort(UsedAddr.begin(), UsedAddr.end());
    resetAbs();
    evalAbs(Stmt);
    return !Unsafe;
  }
};

//===----------------------------------------------------------------------===//
// Program assembly
//===----------------------------------------------------------------------===//

namespace {

/// Push + CallStmt pair calling the print builtin with one long argument
/// (the post-phase-1 call shape all backends expect).
void emitPrint(Program &P, std::vector<Node *> &Body, Node *Val) {
  NodeArena &A = *P.Arena;
  Body.push_back(A.unary(Op::Push, Ty::L, Val));
  Node *Call = A.bin(Op::Call, Ty::L, A.gaddr(P.Syms.intern("print")),
                     nullptr);
  Call->Value = 1;
  Node *CS = A.make(Op::CallStmt, Ty::L);
  CS->Kids[0] = nullptr;
  CS->Kids[1] = Call;
  Body.push_back(CS);
}

/// Widens a byte/word rvalue to long for printing.
Node *widened(NodeArena &A, Node *V) {
  if (sizeClassOf(V->Type) == SizeClass::L)
    return V;
  return A.unary(Op::Conv, Ty::L, V);
}

} // namespace

bool TreeSynth::buildProgram(const std::vector<SynthStmt> &Stmts,
                             uint64_t Seed, Program &Out, SynthReport &R,
                             std::string &Err) {
  NodeArena &A = *Out.Arena;
  Binder B(Out);

  // Globals: three arrays with one shared span, a pointer cell, and two
  // scalars per width. Small cyclic init values keep every derived
  // quantity far from overflow and shift-range trouble.
  auto AddArray = [&](InternedString Sym, Ty ElemTy) {
    GlobalVar G;
    G.Name = Sym;
    G.ElemTy = ElemTy;
    G.Count = ArrSpanBytes / elemBytes(ElemTy);
    for (int I = 0; I < G.Count; ++I)
      G.Init.push_back((I % 8) + 1);
    Out.Globals.push_back(std::move(G));
  };
  AddArray(B.Arr[0], Ty::B);
  AddArray(B.Arr[1], Ty::W);
  AddArray(B.Arr[2], Ty::L);
  auto AddScalar = [&](InternedString Sym, Ty T, int64_t Init) {
    GlobalVar G;
    G.Name = Sym;
    G.ElemTy = T;
    G.Count = 1;
    G.Init.push_back(Init);
    Out.Globals.push_back(std::move(G));
  };
  AddScalar(B.Ptr, Ty::L, 0);
  AddScalar(B.ScalB[0], Ty::B, 3);
  AddScalar(B.ScalB[1], Ty::B, 5);
  AddScalar(B.ScalW[0], Ty::W, 7);
  AddScalar(B.ScalW[1], Ty::W, 9);
  AddScalar(B.ScalL[0], Ty::L, 11);
  AddScalar(B.ScalL[1], Ty::L, 13);

  constexpr size_t StmtsPerFunction = 20;
  const size_t NumFns =
      Stmts.empty() ? 0 : (Stmts.size() + StmtsPerFunction - 1) /
                              StmtsPerFunction;
  size_t Global = 0;
  std::vector<InternedString> FnNames;
  for (size_t FI = 0; FI < NumFns; ++FI) {
    Function F;
    F.Name = Out.Syms.intern(strf("fz_f%zu", FI));
    FnNames.push_back(F.Name);
    F.RegVars = {6, 7, 8, 9, 10, 11};
    std::vector<Node *> &Body = F.Body;

    // The pointer global must hold a real array base before any def_Y
    // addressing runs; Binder::resetAbs assumes fz_ll.
    Body.push_back(A.bin(Op::Assign, Ty::L, A.name(Ty::L, B.Ptr),
                         A.gaddr(B.Arr[2])));

    const size_t End =
        std::min(Stmts.size(), (FI + 1) * StmtsPerFunction);
    for (; Global < End; ++Global) {
      const SynthStmt &S = Stmts[Global];
      Node *Tree = decode(Out, S.Tokens, S.ExpectBlocked, Err);
      if (!Tree)
        return false;
      const bool Safe = B.bindStatement(Tree, Seed, Global);

      // Re-linearization must reproduce the witness sentence exactly —
      // the compile-time coverage the sentence was derived for depends
      // on it. (Blocked witnesses gain filler tokens at the tail.)
      std::vector<LinToken> Lin = linearize(Tree);
      const size_t CheckLen = S.Tokens.size();
      bool LinOk = Lin.size() >= CheckLen &&
                   (S.ExpectBlocked || Lin.size() == CheckLen);
      for (size_t I = 0; LinOk && I < CheckLen; ++I)
        LinOk = Lin[I].Term == S.Tokens[I];
      if (!LinOk) {
        std::string Want, Got;
        for (const std::string &T : S.Tokens)
          Want += T + " ";
        for (const LinToken &L : Lin)
          Got += L.Term + " ";
        Err = strf("bound tree re-linearizes differently from its witness "
                   "sentence (statement %zu)\n  witness: %s\n  bound:   %s",
                   Global, Want.c_str(), Got.c_str());
        return false;
      }

      // Register initialization precedes the statement (and its guard):
      // bases first, then the tracked value registers.
      for (int Reg : B.UsedAddr) {
        int ArrIdx = Reg == AddrRegs[0] ? B.AddrRegArr[0] : B.AddrRegArr[1];
        Body.push_back(A.bin(Op::Assign, Ty::L, A.dreg(Reg, Ty::L),
                             A.gaddr(B.Arr[ArrIdx])));
      }
      for (int Reg : B.UsedValue) {
        int64_t Init = 0;
        for (size_t I = 0; I < 4; ++I)
          if (ValueRegs[I] == Reg)
            Init = ValueRegInit[I];
        Body.push_back(A.bin(Op::Assign, Ty::L, A.dreg(Reg, Ty::L),
                             A.con(Ty::L, Init)));
      }

      ++R.Statements;
      if (S.ExpectBlocked)
        ++R.ExpectedBlocks;
      if (Safe && !S.ExpectBlocked) {
        ++R.Live;
        Body.push_back(Tree);
        for (Node *L : B.LabelNodes)
          Body.push_back(A.labelDef(L->Sym));
        for (int Reg : B.UsedValue)
          emitPrint(Out, Body, A.dreg(Reg, Ty::L));
      } else {
        // Guard: an always-taken forward branch. The statement still
        // compiles — coverage is recorded at match time — but never runs.
        ++R.Guarded;
        InternedString Skip = Out.freshLabel();
        Body.push_back(A.make(Op::CBranch, Ty::L));
        Body.back()->Kids[0] =
            A.cmp(Cond::EQ, A.con(Ty::L, 1), A.con(Ty::L, 1), Ty::L);
        Body.back()->Kids[1] = A.label(Skip);
        Body.push_back(Tree);
        for (Node *L : B.LabelNodes)
          Body.push_back(A.labelDef(L->Sym));
        Body.push_back(A.labelDef(Skip));
      }
    }

    // Global-state dump: scalars, then the head cell of each array.
    emitPrint(Out, Body, widened(A, A.name(Ty::B, B.ScalB[0])));
    emitPrint(Out, Body, widened(A, A.name(Ty::B, B.ScalB[1])));
    emitPrint(Out, Body, widened(A, A.name(Ty::W, B.ScalW[0])));
    emitPrint(Out, Body, widened(A, A.name(Ty::W, B.ScalW[1])));
    emitPrint(Out, Body, A.name(Ty::L, B.ScalL[0]));
    emitPrint(Out, Body, A.name(Ty::L, B.ScalL[1]));
    emitPrint(Out, Body,
              widened(A, A.unary(Op::Indir, Ty::B, A.gaddr(B.Arr[0]))));
    emitPrint(Out, Body,
              widened(A, A.unary(Op::Indir, Ty::W, A.gaddr(B.Arr[1]))));
    emitPrint(Out, Body, A.unary(Op::Indir, Ty::L, A.gaddr(B.Arr[2])));
    Body.push_back(A.unary(Op::Ret, Ty::L, A.con(Ty::L, 0)));
    Out.Functions.push_back(std::move(F));
  }

  Function Main;
  Main.Name = Out.Syms.intern("main");
  for (InternedString Fn : FnNames) {
    Node *Call = A.bin(Op::Call, Ty::L, A.gaddr(Fn), nullptr);
    Call->Value = 0;
    Node *CS = A.make(Op::CallStmt, Ty::L);
    CS->Kids[0] = nullptr;
    CS->Kids[1] = Call;
    Main.Body.push_back(CS);
  }
  Main.Body.push_back(A.unary(Op::Ret, Ty::L, A.con(Ty::L, 0)));
  Out.Functions.push_back(std::move(Main));
  return true;
}
