//===- LRTables.h - parser table representation -----------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parse tables driving the instruction pattern matcher: an action
/// table (shift / reduce / accept / error) indexed by state and terminal,
/// and a goto table indexed by state and non-terminal. Reduce/reduce
/// conflicts among equally long rules are resolved *dynamically* by the
/// matcher using semantic attributes (paper section 3.2); the candidate
/// lists live in DynChoices.
///
//===----------------------------------------------------------------------===//

#ifndef GG_TABLEGEN_LRTABLES_H
#define GG_TABLEGEN_LRTABLES_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace gg {

enum class ActionType : uint8_t { Error, Shift, Reduce, Accept };

/// One action-table entry. Target is the destination state for Shift and
/// the production id for Reduce.
struct Action {
  ActionType Kind = ActionType::Error;
  int32_t Target = 0;

  bool isError() const { return Kind == ActionType::Error; }
};

/// Dense parse tables for a frozen grammar.
struct LRTables {
  int NumStates = 0;
  int NumTerms = 0;
  int NumNonterms = 0;
  std::vector<Action> Actions; ///< NumStates x NumTerms, row major
  std::vector<int32_t> Gotos;  ///< NumStates x NumNonterms; -1 = error
  /// (state, termIndex) -> additional reduce candidates when the static
  /// tie could not be broken; the matcher chooses among [chosen]+these
  /// using semantic attributes.
  std::unordered_map<uint64_t, std::vector<int>> DynChoices;

  static uint64_t dynKey(int State, int TermIdx) {
    return (static_cast<uint64_t>(State) << 32) |
           static_cast<uint32_t>(TermIdx);
  }

  const Action &actionAt(int State, int TermIdx) const {
    assert(State >= 0 && State < NumStates && TermIdx >= 0 &&
           TermIdx < NumTerms);
    return Actions[static_cast<size_t>(State) * NumTerms + TermIdx];
  }

  Action &actionAt(int State, int TermIdx) {
    return Actions[static_cast<size_t>(State) * NumTerms + TermIdx];
  }

  int32_t gotoAt(int State, int NtIdx) const {
    assert(State >= 0 && State < NumStates && NtIdx >= 0 &&
           NtIdx < NumNonterms);
    return Gotos[static_cast<size_t>(State) * NumNonterms + NtIdx];
  }

  const std::vector<int> *dynChoicesAt(int State, int TermIdx) const {
    auto It = DynChoices.find(dynKey(State, TermIdx));
    return It == DynChoices.end() ? nullptr : &It->second;
  }

  /// Unpacked table footprint in bytes (experiments E1/E4/E9).
  size_t memoryBytes() const {
    return Actions.size() * sizeof(Action) + Gotos.size() * sizeof(int32_t);
  }
};

} // namespace gg

#endif // GG_TABLEGEN_LRTABLES_H
