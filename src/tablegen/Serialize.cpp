//===- Serialize.cpp - parse table serialization --------------------------------===//

#include "tablegen/Serialize.h"
#include "support/Strings.h"

using namespace gg;

namespace {
constexpr const char *Magic = "ggtables";
constexpr int Version = 2;

uint64_t hashCombine(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  return H;
}

uint64_t hashString(uint64_t H, const std::string &S) {
  for (char C : S)
    H = hashCombine(H, static_cast<uint8_t>(C));
  return H;
}

/// Checksum over the exact body bytes (everything after the three header
/// lines). Verified before any structural parsing, so a corrupt file is a
/// single clear diagnostic instead of whichever range check it trips.
uint64_t bodyChecksum(std::string_view Body) {
  uint64_t H = 0xC0DE;
  for (char C : Body)
    H = hashCombine(H, static_cast<uint8_t>(C));
  return H;
}

/// Reads the next '\n'-terminated line of \p Text starting at \p Off,
/// advancing \p Off past the newline. Returns false at end of text.
bool nextLine(const std::string &Text, size_t &Off, std::string_view &Line) {
  if (Off >= Text.size())
    return false;
  size_t End = Text.find('\n', Off);
  if (End == std::string::npos) {
    Line = std::string_view(Text).substr(Off);
    Off = Text.size();
  } else {
    Line = std::string_view(Text).substr(Off, End - Off);
    Off = End + 1;
  }
  return true;
}
} // namespace

uint64_t gg::grammarFingerprint(const Grammar &G) {
  uint64_t H = 0xA11CE;
  for (SymId S = 0; S < static_cast<SymId>(G.numSymbols()); ++S)
    H = hashString(H, G.symbolName(S));
  for (const Production &P : G.productions()) {
    H = hashCombine(H, static_cast<uint64_t>(P.Lhs));
    for (SymId S : P.Rhs)
      H = hashCombine(H, static_cast<uint64_t>(S));
    H = hashCombine(H, static_cast<uint64_t>(P.Kind));
    H = hashString(H, P.SemTag);
  }
  H = hashCombine(H, static_cast<uint64_t>(G.start()));
  return H;
}

std::string gg::serializeTables(const Grammar &G, const LRTables &T) {
  std::string Body;
  Body += strf("dims %d %d %d\n", T.NumStates, T.NumTerms, T.NumNonterms);

  // Sparse action rows: "a <state> <term>:<kind>:<target> ...".
  for (int S = 0; S < T.NumStates; ++S) {
    std::string Row;
    for (int TI = 0; TI < T.NumTerms; ++TI) {
      const Action &A = T.actionAt(S, TI);
      if (A.Kind == ActionType::Error)
        continue;
      Row += strf(" %d:%d:%d", TI, static_cast<int>(A.Kind), A.Target);
    }
    if (!Row.empty())
      Body += strf("a %d%s\n", S, Row.c_str());
  }
  for (int S = 0; S < T.NumStates; ++S) {
    std::string Row;
    for (int NI = 0; NI < T.NumNonterms; ++NI) {
      int32_t Dst = T.gotoAt(S, NI);
      if (Dst < 0)
        continue;
      Row += strf(" %d:%d", NI, Dst);
    }
    if (!Row.empty())
      Body += strf("g %d%s\n", S, Row.c_str());
  }
  for (const auto &[Key, Prods] : T.DynChoices) {
    Body += strf("d %d %d", static_cast<int>(Key >> 32),
                 static_cast<int>(Key & 0xffffffff));
    for (int P : Prods)
      Body += strf(" %d", P);
    Body += '\n';
  }
  Body += "end\n";

  std::string Out;
  Out += strf("%s %d\n", Magic, Version);
  Out += strf("fingerprint %llx\n",
              (unsigned long long)grammarFingerprint(G));
  Out += strf("checksum %llx %zu\n", (unsigned long long)bodyChecksum(Body),
              Body.size());
  Out += Body;
  return Out;
}

size_t gg::tableBodyOffset(const std::string &Text) {
  // The body starts after the three header lines (magic, fingerprint,
  // checksum).
  size_t Off = 0;
  for (int I = 0; I < 3; ++I) {
    Off = Text.find('\n', Off);
    if (Off == std::string::npos)
      return std::string::npos;
    ++Off;
  }
  return Off;
}

bool gg::deserializeTables(const std::string &Text, const Grammar &G,
                           LRTables &T, DiagnosticSink &Diags) {
  T = LRTables();

  // Strict three-line header: magic+version, fingerprint, checksum. The
  // checksum is verified over the exact remaining bytes BEFORE any
  // structural parsing, so corruption anywhere in the body is one clear
  // diagnostic rather than whichever range check it happens to trip.
  size_t Off = 0;
  std::string_view Line;
  if (!nextLine(Text, Off, Line) || splitWhitespace(Line).size() != 2 ||
      splitWhitespace(Line)[0] != Magic ||
      parseInt(splitWhitespace(Line)[1]).value_or(-1) != Version) {
    Diags.error("not a ggtables file (bad magic or version)", 1);
    return false;
  }
  if (!nextLine(Text, Off, Line)) {
    Diags.error("truncated table file (missing fingerprint line)", 2);
    return false;
  }
  {
    std::vector<std::string_view> Tok = splitWhitespace(Line);
    if (Tok.size() != 2 || Tok[0] != "fingerprint") {
      Diags.error("malformed fingerprint line", 2);
      return false;
    }
    if (strf("%llx", (unsigned long long)grammarFingerprint(G)) !=
        std::string(Tok[1])) {
      Diags.error("table file does not match this grammar "
                  "(fingerprint mismatch): rebuild the tables",
                  2);
      return false;
    }
  }
  if (!nextLine(Text, Off, Line)) {
    Diags.error("truncated table file (missing checksum line)", 3);
    return false;
  }
  {
    std::vector<std::string_view> Tok = splitWhitespace(Line);
    if (Tok.size() != 3 || Tok[0] != "checksum") {
      Diags.error("malformed checksum line", 3);
      return false;
    }
    std::string_view Body = std::string_view(Text).substr(Off);
    int64_t Len = parseInt(Tok[2]).value_or(-1);
    if (Len < 0 || static_cast<size_t>(Len) != Body.size()) {
      Diags.error(strf("checksum: body is %zu bytes but the header "
                       "declares %lld (truncated table file?)",
                       Body.size(), (long long)Len),
                  3);
      return false;
    }
    if (strf("%llx", (unsigned long long)bodyChecksum(Body)) !=
        std::string(Tok[1])) {
      Diags.error("checksum mismatch: table file is corrupt", 3);
      return false;
    }
  }

  int LineNo = 3;
  bool SawDims = false, SawEnd = false;
  while (nextLine(Text, Off, Line)) {
    ++LineNo;
    Line = trim(Line);
    if (Line.empty())
      continue;
    std::vector<std::string_view> Tok = splitWhitespace(Line);

    if (Tok[0] == "dims") {
      if (Tok.size() != 4) {
        Diags.error("malformed dims line", LineNo);
        return false;
      }
      T.NumStates = static_cast<int>(parseInt(Tok[1]).value_or(0));
      T.NumTerms = static_cast<int>(parseInt(Tok[2]).value_or(0));
      T.NumNonterms = static_cast<int>(parseInt(Tok[3]).value_or(0));
      if (T.NumStates <= 0 ||
          T.NumTerms != static_cast<int>(G.numTerminals()) ||
          T.NumNonterms != static_cast<int>(G.numNonterminals())) {
        Diags.error("table dimensions do not match the grammar", LineNo);
        return false;
      }
      T.Actions.assign(static_cast<size_t>(T.NumStates) * T.NumTerms,
                       Action());
      T.Gotos.assign(static_cast<size_t>(T.NumStates) * T.NumNonterms, -1);
      SawDims = true;
      continue;
    }
    if (!SawDims) {
      Diags.error("table entries before dims", LineNo);
      return false;
    }
    if (Tok[0] == "a" || Tok[0] == "g") {
      if (Tok.size() < 2) {
        Diags.error("malformed row", LineNo);
        return false;
      }
      int S = static_cast<int>(parseInt(Tok[1]).value_or(-1));
      if (S < 0 || S >= T.NumStates) {
        Diags.error("state out of range", LineNo);
        return false;
      }
      for (size_t I = 2; I < Tok.size(); ++I) {
        std::vector<std::string_view> Parts = splitString(Tok[I], ':');
        if (Tok[0] == "a") {
          if (Parts.size() != 3) {
            Diags.error("malformed action entry", LineNo);
            return false;
          }
          int TI = static_cast<int>(parseInt(Parts[0]).value_or(-1));
          int Kind = static_cast<int>(parseInt(Parts[1]).value_or(-1));
          int Target = static_cast<int>(parseInt(Parts[2]).value_or(-1));
          if (TI < 0 || TI >= T.NumTerms || Kind < 0 || Kind > 3) {
            Diags.error("action entry out of range", LineNo);
            return false;
          }
          // Targets are bounds-checked per kind: a shift must name a real
          // state and a reduce a real production, or the matcher would
          // index out of the tables it trusts.
          auto K = static_cast<ActionType>(Kind);
          if (K == ActionType::Shift && (Target < 0 || Target >= T.NumStates)) {
            Diags.error(strf("shift target %d out of range (%d states)",
                             Target, T.NumStates),
                        LineNo);
            return false;
          }
          if (K == ActionType::Reduce &&
              (Target < 0 ||
               Target >= static_cast<int>(G.numProductions()))) {
            Diags.error(strf("reduce target %d out of range "
                             "(%zu productions)",
                             Target, G.numProductions()),
                        LineNo);
            return false;
          }
          T.actionAt(S, TI) = {K, Target};
        } else {
          if (Parts.size() != 2) {
            Diags.error("malformed goto entry", LineNo);
            return false;
          }
          int NI = static_cast<int>(parseInt(Parts[0]).value_or(-1));
          int Dst = static_cast<int>(parseInt(Parts[1]).value_or(-1));
          if (NI < 0 || NI >= T.NumNonterms || Dst < 0 ||
              Dst >= T.NumStates) {
            Diags.error("goto entry out of range", LineNo);
            return false;
          }
          T.Gotos[static_cast<size_t>(S) * T.NumNonterms + NI] = Dst;
        }
      }
      continue;
    }
    if (Tok[0] == "d") {
      if (Tok.size() < 4) {
        Diags.error("malformed dynamic-choice line", LineNo);
        return false;
      }
      int S = static_cast<int>(parseInt(Tok[1]).value_or(-1));
      int TI = static_cast<int>(parseInt(Tok[2]).value_or(-1));
      if (S < 0 || S >= T.NumStates || TI < 0 || TI >= T.NumTerms) {
        Diags.error("dynamic-choice state/terminal out of range", LineNo);
        return false;
      }
      std::vector<int> Prods;
      for (size_t I = 3; I < Tok.size(); ++I) {
        int P = static_cast<int>(parseInt(Tok[I]).value_or(-1));
        if (P < 0 || P >= static_cast<int>(G.numProductions())) {
          Diags.error(strf("dynamic-choice production %d out of range "
                           "(%zu productions)",
                           P, G.numProductions()),
                      LineNo);
          return false;
        }
        Prods.push_back(P);
      }
      T.DynChoices[LRTables::dynKey(S, TI)] = std::move(Prods);
      continue;
    }
    if (Tok[0] == "end") {
      SawEnd = true;
      continue;
    }
    Diags.error(strf("unrecognized line '%s'",
                     std::string(Tok[0]).c_str()),
                LineNo);
    return false;
  }
  if (!SawEnd) {
    Diags.error("truncated table file (missing end marker)");
    return false;
  }
  return true;
}
