//===- Serialize.cpp - parse table serialization --------------------------------===//

#include "tablegen/Serialize.h"
#include "support/Strings.h"

using namespace gg;

namespace {
constexpr const char *Magic = "ggtables";
constexpr int Version = 1;

uint64_t hashCombine(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  return H;
}

uint64_t hashString(uint64_t H, const std::string &S) {
  for (char C : S)
    H = hashCombine(H, static_cast<uint8_t>(C));
  return H;
}
} // namespace

uint64_t gg::grammarFingerprint(const Grammar &G) {
  uint64_t H = 0xA11CE;
  for (SymId S = 0; S < static_cast<SymId>(G.numSymbols()); ++S)
    H = hashString(H, G.symbolName(S));
  for (const Production &P : G.productions()) {
    H = hashCombine(H, static_cast<uint64_t>(P.Lhs));
    for (SymId S : P.Rhs)
      H = hashCombine(H, static_cast<uint64_t>(S));
    H = hashCombine(H, static_cast<uint64_t>(P.Kind));
    H = hashString(H, P.SemTag);
  }
  H = hashCombine(H, static_cast<uint64_t>(G.start()));
  return H;
}

std::string gg::serializeTables(const Grammar &G, const LRTables &T) {
  std::string Out;
  Out += strf("%s %d\n", Magic, Version);
  Out += strf("fingerprint %llx\n",
              (unsigned long long)grammarFingerprint(G));
  Out += strf("dims %d %d %d\n", T.NumStates, T.NumTerms, T.NumNonterms);

  // Sparse action rows: "a <state> <term>:<kind>:<target> ...".
  for (int S = 0; S < T.NumStates; ++S) {
    std::string Row;
    for (int TI = 0; TI < T.NumTerms; ++TI) {
      const Action &A = T.actionAt(S, TI);
      if (A.Kind == ActionType::Error)
        continue;
      Row += strf(" %d:%d:%d", TI, static_cast<int>(A.Kind), A.Target);
    }
    if (!Row.empty())
      Out += strf("a %d%s\n", S, Row.c_str());
  }
  for (int S = 0; S < T.NumStates; ++S) {
    std::string Row;
    for (int NI = 0; NI < T.NumNonterms; ++NI) {
      int32_t Dst = T.gotoAt(S, NI);
      if (Dst < 0)
        continue;
      Row += strf(" %d:%d", NI, Dst);
    }
    if (!Row.empty())
      Out += strf("g %d%s\n", S, Row.c_str());
  }
  for (const auto &[Key, Prods] : T.DynChoices) {
    Out += strf("d %d %d", static_cast<int>(Key >> 32),
                static_cast<int>(Key & 0xffffffff));
    for (int P : Prods)
      Out += strf(" %d", P);
    Out += '\n';
  }
  Out += "end\n";
  return Out;
}

bool gg::deserializeTables(const std::string &Text, const Grammar &G,
                           LRTables &T, DiagnosticSink &Diags) {
  T = LRTables();
  int LineNo = 0;
  bool SawHeader = false, SawDims = false, SawEnd = false;
  for (std::string_view Line : splitString(Text, '\n')) {
    ++LineNo;
    Line = trim(Line);
    if (Line.empty())
      continue;
    std::vector<std::string_view> Tok = splitWhitespace(Line);

    if (!SawHeader) {
      if (Tok.size() != 2 || Tok[0] != Magic ||
          parseInt(Tok[1]).value_or(-1) != Version) {
        Diags.error("not a ggtables file (bad magic or version)", LineNo);
        return false;
      }
      SawHeader = true;
      continue;
    }
    if (Tok[0] == "fingerprint") {
      if (Tok.size() != 2 ||
          strf("%llx", (unsigned long long)grammarFingerprint(G)) !=
              std::string(Tok[1])) {
        Diags.error("table file does not match this grammar "
                    "(fingerprint mismatch): rebuild the tables",
                    LineNo);
        return false;
      }
      continue;
    }
    if (Tok[0] == "dims") {
      if (Tok.size() != 4) {
        Diags.error("malformed dims line", LineNo);
        return false;
      }
      T.NumStates = static_cast<int>(parseInt(Tok[1]).value_or(0));
      T.NumTerms = static_cast<int>(parseInt(Tok[2]).value_or(0));
      T.NumNonterms = static_cast<int>(parseInt(Tok[3]).value_or(0));
      if (T.NumStates <= 0 ||
          T.NumTerms != static_cast<int>(G.numTerminals()) ||
          T.NumNonterms != static_cast<int>(G.numNonterminals())) {
        Diags.error("table dimensions do not match the grammar", LineNo);
        return false;
      }
      T.Actions.assign(static_cast<size_t>(T.NumStates) * T.NumTerms,
                       Action());
      T.Gotos.assign(static_cast<size_t>(T.NumStates) * T.NumNonterms, -1);
      SawDims = true;
      continue;
    }
    if (!SawDims) {
      Diags.error("table entries before dims", LineNo);
      return false;
    }
    if (Tok[0] == "a" || Tok[0] == "g") {
      if (Tok.size() < 2) {
        Diags.error("malformed row", LineNo);
        return false;
      }
      int S = static_cast<int>(parseInt(Tok[1]).value_or(-1));
      if (S < 0 || S >= T.NumStates) {
        Diags.error("state out of range", LineNo);
        return false;
      }
      for (size_t I = 2; I < Tok.size(); ++I) {
        std::vector<std::string_view> Parts = splitString(Tok[I], ':');
        if (Tok[0] == "a") {
          if (Parts.size() != 3) {
            Diags.error("malformed action entry", LineNo);
            return false;
          }
          int TI = static_cast<int>(parseInt(Parts[0]).value_or(-1));
          int Kind = static_cast<int>(parseInt(Parts[1]).value_or(-1));
          int Target = static_cast<int>(parseInt(Parts[2]).value_or(-1));
          if (TI < 0 || TI >= T.NumTerms || Kind < 0 || Kind > 3) {
            Diags.error("action entry out of range", LineNo);
            return false;
          }
          T.actionAt(S, TI) = {static_cast<ActionType>(Kind), Target};
        } else {
          if (Parts.size() != 2) {
            Diags.error("malformed goto entry", LineNo);
            return false;
          }
          int NI = static_cast<int>(parseInt(Parts[0]).value_or(-1));
          int Dst = static_cast<int>(parseInt(Parts[1]).value_or(-1));
          if (NI < 0 || NI >= T.NumNonterms || Dst < 0 ||
              Dst >= T.NumStates) {
            Diags.error("goto entry out of range", LineNo);
            return false;
          }
          T.Gotos[static_cast<size_t>(S) * T.NumNonterms + NI] = Dst;
        }
      }
      continue;
    }
    if (Tok[0] == "d") {
      if (Tok.size() < 4) {
        Diags.error("malformed dynamic-choice line", LineNo);
        return false;
      }
      int S = static_cast<int>(parseInt(Tok[1]).value_or(-1));
      int TI = static_cast<int>(parseInt(Tok[2]).value_or(-1));
      std::vector<int> Prods;
      for (size_t I = 3; I < Tok.size(); ++I)
        Prods.push_back(static_cast<int>(parseInt(Tok[I]).value_or(-1)));
      T.DynChoices[LRTables::dynKey(S, TI)] = std::move(Prods);
      continue;
    }
    if (Tok[0] == "end") {
      SawEnd = true;
      continue;
    }
    Diags.error(strf("unrecognized line '%s'",
                     std::string(Tok[0]).c_str()),
                LineNo);
    return false;
  }
  if (!SawEnd) {
    Diags.error("truncated table file (missing end marker)");
    return false;
  }
  return true;
}
