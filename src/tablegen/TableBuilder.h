//===- TableBuilder.h - SLR(1) table construction ---------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The table constructor (paper section 3.2): an SLR(1)-style generator
/// that disambiguates the highly ambiguous machine grammar by favoring a
/// shift in shift/reduce conflicts and the longest rule in reduce/reduce
/// conflicts (maximal munch). It detects chain-rule loops and reports
/// potential syntactic blocks (resolved in the description by hand-written
/// bridge productions, §6.2.2).
///
/// Two construction algorithms are provided behind BuildOptions::Optimized.
/// They produce identical tables; the naive one mirrors the original CGGWS
/// implementation whose runs "took over two memory-intensive hours", the
/// optimized one the authors' improved algorithms ("now takes ten
/// minutes") — experiment E4.
///
//===----------------------------------------------------------------------===//

#ifndef GG_TABLEGEN_TABLEBUILDER_H
#define GG_TABLEGEN_TABLEBUILDER_H

#include "mdl/Grammar.h"
#include "tablegen/LRTables.h"

#include <functional>
#include <string>
#include <vector>

namespace gg {

/// Options controlling table construction.
struct BuildOptions {
  /// Use hashed state lookup, indexed closures and bitset FIRST/FOLLOW.
  bool Optimized = true;
  /// Resolve shift/reduce conflicts toward shift (maximal munch). The
  /// paper's generator always does; turning it off exists for ablation.
  bool PreferShift = true;
  /// Classifies terminals for the syntactic-block check; terminals mapped
  /// to 0 are exempt. Two terminals with the same non-zero category are
  /// assumed interchangeable in well-formed input (uniform replacement).
  std::function<uint32_t(std::string_view)> TerminalCategory;
};

/// A resolved shift/reduce conflict (informational).
struct ShiftReduceConflict {
  int State = 0;
  SymId Term = -1;
  int ReduceProd = -1;
  bool ResolvedToShift = true;
};

/// A resolved reduce/reduce conflict (informational).
struct ReduceReduceConflict {
  int State = 0;
  SymId Term = -1;
  std::vector<int> Prods; ///< all candidates
  int Chosen = -1;
  bool Dynamic = false; ///< tie among longest rules: decided at match time
};

/// A cycle of chain productions (would loop the matcher; fatal).
struct ChainLoop {
  std::vector<SymId> Cycle; ///< non-terminals forming the cycle
};

/// A potential syntactic block: terminal Term has an error action in
/// State although a same-category terminal is viable there.
struct PotentialBlock {
  int State = 0;
  SymId Term = -1;
  SymId Witness = -1; ///< the same-category terminal that is viable
};

/// Everything the table constructor produces.
struct BuildResult {
  bool Ok = false;
  std::string Error;
  LRTables Tables;
  /// Per-state accessing symbol: the grammar symbol whose transition
  /// created the state (every state except 0 has exactly one). Lets
  /// reports name a bare state number — "state 17 (after Plus_l)" — when
  /// listing never-visited states; -1 for the start state.
  std::vector<SymId> StateAccessSym;
  std::vector<ShiftReduceConflict> SRConflicts;
  std::vector<ReduceReduceConflict> RRConflicts;
  std::vector<ChainLoop> ChainLoops;
  std::vector<PotentialBlock> Blocks;
  size_t NumItemSets = 0; ///< == Tables.NumStates
  size_t TotalItems = 0;  ///< sum of closure sizes over all states
  double Seconds = 0;     ///< wall-clock construction time
};

/// Builds SLR(1) tables for \p G (which must be frozen and validated).
BuildResult buildTables(const Grammar &G, const BuildOptions &Opts = {});

/// Renders a human-readable conflict/diagnostic report (used by the
/// describe_machine workstation tool).
std::string renderBuildReport(const Grammar &G, const BuildResult &R);

} // namespace gg

#endif // GG_TABLEGEN_TABLEBUILDER_H
