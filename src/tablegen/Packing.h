//===- Packing.h - packed parse tables --------------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compressed parse tables. Rows are deduplicated and stored sparsely as a
/// default action plus sorted exceptions. The pattern matcher runs off
/// this representation — the paper notes its code generator spends much of
/// its time "manipulating and unpacking the description tables", and the
/// binary-search lookup here reproduces that cost profile honestly.
///
//===----------------------------------------------------------------------===//

#ifndef GG_TABLEGEN_PACKING_H
#define GG_TABLEGEN_PACKING_H

#include "tablegen/LRTables.h"

#include <cstddef>
#include <vector>

namespace gg {

/// One deduplicated sparse action row.
struct PackedActionRow {
  Action Default;
  std::vector<std::pair<int32_t, Action>> Except; ///< sorted by terminal
};

/// One deduplicated sparse goto row.
struct PackedGotoRow {
  std::vector<std::pair<int32_t, int32_t>> Entries; ///< sorted by nonterm
};

/// Compressed tables with the same lookup interface as LRTables.
class PackedTables {
public:
  /// Builds packed tables from dense ones. The dense tables may be
  /// discarded afterwards except for DynChoices, which we copy.
  static PackedTables pack(const LRTables &T);

  Action actionAt(int State, int TermIdx) const;
  int32_t gotoAt(int State, int NtIdx) const;
  const std::vector<int> *dynChoicesAt(int State, int TermIdx) const {
    auto It = DynChoices.find(LRTables::dynKey(State, TermIdx));
    return It == DynChoices.end() ? nullptr : &It->second;
  }

  int numStates() const { return NumStates; }
  int numTerms() const { return NumTerms; }
  int numNonterms() const { return NumNonterms; }
  /// Dynamic-tie points carried over from the constructor (the coverage
  /// profiler's denominator for dynamic-tie utilization).
  size_t numDynPoints() const { return DynChoices.size(); }
  size_t numActionRows() const { return ActionRows.size(); }
  size_t numGotoRows() const { return GotoRows.size(); }

  /// Approximate footprint in bytes (experiments E1/E9).
  size_t memoryBytes() const;

private:
  int NumStates = 0, NumTerms = 0, NumNonterms = 0;
  std::vector<int32_t> ActionRowOf, GotoRowOf; ///< per state
  std::vector<PackedActionRow> ActionRows;
  std::vector<PackedGotoRow> GotoRows;
  std::unordered_map<uint64_t, std::vector<int>> DynChoices;
};

} // namespace gg

#endif // GG_TABLEGEN_PACKING_H
