//===- TableBuilder.cpp - SLR(1) table construction ------------------------===//

#include "tablegen/TableBuilder.h"
#include "support/Stats.h"
#include "support/Strings.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

using namespace gg;

namespace {

/// An LR(0) item packed as (production id << 8) | dot position.
/// The augmented production S' -> start gets id == numProductions.
using Item = uint32_t;

inline Item makeItem(int Prod, int Dot) {
  return (static_cast<uint32_t>(Prod) << 8) | static_cast<uint32_t>(Dot);
}
inline int itemProd(Item I) { return static_cast<int>(I >> 8); }
inline int itemDot(Item I) { return static_cast<int>(I & 0xff); }

struct KernelHash {
  size_t operator()(const std::vector<Item> &Kernel) const {
    size_t H = 0xcbf29ce484222325ull;
    for (Item I : Kernel) {
      H ^= I;
      H *= 0x100000001b3ull;
    }
    return H;
  }
};

class BuilderImpl {
public:
  BuilderImpl(const Grammar &G, const BuildOptions &Opts) : G(G), Opts(Opts) {
    AugProd = static_cast<int>(G.numProductions());
    NumTerms = static_cast<int>(G.numTerminals());
    NumNonterms = static_cast<int>(G.numNonterminals());
    Words = (static_cast<size_t>(NumTerms) + 63) / 64;
  }

  BuildResult build() {
    BuildResult R;
    Timer T;
    T.start();

    if (G.start() < 0) {
      R.Error = "grammar has no start symbol";
      return R;
    }
    assert(G.isFrozen() && "grammar must be frozen before table build");

    findChainLoops(R);
    if (!R.ChainLoops.empty()) {
      R.Error = strf("grammar contains %zu chain-production loop(s); the "
                     "pattern matcher would reduce cyclically",
                     R.ChainLoops.size());
      return R;
    }

    if (Opts.Optimized) {
      computeFirstFollowFast();
    } else {
      computeFirstFollowNaive();
    }
    buildStates();
    fillTables(R);
    detectBlocks(R);

    // Accessing symbol per state (for naming states in coverage reports):
    // the symbol of the transition that created it. findOrAddState never
    // returns an existing state for a new symbol path to state 0, and
    // every other state has exactly one accessing symbol in an LR
    // automaton, so first-write-wins is exact, not approximate.
    R.StateAccessSym.assign(States.size(), -1);
    for (size_t S = 0; S < Transitions.size(); ++S)
      for (const auto &[Sym, Dst] : Transitions[S])
        if (R.StateAccessSym[Dst] == -1)
          R.StateAccessSym[Dst] = Sym;

    R.NumItemSets = States.size();
    for (const std::vector<Item> &C : Closures)
      R.TotalItems += C.size();
    T.stop();
    R.Seconds = T.seconds();
    R.Ok = true;
    recordStats(R);
    return R;
  }

private:
  const Grammar &G;
  const BuildOptions &Opts;
  int AugProd = 0;
  int NumTerms = 0, NumNonterms = 0;
  size_t Words = 0;

  // States: kernels, closures and transitions.
  std::vector<std::vector<Item>> States;   // kernels (sorted)
  std::vector<std::vector<Item>> Closures; // full closures (sorted)
  std::vector<std::map<SymId, int>> Transitions;
  std::unordered_map<std::vector<Item>, int, KernelHash> StateIndex;
  std::vector<std::vector<Item>> NaiveClosures; ///< naive mode only

  // FOLLOW sets as terminal-index bitsets, one per non-terminal.
  std::vector<uint64_t> FollowBits;

  int rhsLen(int Prod) const {
    return Prod == AugProd ? 1 : static_cast<int>(G.prod(Prod).Rhs.size());
  }
  SymId rhsAt(int Prod, int I) const {
    return Prod == AugProd ? G.start() : G.prod(Prod).Rhs[I];
  }
  SymId lhsOf(int Prod) const {
    return Prod == AugProd ? -1 : G.prod(Prod).Lhs;
  }

  bool followHas(SymId Nt, int TermIdx) const {
    size_t Base = static_cast<size_t>(G.ntIndex(Nt)) * Words;
    return FollowBits[Base + TermIdx / 64] >> (TermIdx % 64) & 1;
  }

  //===--------------------------------------------------------------------===
  // FIRST / FOLLOW
  //
  // Machine grammars have no empty right-hand sides (validated), which
  // simplifies both computations: FIRST never contains epsilon and FOLLOW
  // propagation only happens from the last RHS symbol.
  //===--------------------------------------------------------------------===

  void computeFirstFollowFast() {
    std::vector<uint64_t> FirstBits(
        static_cast<size_t>(NumNonterms) * Words, 0);
    auto FirstWord = [&](SymId Nt) {
      return FirstBits.data() + static_cast<size_t>(G.ntIndex(Nt)) * Words;
    };

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const Production &P : G.productions()) {
        uint64_t *Dst = FirstWord(P.Lhs);
        SymId S0 = P.Rhs[0];
        if (G.isTerminal(S0)) {
          int TI = G.termIndex(S0);
          uint64_t Old = Dst[TI / 64];
          Dst[TI / 64] |= 1ull << (TI % 64);
          Changed |= Dst[TI / 64] != Old;
        } else {
          const uint64_t *Src = FirstWord(S0);
          for (size_t W = 0; W < Words; ++W) {
            uint64_t Old = Dst[W];
            Dst[W] |= Src[W];
            Changed |= Dst[W] != Old;
          }
        }
      }
    }

    FollowBits.assign(static_cast<size_t>(NumNonterms) * Words, 0);
    auto FollowWord = [&](SymId Nt) {
      return FollowBits.data() + static_cast<size_t>(G.ntIndex(Nt)) * Words;
    };
    {
      int EofIdx = G.termIndex(G.eofSymbol());
      FollowWord(G.start())[EofIdx / 64] |= 1ull << (EofIdx % 64);
    }
    Changed = true;
    while (Changed) {
      Changed = false;
      for (const Production &P : G.productions()) {
        for (size_t I = 0, E = P.Rhs.size(); I != E; ++I) {
          SymId B = P.Rhs[I];
          if (G.isTerminal(B))
            continue;
          uint64_t *Dst = FollowWord(B);
          if (I + 1 < E) {
            SymId Next = P.Rhs[I + 1];
            if (G.isTerminal(Next)) {
              int TI = G.termIndex(Next);
              uint64_t Old = Dst[TI / 64];
              Dst[TI / 64] |= 1ull << (TI % 64);
              Changed |= Dst[TI / 64] != Old;
            } else {
              const uint64_t *Src = FirstWord(Next);
              for (size_t W = 0; W < Words; ++W) {
                uint64_t Old = Dst[W];
                Dst[W] |= Src[W];
                Changed |= Dst[W] != Old;
              }
            }
          } else {
            const uint64_t *Src = FollowWord(P.Lhs);
            for (size_t W = 0; W < Words; ++W) {
              uint64_t Old = Dst[W];
              Dst[W] |= Src[W];
              Changed |= Dst[W] != Old;
            }
          }
        }
      }
    }
  }

  /// The CGGWS-style computation: ordered std::set per symbol, full
  /// re-scans until fixpoint. Produces the same sets as the fast path.
  void computeFirstFollowNaive() {
    std::vector<std::set<int>> First(NumNonterms), Follow(NumNonterms);
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const Production &P : G.productions()) {
        std::set<int> &Dst = First[G.ntIndex(P.Lhs)];
        size_t Before = Dst.size();
        SymId S0 = P.Rhs[0];
        if (G.isTerminal(S0))
          Dst.insert(G.termIndex(S0));
        else {
          const std::set<int> &Src = First[G.ntIndex(S0)];
          Dst.insert(Src.begin(), Src.end());
        }
        Changed |= Dst.size() != Before;
      }
    }
    Follow[G.ntIndex(G.start())].insert(G.termIndex(G.eofSymbol()));
    Changed = true;
    while (Changed) {
      Changed = false;
      for (const Production &P : G.productions()) {
        for (size_t I = 0, E = P.Rhs.size(); I != E; ++I) {
          SymId B = P.Rhs[I];
          if (G.isTerminal(B))
            continue;
          std::set<int> &Dst = Follow[G.ntIndex(B)];
          size_t Before = Dst.size();
          if (I + 1 < E) {
            SymId Next = P.Rhs[I + 1];
            if (G.isTerminal(Next))
              Dst.insert(G.termIndex(Next));
            else {
              const std::set<int> &Src = First[G.ntIndex(Next)];
              Dst.insert(Src.begin(), Src.end());
            }
          } else {
            const std::set<int> &Src = Follow[G.ntIndex(P.Lhs)];
            Dst.insert(Src.begin(), Src.end());
          }
          Changed |= Dst.size() != Before;
        }
      }
    }
    FollowBits.assign(static_cast<size_t>(NumNonterms) * Words, 0);
    for (int N = 0; N < NumNonterms; ++N)
      for (int TI : Follow[N])
        FollowBits[static_cast<size_t>(N) * Words + TI / 64] |=
            1ull << (TI % 64);
  }

  //===--------------------------------------------------------------------===
  // LR(0) collection
  //===--------------------------------------------------------------------===

  std::vector<Item> closureFast(const std::vector<Item> &Kernel) {
    std::vector<Item> Result(Kernel);
    std::vector<bool> Added(G.numSymbols(), false);
    std::vector<SymId> Work;
    auto Consider = [&](Item I) {
      int P = itemProd(I), D = itemDot(I);
      if (D >= rhsLen(P))
        return;
      SymId S = rhsAt(P, D);
      if (!G.isTerminal(S) && !Added[S]) {
        Added[S] = true;
        Work.push_back(S);
      }
    };
    for (Item I : Kernel)
      Consider(I);
    while (!Work.empty()) {
      SymId Nt = Work.back();
      Work.pop_back();
      for (int P : G.prodsFor(Nt)) {
        Item I = makeItem(P, 0);
        Result.push_back(I);
        Consider(I);
      }
    }
    std::sort(Result.begin(), Result.end());
    Result.erase(std::unique(Result.begin(), Result.end()), Result.end());
    return Result;
  }

  /// Naive closure: repeated passes with linear membership tests.
  std::vector<Item> closureNaive(const std::vector<Item> &Kernel) {
    std::vector<Item> Result(Kernel);
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t I = 0; I < Result.size(); ++I) {
        int P = itemProd(Result[I]), D = itemDot(Result[I]);
        if (D >= rhsLen(P))
          continue;
        SymId S = rhsAt(P, D);
        if (G.isTerminal(S))
          continue;
        for (const Production &Q : G.productions()) {
          if (Q.Lhs != S)
            continue;
          Item New = makeItem(Q.Id, 0);
          if (std::find(Result.begin(), Result.end(), New) == Result.end()) {
            Result.push_back(New);
            Changed = true;
          }
        }
      }
    }
    std::sort(Result.begin(), Result.end());
    return Result;
  }

  int findOrAddState(std::vector<Item> Kernel) {
    std::sort(Kernel.begin(), Kernel.end());
    if (Opts.Optimized) {
      auto It = StateIndex.find(Kernel);
      if (It != StateIndex.end())
        return It->second;
      int Id = static_cast<int>(States.size());
      StateIndex.emplace(Kernel, Id);
      States.push_back(std::move(Kernel));
      return Id;
    }
    // Naive (the CGGWS-era approach): recompute the candidate's full
    // closure and linearly compare it against every existing state's
    // closure — "memory-intensive hours" for a big description.
    std::vector<Item> Closure = closureNaive(Kernel);
    for (size_t I = 0, E = States.size(); I != E; ++I)
      if (NaiveClosures[I] == Closure)
        return static_cast<int>(I);
    States.push_back(std::move(Kernel));
    NaiveClosures.push_back(std::move(Closure));
    return static_cast<int>(States.size()) - 1;
  }

  void buildStates() {
    findOrAddState({makeItem(AugProd, 0)});
    for (size_t S = 0; S < States.size(); ++S) {
      std::vector<Item> Closure = Opts.Optimized ? closureFast(States[S])
                                                 : closureNaive(States[S]);
      // Group post-dot symbols; std::map keeps symbol order deterministic
      // so both algorithms number states identically.
      std::map<SymId, std::vector<Item>> Next;
      for (Item I : Closure) {
        int P = itemProd(I), D = itemDot(I);
        if (D < rhsLen(P))
          Next[rhsAt(P, D)].push_back(makeItem(P, D + 1));
      }
      Closures.push_back(std::move(Closure));
      Transitions.emplace_back();
      for (auto &[Sym, Kernel] : Next)
        Transitions[S][Sym] = findOrAddState(std::move(Kernel));
    }
  }

  //===--------------------------------------------------------------------===
  // Action/goto fill with the paper's conflict resolution
  //===--------------------------------------------------------------------===

  void fillTables(BuildResult &R) {
    LRTables &T = R.Tables;
    T.NumStates = static_cast<int>(States.size());
    T.NumTerms = NumTerms;
    T.NumNonterms = NumNonterms;
    T.Actions.assign(static_cast<size_t>(T.NumStates) * NumTerms, Action());
    T.Gotos.assign(static_cast<size_t>(T.NumStates) * NumNonterms, -1);

    std::vector<std::vector<int>> Reduces(NumTerms);
    for (int S = 0; S < T.NumStates; ++S) {
      for (auto &V : Reduces)
        V.clear();
      bool Accepts = false;

      for (Item I : Closures[S]) {
        int P = itemProd(I), D = itemDot(I);
        if (D != rhsLen(P))
          continue;
        if (P == AugProd) {
          Accepts = true;
          continue;
        }
        SymId Lhs = lhsOf(P);
        for (int TI = 0; TI < NumTerms; ++TI)
          if (followHas(Lhs, TI))
            Reduces[TI].push_back(P);
      }

      for (auto &[Sym, Dst] : Transitions[S]) {
        if (G.isTerminal(Sym))
          T.actionAt(S, G.termIndex(Sym)) = {ActionType::Shift, Dst};
        else
          T.Gotos[static_cast<size_t>(S) * NumNonterms + G.ntIndex(Sym)] =
              Dst;
      }

      for (int TI = 0; TI < NumTerms; ++TI) {
        std::vector<int> &Cands = Reduces[TI];
        if (Cands.empty())
          continue;
        Action &A = T.actionAt(S, TI);
        if (A.Kind == ActionType::Shift) {
          // Shift/reduce: maximal munch prefers the shift (§3.2).
          for (int P : Cands)
            R.SRConflicts.push_back(
                {S, G.terminals()[TI], P, Opts.PreferShift});
          if (Opts.PreferShift)
            continue;
          // Ablation mode: fall through and reduce instead.
        }
        // Reduce/reduce: prefer the longest rule; ties are resolved
        // dynamically by semantic attributes.
        std::sort(Cands.begin(), Cands.end(), [&](int A2, int B2) {
          if (rhsLen(A2) != rhsLen(B2))
            return rhsLen(A2) > rhsLen(B2);
          return A2 < B2;
        });
        int Chosen = Cands[0];
        std::vector<int> Ties;
        for (size_t I = 1; I < Cands.size(); ++I)
          if (rhsLen(Cands[I]) == rhsLen(Chosen))
            Ties.push_back(Cands[I]);
        if (Cands.size() > 1) {
          ReduceReduceConflict C;
          C.State = S;
          C.Term = G.terminals()[TI];
          C.Prods = Cands;
          C.Chosen = Chosen;
          C.Dynamic = !Ties.empty();
          R.RRConflicts.push_back(std::move(C));
        }
        A = {ActionType::Reduce, Chosen};
        if (!Ties.empty())
          T.DynChoices[LRTables::dynKey(S, TI)] = std::move(Ties);
      }

      if (Accepts) {
        int EofIdx = G.termIndex(G.eofSymbol());
        T.actionAt(S, EofIdx) = {ActionType::Accept, 0};
      }
    }
  }

  //===--------------------------------------------------------------------===
  // Diagnostics: chain loops and syntactic blocks
  //===--------------------------------------------------------------------===

  void findChainLoops(BuildResult &R) {
    // Edges A -> B for chain productions A <- B.
    std::vector<std::vector<SymId>> Edges(G.numSymbols());
    for (const Production &P : G.productions())
      if (P.Rhs.size() == 1 && !G.isTerminal(P.Rhs[0]))
        Edges[P.Lhs].push_back(P.Rhs[0]);

    enum Color : uint8_t { White, Grey, Black };
    std::vector<Color> Colors(G.numSymbols(), White);
    std::vector<SymId> Path;

    // Iterative DFS with an explicit stack to find one witness cycle per
    // grey-edge discovery.
    std::function<void(SymId)> Visit = [&](SymId S) {
      Colors[S] = Grey;
      Path.push_back(S);
      for (SymId N : Edges[S]) {
        if (Colors[N] == Grey) {
          ChainLoop Loop;
          auto It = std::find(Path.begin(), Path.end(), N);
          Loop.Cycle.assign(It, Path.end());
          R.ChainLoops.push_back(std::move(Loop));
        } else if (Colors[N] == White) {
          Visit(N);
        }
      }
      Path.pop_back();
      Colors[S] = Black;
    };
    for (SymId S = 0; S < static_cast<SymId>(G.numSymbols()); ++S)
      if (!G.isTerminal(S) && Colors[S] == White)
        Visit(S);
  }

  /// Publishes the construction's outcome to the stats registry so the
  /// --stats-json surface sees the table-constructor side of the story
  /// (state counts, conflicts resolved by the maximal-munch policy,
  /// chain-loop detections) alongside the runtime phases.
  void recordStats(const BuildResult &R) const {
    StatsRegistry &S = stats();
    S.counter("tablegen.builds") += 1;
    S.counter("tablegen.states") += R.NumItemSets;
    S.counter("tablegen.items") += R.TotalItems;
    S.counter("tablegen.conflicts.shift_reduce") += R.SRConflicts.size();
    S.counter("tablegen.conflicts.reduce_reduce") += R.RRConflicts.size();
    S.counter("tablegen.conflicts.reduce_reduce_dynamic") +=
        static_cast<uint64_t>(std::count_if(
            R.RRConflicts.begin(), R.RRConflicts.end(),
            [](const ReduceReduceConflict &C) { return C.Dynamic; }));
    S.counter("tablegen.chain_loops") += R.ChainLoops.size();
    S.counter("tablegen.blocks") += R.Blocks.size();
    S.value("tablegen.seconds") += R.Seconds;
  }

  void detectBlocks(BuildResult &R) {
    if (!Opts.TerminalCategory)
      return;
    // Precompute categories per terminal index.
    std::vector<uint32_t> Cat(NumTerms, 0);
    for (int TI = 0; TI < NumTerms; ++TI)
      Cat[TI] = Opts.TerminalCategory(G.symbolName(G.terminals()[TI]));

    const LRTables &T = R.Tables;
    for (int S = 0; S < T.NumStates; ++S) {
      for (int TI = 0; TI < NumTerms; ++TI) {
        if (Cat[TI] == 0 || !T.actionAt(S, TI).isError())
          continue;
        for (int TJ = 0; TJ < NumTerms; ++TJ) {
          if (TJ == TI || Cat[TJ] != Cat[TI] ||
              T.actionAt(S, TJ).isError())
            continue;
          R.Blocks.push_back(
              {S, G.terminals()[TI], G.terminals()[TJ]});
          break;
        }
      }
    }
  }
};

} // namespace

BuildResult gg::buildTables(const Grammar &G, const BuildOptions &Opts) {
  TraceSpan Span("tablegen.build");
  BuilderImpl Impl(G, Opts);
  BuildResult R = Impl.build();
  Span.arg("states", static_cast<int64_t>(R.NumItemSets));
  Span.arg("sr_conflicts", static_cast<int64_t>(R.SRConflicts.size()));
  Span.arg("rr_conflicts", static_cast<int64_t>(R.RRConflicts.size()));
  return R;
}

std::string gg::renderBuildReport(const Grammar &G, const BuildResult &R) {
  std::string Out;
  Out += strf("states: %d, items: %zu, build time: %.3fs\n",
              R.Tables.NumStates, R.TotalItems, R.Seconds);
  Out += strf("shift/reduce conflicts resolved: %zu\n", R.SRConflicts.size());
  Out += strf("reduce/reduce conflicts resolved: %zu (%zu dynamic)\n",
              R.RRConflicts.size(),
              static_cast<size_t>(std::count_if(
                  R.RRConflicts.begin(), R.RRConflicts.end(),
                  [](const ReduceReduceConflict &C) { return C.Dynamic; })));
  if (!R.ChainLoops.empty()) {
    Out += strf("chain-production loops: %zu\n", R.ChainLoops.size());
    for (const ChainLoop &L : R.ChainLoops) {
      Out += "  loop:";
      for (SymId S : L.Cycle)
        Out += strf(" %s", G.symbolName(S).c_str());
      Out += '\n';
    }
  }
  Out += strf("potential syntactic blocks: %zu\n", R.Blocks.size());
  size_t Shown = 0;
  for (const PotentialBlock &B : R.Blocks) {
    if (++Shown > 20) {
      Out += strf("  ... and %zu more\n", R.Blocks.size() - 20);
      break;
    }
    Out += strf("  state %d: '%s' blocks although '%s' is viable\n", B.State,
                G.symbolName(B.Term).c_str(), G.symbolName(B.Witness).c_str());
  }
  return Out;
}
