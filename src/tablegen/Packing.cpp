//===- Packing.cpp - packed parse tables -----------------------------------===//

#include "tablegen/Packing.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <algorithm>
#include <map>

using namespace gg;

namespace {
bool actionEq(const Action &A, const Action &B) {
  return A.Kind == B.Kind && A.Target == B.Target;
}
} // namespace

PackedTables PackedTables::pack(const LRTables &T) {
  TraceSpan Span("tablegen.pack");
  PackedTables P;
  P.NumStates = T.NumStates;
  P.NumTerms = T.NumTerms;
  P.NumNonterms = T.NumNonterms;
  P.DynChoices = T.DynChoices;

  // Deduplicate action rows keyed by their full contents.
  std::map<std::vector<std::pair<uint8_t, int32_t>>, int32_t> ActionKey;
  for (int S = 0; S < T.NumStates; ++S) {
    std::vector<std::pair<uint8_t, int32_t>> Key(T.NumTerms);
    for (int TI = 0; TI < T.NumTerms; ++TI) {
      const Action &A = T.actionAt(S, TI);
      Key[TI] = {static_cast<uint8_t>(A.Kind), A.Target};
    }
    auto [It, Inserted] =
        ActionKey.emplace(Key, static_cast<int32_t>(P.ActionRows.size()));
    if (Inserted) {
      // Pick the most frequent action as the row default.
      std::map<std::pair<uint8_t, int32_t>, int> Freq;
      for (auto &E : Key)
        ++Freq[E];
      std::pair<uint8_t, int32_t> Best = Key[0];
      int BestN = -1;
      for (auto &[Val, N] : Freq)
        if (N > BestN) {
          BestN = N;
          Best = Val;
        }
      PackedActionRow Row;
      Row.Default = {static_cast<ActionType>(Best.first), Best.second};
      for (int TI = 0; TI < T.NumTerms; ++TI) {
        Action A{static_cast<ActionType>(Key[TI].first), Key[TI].second};
        if (!actionEq(A, Row.Default))
          Row.Except.emplace_back(TI, A);
      }
      P.ActionRows.push_back(std::move(Row));
    }
    P.ActionRowOf.push_back(It->second);
  }

  std::map<std::vector<int32_t>, int32_t> GotoKey;
  for (int S = 0; S < T.NumStates; ++S) {
    std::vector<int32_t> Key(T.NumNonterms);
    for (int NI = 0; NI < T.NumNonterms; ++NI)
      Key[NI] = T.gotoAt(S, NI);
    auto [It, Inserted] =
        GotoKey.emplace(Key, static_cast<int32_t>(P.GotoRows.size()));
    if (Inserted) {
      PackedGotoRow Row;
      for (int NI = 0; NI < T.NumNonterms; ++NI)
        if (Key[NI] >= 0)
          Row.Entries.emplace_back(NI, Key[NI]);
      P.GotoRows.push_back(std::move(Row));
    }
    P.GotoRowOf.push_back(It->second);
  }

  StatsRegistry &S = stats();
  S.counter("tablegen.packed.action_rows") += P.ActionRows.size();
  S.counter("tablegen.packed.goto_rows") += P.GotoRows.size();
  S.counter("tablegen.packed.bytes") += P.memoryBytes();
  Span.arg("bytes", static_cast<int64_t>(P.memoryBytes()));
  Span.arg("action_rows", static_cast<int64_t>(P.ActionRows.size()));
  return P;
}

Action PackedTables::actionAt(int State, int TermIdx) const {
  const PackedActionRow &Row = ActionRows[ActionRowOf[State]];
  auto It = std::lower_bound(
      Row.Except.begin(), Row.Except.end(), TermIdx,
      [](const std::pair<int32_t, Action> &E, int V) { return E.first < V; });
  if (It != Row.Except.end() && It->first == TermIdx)
    return It->second;
  return Row.Default;
}

int32_t PackedTables::gotoAt(int State, int NtIdx) const {
  const PackedGotoRow &Row = GotoRows[GotoRowOf[State]];
  auto It = std::lower_bound(
      Row.Entries.begin(), Row.Entries.end(), NtIdx,
      [](const std::pair<int32_t, int32_t> &E, int V) {
        return E.first < V;
      });
  if (It != Row.Entries.end() && It->first == NtIdx)
    return It->second;
  return -1;
}

size_t PackedTables::memoryBytes() const {
  size_t Bytes = ActionRowOf.size() * sizeof(int32_t) +
                 GotoRowOf.size() * sizeof(int32_t);
  for (const PackedActionRow &Row : ActionRows)
    Bytes += sizeof(Action) +
             Row.Except.size() * (sizeof(int32_t) + sizeof(Action));
  for (const PackedGotoRow &Row : GotoRows)
    Bytes += Row.Entries.size() * 2 * sizeof(int32_t);
  return Bytes;
}
