//===- Serialize.h - parse table serialization ------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table files: the CGGWS built tables once per target machine and wrote
/// them out for the code generator to load ("the first two parts are
/// static: they are used once for each target machine"). We serialize the
/// dense tables to a line-oriented text format, guarded by a fingerprint
/// of the grammar so stale tables cannot be applied to a changed
/// description — the paper's development loop ("we could only iterate on
/// the grammar once per day") is exactly the workflow this supports.
///
//===----------------------------------------------------------------------===//

#ifndef GG_TABLEGEN_SERIALIZE_H
#define GG_TABLEGEN_SERIALIZE_H

#include "mdl/Grammar.h"
#include "tablegen/LRTables.h"
#include "support/Error.h"

#include <string>

namespace gg {

/// Stable fingerprint of a grammar's productions and symbol names.
uint64_t grammarFingerprint(const Grammar &G);

/// Renders tables as text: a three-line header (magic+version, grammar
/// fingerprint, body checksum+length) followed by the body.
std::string serializeTables(const Grammar &G, const LRTables &T);

/// Offset of the body (the checksummed region) within a serialized table
/// text, i.e. the byte after the third header newline; npos if the text
/// has fewer than three lines. Fault injection uses this to corrupt the
/// body rather than the header.
size_t tableBodyOffset(const std::string &Text);

/// Parses a table file produced by serializeTables. Fails (with
/// diagnostics) on version/fingerprint/checksum mismatch or malformed
/// input; every action/goto/dynamic-choice entry is bounds-checked against
/// the grammar's state, symbol, and production counts before use.
bool deserializeTables(const std::string &Text, const Grammar &G,
                       LRTables &T, DiagnosticSink &Diags);

} // namespace gg

#endif // GG_TABLEGEN_SERIALIZE_H
