//===- Serialize.h - parse table serialization ------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table files: the CGGWS built tables once per target machine and wrote
/// them out for the code generator to load ("the first two parts are
/// static: they are used once for each target machine"). We serialize the
/// dense tables to a line-oriented text format, guarded by a fingerprint
/// of the grammar so stale tables cannot be applied to a changed
/// description — the paper's development loop ("we could only iterate on
/// the grammar once per day") is exactly the workflow this supports.
///
//===----------------------------------------------------------------------===//

#ifndef GG_TABLEGEN_SERIALIZE_H
#define GG_TABLEGEN_SERIALIZE_H

#include "mdl/Grammar.h"
#include "tablegen/LRTables.h"
#include "support/Error.h"

#include <string>

namespace gg {

/// Stable fingerprint of a grammar's productions and symbol names.
uint64_t grammarFingerprint(const Grammar &G);

/// Renders tables (plus the grammar fingerprint) as text.
std::string serializeTables(const Grammar &G, const LRTables &T);

/// Parses a table file produced by serializeTables. Fails (with
/// diagnostics) on version/fingerprint mismatch or malformed input.
bool deserializeTables(const std::string &Text, const Grammar &G,
                       LRTables &T, DiagnosticSink &Diags);

} // namespace gg

#endif // GG_TABLEGEN_SERIALIZE_H
