//===- Assembler.cpp - VAX assembly parser ------------------------------------===//

#include "vaxsim/Assembler.h"
#include "support/Strings.h"

#include <cctype>

using namespace gg;

namespace {

/// Register name -> number, or -1.
int parseReg(std::string_view S) {
  static const char *const Names[] = {"r0", "r1", "r2",  "r3", "r4", "r5",
                                      "r6", "r7", "r8",  "r9", "r10", "r11",
                                      "ap", "fp", "sp",  "pc"};
  for (int I = 0; I < 16; ++I)
    if (S == Names[I])
      return I;
  return -1;
}

bool isBranchOpcode(std::string_view Op) {
  return Op == "brw" || Op == "brb" || Op == "jbr" ||
         (Op.size() >= 2 && Op[0] == 'j');
}

/// Splits "sym+off" / "sym" / "off" into parts. Returns false on garbage.
bool parseSymOff(std::string_view Text, std::string &Sym, int64_t &Off) {
  Sym.clear();
  Off = 0;
  if (Text.empty())
    return false;
  size_t Plus = Text.rfind('+');
  std::string_view Name = Text, OffText;
  if (Plus != std::string_view::npos && Plus > 0) {
    Name = Text.substr(0, Plus);
    OffText = Text.substr(Plus + 1);
  }
  if (isdigit(static_cast<unsigned char>(Name[0])) || Name[0] == '-') {
    // Pure numeric address.
    std::optional<int64_t> V = parseInt(Text);
    if (!V)
      return false;
    Off = *V;
    return true;
  }
  Sym = std::string(Name);
  if (!OffText.empty()) {
    std::optional<int64_t> V = parseInt(OffText);
    if (!V)
      return false;
    Off = *V;
  }
  return true;
}

class AsmParser {
public:
  AsmParser(const std::string &Text, SimUnit &Unit, DiagnosticSink &Diags)
      : Text(Text), Unit(Unit), Diags(Diags) {}

  bool run() {
    int LineNo = 0;
    for (std::string_view Line : splitString(Text, '\n')) {
      ++LineNo;
      size_t Hash = Line.find('#');
      if (Hash != std::string_view::npos)
        Line = Line.substr(0, Hash);
      Line = trim(Line);
      if (Line.empty())
        continue;
      parseLine(Line, LineNo);
    }
    resolve();
    return !Diags.hasErrors();
  }

private:
  const std::string &Text;
  SimUnit &Unit;
  DiagnosticSink &Diags;
  bool InData = false;

  void parseLine(std::string_view Line, int LineNo) {
    // Label definitions (possibly followed by more on the same line).
    while (true) {
      size_t Colon = Line.find(':');
      if (Colon == std::string_view::npos)
        break;
      std::string_view Head = trim(Line.substr(0, Colon));
      // Only treat as a label if the head looks like an identifier.
      bool IsIdent = !Head.empty();
      for (char C : Head)
        if (!isalnum(static_cast<unsigned char>(C)) && C != '_' && C != '$' &&
            C != '.')
          IsIdent = false;
      if (!IsIdent)
        break;
      defineLabel(std::string(Head), LineNo);
      Line = trim(Line.substr(Colon + 1));
      if (Line.empty())
        return;
    }

    if (Line[0] == '.') {
      parseDirective(Line, LineNo);
      return;
    }

    // Instruction: opcode [op1,op2,...]
    size_t WS = Line.find_first_of(" \t");
    std::string Opcode(trim(Line.substr(0, WS)));
    SimInst Inst;
    Inst.Opcode = Opcode;
    Inst.Line = LineNo;
    if (WS != std::string_view::npos) {
      std::string_view Rest = trim(Line.substr(WS));
      if (!Rest.empty()) {
        for (std::string_view OpText : splitString(Rest, ',')) {
          SimOperand Op;
          if (!parseOperand(trim(OpText), Op, LineNo))
            return;
          Inst.Ops.push_back(Op);
        }
      }
    }
    if (InData) {
      Diags.error("instruction in .data section", LineNo);
      return;
    }
    Unit.Code.push_back(std::move(Inst));
  }

  void defineLabel(const std::string &Name, int LineNo) {
    if (InData) {
      if (Unit.DataSyms.count(Name)) {
        Diags.error(strf("duplicate data symbol '%s'", Name.c_str()), LineNo);
        return;
      }
      Unit.DataSyms[Name] =
          SimUnit::DataBase + static_cast<int64_t>(Unit.Data.size());
      return;
    }
    if (Unit.CodeLabels.count(Name)) {
      Diags.error(strf("duplicate code label '%s'", Name.c_str()), LineNo);
      return;
    }
    Unit.CodeLabels[Name] = Unit.Code.size();
  }

  void parseDirective(std::string_view Line, int LineNo) {
    std::vector<std::string_view> Tok = splitWhitespace(Line);
    std::string_view D = Tok[0];
    if (D == ".data") {
      InData = true;
      return;
    }
    if (D == ".text") {
      InData = false;
      return;
    }
    if (D == ".globl")
      return;
    if (D == ".align") {
      if (InData) {
        int64_t Pow = 2;
        if (Tok.size() == 2)
          if (std::optional<int64_t> V = parseInt(Tok[1]))
            Pow = *V;
        size_t Align = size_t(1) << (Pow < 0 || Pow > 12 ? 2 : Pow);
        while (Unit.Data.size() % Align)
          Unit.Data.push_back(0);
      }
      return;
    }
    if (D == ".space") {
      if (!InData || Tok.size() != 2) {
        Diags.error(".space outside .data or malformed", LineNo);
        return;
      }
      std::optional<int64_t> N = parseInt(Tok[1]);
      if (!N || *N < 0) {
        Diags.error("bad .space size", LineNo);
        return;
      }
      Unit.Data.insert(Unit.Data.end(), static_cast<size_t>(*N), 0);
      return;
    }
    if (D == ".byte" || D == ".word" || D == ".long") {
      if (!InData) {
        // Entry masks (.word 0x0fc0) appear in .text; the simulator's
        // calls saves registers itself, so masks are ignored.
        return;
      }
      int Width = D == ".byte" ? 1 : D == ".word" ? 2 : 4;
      for (size_t I = 1; I < Tok.size(); ++I) {
        std::optional<int64_t> V = parseInt(Tok[I]);
        if (!V) {
          Diags.error(strf("bad %s value", std::string(D).c_str()), LineNo);
          return;
        }
        uint64_t Raw = static_cast<uint64_t>(*V);
        for (int B = 0; B < Width; ++B)
          Unit.Data.push_back(static_cast<uint8_t>(Raw >> (8 * B)));
      }
      return;
    }
    Diags.error(strf("unknown directive '%s'", std::string(D).c_str()),
                LineNo);
  }

  bool parseOperand(std::string_view T, SimOperand &Op, int LineNo) {
    if (T.empty()) {
      Diags.error("empty operand", LineNo);
      return false;
    }

    // Indexed: base[rX]
    if (T.back() == ']') {
      size_t Open = T.rfind('[');
      if (Open == std::string_view::npos) {
        Diags.error("malformed indexed operand", LineNo);
        return false;
      }
      int X = parseReg(T.substr(Open + 1, T.size() - Open - 2));
      if (X < 0) {
        Diags.error("bad index register", LineNo);
        return false;
      }
      SimOperand Base;
      if (!parseOperand(T.substr(0, Open), Base, LineNo))
        return false;
      Op = Base;
      if (Op.Mode != SimMode::Abs && Op.Mode != SimMode::Disp) {
        Diags.error("indexed mode requires a direct base operand", LineNo);
        return false;
      }
      Op.Mode = SimMode::Indexed;
      Op.Index = X;
      return true;
    }

    // Immediate.
    if (T[0] == '$') {
      Op.Mode = SimMode::Imm;
      std::string Sym;
      int64_t Off;
      if (!parseSymOff(T.substr(1), Sym, Off)) {
        Diags.error("bad immediate", LineNo);
        return false;
      }
      Op.Sym = Sym;
      Op.Value = Off;
      return true;
    }

    // Deferred.
    if (T[0] == '*') {
      SimOperand Inner;
      if (!parseOperand(T.substr(1), Inner, LineNo))
        return false;
      Op = Inner;
      if (Inner.Mode == SimMode::Disp)
        Op.Mode = SimMode::DispDef;
      else if (Inner.Mode == SimMode::Abs)
        Op.Mode = SimMode::AbsDef;
      else {
        Diags.error("bad deferred operand", LineNo);
        return false;
      }
      return true;
    }

    // Autodecrement.
    if (T.size() >= 4 && T[0] == '-' && T[1] == '(') {
      int R = parseReg(T.substr(2, T.size() - 3));
      if (R < 0 || T.back() != ')') {
        Diags.error("bad autodecrement operand", LineNo);
        return false;
      }
      Op.Mode = SimMode::AutoDec;
      Op.Reg = R;
      return true;
    }

    // (rN) and (rN)+ and disp(rN).
    size_t Paren = T.find('(');
    if (Paren != std::string_view::npos) {
      bool Auto = T.back() == '+';
      std::string_view Closed = Auto ? T.substr(0, T.size() - 1) : T;
      if (Closed.back() != ')') {
        Diags.error("bad register deferred operand", LineNo);
        return false;
      }
      int R = parseReg(Closed.substr(Paren + 1, Closed.size() - Paren - 2));
      if (R < 0) {
        Diags.error("bad base register", LineNo);
        return false;
      }
      Op.Reg = R;
      Op.Mode = Auto ? SimMode::AutoInc : SimMode::Disp;
      std::string_view DispText = T.substr(0, Paren);
      if (!DispText.empty()) {
        if (Auto) {
          Diags.error("displacement with autoincrement", LineNo);
          return false;
        }
        std::string Sym;
        int64_t Off;
        if (!parseSymOff(DispText, Sym, Off)) {
          Diags.error("bad displacement", LineNo);
          return false;
        }
        Op.Sym = Sym;
        Op.Value = Off;
      }
      return true;
    }

    // Plain register.
    if (int R = parseReg(T); R >= 0) {
      Op.Mode = SimMode::Reg;
      Op.Reg = R;
      return true;
    }

    // Bare symbol / address: memory direct, or a code label for branches.
    std::string Sym;
    int64_t Off;
    if (!parseSymOff(T, Sym, Off)) {
      Diags.error(strf("unparseable operand '%s'", std::string(T).c_str()),
                  LineNo);
      return false;
    }
    Op.Mode = SimMode::Abs;
    Op.Sym = Sym;
    Op.Value = Off;
    return true;
  }

  /// Resolves symbolic references after layout.
  void resolve() {
    for (SimInst &Inst : Unit.Code) {
      bool Branch = isBranchOpcode(Inst.Opcode);
      bool Call = Inst.Opcode == "calls";
      for (size_t I = 0; I < Inst.Ops.size(); ++I) {
        SimOperand &Op = Inst.Ops[I];
        if (Op.Sym.empty())
          continue;
        bool IsTarget =
            (Branch && I == Inst.Ops.size() - 1 && Op.Mode == SimMode::Abs) ||
            (Call && I == 1 && Op.Mode == SimMode::Abs);
        if (IsTarget) {
          auto It = Unit.CodeLabels.find(Op.Sym);
          if (It != Unit.CodeLabels.end()) {
            Op.Mode = SimMode::CodeLabel;
            Op.Value = static_cast<int64_t>(It->second);
            continue;
          }
          if (Call)
            continue; // runtime builtin: stays symbolic
          Diags.error(strf("undefined label '%s' (line %d)", Op.Sym.c_str(),
                           Inst.Line));
          continue;
        }
        auto It = Unit.DataSyms.find(Op.Sym);
        if (It == Unit.DataSyms.end()) {
          Diags.error(strf("undefined symbol '%s' (line %d)", Op.Sym.c_str(),
                           Inst.Line));
          continue;
        }
        Op.Value += It->second;
        Op.Sym.clear();
      }
    }
  }
};

} // namespace

bool gg::assemble(const std::string &Text, SimUnit &Unit,
                  DiagnosticSink &Diags) {
  AsmParser Parser(Text, Unit, Diags);
  return Parser.run();
}
