//===- Assembler.h - VAX assembly parser ------------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the UNIX-style VAX assembly produced by both code generators
/// into an executable unit: a data image, a symbol table and a decoded
/// instruction list. This (plus Simulator.h) stands in for the paper's
/// physical VAX-11/780 and lets the test suite run generated code.
///
//===----------------------------------------------------------------------===//

#ifndef GG_VAXSIM_ASSEMBLER_H
#define GG_VAXSIM_ASSEMBLER_H

#include "support/Error.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gg {

/// Addressing mode of a parsed assembly operand.
enum class SimMode : uint8_t {
  Reg,      ///< rN
  Imm,      ///< $literal or $sym[+off] (resolved)
  Abs,      ///< sym[+off] or bare address (memory direct)
  Disp,     ///< off(rN), also sym+off(rN)
  DispDef,  ///< *off(rN)
  AbsDef,   ///< *sym[+off]
  Indexed,  ///< base[rX]
  AutoInc,  ///< (rN)+
  AutoDec,  ///< -(rN)
  CodeLabel ///< branch/call target (instruction index)
};

/// One parsed operand. Symbolic references are resolved after layout:
/// Resolved holds the data address / immediate / instruction index.
struct SimOperand {
  SimMode Mode = SimMode::Reg;
  int Reg = -1;      ///< base register
  int Index = -1;    ///< index register (Indexed)
  int64_t Value = 0; ///< displacement / immediate / resolved address
  std::string Sym;   ///< unresolved symbol (kept for diagnostics/builtins)
};

/// One decoded instruction.
struct SimInst {
  std::string Opcode;
  std::vector<SimOperand> Ops;
  int Line = 0;
};

/// An assembled unit ready for simulation.
struct SimUnit {
  std::vector<uint8_t> Data;                 ///< data image (base DataBase)
  std::map<std::string, int64_t> DataSyms;   ///< symbol -> absolute address
  std::vector<SimInst> Code;
  std::map<std::string, size_t> CodeLabels;  ///< label -> instruction index

  static constexpr int64_t DataBase = 0x1000;
};

/// Assembles \p Text. Returns false with diagnostics on parse errors or
/// unresolved symbols (calls to the runtime builtins print / printc /
/// __udiv / __urem stay symbolic and are allowed).
bool assemble(const std::string &Text, SimUnit &Unit, DiagnosticSink &Diags);

} // namespace gg

#endif // GG_VAXSIM_ASSEMBLER_H
