//===- Simulator.cpp - VAX subset simulator -----------------------------------===//

#include "vaxsim/Simulator.h"
#include "ir/Interp.h" // vaxAshl32
#include "ir/Node.h"   // register numbers
#include "support/Strings.h"

#include <unordered_map>

using namespace gg;

namespace {

constexpr size_t MemBytes = 1u << 20;
constexpr int64_t RetSentinel = -1;

enum class IKind : uint8_t {
  Mov,
  Movz,
  Cvt,
  Clr,
  Mneg,
  Mcom,
  Add2,
  Add3,
  Sub2,
  Sub3,
  Mul2,
  Mul3,
  Div2,
  Div3,
  Bic2,
  Bic3,
  Bis2,
  Bis3,
  Xor2,
  Xor3,
  Ashl,
  Extzv,
  Inc,
  Dec,
  Tst,
  Cmp,
  Pushl,
  Moval,
  Calls,
  Ret,
  Br,
  CondJ,
  Bad,
};

struct Decoded {
  IKind Kind = IKind::Bad;
  int W1 = 4; ///< primary operand width
  int W2 = 4; ///< secondary width (cvt/movz destination)
  Cond CC = Cond::EQ;
};

int widthOf(char C) { return C == 'b' ? 1 : C == 'w' ? 2 : 4; }

Decoded decode(const std::string &Op) {
  Decoded D;
  auto Sized = [&](std::string_view Base, IKind K2, IKind K3) -> bool {
    // e.g. add{b,w,l}{2,3}
    if (Op.size() == Base.size() + 2 && Op.compare(0, Base.size(), Base) == 0) {
      char SC = Op[Base.size()], N = Op[Base.size() + 1];
      if ((SC == 'b' || SC == 'w' || SC == 'l') && (N == '2' || N == '3')) {
        D.Kind = N == '2' ? K2 : K3;
        D.W1 = widthOf(SC);
        return true;
      }
    }
    return false;
  };
  auto Sized1 = [&](std::string_view Base, IKind K) -> bool {
    if (Op.size() == Base.size() + 1 && Op.compare(0, Base.size(), Base) == 0) {
      char SC = Op[Base.size()];
      if (SC == 'b' || SC == 'w' || SC == 'l') {
        D.Kind = K;
        D.W1 = widthOf(SC);
        return true;
      }
    }
    return false;
  };

  if (Sized("add", IKind::Add2, IKind::Add3) ||
      Sized("sub", IKind::Sub2, IKind::Sub3) ||
      Sized("mul", IKind::Mul2, IKind::Mul3) ||
      Sized("div", IKind::Div2, IKind::Div3) ||
      Sized("bic", IKind::Bic2, IKind::Bic3) ||
      Sized("bis", IKind::Bis2, IKind::Bis3) ||
      Sized("xor", IKind::Xor2, IKind::Xor3))
    return D;
  if (Sized1("mov", IKind::Mov) || Sized1("clr", IKind::Clr) ||
      Sized1("mneg", IKind::Mneg) || Sized1("mcom", IKind::Mcom) ||
      Sized1("inc", IKind::Inc) || Sized1("dec", IKind::Dec) ||
      Sized1("tst", IKind::Tst) || Sized1("cmp", IKind::Cmp))
    return D;

  if (Op.size() == 6 && Op.compare(0, 4, "movz") == 0) {
    D.Kind = IKind::Movz;
    D.W1 = widthOf(Op[4]);
    D.W2 = widthOf(Op[5]);
    return D;
  }
  if (Op.size() == 5 && Op.compare(0, 3, "cvt") == 0) {
    D.Kind = IKind::Cvt;
    D.W1 = widthOf(Op[3]);
    D.W2 = widthOf(Op[4]);
    return D;
  }
  if (Op == "ashl") {
    D.Kind = IKind::Ashl;
    return D;
  }
  if (Op == "extzv") {
    D.Kind = IKind::Extzv;
    return D;
  }
  if (Op == "pushl") {
    D.Kind = IKind::Pushl;
    return D;
  }
  if (Op == "moval") {
    D.Kind = IKind::Moval;
    return D;
  }
  if (Op == "calls") {
    D.Kind = IKind::Calls;
    return D;
  }
  if (Op == "ret") {
    D.Kind = IKind::Ret;
    return D;
  }
  if (Op == "brw" || Op == "brb" || Op == "jbr" || Op == "jmp") {
    D.Kind = IKind::Br;
    return D;
  }
  static const std::pair<const char *, Cond> Jumps[] = {
      {"jeql", Cond::EQ},   {"jneq", Cond::NE},   {"jlss", Cond::LT},
      {"jleq", Cond::LE},   {"jgtr", Cond::GT},   {"jgeq", Cond::GE},
      {"jlssu", Cond::ULT}, {"jlequ", Cond::ULE}, {"jgtru", Cond::UGT},
      {"jgequ", Cond::UGE}};
  for (auto &[Name, C] : Jumps)
    if (Op == Name) {
      D.Kind = IKind::CondJ;
      D.CC = C;
      return D;
    }
  return D;
}

int64_t signedAt(int64_t V, int W) {
  switch (W) {
  case 1:
    return static_cast<int8_t>(V);
  case 2:
    return static_cast<int16_t>(V);
  default:
    return static_cast<int32_t>(V);
  }
}

uint64_t unsignedAt(int64_t V, int W) {
  switch (W) {
  case 1:
    return static_cast<uint8_t>(V);
  case 2:
    return static_cast<uint16_t>(V);
  default:
    return static_cast<uint32_t>(V);
  }
}

class Machine {
public:
  Machine(const SimUnit &U, uint64_t StepLimit)
      : U(U), StepLimit(StepLimit), Mem(MemBytes, 0) {
    // Place the data image.
    for (size_t I = 0; I < U.Data.size(); ++I)
      Mem[SimUnit::DataBase + I] = U.Data[I];
    for (const SimInst &Inst : U.Code)
      DecodedCode.push_back(decode(Inst.Opcode));
  }

  SimResult run(std::string_view Entry) {
    SimResult R;
    auto It = U.CodeLabels.find(std::string(Entry));
    if (It == U.CodeLabels.end()) {
      R.Error = strf("entry point '%s' not found", std::string(Entry).c_str());
      return R;
    }
    Regs[RegSP] = static_cast<int64_t>(MemBytes) - 64;
    enterFrame(/*NumArgs=*/0, RetSentinel);
    PC = static_cast<int64_t>(It->second);

    while (Err.empty()) {
      if (PC == RetSentinel)
        break;
      if (PC < 0 || PC >= static_cast<int64_t>(U.Code.size())) {
        fail("control fell off the end of the code");
        break;
      }
      if (++R.Instructions > StepLimit) {
        fail("instruction limit exceeded (infinite loop?)");
        break;
      }
      step(R);
    }
    R.Ok = Err.empty();
    R.Error = Err;
    R.ReturnValue = static_cast<int32_t>(Regs[0]);
    R.Output = std::move(Output);
    R.Cycles = Cycles;
    return R;
  }

private:
  const SimUnit &U;
  uint64_t StepLimit;
  std::vector<uint8_t> Mem;
  std::vector<Decoded> DecodedCode;
  int64_t Regs[NumRegs] = {};
  int64_t PC = 0;
  bool FN = false, FZ = false, FC = false;
  uint64_t Cycles = 0;
  std::string Output;
  std::string Err;

  void fail(const std::string &M) {
    if (Err.empty())
      Err = M;
  }

  bool checkAddr(int64_t Addr, int W) {
    if (Addr < 0 || Addr + W > static_cast<int64_t>(Mem.size())) {
      fail(strf("memory access out of range at pc=%lld: addr=%lld",
                static_cast<long long>(PC), static_cast<long long>(Addr)));
      return false;
    }
    return true;
  }

  int64_t load(int64_t Addr, int W) {
    if (!checkAddr(Addr, W))
      return 0;
    uint64_t Raw = 0;
    for (int I = 0; I < W; ++I)
      Raw |= static_cast<uint64_t>(Mem[Addr + I]) << (8 * I);
    return signedAt(static_cast<int64_t>(Raw), W);
  }

  void store(int64_t Addr, int W, int64_t V) {
    if (!checkAddr(Addr, W))
      return;
    for (int I = 0; I < W; ++I)
      Mem[Addr + I] = static_cast<uint8_t>(static_cast<uint64_t>(V) >> (8 * I));
  }

  /// A located operand: a register, a memory address, or an immediate.
  struct Loc {
    enum { R, M, I } Kind;
    int Reg = 0;
    int64_t Addr = 0;
    int64_t Imm = 0;
  };

  int operandCost(const SimOperand &O) {
    switch (O.Mode) {
    case SimMode::Reg:
    case SimMode::Imm:
    case SimMode::CodeLabel:
      return 0;
    case SimMode::Abs:
    case SimMode::Disp:
    case SimMode::AutoInc:
    case SimMode::AutoDec:
      return 1;
    case SimMode::DispDef:
    case SimMode::AbsDef:
    case SimMode::Indexed:
      return 2;
    }
    return 1;
  }

  /// 32-bit effective-address wraparound, as on the hardware: negative
  /// displacements arrive as large unsigned longs from the pointer
  /// arithmetic and must wrap.
  static int64_t ea(int64_t Addr) {
    return static_cast<int64_t>(static_cast<uint32_t>(Addr));
  }

  /// Evaluates an operand to a location, applying side effects once.
  Loc locate(const SimOperand &O, int W) {
    Loc L;
    Cycles += operandCost(O);
    switch (O.Mode) {
    case SimMode::Reg:
      L.Kind = Loc::R;
      L.Reg = O.Reg;
      return L;
    case SimMode::Imm:
      L.Kind = Loc::I;
      L.Imm = O.Value;
      return L;
    case SimMode::Abs:
      L.Kind = Loc::M;
      L.Addr = ea(O.Value);
      return L;
    case SimMode::Disp:
      L.Kind = Loc::M;
      L.Addr = ea(Regs[O.Reg] + O.Value);
      return L;
    case SimMode::DispDef:
      L.Kind = Loc::M;
      L.Addr = ea(load(ea(Regs[O.Reg] + O.Value), 4));
      return L;
    case SimMode::AbsDef:
      L.Kind = Loc::M;
      L.Addr = ea(load(ea(O.Value), 4));
      return L;
    case SimMode::Indexed: {
      int64_t Base = O.Reg >= 0 ? Regs[O.Reg] + O.Value : O.Value;
      L.Kind = Loc::M;
      L.Addr = ea(Base + Regs[O.Index] * W);
      return L;
    }
    case SimMode::AutoInc:
      L.Kind = Loc::M;
      L.Addr = ea(Regs[O.Reg]);
      Regs[O.Reg] += W;
      return L;
    case SimMode::AutoDec:
      Regs[O.Reg] -= W;
      L.Kind = Loc::M;
      L.Addr = ea(Regs[O.Reg]);
      return L;
    case SimMode::CodeLabel:
      L.Kind = Loc::I;
      L.Imm = O.Value;
      return L;
    }
    return L;
  }

  int64_t read(const Loc &L, int W) {
    switch (L.Kind) {
    case Loc::R:
      return signedAt(Regs[L.Reg], W);
    case Loc::M:
      return load(L.Addr, W);
    case Loc::I:
      return signedAt(L.Imm, W);
    }
    return 0;
  }

  void write(const Loc &L, int W, int64_t V) {
    switch (L.Kind) {
    case Loc::R: {
      // Byte/word writes to registers modify only the low bits (VAX).
      if (W == 4) {
        Regs[L.Reg] = static_cast<int32_t>(V);
      } else {
        uint64_t Mask = W == 1 ? 0xff : 0xffff;
        Regs[L.Reg] = static_cast<int32_t>(
            (static_cast<uint64_t>(Regs[L.Reg]) & ~Mask) |
            (static_cast<uint64_t>(V) & Mask));
      }
      return;
    }
    case Loc::M:
      store(L.Addr, W, V);
      return;
    case Loc::I:
      fail("write to an immediate operand");
      return;
    }
  }

  void setNZ(int64_t V, int W) {
    int64_t S = signedAt(V, W);
    FN = S < 0;
    FZ = S == 0;
    FC = false;
  }

  bool condTrue(Cond C) {
    switch (C) {
    case Cond::EQ:
      return FZ;
    case Cond::NE:
      return !FZ;
    case Cond::LT:
      return FN;
    case Cond::LE:
      return FN || FZ;
    case Cond::GT:
      return !(FN || FZ);
    case Cond::GE:
      return !FN;
    case Cond::ULT:
      return FC;
    case Cond::ULE:
      return FC || FZ;
    case Cond::UGT:
      return !(FC || FZ);
    case Cond::UGE:
      return !FC;
    }
    return false;
  }

  void enterFrame(int64_t NumArgs, int64_t RetPC) {
    int64_t SP = Regs[RegSP];
    SP -= 4;
    store(SP, 4, NumArgs);
    int64_t NewAP = SP;
    SP -= 4;
    store(SP, 4, RetPC);
    SP -= 4;
    store(SP, 4, Regs[RegFP]);
    SP -= 4;
    store(SP, 4, Regs[RegAP]);
    for (int R = 2; R <= 11; ++R) {
      SP -= 4;
      store(SP, 4, Regs[R]);
    }
    Regs[RegAP] = NewAP;
    Regs[RegFP] = SP;
    Regs[RegSP] = SP;
    if (SP < SimUnit::DataBase + static_cast<int64_t>(U.Data.size()))
      fail("simulator stack overflow");
  }

  void doRet() {
    int64_t SP = Regs[RegFP];
    for (int R = 11; R >= 2; --R) {
      Regs[R] = load(SP, 4);
      SP += 4;
    }
    int64_t OldAP = load(SP, 4);
    SP += 4;
    int64_t OldFP = load(SP, 4);
    SP += 4;
    int64_t RetPC = load(SP, 4);
    SP += 4;
    int64_t NumArgs = load(SP, 4);
    SP += 4 + NumArgs * 4;
    Regs[RegAP] = OldAP;
    Regs[RegFP] = OldFP;
    Regs[RegSP] = SP;
    PC = RetPC;
  }

  bool doBuiltin(const std::string &Name, int64_t NumArgs) {
    int64_t SP = Regs[RegSP];
    auto Arg = [&](int I) { return load(SP + 4 * I, 4); };
    if (Name == "print") {
      int64_t V = NumArgs > 0 ? Arg(0) : 0;
      Output += strf("%lld\n", static_cast<long long>(V));
      Regs[0] = V;
    } else if (Name == "printc") {
      Output += static_cast<char>(NumArgs > 0 ? Arg(0) : 0);
      Regs[0] = 0;
    } else if (Name == "__udiv" || Name == "__urem") {
      uint32_t A = static_cast<uint32_t>(Arg(0));
      uint32_t B = static_cast<uint32_t>(Arg(1));
      if (B == 0) {
        fail("division by zero");
        return true;
      }
      Regs[0] = static_cast<int32_t>(Name == "__udiv" ? A / B : A % B);
    } else {
      return false;
    }
    Regs[RegSP] += 4 * NumArgs; // calls would have popped via ret
    ++PC;
    Cycles += 8;
    return true;
  }

  void step(SimResult &R) {
    (void)R;
    const SimInst &I = U.Code[PC];
    const Decoded &D = DecodedCode[PC];
    ++Cycles;

    auto Need = [&](size_t N) -> bool {
      if (I.Ops.size() != N) {
        fail(strf("line %d: %s expects %zu operands", I.Line,
                  I.Opcode.c_str(), N));
        return false;
      }
      return true;
    };

    switch (D.Kind) {
    case IKind::Bad:
      fail(strf("line %d: unknown opcode '%s'", I.Line, I.Opcode.c_str()));
      return;

    case IKind::Mov: {
      if (!Need(2))
        return;
      Loc S = locate(I.Ops[0], D.W1), T = locate(I.Ops[1], D.W1);
      int64_t V = read(S, D.W1);
      write(T, D.W1, V);
      setNZ(V, D.W1);
      break;
    }
    case IKind::Movz: {
      if (!Need(2))
        return;
      Loc S = locate(I.Ops[0], D.W1), T = locate(I.Ops[1], D.W2);
      int64_t V = static_cast<int64_t>(unsignedAt(read(S, D.W1), D.W1));
      write(T, D.W2, V);
      setNZ(V, D.W2);
      break;
    }
    case IKind::Cvt: {
      if (!Need(2))
        return;
      Loc S = locate(I.Ops[0], D.W1), T = locate(I.Ops[1], D.W2);
      int64_t V = read(S, D.W1);
      write(T, D.W2, V);
      setNZ(V, D.W2);
      break;
    }
    case IKind::Clr: {
      if (!Need(1))
        return;
      Loc T = locate(I.Ops[0], D.W1);
      write(T, D.W1, 0);
      setNZ(0, D.W1);
      break;
    }
    case IKind::Mneg:
    case IKind::Mcom: {
      if (!Need(2))
        return;
      Loc S = locate(I.Ops[0], D.W1), T = locate(I.Ops[1], D.W1);
      int64_t V = read(S, D.W1);
      V = D.Kind == IKind::Mneg ? -V : ~V;
      write(T, D.W1, V);
      setNZ(V, D.W1);
      break;
    }
    case IKind::Inc:
    case IKind::Dec: {
      if (!Need(1))
        return;
      Loc T = locate(I.Ops[0], D.W1);
      int64_t V = read(T, D.W1) + (D.Kind == IKind::Inc ? 1 : -1);
      write(T, D.W1, V);
      setNZ(V, D.W1);
      break;
    }
    case IKind::Tst: {
      if (!Need(1))
        return;
      Loc S = locate(I.Ops[0], D.W1);
      setNZ(read(S, D.W1), D.W1);
      break;
    }
    case IKind::Cmp: {
      if (!Need(2))
        return;
      Loc A = locate(I.Ops[0], D.W1), B = locate(I.Ops[1], D.W1);
      int64_t VA = read(A, D.W1), VB = read(B, D.W1);
      FN = VA < VB;
      FZ = VA == VB;
      FC = unsignedAt(VA, D.W1) < unsignedAt(VB, D.W1);
      break;
    }

    case IKind::Add2:
    case IKind::Sub2:
    case IKind::Mul2:
    case IKind::Div2:
    case IKind::Bic2:
    case IKind::Bis2:
    case IKind::Xor2: {
      if (!Need(2))
        return;
      Loc S = locate(I.Ops[0], D.W1), T = locate(I.Ops[1], D.W1);
      int64_t A = read(S, D.W1), B = read(T, D.W1), V = 0;
      if (!binop(D.Kind, D.W1, A, B, V))
        return;
      write(T, D.W1, V);
      setNZ(V, D.W1);
      break;
    }
    case IKind::Add3:
    case IKind::Sub3:
    case IKind::Mul3:
    case IKind::Div3:
    case IKind::Bic3:
    case IKind::Bis3:
    case IKind::Xor3: {
      if (!Need(3))
        return;
      Loc S1 = locate(I.Ops[0], D.W1), S2 = locate(I.Ops[1], D.W1),
          T = locate(I.Ops[2], D.W1);
      int64_t A = read(S1, D.W1), B = read(S2, D.W1), V = 0;
      if (!binop(D.Kind, D.W1, A, B, V))
        return;
      write(T, D.W1, V);
      setNZ(V, D.W1);
      break;
    }

    case IKind::Ashl: {
      if (!Need(3))
        return;
      Cycles += 1;
      Loc C = locate(I.Ops[0], 1), S = locate(I.Ops[1], 4),
          T = locate(I.Ops[2], 4);
      int64_t V = vaxAshl32(read(C, 1), read(S, 4));
      write(T, 4, V);
      setNZ(V, 4);
      break;
    }
    case IKind::Extzv: {
      if (!Need(4))
        return;
      Cycles += 2;
      Loc P = locate(I.Ops[0], 4), Z = locate(I.Ops[1], 4),
          S = locate(I.Ops[2], 4), T = locate(I.Ops[3], 4);
      int64_t Pos = read(P, 4), Size = read(Z, 4);
      uint32_t Base = static_cast<uint32_t>(read(S, 4));
      int64_t V = 0;
      if (Pos >= 0 && Pos <= 31 && Size > 0) {
        int Width = static_cast<int>(Size > 32 - Pos ? 32 - Pos : Size);
        uint32_t Mask =
            Width >= 32 ? 0xffffffffu : ((1u << Width) - 1u);
        V = (Base >> Pos) & Mask;
      }
      write(T, 4, V);
      setNZ(V, 4);
      break;
    }

    case IKind::Pushl: {
      if (!Need(1))
        return;
      Loc S = locate(I.Ops[0], 4);
      int64_t V = read(S, 4);
      Regs[RegSP] -= 4;
      store(Regs[RegSP], 4, V);
      setNZ(V, 4);
      break;
    }
    case IKind::Moval: {
      if (!Need(2))
        return;
      Loc S = locate(I.Ops[0], 4), T = locate(I.Ops[1], 4);
      // moval computes the address without accessing memory: refund the
      // memory-operand cost locate() charged for the source.
      Cycles -= operandCost(I.Ops[0]);
      if (S.Kind != Loc::M) {
        fail(strf("line %d: moval of a non-memory operand", I.Line));
        return;
      }
      write(T, 4, S.Addr);
      setNZ(S.Addr, 4);
      break;
    }

    case IKind::Calls: {
      if (!Need(2))
        return;
      Cycles += 4;
      Loc N = locate(I.Ops[0], 4);
      int64_t NumArgs = read(N, 4);
      const SimOperand &Target = I.Ops[1];
      if (Target.Mode == SimMode::CodeLabel) {
        enterFrame(NumArgs, PC + 1);
        PC = Target.Value;
        return;
      }
      if (!Target.Sym.empty() && doBuiltin(Target.Sym, NumArgs))
        return;
      fail(strf("line %d: call to undefined function '%s'", I.Line,
                Target.Sym.c_str()));
      return;
    }
    case IKind::Ret:
      Cycles += 4;
      doRet();
      return;

    case IKind::Br: {
      if (!Need(1))
        return;
      if (I.Ops[0].Mode != SimMode::CodeLabel) {
        fail(strf("line %d: branch to a non-label", I.Line));
        return;
      }
      PC = I.Ops[0].Value;
      return;
    }
    case IKind::CondJ: {
      if (!Need(1))
        return;
      if (condTrue(D.CC)) {
        PC = I.Ops[0].Value;
        return;
      }
      break;
    }
    }
    ++PC;
  }

  bool binop(IKind K, int W, int64_t A, int64_t B, int64_t &V) {
    switch (K) {
    case IKind::Add2:
    case IKind::Add3:
      V = A + B;
      return true;
    case IKind::Sub2:
    case IKind::Sub3:
      V = B - A;
      return true;
    case IKind::Mul2:
    case IKind::Mul3:
      Cycles += 3;
      V = A * B;
      return true;
    case IKind::Div2:
    case IKind::Div3: {
      Cycles += 5;
      int64_t SA = signedAt(A, W), SB = signedAt(B, W);
      if (SA == 0) {
        fail("division by zero");
        return false;
      }
      if (SB == signedAt(INT64_MIN, W) && SA == -1) {
        V = SB; // wraps
        return true;
      }
      V = SB / SA;
      return true;
    }
    case IKind::Bic2:
    case IKind::Bic3:
      V = B & ~A;
      return true;
    case IKind::Bis2:
    case IKind::Bis3:
      V = B | A;
      return true;
    case IKind::Xor2:
    case IKind::Xor3:
      V = B ^ A;
      return true;
    default:
      return false;
    }
  }
};

} // namespace

SimResult gg::simulate(const SimUnit &Unit, std::string_view Entry,
                       uint64_t StepLimit) {
  Machine M(Unit, StepLimit);
  return M.run(Entry);
}

SimResult gg::assembleAndRun(const std::string &AsmText,
                             std::string_view Entry, uint64_t StepLimit) {
  SimUnit Unit;
  DiagnosticSink Diags;
  if (!assemble(AsmText, Unit, Diags)) {
    SimResult R;
    R.Error = "assembly failed:\n" + Diags.renderAll();
    return R;
  }
  return simulate(Unit, Entry, StepLimit);
}
