//===- Simulator.h - VAX subset simulator -----------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes assembled units: registers, condition codes, the calls/ret
/// frame convention, all addressing modes both code generators emit, and
/// the four runtime builtins (print, printc, __udiv, __urem). A stylized
/// per-instruction/per-operand cost model provides "simulated cycles" for
/// the code-quality experiments (E6, E7); it is a relative measure, not a
/// VAX-11/780 timing model.
///
//===----------------------------------------------------------------------===//

#ifndef GG_VAXSIM_SIMULATOR_H
#define GG_VAXSIM_SIMULATOR_H

#include "vaxsim/Assembler.h"

#include <string>

namespace gg {

/// Outcome of simulating a unit.
struct SimResult {
  bool Ok = false;
  std::string Error;
  int64_t ReturnValue = 0; ///< r0 when the entry function returns
  std::string Output;      ///< print/printc output
  uint64_t Instructions = 0;
  uint64_t Cycles = 0;
};

/// Runs \p Unit from \p Entry (default "main") until it returns.
SimResult simulate(const SimUnit &Unit, std::string_view Entry = "main",
                   uint64_t StepLimit = 50'000'000);

/// Convenience: assemble + simulate; assembly diagnostics become Error.
SimResult assembleAndRun(const std::string &AsmText,
                         std::string_view Entry = "main",
                         uint64_t StepLimit = 50'000'000);

} // namespace gg

#endif // GG_VAXSIM_SIMULATOR_H
