//===- PccCodeGen.cpp - hand-coded baseline code generator --------------------===//

#include "pcc/PccCodeGen.h"
#include "cg/CodeGenerator.h" // emitDataSection
#include "cg/Transform.h"
#include "support/Error.h"
#include "support/Profile.h"
#include "support/Strings.h"
#include "support/Timer.h"
#include "vax/Emitter.h"
#include "vax/Operand.h"

using namespace gg;

namespace {

char scOf(Ty T) { return suffixChar(T); }

class PccFunctionGen {
public:
  PccFunctionGen(Program &P, Function &F, AsmEmitter &Emit,
                 DiagnosticSink &Diags, NodeArena *Arena = nullptr)
      : P(P), F(F), A(Arena ? *Arena : *P.Arena), Emit(Emit), Diags(Diags) {}

  bool run() {
    // The baseline prevents spills the way PCC did: split register-hungry
    // statements up front, then walk with a simple accumulator stack.
    splitBusyStatements();

    bool EndsWithRet = false;
    for (Node *S : F.Body) {
      EndsWithRet = false;
      genStmt(S);
      if (S->is(Op::Ret))
        EndsWithRet = true;
      if (Failed)
        return false;
      if (BusyMask != 0) {
        fatal("baseline register leak");
        return false;
      }
    }
    if (!EndsWithRet)
      Emit.instRaw("ret", {});
    return true;
  }

  /// Generates one statement tree (the fallback path); splits it the same
  /// way run() pre-splits the whole body, without touching F.Body.
  bool runOne(Node *S) {
    std::vector<Node *> Stmts;
    splitStatement(S, Stmts);
    for (Node *St : Stmts) {
      genStmt(St);
      if (Failed)
        return false;
      if (BusyMask != 0) {
        fatal("baseline register leak");
        return false;
      }
    }
    return true;
  }

private:
  Program &P;
  Function &F;
  NodeArena &A;
  AsmEmitter &Emit;
  DiagnosticSink &Diags;
  unsigned BusyMask = 0; ///< bit per scratch register r0..r5
  bool Failed = false;

  void fatal(const std::string &M) {
    // First failure is the root cause; it accumulates as a diagnostic
    // (never process death) so the baseline is safe as a fallback.
    if (!Failed) {
      Failed = true;
      Diags.error(M);
    }
  }

  int alloc() {
    for (int R = RegFirstAlloc; R <= RegLastAlloc; ++R)
      if (!(BusyMask & (1u << R))) {
        BusyMask |= 1u << R;
        return R;
      }
    fatal("baseline ran out of registers");
    return 0;
  }
  void freeReg(int R) {
    if (R >= RegFirstAlloc && R <= RegLastAlloc)
      BusyMask &= ~(1u << R);
  }
  void reclaim(const Operand &O) {
    freeReg(O.Base);
    freeReg(O.Index);
  }

  /// Pre-splits one statement into \p Out: embedded library calls are
  /// hoisted so r0 is never live across the call, then register-hungry
  /// subtrees are assigned to frame temporaries.
  void splitStatement(Node *S, std::vector<Node *> &Out) {
    // Unsigned division/modulus become library calls whose result
    // arrives in r0; hoist each one to its own statement so r0 is
    // never live across the call.
    for (int Guard = 0; Guard < 16; ++Guard) {
      Node **Lib = findLibCallSubtree(S, /*AtRoot=*/true);
      if (!Lib)
        break;
      Node *Tmp = A.local((*Lib)->Type, F.allocLocal(4));
      Out.push_back(A.bin(Op::Assign, (*Lib)->Type, Tmp, *Lib));
      *Lib = A.clone(Tmp);
    }
    for (int Guard = 0; Guard < 16 && registerNeed(S) > 5; ++Guard) {
      Node **Split = findHungryChild(S);
      if (!Split)
        break;
      Node *Tmp = A.local((*Split)->Type, F.allocLocal(4));
      Out.push_back(A.bin(Op::Assign, (*Split)->Type, Tmp, *Split));
      *Split = A.clone(Tmp);
    }
    Out.push_back(S);
  }

  void splitBusyStatements() {
    std::vector<Node *> Out;
    for (Node *S : F.Body)
      splitStatement(S, Out);
    F.Body = std::move(Out);
  }

  static bool hasEffects(const Node *N) {
    if (!N)
      return false;
    if (N->is(Op::PostInc) || N->is(Op::PreDec))
      return true;
    return hasEffects(N->left()) || hasEffects(N->right());
  }

  /// Finds an inner unsigned Div/Mod to hoist. A node that is already the
  /// direct source of a root assignment is fine where it is.
  Node **findLibCallSubtree(Node *N, bool AtRoot) {
    if (!N)
      return nullptr;
    for (Node *&Kid : N->Kids) {
      if (!Kid)
        continue;
      bool KidIsRootSource =
          AtRoot && (N->is(Op::Assign) || N->is(Op::AssignR)) &&
          &Kid == &N->Kids[N->is(Op::Assign) ? 1 : 0];
      if ((Kid->is(Op::Div) || Kid->is(Op::Mod)) &&
          isUnsignedTy(Kid->Type) && !KidIsRootSource &&
          !hasEffects(Kid)) {
        // Hoist the outermost such node only after its own operands are
        // clean of nested library calls.
        if (Node **Inner = findLibCallSubtree(Kid, false))
          return Inner;
        return &Kid;
      }
      if (Node **Found = findLibCallSubtree(Kid, false))
        return Found;
    }
    return nullptr;
  }

  Node **findHungryChild(Node *S) {
    Node *N = S;
    while (true) {
      Node **Best = nullptr;
      int BestNeed = -1;
      for (Node *&Kid : N->Kids) {
        if (!Kid)
          continue;
        int Need = registerNeed(Kid);
        if (Need > BestNeed) {
          BestNeed = Need;
          Best = &Kid;
        }
      }
      if (!Best || BestNeed < 2)
        return nullptr;
      if (BestNeed <= 4 && !(*Best)->is(Op::Dreg) && !hasEffects(*Best))
        return Best;
      N = *Best;
    }
  }

  //===--- statements ----------------------------------------------------------
  void genStmt(Node *S) {
    switch (S->Opcode) {
    case Op::LabelDef:
      Emit.label(S->Sym);
      return;
    case Op::Jump:
      Emit.instRaw("brw", {P.Syms.text(S->left()->Sym)});
      return;
    case Op::CBranch: {
      Node *C = S->left();
      Operand L = genExpr(C->left());
      Operand R = genExpr(C->right());
      char SC = scOf(C->Type);
      // Widen mismatched operands to the comparison width.
      L = widenTo(L, C->left()->Type, C->Type);
      R = widenTo(R, C->right()->Type, C->Type);
      if (R.isImm() && R.Disp == 0)
        Emit.inst(strf("tst%c", SC), {L});
      else
        Emit.inst(strf("cmp%c", SC), {L, R});
      Emit.instRaw(strf("j%s", condName(C->CC)),
                   {P.Syms.text(S->right()->Sym)});
      reclaim(L);
      reclaim(R);
      return;
    }
    case Op::Ret:
      if (S->left()) {
        Operand V = genExpr(S->left());
        V = widenTo(V, S->left()->Type, Ty::L);
        if (!(V.isReg() && V.Base == RegR0))
          Emit.inst("movl", {V, Operand::reg(RegR0, Ty::L)});
        reclaim(V);
      }
      Emit.instRaw("ret", {});
      return;
    case Op::Push: {
      Operand V = genExpr(S->left());
      V = widenTo(V, S->left()->Type, Ty::L);
      Emit.inst("pushl", {V});
      reclaim(V);
      return;
    }
    case Op::CallStmt: {
      const Node *Call = S->right();
      Emit.instRaw("calls", {strf("$%lld", (long long)Call->Value),
                             P.Syms.text(Call->left()->Sym)});
      if (S->left()) {
        Operand Dst = lvalueOperand(S->left());
        Emit.inst(strf("mov%c", scOf(S->left()->Type)),
                  {Operand::reg(RegR0, Ty::L), Dst});
        reclaim(Dst);
      }
      return;
    }
    case Op::Assign:
    case Op::AssignR: {
      Node *DstN = S->is(Op::Assign) ? S->left() : S->right();
      Node *SrcN = S->is(Op::Assign) ? S->right() : S->left();
      Operand Src = genExpr(SrcN);
      Operand Dst = lvalueOperand(DstN);
      char SC = scOf(DstN->Type);
      Src = widenTo(Src, SrcN->Type, DstN->Type);
      if (Src.isImm() && Src.Disp == 0)
        Emit.inst(strf("clr%c", SC), {Dst});
      else if (!Src.sameLocation(Dst))
        Emit.inst(strf("mov%c", SC), {Src, Dst});
      reclaim(Src);
      reclaim(Dst);
      return;
    }
    default: {
      Operand V = genExpr(S); // expression statement
      reclaim(V);
      return;
    }
    }
  }

  //===--- operands ------------------------------------------------------------
  Operand lvalueOperand(Node *N) {
    switch (N->Opcode) {
    case Op::Name:
      return Operand::abs(N->Sym, N->Type);
    case Op::Dreg:
      return Operand::reg(N->Reg, N->Type);
    case Op::Indir:
      return memOperand(N);
    default:
      fatal(strf("baseline: bad lvalue %s", opName(N->Opcode)));
      return Operand::imm(0, Ty::L);
    }
  }

  /// Memory operand for an Indir: folds abs / disp(reg); everything else
  /// computes the address into a register ((rN) deferred).
  Operand memOperand(Node *N) {
    Node *Addr = N->left();
    if (Addr->is(Op::Gaddr))
      return Operand::abs(Addr->Sym, N->Type, Addr->Value);
    if (Addr->is(Op::Plus) && Addr->left()->is(Op::Const) &&
        Addr->right()->is(Op::Dreg)) {
      return Operand::disp(Addr->right()->Reg,
                           static_cast<int32_t>(Addr->left()->Value),
                           N->Type);
    }
    if (Addr->is(Op::Dreg))
      return Operand::disp(Addr->Reg, 0, N->Type);
    Operand R = toReg(genExpr(Addr), Ty::L);
    Operand M = Operand::disp(R.Base, 0, N->Type);
    return M;
  }

  Operand toReg(Operand O, Ty T) {
    if (O.isReg() && O.Base >= RegFirstAlloc && O.Base <= RegLastAlloc)
      return O;
    reclaim(O);
    int R = alloc();
    Operand D = Operand::reg(R, T);
    if (O.isReg()) // register variable: copy to a scratch register
      Emit.inst("movl", {O, D});
    else
      Emit.inst(strf("mov%c", scOf(T)), {O, D});
    return D;
  }

  /// Converts \p O (typed \p From) to width of \p To if narrower.
  Operand widenTo(Operand O, Ty From, Ty To) {
    if (sizeOfTy(From) >= sizeOfTy(To))
      return O;
    if (O.isImm())
      return Operand::imm(O.Disp, To);
    reclaim(O);
    int R = alloc();
    Operand D = Operand::reg(R, To);
    const char *Opc = isUnsignedTy(From) ? "movz" : "cvt";
    Emit.instRaw(strf("%s%c%c", Opc, suffixChar(From), suffixChar(To)),
                 {formatOperand(O, P.Syms), formatOperand(D, P.Syms)});
    return D;
  }

  //===--- expressions ----------------------------------------------------------
  Operand genExpr(Node *N) {
    if (Failed)
      return Operand::imm(0, Ty::L);
    Ty T = N->Type;
    char SC = scOf(T);
    switch (N->Opcode) {
    case Op::Const:
      return Operand::imm(N->Value, T);
    case Op::Gaddr: {
      Operand O = Operand::immSym(N->Sym);
      O.Disp = N->Value;
      return O;
    }
    case Op::Name:
      return Operand::abs(N->Sym, T);
    case Op::Dreg:
      return Operand::reg(N->Reg, T);
    case Op::Indir:
      return memOperand(N);
    case Op::Conv: {
      Node *Kid = N->left();
      Operand S = genExpr(Kid);
      if (S.isImm())
        return Operand::imm(truncateToTy(S.Disp, T), T);
      if (sizeOfTy(Kid->Type) < sizeOfTy(T))
        return widenTo(S, Kid->Type, T);
      reclaim(S);
      int R = alloc();
      Operand D = Operand::reg(R, T);
      Emit.instRaw(strf("cvt%c%c", suffixChar(Kid->Type), SC),
                   {formatOperand(S, P.Syms), formatOperand(D, P.Syms)});
      return D;
    }
    case Op::Neg:
    case Op::Com: {
      Operand S = genExpr(N->left());
      S = widenTo(S, N->left()->Type, T);
      reclaim(S);
      int R = alloc();
      Operand D = Operand::reg(R, T);
      Emit.inst(strf("%s%c", N->is(Op::Neg) ? "mneg" : "mcom", SC), {S, D});
      return D;
    }
    case Op::PostInc: {
      // Register autoincrement value (the only form phase 1a leaves).
      Operand Cell = lvalueOperand(N->left());
      int R = alloc();
      Operand D = Operand::reg(R, Ty::L);
      Emit.inst("movl", {Cell, D});
      Emit.inst("addl2", {genExpr(N->right()), Cell});
      return D;
    }
    case Op::PreDec: {
      Operand Cell = lvalueOperand(N->left());
      Emit.inst("subl2", {genExpr(N->right()), Cell});
      int R = alloc();
      Operand D = Operand::reg(R, Ty::L);
      Emit.inst("movl", {Cell, D});
      return D;
    }
    default:
      break;
    }

    if (opArity(N->Opcode) != 2) {
      fatal(strf("baseline cannot generate %s", opName(N->Opcode)));
      return Operand::imm(0, Ty::L);
    }

    // Binary operators. Evaluate the hungrier side first.
    Node *LN = N->left(), *RN = N->right();
    Op O = N->Opcode;
    if (isReverseOp(O)) {
      std::swap(LN, RN);
      O = reverseOp(O);
    }
    bool RightFirst = registerNeed(RN) > registerNeed(LN);
    Operand L, R;
    if (RightFirst) {
      R = genExpr(RN);
      L = genExpr(LN);
    } else {
      L = genExpr(LN);
      R = genExpr(RN);
    }
    L = widenTo(L, LN->Type, T);
    R = widenTo(R, RN->Type, T);

    switch (O) {
    case Op::Plus:
      return arith3("add", SC, L, R, /*Reversed=*/false);
    case Op::Minus:
      return arith3("sub", SC, L, R, /*Reversed=*/true);
    case Op::Mul:
      return arith3("mul", SC, L, R, false);
    case Op::Div:
      if (isUnsignedTy(T))
        return libCall("__udiv", L, R);
      return arith3("div", SC, L, R, true);
    case Op::Mod: {
      if (isUnsignedTy(T))
        return libCall("__urem", L, R);
      // q = a / b; q *= b; r = a - q.
      Operand LR = toReg(L, T);
      Operand RS = R.Mode == AMode::AutoInc || R.Mode == AMode::AutoDec
                       ? toReg(R, T)
                       : R;
      int Q = alloc();
      Operand QOp = Operand::reg(Q, T);
      Emit.inst(strf("div%c3", SC), {RS, LR, QOp});
      Emit.inst(strf("mul%c2", SC), {RS, QOp});
      Emit.inst(strf("sub%c3", SC), {QOp, LR, QOp});
      reclaim(LR);
      reclaim(RS);
      return QOp;
    }
    case Op::And: {
      Operand Mask;
      if (L.isImm())
        Mask = Operand::imm(truncateToTy(~L.Disp, T), T);
      else if (R.isImm()) {
        Mask = Operand::imm(truncateToTy(~R.Disp, T), T);
        R = L;
      } else {
        reclaim(L);
        int M = alloc();
        Mask = Operand::reg(M, T);
        Emit.inst(strf("mcom%c", SC), {L, Mask});
      }
      // bicX3 mask,src,dst computes src & ~mask: mask prints first.
      return arith3("bic", SC, Mask, R, false);
    }
    case Op::Or:
      return arith3("bis", SC, L, R, false);
    case Op::Xor:
      return arith3("xor", SC, L, R, false);
    case Op::Lsh: {
      reclaim(L);
      reclaim(R);
      int D = alloc();
      Operand DO = Operand::reg(D, T);
      Emit.inst("ashl", {R, L, DO});
      return DO;
    }
    case Op::Rsh: {
      if (isUnsignedTy(T)) {
        if (R.isImm()) {
          int64_t C = R.Disp;
          reclaim(L);
          int D = alloc();
          Operand DO = Operand::reg(D, T);
          if (C == 0)
            Emit.inst("movl", {L, DO});
          else if (C < 0 || C > 31)
            Emit.inst("clrl", {DO});
          else
            Emit.inst("extzv", {Operand::imm(C, Ty::L),
                                Operand::imm(32 - C, Ty::L), L, DO});
          return DO;
        }
        Operand RS = toReg(R, Ty::L);
        int W = alloc();
        Operand WO = Operand::reg(W, Ty::L);
        Emit.inst("subl3", {RS, Operand::imm(32, Ty::L), WO});
        reclaim(L);
        int D = alloc();
        Operand DO = Operand::reg(D, T);
        Emit.inst("extzv", {RS, WO, L, DO});
        freeReg(W);
        reclaim(RS);
        return DO;
      }
      Operand NegCnt;
      if (R.isImm()) {
        NegCnt = Operand::imm(-R.Disp, Ty::L);
      } else {
        reclaim(R);
        int M = alloc();
        NegCnt = Operand::reg(M, Ty::L);
        Emit.inst("mnegl", {R, NegCnt});
      }
      reclaim(L);
      reclaim(NegCnt);
      int D = alloc();
      Operand DO = Operand::reg(D, T);
      Emit.inst("ashl", {NegCnt, L, DO});
      return DO;
    }
    case Op::Assign: {
      // Embedded assignment (rare post-1a; handle for robustness).
      fatal("baseline: embedded assignment");
      return Operand::imm(0, Ty::L);
    }
    default:
      fatal(strf("baseline cannot generate %s", opName(N->Opcode)));
      return Operand::imm(0, Ty::L);
    }
  }

  /// op3 a,b,dst with the PCC-era inc/dec special case.
  Operand arith3(const char *Base, char SC, Operand L, Operand R,
                 bool Reversed) {
    reclaim(L);
    reclaim(R);
    int D = alloc();
    Operand DO = Operand::reg(D, Ty::L);
    if (std::string_view(Base) == "add" && R.isImm() && R.Disp == 1 &&
        L.isReg() && L.Base == D) {
      Emit.inst(strf("inc%c", SC), {DO});
      return DO;
    }
    if (Reversed)
      Emit.inst(strf("%s%c3", Base, SC), {R, L, DO});
    else
      Emit.inst(strf("%s%c3", Base, SC), {L, R, DO});
    return DO;
  }

  Operand libCall(const char *Fn, Operand L, Operand R) {
    Emit.inst("pushl", {R});
    Emit.inst("pushl", {L});
    reclaim(L);
    reclaim(R);
    if (BusyMask & 1u)
      fatal("baseline: r0 busy across a library call");
    Emit.instRaw("calls", {"$2", Fn});
    BusyMask |= 1u; // claim r0
    return Operand::reg(RegR0, Ty::UL);
  }
};

} // namespace

bool PccCodeGenerator::compile(Program &Prog, std::string &Asm,
                               std::string &Err) {
  Stats = PccStats();
  // The whole baseline compile is one profile phase: the --diff-pcc leg
  // compares it against the GG side's per-phase breakdown.
  ProfilePhaseScope PS(ProfPhase::PccCompile);
  profile().noteCompile();
  Timer T;
  T.start();
  AsmEmitter Emit(Prog.Syms);
  emitDataSection(Prog, Emit);
  Emit.directive(".text");

  for (Function &F : Prog.Functions) {
    // Shared target-independent lowering (phase 1a only); the baseline
    // does its own ordering and spill prevention.
    TransformOptions TO;
    TO.Reorder = false;
    TO.ReverseOps = false;
    TO.PreventSpills = false;
    runPhase1(Prog, F, TO);
    Stats.StatementTrees += F.Body.size();

    Emit.blank();
    Emit.directive(strf(".globl %s", Prog.Syms.text(F.Name).c_str()));
    Emit.labelText(Prog.Syms.text(F.Name));
    Emit.directive(".word 0x0fc0");
    size_t PrologueLine = Emit.lines().size();
    Emit.instRaw("subl2", {"$FRAME", "sp"});

    DiagnosticSink Diags;
    PccFunctionGen Gen(Prog, F, Emit, Diags);
    if (!Gen.run()) {
      Err = Diags.renderAll();
      return false;
    }
    Emit.patchLine(PrologueLine, strf("\tsubl2\t$%d,sp", F.FrameSize));
  }
  T.stop();
  Stats.Seconds = T.seconds();
  Stats.Instructions = Emit.instructionCount();
  Asm += Emit.text();
  Stats.AsmLines = Emit.lineCount();
  return true;
}

bool gg::pccGenStatement(Program &P, Function &F, Node *S, AsmEmitter &Emit,
                         DiagnosticSink &Diags, NodeArena *Arena) {
  // Fallback generation must be all-or-nothing: roll back anything a
  // failed walk emitted so the caller can report a clean module error.
  AsmEmitter::Mark M = Emit.mark();
  PccFunctionGen Gen(P, F, Emit, Diags, Arena);
  if (!Gen.runOne(S)) {
    Emit.rollback(M);
    return false;
  }
  return true;
}
