//===- PccCodeGen.h - hand-coded baseline code generator --------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison baseline: a traditional hand-coded tree-walking code
/// generator in the style of PCC's second pass — a large switch over
/// operators with ad hoc addressing-mode folding, a simple accumulator
/// discipline and a couple of classic idioms (clr, inc/dec, tst).
///
/// Both backends share the front end and the target-independent phase-1a
/// lowering, so the experiments isolate the instruction-selection
/// mechanism: table-driven pattern matching vs. hand-written case
/// analysis. The baseline deliberately folds only the simple addressing
/// modes (register, immediate, absolute, displacement); it does not use
/// indexed, deferred or autoincrement modes, memory-destination
/// three-address forms, or conversion-fused moves — the paper found the
/// pattern matcher's code "as good or better in almost all cases".
///
//===----------------------------------------------------------------------===//

#ifndef GG_PCC_PCCCODEGEN_H
#define GG_PCC_PCCCODEGEN_H

#include "ir/Program.h"
#include "support/Error.h"

#include <cstddef>
#include <string>

namespace gg {

class AsmEmitter;

/// Statistics for one baseline compilation.
struct PccStats {
  double Seconds = 0;
  size_t Instructions = 0;
  size_t AsmLines = 0;
  size_t StatementTrees = 0;
};

/// Compiles IR programs to VAX assembly by direct tree walking.
class PccCodeGenerator {
public:
  /// Compiles \p Prog, appending assembly to \p Asm; false + \p Err on an
  /// unsupported construct (a baseline bug). Failures accumulate in a
  /// DiagnosticSink internally; \p Err is its rendering.
  bool compile(Program &Prog, std::string &Asm, std::string &Err);

  const PccStats &stats() const { return Stats; }

private:
  PccStats Stats;
};

/// Generates code for ONE statement tree of \p F through the baseline,
/// appending to \p Emit — the degradation ladder's per-tree fallback when
/// the table-driven path hits a syntactic block. \p S must already be
/// phase-1 lowered (the baseline walker handles the GG pipeline's
/// canonicalizations: reverse ops, AssignR, PostInc/PreDec, Conv).
/// Register-hungry subtrees and embedded library calls are split into
/// temporaries exactly as the whole-function baseline does; frame cells
/// come from \p F so the caller's prologue patching covers them. Returns
/// false with diagnostics in \p Diags on an unsupported construct,
/// emitting nothing in that case. \p Arena overrides the node arena for
/// splitter temporaries (null = the program's own); parallel compile
/// workers pass a private arena so concurrent recoveries never contend on
/// the shared one.
bool pccGenStatement(Program &P, Function &F, Node *S, AsmEmitter &Emit,
                     DiagnosticSink &Diags, NodeArena *Arena = nullptr);

} // namespace gg

#endif // GG_PCC_PCCCODEGEN_H
