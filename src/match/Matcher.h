//===- Matcher.h - instruction pattern matcher ------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction pattern matcher (paper section 3.3): a table-driven
/// shift/reduce parser invoked once for each expression tree. The matcher
/// consumes the prefix-linearized tree and produces the shift/reduce step
/// sequence; the instruction generation phase replays the reductions,
/// running one semantic action per reduction in the provably correct
/// (bottom-up, left-to-right) order.
///
/// Reduce/reduce ties among equally long rules are decided dynamically via
/// the DynamicChooser hook, mirroring the paper's "choose among them
/// dynamically using semantic attributes".
///
//===----------------------------------------------------------------------===//

#ifndef GG_MATCH_MATCHER_H
#define GG_MATCH_MATCHER_H

#include "ir/Linearize.h"
#include "mdl/Grammar.h"
#include "tablegen/Packing.h"

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace gg {

/// One step of a match: a shift of input token TokenIndex, or a reduction
/// by production ProdId.
struct MatchStep {
  enum StepKind : uint8_t { Shift, Reduce } Kind;
  int TokenIndex = -1; ///< valid for Shift
  int ProdId = -1;     ///< valid for Reduce
};

/// Outcome of matching one tree.
struct MatchResult {
  bool Ok = false;
  std::string Error; ///< syntactic-block description when !Ok
  std::vector<MatchStep> Steps;
};

/// Chooses among reduce candidates (first entry is the statically
/// preferred production). Returns the production id to reduce by.
using DynamicChooser =
    std::function<int(int State, const std::vector<int> &Candidates)>;

/// A reusable matcher bound to one grammar and its packed tables.
class Matcher {
public:
  Matcher(const Grammar &G, const PackedTables &T);

  /// Matches \p Input (a prefix-linearized tree). A parse error here is a
  /// syntactic block: the description failed to cover well-formed input.
  MatchResult match(const std::vector<LinToken> &Input,
                    const DynamicChooser &Chooser = nullptr) const;

  const Grammar &grammar() const { return G; }

private:
  const Grammar &G;
  const PackedTables &T;
  mutable std::unordered_map<std::string, int> TermIndexCache;

  /// Terminal index for a token name, or -1 if the grammar lacks it.
  int termIndexFor(const std::string &Name) const;
};

/// Renders the Appendix-style action listing for a match: one line per
/// shift/reduce step with the production and its semantic action.
std::string renderTrace(const Grammar &G, const std::vector<LinToken> &Input,
                        const MatchResult &R, const Interner &Syms);

} // namespace gg

#endif // GG_MATCH_MATCHER_H
