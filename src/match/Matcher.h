//===- Matcher.h - instruction pattern matcher ------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction pattern matcher (paper section 3.3): a table-driven
/// shift/reduce parser invoked once for each expression tree. The matcher
/// consumes the prefix-linearized tree and produces the shift/reduce step
/// sequence; the instruction generation phase replays the reductions,
/// running one semantic action per reduction in the provably correct
/// (bottom-up, left-to-right) order.
///
/// Reduce/reduce ties among equally long rules are decided dynamically via
/// the DynamicChooser hook, mirroring the paper's "choose among them
/// dynamically using semantic attributes".
///
//===----------------------------------------------------------------------===//

#ifndef GG_MATCH_MATCHER_H
#define GG_MATCH_MATCHER_H

#include "ir/Linearize.h"
#include "mdl/Grammar.h"
#include "support/Deadline.h"
#include "tablegen/Packing.h"

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace gg {

/// One step of a match: a shift of input token TokenIndex, or a reduction
/// by production ProdId.
struct MatchStep {
  enum StepKind : uint8_t { Shift, Reduce } Kind;
  int TokenIndex = -1; ///< valid for Shift
  int ProdId = -1;     ///< valid for Reduce
};

/// Structured description of a syntactic block (§6.2.2): everything the
/// degradation ladder and a description author need to understand why the
/// matcher wedged, instead of a bare string.
struct BlockReport {
  enum class Cause : uint8_t {
    NoAction,        ///< no action for (state, lookahead): a description gap
    UnknownTerminal, ///< the input token is not a grammar terminal at all
    MissingGoto,     ///< no goto after a reduce (corrupt or stale tables)
    DepthCap,        ///< the configured parse-stack depth cap was exceeded
    Budget           ///< the request's RequestBudget stopped the parse
                     ///< (BudgetWhy says why); never recovered via fallback
  };
  Cause Why = Cause::NoAction;
  /// Valid when Why == Cause::Budget: which budget dimension tripped.
  BudgetStop BudgetWhy = BudgetStop::None;
  int State = -1;           ///< parser state at the block
  size_t TokenPos = 0;      ///< input position of the offending lookahead
  size_t StackDepth = 0;    ///< parse-stack depth at the block
  std::string Lookahead;    ///< offending token, or "$end"
  /// Grammar symbols on the parse stack, bottom to top — the viable prefix
  /// the tables could not extend.
  std::vector<std::string> ViablePrefix;
  /// Terminals for which the blocking state does have an action; the
  /// "nearest shiftable terminals" a description fix would target.
  std::vector<std::string> ShiftableTerms;

  /// One-line human rendering (used as MatchResult::Error).
  std::string render() const;
};

/// Outcome of matching one tree.
struct MatchResult {
  bool Ok = false;
  std::string Error; ///< syntactic-block description when !Ok
  std::optional<BlockReport> Block; ///< structured cause when !Ok
  std::vector<MatchStep> Steps;
};

/// Tunables for one Matcher instance.
struct MatcherOptions {
  /// Parse-stack depth cap: a pathological or fault-injected input yields a
  /// BlockReport (Cause::DepthCap) instead of unbounded growth. Generous by
  /// default — real trees stay well under 100 (match.stack_depth histogram).
  size_t MaxStackDepth = 10000;
};

/// Chooses among reduce candidates (first entry is the statically
/// preferred production). Returns the production id to reduce by.
using DynamicChooser =
    std::function<int(int State, const std::vector<int> &Candidates)>;

/// A reusable matcher bound to one grammar and its packed tables. After
/// construction a Matcher is immutable: match() touches only const state
/// (plus the atomic stats registry), so one instance serves any number of
/// concurrent code-generation workers.
class Matcher {
public:
  Matcher(const Grammar &G, const PackedTables &T, MatcherOptions Opts = {});

  /// Matches \p Input (a prefix-linearized tree). A parse error here is a
  /// syntactic block: the description failed to cover well-formed input.
  /// On failure, MatchResult::Block carries the structured cause.
  /// Thread-safe: may be called concurrently from multiple workers.
  ///
  /// \p Budget, when non-null, is the owning request's quarantine budget:
  /// the loop polls cancellation/deadline/steps every BudgetPollMask+1
  /// steps, honors the budget's tighter stack-depth cap, and charges the
  /// tree's total steps to Budget->StepsUsed on every exit path. A budget
  /// stop surfaces as Cause::Budget, which the degradation ladder treats
  /// as non-recoverable (no PCC fallback: fail fast, free the worker).
  MatchResult match(const std::vector<LinToken> &Input,
                    const DynamicChooser &Chooser = nullptr,
                    RequestBudget *Budget = nullptr) const;

  const Grammar &grammar() const { return G; }
  const MatcherOptions &options() const { return Opts; }

private:
  const Grammar &G;
  const PackedTables &T;
  MatcherOptions Opts;
  /// Terminal name -> dense terminal index, built eagerly at construction
  /// (the grammar is frozen) so match() needs no mutable lookup cache.
  std::unordered_map<std::string, int> TermIndex;

  /// Terminal index for a token name, or -1 if the grammar lacks it.
  int termIndexFor(const std::string &Name) const;
};

/// Renders the Appendix-style action listing for a match: one line per
/// shift/reduce step with the production and its semantic action.
std::string renderTrace(const Grammar &G, const std::vector<LinToken> &Input,
                        const MatchResult &R, const Interner &Syms);

} // namespace gg

#endif // GG_MATCH_MATCHER_H
