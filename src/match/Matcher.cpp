//===- Matcher.cpp - instruction pattern matcher ---------------------------===//

#include "match/Matcher.h"
#include "support/Coverage.h"
#include "support/Profile.h"
#include "support/Stats.h"
#include "support/Strings.h"
#include "support/Trace.h"

#include <algorithm>

using namespace gg;

Matcher::Matcher(const Grammar &G, const PackedTables &T, MatcherOptions Opts)
    : G(G), T(T), Opts(Opts) {
  assert(G.isFrozen() && "matcher requires a frozen grammar");
  // Precompute every terminal's dense index; unknown tokens miss the map
  // and report -1. Eager construction keeps match() free of mutable state,
  // which is what makes one matcher shareable across parallel workers.
  TermIndex.reserve(G.terminals().size());
  for (SymId S : G.terminals())
    TermIndex.emplace(G.symbolName(S), G.termIndex(S));
  // Size the coverage and cost-profile counter arrays while construction
  // is still serial (workers never resize; see support/Coverage.h).
  coverage().sizeGrammar(G.numProductions(), T.numStates(), T.numDynPoints());
  profile().sizeGrammar(G.numProductions(), T.numStates());
}

std::string BlockReport::render() const {
  // Joins up to \p Cap names; real grammars have dozens of shiftable
  // terminals per state and the rendering must stay one line.
  auto Join = [](const std::vector<std::string> &Names, size_t Cap) {
    std::string Out;
    for (size_t I = 0; I < Names.size() && I < Cap; ++I) {
      if (I)
        Out += ' ';
      Out += Names[I];
    }
    if (Names.size() > Cap)
      Out += strf(" ...(%zu more)", Names.size() - Cap);
    return Out;
  };

  std::string Msg;
  switch (Why) {
  case Cause::UnknownTerminal:
    Msg = strf("no terminal symbol '%s' in the machine description (token %zu)",
               Lookahead.c_str(), TokenPos);
    break;
  case Cause::MissingGoto:
    Msg = strf("internal error: missing goto for '%s' in state %d "
               "(token %zu)",
               Lookahead.c_str(), State, TokenPos);
    break;
  case Cause::DepthCap:
    Msg = strf("syntactic block: parse stack depth %zu exceeded the cap in "
               "state %d at token %zu ('%s')",
               StackDepth, State, TokenPos, Lookahead.c_str());
    break;
  case Cause::NoAction:
    Msg = strf("syntactic block in state %d at token %zu ('%s')", State,
               TokenPos, Lookahead.c_str());
    break;
  case Cause::Budget:
    Msg = strf("request budget exhausted (%s) in state %d at token %zu",
               budgetStopName(BudgetWhy), State, TokenPos);
    break;
  }
  if (!ViablePrefix.empty())
    Msg += strf("; viable prefix: %s", Join(ViablePrefix, 12).c_str());
  if (!ShiftableTerms.empty())
    Msg += strf("; shiftable here: %s", Join(ShiftableTerms, 8).c_str());
  return Msg;
}

int Matcher::termIndexFor(const std::string &Name) const {
  auto It = TermIndex.find(Name);
  return It == TermIndex.end() ? -1 : It->second;
}

MatchResult Matcher::match(const std::vector<LinToken> &Input,
                           const DynamicChooser &Chooser,
                           RequestBudget *Budget) const {
  // Hot-path telemetry: entry references are stable, so look them up once
  // (and the entries themselves are atomics, safe for concurrent workers).
  StatsRegistry &Reg = stats();
  static std::atomic<uint64_t> &NumTrees = Reg.counter("match.trees");
  static std::atomic<uint64_t> &NumShifts = Reg.counter("match.shifts");
  static std::atomic<uint64_t> &NumReduces = Reg.counter("match.reduces");
  static std::atomic<uint64_t> &NumTies = Reg.counter("match.dynamic_ties");
  static std::atomic<uint64_t> &NumChooser =
      Reg.counter("match.chooser_invocations");
  static std::atomic<uint64_t> &NumBlocks =
      Reg.counter("match.syntactic_blocks");
  static std::atomic<uint64_t> &NumCapHits =
      Reg.counter("match.depth_cap_hits");
  static std::atomic<uint64_t> &NumBudgetStops =
      Reg.counter("match.budget_stops");
  static LogHistogram &DepthHist = Reg.histogram("match.stack_depth");
  static LogHistogram &TokensHist = Reg.histogram("match.tokens_per_tree");
  static LogHistogram &StepsHist = Reg.histogram("match.steps_per_tree");

  // Coverage recording costs one relaxed load per tree when disabled; the
  // per-step recorders below are all behind this flag.
  CoverageRegistry &Cov = coverage();
  const bool Covering = Cov.enabled();

  // Cost attribution costs one relaxed load per tree when off. When on,
  // each step's timestamp delta (since the previous step's end) charges
  // the acting state — a complete projection: the sum over states is the
  // whole matcher loop. Reduce steps additionally charge the production,
  // and a deferred reduce/reduce tie charges the chooser's share to the
  // (state, terminal) dyn point. See support/Profile.h for the timebases.
  ProfileRegistry &Prof = profile();
  const bool Profiling = Prof.instrEnabled();
  const ProfileTimebase ProfTB =
      Profiling ? Prof.timebase() : ProfileTimebase::Cycles;
  uint64_t LastTs = Profiling ? ProfileRegistry::now(ProfTB) : 0;

  TraceSpan Span("match.tree");
  ++NumTrees;
  if (Covering)
    Cov.noteStateVisit(0);

  MatchResult R;
  std::vector<int> StateStack{0};
  std::vector<SymId> SymStack; ///< parallel symbol stack (viable prefix)
  R.Steps.reserve(Input.size() * 3);
  size_t MaxDepth = 1;

  size_t Pos = 0;
  const size_t N = Input.size();
  const int EofIdx = G.termIndex(G.eofSymbol());

  // The request's effective stack cap: the budget may only tighten the
  // matcher's own configured cap, never widen it.
  size_t DepthCap = Opts.MaxStackDepth;
  if (Budget && Budget->MaxStackDepth && Budget->MaxStackDepth < DepthCap)
    DepthCap = Budget->MaxStackDepth;

  // Per-tree distribution bookkeeping runs on every exit path.
  auto Finish = [&] {
    DepthHist.record(MaxDepth);
    TokensHist.record(N);
    StepsHist.record(R.Steps.size());
    NumBlocks += !R.Ok;
    if (Budget)
      Budget->StepsUsed.fetch_add(R.Steps.size(), std::memory_order_relaxed);
    Span.arg("tokens", static_cast<int64_t>(N));
    Span.arg("steps", static_cast<int64_t>(R.Steps.size()));
    Span.arg("max_depth", static_cast<int64_t>(MaxDepth));
  };

  // Fails the match with a structured report; Error is the rendering of
  // Block so string-matching consumers keep working.
  BudgetStop PendingBudgetWhy = BudgetStop::None;
  auto Blocked = [&](BlockReport::Cause Why, std::string Lookahead) {
    BlockReport B;
    B.Why = Why;
    B.BudgetWhy = PendingBudgetWhy;
    B.State = StateStack.back();
    B.TokenPos = Pos;
    B.StackDepth = StateStack.size();
    B.Lookahead = std::move(Lookahead);
    B.ViablePrefix.reserve(SymStack.size());
    for (SymId S : SymStack)
      B.ViablePrefix.push_back(G.symbolName(S));
    for (int TI = 0; TI < T.numTerms(); ++TI)
      if (T.actionAt(B.State, TI).Kind != ActionType::Error)
        B.ShiftableTerms.push_back(G.symbolName(G.terminals()[TI]));
    R.Error = B.render();
    R.Block = std::move(B);
    Finish();
  };

  while (true) {
    // Cooperative quarantine poll (docs/server.md): cancellation, the
    // wall-clock deadline and the step budget, every BudgetPollMask+1
    // steps so a runaway parse aborts promptly without putting a clock
    // read on every iteration.
    if (Budget && (R.Steps.size() & BudgetPollMask) == 0 &&
        Budget->shouldStop(R.Steps.size())) {
      ++NumBudgetStops;
      PendingBudgetWhy = Budget->Stopped.load(std::memory_order_relaxed);
      Blocked(BlockReport::Cause::Budget,
              Pos < N ? Input[Pos].Term : "$end");
      return R;
    }

    int TermIdx;
    if (Pos < N) {
      TermIdx = termIndexFor(Input[Pos].Term);
      if (TermIdx < 0) {
        Blocked(BlockReport::Cause::UnknownTerminal, Input[Pos].Term);
        return R;
      }
    } else {
      TermIdx = EofIdx;
    }

    if (StateStack.size() > DepthCap) {
      // Cap hit: pathological input (or an injected fault) must degrade
      // into a reportable block, not unbounded growth.
      ++NumCapHits;
      Blocked(BlockReport::Cause::DepthCap,
              Pos < N ? Input[Pos].Term : G.symbolName(G.eofSymbol()));
      return R;
    }

    int State = StateStack.back();
    Action A = T.actionAt(State, TermIdx);
    switch (A.Kind) {
    case ActionType::Shift:
      ++NumShifts;
      if (Covering)
        Cov.noteStateVisit(A.Target);
      R.Steps.push_back(
          {MatchStep::Shift, static_cast<int>(Pos), -1});
      StateStack.push_back(A.Target);
      SymStack.push_back(G.terminals()[TermIdx]);
      MaxDepth = std::max(MaxDepth, StateStack.size());
      ++Pos;
      if (Profiling) {
        uint64_t Now = ProfileRegistry::now(ProfTB);
        Prof.chargeState(State, Now - LastTs);
        LastTs = Now;
      }
      break;

    case ActionType::Reduce: {
      ++NumReduces;
      int Prod = A.Target;
      bool DynTie = false;
      uint64_t TieTs = LastTs;
      if (const std::vector<int> *Ties = T.dynChoicesAt(State, TermIdx)) {
        // A longest-rule tie the table constructor deferred to match time
        // (§3.2 "choose among them dynamically using semantic attributes").
        ++NumTies;
        DynTie = true;
        if (Chooser) {
          ++NumChooser;
          std::vector<int> Cands;
          Cands.reserve(Ties->size() + 1);
          Cands.push_back(Prod);
          Cands.insert(Cands.end(), Ties->begin(), Ties->end());
          Prod = Chooser(State, Cands);
        }
        if (Profiling) {
          // The chooser's share lands on the dyn point; the rest of the
          // reduce stays with the production/state below.
          TieTs = ProfileRegistry::now(ProfTB);
          Prof.chargeDyn(State, TermIdx, TieTs - LastTs);
        }
      }
      if (Covering) {
        Cov.noteReduce(Prod);
        if (DynTie)
          Cov.noteDynChoice(State, TermIdx, Prod);
      }
      const Production &P = G.prod(Prod);
      assert(StateStack.size() > P.Rhs.size() && "stack underflow on reduce");
      StateStack.resize(StateStack.size() - P.Rhs.size());
      SymStack.resize(SymStack.size() - P.Rhs.size());
      int GotoState = T.gotoAt(StateStack.back(), G.ntIndex(P.Lhs));
      if (GotoState < 0) {
        // Lookahead carries the stranded nonterminal: corrupt/stale tables,
        // not a description gap.
        Blocked(BlockReport::Cause::MissingGoto, G.symbolName(P.Lhs));
        return R;
      }
      if (Covering)
        Cov.noteStateVisit(GotoState);
      R.Steps.push_back({MatchStep::Reduce, -1, Prod});
      StateStack.push_back(GotoState);
      SymStack.push_back(P.Lhs);
      MaxDepth = std::max(MaxDepth, StateStack.size());
      if (Profiling) {
        uint64_t Now = ProfileRegistry::now(ProfTB);
        Prof.chargeProd(Prod, Now - TieTs);
        Prof.chargeState(State, Now - LastTs);
        LastTs = Now;
      }
      break;
    }

    case ActionType::Accept:
      R.Ok = true;
      Finish();
      return R;

    case ActionType::Error:
      // A parse error on well-formed input is a syntactic block (§6.2.2):
      // the machine description cannot continue this viable prefix.
      Blocked(BlockReport::Cause::NoAction,
              Pos < N ? Input[Pos].Term : "$end");
      return R;
    }
  }
}

std::string gg::renderTrace(const Grammar &G,
                            const std::vector<LinToken> &Input,
                            const MatchResult &R, const Interner &Syms) {
  std::string Out;
  for (const MatchStep &S : R.Steps) {
    if (S.Kind == MatchStep::Shift) {
      const LinToken &Tok = Input[S.TokenIndex];
      Out += strf("shift   %s", Tok.Term.c_str());
      if (Tok.N) {
        switch (Tok.N->Opcode) {
        case Op::Const:
          Out += strf(" (%lld)", static_cast<long long>(Tok.N->Value));
          break;
        case Op::Name:
        case Op::Gaddr:
        case Op::Label:
          Out += strf(" (%s)", Syms.text(Tok.N->Sym).c_str());
          break;
        case Op::Dreg:
          Out += strf(" (%s)", regName(Tok.N->Reg));
          break;
        case Op::Cmp:
          Out += strf(" (%s)", condName(Tok.N->CC));
          break;
        default:
          break;
        }
      }
      Out += '\n';
      continue;
    }
    const Production &P = G.prod(S.ProdId);
    Out += strf("reduce  %s <-", G.symbolName(P.Lhs).c_str());
    for (SymId Sym : P.Rhs)
      Out += strf(" %s", G.symbolName(Sym).c_str());
    Out += strf("   [%s%s%s]", actionKindName(P.Kind),
                P.SemTag.empty() ? "" : " ", P.SemTag.c_str());
    Out += '\n';
  }
  Out += R.Ok ? "accept\n" : strf("error: %s\n", R.Error.c_str());
  return Out;
}
