//===- Matcher.cpp - instruction pattern matcher ---------------------------===//

#include "match/Matcher.h"
#include "support/Stats.h"
#include "support/Strings.h"
#include "support/Trace.h"

#include <algorithm>

using namespace gg;

Matcher::Matcher(const Grammar &G, const PackedTables &T) : G(G), T(T) {
  assert(G.isFrozen() && "matcher requires a frozen grammar");
}

int Matcher::termIndexFor(const std::string &Name) const {
  auto It = TermIndexCache.find(Name);
  if (It != TermIndexCache.end())
    return It->second;
  SymId S = G.lookup(Name);
  int Idx = (S >= 0 && G.isTerminal(S)) ? G.termIndex(S) : -1;
  TermIndexCache.emplace(Name, Idx);
  return Idx;
}

MatchResult Matcher::match(const std::vector<LinToken> &Input,
                           const DynamicChooser &Chooser) const {
  // Hot-path telemetry: entry references are stable, so look them up once.
  StatsRegistry &Reg = stats();
  static uint64_t &NumTrees = Reg.counter("match.trees");
  static uint64_t &NumShifts = Reg.counter("match.shifts");
  static uint64_t &NumReduces = Reg.counter("match.reduces");
  static uint64_t &NumTies = Reg.counter("match.dynamic_ties");
  static uint64_t &NumChooser = Reg.counter("match.chooser_invocations");
  static uint64_t &NumBlocks = Reg.counter("match.syntactic_blocks");
  static LogHistogram &DepthHist = Reg.histogram("match.stack_depth");
  static LogHistogram &TokensHist = Reg.histogram("match.tokens_per_tree");
  static LogHistogram &StepsHist = Reg.histogram("match.steps_per_tree");

  TraceSpan Span("match.tree");
  ++NumTrees;

  MatchResult R;
  std::vector<int> StateStack{0};
  R.Steps.reserve(Input.size() * 3);
  size_t MaxDepth = 1;

  size_t Pos = 0;
  const size_t N = Input.size();
  const int EofIdx = G.termIndex(G.eofSymbol());

  // Per-tree distribution bookkeeping runs on every exit path.
  auto Finish = [&] {
    DepthHist.record(MaxDepth);
    TokensHist.record(N);
    StepsHist.record(R.Steps.size());
    NumBlocks += !R.Ok;
    Span.arg("tokens", static_cast<int64_t>(N));
    Span.arg("steps", static_cast<int64_t>(R.Steps.size()));
    Span.arg("max_depth", static_cast<int64_t>(MaxDepth));
  };

  while (true) {
    int TermIdx;
    if (Pos < N) {
      TermIdx = termIndexFor(Input[Pos].Term);
      if (TermIdx < 0) {
        R.Error = strf("no terminal symbol '%s' in the machine description",
                       Input[Pos].Term.c_str());
        Finish();
        return R;
      }
    } else {
      TermIdx = EofIdx;
    }

    int State = StateStack.back();
    Action A = T.actionAt(State, TermIdx);
    switch (A.Kind) {
    case ActionType::Shift:
      ++NumShifts;
      R.Steps.push_back(
          {MatchStep::Shift, static_cast<int>(Pos), -1});
      StateStack.push_back(A.Target);
      MaxDepth = std::max(MaxDepth, StateStack.size());
      ++Pos;
      break;

    case ActionType::Reduce: {
      ++NumReduces;
      int Prod = A.Target;
      if (const std::vector<int> *Ties = T.dynChoicesAt(State, TermIdx)) {
        // A longest-rule tie the table constructor deferred to match time
        // (§3.2 "choose among them dynamically using semantic attributes").
        ++NumTies;
        if (Chooser) {
          ++NumChooser;
          std::vector<int> Cands;
          Cands.reserve(Ties->size() + 1);
          Cands.push_back(Prod);
          Cands.insert(Cands.end(), Ties->begin(), Ties->end());
          Prod = Chooser(State, Cands);
        }
      }
      const Production &P = G.prod(Prod);
      assert(StateStack.size() > P.Rhs.size() && "stack underflow on reduce");
      StateStack.resize(StateStack.size() - P.Rhs.size());
      int GotoState = T.gotoAt(StateStack.back(), G.ntIndex(P.Lhs));
      if (GotoState < 0) {
        R.Error = strf("internal error: missing goto for '%s' after "
                       "reducing production %d",
                       G.symbolName(P.Lhs).c_str(), Prod);
        Finish();
        return R;
      }
      R.Steps.push_back({MatchStep::Reduce, -1, Prod});
      StateStack.push_back(GotoState);
      MaxDepth = std::max(MaxDepth, StateStack.size());
      break;
    }

    case ActionType::Accept:
      R.Ok = true;
      Finish();
      return R;

    case ActionType::Error: {
      std::string At = Pos < N ? Input[Pos].Term : "$end";
      // A parse error on well-formed input is a syntactic block (§6.2.2):
      // the machine description cannot continue this viable prefix.
      R.Error = strf("syntactic block in state %d at token %zu ('%s')",
                     State, Pos, At.c_str());
      Finish();
      return R;
    }
    }
  }
}

std::string gg::renderTrace(const Grammar &G,
                            const std::vector<LinToken> &Input,
                            const MatchResult &R, const Interner &Syms) {
  std::string Out;
  for (const MatchStep &S : R.Steps) {
    if (S.Kind == MatchStep::Shift) {
      const LinToken &Tok = Input[S.TokenIndex];
      Out += strf("shift   %s", Tok.Term.c_str());
      if (Tok.N) {
        switch (Tok.N->Opcode) {
        case Op::Const:
          Out += strf(" (%lld)", static_cast<long long>(Tok.N->Value));
          break;
        case Op::Name:
        case Op::Gaddr:
        case Op::Label:
          Out += strf(" (%s)", Syms.text(Tok.N->Sym).c_str());
          break;
        case Op::Dreg:
          Out += strf(" (%s)", regName(Tok.N->Reg));
          break;
        case Op::Cmp:
          Out += strf(" (%s)", condName(Tok.N->CC));
          break;
        default:
          break;
        }
      }
      Out += '\n';
      continue;
    }
    const Production &P = G.prod(S.ProdId);
    Out += strf("reduce  %s <-", G.symbolName(P.Lhs).c_str());
    for (SymId Sym : P.Rhs)
      Out += strf(" %s", G.symbolName(Sym).c_str());
    Out += strf("   [%s%s%s]", actionKindName(P.Kind),
                P.SemTag.empty() ? "" : " ", P.SemTag.c_str());
    Out += '\n';
  }
  Out += R.Ok ? "accept\n" : strf("error: %s\n", R.Error.c_str());
  return Out;
}
