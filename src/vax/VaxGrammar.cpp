//===- VaxGrammar.cpp - the VAX machine description -------------------------===//
//
// The description below is the reproduction of the paper's factored VAX
// grammar (sections 4, 6.1-6.4): subtree factoring via the mem/reg/con/
// rval/lval non-terminals, syntactic typing via replication over the size
// classes, hand-written conversion cross products, bridge productions for
// the indexing patterns, and the specific Dreg/Zero branch productions of
// section 6.2.1. Production order matters in two places and is
// deliberate: equally long reduce/reduce candidates are statically
// resolved toward the earlier production, so the widening conversions
// precede the plain load rules (prefer one cvt over load-then-convert)
// and rval glue precedes loads (never load what an instruction can take
// as an operand directly).
//
//===----------------------------------------------------------------------===//

#include "vax/VaxGrammar.h"
#include "support/Strings.h"

using namespace gg;

namespace {

/// Spec-text assembler with printf-style line helper.
class SpecWriter {
public:
  void line(const char *Fmt, ...) __attribute__((format(printf, 2, 3))) {
    va_list Args;
    va_start(Args, Fmt);
    Text += strfv(Fmt, Args);
    va_end(Args);
    Text += '\n';
  }
  void raw(const std::string &S) { Text += S; }
  std::string Text;
};

} // namespace

std::string gg::vaxSpecText(const VaxGrammarOptions &Opts) {
  SpecWriter W;
  int N = Opts.NumSizes < 1 ? 1 : (Opts.NumSizes > 3 ? 3 : Opts.NumSizes);
  bool HasB = N >= 3, HasW = N >= 2;

  W.line("# VAX-11 machine description (integer subset)");
  W.line("# generated generic spec; type-replicated over %d size class(es)",
         N);
  if (N == 3)
    W.line("%%class Y b w l");
  else if (N == 2)
    W.line("%%class Y w l");
  else
    W.line("%%class Y l");
  W.line("%%start stmt");

  // Constant widening must precede the per-type constant rules: in a
  // state where both are complete the static tie-break picks the earlier
  // production, and an immediate retype beats a load-plus-convert chain.
  W.line("# ---- constants ------------------------------------------------");
  if (HasB)
    W.line("con_l <- Const_b : encap conwiden_b_l");
  if (HasW)
    W.line("con_l <- Const_w : encap conwiden_w_l");
  if (HasB && HasW)
    W.line("con_w <- Const_b : encap conwiden_b_w");
  W.raw(R"(
con_Y <- Const_Y : encap imm_Y
con_l <- Zero  : encap imm_l
con_l <- One   : encap imm_l
con_l <- Two   : encap imm_l
con_l <- Four  : encap imm_l
con_l <- Eight : encap imm_l
con_l <- Gaddr_l : encap immsym
)");
  // The special constants may also appear under byte/word operators when
  // the input generator emitted them with long type; cover those contexts
  // too (after the long forms: ties prefer the immediate long retype).
  for (const char *Tok : {"Zero", "One", "Two", "Four", "Eight"}) {
    if (HasB)
      W.line("con_b <- %s : encap imm_b", Tok);
    if (HasW)
      W.line("con_w <- %s : encap imm_w", Tok);
  }
  W.raw(R"(
)");

  W.raw(R"(
# ---- operand categories ------------------------------------------------
rval_Y <- reg_Y : glue
rval_Y <- mem_Y : glue
rval_Y <- con_Y : glue
lval_Y <- mem_Y : glue
lval_l <- Dreg_l : encap dregloc
reg_l  <- Dreg_l : encap usedreg
)");

  // Implicit widening first (preferred over load in static tie-breaks),
  // with the direct byte-to-long forms before the two-step chains so that
  // a long context widens a byte in one cvt instruction.
  if (HasB) {
    W.line("reg_l <- mem_b : emit cvtm_b_l");
    W.line("reg_l <- reg_b : emit cvtr_b_l");
  }
  if (HasW) {
    W.line("reg_l <- mem_w : emit cvtm_w_l");
    W.line("reg_l <- reg_w : emit cvtr_w_l");
  }
  if (HasB && HasW) {
    W.line("reg_w <- mem_b : emit cvtm_b_w");
    W.line("reg_w <- reg_b : emit cvtr_b_w");
  }
  // Plain loads come after the conversions on purpose (see header).
  W.line("reg_Y <- mem_Y : emit load_Y");
  W.line("reg_Y <- con_Y : emit loadcon_Y");

  W.raw(R"(
# ---- memory addressing -------------------------------------------------
mem_Y <- Name_Y : encap abs_Y
mem_Y <- Indir_Y Gaddr_l : encap gabs_Y
mem_Y <- Indir_Y reg_l : encap regdef_Y
mem_Y <- Indir_Y Plus_l con_l reg_l : encap disp_Y
mem_Y <- Indir_Y mem_l : encap def_Y
mem_Y <- Indir_Y Plus_l con_l Plus_l reg_l Mul_l @Y reg_l : encap dxdisp_Y
mem_Y <- Indir_Y Plus_l reg_l Mul_l @Y reg_l : encap dxreg_Y
mem_Y <- Indir_Y Plus_l con_l Mul_l @Y reg_l : encap dxabs_Y

# ---- bridge productions (section 6.2.2) --------------------------------
mem_Y <- Indir_Y Plus_l con_l Plus_l reg_l Mul_l rval_l rval_l : emit bridgedx1_Y bridge
mem_Y <- Indir_Y Plus_l reg_l Mul_l rval_l rval_l : emit bridgedx2_Y bridge
mem_Y <- Indir_Y Plus_l con_l Mul_l rval_l rval_l : emit bridgedx3_Y bridge

# ---- autoincrement / autodecrement (section 6.1) ------------------------
mem_Y <- Indir_Y PostInc_l Dreg_l @Y : encap autoinc_Y
mem_Y <- Indir_Y PreDec_l Dreg_l @Y : encap autodec_Y
reg_l <- PostInc_l Dreg_l con_l : emit postinc_l
reg_l <- PreDec_l Dreg_l con_l : emit predec_l
)");

  // Explicit conversion operators (hand-written cross product, §6.4).
  if (HasB && HasW) {
    W.line("reg_w <- Cvt_b_w rval_b : emit cvt_b_w");
    W.line("reg_b <- Cvt_w_b rval_w : emit cvt_w_b");
  }
  if (HasB) {
    W.line("reg_l <- Cvt_b_l rval_b : emit cvt_b_l");
    W.line("reg_b <- Cvt_l_b rval_l : emit cvt_l_b");
  }
  if (HasW) {
    W.line("reg_l <- Cvt_w_l rval_w : emit cvt_w_l");
    W.line("reg_w <- Cvt_l_w rval_l : emit cvt_l_w");
  }

  W.raw(R"(
# ---- register-target arithmetic ----------------------------------------
reg_Y <- Plus_Y rval_Y rval_Y : emit add_Y
reg_Y <- Minus_Y rval_Y rval_Y : emit sub_Y
reg_Y <- Mul_Y rval_Y rval_Y : emit mul_Y
reg_Y <- Div_Y rval_Y rval_Y : emit div_Y
reg_Y <- Mod_Y rval_Y rval_Y : emit mod_Y
reg_Y <- And_Y rval_Y rval_Y : emit and_Y
reg_Y <- Or_Y rval_Y rval_Y : emit bis_Y
reg_Y <- Xor_Y rval_Y rval_Y : emit xor_Y
reg_l <- Lsh_l rval_l rval_l : emit ash_l
reg_l <- Rsh_l rval_l rval_l : emit rsh_l
reg_Y <- Neg_Y rval_Y : emit neg_Y
reg_Y <- Com_Y rval_Y : emit com_Y

# ---- assignments (memory- or register-destination instructions) --------
stmt <- Assign_Y lval_Y rval_Y : emit mov_Y
stmt <- Assign_Y lval_Y Plus_Y rval_Y rval_Y : emit add3_Y
stmt <- Assign_Y lval_Y Minus_Y rval_Y rval_Y : emit sub3_Y
stmt <- Assign_Y lval_Y Mul_Y rval_Y rval_Y : emit mul3_Y
stmt <- Assign_Y lval_Y Div_Y rval_Y rval_Y : emit div3_Y
stmt <- Assign_Y lval_Y Mod_Y rval_Y rval_Y : emit mod3_Y
stmt <- Assign_Y lval_Y And_Y rval_Y rval_Y : emit and3_Y
stmt <- Assign_Y lval_Y Or_Y rval_Y rval_Y : emit bis3_Y
stmt <- Assign_Y lval_Y Xor_Y rval_Y rval_Y : emit xor3_Y
stmt <- Assign_l lval_l Lsh_l rval_l rval_l : emit ash3_l
stmt <- Assign_l lval_l Rsh_l rval_l rval_l : emit rsh3_l
stmt <- Assign_Y lval_Y Neg_Y rval_Y : emit neg2_Y
stmt <- Assign_Y lval_Y Com_Y rval_Y : emit com2_Y

# ---- assignment-embedded conversions (single cvt instruction) ----------
)");
  if (HasB && HasW) {
    W.line("stmt <- Assign_w lval_w mem_b : emit cvta_b_w");
    W.line("stmt <- Assign_b lval_b Cvt_w_b rval_w : emit cvta_w_b");
  }
  if (HasB) {
    W.line("stmt <- Assign_l lval_l mem_b : emit cvta_b_l");
    W.line("stmt <- Assign_b lval_b Cvt_l_b rval_l : emit cvta_l_b");
  }
  if (HasW) {
    W.line("stmt <- Assign_l lval_l mem_w : emit cvta_w_l");
    W.line("stmt <- Assign_w lval_w Cvt_l_w rval_l : emit cvta_l_w");
  }

  W.raw(R"(
# ---- branches (sections 6.1 / 6.2.1) ------------------------------------
stmt <- CBranch Cmp_Y rval_Y rval_Y Label : emit cmpbr_Y
stmt <- CBranch Cmp_l reg_l Zero Label : emit tstbr_l
stmt <- CBranch Cmp_l Dreg_l Zero Label : emit dregbr_l

# ---- calls --------------------------------------------------------------
stmt <- Push_l rval_l : emit push_l
)");

  if (Opts.ReverseOps) {
    W.raw(R"(
# ---- reverse operators (phase 1c, section 5.1.3) ------------------------
reg_Y <- MinusR_Y rval_Y rval_Y : emit subr_Y
reg_Y <- DivR_Y rval_Y rval_Y : emit divr_Y
reg_Y <- ModR_Y rval_Y rval_Y : emit modr_Y
reg_l <- LshR_l rval_l rval_l : emit ashr_l
reg_l <- RshR_l rval_l rval_l : emit rshr_l
stmt <- Assign_Y lval_Y MinusR_Y rval_Y rval_Y : emit sub3r_Y
stmt <- Assign_Y lval_Y DivR_Y rval_Y rval_Y : emit div3r_Y
stmt <- Assign_Y lval_Y ModR_Y rval_Y rval_Y : emit mod3r_Y
stmt <- Assign_l lval_l LshR_l rval_l rval_l : emit ash3r_l
stmt <- Assign_l lval_l RshR_l rval_l rval_l : emit rsh3r_l
stmt <- AssignR_Y rval_Y lval_Y : emit movr_Y
stmt <- AssignR_Y Plus_Y rval_Y rval_Y lval_Y : emit add3s_Y
stmt <- AssignR_Y Minus_Y rval_Y rval_Y lval_Y : emit sub3s_Y
stmt <- AssignR_Y Mul_Y rval_Y rval_Y lval_Y : emit mul3s_Y
stmt <- AssignR_Y Div_Y rval_Y rval_Y lval_Y : emit div3s_Y
stmt <- AssignR_Y Mod_Y rval_Y rval_Y lval_Y : emit mod3s_Y
stmt <- AssignR_Y And_Y rval_Y rval_Y lval_Y : emit and3s_Y
stmt <- AssignR_Y Or_Y rval_Y rval_Y lval_Y : emit bis3s_Y
stmt <- AssignR_Y Xor_Y rval_Y rval_Y lval_Y : emit xor3s_Y
stmt <- AssignR_l Lsh_l rval_l rval_l lval_l : emit ash3s_l
stmt <- AssignR_l Rsh_l rval_l rval_l lval_l : emit rsh3s_l
stmt <- AssignR_Y MinusR_Y rval_Y rval_Y lval_Y : emit sub3sr_Y
stmt <- AssignR_Y DivR_Y rval_Y rval_Y lval_Y : emit div3sr_Y
stmt <- AssignR_Y ModR_Y rval_Y rval_Y lval_Y : emit mod3sr_Y
stmt <- AssignR_l LshR_l rval_l rval_l lval_l : emit ash3sr_l
stmt <- AssignR_l RshR_l rval_l rval_l lval_l : emit rsh3sr_l
stmt <- AssignR_Y Neg_Y rval_Y lval_Y : emit neg2s_Y
stmt <- AssignR_Y Com_Y rval_Y lval_Y : emit com2s_Y
)");
    if (HasB && HasW) {
      W.line("stmt <- AssignR_w mem_b lval_w : emit cvtas_b_w");
      W.line("stmt <- AssignR_b Cvt_w_b rval_w lval_b : emit cvtas_w_b");
    }
    if (HasB) {
      W.line("stmt <- AssignR_l mem_b lval_l : emit cvtas_b_l");
      W.line("stmt <- AssignR_b Cvt_l_b rval_l lval_b : emit cvtas_l_b");
    }
    if (HasW) {
      W.line("stmt <- AssignR_l mem_w lval_l : emit cvtas_w_l");
      W.line("stmt <- AssignR_w Cvt_l_w rval_l lval_w : emit cvtas_l_w");
    }
  }

  return W.Text;
}

bool gg::buildVaxGrammar(Grammar &G, MdSpec &Spec, DiagnosticSink &Diags,
                         const VaxGrammarOptions &Opts) {
  std::string Text = vaxSpecText(Opts);
  if (!parseSpec(Text, Spec, Diags))
    return false;
  if (!Spec.expand(G, Diags))
    return false;
  G.freeze();
  G.validate(Diags);
  return !Diags.hasErrors();
}

uint32_t gg::vaxTerminalCategory(std::string_view TermName) {
  // Category = (arity << 4) | size-class, for the operator terminals that
  // should be uniformly accepted wherever a same-shape operator is.
  auto SizeBits = [&](char C) -> uint32_t {
    switch (C) {
    case 'b':
      return 1;
    case 'w':
      return 2;
    case 'l':
      return 3;
    default:
      return 0;
    }
  };
  size_t Underscore = TermName.rfind('_');
  if (Underscore == std::string_view::npos || Underscore + 2 != TermName.size())
    return 0;
  uint32_t SC = SizeBits(TermName[Underscore + 1]);
  if (!SC)
    return 0;
  std::string_view Base = TermName.substr(0, Underscore);
  static const char *const Binary[] = {"Plus", "Minus", "Mul",    "Div",
                                       "Mod",  "And",   "Or",     "Xor",
                                       "MinusR", "DivR", "ModR"};
  for (const char *B : Binary)
    if (Base == B)
      return (2u << 4) | SC;
  // Indir is deliberately NOT grouped with Neg/Com: Indir is viable in
  // lvalue positions (assignment destinations) where value operators are
  // correctly rejected, which would be a false block report.
  static const char *const Unary[] = {"Neg", "Com"};
  for (const char *U : Unary)
    if (Base == U)
      return (1u << 4) | SC;
  // Lsh/Rsh exist only at size l and would generate false reports at b/w;
  // the conversion operators carry two size suffixes and are exempt too.
  return 0;
}
