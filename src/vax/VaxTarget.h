//===- VaxTarget.h - bundled VAX tables and matcher -------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bundles the static per-target artifacts: the expanded grammar, the
/// constructed parse tables (packed), and a matcher over them. These are
/// "used once for each target machine" (paper section 3) and shared by
/// every compilation.
///
//===----------------------------------------------------------------------===//

#ifndef GG_VAX_VAXTARGET_H
#define GG_VAX_VAXTARGET_H

#include "match/Matcher.h"
#include "mdl/SpecParser.h"
#include "tablegen/Packing.h"
#include "tablegen/TableBuilder.h"
#include "vax/VaxGrammar.h"

#include <memory>
#include <string>

namespace gg {

/// Immutable per-target state; create once, compile many programs.
class VaxTarget {
public:
  /// Builds grammar + tables + matcher. Returns null and sets \p Err on
  /// description errors. \p TableOpts chooses the construction algorithm
  /// (experiment E4); the block-check category function is installed
  /// automatically. \p MatchOpts tunes the matcher (stack-depth cap).
  static std::unique_ptr<VaxTarget>
  create(std::string &Err, const VaxGrammarOptions &GrammarOpts = {},
         BuildOptions TableOpts = {}, MatcherOptions MatchOpts = {});

  const Grammar &grammar() const { return G; }
  const MdSpec &spec() const { return Spec; }
  const BuildResult &build() const { return Build; }
  const PackedTables &packed() const { return Packed; }
  const Matcher &matcher() const { return *M; }

  /// Grammar/tables identity (hex digest) embedded in `gg-coverage-v1`
  /// artifacts; gg-report matches it before naming ids from a rebuilt
  /// target.
  static std::string fingerprint(const Grammar &G, const PackedTables &T);

private:
  VaxTarget() = default;
  Grammar G;
  MdSpec Spec;
  BuildResult Build;
  PackedTables Packed;
  std::unique_ptr<Matcher> M;
};

} // namespace gg

#endif // GG_VAX_VAXTARGET_H
