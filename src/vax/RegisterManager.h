//===- RegisterManager.h - stack-discipline register allocation -*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register manager of paper section 5.3.3: "extremely simple and
/// unsophisticated". r0-r5 are allocatable scratch registers handed out
/// with a stack discipline; r6-r11 are register variables assigned by the
/// front end (dedicated registers). When no register is free, the one at
/// the bottom of the stack is spilled to a compiler-generated *virtual
/// register* (a frame temporary) and reloaded just before its next use.
///
//===----------------------------------------------------------------------===//

#ifndef GG_VAX_REGISTERMANAGER_H
#define GG_VAX_REGISTERMANAGER_H

#include "ir/Node.h"
#include "vax/Operand.h"

#include <functional>
#include <string>
#include <vector>

namespace gg {

/// Statistics for the register-pressure experiment (E10).
struct RegAllocStats {
  unsigned Allocations = 0;
  unsigned Spills = 0;
  unsigned Unspills = 0;
  unsigned MaxLive = 0;
};

/// Allocates the scratch registers r0..r5 with a stack discipline.
class RegisterManager {
public:
  /// \p SpillStore is invoked to emit the store of a spilled register and
  /// to rewrite any semantic-stack operand holding it; it receives the
  /// register and the virtual-register cell operand.
  /// \p AllocSpillCell allocates a fresh frame cell and returns its fp
  /// offset (negative).
  /// \p Spillable tells whether a register's value can be relocated (it
  /// must live as a plain register operand on the semantic stack below the
  /// reduction currently in flight; values held in handler locals or in
  /// composite addressing modes cannot be rewritten after the fact).
  /// \p OnError, when set, is invoked with a description of a recoverable
  /// allocation failure (exhaustion, unevictable register); the manager
  /// never aborts the process for input-dependent conditions — the caller
  /// fails the current tree and the degradation ladder takes over.
  RegisterManager(std::function<void(int, const Operand &)> SpillStore,
                  std::function<int()> AllocSpillCell,
                  std::function<bool(int)> Spillable,
                  std::function<void(const std::string &)> OnError = nullptr)
      : SpillStore(std::move(SpillStore)),
        AllocSpillCell(std::move(AllocSpillCell)),
        Spillable(std::move(Spillable)), OnError(std::move(OnError)) {}

  static bool isAllocatable(int R) {
    return R >= RegFirstAlloc && R <= RegLastAlloc;
  }

  /// Allocates a register, spilling the oldest unpinned one if necessary.
  /// If every register is pinned (phase 1's spill prevention exists to
  /// keep that from happening), reports a recoverable error via OnError /
  /// lastError() and returns RegFirstAlloc — a defined value the caller's
  /// sticky-error check discards along with the rest of the tree.
  int alloc();

  /// Allocates, preferring to reuse an allocatable source register that
  /// this instruction is about to free ("the register manager attempts to
  /// reclaim and reuse allocatable registers from the source operands").
  /// The preferred sources must be released by the caller via takeOver.
  int allocPreferring(const Operand &A, const Operand &B);

  void free(int R);

  /// Frees every allocatable register the operand references (Reg base,
  /// Disp/Indexed/deferred bases, index registers), except \p KeepReg.
  void reclaim(const Operand &O, int KeepReg = -1);

  /// Pins a register so the spiller will not pick it (registers embedded
  /// in composite addressing modes cannot be rewritten after a spill).
  void pin(int R);
  void unpin(int R);

  /// Claims a specific free register (used for r0 after library calls).
  void claim(int R);

  /// Forces \p R free by spilling its current value. Returns false (with
  /// a recoverable error reported) if the register is pinned or not
  /// relocatable; the register stays busy in that case.
  bool evict(int R);

  /// True if evict(R) would succeed (busy, unpinned, relocatable) —
  /// callers with an alternative strategy probe this instead of letting
  /// evict report an error.
  bool canEvict(int R) const {
    return isAllocatable(R) && Busy[R] && PinCount[R] == 0 && Spillable(R);
  }

  /// Transfers busy state and pins from \p From to \p To (register-to-
  /// register relocation; \p To must be freshly allocated by the caller).
  void transferPins(int From, int To) {
    if (isAllocatable(From) && isAllocatable(To)) {
      PinCount[To] += PinCount[From];
      PinCount[From] = 0;
    }
  }

  bool isBusy(int R) const { return Busy[R]; }
  int numFree() const;

  const RegAllocStats &stats() const { return Stats; }
  void noteUnspill();

  /// Resets all allocation state (between statements the expression stack
  /// must be empty; this asserts nothing is still live). Also clears any
  /// sticky error.
  void resetForStatement();

  /// True if any register is still busy (diagnostic for leak checks).
  bool anyBusy() const;

  /// First recoverable error since the last resetForStatement(), or empty.
  /// Errors are sticky so a caller without an OnError callback can still
  /// detect failure after the fact.
  const std::string &lastError() const { return LastError; }
  bool hasError() const { return !LastError.empty(); }

private:
  std::function<void(int, const Operand &)> SpillStore;
  std::function<int()> AllocSpillCell;
  std::function<bool(int)> Spillable;
  std::function<void(const std::string &)> OnError;
  bool Busy[RegLastAlloc + 1] = {};
  int PinCount[RegLastAlloc + 1] = {};
  std::vector<int> BusyOrder; ///< allocation order; front = oldest
  RegAllocStats Stats;
  std::string LastError;

  bool spillOne();
  void markBusy(int R);
  void reportError(const std::string &Message);
  /// Highest allocatable register, honoring an injected cap-regs fault.
  int lastAllocatable() const;
};

} // namespace gg

#endif // GG_VAX_REGISTERMANAGER_H
