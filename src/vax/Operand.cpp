//===- Operand.cpp - VAX addressing-mode descriptors ------------------------===//

#include "vax/Operand.h"
#include "support/Error.h"
#include "support/Strings.h"

using namespace gg;

std::string gg::formatOperand(const Operand &O, const Interner &Syms) {
  switch (O.Mode) {
  case AMode::None:
    gg_unreachable("formatting an empty operand");
  case AMode::Reg:
    return regName(O.Base);
  case AMode::Imm:
    return strf("$%lld", static_cast<long long>(O.Disp));
  case AMode::ImmSym:
    if (O.Disp)
      return strf("$%s+%lld", Syms.text(O.Sym).c_str(),
                  static_cast<long long>(O.Disp));
    return strf("$%s", Syms.text(O.Sym).c_str());
  case AMode::Abs:
    if (O.Disp)
      return strf("%s+%lld", Syms.text(O.Sym).c_str(),
                  static_cast<long long>(O.Disp));
    return Syms.text(O.Sym);
  case AMode::Disp:
    if (!O.Sym.isEmpty()) {
      // Symbolic displacement: the address of a global used as the offset
      // from a register (e.g. a Gaddr folded into a disp pattern).
      if (O.Disp)
        return strf("%s+%lld(%s)", Syms.text(O.Sym).c_str(),
                    static_cast<long long>(O.Disp), regName(O.Base));
      return strf("%s(%s)", Syms.text(O.Sym).c_str(), regName(O.Base));
    }
    if (O.Disp)
      return strf("%lld(%s)", static_cast<long long>(O.Disp),
                  regName(O.Base));
    return strf("(%s)", regName(O.Base));
  case AMode::DispDef:
    return strf("*%lld(%s)", static_cast<long long>(O.Disp),
                regName(O.Base));
  case AMode::AbsDef:
    if (O.Disp)
      return strf("*%s+%lld", Syms.text(O.Sym).c_str(),
                  static_cast<long long>(O.Disp));
    return strf("*%s", Syms.text(O.Sym).c_str());
  case AMode::Indexed: {
    std::string Basis;
    if (!O.Sym.isEmpty())
      Basis = O.Disp ? strf("%s+%lld", Syms.text(O.Sym).c_str(),
                            static_cast<long long>(O.Disp))
                     : Syms.text(O.Sym);
    else if (O.Base < 0)
      // Absolute indexed (a constant folded into the basis with no base
      // register, e.g. Indir(Plus(con, Mul(scale, reg)))): disp[rX].
      Basis = strf("%lld", static_cast<long long>(O.Disp));
    else
      Basis = O.Disp ? strf("%lld(%s)", static_cast<long long>(O.Disp),
                            regName(O.Base))
                     : strf("(%s)", regName(O.Base));
    return strf("%s[%s]", Basis.c_str(), regName(O.Index));
  }
  case AMode::AutoInc:
    return strf("(%s)+", regName(O.Base));
  case AMode::AutoDec:
    return strf("-(%s)", regName(O.Base));
  case AMode::LabelRef:
    return Syms.text(O.Sym);
  }
  gg_unreachable("bad addressing mode");
}
