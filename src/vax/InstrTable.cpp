//===- InstrTable.cpp - the hand-written instruction table ------------------===//

#include "vax/InstrTable.h"
#include "support/Strings.h"

#include <cassert>
#include <iterator>

using namespace gg;

namespace {
const InstCluster Clusters[] = {
    {"add", ClusterKind::Arith3, "add", true, RangeIdiom::AddSub,
     "addX3 / addX2 / incX,decX"},
    {"sub", ClusterKind::Arith3, "sub", false, RangeIdiom::AddSub,
     "subX3 s1,s2,d computes s2-s1; / subX2 / decX,incX"},
    {"mul", ClusterKind::Arith3, "mul", true, RangeIdiom::Mul,
     "mulX3 / mulX2 / ashl for powers of two (long)"},
    {"div", ClusterKind::Arith3, "div", false, RangeIdiom::Div,
     "divX3 s1,s2,d computes s2/s1; unsigned via library call"},
    {"mod", ClusterKind::Special, nullptr, false, RangeIdiom::None,
     "pseudo-instruction: div/mul/sub expansion; unsigned via library"},
    {"and", ClusterKind::Special, "bic", true, RangeIdiom::None,
     "no VAX and: bicX with complemented mask (mcom for non-constants)"},
    {"bis", ClusterKind::Arith3, "bis", true, RangeIdiom::BisXor,
     "bisX3 / bisX2 / mov for |$0"},
    {"xor", ClusterKind::Arith3, "xor", true, RangeIdiom::BisXor,
     "xorX3 / xorX2 / mov for ^$0"},
    {"ash", ClusterKind::Special, "ashl", false, RangeIdiom::None,
     "ashl cnt,src,dst; right shifts negate the count"},
    {"rsh", ClusterKind::Special, "ashl", false, RangeIdiom::None,
     "arithmetic: ashl -cnt; unsigned (logical): extzv expansion"},
    {"mov", ClusterKind::Move, "mov", false, RangeIdiom::Mov,
     "movX / clrX for $0 / elided when src==dst"},
    {"neg", ClusterKind::Unary2, "mneg", false, RangeIdiom::None, "mnegX"},
    {"com", ClusterKind::Unary2, "mcom", false, RangeIdiom::None, "mcomX"},
    {"cmp", ClusterKind::Special, "cmp", false, RangeIdiom::Cmp,
     "cmpX / tstX against zero"},
    {"push", ClusterKind::Special, "push", false, RangeIdiom::None,
     "pushl (arguments are longs)"},
};
} // namespace

const InstCluster *gg::findCluster(std::string_view TagBase) {
  for (const InstCluster &C : Clusters)
    if (TagBase == C.Tag)
      return &C;
  return nullptr;
}

size_t gg::numClusters() { return std::size(Clusters); }

const InstCluster &gg::clusterAt(size_t Row) {
  assert(Row < std::size(Clusters));
  return Clusters[Row];
}

int gg::clusterId(const InstCluster &C) {
  assert(&C >= Clusters && &C < Clusters + std::size(Clusters) &&
         "cluster not from this table");
  return static_cast<int>(&C - Clusters);
}

std::string gg::mnemonic(const char *Base, char SizeChar, int NumOps) {
  if (NumOps)
    return strf("%s%c%d", Base, SizeChar, NumOps);
  return strf("%s%c", Base, SizeChar);
}

std::string gg::renderInstrTable() {
  std::string Out;
  Out += strf("%-6s %-8s %-10s %-5s %s\n", "op", "kind", "mnemonic", "-o-o",
              "idioms");
  for (const InstCluster &C : Clusters) {
    const char *Kind = C.Kind == ClusterKind::Arith3   ? "arith3"
                       : C.Kind == ClusterKind::Unary2 ? "unary2"
                       : C.Kind == ClusterKind::Move   ? "move"
                                                       : "special";
    Out += strf("%-6s %-8s %-10s %-5s %s\n", C.Tag, Kind,
                C.OpBase ? C.OpBase : "-", C.Swappable ? "yes" : "no",
                C.Note);
  }
  return Out;
}
