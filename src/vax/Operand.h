//===- Operand.h - VAX addressing-mode descriptors --------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic operand descriptors: the attribute each encapsulating
/// reduction "condenses" (paper section 5.2). An Operand captures one VAX
/// addressing mode; formatOperand() is the hand-written addressing-mode
/// format table of phase 4 (section 5.4).
///
//===----------------------------------------------------------------------===//

#ifndef GG_VAX_OPERAND_H
#define GG_VAX_OPERAND_H

#include "ir/Node.h"
#include "support/Interner.h"

#include <string>

namespace gg {

/// VAX addressing modes this code generator uses.
enum class AMode : uint8_t {
  None,    ///< empty / not yet set
  Reg,     ///< rN
  Imm,     ///< $literal
  ImmSym,  ///< $name (address constant)
  Abs,     ///< name+disp (direct global reference)
  Disp,    ///< disp(rN), printed (rN) when disp == 0
  DispDef, ///< *disp(rN) — displacement deferred
  AbsDef,  ///< *name — absolute deferred
  Indexed, ///< base[rX]; base is Abs or Disp per Sym/Base fields
  AutoInc, ///< (rN)+
  AutoDec, ///< -(rN)
  LabelRef ///< branch target
};

/// One operand descriptor.
struct Operand {
  AMode Mode = AMode::None;
  Ty Type = Ty::L;       ///< access type of the cell / value
  int Base = -1;         ///< base register (Disp/DispDef/Reg/AutoInc/AutoDec)
  int Index = -1;        ///< index register (Indexed)
  int64_t Disp = 0;      ///< displacement or immediate value
  InternedString Sym;    ///< symbol (Abs/AbsDef/ImmSym/LabelRef/indexed-abs)
  /// This operand's register was spilled to a virtual register; Base/Disp
  /// now address the spill cell and the value must be reloaded before use.
  bool Spilled = false;
  /// This operand denotes a dedicated register *location* (Dreg leaf),
  /// not a value the register manager allocated; spilling and relocation
  /// must never rewrite it.
  bool DregRef = false;

  bool isReg() const { return Mode == AMode::Reg; }
  bool isImm() const { return Mode == AMode::Imm; }
  bool isMemory() const {
    switch (Mode) {
    case AMode::Abs:
    case AMode::Disp:
    case AMode::DispDef:
    case AMode::AbsDef:
    case AMode::Indexed:
    case AMode::AutoInc:
    case AMode::AutoDec:
      return true;
    default:
      return false;
    }
  }

  static Operand reg(int R, Ty T) {
    Operand O;
    O.Mode = AMode::Reg;
    O.Base = R;
    O.Type = T;
    return O;
  }
  static Operand imm(int64_t V, Ty T) {
    Operand O;
    O.Mode = AMode::Imm;
    O.Disp = V;
    O.Type = T;
    return O;
  }
  static Operand immSym(InternedString S) {
    Operand O;
    O.Mode = AMode::ImmSym;
    O.Sym = S;
    O.Type = Ty::L;
    return O;
  }
  static Operand abs(InternedString S, Ty T, int64_t Off = 0) {
    Operand O;
    O.Mode = AMode::Abs;
    O.Sym = S;
    O.Disp = Off;
    O.Type = T;
    return O;
  }
  static Operand disp(int BaseReg, int64_t D, Ty T) {
    Operand O;
    O.Mode = AMode::Disp;
    O.Base = BaseReg;
    O.Disp = D;
    O.Type = T;
    return O;
  }
  static Operand labelRef(InternedString S) {
    Operand O;
    O.Mode = AMode::LabelRef;
    O.Sym = S;
    return O;
  }

  /// True when two operands denote the same location (used by the binding
  /// idiom recognizer, §5.3.2).
  bool sameLocation(const Operand &O) const {
    return Mode == O.Mode && Base == O.Base && Index == O.Index &&
           Disp == O.Disp && Sym == O.Sym;
  }
};

/// Renders an operand in UNIX VAX assembler syntax (the phase-4
/// addressing-mode format table).
std::string formatOperand(const Operand &O, const Interner &Syms);

} // namespace gg

#endif // GG_VAX_OPERAND_H
