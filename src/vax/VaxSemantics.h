//===- VaxSemantics.h - phase-3 instruction generation ----------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The post-pattern-matching phase (paper section 5.3): replays the
/// matcher's reductions, running one semantic action per reduction.
/// Encapsulating reductions condense attributes into operand descriptors;
/// emitting reductions perform instruction selection through the
/// hand-written instruction table, idiom recognition (binding and range
/// idioms, §5.3.2), pseudo-instruction expansion (signed modulus,
/// unsigned division via library call), register management, and finally
/// output formatting (§5.4).
///
/// This mirrors the paper's organization: these routines are the
/// "VAX-specific routines hand-coded in C" standing behind the grammar's
/// semantic tags.
///
//===----------------------------------------------------------------------===//

#ifndef GG_VAX_VAXSEMANTICS_H
#define GG_VAX_VAXSEMANTICS_H

#include "ir/Program.h"
#include "match/Matcher.h"
#include "vax/Emitter.h"
#include "vax/InstrTable.h"
#include "vax/RegisterManager.h"

#include <string>
#include <vector>

namespace gg {

/// Knobs for the idiom ablation (experiment E6). The idiom recognizer is
/// "optional in the sense that if it were omitted, correct code would
/// still be generated" — pseudo-instruction expansion is not optional and
/// always runs.
struct CgOptions {
  bool BindingIdioms = true; ///< 3-address -> 2-address when bound
  bool RangeIdioms = true;   ///< inc/dec/clr/tst/ashl specializations
  bool CCTracking = true;    ///< skip tst when condition codes are set
};

/// Counters reported by the idiom experiment.
struct IdiomStats {
  unsigned BindingApplied = 0;
  unsigned RangeApplied = 0;
  unsigned CCTestsElided = 0;
  unsigned PseudoExpansions = 0;
};

/// One semantic value on the replay stack: the operand an encapsulating
/// reduction condensed, or the IR leaf a shift captured.
struct SemVal {
  Operand Opnd;
  const Node *Leaf = nullptr;
};

/// Per-function instruction generation state.
class VaxSemantics {
public:
  VaxSemantics(AsmEmitter &Emit, Function &F, const CgOptions &Opts);

  /// Replays one matched statement tree. On failure sets \p Err (this
  /// indicates a description/semantics bug, not bad input).
  bool replay(const Grammar &G, const std::vector<LinToken> &Input,
              const std::vector<MatchStep> &Steps, std::string &Err);

  /// Statement-level helpers used by the driver between matched trees.
  void emitLabel(InternedString L);
  void emitJump(InternedString L);
  void emitCall(InternedString Fn, int NumArgs);
  void emitRet();

  RegisterManager &regs() { return RM; }
  const RegAllocStats &regStats() const { return RM.stats(); }
  const IdiomStats &idiomStats() const { return Idioms; }
  void invalidateCC() { LastCCReg = -1; }

  /// Discards all per-statement state after a failed match or replay so
  /// the next statement starts clean — the degradation ladder calls this
  /// before splicing in fallback code for the failed tree.
  void resetAfterFailure();

private:
  AsmEmitter &Emit;
  Function &F;
  CgOptions Opts;
  RegisterManager RM;
  IdiomStats Idioms;
  std::vector<SemVal> Stack;
  size_t FrameBase = 0;  ///< stack index where the in-flight reduction starts
  int LastCCReg = -1;    ///< register whose value the condition codes hold
  char LastCCSize = 0;   ///< size class character of that value
  std::string ReplayErr; ///< sticky error from a semantic action

  void fail(const std::string &Message);

  // --- operand plumbing --------------------------------------------------
  void spillStore(int Reg, const Operand &Cell);
  bool isSpillable(int Reg) const;
  void prepare(Operand &O);              ///< unspill if needed
  Operand ensureReg(Operand O, char SC); ///< load into a register
  Operand stabilize(Operand O, char SC); ///< strip side-effecting modes
  void setCC(const Operand &O, char SC);

  void emitInst(const std::string &Opcode, const std::vector<Operand> &Ops);

  // --- reduction dispatch --------------------------------------------------
  SemVal dispatch(const Production &P, SemVal *Vals, size_t N);
  SemVal doEncap(const Production &P, SemVal *Vals, size_t N,
                 const std::string &Base, char SC1, char SC2);
  SemVal doEmit(const Production &P, SemVal *Vals, size_t N,
                const std::string &Base, char SC1, char SC2);

  // --- instruction families -------------------------------------------------
  /// Three-operand arithmetic with idioms; returns the result operand.
  /// \p Dst null means "allocate a register destination".
  Operand arith(const InstCluster &C, char SC, bool IsUnsigned, Operand S1,
                Operand S2, const Operand *Dst);
  void move(char SC, Operand Src, Operand Dst);
  Operand unary2(const char *OpBase, char SC, Operand Src,
                 const Operand *Dst);
  Operand convert(char FromSC, char ToSC, bool SrcUnsigned, Operand Src,
                  const Operand *Dst);
  Operand andOp(char SC, Operand S1, Operand S2, const Operand *Dst);
  Operand shift(char SC, bool Right, bool IsUnsigned, Operand Val,
                Operand Cnt, const Operand *Dst);
  Operand modulus(char SC, bool IsUnsigned, Operand A, Operand B,
                  const Operand *Dst);
  Operand libCall2(const char *Fn, Operand A, Operand B, const Operand *Dst);
  void compareBranch(char SC, Cond C, Operand A, Operand B,
                     InternedString Target);
  Operand bridgeAddress(char MemSC, Operand *ConOpt, Operand *BaseOpt,
                        Operand S1, Operand S2);
};

} // namespace gg

#endif // GG_VAX_VAXSEMANTICS_H
