//===- InstrTable.h - the hand-written instruction table --------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hand-written instruction table of paper section 5.3.1 (Figure 3).
/// Each cluster distinguishes among instructions sharing one syntactic
/// pattern: the three-operand form, the two-operand form selected by the
/// *binding idiom* (a source matches the destination), and the variant
/// selected by the *range idiom* (a source is a constant in a special,
/// possibly degenerate, range) — e.g. ADD -> addl3 / addl2 / incl.
///
//===----------------------------------------------------------------------===//

#ifndef GG_VAX_INSTRTABLE_H
#define GG_VAX_INSTRTABLE_H

#include <cstdint>
#include <string>
#include <string_view>

namespace gg {

/// Which range-idiom recognizer applies to a cluster. The recognizers
/// themselves are "functions written in C following a relatively
/// straightforward coding style" (§5.3.2) — see VaxSemantics.cpp.
enum class RangeIdiom : uint8_t {
  None,
  AddSub, ///< +-1 -> inc/dec, +-0 -> mov (or nothing once bound)
  Mov,    ///< $0 -> clr; mov x,x -> elided
  Mul,    ///< power-of-two -> ashl (long only)
  Div,    ///< /1 -> mov
  Cmp,    ///< cmp x,$0 -> tst
  BisXor, ///< |$0 / ^$0 -> mov (or nothing once bound)
};

/// How the generic operation maps onto hardware.
enum class ClusterKind : uint8_t {
  Arith3,  ///< opX3 s1,s2,dst / opX2 s,dst family
  Unary2,  ///< opX src,dst (mneg, mcom)
  Move,    ///< movX / clrX
  Special, ///< expanded in code (and/bic, shifts, mod, unsigned div)
};

/// One instruction-table cluster (a row group of Figure 3).
struct InstCluster {
  const char *Tag;     ///< semantic-tag base ("add", "sub", ...)
  ClusterKind Kind;
  const char *OpBase;  ///< mnemonic base ("add" -> addb3/addw3/addl3)
  bool Swappable;      ///< Figure 3's "-o-o": sources may be exchanged
  RangeIdiom Range;
  const char *Note;    ///< for the Figure-3 style dump
};

/// Looks up the cluster for a semantic-tag base; null if absent.
const InstCluster *findCluster(std::string_view TagBase);

/// Row enumeration for the coverage profiler: the table's rows in
/// Figure-3 order. clusterId() is the dense row id of a cluster returned
/// by findCluster()/clusterAt() — stable for the process lifetime, used
/// as the `instr_rows` dimension of `gg-coverage-v1` artifacts.
size_t numClusters();
const InstCluster &clusterAt(size_t Row);
int clusterId(const InstCluster &C);

/// Renders the whole instruction table in the style of Figure 3.
std::string renderInstrTable();

/// Composes a sized mnemonic: ("add", 'l', 3) -> "addl3"; NumOps 0 omits
/// the operand-count digit ("mnegl", "cmpl", "tstl").
std::string mnemonic(const char *Base, char SizeChar, int NumOps = 0);

} // namespace gg

#endif // GG_VAX_INSTRTABLE_H
