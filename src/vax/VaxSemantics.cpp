//===- VaxSemantics.cpp - phase-3 instruction generation ---------------------===//

#include "vax/VaxSemantics.h"
#include "support/Coverage.h"
#include "support/Error.h"
#include "support/Strings.h"

#include <cstring>

using namespace gg;

namespace {

/// Records a consultation of a Figure-3 row for the coverage profiler;
/// when coverage is off both forms cost one relaxed load.
void covRow(const InstCluster &C) { coverage().noteInstrRow(clusterId(C)); }
void covRowByTag(std::string_view TagBase) {
  if (!coverage().enabled())
    return;
  if (const InstCluster *C = findCluster(TagBase))
    coverage().noteInstrRow(clusterId(*C));
}

} // namespace

namespace {

Ty tyForSize(char SC, bool Unsigned = false) {
  switch (SC) {
  case 'b':
    return Unsigned ? Ty::UB : Ty::B;
  case 'w':
    return Unsigned ? Ty::UW : Ty::W;
  default:
    return Unsigned ? Ty::UL : Ty::L;
  }
}

int sizeRank(char SC) { return SC == 'b' ? 1 : SC == 'w' ? 2 : 4; }

/// Splits a semantic tag "base_b_l" into its base and size characters.
void parseTag(const std::string &Tag, std::string &Base, char &SC1,
              char &SC2) {
  Base.clear();
  SC1 = SC2 = 0;
  std::vector<std::string_view> Parts = splitString(Tag, '_');
  Base = std::string(Parts[0]);
  size_t I = 1;
  if (I < Parts.size() && Parts[I].size() == 1)
    SC1 = Parts[I++][0];
  if (I < Parts.size() && Parts[I].size() == 1)
    SC2 = Parts[I++][0];
}

bool isPowerOfTwo(int64_t V) { return V > 1 && (V & (V - 1)) == 0; }

int log2Of(int64_t V) {
  int K = 0;
  while ((int64_t(1) << K) < V)
    ++K;
  return K;
}

/// Truncates a mask complement to the instruction width so bic immediates
/// print in-range.
int64_t complementFor(int64_t V, char SC) {
  return truncateToTy(~V, tyForSize(SC));
}

} // namespace

VaxSemantics::VaxSemantics(AsmEmitter &Emit, Function &F,
                           const CgOptions &Opts)
    : Emit(Emit), F(F), Opts(Opts),
      RM([this](int R, const Operand &Cell) { spillStore(R, Cell); },
         [this]() { return this->F.allocLocal(4); },
         [this](int R) { return isSpillable(R); },
         [this](const std::string &Msg) { fail(Msg); }) {}

void VaxSemantics::fail(const std::string &Message) {
  if (ReplayErr.empty())
    ReplayErr = Message;
}

void VaxSemantics::resetAfterFailure() {
  ReplayErr.clear();
  Stack.clear();
  FrameBase = 0;
  RM.resetForStatement();
  invalidateCC();
  Emit.clearContext();
}

//===----------------------------------------------------------------------===//
// Operand plumbing
//===----------------------------------------------------------------------===//

bool VaxSemantics::isSpillable(int Reg) const {
  // A register is relocatable only while its sole holder is a plain
  // register operand on the semantic stack *below* the reduction that is
  // currently executing: entries at or above FrameBase may have been
  // copied into handler locals that a rewrite cannot reach.
  for (size_t I = 0; I < Stack.size(); ++I) {
    const Operand &O = Stack[I].Opnd;
    if (O.DregRef)
      continue; // names the register as a location, not a value holder
    bool References = O.Base == Reg || O.Index == Reg;
    if (I < FrameBase && O.Mode == AMode::Reg && O.Base == Reg)
      continue; // rewritable holder
    if (References)
      return false; // held somewhere a rewrite cannot fix
  }
  for (size_t I = 0; I < FrameBase && I < Stack.size(); ++I) {
    const Operand &O = Stack[I].Opnd;
    if (O.Mode == AMode::Reg && O.Base == Reg && !O.DregRef)
      return true;
  }
  return false;
}

void VaxSemantics::spillStore(int Reg, const Operand &Cell) {
  emitInst("movl", {Operand::reg(Reg, Ty::L), Cell});
  // Rewrite every live semantic value that holds the spilled register.
  bool Rewrote = false;
  for (SemVal &V : Stack) {
    if (V.Opnd.Mode == AMode::Reg && V.Opnd.Base == Reg &&
        !V.Opnd.DregRef) {
      Ty Keep = V.Opnd.Type;
      V.Opnd = Cell;
      V.Opnd.Type = Keep;
      V.Opnd.Spilled = true;
      Rewrote = true;
    }
  }
  if (!Rewrote)
    fail(strf("spilled register %s not found on the semantic stack",
              regName(Reg)));
  if (LastCCReg == Reg)
    LastCCReg = -1;
}

void VaxSemantics::prepare(Operand &O) {
  if (!O.Spilled)
    return;
  // "If a register is spilled, it is reloaded just before it is used."
  Operand Cell = O;
  Cell.Type = Ty::L;
  int R = RM.alloc();
  RM.noteUnspill();
  emitInst("movl", {Cell, Operand::reg(R, Ty::L)});
  Ty Keep = O.Type;
  O = Operand::reg(R, Keep);
}

Operand VaxSemantics::ensureReg(Operand O, char SC) {
  prepare(O);
  if (O.isReg())
    return O;
  RM.reclaim(O);
  int R = RM.alloc();
  Operand Dst = Operand::reg(R, tyForSize(SC));
  emitInst(mnemonic("mov", SC), {O, Dst});
  setCC(Dst, SC);
  return Dst;
}

Operand VaxSemantics::stabilize(Operand O, char SC) {
  if (O.Mode == AMode::AutoInc || O.Mode == AMode::AutoDec)
    return ensureReg(O, SC);
  return O;
}

void VaxSemantics::setCC(const Operand &O, char SC) {
  if (O.Mode == AMode::Reg) {
    LastCCReg = O.Base;
    LastCCSize = SC;
  } else {
    LastCCReg = -1;
  }
}

void VaxSemantics::emitInst(const std::string &Opcode,
                            const std::vector<Operand> &Ops) {
  Emit.inst(Opcode, Ops);
}

//===----------------------------------------------------------------------===//
// Statement-level helpers
//===----------------------------------------------------------------------===//

void VaxSemantics::emitLabel(InternedString L) {
  Emit.label(L);
  invalidateCC();
}

void VaxSemantics::emitJump(InternedString L) {
  Emit.instRaw("brw", {Emit.interner().text(L)});
  invalidateCC();
}

void VaxSemantics::emitCall(InternedString Fn, int NumArgs) {
  Emit.instRaw("calls",
               {strf("$%d", NumArgs), Emit.interner().text(Fn)});
  invalidateCC();
}

void VaxSemantics::emitRet() {
  Emit.instRaw("ret", {});
  invalidateCC();
}

//===----------------------------------------------------------------------===//
// Replay
//===----------------------------------------------------------------------===//

bool VaxSemantics::replay(const Grammar &G, const std::vector<LinToken> &Input,
                          const std::vector<MatchStep> &Steps,
                          std::string &Err) {
  ReplayErr.clear();
  Stack.clear();
  FrameBase = 0;
  for (const MatchStep &S : Steps) {
    if (S.Kind == MatchStep::Shift) {
      SemVal V;
      V.Leaf = Input[S.TokenIndex].N;
      Stack.push_back(V);
      FrameBase = Stack.size();
      continue;
    }
    const Production &P = G.prod(S.ProdId);
    size_t K = P.Rhs.size();
    assert(Stack.size() >= K && "semantic stack underflow");
    FrameBase = Stack.size() - K;
    // Explain mode: instructions emitted by this reduction's semantic
    // action carry the production that selected them.
    if (Emit.explain())
      Emit.setContext(renderProduction(G, P));
    SemVal Result = dispatch(P, &Stack[FrameBase], K);
    Stack.resize(Stack.size() - K);
    Stack.push_back(Result);
    FrameBase = Stack.size();
    if (!ReplayErr.empty()) {
      Err = ReplayErr;
      return false;
    }
  }
  assert(Stack.size() == 1 && "statement did not reduce to one value");
  Stack.clear();
  Emit.clearContext();
  if (RM.anyBusy()) {
    Err = "register leak: allocatable registers still busy after statement";
    RM.resetForStatement();
    return false;
  }
  return true;
}

SemVal VaxSemantics::dispatch(const Production &P, SemVal *Vals, size_t N) {
  switch (P.Kind) {
  case ActionKind::Glue:
    assert(N == 1 && "glue production with multi-symbol RHS");
    return Vals[0];
  case ActionKind::Encap:
  case ActionKind::Emit: {
    std::string Base;
    char SC1, SC2;
    parseTag(P.SemTag, Base, SC1, SC2);
    if (P.Kind == ActionKind::Encap)
      return doEncap(P, Vals, N, Base, SC1, SC2);
    return doEmit(P, Vals, N, Base, SC1, SC2);
  }
  }
  gg_unreachable("bad action kind");
}

//===----------------------------------------------------------------------===//
// Encapsulating reductions: addressing-mode condensation
//===----------------------------------------------------------------------===//

SemVal VaxSemantics::doEncap(const Production &P, SemVal *Vals, size_t N,
                             const std::string &Base, char SC1, char SC2) {
  (void)N;
  (void)SC1;
  SemVal R;
  auto PinIfReg = [&](const Operand &O) {
    if (O.isReg())
      RM.pin(O.Base);
  };

  if (Base == "imm") {
    const Node *L = Vals[0].Leaf;
    R.Opnd = Operand::imm(L->Value, L->Type);
    return R;
  }
  if (Base == "immsym") {
    const Node *L = Vals[0].Leaf;
    R.Opnd = Operand::immSym(L->Sym);
    R.Opnd.Disp = L->Value;
    return R;
  }
  if (Base == "conwiden") {
    const Node *L = Vals[0].Leaf;
    // Node values are stored sign-/zero-extended per their own type, so
    // widening is a retype of the already-extended value.
    R.Opnd = Operand::imm(L->Value, tyForSize(SC2, isUnsignedTy(L->Type)));
    return R;
  }
  if (Base == "dregloc" || Base == "usedreg") {
    const Node *L = Vals[0].Leaf;
    R.Opnd = Operand::reg(L->Reg, L->Type);
    R.Opnd.DregRef = true; // a register location, not an allocated value
    return R;
  }
  if (Base == "abs") {
    const Node *L = Vals[0].Leaf;
    R.Opnd = Operand::abs(L->Sym, L->Type);
    return R;
  }
  if (Base == "gabs") {
    // Indir_Y Gaddr_l
    const Node *Ind = Vals[0].Leaf, *GA = Vals[1].Leaf;
    R.Opnd = Operand::abs(GA->Sym, Ind->Type, GA->Value);
    return R;
  }
  if (Base == "regdef") {
    // Indir_Y reg_l
    prepare(Vals[1].Opnd);
    R.Opnd = Operand::disp(Vals[1].Opnd.Base, 0, Vals[0].Leaf->Type);
    PinIfReg(Vals[1].Opnd);
    return R;
  }
  if (Base == "disp") {
    // Indir_Y Plus_l con_l reg_l
    prepare(Vals[3].Opnd);
    const Operand &Con = Vals[2].Opnd;
    R.Opnd = Operand::disp(Vals[3].Opnd.Base, Con.Disp, Vals[0].Leaf->Type);
    if (Con.Mode == AMode::ImmSym)
      R.Opnd.Sym = Con.Sym;
    PinIfReg(Vals[3].Opnd);
    return R;
  }
  if (Base == "def") {
    // Indir_Y mem_l : displacement- or absolute-deferred
    Operand Inner = Vals[1].Opnd;
    Ty T = Vals[0].Leaf->Type;
    if (Inner.Mode == AMode::Disp && Inner.Sym.isEmpty()) {
      R.Opnd = Inner;
      R.Opnd.Mode = AMode::DispDef;
      R.Opnd.Type = T;
      return R; // base register pin is inherited
    }
    if (Inner.Mode == AMode::Abs) {
      R.Opnd = Inner;
      R.Opnd.Mode = AMode::AbsDef;
      R.Opnd.Type = T;
      return R;
    }
    // No doubly-deferred hardware mode: load the pointer first.
    Operand Ptr = ensureReg(Inner, 'l');
    R.Opnd = Operand::disp(Ptr.Base, 0, T);
    PinIfReg(Ptr);
    return R;
  }
  if (Base == "dxdisp" || Base == "dxreg" || Base == "dxabs") {
    Ty T = Vals[0].Leaf->Type;
    R.Opnd.Mode = AMode::Indexed;
    R.Opnd.Type = T;
    if (Base == "dxdisp") {
      // Indir_Y Plus_l con_l Plus_l reg_l Mul_l @Y reg_l
      prepare(Vals[4].Opnd);
      prepare(Vals[7].Opnd);
      const Operand &Con = Vals[2].Opnd;
      R.Opnd.Base = Vals[4].Opnd.Base;
      R.Opnd.Disp = Con.Disp;
      if (Con.Mode == AMode::ImmSym)
        R.Opnd.Sym = Con.Sym;
      R.Opnd.Index = Vals[7].Opnd.Base;
      PinIfReg(Vals[4].Opnd);
      PinIfReg(Vals[7].Opnd);
    } else if (Base == "dxreg") {
      // Indir_Y Plus_l reg_l Mul_l @Y reg_l
      prepare(Vals[2].Opnd);
      prepare(Vals[5].Opnd);
      R.Opnd.Base = Vals[2].Opnd.Base;
      R.Opnd.Index = Vals[5].Opnd.Base;
      PinIfReg(Vals[2].Opnd);
      PinIfReg(Vals[5].Opnd);
    } else {
      // Indir_Y Plus_l con_l Mul_l @Y reg_l
      prepare(Vals[5].Opnd);
      const Operand &Con = Vals[2].Opnd;
      if (Con.Mode == AMode::ImmSym)
        R.Opnd.Sym = Con.Sym;
      R.Opnd.Base = -1;
      R.Opnd.Disp = Con.Disp;
      R.Opnd.Index = Vals[5].Opnd.Base;
      PinIfReg(Vals[5].Opnd);
    }
    return R;
  }
  if (Base == "autoinc" || Base == "autodec") {
    // Indir_Y PostInc_l Dreg_l @Y  /  Indir_Y PreDec_l Dreg_l @Y
    Ty T = Vals[0].Leaf->Type;
    R.Opnd.Mode = Base == "autoinc" ? AMode::AutoInc : AMode::AutoDec;
    R.Opnd.Base = Vals[2].Leaf->Reg;
    R.Opnd.Type = T;
    return R;
  }

  fail(strf("unknown encapsulation action '%s'", P.SemTag.c_str()));
  return R;
}

//===----------------------------------------------------------------------===//
// Emitting reductions: instruction selection
//===----------------------------------------------------------------------===//

SemVal VaxSemantics::doEmit(const Production &P, SemVal *Vals, size_t N,
                            const std::string &Base, char SC1, char SC2) {
  SemVal R;

  // --- loads and conversions ---------------------------------------------
  if (Base == "load") {
    R.Opnd = ensureReg(Vals[0].Opnd, SC1);
    return R;
  }
  if (Base == "loadcon") {
    Operand Con = Vals[0].Opnd;
    int Reg = RM.alloc();
    Operand Dst = Operand::reg(Reg, tyForSize(SC1));
    if (Opts.RangeIdioms && Con.isImm() && Con.Disp == 0) {
      ++Idioms.RangeApplied;
      emitInst(mnemonic("clr", SC1), {Dst});
    } else {
      emitInst(mnemonic("mov", SC1), {Con, Dst});
    }
    setCC(Dst, SC1);
    R.Opnd = Dst;
    return R;
  }
  if (Base == "cvtm" || Base == "cvtr") {
    Operand Src = Vals[0].Opnd;
    R.Opnd = convert(SC1, SC2, isUnsignedTy(Src.Type), Src, nullptr);
    return R;
  }
  if (Base == "cvt") {
    // Cvt_F_T rval_F
    Operand Src = Vals[1].Opnd;
    bool SrcUnsigned = isUnsignedTy(Vals[0].Leaf->left()->Type);
    R.Opnd = convert(SC1, SC2, SrcUnsigned, Src, nullptr);
    return R;
  }
  if (Base == "cvta" || Base == "cvtas") {
    bool Reverse = Base == "cvtas";
    // Widening forms: [Assign lval mem] / [AssignR mem lval].
    // Narrowing forms: [Assign lval Cvt rval] / [AssignR Cvt rval lval].
    Operand Src, Dst;
    bool SrcUnsigned;
    if (N == 3) {
      Src = Vals[Reverse ? 1 : 2].Opnd;
      Dst = Vals[Reverse ? 2 : 1].Opnd;
      SrcUnsigned = isUnsignedTy(Src.Type);
    } else {
      Src = Vals[Reverse ? 2 : 3].Opnd;
      Dst = Vals[Reverse ? 3 : 1].Opnd;
      const Node *CvtLeaf = Vals[Reverse ? 1 : 2].Leaf;
      SrcUnsigned = isUnsignedTy(CvtLeaf->left()->Type);
    }
    convert(SC1, SC2, SrcUnsigned, Src, &Dst);
    return R;
  }

  // --- moves ---------------------------------------------------------------
  if (Base == "mov" || Base == "movr") {
    Operand Src = Vals[Base == "mov" ? 2 : 1].Opnd;
    Operand Dst = Vals[Base == "mov" ? 1 : 2].Opnd;
    move(SC1, Src, Dst);
    return R;
  }

  // --- three-address arithmetic (the Figure-3 clusters) --------------------
  struct ArithShape {
    const char *Tag;     // semantic tag base
    const char *Cluster; // instruction-table cluster
    int OpIdx;           // index of the operator leaf in Vals
    int S1, S2;          // source indices (pre-swap)
    int DstIdx;          // lvalue index or -1
    bool SwapSrcs;       // reverse-operator form
  };
  static const ArithShape Shapes[] = {
      {"add", "add", 0, 1, 2, -1, false},
      {"sub", "sub", 0, 1, 2, -1, false},
      {"mul", "mul", 0, 1, 2, -1, false},
      {"div", "div", 0, 1, 2, -1, false},
      {"mod", "mod", 0, 1, 2, -1, false},
      {"and", "and", 0, 1, 2, -1, false},
      {"bis", "bis", 0, 1, 2, -1, false},
      {"xor", "xor", 0, 1, 2, -1, false},
      {"ash", "ash", 0, 1, 2, -1, false},
      {"rsh", "rsh", 0, 1, 2, -1, false},
      {"subr", "sub", 0, 1, 2, -1, true},
      {"divr", "div", 0, 1, 2, -1, true},
      {"modr", "mod", 0, 1, 2, -1, true},
      {"ashr", "ash", 0, 1, 2, -1, true},
      {"rshr", "rsh", 0, 1, 2, -1, true},
      {"add3", "add", 2, 3, 4, 1, false},
      {"sub3", "sub", 2, 3, 4, 1, false},
      {"mul3", "mul", 2, 3, 4, 1, false},
      {"div3", "div", 2, 3, 4, 1, false},
      {"mod3", "mod", 2, 3, 4, 1, false},
      {"and3", "and", 2, 3, 4, 1, false},
      {"bis3", "bis", 2, 3, 4, 1, false},
      {"xor3", "xor", 2, 3, 4, 1, false},
      {"ash3", "ash", 2, 3, 4, 1, false},
      {"rsh3", "rsh", 2, 3, 4, 1, false},
      {"sub3r", "sub", 2, 3, 4, 1, true},
      {"div3r", "div", 2, 3, 4, 1, true},
      {"mod3r", "mod", 2, 3, 4, 1, true},
      {"ash3r", "ash", 2, 3, 4, 1, true},
      {"rsh3r", "rsh", 2, 3, 4, 1, true},
      {"add3s", "add", 1, 2, 3, 4, false},
      {"sub3s", "sub", 1, 2, 3, 4, false},
      {"mul3s", "mul", 1, 2, 3, 4, false},
      {"div3s", "div", 1, 2, 3, 4, false},
      {"mod3s", "mod", 1, 2, 3, 4, false},
      {"and3s", "and", 1, 2, 3, 4, false},
      {"bis3s", "bis", 1, 2, 3, 4, false},
      {"xor3s", "xor", 1, 2, 3, 4, false},
      {"ash3s", "ash", 1, 2, 3, 4, false},
      {"rsh3s", "rsh", 1, 2, 3, 4, false},
      {"sub3sr", "sub", 1, 2, 3, 4, true},
      {"div3sr", "div", 1, 2, 3, 4, true},
      {"mod3sr", "mod", 1, 2, 3, 4, true},
      {"ash3sr", "ash", 1, 2, 3, 4, true},
      {"rsh3sr", "rsh", 1, 2, 3, 4, true},
  };
  for (const ArithShape &S : Shapes) {
    if (Base != S.Tag)
      continue;
    Operand S1 = Vals[S.S1].Opnd, S2 = Vals[S.S2].Opnd;
    if (S.SwapSrcs)
      std::swap(S1, S2);
    const Node *OpLeaf = Vals[S.OpIdx].Leaf;
    bool IsUnsigned = isUnsignedTy(OpLeaf->Type);
    const Operand *Dst = S.DstIdx >= 0 ? &Vals[S.DstIdx].Opnd : nullptr;
    std::string_view Cluster = S.Cluster;
    if (Cluster == "mod")
      R.Opnd = modulus(SC1, IsUnsigned, S1, S2, Dst);
    else if (Cluster == "and")
      R.Opnd = andOp(SC1, S1, S2, Dst);
    else if (Cluster == "ash")
      R.Opnd = shift(SC1, /*Right=*/false, IsUnsigned, S1, S2, Dst);
    else if (Cluster == "rsh")
      R.Opnd = shift(SC1, /*Right=*/true, IsUnsigned, S1, S2, Dst);
    else if (Cluster == "div" && IsUnsigned)
      R.Opnd = libCall2("__udiv", S1, S2, Dst);
    else
      R.Opnd = arith(*findCluster(S.Cluster), SC1, IsUnsigned, S1, S2, Dst);
    return R;
  }

  // --- unary ----------------------------------------------------------------
  if (Base == "neg" || Base == "com") {
    R.Opnd = unary2(Base == "neg" ? "mneg" : "mcom", SC1, Vals[1].Opnd,
                    nullptr);
    return R;
  }
  if (Base == "neg2" || Base == "com2") {
    unary2(Base == "neg2" ? "mneg" : "mcom", SC1, Vals[3].Opnd,
           &Vals[1].Opnd);
    return R;
  }
  if (Base == "neg2s" || Base == "com2s") {
    unary2(Base == "neg2s" ? "mneg" : "mcom", SC1, Vals[2].Opnd,
           &Vals[3].Opnd);
    return R;
  }

  // --- branches ---------------------------------------------------------------
  if (Base == "cmpbr") {
    // CBranch Cmp_Y rval rval Label
    const Node *Cmp = Vals[1].Leaf;
    compareBranch(SC1, Cmp->CC, Vals[2].Opnd, Vals[3].Opnd,
                  Vals[4].Leaf->Sym);
    return R;
  }
  if (Base == "tstbr") {
    // CBranch Cmp_l reg_l Zero Label
    const Node *Cmp = Vals[1].Leaf;
    compareBranch('l', Cmp->CC, Vals[2].Opnd, Operand::imm(0, Ty::L),
                  Vals[4].Leaf->Sym);
    return R;
  }
  if (Base == "dregbr") {
    // CBranch Cmp_l Dreg_l Zero Label — added to fix the overfactored
    // "reg <- Dreg" chain (§6.2.1): a Dreg read sets no condition codes,
    // so the test is always explicit.
    const Node *Cmp = Vals[1].Leaf;
    Operand Reg = Operand::reg(Vals[2].Leaf->Reg, Vals[2].Leaf->Type);
    covRowByTag("cmp"); // tst is the cmp row's degenerate range form
    emitInst("tstl", {Reg});
    Emit.instRaw(strf("j%s", condName(Cmp->CC)),
                 {Emit.interner().text(Vals[4].Leaf->Sym)});
    invalidateCC();
    return R;
  }

  // --- calls / stack ------------------------------------------------------------
  if (Base == "push") {
    covRowByTag("push");
    Operand Src = Vals[1].Opnd;
    prepare(Src);
    emitInst("pushl", {Src});
    RM.reclaim(Src);
    setCC(Src, 'l');
    return R;
  }

  // --- autoincrement as a value -----------------------------------------------
  if (Base == "postinc") {
    // PostInc_l Dreg_l con_l: value is the old register contents.
    int DregNo = Vals[1].Leaf->Reg;
    Operand Amount = Vals[2].Opnd;
    int T = RM.alloc();
    Operand Dst = Operand::reg(T, Ty::L);
    emitInst("movl", {Operand::reg(DregNo, Ty::L), Dst});
    emitInst("addl2", {Amount, Operand::reg(DregNo, Ty::L)});
    invalidateCC();
    R.Opnd = Dst;
    return R;
  }
  if (Base == "predec") {
    int DregNo = Vals[1].Leaf->Reg;
    Operand Amount = Vals[2].Opnd;
    int T = RM.alloc();
    Operand Dst = Operand::reg(T, Ty::L);
    emitInst("subl2", {Amount, Operand::reg(DregNo, Ty::L)});
    emitInst("movl", {Operand::reg(DregNo, Ty::L), Dst});
    invalidateCC();
    R.Opnd = Dst;
    return R;
  }

  // --- bridge productions -------------------------------------------------------
  if (Base == "bridgedx1") {
    // Indir_Y Plus_l con_l Plus_l reg_l Mul_l rval_l rval_l
    R.Opnd = bridgeAddress(SC1, &Vals[2].Opnd, &Vals[4].Opnd, Vals[6].Opnd,
                           Vals[7].Opnd);
    R.Opnd.Type = Vals[0].Leaf->Type;
    return R;
  }
  if (Base == "bridgedx2") {
    // Indir_Y Plus_l reg_l Mul_l rval_l rval_l
    R.Opnd = bridgeAddress(SC1, nullptr, &Vals[2].Opnd, Vals[4].Opnd,
                           Vals[5].Opnd);
    R.Opnd.Type = Vals[0].Leaf->Type;
    return R;
  }
  if (Base == "bridgedx3") {
    // Indir_Y Plus_l con_l Mul_l rval_l rval_l
    R.Opnd = bridgeAddress(SC1, &Vals[2].Opnd, nullptr, Vals[4].Opnd,
                           Vals[5].Opnd);
    R.Opnd.Type = Vals[0].Leaf->Type;
    return R;
  }

  fail(strf("unknown emit action '%s'", P.SemTag.c_str()));
  return R;
}

//===----------------------------------------------------------------------===//
// Instruction families
//===----------------------------------------------------------------------===//

Operand VaxSemantics::arith(const InstCluster &C, char SC, bool IsUnsigned,
                            Operand S1, Operand S2, const Operand *DstOpt) {
  (void)IsUnsigned; // signed/unsigned share add/sub/mul/bis/xor
  covRow(C);
  prepare(S1);
  prepare(S2);
  bool SubLike = !C.Swappable; // sub/div print divisor-first

  // Binding idiom: turn the three-address form into a two-address form.
  if (DstOpt && Opts.BindingIdioms) {
    const Operand &Dst = *DstOpt;
    Operand *Other = nullptr;
    if (S1.sameLocation(Dst))
      Other = &S2;
    else if (C.Swappable && S2.sameLocation(Dst))
      Other = &S1;
    if (Other) {
      ++Idioms.BindingApplied;
      Operand Bound = Dst;
      // Range idiom on the bound form.
      if (Opts.RangeIdioms && Other->isImm()) {
        int64_t V = Other->Disp;
        if (C.Range == RangeIdiom::AddSub && (V == 1 || V == -1)) {
          ++Idioms.RangeApplied;
          bool Inc = (V == 1) != (C.Tag[0] == 's'); // sub flips direction
          emitInst(mnemonic(Inc ? "inc" : "dec", SC), {Bound});
          RM.reclaim(S1);
          RM.reclaim(S2);
          RM.reclaim(Bound);
          invalidateCC();
          return Operand();
        }
        if ((C.Range == RangeIdiom::AddSub || C.Range == RangeIdiom::BisXor ||
             C.Range == RangeIdiom::Div) &&
            (C.Range == RangeIdiom::Div ? V == 1 : V == 0)) {
          ++Idioms.RangeApplied;
          RM.reclaim(S1);
          RM.reclaim(S2);
          RM.reclaim(Bound);
          return Operand(); // x op= identity: no instruction at all
        }
        if (C.Range == RangeIdiom::Mul && SC == 'l' && isPowerOfTwo(V)) {
          ++Idioms.RangeApplied;
          emitInst("ashl", {Operand::imm(log2Of(V), Ty::L), Bound, Bound});
          RM.reclaim(S1);
          RM.reclaim(S2);
          RM.reclaim(Bound);
          invalidateCC();
          return Operand();
        }
      }
      emitInst(mnemonic(C.OpBase, SC, 2), {*Other, Bound});
      RM.reclaim(*Other);
      RM.reclaim(S1);
      RM.reclaim(S2);
      setCC(Bound, SC);
      Operand Result;
      if (!DstOpt)
        Result = Bound;
      else
        RM.reclaim(Bound);
      return Result;
    }
  }

  // Three-address range idioms.
  if (Opts.RangeIdioms) {
    auto MoveInto = [&](Operand Src) -> Operand {
      ++Idioms.RangeApplied;
      if (DstOpt) {
        Operand Dst = *DstOpt;
        RM.reclaim(S1, Src.isReg() ? Src.Base : -1);
        RM.reclaim(S2, Src.isReg() ? Src.Base : -1);
        move(SC, Src, Dst);
        return Operand();
      }
      Operand Dst = ensureReg(Src, SC);
      RM.reclaim(S1, Dst.Base);
      RM.reclaim(S2, Dst.Base);
      return Dst;
    };
    if (C.Range == RangeIdiom::AddSub) {
      if (S2.isImm() && S2.Disp == 0)
        return MoveInto(S1); // x +- 0
      if (S1.isImm() && S1.Disp == 0 && C.Swappable)
        return MoveInto(S2); // 0 + x
      if (S1.isImm() && S1.Disp == 0 && !C.Swappable)
        return unary2("mneg", SC, S2, DstOpt); // 0 - x
      // Address arithmetic: $c + reg computes an address; moval does it
      // in one operand fetch (the classic VAX address-of sequence).
      if (C.Swappable && SC == 'l' && S1.isImm() && S2.isReg() &&
          S1.Disp >= INT32_MIN && S1.Disp <= INT32_MAX) {
        ++Idioms.RangeApplied;
        Operand Cell = Operand::disp(S2.Base, S1.Disp, Ty::L);
        Operand Dst = DstOpt ? *DstOpt
                             : Operand::reg(RM.allocPreferring(S2, S2),
                                            Ty::L);
        emitInst("moval", {Cell, Dst});
        int Keep = !DstOpt && Dst.isReg() ? Dst.Base : -1;
        RM.reclaim(S2, Keep);
        setCC(Dst, SC);
        if (DstOpt) {
          RM.reclaim(Dst);
          return Operand();
        }
        return Dst;
      }
    }
    if (C.Range == RangeIdiom::BisXor && S2.isImm() && S2.Disp == 0)
      return MoveInto(S1);
    if (C.Range == RangeIdiom::BisXor && S1.isImm() && S1.Disp == 0)
      return MoveInto(S2);
    if (C.Range == RangeIdiom::Div && S2.isImm() && S2.Disp == 1)
      return MoveInto(S1);
    if (C.Range == RangeIdiom::Mul && SC == 'l') {
      const Operand *Pow = nullptr, *Val = nullptr;
      if (S1.isImm() && isPowerOfTwo(S1.Disp)) {
        Pow = &S1;
        Val = &S2;
      } else if (S2.isImm() && isPowerOfTwo(S2.Disp)) {
        Pow = &S2;
        Val = &S1;
      }
      if (Pow) {
        ++Idioms.RangeApplied;
        Operand Dst =
            DstOpt ? *DstOpt
                   : Operand::reg(RM.allocPreferring(*Val, *Val), Ty::L);
        emitInst("ashl",
                 {Operand::imm(log2Of(Pow->Disp), Ty::L), *Val, Dst});
        RM.reclaim(S1, Dst.isReg() ? Dst.Base : -1);
        RM.reclaim(S2, Dst.isReg() ? Dst.Base : -1);
        setCC(Dst, SC);
        if (DstOpt) {
          RM.reclaim(Dst);
          return Operand();
        }
        return Dst;
      }
      if ((S1.isImm() && S1.Disp == 1))
        return MoveInto(S2);
      if ((S2.isImm() && S2.Disp == 1))
        return MoveInto(S1);
    }
  }

  Operand Dst = DstOpt
                    ? *DstOpt
                    : Operand::reg(RM.allocPreferring(S1, S2), tyForSize(SC));
  std::vector<Operand> Ops = SubLike ? std::vector<Operand>{S2, S1, Dst}
                                     : std::vector<Operand>{S1, S2, Dst};
  emitInst(mnemonic(C.OpBase, SC, 3), Ops);
  int Keep = !DstOpt && Dst.isReg() ? Dst.Base : -1;
  RM.reclaim(S1, Keep);
  RM.reclaim(S2, Keep);
  setCC(Dst, SC);
  if (DstOpt) {
    RM.reclaim(Dst);
    return Operand();
  }
  return Dst;
}

void VaxSemantics::move(char SC, Operand Src, Operand Dst) {
  covRowByTag("mov");
  prepare(Src);
  if (Src.sameLocation(Dst)) {
    // mov x,x: nothing to do (common for "return r0" when the value is
    // already in r0).
    RM.reclaim(Src);
    RM.reclaim(Dst);
    return;
  }
  if (Opts.RangeIdioms && Src.isImm() && Src.Disp == 0) {
    ++Idioms.RangeApplied;
    emitInst(mnemonic("clr", SC), {Dst});
    invalidateCC();
  } else {
    emitInst(mnemonic("mov", SC), {Src, Dst});
    if (Dst.isReg())
      setCC(Dst, SC);
    else
      setCC(Src, SC);
  }
  RM.reclaim(Src);
  RM.reclaim(Dst);
}

Operand VaxSemantics::unary2(const char *OpBase, char SC, Operand Src,
                             const Operand *DstOpt) {
  // mneg/mcom are the neg/com rows of Figure 3.
  covRowByTag(strcmp(OpBase, "mneg") == 0 ? "neg" : "com");
  prepare(Src);
  Operand Dst = DstOpt
                    ? *DstOpt
                    : Operand::reg(RM.allocPreferring(Src, Src), tyForSize(SC));
  emitInst(mnemonic(OpBase, SC), {Src, Dst});
  int Keep = !DstOpt && Dst.isReg() ? Dst.Base : -1;
  RM.reclaim(Src, Keep);
  setCC(Dst, SC);
  if (DstOpt) {
    RM.reclaim(Dst);
    return Operand();
  }
  return Dst;
}

Operand VaxSemantics::convert(char FromSC, char ToSC, bool SrcUnsigned,
                              Operand Src, const Operand *DstOpt) {
  prepare(Src);
  Ty ToTy = tyForSize(ToSC, SrcUnsigned);
  if (Src.isImm()) {
    // Constant conversions fold: no code (a degenerate range idiom).
    Operand Folded = Operand::imm(truncateToTy(Src.Disp, ToTy), ToTy);
    if (DstOpt) {
      move(ToSC, Folded, *DstOpt);
      return Operand();
    }
    return Folded;
  }
  bool Widening = sizeRank(FromSC) < sizeRank(ToSC);
  std::string Opcode = Widening && SrcUnsigned
                           ? strf("movz%c%c", FromSC, ToSC)
                           : strf("cvt%c%c", FromSC, ToSC);
  Operand Dst = DstOpt
                    ? *DstOpt
                    : Operand::reg(RM.allocPreferring(Src, Src), ToTy);
  emitInst(Opcode, {Src, Dst});
  int Keep = !DstOpt && Dst.isReg() ? Dst.Base : -1;
  RM.reclaim(Src, Keep);
  setCC(Dst, ToSC);
  if (DstOpt) {
    RM.reclaim(Dst);
    return Operand();
  }
  return Dst;
}

Operand VaxSemantics::andOp(char SC, Operand S1, Operand S2,
                            const Operand *DstOpt) {
  // The VAX has no and instruction: a & b == bic(~a, b). With a constant
  // mask the complement folds into the immediate; otherwise an mcom into a
  // scratch register is required (a pseudo-instruction of sorts).
  covRowByTag("and");
  prepare(S1);
  prepare(S2);
  if (!S1.isImm() && S2.isImm())
    std::swap(S1, S2); // commutative: get the mask first

  if (Opts.RangeIdioms && S1.isImm()) {
    if (S1.Disp == 0) {
      // x & 0 == 0.
      ++Idioms.RangeApplied;
      RM.reclaim(S1);
      RM.reclaim(S2);
      if (DstOpt) {
        move(SC, Operand::imm(0, tyForSize(SC)), *DstOpt);
        return Operand();
      }
      int T = RM.alloc();
      Operand Dst = Operand::reg(T, tyForSize(SC));
      emitInst(mnemonic("clr", SC), {Dst});
      invalidateCC();
      return Dst;
    }
    if (truncateToTy(S1.Disp, tyForSize(SC)) ==
        truncateToTy(-1, tyForSize(SC))) {
      // x & ~0 == x.
      ++Idioms.RangeApplied;
      if (DstOpt) {
        RM.reclaim(S1);
        move(SC, S2, *DstOpt);
        return Operand();
      }
      Operand Dst = ensureReg(S2, SC);
      RM.reclaim(S1);
      return Dst;
    }
  }

  Operand Mask;
  if (S1.isImm()) {
    Mask = Operand::imm(complementFor(S1.Disp, SC), tyForSize(SC));
  } else {
    ++Idioms.PseudoExpansions;
    Mask = unary2("mcom", SC, S1, nullptr);
  }

  // Binding idiom on the bic form.
  if (DstOpt && Opts.BindingIdioms && S2.sameLocation(*DstOpt)) {
    ++Idioms.BindingApplied;
    emitInst(mnemonic("bic", SC, 2), {Mask, *DstOpt});
    RM.reclaim(Mask);
    RM.reclaim(S2);
    RM.reclaim(*DstOpt);
    invalidateCC();
    return Operand();
  }

  Operand Dst = DstOpt
                    ? *DstOpt
                    : Operand::reg(RM.allocPreferring(Mask, S2), tyForSize(SC));
  emitInst(mnemonic("bic", SC, 3), {Mask, S2, Dst});
  int Keep = !DstOpt && Dst.isReg() ? Dst.Base : -1;
  RM.reclaim(Mask, Keep);
  RM.reclaim(S2, Keep);
  setCC(Dst, SC);
  if (DstOpt) {
    RM.reclaim(Dst);
    return Operand();
  }
  return Dst;
}

Operand VaxSemantics::shift(char SC, bool Right, bool IsUnsigned, Operand Val,
                            Operand Cnt, const Operand *DstOpt) {
  covRowByTag(Right ? "rsh" : "ash");
  prepare(Val);
  prepare(Cnt);
  if (SC != 'l') {
    fail("shifts are only generated at long width (front ends promote)");
    return Operand();
  }
  // ashl accesses its count as a *byte* operand: indexed mode would scale
  // the index by 1 and autoincrement would bump by 1, so such counts must
  // be materialized in a register first.
  if (Cnt.Mode == AMode::Indexed || Cnt.Mode == AMode::AutoInc ||
      Cnt.Mode == AMode::AutoDec)
    Cnt = ensureReg(Cnt, 'l');

  auto FinishReg = [&](Operand Dst) -> Operand {
    setCC(Dst, SC);
    if (DstOpt) {
      RM.reclaim(Dst);
      return Operand();
    }
    return Dst;
  };

  if (!Right) {
    if (Opts.RangeIdioms && Cnt.isImm() && Cnt.Disp == 0) {
      ++Idioms.RangeApplied;
      if (DstOpt) {
        RM.reclaim(Cnt);
        move(SC, Val, *DstOpt);
        return Operand();
      }
      Operand Dst = ensureReg(Val, SC);
      RM.reclaim(Cnt);
      return Dst;
    }
    Operand Dst = DstOpt
                      ? *DstOpt
                      : Operand::reg(RM.allocPreferring(Val, Val), Ty::L);
    emitInst("ashl", {Cnt, Val, Dst});
    RM.reclaim(Cnt, !DstOpt && Dst.isReg() ? Dst.Base : -1);
    RM.reclaim(Val, !DstOpt && Dst.isReg() ? Dst.Base : -1);
    return FinishReg(Dst);
  }

  if (!IsUnsigned) {
    // Arithmetic right shift: ashl with a negated count.
    Operand NegCnt;
    if (Cnt.isImm()) {
      NegCnt = Operand::imm(-Cnt.Disp, Ty::L);
    } else {
      ++Idioms.PseudoExpansions;
      NegCnt = unary2("mneg", 'l', Cnt, nullptr);
      Cnt = Operand(); // consumed
    }
    Operand Dst = DstOpt
                      ? *DstOpt
                      : Operand::reg(RM.allocPreferring(Val, NegCnt), Ty::L);
    emitInst("ashl", {NegCnt, Val, Dst});
    int Keep = !DstOpt && Dst.isReg() ? Dst.Base : -1;
    RM.reclaim(NegCnt, Keep);
    RM.reclaim(Val, Keep);
    if (Cnt.Mode != AMode::None)
      RM.reclaim(Cnt, Keep);
    return FinishReg(Dst);
  }

  // Logical right shift: extzv pos=cnt size=32-cnt (a pseudo-instruction;
  // PCC used the same expansion for unsigned >>).
  ++Idioms.PseudoExpansions;
  if (Cnt.isImm()) {
    int64_t C = Cnt.Disp;
    if (C == 0) {
      RM.reclaim(Cnt);
      if (DstOpt) {
        move(SC, Val, *DstOpt);
        return Operand();
      }
      return ensureReg(Val, SC);
    }
    if (C < 0 || C > 31) {
      RM.reclaim(Cnt);
      RM.reclaim(Val);
      Operand Dst =
          DstOpt ? *DstOpt : Operand::reg(RM.alloc(), Ty::UL);
      emitInst("clrl", {Dst});
      invalidateCC();
      if (DstOpt) {
        RM.reclaim(Dst);
        return Operand();
      }
      return Dst;
    }
    Operand Dst = DstOpt
                      ? *DstOpt
                      : Operand::reg(RM.allocPreferring(Val, Val), Ty::UL);
    emitInst("extzv", {Operand::imm(C, Ty::L), Operand::imm(32 - C, Ty::L),
                       Val, Dst});
    RM.reclaim(Val, !DstOpt && Dst.isReg() ? Dst.Base : -1);
    return FinishReg(Dst);
  }
  Operand CntR = stabilize(Cnt, 'l'); // used twice below
  int WidthReg = RM.alloc();
  Operand Width = Operand::reg(WidthReg, Ty::L);
  emitInst("subl3", {CntR, Operand::imm(32, Ty::L), Width});
  Operand Dst =
      DstOpt ? *DstOpt : Operand::reg(RM.allocPreferring(Val, Val), Ty::UL);
  emitInst("extzv", {CntR, Width, Val, Dst});
  RM.free(WidthReg);
  int Keep = !DstOpt && Dst.isReg() ? Dst.Base : -1;
  RM.reclaim(CntR, Keep);
  RM.reclaim(Val, Keep);
  return FinishReg(Dst);
}

Operand VaxSemantics::modulus(char SC, bool IsUnsigned, Operand A, Operand B,
                              const Operand *DstOpt) {
  covRowByTag("mod");
  if (IsUnsigned)
    return libCall2("__urem", A, B, DstOpt);

  // "These pseudo-instructions include signed integer modulus, which
  // requires a register to hold an intermediate result" (§5.3.2):
  //   q = a / b; q *= b; dst = a - q.
  ++Idioms.PseudoExpansions;
  prepare(A);
  prepare(B);
  A = stabilize(A, SC);
  B = stabilize(B, SC);
  int Q = RM.alloc();
  Operand QOp = Operand::reg(Q, tyForSize(SC));
  emitInst(mnemonic("div", SC, 3), {B, A, QOp});
  emitInst(mnemonic("mul", SC, 2), {B, QOp});
  if (DstOpt) {
    emitInst(mnemonic("sub", SC, 3), {QOp, A, *DstOpt});
    RM.free(Q);
    RM.reclaim(A);
    RM.reclaim(B);
    RM.reclaim(*DstOpt);
    invalidateCC();
    return Operand();
  }
  emitInst(mnemonic("sub", SC, 3), {QOp, A, QOp});
  RM.reclaim(A, Q);
  RM.reclaim(B, Q);
  setCC(QOp, SC);
  return QOp;
}

Operand VaxSemantics::libCall2(const char *Fn, Operand A, Operand B,
                               const Operand *DstOpt) {
  // Unsigned division "requires a call to a library function that is
  // known not to modify any registers" (§5.3.2).
  ++Idioms.PseudoExpansions;
  prepare(A);
  prepare(B);
  emitInst("pushl", {B});
  emitInst("pushl", {A});
  RM.reclaim(A);
  RM.reclaim(B);
  if (RM.isBusy(RegR0)) {
    if (RM.canEvict(RegR0)) {
      RM.evict(RegR0);
    } else {
      // r0 lives inside a composite addressing mode (pinned) or another
      // live value: relocate register-to-register and patch every stack
      // operand that names it.
      int NewReg = RM.alloc();
      emitInst("movl",
               {Operand::reg(RegR0, Ty::L), Operand::reg(NewReg, Ty::L)});
      for (SemVal &V : Stack) {
        if (V.Opnd.DregRef)
          continue;
        if (V.Opnd.Base == RegR0 && V.Opnd.Mode != AMode::None &&
            V.Opnd.Mode != AMode::Imm)
          V.Opnd.Base = NewReg;
        if (V.Opnd.Index == RegR0)
          V.Opnd.Index = NewReg;
      }
      if (LastCCReg == RegR0)
        LastCCReg = NewReg;
      RM.transferPins(RegR0, NewReg);
      RM.free(RegR0);
    }
  }
  Emit.instRaw("calls", {"$2", Fn});
  invalidateCC();
  RM.claim(RegR0);
  Operand R0 = Operand::reg(RegR0, Ty::UL);
  if (DstOpt) {
    move('l', R0, *DstOpt);
    RM.free(RegR0);
    return Operand();
  }
  // Condition codes are unknown after a call; do NOT mark r0 as covered.
  return R0;
}

void VaxSemantics::compareBranch(char SC, Cond C, Operand A, Operand B,
                                 InternedString Target) {
  covRowByTag("cmp");
  prepare(A);
  prepare(B);
  if (Opts.RangeIdioms && A.isImm() && !B.isImm()) {
    std::swap(A, B);
    C = swapCond(C);
  }
  if (Opts.RangeIdioms && B.isImm() && B.Disp == 0) {
    ++Idioms.RangeApplied;
    if (Opts.CCTracking && A.isReg() && A.Base == LastCCReg &&
        LastCCSize == SC) {
      // The condition codes already reflect this value (§6.1): no test.
      ++Idioms.CCTestsElided;
    } else {
      emitInst(mnemonic("tst", SC), {A});
    }
  } else {
    emitInst(mnemonic("cmp", SC), {A, B});
  }
  Emit.instRaw(strf("j%s", condName(C)), {Emit.interner().text(Target)});
  RM.reclaim(A);
  RM.reclaim(B);
  invalidateCC();
}

Operand VaxSemantics::bridgeAddress(char MemSC, Operand *ConOpt,
                                    Operand *BaseOpt, Operand S1,
                                    Operand S2) {
  // A bridge production "does not correspond to a single instruction or
  // addressing mode" (§6.2.2): compute con + base + s1*s2 into a register
  // and hand back a displacement operand.
  (void)MemSC;
  Operand Prod = arith(*findCluster("mul"), 'l', false, S1, S2, nullptr);
  Prod = ensureReg(Prod, 'l'); // mul range idiom may return a non-register
  if (BaseOpt) {
    prepare(*BaseOpt);
    emitInst("addl2", {*BaseOpt, Prod});
    RM.reclaim(*BaseOpt, Prod.Base);
  }
  Operand Mem = Operand::disp(Prod.Base, 0, Ty::L);
  if (ConOpt) {
    Mem.Disp = ConOpt->Disp;
    if (ConOpt->Mode == AMode::ImmSym)
      Mem.Sym = ConOpt->Sym;
  }
  RM.pin(Prod.Base);
  invalidateCC();
  return Mem;
}
