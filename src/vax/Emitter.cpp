//===- Emitter.cpp - assembly output buffer ---------------------------------===//

#include "vax/Emitter.h"
#include "support/Stats.h"

using namespace gg;

void AsmEmitter::inst(const std::string &Opcode,
                      const std::vector<Operand> &Ops) {
  TimerScope TS(EmitTimer);
  std::vector<std::string> Texts;
  Texts.reserve(Ops.size());
  for (const Operand &O : Ops)
    Texts.push_back(formatOperand(O, Syms));
  appendInst(Opcode, Texts);
}

void AsmEmitter::instRaw(const std::string &Opcode,
                         const std::vector<std::string> &Ops) {
  TimerScope TS(EmitTimer);
  appendInst(Opcode, Ops);
}

void AsmEmitter::appendInst(const std::string &Opcode,
                            const std::vector<std::string> &Ops) {
  std::string Line = "\t" + Opcode;
  for (size_t I = 0; I < Ops.size(); ++I) {
    Line += I ? "," : "\t";
    Line += Ops[I];
  }
  if (Explain && !Context.empty()) {
    Line += "\t# ";
    Line += Context;
  }
  Lines.push_back(std::move(Line));
  ++NumInsts;
  ++stats().counter("emit.instructions");
}

void AsmEmitter::label(InternedString Name) { labelText(Syms.text(Name)); }

void AsmEmitter::labelText(const std::string &Name) {
  Lines.push_back(Name + ":");
}

void AsmEmitter::directive(const std::string &Text) {
  Lines.push_back("\t" + Text);
}

void AsmEmitter::comment(const std::string &Text) {
  Lines.push_back("# " + Text);
}

std::string AsmEmitter::text() const {
  TimerScope TS(EmitTimer);
  std::string Out;
  for (const std::string &Line : Lines) {
    Out += Line;
    Out += '\n';
  }
  return Out;
}
