//===- RegisterManager.cpp - stack-discipline register allocation -----------===//

#include "vax/RegisterManager.h"
#include "support/Error.h"
#include "support/FaultInject.h"
#include "support/Stats.h"
#include "support/Strings.h"

#include <algorithm>

using namespace gg;

void RegisterManager::reportError(const std::string &Message) {
  // Sticky: the first failure is the root cause; later ones are fallout.
  if (LastError.empty())
    LastError = Message;
  if (OnError)
    OnError(Message);
}

int RegisterManager::lastAllocatable() const {
  int Cap = faultInject().capFreeRegs();
  if (Cap < 0)
    return RegLastAlloc;
  return std::min<int>(RegLastAlloc, RegFirstAlloc + Cap - 1);
}

void RegisterManager::markBusy(int R) {
  Busy[R] = true;
  BusyOrder.push_back(R);
  ++Stats.Allocations;
  ++gg::stats().counter("regs.allocations");
  unsigned Live = 0;
  for (int I = RegFirstAlloc; I <= RegLastAlloc; ++I)
    Live += Busy[I];
  Stats.MaxLive = std::max(Stats.MaxLive, Live);
  gg::stats().histogram("regs.live").record(Live);
}

int RegisterManager::alloc() {
  const int Last = lastAllocatable();
  for (int R = RegFirstAlloc; R <= Last; ++R) {
    if (!Busy[R]) {
      markBusy(R);
      return R;
    }
  }
  if (!spillOne()) {
    // Recoverable: the caller's sticky-error check discards this tree.
    // RegFirstAlloc is a defined value so downstream formatting stays
    // well-behaved until the error is observed.
    return RegFirstAlloc;
  }
  for (int R = RegFirstAlloc; R <= Last; ++R) {
    if (!Busy[R]) {
      markBusy(R);
      return R;
    }
  }
  gg_unreachable("spill did not free a register");
}

int RegisterManager::allocPreferring(const Operand &A, const Operand &B) {
  // Reuse a plain register source as the destination when possible; the
  // source value dies at this instruction.
  if (A.isReg() && isAllocatable(A.Base))
    return A.Base;
  if (B.isReg() && isAllocatable(B.Base))
    return B.Base;
  return alloc();
}

void RegisterManager::free(int R) {
  if (!isAllocatable(R))
    return;
  if (!Busy[R])
    return;
  Busy[R] = false;
  PinCount[R] = 0;
  BusyOrder.erase(std::remove(BusyOrder.begin(), BusyOrder.end(), R),
                  BusyOrder.end());
}

void RegisterManager::reclaim(const Operand &O, int KeepReg) {
  auto Release = [&](int R) {
    if (R >= 0 && R != KeepReg && isAllocatable(R))
      free(R);
  };
  Release(O.Base);
  Release(O.Index);
}

void RegisterManager::pin(int R) {
  if (isAllocatable(R))
    ++PinCount[R];
}

void RegisterManager::unpin(int R) {
  if (isAllocatable(R)) {
    assert(PinCount[R] > 0 && "unbalanced unpin");
    --PinCount[R];
  }
}

void RegisterManager::claim(int R) {
  assert(isAllocatable(R) && !Busy[R] && "claiming a busy register");
  markBusy(R);
}

bool RegisterManager::evict(int R) {
  if (!isAllocatable(R) || !Busy[R])
    return true;
  if (PinCount[R] > 0 || !Spillable(R)) {
    reportError(strf("cannot evict register %s (pinned or not relocatable)",
                     regName(R)));
    return false;
  }
  int CellOffset = AllocSpillCell();
  Operand Cell = Operand::disp(RegFP, CellOffset, Ty::L);
  Cell.Spilled = true;
  SpillStore(R, Cell);
  ++Stats.Spills;
  ++gg::stats().counter("regs.spills");
  free(R);
  return true;
}

void RegisterManager::noteUnspill() {
  ++Stats.Unspills;
  ++gg::stats().counter("regs.unspills");
}

int RegisterManager::numFree() const {
  int N = 0;
  for (int R = RegFirstAlloc; R <= RegLastAlloc; ++R)
    N += !Busy[R];
  return N;
}

bool RegisterManager::spillOne() {
  // "If there is no allocatable register available, a register from the
  // bottom of the stack is spilled" — the oldest unpinned allocation
  // whose value the semantics can relocate.
  for (int R : BusyOrder) {
    if (PinCount[R] > 0 || !Spillable(R))
      continue;
    int CellOffset = AllocSpillCell();
    Operand Cell = Operand::disp(RegFP, CellOffset, Ty::L);
    Cell.Spilled = true;
    SpillStore(R, Cell);
    ++Stats.Spills;
    ++gg::stats().counter("regs.spills");
    free(R);
    return true;
  }
  reportError("all registers are pinned inside addressing modes; "
              "expression too complex for the simple register manager");
  return false;
}

void RegisterManager::resetForStatement() {
  for (int R = RegFirstAlloc; R <= RegLastAlloc; ++R) {
    Busy[R] = false;
    PinCount[R] = 0;
  }
  BusyOrder.clear();
  LastError.clear();
}

bool RegisterManager::anyBusy() const {
  for (int R = RegFirstAlloc; R <= RegLastAlloc; ++R)
    if (Busy[R])
      return true;
  return false;
}
