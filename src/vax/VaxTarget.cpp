//===- VaxTarget.cpp - bundled VAX tables and matcher ------------------------===//

#include "vax/VaxTarget.h"
#include "support/Coverage.h"
#include "support/Profile.h"
#include "support/Strings.h"
#include "support/Trace.h"
#include "vax/InstrTable.h"

using namespace gg;

/// FNV-1a over the expanded grammar and table shape: two targets with the
/// same fingerprint index productions/states identically, so gg-report
/// can trust a freshly built target's names for the ids in an artifact.
std::string VaxTarget::fingerprint(const Grammar &G, const PackedTables &T) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](std::string_view S) {
    for (char C : S) {
      H ^= static_cast<unsigned char>(C);
      H *= 1099511628211ull;
    }
    H ^= 0xff;
    H *= 1099511628211ull;
  };
  Mix(strf("%zu/%d/%d/%zu", G.numProductions(), T.numStates(), T.numTerms(),
           T.numDynPoints()));
  for (const Production &P : G.productions()) {
    Mix(G.symbolName(P.Lhs));
    for (SymId S : P.Rhs)
      Mix(G.symbolName(S));
    Mix(P.SemTag);
  }
  return strf("%016llx", static_cast<unsigned long long>(H));
}

std::unique_ptr<VaxTarget>
VaxTarget::create(std::string &Err, const VaxGrammarOptions &GrammarOpts,
                  BuildOptions TableOpts, MatcherOptions MatchOpts) {
  TraceSpan Span("target.create");
  std::unique_ptr<VaxTarget> T(new VaxTarget());
  DiagnosticSink Diags;
  {
    TraceSpan GrammarSpan("target.grammar");
    if (!buildVaxGrammar(T->G, T->Spec, Diags, GrammarOpts)) {
      Err = "VAX description error:\n" + Diags.renderAll();
      return nullptr;
    }
  }
  if (!TableOpts.TerminalCategory)
    TableOpts.TerminalCategory = vaxTerminalCategory;
  T->Build = buildTables(T->G, TableOpts);
  if (!T->Build.Ok) {
    Err = strf("VAX table construction failed: %s", T->Build.Error.c_str());
    return nullptr;
  }
  T->Packed = PackedTables::pack(T->Build.Tables);
  T->M = std::make_unique<Matcher>(T->G, T->Packed, MatchOpts);
  // Register the coverage dimensions while target construction is still
  // serial: instruction-table rows by name, and the grammar/tables
  // identity embedded in every gg-coverage-v1 / gg-profile-v1 artifact.
  std::vector<std::string> Rows;
  Rows.reserve(numClusters());
  for (size_t I = 0; I < numClusters(); ++I)
    Rows.push_back(clusterAt(I).Tag);
  coverage().sizeInstrRows(Rows);
  coverage().setFingerprint(fingerprint(T->G, T->Packed));
  profile().setFingerprint(fingerprint(T->G, T->Packed));
  return T;
}
