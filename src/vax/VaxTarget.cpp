//===- VaxTarget.cpp - bundled VAX tables and matcher ------------------------===//

#include "vax/VaxTarget.h"
#include "support/Strings.h"
#include "support/Trace.h"

using namespace gg;

std::unique_ptr<VaxTarget>
VaxTarget::create(std::string &Err, const VaxGrammarOptions &GrammarOpts,
                  BuildOptions TableOpts, MatcherOptions MatchOpts) {
  TraceSpan Span("target.create");
  std::unique_ptr<VaxTarget> T(new VaxTarget());
  DiagnosticSink Diags;
  {
    TraceSpan GrammarSpan("target.grammar");
    if (!buildVaxGrammar(T->G, T->Spec, Diags, GrammarOpts)) {
      Err = "VAX description error:\n" + Diags.renderAll();
      return nullptr;
    }
  }
  if (!TableOpts.TerminalCategory)
    TableOpts.TerminalCategory = vaxTerminalCategory;
  T->Build = buildTables(T->G, TableOpts);
  if (!T->Build.Ok) {
    Err = strf("VAX table construction failed: %s", T->Build.Error.c_str());
    return nullptr;
  }
  T->Packed = PackedTables::pack(T->Build.Tables);
  T->M = std::make_unique<Matcher>(T->G, T->Packed, MatchOpts);
  return T;
}
