//===- Emitter.h - assembly output buffer -----------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects generated assembly text (phase 4 output). Tracks instruction
/// counts for the code-quality experiments.
///
//===----------------------------------------------------------------------===//

#ifndef GG_VAX_EMITTER_H
#define GG_VAX_EMITTER_H

#include "support/Interner.h"
#include "vax/Operand.h"

#include <string>
#include <vector>

namespace gg {

/// An append-only assembly buffer.
class AsmEmitter {
public:
  explicit AsmEmitter(const Interner &Syms) : Syms(Syms) {}

  /// Emits "\topcode\top1,op2,...".
  void inst(const std::string &Opcode, const std::vector<Operand> &Ops);

  /// Emits an instruction with pre-formatted operand text.
  void instRaw(const std::string &Opcode,
               const std::vector<std::string> &Ops);

  void label(InternedString Name);
  void labelText(const std::string &Name);
  void directive(const std::string &Text);
  void comment(const std::string &Text);
  void blank() { Lines.push_back(""); }

  const std::vector<std::string> &lines() const { return Lines; }

  /// Replaces a previously emitted line (prologue frame-size patching).
  void patchLine(size_t Index, const std::string &Text) {
    Lines[Index] = Text;
  }

  /// Mutable access for whole-stream rewriting (the peephole optimizer).
  std::vector<std::string> &linesMutable() { return Lines; }
  size_t instructionCount() const { return NumInsts; }
  size_t lineCount() const { return Lines.size(); }

  /// The full assembly text.
  std::string text() const;

  const Interner &interner() const { return Syms; }

private:
  const Interner &Syms;
  std::vector<std::string> Lines;
  size_t NumInsts = 0;
};

} // namespace gg

#endif // GG_VAX_EMITTER_H
