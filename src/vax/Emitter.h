//===- Emitter.h - assembly output buffer -----------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects generated assembly text (phase 4 output). Tracks instruction
/// counts for the code-quality experiments and its own wall-clock time so
/// the Figure-2 accounting can report output generation (phase 4)
/// separately from the instruction selection it is interleaved with.
///
/// In explain mode each instruction line is annotated with the grammar
/// production whose semantic action emitted it (set via setContext() by
/// the replay loop), turning the output into a self-describing record of
/// which pattern matched what.
///
//===----------------------------------------------------------------------===//

#ifndef GG_VAX_EMITTER_H
#define GG_VAX_EMITTER_H

#include "support/Interner.h"
#include "support/Timer.h"
#include "vax/Operand.h"

#include <string>
#include <vector>

namespace gg {

/// An append-only assembly buffer.
class AsmEmitter {
public:
  explicit AsmEmitter(const Interner &Syms) : Syms(Syms) {}

  /// Emits "\topcode\top1,op2,...".
  void inst(const std::string &Opcode, const std::vector<Operand> &Ops);

  /// Emits an instruction with pre-formatted operand text.
  void instRaw(const std::string &Opcode,
               const std::vector<std::string> &Ops);

  void label(InternedString Name);
  void labelText(const std::string &Name);
  void directive(const std::string &Text);
  void comment(const std::string &Text);
  void blank() { Lines.push_back(""); }

  const std::vector<std::string> &lines() const { return Lines; }

  /// Replaces a previously emitted line (prologue frame-size patching).
  void patchLine(size_t Index, const std::string &Text) {
    Lines[Index] = Text;
  }

  /// Mutable access for whole-stream rewriting (the peephole optimizer).
  std::vector<std::string> &linesMutable() { return Lines; }
  size_t instructionCount() const { return NumInsts; }
  size_t lineCount() const { return Lines.size(); }

  /// A position in the output stream; rollback() discards everything
  /// emitted after the mark. The degradation ladder uses this to drop the
  /// partial output of a tree whose match or replay failed before
  /// splicing in the fallback generator's code.
  struct Mark {
    size_t NumLines = 0;
    size_t NumInsts = 0;
  };
  Mark mark() const { return {Lines.size(), NumInsts}; }
  void rollback(const Mark &M) {
    Lines.resize(M.NumLines);
    NumInsts = M.NumInsts;
  }

  /// Splices another emitter's whole output onto the end of this one,
  /// consuming it. The parallel code generator compiles each function into
  /// a private buffer and stitches the buffers in source order, so output
  /// is byte-identical to the single-threaded stream at any thread count.
  /// The donor's phase-4 seconds are folded in as well.
  void append(AsmEmitter &&Other) {
    Lines.insert(Lines.end(),
                 std::make_move_iterator(Other.Lines.begin()),
                 std::make_move_iterator(Other.Lines.end()));
    NumInsts += Other.NumInsts;
    ForeignEmitSeconds += Other.emitSeconds();
    Other.Lines.clear();
    Other.NumInsts = 0;
  }

  /// The full assembly text.
  std::string text() const;

  /// Wall-clock seconds spent formatting instructions and rendering the
  /// final text — the paper's phase 4 (output generation). Includes time
  /// charged by emitters spliced in via append(); under parallel
  /// compilation this is summed worker time (CPU seconds), not wall time.
  double emitSeconds() const {
    return EmitTimer.seconds() + ForeignEmitSeconds;
  }

  /// Explain mode: annotate each instruction with the production that
  /// reduced it. The context string is set by the instruction generator
  /// around each emitting reduction and cleared between statements.
  void setExplain(bool On) { Explain = On; }
  bool explain() const { return Explain; }
  void setContext(std::string Text) { Context = std::move(Text); }
  void clearContext() { Context.clear(); }

  const Interner &interner() const { return Syms; }

private:
  const Interner &Syms;
  std::vector<std::string> Lines;
  size_t NumInsts = 0;
  mutable Timer EmitTimer; ///< text() is const but charges phase 4
  double ForeignEmitSeconds = 0; ///< phase-4 time of append()ed emitters
  bool Explain = false;
  std::string Context;

  void appendInst(const std::string &Opcode,
                  const std::vector<std::string> &Ops);
};

} // namespace gg

#endif // GG_VAX_EMITTER_H
