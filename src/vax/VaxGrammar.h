//===- VaxGrammar.h - the VAX machine description ---------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the VAX machine description grammar: the generic (pre-
/// replication) spec text and its expansion. Options subset the
/// description for the paper's ablations: reverse operators (experiment
/// E2, §5.1.3) and the number of replicated machine types (E9, §6.4).
///
//===----------------------------------------------------------------------===//

#ifndef GG_VAX_VAXGRAMMAR_H
#define GG_VAX_VAXGRAMMAR_H

#include "mdl/Grammar.h"
#include "mdl/SpecParser.h"

#include <string>

namespace gg {

/// Controls which parts of the description are generated.
struct VaxGrammarOptions {
  /// Include the reverse binary operators introduced by phase 1c
  /// (§5.1.3: +25% grammar, +60% tables in the paper).
  bool ReverseOps = true;
  /// Number of machine size classes replicated: 1 = {l}, 2 = {w,l},
  /// 3 = {b,w,l}. The long forms always exist (addresses are longs).
  int NumSizes = 3;
};

/// Renders the generic machine description spec text.
std::string vaxSpecText(const VaxGrammarOptions &Opts = {});

/// Parses and expands the description into \p Spec and \p G (frozen).
/// Returns false (with diagnostics) on internal description errors.
bool buildVaxGrammar(Grammar &G, MdSpec &Spec, DiagnosticSink &Diags,
                     const VaxGrammarOptions &Opts = {});

/// Terminal-category function for the syntactic-block check: operator
/// terminals of equal arity and result size class share a category; leaf
/// and special terminals are exempt (category 0).
uint32_t vaxTerminalCategory(std::string_view TermName);

} // namespace gg

#endif // GG_VAX_VAXGRAMMAR_H
