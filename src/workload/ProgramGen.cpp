//===- ProgramGen.cpp - synthetic MiniC program generator ---------------------===//

#include "workload/ProgramGen.h"
#include "support/Strings.h"

#include <vector>

using namespace gg;

namespace {

/// xorshift64* — deterministic across platforms.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545f4914f6cdd1dull;
  }
  int range(int N) { return static_cast<int>(next() % N); } // N > 0
  bool chance(int Percent) { return range(100) < Percent; }

private:
  uint64_t State;
};

struct VarDesc {
  std::string Name;
  bool Writable = true;
};

struct ArrayDesc {
  std::string Name;
  int SizePow2 = 8; ///< element count, a power of two (mask indexing)
};

class Generator {
public:
  Generator(uint64_t Seed, const GenOptions &Opts) : R(Seed), Opts(Opts) {}

  std::string run() {
    emitGlobals();
    int NumRec = Opts.UseCalls ? 1 : 0;
    if (NumRec)
      emitRecursionTemplate();
    for (int F = 0; F < Opts.Functions; ++F)
      emitFunction(F);
    emitMain();
    return Out;
  }

private:
  Rng R;
  GenOptions Opts;
  std::string Out;

  std::vector<VarDesc> GlobalVars;
  std::vector<ArrayDesc> GlobalArrays;
  struct FnDesc {
    std::string Name;
    int NumParams;
  };
  std::vector<FnDesc> Fns;

  // Per-function state.
  std::vector<VarDesc> Locals;   ///< readable+writable scalars in scope
  std::vector<VarDesc> ReadOnly; ///< loop counters etc.
  int LoopDepth = 0;
  int NameCounter = 0;

  void line(const char *Fmt, ...) __attribute__((format(printf, 2, 3))) {
    va_list Args;
    va_start(Args, Fmt);
    Out += strfv(Fmt, Args);
    va_end(Args);
    Out += '\n';
  }

  std::string fresh(const char *Prefix) {
    return strf("%s%d", Prefix, NameCounter++);
  }

  const char *randomScalarType() {
    if (!Opts.UseMixedWidths)
      return "int";
    switch (R.range(8)) {
    case 0:
      return "char";
    case 1:
      return "short";
    case 2:
      return "unsigned";
    case 3:
      return "unsigned char";
    case 4:
      return "unsigned short";
    default:
      return "int";
    }
  }

  void emitGlobals() {
    for (int I = 0; I < Opts.GlobalScalars; ++I) {
      std::string Name = strf("g%d", I);
      if (R.chance(50))
        line("%s %s = %d;", randomScalarType(), Name.c_str(),
             R.range(200) - 100);
      else
        line("%s %s;", randomScalarType(), Name.c_str());
      GlobalVars.push_back({Name, true});
    }
    for (int I = 0; I < Opts.GlobalArrays; ++I) {
      ArrayDesc A;
      A.Name = strf("arr%d", I);
      A.SizePow2 = 4 << R.range(3); // 4, 8, 16
      line("int %s[%d];", A.Name.c_str(), A.SizePow2);
      GlobalArrays.push_back(A);
    }
    Out += '\n';
  }

  void emitRecursionTemplate() {
    line("int recsum(int n) {");
    line("  if (n <= 0) return 1;");
    line("  return n + recsum(n - 1);");
    line("}");
    Out += '\n';
    Fns.push_back({"recsum", 1});
  }

  //===--- expressions ---------------------------------------------------------
  std::string readableVar() {
    int Total = static_cast<int>(GlobalVars.size() + Locals.size() +
                                 ReadOnly.size());
    if (Total == 0)
      return std::to_string(R.range(100));
    int I = R.range(Total);
    if (I < static_cast<int>(GlobalVars.size()))
      return GlobalVars[I].Name;
    I -= static_cast<int>(GlobalVars.size());
    if (I < static_cast<int>(Locals.size()))
      return Locals[I].Name;
    I -= static_cast<int>(Locals.size());
    return ReadOnly[I].Name;
  }

  std::string arrayRead() {
    if (GlobalArrays.empty())
      return readableVar();
    const ArrayDesc &A = GlobalArrays[R.range(GlobalArrays.size())];
    return strf("%s[(%s) & %d]", A.Name.c_str(), expr(1).c_str(),
                A.SizePow2 - 1);
  }

  std::string atom() {
    switch (R.range(10)) {
    case 0:
      return std::to_string(R.range(64));
    case 1:
      return strf("(-%d)", R.range(1000));
    case 2:
      return std::to_string(R.range(100000));
    case 3:
    case 4:
      return arrayRead();
    default:
      return readableVar();
    }
  }

  std::string expr(int Depth) {
    if (Depth <= 0)
      return atom();
    switch (R.range(14)) {
    case 0:
      return strf("(%s + %s)", expr(Depth - 1).c_str(),
                  expr(Depth - 1).c_str());
    case 1:
      return strf("(%s - %s)", expr(Depth - 1).c_str(),
                  expr(Depth - 1).c_str());
    case 2:
      return strf("(%s * %s)", expr(Depth - 1).c_str(),
                  expr(Depth - 1).c_str());
    case 3:
      // Non-zero denominator: |1 guarantees it.
      return strf("(%s / (%s | 1))", expr(Depth - 1).c_str(),
                  expr(Depth - 1).c_str());
    case 4:
      return strf("(%s %% (%s | 1))", expr(Depth - 1).c_str(),
                  expr(Depth - 1).c_str());
    case 5:
      return strf("(%s & %s)", expr(Depth - 1).c_str(),
                  expr(Depth - 1).c_str());
    case 6:
      return strf("(%s | %s)", expr(Depth - 1).c_str(),
                  expr(Depth - 1).c_str());
    case 7:
      return strf("(%s ^ %s)", expr(Depth - 1).c_str(),
                  expr(Depth - 1).c_str());
    case 8:
      return strf("(%s << (%s & 7))", expr(Depth - 1).c_str(),
                  atom().c_str());
    case 9:
      return strf("(%s >> (%s & 15))", expr(Depth - 1).c_str(),
                  atom().c_str());
    case 10: {
      const char *Rel[] = {"<", "<=", ">", ">=", "==", "!="};
      return strf("(%s %s %s)", expr(Depth - 1).c_str(), Rel[R.range(6)],
                  expr(Depth - 1).c_str());
    }
    case 11: {
      const char *L[] = {"&&", "||"};
      return strf("(%s %s %s)", expr(Depth - 1).c_str(), L[R.range(2)],
                  expr(Depth - 1).c_str());
    }
    case 12:
      if (R.chance(50))
        return strf("(%s ? %s : %s)", expr(Depth - 1).c_str(),
                    expr(Depth - 1).c_str(), expr(Depth - 1).c_str());
      return strf("(%c%s)", "-~!"[R.range(3)], expr(Depth - 1).c_str());
    default:
      if (Opts.UseCalls && !Fns.empty() && R.chance(40)) {
        const FnDesc &F = Fns[R.range(Fns.size())];
        std::string Args;
        for (int I = 0; I < F.NumParams; ++I) {
          if (I)
            Args += ", ";
          // Keep recursion depth small and positive.
          Args += F.Name == "recsum" ? strf("(%d)", R.range(10))
                                     : expr(Depth - 1);
        }
        return strf("%s(%s)", F.Name.c_str(), Args.c_str());
      }
      return atom();
    }
  }

  std::string writableLval() {
    int NumW = 0;
    for (const VarDesc &V : Locals)
      NumW += V.Writable;
    int Total = static_cast<int>(GlobalVars.size()) + NumW;
    bool UseArray = !GlobalArrays.empty() && R.chance(25);
    if (UseArray || Total == 0) {
      if (GlobalArrays.empty())
        return GlobalVars.empty() ? "g0" : GlobalVars[0].Name;
      const ArrayDesc &A = GlobalArrays[R.range(GlobalArrays.size())];
      // Side-effect-free index: the lvalue may be duplicated by compound
      // assignment or ++/--.
      return strf("%s[(%s) & %d]", A.Name.c_str(), readableVar().c_str(),
                  A.SizePow2 - 1);
    }
    int I = R.range(Total);
    if (I < static_cast<int>(GlobalVars.size()))
      return GlobalVars[I].Name;
    I -= static_cast<int>(GlobalVars.size());
    for (const VarDesc &V : Locals) {
      if (!V.Writable)
        continue;
      if (I-- == 0)
        return V.Name;
    }
    return GlobalVars.empty() ? "g0" : GlobalVars[0].Name;
  }

  //===--- statements ----------------------------------------------------------
  void stmt(int Indent, int Budget) {
    std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
    switch (R.range(12)) {
    case 0:
    case 1:
    case 2:
    case 3: {
      // Assignment or compound assignment.
      std::string L = writableLval();
      if (R.chance(30)) {
        const char *Ops[] = {"+=", "-=", "*=", "|=", "^=", "&=", "<<="};
        Out += strf("%s%s %s %s;\n", Pad.c_str(), L.c_str(),
                    Ops[R.range(7)], expr(2).c_str());
      } else {
        Out += strf("%s%s = %s;\n", Pad.c_str(), L.c_str(),
                    expr(Opts.MaxExprDepth).c_str());
      }
      return;
    }
    case 4: {
      Out += strf("%sif (%s) {\n", Pad.c_str(),
                  expr(Opts.MaxExprDepth - 1).c_str());
      if (Budget > 0)
        stmt(Indent + 1, Budget - 1);
      if (R.chance(50)) {
        Out += strf("%s} else {\n", Pad.c_str());
        if (Budget > 0)
          stmt(Indent + 1, Budget - 1);
      }
      Out += strf("%s}\n", Pad.c_str());
      return;
    }
    case 5: {
      if (LoopDepth >= 2) {
        Out += strf("%sprint(%s);\n", Pad.c_str(), expr(2).c_str());
        return;
      }
      // Canonical counted loop; the counter is read-only inside.
      std::string I = fresh("i");
      int N = 2 + R.range(6);
      Out += strf("%s{ int %s; for (%s = 0; %s < %d; %s = %s + 1) {\n",
                  Pad.c_str(), I.c_str(), I.c_str(), I.c_str(), N,
                  I.c_str(), I.c_str());
      ++LoopDepth;
      ReadOnly.push_back({I, false});
      int Body = 1 + R.range(2);
      for (int K = 0; K < Body && Budget > 0; ++K)
        stmt(Indent + 1, Budget - 1);
      ReadOnly.pop_back();
      --LoopDepth;
      Out += strf("%s} }\n", Pad.c_str());
      return;
    }
    case 6: {
      if (LoopDepth >= 2) {
        Out += strf("%sprint(%s);\n", Pad.c_str(), expr(2).c_str());
        return;
      }
      std::string W = fresh("w");
      int N = 2 + R.range(5);
      Out += strf("%s{ int %s; %s = %d; while (%s > 0) {\n", Pad.c_str(),
                  W.c_str(), W.c_str(), N, W.c_str());
      ++LoopDepth;
      ReadOnly.push_back({W, false});
      if (Budget > 0)
        stmt(Indent + 1, Budget - 1);
      ReadOnly.pop_back();
      --LoopDepth;
      Out += strf("%s%s = %s - 1; } }\n", Pad.c_str(), W.c_str(),
                  W.c_str());
      return;
    }
    case 7:
      if (R.chance(40)) {
        // A small switch over a masked expression.
        Out += strf("%sswitch ((%s) & 3) {\n", Pad.c_str(),
                    expr(2).c_str());
        int Cases = 2 + R.range(2);
        for (int C = 0; C < Cases; ++C) {
          Out += strf("%scase %d: %s = %s; %s\n", Pad.c_str(), C,
                      writableLval().c_str(), expr(1).c_str(),
                      R.chance(70) ? "break;" : "");
        }
        if (R.chance(60))
          Out += strf("%sdefault: %s = %s;\n", Pad.c_str(),
                      writableLval().c_str(), expr(1).c_str());
        Out += strf("%s}\n", Pad.c_str());
        return;
      }
      Out += strf("%sprint(%s);\n", Pad.c_str(),
                  expr(Opts.MaxExprDepth).c_str());
      return;
    case 8: {
      std::string L = writableLval();
      const char *Forms[] = {"%s%s++;\n", "%s%s--;\n", "%s++%s;\n",
                             "%s--%s;\n"};
      Out += strf(Forms[R.range(4)], Pad.c_str(), L.c_str());
      return;
    }
    case 9: {
      if (!Opts.UsePointers || GlobalArrays.empty()) {
        Out += strf("%sprint(%s);\n", Pad.c_str(), expr(2).c_str());
        return;
      }
      // Register-pointer walk over a global array (autoincrement fodder).
      const ArrayDesc &A = GlobalArrays[R.range(GlobalArrays.size())];
      std::string P = fresh("p"), K = fresh("k"), S = fresh("s");
      Out += strf(
          "%s{ register int *%s; int %s; int %s; %s = %s; %s = 0;\n"
          "%s  for (%s = 0; %s < %d; %s = %s + 1) %s = %s + *%s++;\n"
          "%s  print(%s); }\n",
          Pad.c_str(), P.c_str(), K.c_str(), S.c_str(), P.c_str(),
          A.Name.c_str(), S.c_str(), Pad.c_str(), K.c_str(), K.c_str(),
          A.SizePow2, K.c_str(), K.c_str(), S.c_str(), S.c_str(),
          P.c_str(), Pad.c_str(), S.c_str());
      return;
    }
    default: {
      if (Opts.UseCalls && !Fns.empty() && R.chance(60)) {
        const FnDesc &F = Fns[R.range(Fns.size())];
        std::string Args;
        for (int I = 0; I < F.NumParams; ++I) {
          if (I)
            Args += ", ";
          Args += F.Name == "recsum" ? strf("(%d)", R.range(8)) : expr(2);
        }
        Out += strf("%s%s = %s(%s);\n", Pad.c_str(),
                    writableLval().c_str(), F.Name.c_str(), Args.c_str());
        return;
      }
      Out += strf("%s%s = %s;\n", Pad.c_str(), writableLval().c_str(),
                  expr(Opts.MaxExprDepth).c_str());
      return;
    }
    }
  }

  void emitFunction(int Index) {
    Locals.clear();
    ReadOnly.clear();
    LoopDepth = 0;
    std::string Name = strf("fn%d", Index);
    int NumParams = R.range(4);
    std::string Params;
    for (int I = 0; I < NumParams; ++I) {
      if (I)
        Params += ", ";
      std::string P = strf("a%d", I);
      Params += strf("int %s", P.c_str());
      Locals.push_back({P, true});
    }
    line("int %s(%s) {", Name.c_str(), Params.c_str());
    int NumLocals = 1 + R.range(4);
    for (int I = 0; I < NumLocals; ++I) {
      std::string L = strf("v%d", I);
      line("  %s %s; %s = %d;", randomScalarType(), L.c_str(), L.c_str(),
           R.range(100));
      Locals.push_back({L, true});
    }
    for (int I = 0; I < Opts.StmtsPerFunction; ++I)
      stmt(1, 3);
    line("  return %s;", expr(2).c_str());
    line("}");
    Out += '\n';
    Fns.push_back({Name, NumParams});
  }

  void emitMain() {
    Locals.clear();
    ReadOnly.clear();
    LoopDepth = 0;
    line("int main() {");
    line("  int r; r = 0;");
    Locals.push_back({"r", true});
    // Seed the arrays deterministically.
    for (const ArrayDesc &A : GlobalArrays) {
      std::string I = fresh("i");
      line("  { int %s; for (%s = 0; %s < %d; %s = %s + 1) "
           "%s[%s] = %s * 7 - 3; }",
           I.c_str(), I.c_str(), I.c_str(), A.SizePow2, I.c_str(),
           I.c_str(), A.Name.c_str(), I.c_str(), I.c_str());
    }
    for (const FnDesc &F : Fns) {
      std::string Args;
      for (int I = 0; I < F.NumParams; ++I) {
        if (I)
          Args += ", ";
        Args += std::to_string(R.range(50));
      }
      line("  r = r + %s(%s);", F.Name.c_str(), Args.c_str());
      line("  print(r);");
    }
    for (int I = 0; I < 4; ++I)
      stmt(1, 3);
    // Final state dump: catches silent data corruption.
    for (const VarDesc &G : GlobalVars)
      line("  print(%s);", G.Name.c_str());
    for (const ArrayDesc &A : GlobalArrays) {
      std::string I = fresh("i");
      line("  { int %s; for (%s = 0; %s < %d; %s = %s + 1) "
           "r = r + %s[%s] * (%s + 1); }",
           I.c_str(), I.c_str(), I.c_str(), A.SizePow2, I.c_str(),
           I.c_str(), A.Name.c_str(), I.c_str(), I.c_str());
    }
    line("  print(r);");
    line("  return r & 127;");
    line("}");
  }
};

} // namespace

std::string gg::generateProgram(uint64_t Seed, const GenOptions &Opts) {
  Generator G(Seed, Opts);
  return G.run();
}

std::string gg::generateLargeProgram(uint64_t Seed, int Functions) {
  GenOptions Opts;
  Opts.Functions = Functions;
  Opts.GlobalScalars = 8;
  Opts.GlobalArrays = 4;
  Opts.StmtsPerFunction = 18;
  Opts.MaxExprDepth = 4;
  return generateProgram(Seed, Opts);
}
