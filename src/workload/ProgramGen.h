//===- ProgramGen.h - synthetic MiniC program generator ---------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic random MiniC program generator. Two uses:
///
///  * property testing — every generated program must compile through
///    both backends without syntactic blocks and agree with the IR
///    interpreter (the project's stand-in for the paper's C / Pascal /
///    F77 validation suites);
///  * benchmark workloads — the "particular large C program" of paper
///    section 8 is synthesized as a deterministic corpus.
///
/// Generated programs always terminate: loops are canonical counted
/// loops, division denominators are forced non-zero, and the call graph
/// is acyclic except for a bounded recursion template.
///
//===----------------------------------------------------------------------===//

#ifndef GG_WORKLOAD_PROGRAMGEN_H
#define GG_WORKLOAD_PROGRAMGEN_H

#include <cstdint>
#include <string>

namespace gg {

/// Size/feature knobs for generation.
struct GenOptions {
  int Functions = 4;      ///< functions besides main
  int GlobalScalars = 4;
  int GlobalArrays = 2;
  int StmtsPerFunction = 12;
  int MaxExprDepth = 4;
  bool UseMixedWidths = true; ///< char/short/unsigned globals and locals
  bool UsePointers = true;    ///< register pointer walks over arrays
  bool UseCalls = true;
};

/// Generates one self-contained MiniC program from \p Seed.
std::string generateProgram(uint64_t Seed, const GenOptions &Opts = {});

/// A deterministic "large C program" for the compile-speed experiment:
/// roughly \p Functions functions of loop/array/call-heavy code.
std::string generateLargeProgram(uint64_t Seed, int Functions);

} // namespace gg

#endif // GG_WORKLOAD_PROGRAMGEN_H
