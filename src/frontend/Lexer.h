//===- Lexer.h - MiniC lexical analysis -------------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for MiniC, the C subset standing in for the paper's PCC
/// first pass. See Parser.h for the language summary.
///
//===----------------------------------------------------------------------===//

#ifndef GG_FRONTEND_LEXER_H
#define GG_FRONTEND_LEXER_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gg {

enum class Tok : uint8_t {
  End,
  Ident,
  Number,
  // keywords
  KwInt,
  KwChar,
  KwShort,
  KwUnsigned,
  KwVoid,
  KwRegister,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwDo,
  KwBreak,
  KwContinue,
  KwReturn,
  KwSwitch,
  KwCase,
  KwDefault,
  // punctuation / operators
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Assign,
  PlusAssign,
  MinusAssign,
  StarAssign,
  SlashAssign,
  PercentAssign,
  AmpAssign,
  PipeAssign,
  CaretAssign,
  ShlAssign,
  ShrAssign,
  Question,
  Colon,
  PipePipe,
  AmpAmp,
  Pipe,
  Caret,
  Amp,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  Shl,
  Shr,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  PlusPlus,
  MinusMinus,
  Tilde,
  Bang,
};

struct Token {
  Tok Kind = Tok::End;
  std::string Text;  ///< identifier spelling
  int64_t Value = 0; ///< numeric value
  int Line = 1;
};

/// Tokenizes \p Source; returns false on lexical errors.
bool lexMiniC(std::string_view Source, std::vector<Token> &Tokens,
              DiagnosticSink &Diags);

/// Token spelling for diagnostics.
const char *tokName(Tok K);

} // namespace gg

#endif // GG_FRONTEND_LEXER_H
