//===- Parser.h - MiniC parser and IR lowering ------------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniC: the C subset standing in for the paper's PCC first pass. It
/// produces the same style of output PCC's first pass fed its second
/// pass: a forest of typed expression trees per function, with
/// short-circuit / selection / relational operators left *implicit* in
/// the trees — phase 1a of the code generator makes them explicit, as in
/// the paper.
///
/// Language summary:
///   types        int, char, short, unsigned {,char,short}, one-level
///                pointers (T*), one-dimensional arrays of scalars
///   storage      globals (with scalar or brace initializers), locals,
///                parameters, register locals (mapped to r6..r11)
///   statements   blocks, if/else, while, do-while, for, break,
///                continue, return, expression statements
///   expressions  full C operator set over the above (assignment and
///                compound assignment, ?:, || &&, bitwise, equality,
///                relational, shifts, + - * / %, unary - ~ ! * & ++ --,
///                calls, indexing); no structs, floats or multi-level
///                pointers
///   runtime      print(x) and printc(c) builtins (simulator syscalls)
///
/// Deliberate restrictions (diagnosed): compound assignment and ++/--
/// require lvalues without embedded side effects.
///
//===----------------------------------------------------------------------===//

#ifndef GG_FRONTEND_PARSER_H
#define GG_FRONTEND_PARSER_H

#include "ir/Program.h"
#include "support/Error.h"

#include <string_view>

namespace gg {

/// Compiles MiniC \p Source into an IR \p Prog. Returns false with
/// diagnostics on any lexical, syntax or semantic error.
bool compileMiniC(std::string_view Source, Program &Prog,
                  DiagnosticSink &Diags);

} // namespace gg

#endif // GG_FRONTEND_PARSER_H
