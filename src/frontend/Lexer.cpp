//===- Lexer.cpp - MiniC lexical analysis --------------------------------===//

#include "frontend/Lexer.h"
#include "support/Strings.h"

#include <cctype>
#include <unordered_map>

using namespace gg;

const char *gg::tokName(Tok K) {
  switch (K) {
  case Tok::End:
    return "end of input";
  case Tok::Ident:
    return "identifier";
  case Tok::Number:
    return "number";
  case Tok::KwInt:
    return "'int'";
  case Tok::KwChar:
    return "'char'";
  case Tok::KwShort:
    return "'short'";
  case Tok::KwUnsigned:
    return "'unsigned'";
  case Tok::KwVoid:
    return "'void'";
  case Tok::KwRegister:
    return "'register'";
  case Tok::KwIf:
    return "'if'";
  case Tok::KwElse:
    return "'else'";
  case Tok::KwWhile:
    return "'while'";
  case Tok::KwFor:
    return "'for'";
  case Tok::KwDo:
    return "'do'";
  case Tok::KwBreak:
    return "'break'";
  case Tok::KwContinue:
    return "'continue'";
  case Tok::KwReturn:
    return "'return'";
  case Tok::KwSwitch:
    return "'switch'";
  case Tok::KwCase:
    return "'case'";
  case Tok::KwDefault:
    return "'default'";
  case Tok::LParen:
    return "'('";
  case Tok::RParen:
    return "')'";
  case Tok::LBrace:
    return "'{'";
  case Tok::RBrace:
    return "'}'";
  case Tok::LBracket:
    return "'['";
  case Tok::RBracket:
    return "']'";
  case Tok::Semi:
    return "';'";
  case Tok::Comma:
    return "','";
  case Tok::Assign:
    return "'='";
  case Tok::Question:
    return "'?'";
  case Tok::Colon:
    return "':'";
  default:
    return "operator";
  }
}

bool gg::lexMiniC(std::string_view Src, std::vector<Token> &Tokens,
                  DiagnosticSink &Diags) {
  static const std::unordered_map<std::string, Tok> Keywords = {
      {"int", Tok::KwInt},           {"char", Tok::KwChar},
      {"short", Tok::KwShort},       {"unsigned", Tok::KwUnsigned},
      {"void", Tok::KwVoid},         {"register", Tok::KwRegister},
      {"if", Tok::KwIf},             {"else", Tok::KwElse},
      {"while", Tok::KwWhile},       {"for", Tok::KwFor},
      {"do", Tok::KwDo},             {"break", Tok::KwBreak},
      {"continue", Tok::KwContinue}, {"return", Tok::KwReturn},
      {"switch", Tok::KwSwitch},     {"case", Tok::KwCase},
      {"default", Tok::KwDefault},
  };

  size_t I = 0, N = Src.size();
  int Line = 1;
  auto Push = [&](Tok K) { Tokens.push_back({K, "", 0, Line}); };

  while (I < N) {
    char C = Src[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && Src[I + 1] == '/') {
      while (I < N && Src[I] != '\n')
        ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && Src[I + 1] == '*') {
      I += 2;
      while (I + 1 < N && !(Src[I] == '*' && Src[I + 1] == '/')) {
        if (Src[I] == '\n')
          ++Line;
        ++I;
      }
      if (I + 1 >= N) {
        Diags.error("unterminated comment", Line);
        return false;
      }
      I += 2;
      continue;
    }
    if (isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (isalnum(static_cast<unsigned char>(Src[I])) ||
                       Src[I] == '_'))
        ++I;
      std::string Word(Src.substr(Start, I - Start));
      auto It = Keywords.find(Word);
      if (It != Keywords.end())
        Push(It->second);
      else
        Tokens.push_back({Tok::Ident, Word, 0, Line});
      continue;
    }
    if (isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      while (I < N && (isalnum(static_cast<unsigned char>(Src[I]))))
        ++I;
      std::optional<int64_t> V = parseInt(Src.substr(Start, I - Start));
      if (!V) {
        Diags.error(strf("bad numeric literal '%s'",
                         std::string(Src.substr(Start, I - Start)).c_str()),
                    Line);
        return false;
      }
      Tokens.push_back({Tok::Number, "", *V, Line});
      continue;
    }
    if (C == '\'') {
      // Character literal with the common escapes.
      ++I;
      if (I >= N) {
        Diags.error("unterminated character literal", Line);
        return false;
      }
      int64_t V;
      if (Src[I] == '\\' && I + 1 < N) {
        char E = Src[I + 1];
        V = E == 'n' ? '\n' : E == 't' ? '\t' : E == '0' ? 0 : E;
        I += 2;
      } else {
        V = Src[I];
        ++I;
      }
      if (I >= N || Src[I] != '\'') {
        Diags.error("unterminated character literal", Line);
        return false;
      }
      ++I;
      Tokens.push_back({Tok::Number, "", V, Line});
      continue;
    }

    auto Two = [&](char A, char B, Tok K) -> bool {
      if (C == A && I + 1 < N && Src[I + 1] == B) {
        Push(K);
        I += 2;
        return true;
      }
      return false;
    };
    auto Three = [&](const char *S, Tok K) -> bool {
      if (I + 2 < N && Src[I] == S[0] && Src[I + 1] == S[1] &&
          Src[I + 2] == S[2]) {
        Push(K);
        I += 3;
        return true;
      }
      return false;
    };

    if (Three("<<=", Tok::ShlAssign) || Three(">>=", Tok::ShrAssign))
      continue;
    if (Two('<', '<', Tok::Shl) || Two('>', '>', Tok::Shr) ||
        Two('<', '=', Tok::LessEq) || Two('>', '=', Tok::GreaterEq) ||
        Two('=', '=', Tok::EqEq) || Two('!', '=', Tok::NotEq) ||
        Two('&', '&', Tok::AmpAmp) || Two('|', '|', Tok::PipePipe) ||
        Two('+', '+', Tok::PlusPlus) || Two('-', '-', Tok::MinusMinus) ||
        Two('+', '=', Tok::PlusAssign) || Two('-', '=', Tok::MinusAssign) ||
        Two('*', '=', Tok::StarAssign) || Two('/', '=', Tok::SlashAssign) ||
        Two('%', '=', Tok::PercentAssign) || Two('&', '=', Tok::AmpAssign) ||
        Two('|', '=', Tok::PipeAssign) || Two('^', '=', Tok::CaretAssign))
      continue;

    Tok K;
    switch (C) {
    case '(': K = Tok::LParen; break;
    case ')': K = Tok::RParen; break;
    case '{': K = Tok::LBrace; break;
    case '}': K = Tok::RBrace; break;
    case '[': K = Tok::LBracket; break;
    case ']': K = Tok::RBracket; break;
    case ';': K = Tok::Semi; break;
    case ',': K = Tok::Comma; break;
    case '=': K = Tok::Assign; break;
    case '?': K = Tok::Question; break;
    case ':': K = Tok::Colon; break;
    case '|': K = Tok::Pipe; break;
    case '^': K = Tok::Caret; break;
    case '&': K = Tok::Amp; break;
    case '<': K = Tok::Less; break;
    case '>': K = Tok::Greater; break;
    case '+': K = Tok::Plus; break;
    case '-': K = Tok::Minus; break;
    case '*': K = Tok::Star; break;
    case '/': K = Tok::Slash; break;
    case '%': K = Tok::Percent; break;
    case '~': K = Tok::Tilde; break;
    case '!': K = Tok::Bang; break;
    default:
      Diags.error(strf("unexpected character '%c'", C), Line);
      return false;
    }
    Push(K);
    ++I;
  }
  Tokens.push_back({Tok::End, "", 0, Line});
  return true;
}
