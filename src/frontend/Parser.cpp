//===- Parser.cpp - MiniC parser and IR lowering ------------------------------===//

#include "frontend/Parser.h"
#include "frontend/Lexer.h"
#include "support/Strings.h"

#include <unordered_map>
#include <vector>

using namespace gg;

namespace {

/// A MiniC type: scalar, pointer-to-scalar, or array-of-scalar.
struct CType {
  Ty Base = Ty::L;    ///< value type (pointers are unsigned longs)
  bool IsPtr = false;
  bool IsArray = false;
  Ty Elem = Ty::L;    ///< pointee / element type
  int ArrayCount = 0;
  bool IsVoid = false;

  bool isScalar() const { return !IsPtr && !IsArray && !IsVoid; }
  int elemSize() const { return sizeOfTy(Elem); }

  static CType scalar(Ty T) {
    CType C;
    C.Base = T;
    return C;
  }
  static CType pointer(Ty ElemT) {
    CType C;
    C.Base = Ty::UL;
    C.IsPtr = true;
    C.Elem = ElemT;
    return C;
  }
};

/// An expression during lowering: the tree plus its MiniC type. For
/// lvalues, N is the cell tree itself (Name / Indir / Dreg), directly
/// usable both as a value and as an assignment destination.
struct Value {
  Node *N = nullptr;
  CType T;
  bool IsLValue = false;
};

struct VarInfo {
  enum KindTy { Global, Local, Param, RegVar } Kind = Local;
  CType T;
  InternedString Name; ///< global symbol
  int Offset = 0;      ///< fp offset (Local) or ap offset (Param)
  int Reg = -1;        ///< register number (RegVar)
};

struct FnInfo {
  CType Ret;
  int NumParams = 0;
  bool Defined = false;
};

class ParserImpl {
public:
  ParserImpl(const std::vector<Token> &Toks, Program &Prog,
             DiagnosticSink &Diags)
      : Toks(Toks), Prog(Prog), A(*Prog.Arena), Diags(Diags) {}

  bool run() {
    while (!at(Tok::End) && !Failed)
      parseTopLevel();
    return !Failed && !Diags.hasErrors();
  }

private:
  const std::vector<Token> &Toks;
  Program &Prog;
  NodeArena &A;
  DiagnosticSink &Diags;
  size_t Pos = 0;
  bool Failed = false;

  std::vector<std::unordered_map<std::string, VarInfo>> Scopes;
  std::unordered_map<std::string, FnInfo> Funcs;
  Function *CurF = nullptr;
  CType CurRet;
  std::vector<InternedString> BreakTargets, ContinueTargets;
  int NextRegVar = RegFirstVar;

  //===--- token plumbing ---------------------------------------------------
  const Token &peek(int Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  bool at(Tok K) const { return peek().Kind == K; }
  int line() const { return peek().Line; }
  Token take() { return Toks[Pos < Toks.size() - 1 ? Pos++ : Pos]; }
  bool accept(Tok K) {
    if (!at(K))
      return false;
    take();
    return true;
  }
  void expect(Tok K, const char *Ctx) {
    if (accept(K))
      return;
    error(strf("expected %s %s, found %s", tokName(K), Ctx,
               tokName(peek().Kind)));
  }
  void error(const std::string &Message) {
    if (!Failed)
      Diags.error(Message, line());
    Failed = true;
  }

  //===--- symbols ------------------------------------------------------------
  VarInfo *lookupVar(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  void declareVar(const std::string &Name, VarInfo Info) {
    if (Scopes.back().count(Name)) {
      error(strf("redefinition of '%s'", Name.c_str()));
      return;
    }
    Scopes.back().emplace(Name, Info);
  }

  //===--- types ---------------------------------------------------------------
  bool atTypeStart() const {
    switch (peek().Kind) {
    case Tok::KwInt:
    case Tok::KwChar:
    case Tok::KwShort:
    case Tok::KwUnsigned:
    case Tok::KwVoid:
      return true;
    default:
      return false;
    }
  }

  /// Parses "int", "unsigned char", "char *", "void", ...
  CType parseType() {
    CType C;
    bool Unsigned = accept(Tok::KwUnsigned);
    if (accept(Tok::KwChar))
      C.Base = Unsigned ? Ty::UB : Ty::B;
    else if (accept(Tok::KwShort))
      C.Base = Unsigned ? Ty::UW : Ty::W;
    else if (accept(Tok::KwInt))
      C.Base = Unsigned ? Ty::UL : Ty::L;
    else if (!Unsigned && accept(Tok::KwVoid))
      C.IsVoid = true;
    else if (Unsigned)
      C.Base = Ty::UL; // bare "unsigned"
    else {
      error("expected a type");
      return C;
    }
    if (accept(Tok::Star)) {
      if (C.IsVoid) {
        error("void pointers are not supported");
        return C;
      }
      C = CType::pointer(C.Base);
      if (at(Tok::Star))
        error("multi-level pointers are not supported");
    }
    return C;
  }

  //===--- top level ------------------------------------------------------------
  void parseTopLevel() {
    CType T = parseType();
    if (Failed)
      return;
    if (!at(Tok::Ident)) {
      error("expected an identifier");
      return;
    }
    std::string Name = take().Text;
    if (at(Tok::LParen)) {
      parseFunction(T, Name);
      return;
    }
    parseGlobal(T, Name);
  }

  void parseGlobal(CType T, const std::string &Name) {
    if (T.IsVoid) {
      error("variables cannot have type void");
      return;
    }
    GlobalVar G;
    G.Name = Prog.Syms.intern(Name);
    if (Prog.findGlobal(G.Name)) {
      error(strf("redefinition of global '%s'", Name.c_str()));
      return;
    }
    CType VarT = T;
    if (accept(Tok::LBracket)) {
      if (!at(Tok::Number)) {
        error("array size must be a constant");
        return;
      }
      int64_t N = take().Value;
      expect(Tok::RBracket, "after array size");
      if (N <= 0 || N > 1 << 20) {
        error("bad array size");
        return;
      }
      if (T.IsPtr) {
        error("arrays of pointers are not supported");
        return;
      }
      VarT.IsArray = true;
      VarT.Elem = T.Base;
      VarT.ArrayCount = static_cast<int>(N);
      VarT.Base = Ty::UL;
      G.ElemTy = T.Base;
      G.Count = static_cast<int>(N);
    } else {
      G.ElemTy = T.IsPtr ? Ty::UL : T.Base;
      G.Count = 1;
    }
    if (accept(Tok::Assign)) {
      if (accept(Tok::LBrace)) {
        do {
          G.Init.push_back(parseConstInit());
        } while (accept(Tok::Comma) && !at(Tok::RBrace));
        expect(Tok::RBrace, "after initializer list");
      } else {
        G.Init.push_back(parseConstInit());
      }
    }
    expect(Tok::Semi, "after global declaration");
    Prog.Globals.push_back(std::move(G));
    // Record in the global scope for lookup.
    if (Scopes.empty())
      Scopes.emplace_back();
    VarInfo Info;
    Info.Kind = VarInfo::Global;
    Info.T = VarT;
    Info.Name = Prog.Syms.intern(Name);
    Scopes.front().emplace(Name, Info);
  }

  int64_t parseConstInit() {
    bool Negate = accept(Tok::Minus);
    if (!at(Tok::Number)) {
      error("global initializers must be integer constants");
      return 0;
    }
    int64_t V = take().Value;
    return Negate ? -V : V;
  }

  void parseFunction(CType Ret, const std::string &Name) {
    expect(Tok::LParen, "after function name");
    if (Scopes.empty())
      Scopes.emplace_back();

    Function F;
    F.Name = Prog.Syms.intern(Name);
    Scopes.emplace_back(); // parameter scope
    int ParamIndex = 0;
    if (!at(Tok::RParen) && !at(Tok::KwVoid)) {
      do {
        CType PT = parseType();
        if (PT.IsVoid) {
          error("parameters cannot be void");
          break;
        }
        if (!at(Tok::Ident)) {
          error("expected a parameter name");
          break;
        }
        std::string PName = take().Text;
        VarInfo Info;
        Info.Kind = VarInfo::Param;
        Info.T = PT;
        Info.Offset = 4 + 4 * ParamIndex;
        declareVar(PName, Info);
        ++ParamIndex;
      } while (accept(Tok::Comma));
    } else {
      accept(Tok::KwVoid);
    }
    expect(Tok::RParen, "after parameters");
    F.NumArgs = ParamIndex;

    auto [It, Inserted] = Funcs.emplace(Name, FnInfo{Ret, ParamIndex, false});
    if (!Inserted &&
        (It->second.NumParams != ParamIndex || It->second.Defined)) {
      error(strf("conflicting or duplicate definition of '%s'",
                 Name.c_str()));
    }

    if (accept(Tok::Semi)) { // prototype
      Scopes.pop_back();
      return;
    }
    It->second.Defined = true;

    CurF = &F;
    CurRet = Ret;
    NextRegVar = RegFirstVar;
    parseBlock();
    Scopes.pop_back();
    CurF = nullptr;

    // Guarantee a well-defined return value even when control falls off
    // the end (keeps interpreter and simulator observably identical).
    if (F.Body.empty() || !F.Body.back()->is(Op::Ret)) {
      Node *R = A.make(Op::Ret, Ty::L);
      R->Kids[0] = Ret.IsVoid ? nullptr : A.con(Ty::L, 0);
      F.Body.push_back(R);
    }
    Prog.Functions.push_back(std::move(F));
  }

  //===--- statements --------------------------------------------------------
  void emitStmt(Node *S) { CurF->Body.push_back(S); }
  void emitLabel(InternedString L) { emitStmt(A.labelDef(L)); }
  void emitJump(InternedString L) {
    emitStmt(A.unary(Op::Jump, Ty::L, A.label(L)));
  }
  /// Branch to \p Target when \p CondV is zero/nonzero per \p WhenTrue.
  void emitCondBranch(Value CondV, InternedString Target, bool WhenTrue) {
    Node *Cmp = A.cmp(WhenTrue ? Cond::NE : Cond::EQ, CondV.N,
                      A.con(CondV.N->Type, 0), CondV.N->Type);
    emitStmt(A.bin(Op::CBranch, Ty::L, Cmp, A.label(Target)));
  }

  void parseBlock() {
    expect(Tok::LBrace, "to open a block");
    Scopes.emplace_back();
    while (!at(Tok::RBrace) && !at(Tok::End) && !Failed)
      parseStmt();
    Scopes.pop_back();
    expect(Tok::RBrace, "to close a block");
  }

  void parseStmt() {
    if (Failed)
      return;
    if (at(Tok::LBrace)) {
      parseBlock();
      return;
    }
    if (accept(Tok::Semi))
      return;
    if (at(Tok::KwRegister) || atTypeStart()) {
      parseLocalDecl();
      return;
    }
    if (accept(Tok::KwIf)) {
      parseIf();
      return;
    }
    if (accept(Tok::KwWhile)) {
      parseWhile();
      return;
    }
    if (accept(Tok::KwDo)) {
      parseDoWhile();
      return;
    }
    if (accept(Tok::KwFor)) {
      parseFor();
      return;
    }
    if (accept(Tok::KwSwitch)) {
      parseSwitch();
      return;
    }
    if (accept(Tok::KwBreak)) {
      if (BreakTargets.empty())
        error("'break' outside a loop");
      else
        emitJump(BreakTargets.back());
      expect(Tok::Semi, "after break");
      return;
    }
    if (accept(Tok::KwContinue)) {
      if (ContinueTargets.empty())
        error("'continue' outside a loop");
      else
        emitJump(ContinueTargets.back());
      expect(Tok::Semi, "after continue");
      return;
    }
    if (accept(Tok::KwReturn)) {
      Node *R = A.make(Op::Ret, Ty::L);
      if (!at(Tok::Semi)) {
        if (CurRet.IsVoid)
          error("returning a value from a void function");
        Value V = parseExpr();
        Node *N = V.N;
        if (sizeClassOf(N->Type) != SizeClass::L)
          N = A.unary(Op::Conv, Ty::L, N);
        R->Kids[0] = N;
      } else if (!CurRet.IsVoid) {
        R->Kids[0] = A.con(Ty::L, 0);
      }
      emitStmt(R);
      expect(Tok::Semi, "after return");
      return;
    }

    // Expression statement.
    Value V = parseExpr();
    expect(Tok::Semi, "after expression");
    if (Failed)
      return;
    if (V.N->is(Op::Call)) {
      Node *S = A.make(Op::CallStmt, V.N->Type);
      S->Kids[1] = V.N;
      emitStmt(S);
      return;
    }
    if (V.N->is(Op::Assign) || hasSideEffectsTree(V.N)) {
      emitStmt(V.N);
      return;
    }
    Diags.warning("expression statement has no effect", line());
  }

  static bool hasSideEffectsTree(const Node *N) {
    if (!N)
      return false;
    switch (N->Opcode) {
    case Op::Assign:
    case Op::AssignR:
    case Op::Call:
    case Op::PostInc:
    case Op::PreDec:
      return true;
    default:
      return hasSideEffectsTree(N->left()) || hasSideEffectsTree(N->right());
    }
  }

  void parseLocalDecl() {
    bool Register = accept(Tok::KwRegister);
    CType T = parseType();
    if (T.IsVoid) {
      error("variables cannot have type void");
      return;
    }
    do {
      if (!at(Tok::Ident)) {
        error("expected a variable name");
        return;
      }
      std::string Name = take().Text;
      VarInfo Info;
      Info.T = T;
      if (accept(Tok::LBracket)) {
        if (Register) {
          error("register arrays are not supported");
          return;
        }
        if (!at(Tok::Number)) {
          error("array size must be a constant");
          return;
        }
        int64_t N = take().Value;
        expect(Tok::RBracket, "after array size");
        if (N <= 0 || N > 1 << 16 || T.IsPtr) {
          error("bad local array");
          return;
        }
        Info.T.IsArray = true;
        Info.T.Elem = T.Base;
        Info.T.ArrayCount = static_cast<int>(N);
        Info.T.Base = Ty::UL;
        Info.Kind = VarInfo::Local;
        Info.Offset = CurF->allocLocal(static_cast<int>(N) * sizeOfTy(T.Base));
      } else if (Register && sizeClassOf(T.Base) == SizeClass::L &&
                 NextRegVar <= RegLastVar) {
        Info.Kind = VarInfo::RegVar;
        Info.Reg = NextRegVar++;
        CurF->RegVars.push_back(Info.Reg);
      } else {
        Info.Kind = VarInfo::Local;
        Info.Offset = CurF->allocLocal(sizeOfTy(valueTy(T)));
      }
      declareVar(Name, Info);
      if (accept(Tok::Assign)) {
        if (Info.T.IsArray) {
          error("local array initializers are not supported");
          return;
        }
        Value Cell = varCell(Info);
        Value Init = parseAssignExpr();
        emitStmt(makeAssign(Cell, Init));
      }
    } while (accept(Tok::Comma));
    expect(Tok::Semi, "after declaration");
  }

  void parseIf() {
    expect(Tok::LParen, "after if");
    Value C = parseExpr();
    expect(Tok::RParen, "after condition");
    InternedString LElse = Prog.freshLabel();
    emitCondBranch(C, LElse, /*WhenTrue=*/false);
    parseStmt();
    if (accept(Tok::KwElse)) {
      InternedString LEnd = Prog.freshLabel();
      emitJump(LEnd);
      emitLabel(LElse);
      parseStmt();
      emitLabel(LEnd);
    } else {
      emitLabel(LElse);
    }
  }

  void parseWhile() {
    InternedString LCond = Prog.freshLabel(), LEnd = Prog.freshLabel();
    emitLabel(LCond);
    expect(Tok::LParen, "after while");
    Value C = parseExpr();
    expect(Tok::RParen, "after condition");
    emitCondBranch(C, LEnd, /*WhenTrue=*/false);
    BreakTargets.push_back(LEnd);
    ContinueTargets.push_back(LCond);
    parseStmt();
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    emitJump(LCond);
    emitLabel(LEnd);
  }

  void parseDoWhile() {
    InternedString LBody = Prog.freshLabel(), LCond = Prog.freshLabel(),
                   LEnd = Prog.freshLabel();
    emitLabel(LBody);
    BreakTargets.push_back(LEnd);
    ContinueTargets.push_back(LCond);
    parseStmt();
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    emitLabel(LCond);
    expect(Tok::KwWhile, "after do body");
    expect(Tok::LParen, "after while");
    Value C = parseExpr();
    expect(Tok::RParen, "after condition");
    expect(Tok::Semi, "after do-while");
    emitCondBranch(C, LBody, /*WhenTrue=*/true);
    emitLabel(LEnd);
  }

  void parseFor() {
    expect(Tok::LParen, "after for");
    Scopes.emplace_back();
    if (!at(Tok::Semi)) {
      if (atTypeStart() || at(Tok::KwRegister)) {
        parseLocalDecl(); // consumes the ';'
      } else {
        emitValueAsStmt(parseExpr());
        expect(Tok::Semi, "after for initializer");
      }
    } else {
      take();
    }
    InternedString LCond = Prog.freshLabel(), LStep = Prog.freshLabel(),
                   LEnd = Prog.freshLabel();
    emitLabel(LCond);
    if (!at(Tok::Semi)) {
      Value C = parseExpr();
      emitCondBranch(C, LEnd, /*WhenTrue=*/false);
    }
    expect(Tok::Semi, "after for condition");
    // Save the step expression tokens by position: parse it later.
    size_t StepStart = Pos;
    int Depth = 0;
    while (!at(Tok::End)) {
      if (at(Tok::LParen))
        ++Depth;
      if (at(Tok::RParen)) {
        if (Depth == 0)
          break;
        --Depth;
      }
      take();
    }
    size_t StepEnd = Pos;
    expect(Tok::RParen, "after for header");
    BreakTargets.push_back(LEnd);
    ContinueTargets.push_back(LStep);
    parseStmt();
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    emitLabel(LStep);
    if (StepEnd > StepStart) {
      size_t Resume = Pos;
      Pos = StepStart;
      emitValueAsStmt(parseExpr());
      Pos = Resume;
    }
    emitJump(LCond);
    emitLabel(LEnd);
    Scopes.pop_back();
  }

  /// switch lowers to a compare chain (the paper's description omits the
  /// VAX casel instruction, and PCC-era compilers used chains for sparse
  /// cases anyway). Layout: jump to a dispatch block placed after the
  /// bodies, so cases can be discovered in one pass; fall-through comes
  /// free from the label sequence.
  void parseSwitch() {
    expect(Tok::LParen, "after switch");
    Value Scrut = parseExpr();
    expect(Tok::RParen, "after switch expression");

    // Capture the scrutinee once.
    VarInfo Tmp;
    Tmp.Kind = VarInfo::Local;
    Tmp.T = CType::scalar(Ty::L);
    Tmp.Offset = CurF->allocLocal(4);
    Value Cell = varCell(Tmp);
    emitStmt(makeAssign(Cell, Scrut));

    InternedString LDispatch = Prog.freshLabel(), LEnd = Prog.freshLabel();
    emitJump(LDispatch);

    struct CaseArm {
      int64_t Value;
      InternedString Label;
    };
    std::vector<CaseArm> Arms;
    InternedString LDefault;
    bool HasDefault = false;

    expect(Tok::LBrace, "to open the switch body");
    Scopes.emplace_back();
    BreakTargets.push_back(LEnd);
    while (!at(Tok::RBrace) && !at(Tok::End) && !Failed) {
      if (accept(Tok::KwCase)) {
        bool Neg = accept(Tok::Minus);
        if (!at(Tok::Number)) {
          error("case labels must be integer constants");
          break;
        }
        int64_t V = take().Value;
        if (Neg)
          V = -V;
        expect(Tok::Colon, "after case value");
        for (const CaseArm &A : Arms)
          if (A.Value == V)
            error(strf("duplicate case value %lld", (long long)V));
        InternedString L = Prog.freshLabel();
        Arms.push_back({V, L});
        emitLabel(L);
        continue;
      }
      if (accept(Tok::KwDefault)) {
        expect(Tok::Colon, "after default");
        if (HasDefault)
          error("duplicate default label");
        HasDefault = true;
        LDefault = Prog.freshLabel();
        emitLabel(LDefault);
        continue;
      }
      parseStmt();
    }
    BreakTargets.pop_back();
    Scopes.pop_back();
    expect(Tok::RBrace, "to close the switch body");

    emitJump(LEnd);
    emitLabel(LDispatch);
    for (const CaseArm &Arm : Arms) {
      Node *Cmp = A.cmp(Cond::EQ, A.clone(Cell.N),
                        A.con(Ty::L, Arm.Value), Ty::L);
      emitStmt(A.bin(Op::CBranch, Ty::L, Cmp, A.label(Arm.Label)));
    }
    emitJump(HasDefault ? LDefault : LEnd);
    emitLabel(LEnd);
  }

  void emitValueAsStmt(Value V) {
    if (Failed || !V.N)
      return;
    if (V.N->is(Op::Call)) {
      Node *S = A.make(Op::CallStmt, V.N->Type);
      S->Kids[1] = V.N;
      emitStmt(S);
      return;
    }
    if (hasSideEffectsTree(V.N) || V.N->is(Op::Assign))
      emitStmt(V.N);
  }

  //===--- expressions ----------------------------------------------------------
  static CType promote(CType T) {
    if (T.IsArray)
      return CType::pointer(T.Elem);
    if (T.IsPtr)
      return T;
    switch (T.Base) {
    case Ty::B:
    case Ty::W:
    case Ty::UB:
    case Ty::UW:
      return CType::scalar(Ty::L); // integral promotion (value-preserving)
    default:
      return T;
    }
  }

  static CType usualArith(CType X, CType Y) {
    X = promote(X);
    Y = promote(Y);
    if (X.Base == Ty::UL || Y.Base == Ty::UL)
      return CType::scalar(Ty::UL);
    return CType::scalar(Ty::L);
  }

  static Ty valueTy(const CType &T) { return T.IsPtr ? Ty::UL : T.Base; }

  Node *varCellNode(const VarInfo &V) {
    Ty T = valueTy(V.T);
    switch (V.Kind) {
    case VarInfo::Global:
      return A.name(T, V.Name);
    case VarInfo::Local:
      return A.local(T, V.Offset);
    case VarInfo::Param:
      return A.argCell(T, V.Offset);
    case VarInfo::RegVar:
      return A.dreg(V.Reg, T);
    }
    gg_unreachable("bad variable kind");
  }

  Value varCell(const VarInfo &V) {
    Value R;
    R.T = V.T;
    R.IsLValue = !V.T.IsArray;
    if (V.T.IsArray) {
      // Arrays decay to their base address.
      switch (V.Kind) {
      case VarInfo::Global:
        R.N = A.gaddr(V.Name);
        R.N->Type = Ty::UL;
        break;
      case VarInfo::Local:
        R.N = A.bin(Op::Plus, Ty::UL, A.con(Ty::L, V.Offset),
                    A.dreg(RegFP, Ty::L));
        break;
      default:
        error("array parameters are not supported");
        R.N = A.con(Ty::L, 0);
        break;
      }
      R.T = CType::pointer(V.T.Elem);
      R.T.IsArray = true; // remember for indexing shape
      R.T.Elem = V.T.Elem;
      return R;
    }
    R.N = varCellNode(V);
    return R;
  }

  Node *convertForStore(Node *Src, Ty DstTy) {
    if (sizeOfTy(Src->Type) > sizeOfTy(DstTy))
      return A.unary(Op::Conv, DstTy, Src);
    return Src;
  }

  Node *makeAssign(Value Dst, Value Src) {
    if (!Dst.IsLValue) {
      error("assignment to a non-lvalue");
      return A.con(Ty::L, 0);
    }
    Ty DT = Dst.N->Type;
    return A.bin(Op::Assign, DT, Dst.N, convertForStore(Src.N, DT));
  }

  Value parseExpr() {
    Value V = parseAssignExpr();
    while (accept(Tok::Comma)) {
      // Comma operator: left for effect, right as value. Lower by
      // hoisting through an embedded assignment if needed.
      emitValueAsStmt(V);
      V = parseAssignExpr();
    }
    return V;
  }

  Value parseAssignExpr() {
    Value L = parseTernary();
    Tok K = peek().Kind;
    Op BinOp;
    switch (K) {
    case Tok::Assign: {
      take();
      Value R = parseAssignExpr();
      Value Out;
      Out.N = makeAssign(L, R);
      Out.T = L.T;
      return Out;
    }
    case Tok::PlusAssign:
      BinOp = Op::Plus;
      break;
    case Tok::MinusAssign:
      BinOp = Op::Minus;
      break;
    case Tok::StarAssign:
      BinOp = Op::Mul;
      break;
    case Tok::SlashAssign:
      BinOp = Op::Div;
      break;
    case Tok::PercentAssign:
      BinOp = Op::Mod;
      break;
    case Tok::AmpAssign:
      BinOp = Op::And;
      break;
    case Tok::PipeAssign:
      BinOp = Op::Or;
      break;
    case Tok::CaretAssign:
      BinOp = Op::Xor;
      break;
    case Tok::ShlAssign:
      BinOp = Op::Lsh;
      break;
    case Tok::ShrAssign:
      BinOp = Op::Rsh;
      break;
    default:
      return L;
    }
    take();
    // Compound assignment expands to a = a op b (§6.5); the destination
    // is duplicated, so it must be free of side effects.
    if (!L.IsLValue) {
      error("compound assignment to a non-lvalue");
      return L;
    }
    if (hasSideEffectsTree(L.N)) {
      error("compound assignment destination must not have side effects");
      return L;
    }
    Value R = parseAssignExpr();
    Value LCopy;
    LCopy.N = A.clone(L.N);
    LCopy.T = L.T;
    LCopy.IsLValue = true;
    Value Sum = makeBinary(BinOp, LCopy, R);
    Value Out;
    Out.N = makeAssign(L, Sum);
    Out.T = L.T;
    return Out;
  }

  Value parseTernary() {
    Value C = parseBinary(0);
    if (!accept(Tok::Question))
      return C;
    Value T = parseAssignExpr();
    expect(Tok::Colon, "in conditional expression");
    Value F = parseTernary();
    CType RT = usualArith(T.T, F.T);
    Value Out;
    Out.T = RT;
    Node *Arms = A.bin(Op::Colon, valueTy(RT), T.N, F.N);
    Out.N = A.bin(Op::Select, valueTy(RT), C.N, Arms);
    return Out;
  }

  struct BinLevel {
    Tok Kind;
    Op Operator;
    bool IsRel;
    Cond CC;
  };

  /// Precedence-climbing over the binary levels (highest index binds
  /// loosest is reversed: level 0 = ||).
  Value parseBinary(int Level) {
    static const std::vector<std::vector<BinLevel>> Levels = {
        {{Tok::PipePipe, Op::OrOr, false, Cond::EQ}},
        {{Tok::AmpAmp, Op::AndAnd, false, Cond::EQ}},
        {{Tok::Pipe, Op::Or, false, Cond::EQ}},
        {{Tok::Caret, Op::Xor, false, Cond::EQ}},
        {{Tok::Amp, Op::And, false, Cond::EQ}},
        {{Tok::EqEq, Op::Rel, true, Cond::EQ},
         {Tok::NotEq, Op::Rel, true, Cond::NE}},
        {{Tok::Less, Op::Rel, true, Cond::LT},
         {Tok::LessEq, Op::Rel, true, Cond::LE},
         {Tok::Greater, Op::Rel, true, Cond::GT},
         {Tok::GreaterEq, Op::Rel, true, Cond::GE}},
        {{Tok::Shl, Op::Lsh, false, Cond::EQ},
         {Tok::Shr, Op::Rsh, false, Cond::EQ}},
        {{Tok::Plus, Op::Plus, false, Cond::EQ},
         {Tok::Minus, Op::Minus, false, Cond::EQ}},
        {{Tok::Star, Op::Mul, false, Cond::EQ},
         {Tok::Slash, Op::Div, false, Cond::EQ},
         {Tok::Percent, Op::Mod, false, Cond::EQ}},
    };
    if (Level >= static_cast<int>(Levels.size()))
      return parseUnary();
    Value L = parseBinary(Level + 1);
    while (!Failed) {
      const BinLevel *Match = nullptr;
      for (const BinLevel &Cand : Levels[Level])
        if (at(Cand.Kind))
          Match = &Cand;
      if (!Match)
        return L;
      take();
      Value R = parseBinary(Level + 1);
      if (Match->IsRel)
        L = makeRelational(Match->CC, L, R);
      else
        L = makeBinary(Match->Operator, L, R);
    }
    return L;
  }

  Value makeBinary(Op O, Value L, Value R) {
    Value Out;
    if (O == Op::AndAnd || O == Op::OrOr) {
      Out.T = CType::scalar(Ty::L);
      Out.N = A.bin(O, Ty::L, L.N, R.N);
      return Out;
    }
    CType LP = promote(L.T), RP = promote(R.T);
    // Pointer arithmetic: scale the integer operand by the element size.
    if (LP.IsPtr || RP.IsPtr) {
      if (O != Op::Plus && O != Op::Minus) {
        error("unsupported pointer arithmetic");
        Out.T = CType::scalar(Ty::L);
        Out.N = A.con(Ty::L, 0);
        return Out;
      }
      if (LP.IsPtr && RP.IsPtr) {
        error("pointer difference is not supported");
        Out.T = CType::scalar(Ty::L);
        Out.N = A.con(Ty::L, 0);
        return Out;
      }
      Value Ptr = LP.IsPtr ? L : R;
      Value Idx = LP.IsPtr ? R : L;
      if (O == Op::Minus && !LP.IsPtr) {
        error("cannot subtract a pointer from an integer");
        Out = Ptr;
        return Out;
      }
      CType PT = LP.IsPtr ? LP : RP;
      Node *Scaled =
          A.bin(Op::Mul, Ty::L, A.con(Ty::L, PT.elemSize()), Idx.N);
      Out.T = PT;
      Out.N = A.bin(O, Ty::UL, Ptr.N, Scaled);
      return Out;
    }
    CType RT = usualArith(L.T, R.T);
    Out.T = RT;
    Out.N = A.bin(O, valueTy(RT), L.N, R.N);
    return Out;
  }

  Value makeRelational(Cond C, Value L, Value R) {
    CType Common = usualArith(L.T, R.T);
    bool Unsigned = Common.Base == Ty::UL || promote(L.T).IsPtr ||
                    promote(R.T).IsPtr;
    if (Unsigned) {
      switch (C) {
      case Cond::LT:
        C = Cond::ULT;
        break;
      case Cond::LE:
        C = Cond::ULE;
        break;
      case Cond::GT:
        C = Cond::UGT;
        break;
      case Cond::GE:
        C = Cond::UGE;
        break;
      default:
        break;
      }
    }
    // Comparison happens at the promoted common width (C's integral
    // promotions): a narrower operand must be explicitly widened, or the
    // comparison instruction would compare at the narrow width where
    // 65535 (unsigned short) and -1 (short) are indistinguishable.
    auto Promote = [&](Node *N) -> Node * {
      if (sizeClassOf(N->Type) != sizeClassOf(valueTy(Common)))
        return A.unary(Op::Conv, valueTy(Common), N);
      return N;
    };
    Value Out;
    Out.T = CType::scalar(Ty::L);
    Out.N = A.rel(C, Ty::L, Promote(L.N), Promote(R.N));
    return Out;
  }

  Value parseUnary() {
    int Ln = line();
    (void)Ln;
    if (accept(Tok::Minus)) {
      Value V = parseUnary();
      CType T = promote(V.T);
      Value Out;
      Out.T = T;
      Out.N = A.unary(Op::Neg, valueTy(T), V.N);
      return Out;
    }
    if (accept(Tok::Tilde)) {
      Value V = parseUnary();
      CType T = promote(V.T);
      Value Out;
      Out.T = T;
      Out.N = A.unary(Op::Com, valueTy(T), V.N);
      return Out;
    }
    if (accept(Tok::Bang)) {
      Value V = parseUnary();
      Value Out;
      Out.T = CType::scalar(Ty::L);
      Out.N = A.unary(Op::Not, Ty::L, V.N);
      return Out;
    }
    if (accept(Tok::Star)) {
      Value V = parseUnary();
      CType T = promote(V.T);
      if (!T.IsPtr) {
        error("dereference of a non-pointer");
        return V;
      }
      Value Out;
      Out.T = CType::scalar(T.Elem);
      Out.N = A.unary(Op::Indir, T.Elem, V.N);
      Out.IsLValue = true;
      return Out;
    }
    if (accept(Tok::Amp)) {
      Value V = parseUnary();
      if (!V.IsLValue) {
        error("address of a non-lvalue");
        return V;
      }
      return addressOf(V);
    }
    if (accept(Tok::PlusPlus))
      return preIncDec(+1);
    if (accept(Tok::MinusMinus))
      return preIncDec(-1);
    return parsePostfix();
  }

  Value addressOf(Value V) {
    Value Out;
    Out.T = CType::pointer(V.N->Type);
    switch (V.N->Opcode) {
    case Op::Name: {
      Node *G = A.gaddr(V.N->Sym);
      G->Type = Ty::UL;
      Out.N = G;
      return Out;
    }
    case Op::Indir:
      Out.N = V.N->left();
      return Out;
    case Op::Dreg:
      error("cannot take the address of a register variable");
      Out.N = A.con(Ty::L, 0);
      return Out;
    default:
      error("cannot take this address");
      Out.N = A.con(Ty::L, 0);
      return Out;
    }
  }

  Value preIncDec(int Sign) {
    Value V = parseUnary();
    return incDecCommon(V, Sign, /*IsPost=*/false);
  }

  Value incDecCommon(Value V, int Sign, bool IsPost) {
    if (!V.IsLValue) {
      error("++/-- requires an lvalue");
      return V;
    }
    if (hasSideEffectsTree(V.N)) {
      error("++/-- destination must not have side effects");
      return V;
    }
    int64_t Amount = V.T.IsPtr ? V.T.elemSize() : 1;
    Ty T = V.N->Type;
    Value Out;
    Out.T = V.T;
    if (IsPost) {
      Out.N = A.bin(Op::PostInc, T, V.N, A.con(Ty::L, Amount * Sign));
      return Out;
    }
    if (Sign < 0) {
      // Prefix decrement maps to the PreDec operator: on a dedicated
      // register under an Indir this is the VAX autodecrement mode -(rN)
      // ("postfix increment or prefix decrement", §6.1).
      Out.N = A.bin(Op::PreDec, T, V.N, A.con(Ty::L, Amount));
      return Out;
    }
    // Pre-increment has no hardware mode: an embedded assignment.
    Node *Sum = A.bin(Op::Plus, T, A.clone(V.N), A.con(T, Amount));
    Out.N = A.bin(Op::Assign, T, V.N, Sum);
    return Out;
  }

  Value parsePostfix() {
    Value V = parsePrimary();
    while (!Failed) {
      if (accept(Tok::LBracket)) {
        Value Idx = parseExpr();
        expect(Tok::RBracket, "after index");
        V = makeIndex(V, Idx);
        continue;
      }
      if (accept(Tok::PlusPlus)) {
        V = incDecCommon(V, +1, /*IsPost=*/true);
        continue;
      }
      if (accept(Tok::MinusMinus)) {
        V = incDecCommon(V, -1, /*IsPost=*/true);
        continue;
      }
      return V;
    }
    return V;
  }

  /// a[i]: the tree shapes here are chosen to match the description's
  /// indexed addressing patterns (dxabs / dxdisp / dxreg).
  Value makeIndex(Value Base, Value Idx) {
    CType BT = promote(Base.T);
    if (!BT.IsPtr) {
      error("indexing a non-pointer");
      return Base;
    }
    Node *Scaled =
        A.bin(Op::Mul, Ty::L, A.con(Ty::L, BT.elemSize()), Idx.N);
    Node *Addr = A.bin(Op::Plus, Ty::UL, Base.N, Scaled);
    Value Out;
    Out.T = CType::scalar(BT.Elem);
    Out.N = A.unary(Op::Indir, BT.Elem, Addr);
    Out.IsLValue = true;
    return Out;
  }

  Value parsePrimary() {
    if (at(Tok::Number)) {
      Token T = take();
      Value V;
      V.T = CType::scalar(Ty::L);
      V.N = A.con(Ty::L, T.Value);
      return V;
    }
    if (accept(Tok::LParen)) {
      // Cast or parenthesized expression.
      if (atTypeStart()) {
        CType T = parseType();
        expect(Tok::RParen, "after cast type");
        Value V = parseUnary();
        Value Out;
        Out.T = T;
        Ty Target = valueTy(T);
        if (sizeOfTy(V.N->Type) != sizeOfTy(Target)) {
          Out.N = A.unary(Op::Conv, Target, V.N);
        } else {
          // Same width: a signedness reinterpretation. The node's type
          // drives downstream semantics (comparisons, division), so
          // retype it in place — expression nodes have a single use.
          V.N->Type = Target;
          Out.N = V.N;
        }
        return Out;
      }
      Value V = parseExpr();
      expect(Tok::RParen, "after expression");
      return V;
    }
    if (at(Tok::Ident)) {
      Token T = take();
      if (at(Tok::LParen))
        return parseCall(T.Text);
      VarInfo *V = lookupVar(T.Text);
      if (!V) {
        error(strf("use of undeclared identifier '%s'", T.Text.c_str()));
        Value Bad;
        Bad.T = CType::scalar(Ty::L);
        Bad.N = A.con(Ty::L, 0);
        return Bad;
      }
      return varCell(*V);
    }
    error(strf("unexpected token %s in expression", tokName(peek().Kind)));
    Value Bad;
    Bad.T = CType::scalar(Ty::L);
    Bad.N = A.con(Ty::L, 0);
    return Bad;
  }

  Value parseCall(const std::string &Name) {
    expect(Tok::LParen, "in call");
    std::vector<Node *> Args;
    if (!at(Tok::RParen)) {
      do {
        Args.push_back(parseAssignExpr().N);
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "after call arguments");

    bool Builtin = Name == "print" || Name == "printc";
    if (!Builtin) {
      auto It = Funcs.find(Name);
      if (It == Funcs.end()) {
        error(strf("call to undeclared function '%s'", Name.c_str()));
      } else if (It->second.NumParams != static_cast<int>(Args.size())) {
        error(strf("'%s' expects %d argument(s), got %zu", Name.c_str(),
                   It->second.NumParams, Args.size()));
      }
    } else if (Args.size() != 1) {
      error(strf("'%s' expects exactly one argument", Name.c_str()));
    }

    Node *Chain = nullptr;
    for (size_t I = Args.size(); I-- > 0;)
      Chain = A.bin(Op::Arg, Ty::L, Args[I], Chain);
    Value Out;
    Out.T = CType::scalar(Ty::L);
    if (!Builtin) {
      auto It = Funcs.find(Name);
      if (It != Funcs.end() && !It->second.Ret.IsVoid)
        Out.T = It->second.Ret;
    }
    Out.N = A.bin(Op::Call, valueTy(Out.T), A.gaddr(Prog.Syms.intern(Name)),
                  Chain);
    return Out;
  }
};

} // namespace

bool gg::compileMiniC(std::string_view Source, Program &Prog,
                      DiagnosticSink &Diags) {
  std::vector<Token> Tokens;
  if (!lexMiniC(Source, Tokens, Diags))
    return false;
  ParserImpl P(Tokens, Prog, Diags);
  return P.run();
}
