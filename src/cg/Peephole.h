//===- Peephole.h - assembly-level peephole optimizer -----------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's section 6.1 and 9 future work: "We are examining ... the
/// interface between our method for table-driven code generation and
/// peephole optimization" (citing Davidson/Fraser-style optimizers).
/// This is the simple syntactic half of that program — a window
/// optimizer over the emitted assembly:
///
///   * branch-to-next-instruction elimination,
///   * conditional-branch inversion over an unconditional branch
///     (jCC L1; brw L2; L1: -> j!CC L2; L1:),
///   * branch-chain collapsing (a branch to an unconditional branch
///     retargets to the final destination),
///   * unreachable code removal after an unconditional branch.
///
/// The data-flow-dependent half (autoincrement discovery, condition-code
/// reuse across instructions) stays in the code generator proper, as the
/// paper's generator did.
///
//===----------------------------------------------------------------------===//

#ifndef GG_CG_PEEPHOLE_H
#define GG_CG_PEEPHOLE_H

#include <cstddef>
#include <string>
#include <vector>

namespace gg {

/// Counters for the ablation bench.
struct PeepholeStats {
  unsigned BranchToNextRemoved = 0;
  unsigned BranchesInverted = 0;
  unsigned ChainsCollapsed = 0;
  unsigned UnreachableRemoved = 0;

  unsigned total() const {
    return BranchToNextRemoved + BranchesInverted + ChainsCollapsed +
           UnreachableRemoved;
  }
};

/// Optimizes assembly \p Lines in place (the AsmEmitter line vector).
/// Iterates to a fixpoint (bounded). Labels are never removed.
PeepholeStats runPeephole(std::vector<std::string> &Lines);

} // namespace gg

#endif // GG_CG_PEEPHOLE_H
