//===- CodeGenerator.h - the table-driven code generator --------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level code generator: "one single program structured into
/// logical subphases" (paper Figure 2):
///
///   phase 1  tree transformation        (cg/Phase1.cpp)
///   phase 2  pattern matching           (match/Matcher.cpp)
///   phase 3  instruction generation     (vax/VaxSemantics.cpp)
///   phase 4  output generation          (vax/Emitter.cpp, Operand.cpp)
///
/// Per-phase wall-clock accounting reproduces the paper's observation
/// that "roughly one half the code generation time is spent in the
/// pattern matching phase" (experiment E5).
///
//===----------------------------------------------------------------------===//

#ifndef GG_CG_CODEGENERATOR_H
#define GG_CG_CODEGENERATOR_H

#include "cg/Peephole.h"
#include "cg/Transform.h"
#include "ir/Program.h"
#include "vax/VaxSemantics.h"
#include "vax/VaxTarget.h"

#include <string>

namespace gg {

/// Options for a compilation.
struct CodeGenOptions {
  CgOptions Idioms;
  TransformOptions Transform;
  bool Trace = false;    ///< collect per-tree shift/reduce traces
  /// Annotate each emitted instruction with the production whose
  /// reduction generated it (the --explain surface).
  bool Explain = false;
  /// Run the assembly-level peephole optimizer over the output (the
  /// paper's section 6.1/9 future-work direction; off by default to
  /// match the paper's configuration).
  bool Peephole = false;
};

/// Aggregate statistics for one compile() call. The four Seconds fields
/// are the paper's Figure-2 phases and are disjoint: instruction
/// generation excludes the output formatting it is interleaved with,
/// which is charged to EmitSeconds instead.
struct CodeGenStats {
  double TransformSeconds = 0;
  double MatchSeconds = 0;
  double InstrGenSeconds = 0;
  double EmitSeconds = 0; ///< phase 4: operand formatting + text rendering
  size_t StatementTrees = 0;
  size_t MatcherTokens = 0;
  size_t MatcherSteps = 0;
  size_t Instructions = 0;
  size_t AsmLines = 0;
  RegAllocStats Regs;
  IdiomStats Idioms;
  TransformStats Transform;
  PeepholeStats Peephole;
};

/// Compiles IR programs to VAX assembly via the pattern matcher.
class GGCodeGenerator {
public:
  GGCodeGenerator(const VaxTarget &Target, CodeGenOptions Opts = {})
      : Target(Target), Opts(Opts) {}

  /// Compiles \p Prog, appending assembly text to \p Asm. Returns false
  /// and sets \p Err on a syntactic block or semantic failure (a
  /// description bug, since phase 1 output must always be coverable).
  bool compile(Program &Prog, std::string &Asm, std::string &Err);

  const CodeGenStats &stats() const { return Stats; }

  /// Shift/reduce traces collected when Trace is on (one per tree).
  const std::string &trace() const { return Trace; }

private:
  const VaxTarget &Target;
  CodeGenOptions Opts;
  CodeGenStats Stats;
  std::string Trace;
};

/// Emits the .data section for the program's globals (shared with the PCC
/// baseline so both backends produce directly comparable modules).
void emitDataSection(const Program &Prog, AsmEmitter &Emit);

} // namespace gg

#endif // GG_CG_CODEGENERATOR_H
