//===- Transform.h - phase 1 tree transformation ----------------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase 1 of the code generator (paper section 5.1): tree transformation
/// before pattern matching.
///
///  * 1a — explicit control flow: short-circuit operators, relational
///    values, selection operators and logical negation become explicit
///    tests and branches; function calls are factored out of expressions
///    into Push + CallStmt sequences assigning compiler temporaries;
///    embedded assignments and non-register autoincrements are hoisted.
///  * 1b — operator expansion and commutative canonicalization: constant
///    folding, shift-by-constant to multiply, subtract-constant to
///    add-negative, constants forced to the left child of commutative
///    operators, Gaddr offset folding.
///  * 1c — evaluation ordering: the larger subtree of a binary operator
///    is moved to the left (swapping for commutative operators,
///    substituting a reverse operator otherwise), and expressions whose
///    Sethi-Ullman register need exceeds the allocatable bank are split
///    with explicit stores to temporaries to prevent spills.
///
//===----------------------------------------------------------------------===//

#ifndef GG_CG_TRANSFORM_H
#define GG_CG_TRANSFORM_H

#include "ir/Program.h"

namespace gg {

/// Ablation knobs for experiments E2 and E10.
struct TransformOptions {
  bool ReverseOps = true;    ///< 1c may substitute reverse operators
  bool Reorder = true;       ///< 1c subtree reordering at all
  bool PreventSpills = true; ///< 1c explicit stores for spill-prone trees
  bool RawTrees = false;     ///< skip phase 1 entirely: trees reach the
                             ///< matcher exactly as built (grammar fuzzing)
};

/// Counters for the transformation experiments.
struct TransformStats {
  unsigned CondBranchRewrites = 0;
  unsigned BoolValueRewrites = 0;
  unsigned CallsFactored = 0;
  unsigned ConstantsFolded = 0;
  unsigned Canonicalizations = 0;
  unsigned SubtreesSwapped = 0;
  unsigned ReverseOpsUsed = 0;
  unsigned SpillSplits = 0;
};

/// Runs phases 1a, 1b and 1c over \p F in place (new statement forest).
TransformStats runPhase1(Program &P, Function &F,
                         const TransformOptions &Opts = {});

/// Sethi-Ullman-style register-need estimate used by the 1c spill
/// prevention (memory leaves need no register; operators need at least 1).
int registerNeed(const Node *N);

} // namespace gg

#endif // GG_CG_TRANSFORM_H
