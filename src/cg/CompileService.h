//===- CompileService.h - the compile server's handler ----------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile logic behind `compile_minic --serve` (docs/server.md),
/// bridging the transport-level Server (support/Server.h) to the real
/// pipeline: MiniC frontend -> table-driven code generator -> per-tree PCC
/// fallback, exactly the single-shot driver path.
///
/// Startup builds the grammar and tables once and *self-verifies* them
/// through the v2 serializer: the tables are serialized and immediately
/// re-loaded through the hardened deserializer, so the server only comes
/// up on a table image whose checksum, fingerprint, and bounds all check
/// out (and the corrupt-table fault makes startup fail fatally, which the
/// supervisor treats as a config error rather than a crash).
///
/// The table image itself is *hot-swappable*: reload() rebuilds and
/// re-verifies a fresh image and atomically publishes it under a new
/// generation (SIGHUP / the Reload frame land here via the Server's
/// ReloadHandler). Each request snapshots a shared_ptr to the image at
/// dispatch, so in-flight requests keep compiling against the image they
/// started with while new requests pick up the swap — zero requests see a
/// torn table, and within one generation outputs stay byte-identical
/// because a rebuild from the same description is deterministic. A failed
/// reload keeps the old image serving (and the old generation).
///
/// Each request compiles with Threads=1: the server parallelizes across
/// requests, not within one, so one wedged request can never hold more
/// than one worker. Output is a pure function of the request bytes — the
/// at-most-once client replay after a server crash is safe because a
/// replayed request reproduces the original response exactly.
///
//===----------------------------------------------------------------------===//

#ifndef GG_CG_COMPILESERVICE_H
#define GG_CG_COMPILESERVICE_H

#include "cg/CodeGenerator.h"
#include "support/Server.h"

#include <memory>
#include <mutex>
#include <string>

namespace gg {

/// One compile pipeline serving any number of concurrent requests over a
/// hot-swappable, generation-counted table image.
class CompileService {
public:
  /// Builds the target and runs the v2-serializer self-verification.
  /// Returns null (with \p Err) when the description fails to build or
  /// the serialized tables do not load back cleanly — a fatal startup
  /// fault (ExitFatalFault), never a per-request error.
  static std::unique_ptr<CompileService> create(std::string &Err,
                                                CodeGenOptions BaseOpts = {});

  /// Compiles one request under its budget against a snapshot of the
  /// current table image, stamping the snapshot's generation into the
  /// result. Never throws, never exits: every failure maps to a
  /// ResponseStatus. Thread-safe, including concurrently with reload().
  HandlerResult compile(const RequestMsg &Req, RequestBudget &Budget) const;

  /// Rebuilds a fresh table image, runs the same serializer
  /// self-verification as startup, and atomically swaps it in under the
  /// next generation. On failure returns false with \p Err set and keeps
  /// the old image (and generation) serving — a bad reload is a no-op,
  /// never an outage. \p NewGeneration reports the generation now serving
  /// either way. Safe while requests are in flight: they hold snapshots.
  bool reload(uint64_t &NewGeneration, std::string &Err);

  /// The service as a Server-compatible handler.
  CompileHandler handler() {
    return [this](const RequestMsg &Req, RequestBudget &Budget) {
      return compile(Req, Budget);
    };
  }

  /// The service as a Server-compatible reload hook.
  ReloadHandler reloader() {
    return [this](uint64_t &NewGeneration, std::string &Err) {
      return reload(NewGeneration, Err);
    };
  }

  /// The table generation currently serving (starts at 1).
  uint64_t generation() const;

  /// The service as a Server-compatible Status-snapshot augmenter:
  /// contributes `"generation":N,"fingerprint":"..."` so a gg-status-v1
  /// snapshot identifies the table image serving right now.
  StatusAugmenter statusAugmenter() {
    return [this] { return statusMembers(); };
  }

  /// The augmenter body (raw JSON members, no braces). Thread-safe.
  std::string statusMembers() const;

  const VaxTarget &target() const { return *snapshot().first; }

private:
  CompileService() = default;

  /// Builds and self-verifies one table image (shared by create/reload).
  static std::shared_ptr<const VaxTarget> buildVerified(std::string &Err);

  /// The current image + its generation, taken atomically.
  std::pair<std::shared_ptr<const VaxTarget>, uint64_t> snapshot() const;

  mutable std::mutex TargetM; ///< guards Target/TableGeneration swaps
  std::shared_ptr<const VaxTarget> Target;
  uint64_t TableGeneration = 1;
  CodeGenOptions BaseOpts;
};

} // namespace gg

#endif // GG_CG_COMPILESERVICE_H
