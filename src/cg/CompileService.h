//===- CompileService.h - the compile server's handler ----------*- C++ -*-===//
//
// Part of the Graham-Glanville table-driven code generation reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile logic behind `compile_minic --serve` (docs/server.md),
/// bridging the transport-level Server (support/Server.h) to the real
/// pipeline: MiniC frontend -> table-driven code generator -> per-tree PCC
/// fallback, exactly the single-shot driver path.
///
/// Startup builds the grammar and tables once and *self-verifies* them
/// through the v2 serializer: the tables are serialized and immediately
/// re-loaded through the hardened deserializer, so the server only comes
/// up on a table image whose checksum, fingerprint, and bounds all check
/// out (and the corrupt-table fault makes startup fail fatally, which the
/// supervisor treats as a config error rather than a crash). After that
/// the target is immutable and shared by every worker.
///
/// Each request compiles with Threads=1: the server parallelizes across
/// requests, not within one, so one wedged request can never hold more
/// than one worker. Output is a pure function of the request bytes — the
/// at-most-once client replay after a server crash is safe because a
/// replayed request reproduces the original response exactly.
///
//===----------------------------------------------------------------------===//

#ifndef GG_CG_COMPILESERVICE_H
#define GG_CG_COMPILESERVICE_H

#include "cg/CodeGenerator.h"
#include "support/Server.h"

#include <memory>
#include <string>

namespace gg {

/// One immutable compile pipeline serving any number of concurrent
/// requests.
class CompileService {
public:
  /// Builds the target and runs the v2-serializer self-verification.
  /// Returns null (with \p Err) when the description fails to build or
  /// the serialized tables do not load back cleanly — a fatal startup
  /// fault (ExitFatalFault), never a per-request error.
  static std::unique_ptr<CompileService> create(std::string &Err,
                                                CodeGenOptions BaseOpts = {});

  /// Compiles one request under its budget. Never throws, never exits:
  /// every failure maps to a ResponseStatus. Thread-safe.
  HandlerResult compile(const RequestMsg &Req, RequestBudget &Budget) const;

  /// The service as a Server-compatible handler.
  CompileHandler handler() {
    return [this](const RequestMsg &Req, RequestBudget &Budget) {
      return compile(Req, Budget);
    };
  }

  const VaxTarget &target() const { return *Target; }

private:
  CompileService() = default;
  std::unique_ptr<VaxTarget> Target;
  CodeGenOptions BaseOpts;
};

} // namespace gg

#endif // GG_CG_COMPILESERVICE_H
