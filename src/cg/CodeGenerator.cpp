//===- CodeGenerator.cpp - the table-driven code generator --------------------===//

#include "cg/CodeGenerator.h"
#include "ir/Linearize.h"
#include "pcc/PccCodeGen.h"
#include "support/Coverage.h"
#include "support/FaultInject.h"
#include "support/FlightRecorder.h"
#include "support/Profile.h"
#include "support/Stats.h"
#include "support/Strings.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <memory>

using namespace gg;

namespace {

/// Creates-at-zero every key the code generator's --stats-json schema
/// promises, so consumers (and the golden-schema test) see a stable key
/// set even when a counter legitimately never fires — e.g. the peephole
/// counters with the optimizer off, or regs.spills on spill-free input.
void touchSchemaKeys() {
  static bool Done = [] {
    StatsRegistry &S = gg::stats();
    for (const char *Name :
         {"cg.compiles", "cg.functions", "cg.trees", "cg.blocked_trees",
          "cg.recovered_trees", "cg.parallel.threads", "cg.parallel.tasks",
          "cg.parallel.steals", "match.trees",
          "match.shifts", "match.reduces", "match.dynamic_ties",
          "match.chooser_invocations", "match.syntactic_blocks",
          "match.depth_cap_hits", "match.budget_stops",
          "fault.productions_dropped",
          "fault.trees_truncated", "fault.table_bytes_corrupted",
          "fault.worker_stalls", "fault.arena_exhaustions",
          "phase1.cond_branch_rewrites", "phase1.bool_value_rewrites",
          "phase1.calls_factored", "phase1.constants_folded",
          "phase1.canonicalizations", "phase1.subtrees_swapped",
          "phase1.reverse_ops_used", "phase1.spill_splits",
          "idiom.binding_applied", "idiom.range_applied",
          "idiom.cc_tests_elided", "idiom.pseudo_expansions",
          "regs.allocations", "regs.spills", "regs.unspills",
          "peephole.branch_to_next_removed", "peephole.branches_inverted",
          "peephole.chains_collapsed", "peephole.unreachable_removed",
          "emit.instructions", "emit.asm_lines"})
      S.counter(Name);
    for (const char *Name :
         {"cg.transform_seconds", "cg.match_seconds",
          "cg.instrgen_seconds", "cg.emit_seconds",
          "cg.parallel.worker_emit_seconds"})
      S.value(Name);
    for (const char *Name :
         {"match.stack_depth", "match.tokens_per_tree",
          "match.steps_per_tree", "regs.live"})
      S.histogram(Name);
    return true;
  }();
  (void)Done;
}

/// Everything one function's compilation produces, buffered privately so
/// workers can run concurrently and compile() can stitch the results in
/// source order — the output must be byte-identical at any thread count.
struct FunctionResult {
  std::unique_ptr<AsmEmitter> Emit;
  DiagnosticSink Diags;
  std::string TraceText;
  bool Ok = true;
  std::string Err;
  double MatchSeconds = 0;
  double GenSeconds = 0;
  double EmitInGen = 0; ///< phase-4 time nested inside the GenT scope
  size_t StatementTrees = 0;
  size_t MatcherTokens = 0;
  size_t MatcherSteps = 0;
  size_t BlockedTrees = 0;
  size_t RecoveredTrees = 0;
  RegAllocStats Regs;
  IdiomStats Idioms;
};

/// Number of statement trees the per-function walk below will push through
/// the matcher — must mirror its switch exactly. Counted after phase 1 so
/// the truncate-input fault's tree ordinals can be reserved per function
/// up front, making fault selection independent of worker scheduling.
size_t countStatementTrees(const Function &F) {
  size_t N = 0;
  for (const Node *S : F.Body) {
    switch (S->Opcode) {
    case Op::LabelDef:
    case Op::Jump:
      break;
    case Op::Ret:
    case Op::CallStmt:
      N += S->left() ? 1 : 0;
      break;
    default:
      ++N;
      break;
    }
  }
  return N;
}

/// Compiles one function into \p R's private emitter. Runs on a pool
/// worker: it may only touch shared state that is immutable (tables,
/// grammar, phase-1-complete trees) or internally synchronized (the stats
/// registry, the trace recorder). All scratch state — register manager,
/// semantic stack, copy-tree/fallback arena, output buffer — is local.
void compileOneFunction(const VaxTarget &Target, const CodeGenOptions &Opts,
                        Program &Prog, Function &F, uint64_t TreeOrdinal,
                        FunctionResult &R) {
  TraceSpan FnSpan("cg.function " + Prog.Syms.text(F.Name));
  AsmEmitter &Emit = *R.Emit;
  Timer MatchT, GenT;
  // Worker-private arena: Ret/CallStmt copy trees and the fallback
  // generator's splitter temporaries must not contend on the program's
  // shared arena while other workers compile. The request budget's byte
  // cap applies to each arena individually.
  NodeArena LocalArena;
  if (Opts.Budget && Opts.Budget->MaxArenaBytes)
    LocalArena.setLimitBytes(Opts.Budget->MaxArenaBytes);

  Emit.blank();
  Emit.directive(strf(".globl %s", Prog.Syms.text(F.Name).c_str()));
  Emit.labelText(Prog.Syms.text(F.Name));
  Emit.directive(".word 0x0fc0"); // entry mask: save r6-r11
  // The frame grows while compiling (spill cells, phase-1 temporaries of
  // later statements): emit a placeholder and patch afterwards.
  size_t PrologueLine = Emit.lines().size();
  Emit.instRaw("subl2", {"$FRAME", "sp"});

  VaxSemantics Sem(Emit, F, Opts.Idioms);

  auto CompileTree = [&](Node *Tree) -> bool {
    // Quarantine checks at tree granularity: a stopped budget or an
    // exhausted arena fails the function outright. Neither runs the PCC
    // fallback — an exhausted request must fail fast, not spend more of
    // its worker on the slower path.
    if (Opts.Budget && Opts.Budget->shouldStop(0)) {
      ++R.BlockedTrees;
      ++gg::stats().counter("cg.blocked_trees");
      R.Err = strf("request budget exhausted (%s) before tree: %s",
                   budgetStopName(Opts.Budget->Stopped.load(
                       std::memory_order_relaxed)),
                   printLinear(Tree, Prog.Syms).c_str());
      R.Diags.error(R.Err);
      return false;
    }
    if (LocalArena.exhausted()) {
      if (Opts.Budget)
        Opts.Budget->stop(BudgetStop::Memory);
      ++R.BlockedTrees;
      ++gg::stats().counter("cg.blocked_trees");
      R.Err = strf("node arena byte budget exhausted (%zu bytes) before "
                   "tree: %s",
                   LocalArena.bytes(),
                   printLinear(Tree, Prog.Syms).c_str());
      R.Diags.error(R.Err);
      return false;
    }

    std::vector<LinToken> Input;
    MatchResult MR;
    // Everything this tree emits sits after the mark; a failed tree is
    // rolled back wholesale before the fallback path runs.
    AsmEmitter::Mark TreeMark = Emit.mark();
    {
      TimerScope TS(MatchT);
      {
        ProfilePhaseScope PS(ProfPhase::Linearize);
        Input = linearize(Tree);
      }
      if (Opts.Budget)
        Opts.Budget->setPhase(RequestPhase::Match);
      flightRecord(FlightKind::PhaseMatch,
                   static_cast<int64_t>(Input.size()));
      // truncate-input fault: models a phase-1/linearizer bug. A proper
      // prefix of a prefix linearization can never parse to completion,
      // so the matcher blocks instead of accepting a wrong parse. The
      // explicit ordinal keeps the selected trees identical at any
      // thread count.
      Input.resize(
          faultInject().truncatedInputSize(Input.size(), TreeOrdinal++));
      R.MatcherTokens += Input.size();
      ProfilePhaseScope PS(ProfPhase::Match);
      MR = Target.matcher().match(Input, nullptr, Opts.Budget);
    }
    std::string TreeErr;
    bool TreeOk = MR.Ok;
    if (MR.Ok) {
      R.MatcherSteps += MR.Steps.size();
      if (Opts.Trace) {
        R.TraceText += printLinear(Tree, Prog.Syms) + "\n";
        R.TraceText += renderTrace(Target.grammar(), Input, MR, Prog.Syms);
        R.TraceText += "\n";
      }
      if (Opts.Budget)
        Opts.Budget->setPhase(RequestPhase::Replay);
      flightRecord(FlightKind::PhaseReplay,
                   static_cast<int64_t>(MR.Steps.size()));
      TimerScope TS(GenT);
      TraceSpan ReplaySpan("cg.replay");
      ProfilePhaseScope PS(ProfPhase::Replay);
      double EmitBefore = Emit.emitSeconds();
      std::string SemErr;
      TreeOk = Sem.replay(Target.grammar(), Input, MR.Steps, SemErr);
      R.EmitInGen += Emit.emitSeconds() - EmitBefore;
      if (!TreeOk)
        TreeErr = strf("%s\n  while generating: %s", SemErr.c_str(),
                       printLinear(Tree, Prog.Syms).c_str());
    } else {
      TreeErr = strf("%s\n  while matching: %s", MR.Error.c_str(),
                     printLinear(Tree, Prog.Syms).c_str());
    }
    if (TreeOk) {
      ++R.StatementTrees;
      return true;
    }

    // Degradation ladder: one tree failing the table-driven path must
    // not kill the module. Discard the tree's partial output and
    // per-statement state, then regenerate it through the PCC baseline.
    ++R.BlockedTrees;
    ++gg::stats().counter("cg.blocked_trees");
    flightRecord(FlightKind::Block,
                 MR.Block ? static_cast<int64_t>(MR.Block->State) : -1);
    if (MR.Block && MR.Block->Why == BlockReport::Cause::Budget) {
      // Budget stops bypass the ladder by design (docs/server.md).
      R.Err = TreeErr;
      R.Diags.error(R.Err);
      return false;
    }
    if (!Opts.Recover) {
      R.Err = TreeErr;
      return false;
    }
    Emit.rollback(TreeMark);
    Sem.resetAfterFailure();
    R.Diags.warning(
        strf("recovering via the baseline generator: %s", TreeErr.c_str()));
    DiagnosticSink FallbackDiags;
    {
      if (Opts.Budget)
        Opts.Budget->setPhase(RequestPhase::Fallback);
      flightRecord(FlightKind::PhaseFallback);
      TimerScope TS(GenT);
      TraceSpan FallbackSpan("cg.fallback");
      ProfilePhaseScope PS(ProfPhase::Fallback);
      if (!pccGenStatement(Prog, F, Tree, Emit, FallbackDiags, &LocalArena)) {
        // Bottom of the ladder: a module-level diagnostic, never
        // process death — the caller decides what to do with it.
        R.Err = strf("tree failed the table-driven path AND the baseline "
                     "fallback\n  table-driven: %s\n  fallback: %s",
                     TreeErr.c_str(), FallbackDiags.renderAll().c_str());
        R.Diags.error(R.Err);
        return false;
      }
    }
    // Spliced code clobbers condition codes behind the CC tracker's back.
    Sem.invalidateCC();
    ++R.RecoveredTrees;
    ++gg::stats().counter("cg.recovered_trees");
    ++R.StatementTrees;
    return true;
  };

  bool EndsWithRet = false;
  for (Node *S : F.Body) {
    EndsWithRet = false;
    switch (S->Opcode) {
    case Op::LabelDef:
      Sem.emitLabel(S->Sym);
      break;
    case Op::Jump:
      Sem.emitJump(S->left()->Sym);
      break;
    case Op::Ret:
      if (S->left()) {
        // Return value goes to r0: run "r0 := e" through the matcher.
        Node *Copy = LocalArena.bin(Op::Assign, Ty::L,
                                    LocalArena.dreg(RegR0, Ty::L),
                                    S->left());
        if (!CompileTree(Copy)) {
          R.Ok = false;
          return;
        }
      }
      Sem.emitRet();
      EndsWithRet = true;
      break;
    case Op::CallStmt: {
      const Node *Call = S->right();
      Sem.emitCall(Call->left()->Sym, static_cast<int>(Call->Value));
      if (S->left()) {
        Node *Copy = LocalArena.bin(Op::Assign, S->left()->Type,
                                    S->left(),
                                    LocalArena.dreg(RegR0, Ty::L));
        if (!CompileTree(Copy)) {
          R.Ok = false;
          return;
        }
      }
      break;
    }
    default:
      if (!CompileTree(S)) {
        R.Ok = false;
        return;
      }
      break;
    }
  }
  if (!EndsWithRet)
    Sem.emitRet();

  // Patch the prologue with the final frame size.
  Emit.patchLine(PrologueLine, strf("\tsubl2\t$%d,sp", F.FrameSize));

  R.Regs = Sem.regStats();
  R.Idioms = Sem.idiomStats();
  R.MatchSeconds = MatchT.seconds();
  R.GenSeconds = GenT.seconds();
}

} // namespace

void gg::emitDataSection(const Program &Prog, AsmEmitter &Emit) {
  if (Prog.Globals.empty())
    return;
  Emit.directive(".data");
  for (const GlobalVar &G : Prog.Globals) {
    Emit.directive(".align 2");
    Emit.labelText(Prog.Syms.text(G.Name));
    const char *Dir = sizeOfTy(G.ElemTy) == 1   ? ".byte"
                      : sizeOfTy(G.ElemTy) == 2 ? ".word"
                                                : ".long";
    if (G.Init.empty()) {
      Emit.directive(strf(".space %d", G.Count * sizeOfTy(G.ElemTy)));
      continue;
    }
    for (int I = 0; I < G.Count; ++I) {
      int64_t V = I < static_cast<int>(G.Init.size()) ? G.Init[I] : 0;
      Emit.directive(strf("%s %lld", Dir, static_cast<long long>(V)));
    }
  }
}

bool GGCodeGenerator::compile(Program &Prog, std::string &Asm,
                              std::string &Err) {
  Stats = CodeGenStats();
  Trace.clear();
  Diags = DiagnosticSink();
  touchSchemaKeys();
  coverage().noteCompile();
  profile().noteCompile();
  // cg.total is wall time across the parallel region; wall-only scopes
  // no-op under the deterministic steps timebase (support/Profile.h).
  ProfilePhaseScope TotalScope(ProfPhase::Total, /*WallOnly=*/true);
  TraceSpan CompileSpan("cg.compile");
  AsmEmitter Emit(Prog.Syms);
  Emit.setExplain(Opts.Explain);
  Timer TransformT;

  emitDataSection(Prog, Emit);
  Emit.directive(".text");

  // Phase 1 runs serially up front: it allocates from the program's shared
  // node arena, interner and label counter. Code generation proper never
  // touches those, so everything after this point is safe to parallelize.
  // RawTrees (grammar fuzzing): statement forests synthesized directly
  // from the machine grammar are already in post-phase-1 form by
  // construction; canonicalization would rewrite them away from the
  // productions they were built to exercise.
  if (!Opts.Transform.RawTrees) {
    if (Opts.Budget)
      Opts.Budget->setPhase(RequestPhase::Transform);
    flightRecord(FlightKind::PhaseTransform,
                 static_cast<int64_t>(Prog.Functions.size()));
    TimerScope TS(TransformT);
    ProfilePhaseScope PS(ProfPhase::Transform);
    for (Function &F : Prog.Functions) {
      TransformStats TF = runPhase1(Prog, F, Opts.Transform);
      Stats.Transform.CondBranchRewrites += TF.CondBranchRewrites;
      Stats.Transform.BoolValueRewrites += TF.BoolValueRewrites;
      Stats.Transform.CallsFactored += TF.CallsFactored;
      Stats.Transform.ConstantsFolded += TF.ConstantsFolded;
      Stats.Transform.Canonicalizations += TF.Canonicalizations;
      Stats.Transform.SubtreesSwapped += TF.SubtreesSwapped;
      Stats.Transform.ReverseOpsUsed += TF.ReverseOpsUsed;
      Stats.Transform.SpillSplits += TF.SpillSplits;
    }
  }

  // Phase 1 allocates from the program's shared arena; an exhausted arena
  // here (oom-arena fault or a request memory budget applied by the
  // caller before parsing) is a memory-budget failure for the module.
  if (Prog.Arena && Prog.Arena->exhausted()) {
    if (Opts.Budget)
      Opts.Budget->stop(BudgetStop::Memory);
    Err = strf("node arena byte budget exhausted (%zu bytes) during tree "
               "transformation",
               Prog.Arena->bytes());
    Diags.error(Err);
    return false;
  }

  // Reserve the whole compile's tree-ordinal block and assign each
  // function its slice, reproducing the sequential numbering exactly:
  // the truncate-input fault selects the same trees at any thread count.
  const size_t NumFns = Prog.Functions.size();
  std::vector<uint64_t> OrdinalBase(NumFns);
  uint64_t TotalTrees = 0;
  for (size_t I = 0; I < NumFns; ++I) {
    OrdinalBase[I] = TotalTrees;
    TotalTrees += countStatementTrees(Prog.Functions[I]);
  }
  uint64_t FirstOrdinal = faultInject().reserveTreeOrdinals(TotalTrees);

  std::vector<FunctionResult> Results(NumFns);
  for (FunctionResult &R : Results) {
    R.Emit = std::make_unique<AsmEmitter>(Prog.Syms);
    R.Emit->setExplain(Opts.Explain);
  }

  // Every function runs even if another fails: the failure path then sees
  // identical global counters at any thread count (a worker cannot know
  // whether a source-order-earlier function has failed yet).
  //
  // Pool workers are request-agnostic threads: re-enter the caller's
  // request scope inside each task so per-function spans and flight
  // events carry the same request identity at any thread count.
  const RequestContext ReqCtx = RequestScope::current();
  Stats.Parallel = parallelFor(NumFns, Opts.Parallel, [&](size_t I) {
    RequestScope TaskScope(ReqCtx.Id, ReqCtx.Generation);
    faultInject().stallWorker(I);
    compileOneFunction(Target, Opts, Prog, Prog.Functions[I],
                       FirstOrdinal + OrdinalBase[I], Results[I]);
  });

  // Stitch in source order; on failure report the first failing function,
  // with diagnostics merged up to and including it (serial semantics).
  // The stitch scope runs to function exit: append + peephole + final
  // render are all serial post-join work.
  if (Opts.Budget)
    Opts.Budget->setPhase(RequestPhase::Stitch);
  flightRecord(FlightKind::PhaseStitch, static_cast<int64_t>(NumFns));
  ProfilePhaseScope StitchScope(ProfPhase::Stitch);
  double WorkerEmitSeconds = 0;
  StatsRegistry &Reg = gg::stats();
  for (size_t I = 0; I < NumFns; ++I) {
    FunctionResult &R = Results[I];
    Diags.append(R.Diags);
    if (!R.Ok) {
      Err = R.Err;
      return false;
    }
    Trace += R.TraceText;
    Stats.MatchSeconds += R.MatchSeconds;
    Stats.InstrGenSeconds += std::max(0.0, R.GenSeconds - R.EmitInGen);
    Stats.StatementTrees += R.StatementTrees;
    Stats.MatcherTokens += R.MatcherTokens;
    Stats.MatcherSteps += R.MatcherSteps;
    Stats.BlockedTrees += R.BlockedTrees;
    Stats.RecoveredTrees += R.RecoveredTrees;
    Stats.Regs.Allocations += R.Regs.Allocations;
    Stats.Regs.Spills += R.Regs.Spills;
    Stats.Regs.Unspills += R.Regs.Unspills;
    Stats.Regs.MaxLive = std::max(Stats.Regs.MaxLive, R.Regs.MaxLive);
    Stats.Idioms.BindingApplied += R.Idioms.BindingApplied;
    Stats.Idioms.RangeApplied += R.Idioms.RangeApplied;
    Stats.Idioms.CCTestsElided += R.Idioms.CCTestsElided;
    Stats.Idioms.PseudoExpansions += R.Idioms.PseudoExpansions;
    WorkerEmitSeconds += R.Emit->emitSeconds();
    Emit.append(std::move(*R.Emit));

    ++Reg.counter("cg.functions");
    Reg.counter("idiom.binding_applied") += R.Idioms.BindingApplied;
    Reg.counter("idiom.range_applied") += R.Idioms.RangeApplied;
    Reg.counter("idiom.cc_tests_elided") += R.Idioms.CCTestsElided;
    Reg.counter("idiom.pseudo_expansions") += R.Idioms.PseudoExpansions;
  }

  if (Opts.Peephole)
    Stats.Peephole = runPeephole(Emit.linesMutable());

  Stats.TransformSeconds = TransformT.seconds();
  // Figure-2 accounting: phase 3 is replay time minus the output
  // formatting nested inside it; phase 4 is all formatting (operands,
  // prologue/data directives, final text rendering). With Threads > 1
  // these are summed per-worker CPU seconds, not wall time.
  Stats.Instructions = Emit.instructionCount();
  Asm += Emit.text();
  Stats.AsmLines = Emit.lineCount();
  Stats.EmitSeconds = Emit.emitSeconds();

  ++Reg.counter("cg.compiles");
  Reg.counter("cg.trees") += Stats.StatementTrees;
  Reg.counter("emit.asm_lines") += Stats.AsmLines;
  Reg.counter("cg.parallel.threads") += Stats.Parallel.Workers;
  Reg.counter("cg.parallel.tasks") += Stats.Parallel.Tasks;
  Reg.counter("cg.parallel.steals") += Stats.Parallel.Steals;
  Reg.value("cg.transform_seconds") += Stats.TransformSeconds;
  Reg.value("cg.match_seconds") += Stats.MatchSeconds;
  Reg.value("cg.instrgen_seconds") += Stats.InstrGenSeconds;
  Reg.value("cg.emit_seconds") += Stats.EmitSeconds;
  Reg.value("cg.parallel.worker_emit_seconds") += WorkerEmitSeconds;
  return true;
}
