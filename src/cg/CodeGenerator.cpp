//===- CodeGenerator.cpp - the table-driven code generator --------------------===//

#include "cg/CodeGenerator.h"
#include "ir/Linearize.h"
#include "pcc/PccCodeGen.h"
#include "support/FaultInject.h"
#include "support/Stats.h"
#include "support/Strings.h"
#include "support/Timer.h"
#include "support/Trace.h"

using namespace gg;

namespace {

/// Creates-at-zero every key the code generator's --stats-json schema
/// promises, so consumers (and the golden-schema test) see a stable key
/// set even when a counter legitimately never fires — e.g. the peephole
/// counters with the optimizer off, or regs.spills on spill-free input.
void touchSchemaKeys() {
  static bool Done = [] {
    StatsRegistry &S = gg::stats();
    for (const char *Name :
         {"cg.compiles", "cg.functions", "cg.trees", "cg.blocked_trees",
          "cg.recovered_trees", "match.trees",
          "match.shifts", "match.reduces", "match.dynamic_ties",
          "match.chooser_invocations", "match.syntactic_blocks",
          "match.depth_cap_hits", "fault.productions_dropped",
          "fault.trees_truncated", "fault.table_bytes_corrupted",
          "phase1.cond_branch_rewrites", "phase1.bool_value_rewrites",
          "phase1.calls_factored", "phase1.constants_folded",
          "phase1.canonicalizations", "phase1.subtrees_swapped",
          "phase1.reverse_ops_used", "phase1.spill_splits",
          "idiom.binding_applied", "idiom.range_applied",
          "idiom.cc_tests_elided", "idiom.pseudo_expansions",
          "regs.allocations", "regs.spills", "regs.unspills",
          "peephole.branch_to_next_removed", "peephole.branches_inverted",
          "peephole.chains_collapsed", "peephole.unreachable_removed",
          "emit.instructions", "emit.asm_lines"})
      S.counter(Name);
    for (const char *Name :
         {"cg.transform_seconds", "cg.match_seconds",
          "cg.instrgen_seconds", "cg.emit_seconds"})
      S.value(Name);
    for (const char *Name :
         {"match.stack_depth", "match.tokens_per_tree",
          "match.steps_per_tree", "regs.live"})
      S.histogram(Name);
    return true;
  }();
  (void)Done;
}

} // namespace

void gg::emitDataSection(const Program &Prog, AsmEmitter &Emit) {
  if (Prog.Globals.empty())
    return;
  Emit.directive(".data");
  for (const GlobalVar &G : Prog.Globals) {
    Emit.directive(".align 2");
    Emit.labelText(Prog.Syms.text(G.Name));
    const char *Dir = sizeOfTy(G.ElemTy) == 1   ? ".byte"
                      : sizeOfTy(G.ElemTy) == 2 ? ".word"
                                                : ".long";
    if (G.Init.empty()) {
      Emit.directive(strf(".space %d", G.Count * sizeOfTy(G.ElemTy)));
      continue;
    }
    for (int I = 0; I < G.Count; ++I) {
      int64_t V = I < static_cast<int>(G.Init.size()) ? G.Init[I] : 0;
      Emit.directive(strf("%s %lld", Dir, static_cast<long long>(V)));
    }
  }
}

bool GGCodeGenerator::compile(Program &Prog, std::string &Asm,
                              std::string &Err) {
  Stats = CodeGenStats();
  Trace.clear();
  Diags = DiagnosticSink();
  touchSchemaKeys();
  TraceSpan CompileSpan("cg.compile");
  AsmEmitter Emit(Prog.Syms);
  Emit.setExplain(Opts.Explain);
  Timer TransformT, MatchT, GenT;
  double EmitInGen = 0; ///< phase-4 time nested inside the GenT scope

  emitDataSection(Prog, Emit);
  Emit.directive(".text");

  for (Function &F : Prog.Functions) {
    TraceSpan FnSpan("cg.function " + Prog.Syms.text(F.Name));
    {
      TimerScope TS(TransformT);
      TransformStats TF = runPhase1(Prog, F, Opts.Transform);
      Stats.Transform.CondBranchRewrites += TF.CondBranchRewrites;
      Stats.Transform.BoolValueRewrites += TF.BoolValueRewrites;
      Stats.Transform.CallsFactored += TF.CallsFactored;
      Stats.Transform.ConstantsFolded += TF.ConstantsFolded;
      Stats.Transform.Canonicalizations += TF.Canonicalizations;
      Stats.Transform.SubtreesSwapped += TF.SubtreesSwapped;
      Stats.Transform.ReverseOpsUsed += TF.ReverseOpsUsed;
      Stats.Transform.SpillSplits += TF.SpillSplits;
    }

    Emit.blank();
    Emit.directive(strf(".globl %s", Prog.Syms.text(F.Name).c_str()));
    Emit.labelText(Prog.Syms.text(F.Name));
    Emit.directive(".word 0x0fc0"); // entry mask: save r6-r11
    // The frame grows while compiling (spill cells, phase-1 temporaries of
    // later statements): emit a placeholder and patch afterwards.
    size_t PrologueLine = Emit.lines().size();
    Emit.instRaw("subl2", {"$FRAME", "sp"});

    VaxSemantics Sem(Emit, F, Opts.Idioms);

    auto CompileTree = [&](Node *Tree) -> bool {
      std::vector<LinToken> Input;
      MatchResult MR;
      // Everything this tree emits sits after the mark; a failed tree is
      // rolled back wholesale before the fallback path runs.
      AsmEmitter::Mark TreeMark = Emit.mark();
      {
        TimerScope TS(MatchT);
        Input = linearize(Tree);
        // truncate-input fault: models a phase-1/linearizer bug. A proper
        // prefix of a prefix linearization can never parse to completion,
        // so the matcher blocks instead of accepting a wrong parse.
        Input.resize(faultInject().truncatedInputSize(Input.size()));
        Stats.MatcherTokens += Input.size();
        MR = Target.matcher().match(Input);
      }
      std::string TreeErr;
      bool TreeOk = MR.Ok;
      if (MR.Ok) {
        Stats.MatcherSteps += MR.Steps.size();
        if (Opts.Trace) {
          Trace += printLinear(Tree, Prog.Syms) + "\n";
          Trace += renderTrace(Target.grammar(), Input, MR, Prog.Syms);
          Trace += "\n";
        }
        TimerScope TS(GenT);
        TraceSpan ReplaySpan("cg.replay");
        double EmitBefore = Emit.emitSeconds();
        std::string SemErr;
        TreeOk = Sem.replay(Target.grammar(), Input, MR.Steps, SemErr);
        EmitInGen += Emit.emitSeconds() - EmitBefore;
        if (!TreeOk)
          TreeErr = strf("%s\n  while generating: %s", SemErr.c_str(),
                         printLinear(Tree, Prog.Syms).c_str());
      } else {
        TreeErr = strf("%s\n  while matching: %s", MR.Error.c_str(),
                       printLinear(Tree, Prog.Syms).c_str());
      }
      if (TreeOk) {
        ++Stats.StatementTrees;
        return true;
      }

      // Degradation ladder: one tree failing the table-driven path must
      // not kill the module. Discard the tree's partial output and
      // per-statement state, then regenerate it through the PCC baseline.
      ++Stats.BlockedTrees;
      ++gg::stats().counter("cg.blocked_trees");
      if (!Opts.Recover) {
        Err = TreeErr;
        return false;
      }
      Emit.rollback(TreeMark);
      Sem.resetAfterFailure();
      Diags.warning(
          strf("recovering via the baseline generator: %s", TreeErr.c_str()));
      DiagnosticSink FallbackDiags;
      {
        TimerScope TS(GenT);
        TraceSpan FallbackSpan("cg.fallback");
        if (!pccGenStatement(Prog, F, Tree, Emit, FallbackDiags)) {
          // Bottom of the ladder: a module-level diagnostic, never
          // process death — the caller decides what to do with it.
          Err = strf("tree failed the table-driven path AND the baseline "
                     "fallback\n  table-driven: %s\n  fallback: %s",
                     TreeErr.c_str(), FallbackDiags.renderAll().c_str());
          Diags.error(Err);
          return false;
        }
      }
      // Spliced code clobbers condition codes behind the CC tracker's back.
      Sem.invalidateCC();
      ++Stats.RecoveredTrees;
      ++gg::stats().counter("cg.recovered_trees");
      ++Stats.StatementTrees;
      return true;
    };

    bool EndsWithRet = false;
    for (Node *S : F.Body) {
      EndsWithRet = false;
      switch (S->Opcode) {
      case Op::LabelDef:
        Sem.emitLabel(S->Sym);
        break;
      case Op::Jump:
        Sem.emitJump(S->left()->Sym);
        break;
      case Op::Ret:
        if (S->left()) {
          // Return value goes to r0: run "r0 := e" through the matcher.
          Node *Copy = Prog.Arena->bin(Op::Assign, Ty::L,
                                       Prog.Arena->dreg(RegR0, Ty::L),
                                       S->left());
          if (!CompileTree(Copy))
            return false;
        }
        Sem.emitRet();
        EndsWithRet = true;
        break;
      case Op::CallStmt: {
        const Node *Call = S->right();
        Sem.emitCall(Call->left()->Sym, static_cast<int>(Call->Value));
        if (S->left()) {
          Node *Copy = Prog.Arena->bin(Op::Assign, S->left()->Type,
                                       S->left(),
                                       Prog.Arena->dreg(RegR0, Ty::L));
          if (!CompileTree(Copy))
            return false;
        }
        break;
      }
      default:
        if (!CompileTree(S))
          return false;
        break;
      }
    }
    if (!EndsWithRet)
      Sem.emitRet();

    // Patch the prologue with the final frame size.
    Emit.patchLine(PrologueLine, strf("\tsubl2\t$%d,sp", F.FrameSize));

    Stats.Regs.Allocations += Sem.regStats().Allocations;
    Stats.Regs.Spills += Sem.regStats().Spills;
    Stats.Regs.Unspills += Sem.regStats().Unspills;
    Stats.Regs.MaxLive = std::max(Stats.Regs.MaxLive,
                                  Sem.regStats().MaxLive);
    Stats.Idioms.BindingApplied += Sem.idiomStats().BindingApplied;
    Stats.Idioms.RangeApplied += Sem.idiomStats().RangeApplied;
    Stats.Idioms.CCTestsElided += Sem.idiomStats().CCTestsElided;
    Stats.Idioms.PseudoExpansions += Sem.idiomStats().PseudoExpansions;

    StatsRegistry &Reg = gg::stats();
    ++Reg.counter("cg.functions");
    Reg.counter("idiom.binding_applied") += Sem.idiomStats().BindingApplied;
    Reg.counter("idiom.range_applied") += Sem.idiomStats().RangeApplied;
    Reg.counter("idiom.cc_tests_elided") += Sem.idiomStats().CCTestsElided;
    Reg.counter("idiom.pseudo_expansions") +=
        Sem.idiomStats().PseudoExpansions;
  }

  if (Opts.Peephole)
    Stats.Peephole = runPeephole(Emit.linesMutable());

  Stats.TransformSeconds = TransformT.seconds();
  Stats.MatchSeconds = MatchT.seconds();
  // Figure-2 accounting: phase 3 is replay time minus the output
  // formatting nested inside it; phase 4 is all formatting (operands,
  // prologue/data directives, final text rendering).
  Stats.InstrGenSeconds = std::max(0.0, GenT.seconds() - EmitInGen);
  Stats.Instructions = Emit.instructionCount();
  Asm += Emit.text();
  Stats.AsmLines = Emit.lineCount();
  Stats.EmitSeconds = Emit.emitSeconds();

  StatsRegistry &Reg = gg::stats();
  ++Reg.counter("cg.compiles");
  Reg.counter("cg.trees") += Stats.StatementTrees;
  Reg.counter("emit.asm_lines") += Stats.AsmLines;
  Reg.value("cg.transform_seconds") += Stats.TransformSeconds;
  Reg.value("cg.match_seconds") += Stats.MatchSeconds;
  Reg.value("cg.instrgen_seconds") += Stats.InstrGenSeconds;
  Reg.value("cg.emit_seconds") += Stats.EmitSeconds;
  return true;
}
