//===- CodeGenerator.cpp - the table-driven code generator --------------------===//

#include "cg/CodeGenerator.h"
#include "ir/Linearize.h"
#include "support/Strings.h"
#include "support/Timer.h"

using namespace gg;

void gg::emitDataSection(const Program &Prog, AsmEmitter &Emit) {
  if (Prog.Globals.empty())
    return;
  Emit.directive(".data");
  for (const GlobalVar &G : Prog.Globals) {
    Emit.directive(".align 2");
    Emit.labelText(Prog.Syms.text(G.Name));
    const char *Dir = sizeOfTy(G.ElemTy) == 1   ? ".byte"
                      : sizeOfTy(G.ElemTy) == 2 ? ".word"
                                                : ".long";
    if (G.Init.empty()) {
      Emit.directive(strf(".space %d", G.Count * sizeOfTy(G.ElemTy)));
      continue;
    }
    for (int I = 0; I < G.Count; ++I) {
      int64_t V = I < static_cast<int>(G.Init.size()) ? G.Init[I] : 0;
      Emit.directive(strf("%s %lld", Dir, static_cast<long long>(V)));
    }
  }
}

bool GGCodeGenerator::compile(Program &Prog, std::string &Asm,
                              std::string &Err) {
  Stats = CodeGenStats();
  Trace.clear();
  AsmEmitter Emit(Prog.Syms);
  Timer TransformT, MatchT, GenT;

  emitDataSection(Prog, Emit);
  Emit.directive(".text");

  for (Function &F : Prog.Functions) {
    {
      TimerScope TS(TransformT);
      TransformStats TF = runPhase1(Prog, F, Opts.Transform);
      Stats.Transform.CondBranchRewrites += TF.CondBranchRewrites;
      Stats.Transform.BoolValueRewrites += TF.BoolValueRewrites;
      Stats.Transform.CallsFactored += TF.CallsFactored;
      Stats.Transform.ConstantsFolded += TF.ConstantsFolded;
      Stats.Transform.Canonicalizations += TF.Canonicalizations;
      Stats.Transform.SubtreesSwapped += TF.SubtreesSwapped;
      Stats.Transform.ReverseOpsUsed += TF.ReverseOpsUsed;
      Stats.Transform.SpillSplits += TF.SpillSplits;
    }

    Emit.blank();
    Emit.directive(strf(".globl %s", Prog.Syms.text(F.Name).c_str()));
    Emit.labelText(Prog.Syms.text(F.Name));
    Emit.directive(".word 0x0fc0"); // entry mask: save r6-r11
    // The frame grows while compiling (spill cells, phase-1 temporaries of
    // later statements): emit a placeholder and patch afterwards.
    size_t PrologueLine = Emit.lines().size();
    Emit.instRaw("subl2", {"$FRAME", "sp"});

    VaxSemantics Sem(Emit, F, Opts.Idioms);

    auto CompileTree = [&](Node *Tree) -> bool {
      std::vector<LinToken> Input;
      MatchResult MR;
      {
        TimerScope TS(MatchT);
        Input = linearize(Tree);
        Stats.MatcherTokens += Input.size();
        MR = Target.matcher().match(Input);
      }
      if (!MR.Ok) {
        Err = strf("%s\n  while matching: %s", MR.Error.c_str(),
                   printLinear(Tree, Prog.Syms).c_str());
        return false;
      }
      Stats.MatcherSteps += MR.Steps.size();
      if (Opts.Trace) {
        Trace += printLinear(Tree, Prog.Syms) + "\n";
        Trace += renderTrace(Target.grammar(), Input, MR, Prog.Syms);
        Trace += "\n";
      }
      {
        TimerScope TS(GenT);
        std::string SemErr;
        if (!Sem.replay(Target.grammar(), Input, MR.Steps, SemErr)) {
          Err = strf("%s\n  while generating: %s", SemErr.c_str(),
                     printLinear(Tree, Prog.Syms).c_str());
          return false;
        }
      }
      ++Stats.StatementTrees;
      return true;
    };

    bool EndsWithRet = false;
    for (Node *S : F.Body) {
      EndsWithRet = false;
      switch (S->Opcode) {
      case Op::LabelDef:
        Sem.emitLabel(S->Sym);
        break;
      case Op::Jump:
        Sem.emitJump(S->left()->Sym);
        break;
      case Op::Ret:
        if (S->left()) {
          // Return value goes to r0: run "r0 := e" through the matcher.
          Node *Copy = Prog.Arena->bin(Op::Assign, Ty::L,
                                       Prog.Arena->dreg(RegR0, Ty::L),
                                       S->left());
          if (!CompileTree(Copy))
            return false;
        }
        Sem.emitRet();
        EndsWithRet = true;
        break;
      case Op::CallStmt: {
        const Node *Call = S->right();
        Sem.emitCall(Call->left()->Sym, static_cast<int>(Call->Value));
        if (S->left()) {
          Node *Copy = Prog.Arena->bin(Op::Assign, S->left()->Type,
                                       S->left(),
                                       Prog.Arena->dreg(RegR0, Ty::L));
          if (!CompileTree(Copy))
            return false;
        }
        break;
      }
      default:
        if (!CompileTree(S))
          return false;
        break;
      }
    }
    if (!EndsWithRet)
      Sem.emitRet();

    // Patch the prologue with the final frame size.
    Emit.patchLine(PrologueLine, strf("\tsubl2\t$%d,sp", F.FrameSize));

    Stats.Regs.Allocations += Sem.regStats().Allocations;
    Stats.Regs.Spills += Sem.regStats().Spills;
    Stats.Regs.Unspills += Sem.regStats().Unspills;
    Stats.Regs.MaxLive = std::max(Stats.Regs.MaxLive,
                                  Sem.regStats().MaxLive);
    Stats.Idioms.BindingApplied += Sem.idiomStats().BindingApplied;
    Stats.Idioms.RangeApplied += Sem.idiomStats().RangeApplied;
    Stats.Idioms.CCTestsElided += Sem.idiomStats().CCTestsElided;
    Stats.Idioms.PseudoExpansions += Sem.idiomStats().PseudoExpansions;
  }

  if (Opts.Peephole)
    Stats.Peephole = runPeephole(Emit.linesMutable());

  Stats.TransformSeconds = TransformT.seconds();
  Stats.MatchSeconds = MatchT.seconds();
  Stats.InstrGenSeconds = GenT.seconds();
  Stats.Instructions = Emit.instructionCount();
  Asm += Emit.text();
  Stats.AsmLines = Emit.lineCount();
  return true;
}
