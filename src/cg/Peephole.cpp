//===- Peephole.cpp - assembly-level peephole optimizer ------------------------===//

#include "cg/Peephole.h"
#include "support/Stats.h"
#include "support/Strings.h"
#include "support/Trace.h"

#include <map>
#include <string_view>

using namespace gg;

namespace {

enum class LineKind { Blank, Label, Directive, Inst, Comment };

struct ParsedLine {
  LineKind Kind = LineKind::Blank;
  std::string_view Opcode;
  std::string_view Operands; ///< raw operand text after the opcode
};

ParsedLine parseLine(const std::string &Line) {
  ParsedLine P;
  if (Line.empty()) {
    P.Kind = LineKind::Blank;
    return P;
  }
  if (Line[0] == '#') {
    P.Kind = LineKind::Comment;
    return P;
  }
  if (Line[0] != '\t') {
    P.Kind = Line.back() == ':' ? LineKind::Label : LineKind::Blank;
    return P;
  }
  std::string_view Body(Line);
  Body.remove_prefix(1);
  if (!Body.empty() && Body[0] == '.') {
    P.Kind = LineKind::Directive;
    return P;
  }
  P.Kind = LineKind::Inst;
  size_t Tab = Body.find('\t');
  if (Tab == std::string_view::npos) {
    P.Opcode = Body;
  } else {
    P.Opcode = Body.substr(0, Tab);
    P.Operands = Body.substr(Tab + 1);
  }
  return P;
}

bool isUncondBranch(std::string_view Op) {
  return Op == "brw" || Op == "brb" || Op == "jbr";
}

bool isCondBranch(std::string_view Op) {
  static const char *const Names[] = {"jeql", "jneq", "jlss",  "jleq",
                                      "jgtr", "jgeq", "jlssu", "jlequ",
                                      "jgtru", "jgequ"};
  for (const char *N : Names)
    if (Op == N)
      return true;
  return false;
}

std::string invertBranch(std::string_view Op) {
  static const std::pair<const char *, const char *> Inv[] = {
      {"jeql", "jneq"},   {"jlss", "jgeq"},   {"jleq", "jgtr"},
      {"jlssu", "jgequ"}, {"jlequ", "jgtru"},
  };
  for (auto &[A, B] : Inv) {
    if (Op == A)
      return B;
    if (Op == B)
      return A;
  }
  return std::string(Op);
}

class PeepholePass {
public:
  explicit PeepholePass(std::vector<std::string> &Lines) : Lines(Lines) {}

  PeepholeStats run() {
    for (int Round = 0; Round < 8; ++Round) {
      bool Changed = false;
      Changed |= collapseChains();
      Changed |= invertOverUncond();
      Changed |= removeBranchToNext();
      Changed |= removeUnreachable();
      if (!Changed)
        break;
    }
    return Stats;
  }

private:
  std::vector<std::string> &Lines;
  PeepholeStats Stats;

  std::string labelNameAt(size_t I) const {
    return Lines[I].substr(0, Lines[I].size() - 1);
  }

  void erase(size_t I) { Lines.erase(Lines.begin() + I); }

  /// Index of the next line that is not a label/blank/comment, from I.
  size_t nextCode(size_t I) const {
    while (I < Lines.size()) {
      LineKind K = parseLine(Lines[I]).Kind;
      if (K == LineKind::Inst || K == LineKind::Directive)
        return I;
      ++I;
    }
    return Lines.size();
  }

  /// True if label \p Name appears among the label lines in [From, To).
  bool labelInRange(const std::string &Name, size_t From, size_t To) const {
    for (size_t I = From; I < To && I < Lines.size(); ++I)
      if (parseLine(Lines[I]).Kind == LineKind::Label &&
          labelNameAt(I) == Name)
        return true;
    return false;
  }

  std::map<std::string, size_t> labelIndex() const {
    std::map<std::string, size_t> Map;
    for (size_t I = 0; I < Lines.size(); ++I)
      if (parseLine(Lines[I]).Kind == LineKind::Label)
        Map[labelNameAt(I)] = I;
    return Map;
  }

  bool removeBranchToNext() {
    bool Changed = false;
    for (size_t I = 0; I < Lines.size(); ++I) {
      ParsedLine P = parseLine(Lines[I]);
      if (P.Kind != LineKind::Inst || !isUncondBranch(P.Opcode))
        continue;
      std::string Target(P.Operands);
      size_t Next = nextCode(I + 1);
      if (labelInRange(Target, I + 1, Next)) {
        erase(I);
        ++Stats.BranchToNextRemoved;
        Changed = true;
        --I;
      }
    }
    return Changed;
  }

  bool invertOverUncond() {
    bool Changed = false;
    for (size_t I = 0; I + 2 < Lines.size(); ++I) {
      ParsedLine A = parseLine(Lines[I]);
      if (A.Kind != LineKind::Inst || !isCondBranch(A.Opcode))
        continue;
      ParsedLine B = parseLine(Lines[I + 1]);
      if (B.Kind != LineKind::Inst || !isUncondBranch(B.Opcode))
        continue;
      // jCC L1; brw L2; ... L1 among the labels immediately following.
      std::string L1(A.Operands);
      size_t Next = nextCode(I + 2);
      if (!labelInRange(L1, I + 2, Next))
        continue;
      std::string Inverted = invertBranch(A.Opcode);
      if (Inverted == A.Opcode)
        continue; // not invertible (jeql/jneq are; all our conds are)
      Lines[I] = strf("\t%s\t%s", Inverted.c_str(),
                      std::string(B.Operands).c_str());
      erase(I + 1);
      ++Stats.BranchesInverted;
      Changed = true;
    }
    return Changed;
  }

  bool collapseChains() {
    bool Changed = false;
    std::map<std::string, size_t> Labels = labelIndex();
    for (size_t I = 0; I < Lines.size(); ++I) {
      ParsedLine P = parseLine(Lines[I]);
      if (P.Kind != LineKind::Inst ||
          (!isUncondBranch(P.Opcode) && !isCondBranch(P.Opcode)))
        continue;
      std::string Target(P.Operands);
      auto It = Labels.find(Target);
      if (It == Labels.end())
        continue;
      size_t Dest = nextCode(It->second + 1);
      if (Dest >= Lines.size())
        continue;
      ParsedLine D = parseLine(Lines[Dest]);
      if (D.Kind != LineKind::Inst || !isUncondBranch(D.Opcode))
        continue;
      std::string Final(D.Operands);
      if (Final == Target)
        continue; // self-loop; leave it
      Lines[I] = strf("\t%s\t%s", std::string(P.Opcode).c_str(),
                      Final.c_str());
      ++Stats.ChainsCollapsed;
      Changed = true;
    }
    return Changed;
  }

  bool removeUnreachable() {
    bool Changed = false;
    for (size_t I = 0; I < Lines.size(); ++I) {
      ParsedLine P = parseLine(Lines[I]);
      if (P.Kind != LineKind::Inst ||
          (!isUncondBranch(P.Opcode) && P.Opcode != "ret"))
        continue;
      // Delete instruction lines until a label or directive.
      while (I + 1 < Lines.size()) {
        ParsedLine N = parseLine(Lines[I + 1]);
        if (N.Kind == LineKind::Inst) {
          erase(I + 1);
          ++Stats.UnreachableRemoved;
          Changed = true;
          continue;
        }
        if (N.Kind == LineKind::Blank || N.Kind == LineKind::Comment) {
          ++I; // skip separators but keep scanning? stop to stay simple
          break;
        }
        break;
      }
    }
    return Changed;
  }
};

} // namespace

PeepholeStats gg::runPeephole(std::vector<std::string> &Lines) {
  TraceSpan Span("cg.peephole");
  PeepholePass Pass(Lines);
  PeepholeStats PS = Pass.run();

  StatsRegistry &S = stats();
  S.counter("peephole.branch_to_next_removed") += PS.BranchToNextRemoved;
  S.counter("peephole.branches_inverted") += PS.BranchesInverted;
  S.counter("peephole.chains_collapsed") += PS.ChainsCollapsed;
  S.counter("peephole.unreachable_removed") += PS.UnreachableRemoved;
  Span.arg("rewrites", PS.total());
  return PS;
}
