//===- Phase1.cpp - phase 1 tree transformation ------------------------------===//

#include "cg/Transform.h"
#include "ir/Fold.h"
#include "support/Error.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <algorithm>

using namespace gg;

namespace {

/// True if evaluating the subtree has observable side effects (possible
/// post-1a: register autoincrement/autodecrement only).
bool hasSideEffects(const Node *N) {
  if (!N)
    return false;
  switch (N->Opcode) {
  case Op::PostInc:
  case Op::PreDec:
  case Op::Call:
  case Op::Assign:
  case Op::AssignR:
    return true;
  default:
    break;
  }
  return hasSideEffects(N->left()) || hasSideEffects(N->right());
}

bool isBoolOp(const Node *N) {
  switch (N->Opcode) {
  case Op::AndAnd:
  case Op::OrOr:
  case Op::Not:
  case Op::Rel:
  case Op::Select:
    return true;
  default:
    return false;
  }
}

bool isConstLike(const Node *N) {
  return N->is(Op::Const) || N->is(Op::Gaddr);
}

class Phase1 {
public:
  Phase1(Program &P, Function &F, const TransformOptions &Opts)
      : P(P), F(F), Opts(Opts), A(*P.Arena) {}

  TransformStats run() {
    std::vector<Node *> Original = std::move(F.Body);
    F.Body.clear();
    for (Node *S : Original)
      rewriteStmt(S);
    // 1b and 1c run per produced statement; 1c's spill prevention may
    // insert further statements, so work over a fresh list again.
    std::vector<Node *> AfterA = std::move(Out);
    Out.clear();
    for (Node *S : AfterA) {
      S = canonStmt(S);
      orderStmt(S);
      if (Opts.PreventSpills)
        preventSpills(S);
      Out.push_back(S);
    }
    F.Body = std::move(Out);
    return Stats;
  }

private:
  Program &P;
  Function &F;
  TransformOptions Opts;
  NodeArena &A;
  std::vector<Node *> Out;
  TransformStats Stats;

  void emit(Node *S) { Out.push_back(S); }

  /// A fresh memory temporary of type \p T (a compiler-generated local).
  Node *newTemp(Ty T) { return A.local(T, F.allocLocal(4)); }

  /// True when re-reading the tree later is guaranteed to produce the
  /// same value regardless of intervening side effects (pure constants).
  static bool isImmutableValue(const Node *N) {
    switch (N->Opcode) {
    case Op::Const:
    case Op::Gaddr:
    case Op::Label:
      return true;
    case Op::Plus: // address arithmetic over constants and frame regs
      return isImmutableValue(N->left()) && isImmutableValue(N->right());
    case Op::Dreg:
      // fp/ap never change mid-function; register variables can.
      return N->Reg == RegFP || N->Reg == RegAP;
    default:
      return false;
    }
  }

  /// Evaluation-order repair: \p Mark is the statement position recorded
  /// *after* \p Earlier was rewritten. If statements were hoisted past it
  /// (a later operand contained a call or embedded assignment), the
  /// already-ordered read must be saved to a temporary inserted at the
  /// mark, or the hoisted side effects would be observed too early.
  Node *orderGuard(Node *Earlier, size_t Mark) {
    if (Out.size() == Mark || isImmutableValue(Earlier))
      return Earlier;
    Node *Tmp = newTemp(Earlier->Type);
    Out.insert(Out.begin() + Mark,
               A.bin(Op::Assign, Earlier->Type, Tmp, Earlier));
    return A.clone(Tmp);
  }

  //===--------------------------------------------------------------------===
  // Phase 1a: explicit control flow and call factoring
  //===--------------------------------------------------------------------===

  void rewriteStmt(Node *S) {
    switch (S->Opcode) {
    case Op::LabelDef:
    case Op::Jump:
      emit(S);
      return;
    case Op::Ret:
      if (S->left())
        S->Kids[0] = value(S->left());
      emit(S);
      return;
    case Op::CBranch: {
      Node *Cmp = S->left();
      assert(Cmp->is(Op::Cmp) && "CBranch without Cmp");
      // Decompose boolean operators in "e <cc> 0" conditions into explicit
      // tests and branches (the reason this phase exists).
      if ((Cmp->CC == Cond::NE || Cmp->CC == Cond::EQ) &&
          isBoolOp(Cmp->left()) && Cmp->right()->isConst(0)) {
        ++Stats.CondBranchRewrites;
        condJump(Cmp->left(), S->right()->Sym, Cmp->CC == Cond::NE);
        return;
      }
      Cmp->Kids[0] = value(Cmp->left());
      size_t Mark = Out.size();
      Cmp->Kids[1] = value(Cmp->right());
      Cmp->Kids[0] = orderGuard(Cmp->Kids[0], Mark);
      emit(S);
      return;
    }
    case Op::CallStmt: {
      Node *Dest = S->left() ? lvalue(S->left()) : nullptr;
      // Already in post-1a shape (argument chain gone, count carried on
      // the Call node): pass through. Re-factoring would find no chain
      // and zero the count while the caller's Push statements survive.
      if (!S->right()->right()) {
        S->Kids[0] = Dest;
        emit(S);
        return;
      }
      emitCall(S->right(), Dest);
      return;
    }
    case Op::Assign: {
      Node *Dst = lvalue(S->left());
      // Assign a boolean expression directly: branches write the
      // destination, avoiding a temporary.
      if (isBoolOp(S->right())) {
        boolInto(captureDestAddress(Dst), S->right());
        return;
      }
      size_t Mark = Out.size();
      S->Kids[0] = Dst;
      S->Kids[1] = value(S->right());
      guardDestAddress(S, Mark);
      emit(S);
      return;
    }
    case Op::Push: // may appear when phase 1 reruns over transformed code
      S->Kids[0] = value(S->left());
      emit(S);
      return;
    default:
      // Bare expression statement: keep it only for its side effects.
      if (hasSideEffects(S)) {
        Node *V = value(S);
        if (hasSideEffects(V))
          emit(A.bin(Op::Assign, V->Type, newTemp(V->Type), V));
        (void)V;
      }
      return;
    }
  }

  /// Captures a destination's address into a temporary *now* so that
  /// statements emitted for the source cannot perturb it. Used before
  /// boolInto, whose branch structure always executes after the hoists.
  Node *captureDestAddress(Node *Dst) {
    if (!Dst->is(Op::Indir) || isImmutableValue(Dst->left()))
      return Dst;
    Node *Tmp = newTemp(Ty::UL);
    emit(A.bin(Op::Assign, Ty::UL, Tmp, Dst->left()));
    Dst->Kids[0] = A.clone(Tmp);
    return Dst;
  }

  /// If rewriting the source hoisted statements past \p Mark, the
  /// destination address of \p AssignNode (evaluated before the source)
  /// must be captured first.
  void guardDestAddress(Node *AssignNode, size_t Mark) {
    Node *Dst = AssignNode->left();
    if (Out.size() == Mark || !Dst->is(Op::Indir) ||
        isImmutableValue(Dst->left()))
      return;
    Node *Tmp = newTemp(Ty::UL);
    Out.insert(Out.begin() + Mark,
               A.bin(Op::Assign, Ty::UL, Tmp, Dst->left()));
    Dst->Kids[0] = A.clone(Tmp);
  }

  /// Rewrites an lvalue tree (address expressions inside it are values).
  Node *lvalue(Node *N) {
    switch (N->Opcode) {
    case Op::Name:
    case Op::Dreg:
      return N;
    case Op::Indir:
      N->Kids[0] = value(N->left());
      return N;
    default:
      gg_unreachable("malformed lvalue tree");
    }
  }

  /// Rewrites a value tree bottom-up; emits hoisted statements.
  Node *value(Node *N) {
    if (!N)
      return nullptr;
    switch (N->Opcode) {
    case Op::AndAnd:
    case Op::OrOr:
    case Op::Not:
    case Op::Rel:
    case Op::Select: {
      ++Stats.BoolValueRewrites;
      Node *Tmp = newTemp(N->Type);
      boolInto(Tmp, N);
      return A.clone(Tmp);
    }
    case Op::Call: {
      Node *Tmp = newTemp(N->Type);
      emitCall(N, Tmp);
      return A.clone(Tmp);
    }
    case Op::Assign: {
      // Embedded assignment: hoist, value is the destination cell.
      Node *Dst = lvalue(N->left());
      if (isBoolOp(N->right())) {
        Dst = captureDestAddress(Dst);
        boolInto(Dst, N->right());
        return A.clone(Dst);
      }
      size_t Mark = Out.size();
      N->Kids[0] = Dst;
      N->Kids[1] = value(N->right());
      guardDestAddress(N, Mark);
      emit(N);
      return A.clone(N->Kids[0]);
    }
    case Op::PostInc:
    case Op::PreDec: {
      Node *Lv = lvalue(N->left());
      N->Kids[1] = value(N->right());
      if (Lv->is(Op::Dreg)) {
        // Register autoincrement survives to the matcher (§6.1).
        N->Kids[0] = Lv;
        return N;
      }
      // Retype the (long) amount constant to the cell's type so the
      // expanded Plus/Minus has consistently typed operands.
      Node *Amount = N->right();
      if (Amount->is(Op::Const) && Amount->Type != N->Type)
        Amount = A.con(N->Type, Amount->Value);
      if (N->is(Op::PostInc)) {
        Node *Tmp = newTemp(N->Type);
        emit(A.bin(Op::Assign, N->Type, Tmp, A.clone(Lv)));
        emit(A.bin(Op::Assign, N->Type, Lv,
                   A.bin(Op::Plus, N->Type, A.clone(Lv), Amount)));
        return A.clone(Tmp);
      }
      emit(A.bin(Op::Assign, N->Type, Lv,
                 A.bin(Op::Minus, N->Type, A.clone(Lv), Amount)));
      return A.clone(Lv);
    }
    case Op::Colon:
    case Op::Arg:
      gg_unreachable("structural node reached value rewriting");
    default:
      if (N->left()) {
        N->Kids[0] = value(N->left());
        size_t Mark = Out.size();
        if (N->right()) {
          N->Kids[1] = value(N->right());
          // Preserve left-to-right evaluation order across hoisting.
          N->Kids[0] = orderGuard(N->Kids[0], Mark);
        }
      }
      return N;
    }
  }

  /// Factors one call: Push statements (first argument pushed last) and a
  /// CallStmt whose Call node carries the argument count.
  void emitCall(Node *CallNode, Node *Dest) {
    assert(CallNode->is(Op::Call));
    ++Stats.CallsFactored;
    std::vector<Node *> Args;
    for (Node *Chain = CallNode->right(); Chain; Chain = Chain->right())
      Args.push_back(Chain->left());

    // Rewrite argument expressions in source order, then push in reverse.
    // If any argument has side effects of its own, every mutable argument
    // is evaluated into a temporary at its source position so the
    // reversed pushes cannot observe reordered effects.
    bool AnyEffects = false;
    for (Node *Arg : Args)
      AnyEffects |= hasSideEffects(Arg);

    std::vector<Node *> Values;
    for (Node *Arg : Args) {
      Node *V = value(Arg);
      if (sizeClassOf(V->Type) != SizeClass::L)
        V = A.unary(Op::Conv, Ty::L, V);
      if ((AnyEffects || hasSideEffects(V)) && !isImmutableValue(V)) {
        Node *Tmp = newTemp(Ty::L);
        emit(A.bin(Op::Assign, Ty::L, Tmp, V));
        V = A.clone(Tmp);
      }
      Values.push_back(V);
    }
    for (size_t I = Values.size(); I-- > 0;)
      emit(A.unary(Op::Push, Ty::L, Values[I]));

    CallNode->Kids[1] = nullptr;
    CallNode->Value = static_cast<int64_t>(Values.size());
    Node *S = A.make(Op::CallStmt, CallNode->Type);
    S->Kids[0] = Dest;
    S->Kids[1] = CallNode;
    emit(S);
  }

  /// Lowers a boolean expression into an assignment of 0/1 (or of the
  /// selection arms) to \p Dst.
  void boolInto(Node *Dst, Node *E) {
    if (E->is(Op::Select)) {
      Node *Arms = E->right();
      assert(Arms->is(Op::Colon) && "Select without Colon");
      InternedString LElse = P.freshLabel(), LEnd = P.freshLabel();
      condJump(E->left(), LElse, /*JumpIfTrue=*/false);
      assignTo(Dst, Arms->left(), E->Type);
      emit(A.unary(Op::Jump, Ty::L, A.label(LEnd)));
      emit(A.labelDef(LElse));
      assignTo(Dst, Arms->right(), E->Type);
      emit(A.labelDef(LEnd));
      return;
    }
    InternedString LFalse = P.freshLabel(), LEnd = P.freshLabel();
    condJump(E, LFalse, /*JumpIfTrue=*/false);
    emit(A.bin(Op::Assign, Dst->Type, Dst, A.con(Dst->Type, 1)));
    emit(A.unary(Op::Jump, Ty::L, A.label(LEnd)));
    emit(A.labelDef(LFalse));
    emit(A.bin(Op::Assign, Dst->Type, A.clone(Dst), A.con(Dst->Type, 0)));
    emit(A.labelDef(LEnd));
  }

  void assignTo(Node *Dst, Node *E, Ty T) {
    if (isBoolOp(E)) {
      boolInto(Dst, E);
      return;
    }
    emit(A.bin(Op::Assign, T, A.clone(Dst), value(E)));
  }

  /// Emits branches so control reaches \p Target iff E's truth equals
  /// \p JumpIfTrue.
  void condJump(Node *E, InternedString Target, bool JumpIfTrue) {
    switch (E->Opcode) {
    case Op::AndAnd:
      if (JumpIfTrue) {
        InternedString LSkip = P.freshLabel();
        condJump(E->left(), LSkip, false);
        condJump(E->right(), Target, true);
        emit(A.labelDef(LSkip));
      } else {
        condJump(E->left(), Target, false);
        condJump(E->right(), Target, false);
      }
      return;
    case Op::OrOr:
      if (JumpIfTrue) {
        condJump(E->left(), Target, true);
        condJump(E->right(), Target, true);
      } else {
        InternedString LSkip = P.freshLabel();
        condJump(E->left(), LSkip, true);
        condJump(E->right(), Target, false);
        emit(A.labelDef(LSkip));
      }
      return;
    case Op::Not:
      condJump(E->left(), Target, !JumpIfTrue);
      return;
    case Op::Rel: {
      Node *L = value(E->left());
      size_t Mark = Out.size();
      Node *R = value(E->right());
      L = orderGuard(L, Mark);
      Ty CmpTy = sizeOfTy(L->Type) >= sizeOfTy(R->Type) ? L->Type : R->Type;
      Cond C = JumpIfTrue ? E->CC : negateCond(E->CC);
      Node *Cmp = A.cmp(C, L, R, CmpTy);
      Node *Br = A.bin(Op::CBranch, Ty::L, Cmp, A.label(Target));
      emit(Br);
      return;
    }
    default: {
      Node *V = value(E);
      Node *Cmp = A.cmp(JumpIfTrue ? Cond::NE : Cond::EQ, V,
                        A.con(V->Type, 0), V->Type);
      emit(A.bin(Op::CBranch, Ty::L, Cmp, A.label(Target)));
      return;
    }
    }
  }

  //===--------------------------------------------------------------------===
  // Phase 1b: operator expansion and commutative canonicalization
  //===--------------------------------------------------------------------===

  Node *canonStmt(Node *S) {
    switch (S->Opcode) {
    case Op::Assign:
    case Op::AssignR:
      S->Kids[0] = canon(S->Kids[0]);
      S->Kids[1] = canon(S->Kids[1]);
      return S;
    case Op::CBranch:
      S->left()->Kids[0] = canon(S->left()->Kids[0]);
      S->left()->Kids[1] = canon(S->left()->Kids[1]);
      return S;
    case Op::Ret:
    case Op::Push:
      if (S->left())
        S->Kids[0] = canon(S->left());
      return S;
    case Op::CallStmt:
      if (S->left())
        S->Kids[0] = canon(S->left());
      return S;
    default:
      return S;
    }
  }

  Node *canon(Node *N) {
    if (!N)
      return nullptr;
    if (N->left())
      N->Kids[0] = canon(N->left());
    if (N->right())
      N->Kids[1] = canon(N->right());

    Ty T = N->Type;
    Node *L = N->left(), *R = N->right();

    // Unary constant folding.
    if (opArity(N->Opcode) == 1 && L && L->is(Op::Const)) {
      if (std::optional<int64_t> V = foldUnaryOp(N->Opcode, T, L->Value)) {
        ++Stats.ConstantsFolded;
        return A.con(T, *V);
      }
    }

    if (opArity(N->Opcode) != 2 || N->is(Op::Assign) || N->is(Op::AssignR) ||
        N->is(Op::PostInc) || N->is(Op::PreDec) || N->is(Op::Arg) ||
        N->is(Op::Call))
      return N;

    // Binary constant folding (division by zero stays for runtime).
    if (L->is(Op::Const) && R->is(Op::Const)) {
      if (std::optional<int64_t> V =
              foldBinaryOp(N->Opcode, T, L->Value, R->Value)) {
        ++Stats.ConstantsFolded;
        return A.con(T, *V);
      }
    }

    // Subtraction of a constant becomes addition of its negative (§5.1.2).
    if (N->is(Op::Minus) && R->is(Op::Const)) {
      ++Stats.Canonicalizations;
      N = A.bin(Op::Plus, T, L, A.con(T, -R->Value));
      L = N->left();
      R = N->right();
    }

    // Left shift by a constant becomes multiplication by a power of two.
    if (N->is(Op::Lsh) && R->is(Op::Const) && R->Value >= 0 &&
        R->Value <= 30) {
      ++Stats.Canonicalizations;
      N = A.bin(Op::Mul, T, L, A.con(T, int64_t(1) << R->Value));
      L = N->left();
      R = N->right();
    }

    if (N->is(Op::Plus)) {
      // Fold address arithmetic on globals into the Gaddr offset.
      if (L->is(Op::Gaddr) && R->is(Op::Const)) {
        Node *G = A.gaddr(L->Sym);
        G->Value = L->Value + R->Value;
        return G;
      }
      if (L->is(Op::Const) && R->is(Op::Gaddr)) {
        Node *G = A.gaddr(R->Sym);
        G->Value = R->Value + L->Value;
        return G;
      }
    }

    // Reassociate to float constants outward: (c + x) + y -> c + (x + y).
    // This restores the "con + (base + index)" shape the displacement-
    // indexed addressing patterns expect.
    if (N->is(Op::Plus) && L->is(Op::Plus) && L->left()->is(Op::Const) &&
        !R->is(Op::Const)) {
      ++Stats.Canonicalizations;
      Node *Inner = A.bin(Op::Plus, T, L->right(), R);
      N = A.bin(Op::Plus, T, L->left(), canon(Inner));
      L = N->left();
      R = N->right();
    }

    if (isCommutativeOp(N->Opcode)) {
      // Constants to the left (§5.1.2).
      if (isConstLike(R) && !isConstLike(L)) {
        ++Stats.Canonicalizations;
        std::swap(N->Kids[0], N->Kids[1]);
        L = N->left();
        R = N->right();
      }
      // Merge nested constant additions: c1 + (c2 + x) -> (c1+c2) + x.
      if (N->is(Op::Plus) && L->is(Op::Const) && R->is(Op::Plus) &&
          R->left()->is(Op::Const)) {
        if (std::optional<int64_t> V =
                foldBinaryOp(Op::Plus, T, L->Value, R->left()->Value)) {
          ++Stats.ConstantsFolded;
          return A.bin(Op::Plus, T, A.con(T, *V), R->right());
        }
      }
    }

    // Identity simplifications (only on side-effect-free operands, and
    // only when the operand has the node's width — implicit widening of a
    // narrower operand must stay explicit in the tree's type).
    if (L->is(Op::Const)) {
      int64_t C = L->Value;
      bool RPure = !hasSideEffects(R);
      bool SameWidth = sizeClassOf(R->Type) == sizeClassOf(T);
      if (N->is(Op::Plus) && C == 0 && SameWidth)
        return R;
      if (N->is(Op::Mul) && C == 1 && SameWidth)
        return R;
      if (N->is(Op::Mul) && C == 0 && RPure) {
        ++Stats.ConstantsFolded;
        return A.con(T, 0);
      }
      if (N->is(Op::Or) && C == 0 && SameWidth)
        return R;
      if (N->is(Op::Xor) && C == 0 && SameWidth)
        return R;
      if (N->is(Op::And) && C == 0 && RPure) {
        ++Stats.ConstantsFolded;
        return A.con(T, 0);
      }
      if (N->is(Op::And) && SameWidth &&
          truncateToTy(C, T) == truncateToTy(-1, T))
        return R;
    }
    return N;
  }

  //===--------------------------------------------------------------------===
  // Phase 1c: evaluation ordering and spill prevention
  //===--------------------------------------------------------------------===

  void orderStmt(Node *S) {
    if (!Opts.Reorder)
      return;
    switch (S->Opcode) {
    case Op::Assign: {
      order(S->Kids[0], /*InAddress=*/false);
      order(S->Kids[1], false);
      // The assignment itself: evaluate the bigger side first. Assignment
      // is not commutative, so this needs the reverse operator (§5.1.3).
      if (Opts.ReverseOps &&
          S->right()->treeSize() > S->left()->treeSize() &&
          registerNeed(S->left()) >= 1) {
        ++Stats.ReverseOpsUsed;
        S->Opcode = Op::AssignR;
        std::swap(S->Kids[0], S->Kids[1]);
      }
      return;
    }
    case Op::CBranch: {
      Node *Cmp = S->left();
      order(Cmp->Kids[0], false);
      order(Cmp->Kids[1], false);
      if (Cmp->right()->treeSize() > Cmp->left()->treeSize() &&
          !isConstLike(Cmp->left())) {
        ++Stats.SubtreesSwapped;
        std::swap(Cmp->Kids[0], Cmp->Kids[1]);
        Cmp->CC = swapCond(Cmp->CC);
      }
      return;
    }
    case Op::Ret:
    case Op::Push:
      if (S->left())
        order(S->Kids[0], false);
      return;
    default:
      return;
    }
  }

  void order(Node *N, bool InAddress) {
    if (!N)
      return;
    if (N->is(Op::Indir)) {
      // Addressing subtrees keep their canonical shapes so the indexing
      // patterns still match; reordering there would only trade an
      // addressing mode for explicit arithmetic.
      order(N->Kids[0], /*InAddress=*/true);
      return;
    }
    order(N->Kids[0], InAddress);
    order(N->Kids[1], InAddress);
    if (InAddress || opArity(N->Opcode) != 2)
      return;
    switch (N->Opcode) {
    case Op::Plus:
    case Op::Mul:
    case Op::And:
    case Op::Or:
    case Op::Xor: {
      if (N->right()->treeSize() > N->left()->treeSize() &&
          !isConstLike(N->left())) {
        ++Stats.SubtreesSwapped;
        std::swap(N->Kids[0], N->Kids[1]);
      }
      return;
    }
    case Op::Minus:
    case Op::Div:
    case Op::Mod:
    case Op::Lsh:
    case Op::Rsh: {
      if (Opts.ReverseOps &&
          N->right()->treeSize() > N->left()->treeSize() &&
          !isConstLike(N->left())) {
        ++Stats.ReverseOpsUsed;
        N->Opcode = reverseOp(N->Opcode);
        std::swap(N->Kids[0], N->Kids[1]);
      }
      return;
    }
    default:
      return;
    }
  }

  /// Splits register-hungry subtrees with explicit stores to temporaries
  /// so that "the code selector will never run out of registers" (§5.1.3).
  void preventSpills(Node *S) {
    const int Budget = 4; // headroom below the 6 allocatable registers
    for (int Guard = 0; Guard < 16; ++Guard) {
      Node **Worst = nullptr;
      findSplit(S, Worst, Budget);
      if (!Worst)
        return;
      ++Stats.SpillSplits;
      Node *Sub = *Worst;
      Node *Tmp = newTemp(Sub->Type);
      Out.push_back(A.bin(Op::Assign, Sub->Type, Tmp, Sub));
      *Worst = A.clone(Tmp);
    }
  }

  /// Finds a deep splittable subtree when the statement exceeds the
  /// register budget.
  void findSplit(Node *S, Node **&Worst, int Budget) {
    if (registerNeed(S) <= Budget + 1)
      return;
    // Walk down the larger-need child until both children fit; hoist the
    // larger one.
    Node **Cur = nullptr;
    Node *N = S;
    while (true) {
      Node **Bigger = nullptr;
      int Best = -1;
      for (Node *&Kid : N->Kids) {
        if (!Kid || isStmtOp(Kid->Opcode))
          continue;
        int Need = registerNeed(Kid);
        if (Need > Best) {
          Best = Need;
          Bigger = &Kid;
        }
      }
      if (!Bigger || Best < 2)
        break;
      if (Best <= Budget && !hasSideEffects(*Bigger) &&
          !(*Bigger)->is(Op::Dreg)) {
        Cur = Bigger;
        break;
      }
      N = *Bigger;
    }
    Worst = Cur;
  }
};

} // namespace

int gg::registerNeed(const Node *N) {
  if (!N)
    return 0;
  switch (N->Opcode) {
  case Op::Const:
  case Op::Name:
  case Op::Gaddr:
  case Op::Dreg:
  case Op::Label:
    return 0;
  case Op::Indir: {
    // Addresses that fold into hardware addressing modes (absolute,
    // displacement off a dedicated register) need no register at all; a
    // computed address needs whatever its computation needs.
    const Node *Addr = N->left();
    if (Addr->is(Op::Dreg) || Addr->is(Op::Gaddr))
      return 0;
    if (Addr->is(Op::Plus) && Addr->left()->is(Op::Const) &&
        Addr->right()->is(Op::Dreg))
      return 0;
    return registerNeed(Addr);
  }
  case Op::Neg:
  case Op::Com:
  case Op::Conv:
    return std::max(1, registerNeed(N->left()));
  case Op::Assign:
  case Op::AssignR:
  case Op::Cmp:
  case Op::CBranch: {
    int L = registerNeed(N->left());
    int R = registerNeed(N->right());
    return std::max(L, R);
  }
  default: {
    if (opArity(N->Opcode) != 2)
      return std::max(1, registerNeed(N->left()));
    int L = registerNeed(N->left());
    int R = registerNeed(N->right());
    int Need = L == R ? L + 1 : std::max(L, R);
    return std::max(Need, 1);
  }
  }
}

TransformStats gg::runPhase1(Program &P, Function &F,
                             const TransformOptions &Opts) {
  TraceSpan Span("cg.phase1");
  Phase1 Impl(P, F, Opts);
  TransformStats TS = Impl.run();

  // Publish the rewrite-rule hit counts so --stats-json sees phase 1's
  // contribution without every caller re-aggregating TransformStats.
  StatsRegistry &S = stats();
  S.counter("phase1.cond_branch_rewrites") += TS.CondBranchRewrites;
  S.counter("phase1.bool_value_rewrites") += TS.BoolValueRewrites;
  S.counter("phase1.calls_factored") += TS.CallsFactored;
  S.counter("phase1.constants_folded") += TS.ConstantsFolded;
  S.counter("phase1.canonicalizations") += TS.Canonicalizations;
  S.counter("phase1.subtrees_swapped") += TS.SubtreesSwapped;
  S.counter("phase1.reverse_ops_used") += TS.ReverseOpsUsed;
  S.counter("phase1.spill_splits") += TS.SpillSplits;
  return TS;
}
