//===- CompileService.cpp - the compile server's handler ----------------------===//

#include "cg/CompileService.h"
#include "frontend/Parser.h"
#include "support/FaultInject.h"
#include "support/Strings.h"
#include "support/Trace.h"
#include "tablegen/Serialize.h"

using namespace gg;

std::shared_ptr<const VaxTarget> CompileService::buildVerified(
    std::string &Err) {
  std::shared_ptr<VaxTarget> Target = VaxTarget::create(Err);
  if (!Target)
    return nullptr;

  // Self-verify the table image through the v2 serializer: the round trip
  // exercises the fingerprint, checksum and bounds checks the loader
  // applies to on-disk tables, so the server never publishes an image
  // that would not survive a save/load cycle. The corrupt-table fault
  // lands here (as it does on run_vax's round-trip path): at startup it
  // is a fatal fault for the supervisor, on reload it keeps the old image
  // serving.
  std::string Text =
      serializeTables(Target->grammar(), Target->build().Tables);
  faultInject().corruptTableBody(Text, tableBodyOffset(Text));
  LRTables Loaded;
  DiagnosticSink Diags;
  if (!deserializeTables(Text, Target->grammar(), Loaded, Diags)) {
    Err = strf("table self-verification failed:\n%s",
               Diags.renderAll().c_str());
    return nullptr;
  }
  return Target;
}

std::unique_ptr<CompileService> CompileService::create(std::string &Err,
                                                       CodeGenOptions Base) {
  auto Svc = std::unique_ptr<CompileService>(new CompileService());
  Svc->BaseOpts = Base;
  Svc->Target = buildVerified(Err);
  if (!Svc->Target)
    return nullptr;
  return Svc;
}

std::pair<std::shared_ptr<const VaxTarget>, uint64_t>
CompileService::snapshot() const {
  std::lock_guard<std::mutex> Lock(TargetM);
  return {Target, TableGeneration};
}

uint64_t CompileService::generation() const {
  std::lock_guard<std::mutex> Lock(TargetM);
  return TableGeneration;
}

std::string CompileService::statusMembers() const {
  auto [Snap, Gen] = snapshot();
  return strf("\"generation\":%llu,\"fingerprint\":\"%s\"",
              static_cast<unsigned long long>(Gen),
              VaxTarget::fingerprint(Snap->grammar(), Snap->packed())
                  .c_str());
}

bool CompileService::reload(uint64_t &NewGeneration, std::string &Err) {
  // Build and verify entirely off to the side; the swap at the end is the
  // only moment the serving state changes, and it is atomic under the
  // snapshot lock. In-flight requests keep their snapshot of the old
  // image — the old shared_ptr stays alive until the last of them drops.
  std::shared_ptr<const VaxTarget> Fresh = buildVerified(Err);
  std::lock_guard<std::mutex> Lock(TargetM);
  if (!Fresh) {
    NewGeneration = TableGeneration; // old image keeps serving
    return false;
  }
  Target = std::move(Fresh);
  NewGeneration = ++TableGeneration;
  return true;
}

/// Maps a budget's stop cause to the wire status (BudgetStop::Cancelled
/// means the watchdog cancelled us at the deadline, so it reports as
/// Deadline; a forced Watchdog status is published by the server itself).
static ResponseStatus statusForStop(BudgetStop S) {
  switch (S) {
  case BudgetStop::Cancelled:
  case BudgetStop::Deadline:
    return ResponseStatus::Deadline;
  case BudgetStop::Steps:
    return ResponseStatus::StepBudget;
  case BudgetStop::Memory:
    return ResponseStatus::MemBudget;
  case BudgetStop::None:
    break;
  }
  return ResponseStatus::CompileError;
}

HandlerResult CompileService::compile(const RequestMsg &Req,
                                      RequestBudget &Budget) const {
  HandlerResult R;

  // Pin the table image for the whole request: a concurrent reload swaps
  // the service's pointer, not ours. The generation is stamped into the
  // response so clients can observe reload progress (and tests can assert
  // byte-identity per generation).
  auto [Snap, Gen] = snapshot();
  R.Generation = Gen;
  // Patch the pinned generation into the thread's request scope, so the
  // phase spans and flight events below carry the generation that is
  // actually serving (the server entered the scope before we pinned).
  RequestScope::setGeneration(Gen);

  // A request that spent its whole deadline queueing is already dead.
  if (Budget.shouldStop(0)) {
    R.Status = statusForStop(Budget.Stopped.load(std::memory_order_relaxed));
    R.Payload = strf("request budget exhausted (%s) before compilation",
                     budgetStopName(
                         Budget.Stopped.load(std::memory_order_relaxed)));
    return R;
  }

  Program Prog;
  if (Budget.MaxArenaBytes)
    Prog.Arena->setLimitBytes(Budget.MaxArenaBytes);
  DiagnosticSink FrontendDiags;
  if (!compileMiniC(Req.Source, Prog, FrontendDiags)) {
    R.Status = ResponseStatus::CompileError;
    R.Payload = FrontendDiags.renderAll();
    return R;
  }
  if (Prog.Arena->exhausted()) {
    Budget.stop(BudgetStop::Memory);
    R.Status = ResponseStatus::MemBudget;
    R.Payload = strf("node arena byte budget exhausted (%zu bytes) during "
                     "parsing",
                     Prog.Arena->bytes());
    return R;
  }

  // One worker per request: the server parallelizes across requests, so
  // a wedged or slow request can never occupy more than one pool worker.
  CodeGenOptions Opts = BaseOpts;
  Opts.Parallel.Threads = 1;
  Opts.Budget = &Budget;

  GGCodeGenerator CG(*Snap, Opts);
  std::string Asm, Err;
  bool Ok = CG.compile(Prog, Asm, Err);
  R.BlockedTrees = static_cast<uint32_t>(CG.stats().BlockedTrees);
  R.RecoveredTrees = static_cast<uint32_t>(CG.stats().RecoveredTrees);
  if (Ok) {
    R.Status = ResponseStatus::Ok;
    R.Payload = std::move(Asm);
    return R;
  }
  R.Status = statusForStop(Budget.Stopped.load(std::memory_order_relaxed));
  R.Payload = CG.diagnostics().all().empty()
                  ? Err
                  : CG.diagnostics().renderAll();
  return R;
}
