//===- describe_machine.cpp - CGGWS-style workstation tool ---------------------===//
//
// The modern stand-in for the paper's "Code Generator Generator's Work
// Station": builds the VAX description, runs the table constructor, and
// reports everything a grammar writer needs — production counts before
// and after type replication, parser states, conflicts and their
// resolutions, bridge productions, chain loops, potential syntactic
// blocks, and the hand-written instruction table (Figure 3).
//
//   describe_machine [--no-reverse-ops] [--sizes=N] [--dump-grammar]
//                    [--dump-spec] [--conflicts]
//
//===----------------------------------------------------------------------===//

#include "tablegen/Packing.h"
#include "tablegen/Serialize.h"
#include "vax/InstrTable.h"
#include "vax/VaxTarget.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace gg;

int main(int argc, char **argv) {
  VaxGrammarOptions GOpts;
  bool DumpGrammar = false, DumpSpec = false, ShowConflicts = false;
  std::string SaveTables, CheckTables;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--no-reverse-ops")
      GOpts.ReverseOps = false;
    else if (A.rfind("--sizes=", 0) == 0)
      GOpts.NumSizes = atoi(A.c_str() + 8);
    else if (A == "--dump-grammar")
      DumpGrammar = true;
    else if (A == "--dump-spec")
      DumpSpec = true;
    else if (A == "--conflicts")
      ShowConflicts = true;
    else if (A.rfind("--save-tables=", 0) == 0)
      SaveTables = A.substr(14);
    else if (A.rfind("--check-tables=", 0) == 0)
      CheckTables = A.substr(15);
    else {
      fprintf(stderr, "unknown option %s\n", A.c_str());
      return 2;
    }
  }

  if (DumpSpec) {
    fputs(vaxSpecText(GOpts).c_str(), stdout);
    return 0;
  }

  std::string Err;
  std::unique_ptr<VaxTarget> T = VaxTarget::create(Err, GOpts);
  if (!T) {
    fprintf(stderr, "%s\n", Err.c_str());
    return 1;
  }

  GrammarStats Generic = T->spec().genericStats();
  GrammarStats Final = statsOf(T->grammar());
  const BuildResult &B = T->build();

  printf("VAX-11 machine description (integer subset)\n");
  printf("  reverse operators: %s, size classes: %d\n\n",
         GOpts.ReverseOps ? "on" : "off", GOpts.NumSizes);
  printf("%-28s %10s %10s\n", "", "generic", "replicated");
  printf("%-28s %10zu %10zu\n", "productions", Generic.Productions,
         Final.Productions);
  printf("%-28s %10zu %10zu\n", "terminals", Generic.Terminals,
         Final.Terminals);
  printf("%-28s %10zu %10zu\n", "non-terminals", Generic.Nonterminals,
         Final.Nonterminals);
  printf("\n(the paper's full VAX description: 458 -> 1073 productions,\n"
         " 115 -> 219 terminals, 96 -> 148 non-terminals, 2216 states)\n\n");

  size_t Bridges = 0;
  for (const Production &P : T->grammar().productions())
    Bridges += P.IsBridge;
  size_t DynamicRR = 0;
  for (const ReduceReduceConflict &C : B.RRConflicts)
    DynamicRR += C.Dynamic;

  printf("parser states:              %d\n", B.Tables.NumStates);
  printf("LR(0) items:                %zu\n", B.TotalItems);
  printf("construction time:          %.3fs\n", B.Seconds);
  printf("shift/reduce conflicts:     %zu (resolved toward shift)\n",
         B.SRConflicts.size());
  printf("reduce/reduce conflicts:    %zu (%zu decided dynamically)\n",
         B.RRConflicts.size(), DynamicRR);
  printf("bridge productions:         %zu\n", Bridges);
  printf("chain-production loops:     %zu\n", B.ChainLoops.size());
  printf("potential syntactic blocks: %zu\n", B.Blocks.size());

  PackedTables Packed = PackedTables::pack(B.Tables);
  printf("\ntable sizes: dense %zu bytes, packed %zu bytes "
         "(%zu action rows, %zu goto rows)\n",
         B.Tables.memoryBytes(), Packed.memoryBytes(),
         Packed.numActionRows(), Packed.numGotoRows());

  printf("\ninstruction table (Figure 3 reproduction):\n%s",
         renderInstrTable().c_str());

  if (ShowConflicts) {
    printf("\nfirst 40 shift/reduce resolutions:\n");
    size_t N = 0;
    for (const ShiftReduceConflict &C : B.SRConflicts) {
      if (++N > 40)
        break;
      const Production &P = T->grammar().prod(C.ReduceProd);
      printf("  state %4d on %-12s: shift preferred over reduce %s <- ...\n",
             C.State, T->grammar().symbolName(C.Term).c_str(),
             T->grammar().symbolName(P.Lhs).c_str());
    }
  }

  if (!SaveTables.empty()) {
    std::ofstream Out(SaveTables);
    if (!Out) {
      fprintf(stderr, "cannot write %s\n", SaveTables.c_str());
      return 1;
    }
    Out << serializeTables(T->grammar(), B.Tables);
    printf("\ntables written to %s\n", SaveTables.c_str());
  }
  if (!CheckTables.empty()) {
    std::ifstream In(CheckTables);
    std::stringstream Buf;
    Buf << In.rdbuf();
    LRTables Loaded;
    DiagnosticSink Diags;
    if (!deserializeTables(Buf.str(), T->grammar(), Loaded, Diags)) {
      fprintf(stderr, "table file rejected:\n%s",
              Diags.renderAll().c_str());
      return 1;
    }
    printf("\ntable file %s matches this description (%d states)\n",
           CheckTables.c_str(), Loaded.NumStates);
  }

  if (DumpGrammar)
    printf("\n%s", T->grammar().dump().c_str());
  return 0;
}
