//===- quickstart.cpp - the paper's Appendix, end to end ---------------------===//
//
// Reproduces the complete code generation example from the paper's
// Appendix: the Pascal fragment
//
//   program appendix(output);
//   var a: integer;              { a long global }
//   procedure foo;
//   var b: -128 .. 127;          { a byte local in the frame }
//   begin a := 27 + b end;
//
// whose example expression lowers to the prefix tree
//
//   Assign_l Name_l(a) Plus_l Const_b(27) Indir_b Plus_l Const_l Dreg_l(fp)
//
// Builds the VAX tables, prints the shift/reduce action trace of the
// pattern matcher, and the emitted assembly.
//
//===----------------------------------------------------------------------===//

#include "cg/CodeGenerator.h"

#include <cstdio>

using namespace gg;

int main() {
  std::string Err;
  std::unique_ptr<VaxTarget> Target = VaxTarget::create(Err);
  if (!Target) {
    fprintf(stderr, "%s\n", Err.c_str());
    return 1;
  }
  GrammarStats GS = statsOf(Target->grammar());
  printf("VAX description: %zu productions, %zu terminals, %zu "
         "non-terminals, %d states\n\n",
         GS.Productions, GS.Terminals, GS.Nonterminals,
         Target->build().Tables.NumStates);

  // Build the Appendix program by hand, exactly as a front end would.
  Program Prog;
  NodeArena &A = *Prog.Arena;
  InternedString AName = Prog.Syms.intern("a");
  Prog.Globals.push_back({AName, Ty::L, 1, {}});

  Function Foo;
  Foo.Name = Prog.Syms.intern("foo");
  int BOffset = Foo.allocLocal(1); // var b: byte local
  Node *Tree = A.bin(
      Op::Assign, Ty::L, A.name(Ty::L, AName),
      A.bin(Op::Plus, Ty::L, A.con(Ty::B, 27), A.local(Ty::B, BOffset)));
  Foo.Body.push_back(Tree);
  Prog.Functions.push_back(std::move(Foo));

  printf("example expression (linearized):\n  %s\n\n",
         printLinear(Tree, Prog.Syms).c_str());

  CodeGenOptions Opts;
  Opts.Trace = true;
  GGCodeGenerator CG(*Target, Opts);
  std::string Asm;
  if (!CG.compile(Prog, Asm, Err)) {
    fprintf(stderr, "code generation failed: %s\n", Err.c_str());
    return 1;
  }

  printf("pattern matcher actions:\n%s\n", CG.trace().c_str());
  printf("generated assembly:\n%s", Asm.c_str());
  return 0;
}
