//===- run_vax.cpp - compile and execute on the VAX simulator -----------------===//
//
// Compiles a MiniC program with the table-driven backend (or the PCC
// baseline with --backend=pcc) and executes it on the VAX simulator,
// reporting program output, exit value and the simulator's cost counters.
//
//   run_vax FILE [--backend=gg|pcc] [--threads=N] [--compare]
//           [--fault=SPEC] [--stats-json=FILE] [--trace-json=FILE]
//           [--coverage-json=FILE] [--profile=off|instr|perf[,cycles|,steps]]
//           [--profile-json=FILE]
//
// --threads=N compiles functions on N pool workers (0 = hardware
// concurrency); assembly and simulation results are identical at any
// thread count.
//
// With --compare, runs both backends and the IR interpreter and reports
// all three (the differential setup the test suite uses).
//
// --stats-json dumps the process-wide stats registry (per-phase seconds,
// matcher step/stack-depth distributions, table-constructor conflict
// counts, idiom/peephole/register telemetry) as one JSON object;
// --trace-json dumps Chrome trace_event JSON loadable in chrome://tracing;
// --coverage-json dumps the gg-coverage-v1 table-coverage artifact
// (per-production/state/dyn-point/instruction-row hits) for gg-report;
// --profile=/--profile-json= dump the gg-profile-v1 cost-attribution
// artifact (support/Profile.h) for gg-report --profile.
// "-" writes to stdout. These flags are shared with compile_minic
// (support/CliOptions.h).
//
// --fault=SPEC injects deterministic faults to exercise the degradation
// ladder (see support/FaultInject.h): e.g. --fault=drop-prod=mul_l,
// --fault=truncate-input=3, --fault=cap-regs=1, --fault=corrupt-table.
// Recovery events are reported on stderr and in the fault.*/cg.* stats.
//
//===----------------------------------------------------------------------===//

#include "cg/CodeGenerator.h"
#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "pcc/PccCodeGen.h"
#include "support/CliOptions.h"
#include "support/ExitCodes.h"
#include "support/FaultInject.h"
#include "support/Stats.h"
#include "support/Trace.h"
#include "tablegen/Serialize.h"
#include "vaxsim/Simulator.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace gg;

static bool loadProgram(const std::string &Source, Program &Prog) {
  DiagnosticSink Diags;
  if (!compileMiniC(Source, Prog, Diags)) {
    fprintf(stderr, "%s", Diags.renderAll().c_str());
    return false;
  }
  return true;
}

int main(int argc, char **argv) {
  const char *File = nullptr;
  bool UsePcc = false, Compare = false;
  CodeGenOptions GGOpts;
  CommonDriverOptions Common;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    switch (parseCommonDriverOption(A, Common)) {
    case CliParse::Ok:
      continue;
    case CliParse::Bad:
      return ExitUsage;
    case CliParse::NotMine:
      break;
    }
    if (A == "--backend=pcc")
      UsePcc = true;
    else if (A == "--backend=gg")
      UsePcc = false;
    else if (A == "--compare")
      Compare = true;
    else
      File = argv[I];
  }
  if (!File) {
    fprintf(stderr, "usage: run_vax FILE [--backend=gg|pcc] [--compare] %s\n",
            commonDriverUsage());
    return ExitUsage;
  }
  if (Common.Threads >= 0)
    GGOpts.Parallel.Threads = Common.Threads;
  TelemetryDump Dump(Common);
  std::ifstream In(File);
  if (!In) {
    fprintf(stderr, "cannot open %s\n", File);
    return ExitCompileFailure;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Source = Buffer.str();

  std::string Err;
  std::unique_ptr<VaxTarget> Target = VaxTarget::create(Err);
  if (!Target) {
    // A description that fails to build is a fatal fault: no retry or
    // restart can help (support/ExitCodes.h).
    fprintf(stderr, "%s\n", Err.c_str());
    return ExitFatalFault;
  }

  // corrupt-table fault: round-trip the freshly built tables through the
  // serialized format with one body byte flipped, and show the hardened
  // loader rejecting the file. The in-memory tables stay authoritative, so
  // compilation proceeds normally afterwards.
  if (faultInject().config().CorruptTableByte != -1) {
    std::string Text =
        serializeTables(Target->grammar(), Target->build().Tables);
    int64_t Off = faultInject().corruptTableBody(Text, tableBodyOffset(Text));
    LRTables Loaded;
    DiagnosticSink LoadDiags;
    if (!deserializeTables(Text, Target->grammar(), Loaded, LoadDiags))
      fprintf(stderr,
              "table load rejected (byte %lld corrupted):\n%s"
              "continuing with the in-memory tables\n",
              (long long)Off, LoadDiags.renderAll().c_str());
    else
      fprintf(stderr, "table corruption at byte %lld went UNDETECTED\n",
              (long long)Off);
  }

  auto RunGG = [&](SimResult &R) -> bool {
    Program P;
    if (!loadProgram(Source, P))
      return false;
    GGCodeGenerator CG(*Target, GGOpts);
    std::string Asm;
    bool Ok = CG.compile(P, Asm, Err);
    // Recovery warnings (and unrecoverable errors) from the ladder.
    if (!CG.diagnostics().all().empty())
      fputs(CG.diagnostics().renderAll().c_str(), stderr);
    if (!Ok) {
      fprintf(stderr, "gg: %s\n", Err.c_str());
      return false;
    }
    R = assembleAndRun(Asm);
    return true;
  };
  auto RunPcc = [&](SimResult &R) -> bool {
    Program P;
    if (!loadProgram(Source, P))
      return false;
    PccCodeGenerator CG;
    std::string Asm;
    if (!CG.compile(P, Asm, Err)) {
      fprintf(stderr, "pcc: %s\n", Err.c_str());
      return false;
    }
    R = assembleAndRun(Asm);
    return true;
  };

  if (Compare) {
    Program P;
    if (!loadProgram(Source, P))
      return ExitCompileFailure;
    InterpResult Oracle = interpret(P);
    SimResult G, B;
    if (!RunGG(G) || !RunPcc(B))
      return ExitCompileFailure;
    printf("== interpreter: ret=%lld steps=%llu\n%s",
           (long long)Oracle.ReturnValue,
           (unsigned long long)Oracle.Steps, Oracle.Output.c_str());
    printf("== gg backend:  ret=%lld insts=%llu cycles=%llu%s\n%s",
           (long long)G.ReturnValue, (unsigned long long)G.Instructions,
           (unsigned long long)G.Cycles, G.Ok ? "" : " (FAILED)",
           G.Output.c_str());
    printf("== pcc backend: ret=%lld insts=%llu cycles=%llu%s\n%s",
           (long long)B.ReturnValue, (unsigned long long)B.Instructions,
           (unsigned long long)B.Cycles, B.Ok ? "" : " (FAILED)",
           B.Output.c_str());
    bool Agree = Oracle.Ok && G.Ok && B.Ok && Oracle.Output == G.Output &&
                 Oracle.Output == B.Output &&
                 Oracle.ReturnValue == G.ReturnValue &&
                 Oracle.ReturnValue == B.ReturnValue;
    printf("== %s\n", Agree ? "ALL ENGINES AGREE" : "MISMATCH");
    return Agree ? ExitOk : ExitCompileFailure;
  }

  SimResult R;
  if (!(UsePcc ? RunPcc(R) : RunGG(R)))
    return ExitCompileFailure;
  if (!R.Ok) {
    fprintf(stderr, "simulation failed: %s\n", R.Error.c_str());
    return ExitCompileFailure;
  }
  fputs(R.Output.c_str(), stdout);
  fprintf(stderr, "exit=%lld instructions=%llu cycles=%llu\n",
          (long long)R.ReturnValue, (unsigned long long)R.Instructions,
          (unsigned long long)R.Cycles);
  return ExitOk;
}
