//===- compile_minic.cpp - cc-like driver ------------------------------------===//
//
// Compiles a MiniC source file to VAX assembly on stdout.
//
//   compile_minic FILE [--backend=gg|pcc] [--threads=N] [--trace]
//                 [--no-idioms] [--no-reverse-ops] [--no-recover] [--stats]
//                 [--explain] [--fault=SPEC] [--stats-json=FILE]
//                 [--trace-json=FILE]
//
// --threads=N compiles functions on N pool workers (0 = hardware
// concurrency); the output is byte-identical at any thread count.
//
// --explain annotates each emitted instruction with the grammar
// production whose reduction generated it. --stats-json / --trace-json
// dump the stats registry and Chrome trace_event spans ("-" = stdout,
// which for these flags means stderr to keep the assembly clean).
//
// --fault=SPEC injects deterministic faults (see support/FaultInject.h);
// --no-recover disables the degradation ladder so the first syntactic
// block fails the module (the pre-ladder behavior).
//
//===----------------------------------------------------------------------===//

#include "cg/CodeGenerator.h"
#include "frontend/Parser.h"
#include "pcc/PccCodeGen.h"
#include "support/FaultInject.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace gg;

static void writeOrDump(const std::string &Path, const std::string &Text) {
  if (Path == "-") {
    fputs(Text.c_str(), stderr);
    return;
  }
  std::ofstream Out(Path);
  if (!Out)
    fprintf(stderr, "cannot write %s\n", Path.c_str());
  else
    Out << Text;
}

int main(int argc, char **argv) {
  const char *File = nullptr;
  bool UsePcc = false, Trace = false, Stats = false;
  std::string StatsJsonPath, TraceJsonPath;
  CodeGenOptions Opts;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--backend=pcc")
      UsePcc = true;
    else if (A == "--backend=gg")
      UsePcc = false;
    else if (A == "--trace")
      Trace = true;
    else if (A == "--stats")
      Stats = true;
    else if (A == "--explain")
      Opts.Explain = true;
    else if (A.rfind("--stats-json=", 0) == 0)
      StatsJsonPath = A.substr(13);
    else if (A.rfind("--trace-json=", 0) == 0)
      TraceJsonPath = A.substr(13);
    else if (A.rfind("--fault=", 0) == 0) {
      std::string FaultErr;
      if (!faultInject().configure(A.substr(8), FaultErr)) {
        fprintf(stderr, "bad --fault spec: %s\n", FaultErr.c_str());
        return 2;
      }
    } else if (A == "--no-recover")
      Opts.Recover = false;
    else if (A == "--no-idioms") {
      Opts.Idioms.BindingIdioms = false;
      Opts.Idioms.RangeIdioms = false;
      Opts.Idioms.CCTracking = false;
    } else if (A == "--no-reverse-ops")
      Opts.Transform.ReverseOps = false;
    else if (A.rfind("--threads=", 0) == 0) {
      char *End = nullptr;
      long N = strtol(A.c_str() + 10, &End, 10);
      if (!End || *End || N < 0 || N > 256) {
        fprintf(stderr, "bad --threads value: %s\n", A.c_str());
        return 2;
      }
      Opts.Parallel.Threads = static_cast<int>(N);
    } else if (A[0] == '-') {
      fprintf(stderr, "unknown option %s\n", A.c_str());
      return 2;
    } else
      File = argv[I];
  }
  if (!File) {
    fprintf(stderr,
            "usage: compile_minic FILE [--backend=gg|pcc] [--threads=N] "
            "[--trace] [--no-idioms] [--no-reverse-ops] [--no-recover] "
            "[--stats] [--explain] [--fault=SPEC] [--stats-json=FILE] "
            "[--trace-json=FILE]\n");
    return 2;
  }
  if (!TraceJsonPath.empty())
    TraceRecorder::global().enable();

  std::ifstream In(File);
  if (!In) {
    fprintf(stderr, "cannot open %s\n", File);
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  Program Prog;
  DiagnosticSink Diags;
  if (!compileMiniC(Buffer.str(), Prog, Diags)) {
    fprintf(stderr, "%s", Diags.renderAll().c_str());
    return 1;
  }

  std::string Asm, Err;
  if (UsePcc) {
    PccCodeGenerator CG;
    if (!CG.compile(Prog, Asm, Err)) {
      fprintf(stderr, "%s\n", Err.c_str());
      return 1;
    }
    if (Stats)
      fprintf(stderr, "# pcc: %zu instructions, %zu lines, %.3fs\n",
              CG.stats().Instructions, CG.stats().AsmLines,
              CG.stats().Seconds);
  } else {
    std::unique_ptr<VaxTarget> Target = VaxTarget::create(Err);
    if (!Target) {
      fprintf(stderr, "%s\n", Err.c_str());
      return 1;
    }
    Opts.Trace = Trace;
    GGCodeGenerator CG(*Target, Opts);
    bool Ok = CG.compile(Prog, Asm, Err);
    if (!CG.diagnostics().all().empty())
      fputs(CG.diagnostics().renderAll().c_str(), stderr);
    if (!Ok) {
      fprintf(stderr, "%s\n", Err.c_str());
      return 1;
    }
    if (Trace)
      fprintf(stderr, "%s", CG.trace().c_str());
    if (Stats) {
      const CodeGenStats &S = CG.stats();
      fprintf(stderr,
              "# gg: %zu trees, %zu instructions, %zu lines\n"
              "# phases: transform %.4fs, match %.4fs, instr-gen %.4fs, "
              "emit %.4fs\n"
              "# idioms: %u binding, %u range, %u cc-elide, %u pseudo\n"
              "# registers: %u allocations, %u spills, %u unspills\n",
              S.StatementTrees, S.Instructions, S.AsmLines,
              S.TransformSeconds, S.MatchSeconds, S.InstrGenSeconds,
              S.EmitSeconds, S.Idioms.BindingApplied, S.Idioms.RangeApplied,
              S.Idioms.CCTestsElided, S.Idioms.PseudoExpansions,
              S.Regs.Allocations, S.Regs.Spills, S.Regs.Unspills);
      if (S.Parallel.Workers > 1)
        fprintf(stderr,
                "# parallel: %llu workers, %llu tasks, %llu steals\n",
                static_cast<unsigned long long>(S.Parallel.Workers),
                static_cast<unsigned long long>(S.Parallel.Tasks),
                static_cast<unsigned long long>(S.Parallel.Steals));
    }
  }
  fputs(Asm.c_str(), stdout);
  if (!StatsJsonPath.empty())
    writeOrDump(StatsJsonPath, stats().toJson() + "\n");
  if (!TraceJsonPath.empty())
    writeOrDump(TraceJsonPath, TraceRecorder::global().toChromeJson());
  return 0;
}
