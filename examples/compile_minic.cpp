//===- compile_minic.cpp - cc-like driver ------------------------------------===//
//
// Compiles a MiniC source file to VAX assembly on stdout.
//
//   compile_minic FILE [--backend=gg|pcc] [--threads=N] [--trace]
//                 [--no-idioms] [--no-reverse-ops] [--no-recover] [--stats]
//                 [--explain] [--fault=SPEC] [--stats-json=FILE]
//                 [--trace-json=FILE] [--coverage-json=FILE]
//                 [--profile=off|instr|perf[,cycles|,steps]]
//                 [--profile-json=FILE]
//   compile_minic --gen-corpus=N [--threads=N] [--coverage-json=FILE] ...
//   compile_minic --serve[=SOCKET] [--serve-workers=N]
//                 [--serve-deadline-ms=N] [--serve-max-steps=N]
//                 [--serve-max-arena=BYTES] [--serve-grace-ms=N]
//                 [--serve-allow-crash] [--serve-generation=N]
//                 [--serve-queue-depth=N] [--serve-queue-deadline-ms=N]
//                 [--serve-shed-policy=reject-newest|shed-oldest]
//                 [--serve-drain-ms=N]
//
// --threads=N compiles functions on N pool workers (0 = hardware
// concurrency); the output is byte-identical at any thread count.
//
// --explain annotates each emitted instruction with the grammar
// production whose reduction generated it. --stats-json / --trace-json /
// --coverage-json dump the stats registry, Chrome trace_event spans and
// the gg-coverage-v1 table-coverage artifact; "-" means stdout, the same
// contract as run_vax (support/CliOptions.h — it used to mean stderr
// here). --profile=/--profile-json= arm the hot-path cost profiler and
// dump its gg-profile-v1 artifact for gg-report --profile
// (support/Profile.h; docs/observability.md).
//
// --gen-corpus=N replaces FILE: it generates the N-seed deterministic
// program corpus the differential tests use (seed 0xD1FF0000+i) and
// compiles each program with the gg backend, cycling the worker count
// through 1/2/4/8 unless --threads pins it. Structurally identical
// seeds (byte-identical generated source) are deduplicated and the
// distinct-program count is reported. No assembly is printed; the
// mode exists to accumulate telemetry (notably --coverage-json) over a
// realistic program population in one process.
//
// --fault=SPEC injects deterministic faults (see support/FaultInject.h);
// --no-recover disables the degradation ladder so the first syntactic
// block fails the module (the pre-ladder behavior).
//
// --serve runs the fault-isolated compile daemon (docs/server.md): load
// the tables once (self-verified through the v2 serializer), then serve
// framed compile requests over stdin/stdout — or over a Unix socket with
// --serve=PATH — dispatching onto the work-stealing pool with
// per-request deadlines, step/memory budgets and a watchdog. The
// supervisor loop lives in scripts/serve.sh. --serve-queue-depth bounds
// the admission queue (excess load is shed with Overloaded frames per
// --serve-shed-policy); SIGTERM drains gracefully and SIGHUP hot-reloads
// the table image under a fresh generation (--serve-drain-ms bounds
// both waits). Status frames (gg-top, docs/observability.md) answer with
// a gg-status-v1 snapshot; --flight-json=FILE arms the always-on flight
// recorder, dumped on crash, watchdog kill, SIGQUIT and normal exit.
//
// Exit codes (support/ExitCodes.h): 0 success, 1 recoverable compile
// failure, 2 usage error, 3 fatal fault (broken description/tables —
// restarting will not help).
//
//===----------------------------------------------------------------------===//

#include "cg/CodeGenerator.h"
#include "cg/CompileService.h"
#include "frontend/Parser.h"
#include "pcc/PccCodeGen.h"
#include "support/CliOptions.h"
#include "support/ExitCodes.h"
#include "support/Server.h"
#include "support/Stats.h"
#include "support/Strings.h"
#include "workload/ProgramGen.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>

using namespace gg;

static void printGGStats(const CodeGenStats &S) {
  fprintf(stderr,
          "# gg: %zu trees, %zu instructions, %zu lines\n"
          "# phases: transform %.4fs, match %.4fs, instr-gen %.4fs, "
          "emit %.4fs\n"
          "# idioms: %u binding, %u range, %u cc-elide, %u pseudo\n"
          "# registers: %u allocations, %u spills, %u unspills\n",
          S.StatementTrees, S.Instructions, S.AsmLines, S.TransformSeconds,
          S.MatchSeconds, S.InstrGenSeconds, S.EmitSeconds,
          S.Idioms.BindingApplied, S.Idioms.RangeApplied,
          S.Idioms.CCTestsElided, S.Idioms.PseudoExpansions,
          S.Regs.Allocations, S.Regs.Spills, S.Regs.Unspills);
  if (S.Parallel.Workers > 1)
    fprintf(stderr, "# parallel: %llu workers, %llu tasks, %llu steals\n",
            static_cast<unsigned long long>(S.Parallel.Workers),
            static_cast<unsigned long long>(S.Parallel.Tasks),
            static_cast<unsigned long long>(S.Parallel.Steals));
}

/// Compiles the differential-test corpus (same seeds and sizes as
/// tests/DifferentialTest.cpp) with the gg backend, discarding the
/// assembly. Worker counts cycle 1/2/4/8 across cases unless the user
/// pinned --threads; the telemetry a TelemetryDump writes afterwards
/// covers the whole population.
static int runCorpus(int Cases, const VaxTarget &Target, CodeGenOptions Opts,
                     int PinnedThreads) {
  static const int ThreadCycle[] = {1, 2, 4, 8};
  // Structural dedup: the generator's identifiers are deterministic
  // counters, so two seeds that collapse to the same program shape
  // produce byte-identical source. Compiling a duplicate would double-
  // count its telemetry and misrepresent corpus breadth.
  std::set<std::string> Seen;
  int Duplicates = 0;
  for (int Case = 0; Case < Cases; ++Case) {
    GenOptions GOpts;
    GOpts.Functions = 4 + Case % 3;
    GOpts.StmtsPerFunction = 6 + Case % 5;
    std::string Source = generateProgram(0xD1FF0000u + Case, GOpts);
    if (!Seen.insert(Source).second) {
      ++Duplicates;
      continue;
    }

    Program Prog;
    DiagnosticSink Diags;
    if (!compileMiniC(Source, Prog, Diags)) {
      fprintf(stderr, "gen-corpus case %d: frontend rejected its own "
                      "program:\n%s",
              Case, Diags.renderAll().c_str());
      return ExitCompileFailure;
    }
    Opts.Parallel.Threads =
        PinnedThreads >= 0 ? PinnedThreads : ThreadCycle[Case % 4];
    GGCodeGenerator CG(Target, Opts);
    std::string Asm, Err;
    if (!CG.compile(Prog, Asm, Err)) {
      fprintf(stderr, "gen-corpus case %d: %s\n", Case, Err.c_str());
      return ExitCompileFailure;
    }
  }
  fprintf(stderr,
          "gen-corpus: compiled %zu distinct programs (%d seeds, %d "
          "structural duplicates skipped)\n",
          Seen.size(), Cases, Duplicates);
  return ExitOk;
}

/// Parses the integer value of `--NAME=N` into \p Out; reports and
/// returns false on garbage. \p Arg must already match the prefix.
static bool serveIntValue(const std::string &Arg, size_t PrefixLen,
                          int64_t Min, int64_t Max, uint64_t &Out) {
  std::optional<int64_t> N = parseInt(
      std::string_view(Arg).substr(PrefixLen));
  if (!N || *N < Min || *N > Max) {
    fprintf(stderr, "bad value in %s\n", Arg.c_str());
    return false;
  }
  Out = static_cast<uint64_t>(*N);
  return true;
}

int main(int argc, char **argv) {
  const char *File = nullptr;
  bool UsePcc = false, Trace = false, Stats = false;
  bool ServeMode = false;
  std::string ServeSocket;
  ServerOptions SOpts;
  int CorpusCases = -1;
  CodeGenOptions Opts;
  CommonDriverOptions Common;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    switch (parseCommonDriverOption(A, Common)) {
    case CliParse::Ok:
      continue;
    case CliParse::Bad:
      return ExitUsage;
    case CliParse::NotMine:
      break;
    }
    if (A == "--backend=pcc")
      UsePcc = true;
    else if (A == "--backend=gg")
      UsePcc = false;
    else if (A == "--trace")
      Trace = true;
    else if (A == "--stats")
      Stats = true;
    else if (A == "--explain")
      Opts.Explain = true;
    else if (A == "--no-recover")
      Opts.Recover = false;
    else if (A == "--no-idioms") {
      Opts.Idioms.BindingIdioms = false;
      Opts.Idioms.RangeIdioms = false;
      Opts.Idioms.CCTracking = false;
    } else if (A == "--no-reverse-ops")
      Opts.Transform.ReverseOps = false;
    else if (A.rfind("--gen-corpus=", 0) == 0) {
      char *End = nullptr;
      long N = strtol(A.c_str() + 13, &End, 10);
      if (!End || *End || N < 1 || N > 100000) {
        fprintf(stderr, "bad --gen-corpus value: %s\n", A.c_str());
        return ExitUsage;
      }
      CorpusCases = static_cast<int>(N);
    } else if (A == "--serve") {
      ServeMode = true;
    } else if (A.rfind("--serve=", 0) == 0) {
      ServeMode = true;
      ServeSocket = A.substr(8);
      if (ServeSocket.empty()) {
        fprintf(stderr, "--serve= requires a socket path\n");
        return ExitUsage;
      }
    } else if (A.rfind("--serve-workers=", 0) == 0) {
      uint64_t V;
      if (!serveIntValue(A, 16, 0, 1024, V))
        return ExitUsage;
      SOpts.Workers = static_cast<int>(V);
    } else if (A.rfind("--serve-deadline-ms=", 0) == 0) {
      if (!serveIntValue(A, 20, 0, 86400000, SOpts.DefaultDeadlineMs))
        return ExitUsage;
    } else if (A.rfind("--serve-max-steps=", 0) == 0) {
      if (!serveIntValue(A, 18, 0, INT64_MAX, SOpts.DefaultMaxSteps))
        return ExitUsage;
    } else if (A.rfind("--serve-max-arena=", 0) == 0) {
      if (!serveIntValue(A, 18, 0, INT64_MAX, SOpts.DefaultMaxArenaBytes))
        return ExitUsage;
    } else if (A.rfind("--serve-grace-ms=", 0) == 0) {
      if (!serveIntValue(A, 17, 1, 600000, SOpts.WatchdogGraceMs))
        return ExitUsage;
    } else if (A == "--serve-allow-crash") {
      SOpts.AllowCrash = true;
    } else if (A.rfind("--serve-generation=", 0) == 0) {
      if (!serveIntValue(A, 19, 0, INT64_MAX, SOpts.Generation))
        return ExitUsage;
    } else if (A.rfind("--serve-queue-depth=", 0) == 0) {
      uint64_t V;
      if (!serveIntValue(A, sizeof("--serve-queue-depth=") - 1, 0, 1u << 20,
                         V))
        return ExitUsage;
      SOpts.MaxQueueDepth = static_cast<size_t>(V);
    } else if (A.rfind("--serve-queue-deadline-ms=", 0) == 0) {
      if (!serveIntValue(A, sizeof("--serve-queue-deadline-ms=") - 1, 0,
                         86400000, SOpts.QueueDeadlineMs))
        return ExitUsage;
    } else if (A == "--serve-shed-policy=reject-newest") {
      SOpts.Shed = ShedPolicy::RejectNewest;
    } else if (A == "--serve-shed-policy=shed-oldest") {
      SOpts.Shed = ShedPolicy::ShedOldest;
    } else if (A.rfind("--serve-shed-policy=", 0) == 0) {
      fprintf(stderr,
              "bad --serve-shed-policy (want reject-newest or shed-oldest)"
              ": %s\n",
              A.c_str());
      return ExitUsage;
    } else if (A.rfind("--serve-drain-ms=", 0) == 0) {
      if (!serveIntValue(A, sizeof("--serve-drain-ms=") - 1, 1, 86400000,
                         SOpts.DrainDeadlineMs))
        return ExitUsage;
    } else if (A[0] == '-') {
      fprintf(stderr, "unknown option %s\n", A.c_str());
      return ExitUsage;
    } else
      File = argv[I];
  }
  if (!File && CorpusCases < 0 && !ServeMode) {
    fprintf(stderr,
            "usage: compile_minic FILE [--backend=gg|pcc] [--trace] "
            "[--no-idioms] [--no-reverse-ops] [--no-recover] [--stats] "
            "[--explain] %s\n"
            "       compile_minic --gen-corpus=N [common options]\n"
            "       compile_minic --serve[=SOCKET] [--serve-workers=N] "
            "[--serve-deadline-ms=N] [--serve-max-steps=N] "
            "[--serve-max-arena=BYTES] [--serve-grace-ms=N] "
            "[--serve-allow-crash] [--serve-generation=N] "
            "[--serve-queue-depth=N] [--serve-queue-deadline-ms=N] "
            "[--serve-shed-policy=reject-newest|shed-oldest] "
            "[--serve-drain-ms=N]\n",
            commonDriverUsage());
    return ExitUsage;
  }
  TelemetryDump Dump(Common);
  Opts.Trace = Trace;
  if (Common.Threads >= 0)
    Opts.Parallel.Threads = Common.Threads;

  if (ServeMode) {
    // Daemon mode: build + self-verify the shared tables once, then serve
    // until Shutdown/EOF. A startup failure (broken description, the
    // corrupt-table fault) is fatal: restarting cannot fix it, and
    // scripts/serve.sh gives up instead of respawning.
    std::string Err;
    std::unique_ptr<CompileService> Svc = CompileService::create(Err, Opts);
    if (!Svc) {
      fprintf(stderr, "serve: %s\n", Err.c_str());
      return ExitFatalFault;
    }
    Server S(Svc->handler(), SOpts);
    S.setReloader(Svc->reloader());
    S.setStatusAugmenter(Svc->statusAugmenter());
    // Operator lifecycle signals: SIGTERM/SIGINT drain gracefully (finish
    // queued + in-flight work, then exit 0 so the supervisor stops
    // cleanly); SIGHUP hot-reloads the table image. The handler just sets
    // a flag; the server's watchdog thread does the work. No SA_RESTART:
    // an interrupted poll/read retries on its own.
    struct sigaction SA;
    memset(&SA, 0, sizeof(SA));
    SA.sa_handler = [](int Sig) { Server::notifySignal(Sig); };
    sigaction(SIGTERM, &SA, nullptr);
    sigaction(SIGINT, &SA, nullptr);
    sigaction(SIGHUP, &SA, nullptr);
    return ServeSocket.empty() ? S.serveFds(0, 1)
                               : S.serveUnixSocket(ServeSocket);
  }

  if (CorpusCases >= 0) {
    std::string Err;
    std::unique_ptr<VaxTarget> Target = VaxTarget::create(Err);
    if (!Target) {
      fprintf(stderr, "%s\n", Err.c_str());
      return ExitFatalFault;
    }
    return runCorpus(CorpusCases, *Target, Opts, Common.Threads);
  }

  std::ifstream In(File);
  if (!In) {
    fprintf(stderr, "cannot open %s\n", File);
    return ExitCompileFailure;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  Program Prog;
  DiagnosticSink Diags;
  if (!compileMiniC(Buffer.str(), Prog, Diags)) {
    fprintf(stderr, "%s", Diags.renderAll().c_str());
    return ExitCompileFailure;
  }

  std::string Asm, Err;
  if (UsePcc) {
    PccCodeGenerator CG;
    if (!CG.compile(Prog, Asm, Err)) {
      fprintf(stderr, "%s\n", Err.c_str());
      return ExitCompileFailure;
    }
    if (Stats)
      fprintf(stderr, "# pcc: %zu instructions, %zu lines, %.3fs\n",
              CG.stats().Instructions, CG.stats().AsmLines,
              CG.stats().Seconds);
  } else {
    std::unique_ptr<VaxTarget> Target = VaxTarget::create(Err);
    if (!Target) {
      fprintf(stderr, "%s\n", Err.c_str());
      return ExitFatalFault;
    }
    GGCodeGenerator CG(*Target, Opts);
    bool Ok = CG.compile(Prog, Asm, Err);
    if (!CG.diagnostics().all().empty())
      fputs(CG.diagnostics().renderAll().c_str(), stderr);
    if (!Ok) {
      fprintf(stderr, "%s\n", Err.c_str());
      return ExitCompileFailure;
    }
    if (Trace)
      fprintf(stderr, "%s", CG.trace().c_str());
    if (Stats)
      printGGStats(CG.stats());
  }
  fputs(Asm.c_str(), stdout);
  return ExitOk;
}
