/* Sieve of Eratosthenes: the classic 1980s compiler benchmark. */
char flags[64];

int main() {
  int i; int k; int count;
  count = 0;
  for (i = 2; i < 64; i++) flags[i] = 1;
  for (i = 2; i < 64; i++) {
    if (flags[i]) {
      print(i);
      count++;
      for (k = i + i; k < 64; k += i) flags[k] = 0;
    }
  }
  print(count);
  return count;
}
